// False-sharing relief — Section 7.4.
//
// False sharing happens when processors update different words that happen
// to live in the same cache block.  An invalidation protocol bounces the
// block between the writers on every interleaved write; an LCM-like system
// gives each writer a private copy and merges the disjoint words at
// reconciliation, so there is no ping-pong at all.
//
// Eight writers each own one word of every block.  Within a phase the
// writers sweep the blocks in rotating rounds, so consecutive writes to a
// block always come from different processors — the worst case for an
// invalidation protocol.  The kernel runs under the Stache baseline and
// under LCM-mcc and prints the traffic each needed.
//
// Run it with:
//
//	go run ./examples/falseshare
package main

import (
	"fmt"
	"os"

	"lcm"
)

const (
	nodes  = 8
	blocks = 8
	phases = 40
	rounds = 4 * blocks
)

func run(sys lcm.System) (int64, int64, bool) {
	m := lcm.NewMachine(lcm.MachineConfig{Nodes: nodes, System: sys})
	wpb := 8 // 8 int32 words per 32-byte block; word i belongs to node i
	counters := lcm.NewVectorI32(m, "counters", blocks*wpb, lcm.DataPolicy(sys), lcm.Interleaved)
	m.Freeze()

	m.Run(func(n *lcm.Node) {
		for ph := 0; ph < phases; ph++ {
			for r := 0; r < rounds; r++ {
				b := (n.ID + r) % blocks
				idx := b*wpb + n.ID
				counters.Set(n, idx, counters.Get(n, idx)+1)
				n.Barrier() // interleave the writers
			}
			n.ReconcileCopies()
		}
	})

	lcm.DrainToHome(m)
	ok := true
	want := int32(phases * rounds / blocks)
	for i := 0; i < nodes; i++ {
		if counters.Peek(i) != want {
			ok = false
		}
	}
	return m.MaxClock(), m.TotalCounters().Misses, ok
}

func main() {
	fmt.Printf("false sharing: %d writers x %d blocks, %d phases of %d interleaved rounds\n\n",
		nodes, blocks, phases, rounds)
	fmt.Printf("%-10s %14s %10s %8s\n", "system", "cycles", "misses", "correct")
	var base int64
	for _, sys := range []lcm.System{lcm.Copying, lcm.LCMmcc} {
		cycles, misses, ok := run(sys)
		if sys == lcm.Copying {
			base = cycles
		}
		fmt.Printf("%-10s %14d %10d %8v\n", sys, cycles, misses, ok)
		if !ok {
			fmt.Fprintf(os.Stderr, "falseshare: %s produced wrong counter values\n", sys)
			os.Exit(1)
		}
		if sys == lcm.LCMmcc {
			fmt.Printf("\nLCM-mcc speedup: %.2fx — private copies merge word-by-word, so the\n",
				float64(base)/float64(cycles))
			fmt.Println("falsely-shared blocks never ping-pong between the writers.")
		}
	}
}
