// Stale data for N-body-style computations — Section 7.5.
//
// In hierarchical N-body methods, contributions from distant bodies change
// slowly, so re-fetching their freshest values every step buys little
// accuracy for a lot of communication.  On a coherent machine, keeping old
// values requires explicit copying into private memory; an RSM system
// instead lets a consumer keep a read-only copy through producer updates
// for a bounded number of phases.
//
// This example runs a simple 1-D gravitational kernel: each node owns a
// strip of bodies.  Near-strip positions use the default loose policy
// (always fresh after each phase); far-strip positions live in a Stale(k)
// region, so their cached copies survive up to k phases before the memory
// system refreshes them.  The example sweeps k and reports misses, time
// and the positional error against the k=0 run.
//
// Run it with:
//
//	go run ./examples/nbody
package main

import (
	"fmt"
	"math"
	"os"

	"lcm"
)

const (
	nodes  = 8
	bodies = 256 // bodies per node strip: nodes*32
	steps  = 30
	dt     = 0.05
)

// run executes the kernel with far-field staleness k and returns
// (cycles, misses, final positions).
func run(k int) (int64, int64, []float64) {
	m := lcm.NewMachine(lcm.MachineConfig{Nodes: nodes, System: lcm.LCMmcc})
	pol := lcm.LooselyCoherent()
	if k > 0 {
		pol = lcm.Stale(k)
	}
	// pos is what other nodes read: the stale-policy region.
	pos := lcm.NewVectorF64(m, "pos", bodies, pol, lcm.Blocked)
	// vel is private per owner (never shared): plain loose policy.
	vel := lcm.NewVectorF64(m, "vel", bodies, lcm.LooselyCoherent(), lcm.Blocked)
	m.Freeze()

	for i := 0; i < bodies; i++ {
		pos.Poke(i, float64(i)+0.5*math.Sin(float64(i)))
	}

	per := bodies / nodes
	m.Run(func(n *lcm.Node) {
		lo, hi := n.ID*per, (n.ID+1)*per
		for st := 0; st < steps; st++ {
			// A body's own strip must always be fresh: drop any stale
			// copies of it before the step (consumer-driven refresh);
			// only the far field tolerates staleness.
			for i := lo; i < hi; i++ {
				n.DropCopy(pos.Addr(i))
			}
			for i := lo; i < hi; i++ {
				xi := pos.Get(n, i)
				var acc float64
				for j := 0; j < bodies; j++ {
					if j == i {
						continue
					}
					d := pos.Get(n, j) - xi
					acc += d / (1 + d*d*math.Abs(d)) // softened 1/r^2
				}
				n.Compute(int64(bodies / 8))
				v := vel.Get(n, i) + dt*acc
				vel.Set(n, i, v)
				pos.Set(n, i, xi+dt*v)
				n.FlushCopies()
			}
			n.ReconcileCopies()
		}
	})

	out := make([]float64, bodies)
	for i := range out {
		out[i] = pos.Peek(i)
	}
	return m.MaxClock(), m.TotalCounters().Misses, out
}

func main() {
	fmt.Printf("N-body kernel: %d bodies, %d nodes, %d steps\n\n", bodies, nodes, steps)
	fmt.Printf("%-12s %14s %10s %14s\n", "staleness", "cycles", "misses", "max pos error")

	_, _, exact := run(0)
	for _, k := range []int{0, 1, 2, 4, 8} {
		cycles, misses, got := run(k)
		var maxErr float64
		for i := range got {
			if e := math.Abs(got[i] - exact[i]); e > maxErr {
				maxErr = e
			}
		}
		fmt.Printf("stale=%-6d %14d %10d %14.6f\n", k, cycles, misses, maxErr)
		if k == 0 && maxErr != 0 {
			// Staleness 0 repeats the exact run; any divergence means
			// the simulation is not deterministic.
			fmt.Fprintln(os.Stderr, "nbody: stale=0 run diverged from the reference run")
			os.Exit(1)
		}
	}
	fmt.Println("\nmisses and simulated time fall as allowed staleness grows; the")
	fmt.Println("positional error stays bounded — the Section 7.5 trade-off.")
}
