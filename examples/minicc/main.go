// A complete trip through the paper's pipeline: compile a C**-style
// parallel function from source text, let the compiler analyze its
// accesses and choose a lowering, then run it under both memory systems.
//
// The program is the paper's own running example (Section 4.2): a
// four-point stencil, plus a reduction that sums the mesh.  The compiler
// detects that every invocation writes its own element but reads
// neighbours, so under LCM it inserts flush/reconcile directives, and
// under the coherent baseline it generates two-copy code with a pointer
// swap (it proves the store unconditional).  A second, threshold-style
// function shows the conservative path: its store is conditional, so the
// two-copy lowering must copy the whole mesh every iteration.
//
// Run it with:
//
//	go run ./examples/minicc
package main

import (
	"fmt"
	"os"

	"lcm"
)

const stencilSrc = `
parallel stencil(A) {
    A[i][j] = (A[i-1][j] + A[i+1][j] + A[i][j-1] + A[i][j+1]) * 0.25;
    total %+= A[i][j];
}`

const thresholdSrc = `
parallel threshold(A) {
    let v = A[i][j];
    let nv = (A[i-1][j] + A[i+1][j] + A[i][j-1] + A[i][j+1]) * 0.25;
    if (abs(nv - v) > 0.05) {
        A[i][j] = nv;
    }
}`

const (
	size  = 96
	iters = 8
	procs = 16
)

func main() {
	run("stencil + reduction", stencilSrc)
	run("conditional threshold", thresholdSrc)
}

func run(title, src string) {
	prog, err := lcm.CompileCStar(src)
	if err != nil {
		fmt.Fprintf(os.Stderr, "compile: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("== %s ==\n", title)
	fmt.Printf("compiler analysis: writesOwnOnly=%v readsShared=%v dynamic=%v reductions=%d\n",
		prog.Summary.WritesOwnElementOnly, prog.Summary.ReadsSharedData,
		prog.Summary.DynamicStructure, len(prog.Fn.Reductions))

	init := func(i, j int) float32 { return float32((i*31+j*17)%97) / 9.7 }
	for _, sys := range []lcm.System{lcm.Copying, lcm.LCMmcc} {
		m := lcm.NewMachine(lcm.MachineConfig{Nodes: procs, System: sys})
		inst := prog.Instantiate(m, size, size, sys)
		m.Freeze()
		inst.Init(init)
		m.Run(func(n *lcm.Node) {
			_ = inst.RunNode(n, iters, lcm.StaticSchedule{})
		})
		if err := inst.Err(); err != nil {
			fmt.Fprintf(os.Stderr, "minicc: %s under %s: %v\n", title, sys, err)
			os.Exit(1)
		}
		c := m.TotalCounters()
		fmt.Printf("  %-8s plan=%-7s  %14d cycles  %10d misses  %10d copied words\n",
			sys, inst.Plan.Mode, m.MaxClock(), c.Misses, c.CopiedWords)
		for _, rd := range prog.Fn.Reductions {
			var v float64
			m.Run(func(n *lcm.Node) {
				if n.ID == 0 {
					v = inst.Reduction(rd.Name).Value(n)
				}
				n.Barrier()
			})
			fmt.Printf("           reduction %s = %.3f\n", rd.Name, v)
		}
	}

	// Cross-check against the sequential reference.
	want, _ := prog.SeqApply(size, size, iters, init)
	m := lcm.NewMachine(lcm.MachineConfig{Nodes: procs, System: lcm.LCMmcc})
	inst := prog.Instantiate(m, size, size, lcm.LCMmcc)
	m.Freeze()
	inst.Init(init)
	m.Run(func(n *lcm.Node) { _ = inst.RunNode(n, iters, lcm.StaticSchedule{}) })
	if err := inst.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "minicc: verification run: %v\n", err)
		os.Exit(1)
	}
	lcm.DrainToHome(m)
	for i := 0; i < size; i++ {
		for j := 0; j < size; j++ {
			if inst.Result(iters).Peek(i, j) != want[i][j] {
				fmt.Fprintf(os.Stderr, "MISMATCH at (%d,%d)\n", i, j)
				os.Exit(1)
			}
		}
	}
	fmt.Println("  verified bit-exactly against the sequential reference")
	fmt.Println()
}
