// Semantic-violation and data-race detection — Sections 7.2 and 7.3.
//
// Steele (POPL 1990) proposed a language semantics that forbids programs
// with conflicting side effects, enforced with per-location access
// histories whose worst-case space is unbounded.  The paper shows LCM can
// detect the same violations without histories: private copies are diffed
// at reconciliation, so two processors writing different values to one
// word is caught exactly, and the co-existence of readable and written
// copies of a block flags read-write races.
//
// This example runs three phases against a conflict-checked region:
//
//  1. disjoint writes        -> no violations
//  2. two writers, one word  -> a write-write violation
//  3. reader vs writer       -> a read-write violation
//
// Run it with:
//
//	go run ./examples/racedetect
package main

import (
	"fmt"
	"os"

	"lcm"
)

func main() {
	m := lcm.NewMachine(lcm.MachineConfig{Nodes: 4, System: lcm.LCMmcc})
	// Detect(true) is "actual violation" mode: reconciliation also
	// flushes read-only copies so every phase's reads are observed.
	data := lcm.NewVectorI32(m, "shared", 64, lcm.Detect(true), lcm.Interleaved)
	m.Freeze()

	m.Run(func(n *lcm.Node) {
		// Phase 1: every node writes its own element — C**-legal.
		data.Set(n, n.ID, int32(n.ID))
		n.ReconcileCopies()

		// Phase 2: nodes 0 and 1 write the same element with different
		// values — the modification C** calls a conflict.
		if n.ID < 2 {
			data.Set(n, 10, int32(100+n.ID))
		}
		n.ReconcileCopies()

		// Phase 3: node 0 reads an element node 1 writes — a
		// read-write race under Steele's semantics.
		if n.ID == 0 {
			_ = data.Get(n, 20)
		}
		if n.ID == 1 {
			data.Set(n, 21, 7) // same block as element 20
		}
		n.ReconcileCopies()
	})

	conflicts := lcm.Conflicts(m)
	fmt.Printf("the memory system detected %d violations:\n\n", len(conflicts))
	for i, c := range conflicts {
		fmt.Printf("  %d. %s\n", i+1, c)
	}

	s := m.Shared.Snapshot()
	fmt.Printf("\nwrite-write violations: %d (phase 2)\n", s.WriteConflicts)
	fmt.Printf("read-write violations:  %d (phase 3)\n", s.ReadWriteConflicts)
	if s.WriteConflicts == 0 || s.ReadWriteConflicts == 0 {
		fmt.Fprintln(os.Stderr, "racedetect: expected violations were not detected")
		os.Exit(1)
	}
	fmt.Println("\nphase 1's disjoint writes were merged silently — no false positives.")
	fmt.Println("note: no access histories were kept; detection falls out of the")
	fmt.Println("clean-copy diff that reconciliation performs anyway.")
}
