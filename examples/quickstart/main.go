// Quickstart: a five-minute tour of the lcm library.
//
// It builds a 16-processor simulated machine running the LCM-mcc memory
// system, relaxes a small mesh with a C**-style parallel function, sums
// the mesh with a reduction variable, and prints what the memory system
// did: misses, clean copies, flushes, reconciliations and virtual time.
//
// Run it with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"lcm"
)

const (
	nodes = 16
	size  = 128
	iters = 10
)

func main() {
	// 1. Build a machine.  LCMmcc is the paper's best-performing
	//    variant: clean copies at every marking processor.
	m := lcm.NewMachine(lcm.MachineConfig{Nodes: nodes, System: lcm.LCMmcc})

	// 2. Allocate aggregates in the simulated global address space.
	//    The mesh is loosely coherent: parallel invocations that write
	//    it get private copies, reconciled at the end of the phase.
	mesh := lcm.NewMatrixF32(m, "mesh", size, size, lcm.LooselyCoherent(), lcm.Interleaved)
	total := lcm.NewReduceF64(m, "total", lcm.LCMmcc)
	m.Freeze()

	// 3. Initialize sequentially (home image writes are free).
	for j := 0; j < size; j++ {
		mesh.Poke(0, j, 100) // hot top edge
	}

	// 4. "Compile" the parallel function: each invocation writes its own
	//    element and reads neighbours, so the planner inserts
	//    flush-between-invocations and relies on copy-on-write.
	plan := lcm.Lower(lcm.AccessSummary{
		WritesOwnElementOnly: true,
		ReadsSharedData:      true,
	}, lcm.LCMmcc)
	fmt.Printf("compiler plan: mode=%v flushBetweenInvocations=%v\n\n",
		plan.Mode, plan.FlushBetweenInvocations)

	// 5. Run the SPMD program: every node executes its share of the
	//    invocations, then joins the reconciliation barrier.
	inner := size - 2
	m.Run(func(n *lcm.Node) {
		for it := 0; it < iters; it++ {
			lcm.ForEach(n, lcm.StaticSchedule{}, plan, it, inner*inner, func(idx int) {
				i, j := 1+idx/inner, 1+idx%inner
				v := (mesh.Get(n, i-1, j) + mesh.Get(n, i+1, j) +
					mesh.Get(n, i, j-1) + mesh.Get(n, i, j+1)) / 4
				mesh.Set(n, i, j, v)
			})
			lcm.EndParallel(n)
		}
		// A reduction: total %+= mesh[i][j].  Each node accumulates a
		// private copy; the reconciliation function sums them.
		lcm.ForEach(n, lcm.StaticSchedule{}, plan, 0, size*size, func(idx int) {
			total.Add(n, float64(mesh.Get(n, idx/size, idx%size)))
		})
		total.Reduce(n)
	})

	// 6. Inspect results and memory-system behaviour.
	var sum float64
	m.Run(func(n *lcm.Node) {
		if n.ID == 0 {
			sum = total.Value(n)
		}
		n.Barrier()
	})
	c := m.TotalCounters()
	s := m.Shared.Snapshot()
	fmt.Printf("mesh total after %d iterations: %.2f\n\n", iters, sum)
	fmt.Printf("simulated time:     %12d cycles\n", m.MaxClock())
	fmt.Printf("accesses:           %12d\n", c.Hits)
	fmt.Printf("cache misses:       %12d (%d remote, %d local fills)\n",
		c.Misses, c.RemoteMisses, c.LocalFills)
	fmt.Printf("marks / flushes:    %12d / %d\n", c.Marks, c.Flushes)
	fmt.Printf("clean copies:       %12d home, %d local (mcc)\n",
		s.CleanCopiesHome, s.CleanCopiesLocal)
	fmt.Printf("blocks reconciled:  %12d\n", s.Reconciles)
	fmt.Printf("write conflicts:    %12d (disjoint writes: should be 0)\n", s.WriteConflicts)
	if s.WriteConflicts != 0 {
		fmt.Fprintln(os.Stderr, "quickstart: unexpected write conflicts in a disjoint-write program")
		os.Exit(1)
	}
}
