// Adaptive-mesh potential solver — the motivating application of the
// paper's Section 6.2.
//
// The program computes electric potentials in a box: a mesh of cells
// relaxes toward the average of its neighbours, and cells near the
// electrodes (where the gradient is steep) subdivide into quad-trees for
// finer detail.  A compiler cannot tell which parts of such a structure an
// iteration will modify, so a conventional memory system forces it to copy
// the whole mesh every iteration; LCM's copy-on-write copies only what
// actually changes.
//
// The example runs the same computation under the explicit-copying
// baseline and under LCM-mcc and reports the difference.
//
// Run it with:
//
//	go run ./examples/adaptive
package main

import (
	"fmt"
	"os"

	"lcm/internal/cstar"
	"lcm/internal/stats"
	"lcm/internal/workloads"
)

func main() {
	spec := workloads.AdaptiveSpec{
		N: 32, MaxDepth: 4, Iters: 60, Sched: "dynamic",
		Electrodes: 4, SubdivThreshold: 4,
	}
	cfg := workloads.Config{P: 16, Verify: true}

	fmt.Printf("adaptive mesh: %dx%d roots, depth <= %d, %d iterations, %s partitioning\n\n",
		spec.N, spec.N, spec.MaxDepth, spec.Iters, spec.Sched)

	results := []workloads.Result{
		workloads.RunAdaptive(cstar.Copying, spec, cfg),
		workloads.RunAdaptive(cstar.LCMmcc, spec, cfg),
	}
	for _, r := range results {
		if r.Err != nil {
			fmt.Fprintf(os.Stderr, "%v: verification failed: %v\n", r.System, r.Err)
			os.Exit(1)
		}
	}

	base := results[0]
	fmt.Printf("final mesh cells: %.0f (from %d roots; subdivision happened near electrodes)\n\n",
		base.Extra["cells"], spec.N*spec.N)
	fmt.Printf("%-10s %14s %12s %12s %14s\n", "system", "cycles", "misses", "flushes", "copied words")
	for _, r := range results {
		fmt.Printf("%-10s %14s %12s %12s %14s\n", r.System,
			stats.GroupInt(r.Cycles), stats.GroupInt(r.C.Misses),
			stats.GroupInt(r.C.Flushes), stats.GroupInt(r.C.CopiedWords))
	}
	fmt.Printf("\nLCM-mcc speedup over explicit copying: %sx\n",
		stats.Speedup(base.Cycles, results[1].Cycles))
	fmt.Println("\nboth runs verified bit-exactly against the sequential reference.")
}
