// Package lcm is a library reproduction of "LCM: Memory System Support for
// Parallel Language Implementation" (Larus, Richards & Viswanathan,
// Univ. of Wisconsin-Madison, 1994): Reconcilable Shared Memory (RSM),
// the Loosely Coherent Memory (LCM) protocol, the Stache baseline, and a
// C**-style data-parallel runtime — all running on a simulated Tempest
// machine with fine-grain access control and a virtual-time cost model.
//
// # Quick start
//
//	m := lcm.NewMachine(lcm.MachineConfig{Nodes: 8, System: lcm.LCMmcc})
//	a := lcm.NewMatrixF32(m, "A", 256, 256, lcm.LooselyCoherent(), lcm.Interleaved)
//	m.Freeze()
//	plan := lcm.Lower(lcm.AccessSummary{WritesOwnElementOnly: true, ReadsSharedData: true}, lcm.LCMmcc)
//	m.Run(func(n *lcm.Node) {
//		lcm.ForEach(n, lcm.StaticSchedule{}, plan, 0, 254*254, func(idx int) {
//			i, j := 1+idx/254, 1+idx%254
//			v := (a.Get(n, i-1, j) + a.Get(n, i+1, j) + a.Get(n, i, j-1) + a.Get(n, i, j+1)) / 4
//			a.Set(n, i, j, v)
//		})
//		lcm.EndParallel(n)
//	})
//
// Every Get/Set flows through the simulated machine's access-control tags,
// so the selected memory system observes — and charges virtual cycles for
// — exactly the access stream a compiled C** program would produce.  See
// TUTORIAL.md for a walkthrough, the examples directory for complete
// programs, cmd/lcmbench for the paper's experiments, and DESIGN.md for
// the system inventory.
package lcm

import (
	"lcm/internal/core"
	"lcm/internal/cost"
	"lcm/internal/cstar"
	"lcm/internal/lang"
	"lcm/internal/memsys"
	"lcm/internal/tempest"
)

// Machine is the simulated multicomputer (see internal/tempest).
type Machine = tempest.Machine

// Node is one simulated processor; workload code receives one per
// SPMD goroutine and issues all memory accesses through it.
type Node = tempest.Node

// Line is a node's cached copy of a block.
type Line = tempest.Line

// SimLock is a simulated inter-node lock with serialized virtual time.
type SimLock = tempest.SimLock

// Addr is a global simulated byte address.
type Addr = memsys.Addr

// BlockID identifies a coherence block.
type BlockID = memsys.BlockID

// Region is a policy-carrying allocation in the global address space.
type Region = memsys.Region

// HomePolicy selects how a region's blocks map to home nodes.
type HomePolicy = memsys.HomePolicy

// Home policies.
const (
	Interleaved = memsys.Interleaved
	Blocked     = memsys.Blocked
	SingleHome  = memsys.SingleHome
)

// CostModel holds the virtual-time charges.
type CostModel = cost.Model

// DefaultCost returns the CM-5/Blizzard-calibrated cost model used for the
// paper reproduction.
func DefaultCost() CostModel { return cost.Default() }

// System selects a memory system: the Stache + explicit-copying baseline
// or one of the two LCM variants.
type System = cstar.System

// Memory systems.
const (
	Copying = cstar.Copying
	LCMscc  = cstar.LCMscc
	LCMmcc  = cstar.LCMmcc
)

// Policy bundles an RSM request policy and reconciliation function.
type Policy = core.Policy

// Reconciler combines returning copies of a block at its home.
type Reconciler = core.Reconciler

// Policy constructors (see internal/core).
var (
	// Coherent is sequentially consistent cache coherence.
	Coherent = core.Coherent
	// LooselyCoherent is the C** copy-on-write policy.
	LooselyCoherent = core.LooselyCoherent
	// Reduction reconciles with an associative combiner.
	Reduction = core.Reduction
	// Detect adds semantic-violation detection (Sections 7.2/7.3).
	Detect = core.Detect
	// Stale lets consumer copies survive producer updates (Section 7.5).
	Stale = core.Stale
)

// Built-in reconcilers.
type (
	// Overwrite keeps one surviving value per modified element.
	Overwrite = core.Overwrite
	// SumF32 accumulates float32 contributions.
	SumF32 = core.SumF32
	// SumF64 accumulates float64 contributions.
	SumF64 = core.SumF64
	// SumI64 accumulates int64 contributions.
	SumI64 = core.SumI64
	// MinF64 keeps the minimum written value.
	MinF64 = core.MinF64
	// MaxF64 keeps the maximum written value.
	MaxF64 = core.MaxF64
	// ProdF64 multiplies contributions.
	ProdF64 = core.ProdF64
	// Func adapts a user function to the Reconciler interface.
	Func = core.Func
)

// Conflict is a detected semantic violation.
type Conflict = core.Conflict

// Conflict kinds.
const (
	WriteWrite = core.WriteWrite
	ReadWrite  = core.ReadWrite
)

// MachineConfig configures NewMachine.
type MachineConfig struct {
	// Nodes is the processor count (default 32, the paper's CM-5
	// partition size).  Machines up to 64 nodes keep every directory
	// copyset in a single inline word; larger machines — CI verifies
	// P=256 grids and a P=1024 smoke — spill into multi-word sets
	// (internal/nodeset) with no change in observables.
	Nodes int
	// BlockSize is the coherence block size in bytes (default 32 = eight
	// single-precision floats, as in the paper; power of two, 8..256).
	BlockSize uint32
	// System selects the memory system; the zero value is the Copying
	// baseline (Stache + explicit copying).  Pass LCMmcc for the
	// paper's best-performing variant.
	System System
	// Cost overrides the virtual-time cost model (default DefaultCost).
	Cost *CostModel
}

// NewMachine builds a simulated machine.  Allocate aggregates, then call
// Freeze on the machine, then Run.
func NewMachine(cfg MachineConfig) *Machine {
	if cfg.Nodes == 0 {
		cfg.Nodes = 32
	}
	if cfg.BlockSize == 0 {
		cfg.BlockSize = 32
	}
	cm := cost.Default()
	if cfg.Cost != nil {
		cm = *cfg.Cost
	}
	return cstar.NewMachine(cfg.Nodes, cfg.BlockSize, cm, cfg.System)
}

// Conflicts returns the semantic violations detected by an LCM machine so
// far (regions with a Detect policy only); nil on the Copying baseline.
// Call only while the machine is quiescent.
func Conflicts(m *Machine) []Conflict {
	if p, ok := m.Protocol().(*core.LCM); ok {
		return p.Conflicts()
	}
	return nil
}

// DrainToHome flushes dirty cached state to home images for sequential
// inspection via Peek; call only while the machine is quiescent.
func DrainToHome(m *Machine) { cstar.DrainToHome(m) }

// DataPolicy is the policy a C** compiler gives shared aggregate data
// under the given system.
func DataPolicy(sys System) Policy { return cstar.DataPolicy(sys) }

// Aggregates (see internal/cstar).
type (
	// VectorF32 is a float32 aggregate.
	VectorF32 = cstar.VectorF32
	// VectorF64 is a float64 aggregate.
	VectorF64 = cstar.VectorF64
	// VectorI32 is an int32 aggregate.
	VectorI32 = cstar.VectorI32
	// VectorI64 is an int64 aggregate.
	VectorI64 = cstar.VectorI64
	// MatrixF32 is a 2-D row-major float32 aggregate.
	MatrixF32 = cstar.MatrixF32
	// ReduceF64 is a C** reduction variable.
	ReduceF64 = cstar.ReduceF64
)

// Aggregate constructors.
var (
	NewVectorF32 = cstar.NewVectorF32
	NewVectorF64 = cstar.NewVectorF64
	NewVectorI32 = cstar.NewVectorI32
	NewVectorI64 = cstar.NewVectorI64
	NewMatrixF32 = cstar.NewMatrixF32
	NewReduceF64 = cstar.NewReduceF64
)

// C** runtime pieces (see internal/cstar).
type (
	// AccessSummary is what compiler analysis extracts from a parallel
	// function body.
	AccessSummary = cstar.AccessSummary
	// Plan is the lowered implementation strategy.
	Plan = cstar.Plan
	// Scheduler partitions invocations across nodes.
	Scheduler = cstar.Scheduler
	// StaticSchedule partitions once (the paper's "-stat" variants).
	StaticSchedule = cstar.StaticSchedule
	// RotatingSchedule re-partitions each iteration ("-dyn" variants).
	RotatingSchedule = cstar.RotatingSchedule
)

// ReduceOp selects a reduction variable's combining operator.
type ReduceOp = cstar.ReduceOp

// Reduction operators.
const (
	OpSum = cstar.OpSum
	OpMin = cstar.OpMin
	OpMax = cstar.OpMax
)

// NewReduceF64Op allocates a reduction variable with an explicit operator.
var NewReduceF64Op = cstar.NewReduceF64Op

// Mini C** front end (see internal/lang): compile parallel functions from
// source text, analyze their accesses, and run them on the machine.
type (
	// CStarProgram is a compiled parallel function.
	CStarProgram = lang.Program
	// CStarInstance binds a compiled program to a machine.
	CStarInstance = lang.Instance
)

// CompileCStar parses and analyzes a C**-style parallel function.
var CompileCStar = lang.Compile

// Lower plays the C** compiler: pick a plan for a parallel function.
var Lower = cstar.Lower

// ForEach runs one node's share of a parallel call.
var ForEach = cstar.ForEach

// EndParallel completes a parallel call (reconciliation barrier); every
// node must call it.
var EndParallel = cstar.EndParallel
