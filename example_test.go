package lcm_test

import (
	"fmt"

	"lcm"
)

// Example demonstrates the core LCM mechanism: writes in a parallel phase
// are private to the writer until reconciliation merges them.
func Example() {
	m := lcm.NewMachine(lcm.MachineConfig{Nodes: 2, System: lcm.LCMmcc})
	data := lcm.NewVectorI32(m, "data", 8, lcm.LooselyCoherent(), lcm.Interleaved)
	m.Freeze()

	m.Run(func(n *lcm.Node) {
		data.Set(n, n.ID, int32(100+n.ID)) // each node writes its element
		n.Barrier()
		if n.ID == 1 {
			// Node 0's write is still private: node 1 sees the
			// pre-phase value.
			fmt.Println("mid-phase read:", data.Get(n, 0))
		}
		n.ReconcileCopies()
		if n.ID == 1 {
			fmt.Println("after reconcile:", data.Get(n, 0))
		}
		n.Barrier()
	})
	// Output:
	// mid-phase read: 0
	// after reconcile: 100
}

// ExampleReduction shows an RSM reduction: private copies of a shared
// total are combined by the region's reconciliation function.
func ExampleReduction() {
	m := lcm.NewMachine(lcm.MachineConfig{Nodes: 4, System: lcm.LCMmcc})
	total := lcm.NewReduceF64(m, "total", lcm.LCMmcc)
	m.Freeze()

	m.Run(func(n *lcm.Node) {
		for i := 0; i < 10; i++ {
			total.Add(n, 1) // total %+= 1
		}
		total.Reduce(n)
		if n.ID == 0 {
			fmt.Println("total:", total.Value(n))
		}
		n.Barrier()
	})
	// Output:
	// total: 40
}

// ExampleCompileCStar compiles a C**-style parallel function from source,
// showing the access analysis the compiler derives.
func ExampleCompileCStar() {
	prog, err := lcm.CompileCStar(`
		parallel relax(A) {
			A[i][j] = (A[i-1][j] + A[i+1][j]) * 0.5;
		}`)
	if err != nil {
		panic(err)
	}
	fmt.Println("writes own element only:", prog.Summary.WritesOwnElementOnly)
	fmt.Println("reads shared data:", prog.Summary.ReadsSharedData)
	plan := lcm.Lower(prog.Summary, lcm.LCMmcc)
	fmt.Println("plan:", plan.Mode, "flush:", plan.FlushBetweenInvocations)
	// Output:
	// writes own element only: true
	// reads shared data: true
	// plan: lcm flush: true
}

// ExampleDetect shows semantic-violation detection: two processors writing
// different values to one word is caught at reconciliation, with no access
// histories.
func ExampleDetect() {
	m := lcm.NewMachine(lcm.MachineConfig{Nodes: 2, System: lcm.LCMscc})
	v := lcm.NewVectorI32(m, "v", 8, lcm.Detect(false), lcm.Interleaved)
	m.Freeze()
	m.Run(func(n *lcm.Node) {
		v.Set(n, 3, int32(n.ID+1)) // conflicting writes to element 3
		n.ReconcileCopies()
	})
	for _, c := range lcm.Conflicts(m) {
		fmt.Println(c.Kind, "conflict at element", c.Elem)
	}
	// Output:
	// write-write conflict at element 3
}
