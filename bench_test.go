package lcm_test

// One testing.B benchmark per table and figure of the paper, plus the
// Section 7 ablations.  Each benchmark runs the corresponding workload on
// the simulated machine and reports, besides Go's wall-clock numbers, the
// simulated metrics the paper's artifact reports: virtual cycles
// ("simcycles"), cache misses ("simmisses") and clean copies
// ("cleancopies").
//
// Benchmarks default to 1/8 of the paper's problem sizes so the whole
// suite completes in minutes; run cmd/lcmbench for full-scale numbers
// (EXPERIMENTS.md records a full-scale run).

import (
	"io"
	"testing"

	"lcm/internal/cstar"
	"lcm/internal/harness"
	"lcm/internal/workloads"
)

// benchScale divides paper problem sizes for the testing.B harness.
const benchScale = 8

func benchSuite() *harness.Suite {
	s := harness.New(io.Discard)
	s.Cfg = workloads.Config{P: 32}
	s.Scale = benchScale
	return s
}

func report(b *testing.B, r workloads.Result) {
	b.Helper()
	if r.Err != nil {
		b.Fatal(r.Err)
	}
	b.ReportMetric(float64(r.Cycles), "simcycles")
	b.ReportMetric(float64(r.C.Misses), "simmisses")
	b.ReportMetric(float64(r.CleanCopies()), "cleancopies")
}

// benchWorkload runs one (workload, system) cell b.N times.
func benchWorkload(b *testing.B, run func() workloads.Result) {
	b.Helper()
	var last workloads.Result
	for i := 0; i < b.N; i++ {
		last = run()
	}
	report(b, last)
}

func forSystems(b *testing.B, run func(sys cstar.System) workloads.Result) {
	for _, sys := range []cstar.System{cstar.Copying, cstar.LCMscc, cstar.LCMmcc} {
		b.Run(sys.String(), func(b *testing.B) {
			benchWorkload(b, func() workloads.Result { return run(sys) })
		})
	}
}

// BenchmarkTable1StencilStat regenerates the Stencil-stat row of Table 1
// and the static half of Figure 2.
func BenchmarkTable1StencilStat(b *testing.B) {
	s := benchSuite()
	forSystems(b, func(sys cstar.System) workloads.Result {
		return workloads.RunStencil(sys, s.StencilSpec("static"), s.Cfg)
	})
}

// BenchmarkTable1StencilDyn regenerates the Stencil-dyn row of Table 1 and
// the dynamic half of Figure 2.
func BenchmarkTable1StencilDyn(b *testing.B) {
	s := benchSuite()
	forSystems(b, func(sys cstar.System) workloads.Result {
		return workloads.RunStencil(sys, s.StencilSpec("dynamic"), s.Cfg)
	})
}

// BenchmarkTable1AdaptiveStat regenerates the Adaptive row of Table 1 /
// Figure 3 with static partitioning.
func BenchmarkTable1AdaptiveStat(b *testing.B) {
	s := benchSuite()
	forSystems(b, func(sys cstar.System) workloads.Result {
		return workloads.RunAdaptive(sys, s.AdaptiveSpec("static"), s.Cfg)
	})
}

// BenchmarkTable1AdaptiveDyn regenerates the Adaptive row of Table 1 /
// Figure 3 with dynamic partitioning (the paper's headline 1.9x case).
func BenchmarkTable1AdaptiveDyn(b *testing.B) {
	s := benchSuite()
	forSystems(b, func(sys cstar.System) workloads.Result {
		return workloads.RunAdaptive(sys, s.AdaptiveSpec("dynamic"), s.Cfg)
	})
}

// BenchmarkTable1Threshold regenerates the Threshold row of Table 1 /
// Figure 3.
func BenchmarkTable1Threshold(b *testing.B) {
	s := benchSuite()
	forSystems(b, func(sys cstar.System) workloads.Result {
		return workloads.RunThreshold(sys, s.ThresholdSpec(), s.Cfg)
	})
}

// BenchmarkTable1Unstructured regenerates the Unstructured row of Table 1
// / Figure 3.
func BenchmarkTable1Unstructured(b *testing.B) {
	s := benchSuite()
	forSystems(b, func(sys cstar.System) workloads.Result {
		return workloads.RunUnstructured(sys, s.UnstructuredSpec(), s.Cfg)
	})
}

// BenchmarkAblationReduction regenerates the Section 7.1 comparison of
// lock-based, hand-partialled and RSM reductions.
func BenchmarkAblationReduction(b *testing.B) {
	s := benchSuite()
	var last []harness.ReductionResult
	for i := 0; i < b.N; i++ {
		last = s.RunReduction(1 << 14)
	}
	for _, r := range last {
		b.ReportMetric(float64(r.Cycles), "simcycles_"+r.Strategy)
	}
}

// BenchmarkAblationFalseSharing regenerates the Section 7.4 false-sharing
// kernel.
func BenchmarkAblationFalseSharing(b *testing.B) {
	s := benchSuite()
	var last []harness.FalseSharingResult
	for i := 0; i < b.N; i++ {
		last = s.RunFalseSharing(8, 10)
	}
	for _, r := range last {
		b.ReportMetric(float64(r.Cycles), "simcycles_"+r.System.String())
	}
}

// BenchmarkAblationStaleData regenerates the Section 7.5 staleness sweep.
func BenchmarkAblationStaleData(b *testing.B) {
	s := benchSuite()
	var last []harness.StaleResult
	for i := 0; i < b.N; i++ {
		last = s.RunStaleData(128, 12, []int{0, 4})
	}
	for _, r := range last {
		if r.StalePhases == 4 && r.MaxLagSeen > 4 {
			b.Fatalf("staleness bound violated: %+v", r)
		}
		b.ReportMetric(float64(r.Misses), "simmisses")
	}
}
