package lcm_test

// One testing.B benchmark per table and figure of the paper, plus the
// Section 7 ablations.  Each benchmark runs the corresponding workload on
// the simulated machine and reports, besides Go's wall-clock numbers, the
// simulated metrics the paper's artifact reports: virtual cycles
// ("simcycles"), cache misses ("simmisses") and clean copies
// ("cleancopies").
//
// Benchmarks default to 1/8 of the paper's problem sizes so the whole
// suite completes in minutes; run cmd/lcmbench for full-scale numbers
// (EXPERIMENTS.md records a full-scale run).

import (
	"fmt"
	"io"
	"testing"

	"lcm/internal/cstar"
	"lcm/internal/harness"
	"lcm/internal/nodeset"
	"lcm/internal/workloads"
)

// benchScale divides paper problem sizes for the testing.B harness.
const benchScale = 8

func benchSuite() *harness.Suite {
	s := harness.New(io.Discard)
	s.Cfg = workloads.Config{P: 32}
	s.Scale = benchScale
	return s
}

func report(b *testing.B, r workloads.Result) {
	b.Helper()
	if r.Err != nil {
		b.Fatal(r.Err)
	}
	b.ReportMetric(float64(r.Cycles), "simcycles")
	b.ReportMetric(float64(r.C.Misses), "simmisses")
	b.ReportMetric(float64(r.CleanCopies()), "cleancopies")
}

// benchWorkload runs one (workload, system) cell b.N times.
func benchWorkload(b *testing.B, run func() workloads.Result) {
	b.Helper()
	var last workloads.Result
	for i := 0; i < b.N; i++ {
		last = run()
	}
	report(b, last)
}

func forSystems(b *testing.B, run func(sys cstar.System) workloads.Result) {
	for _, sys := range []cstar.System{cstar.Copying, cstar.LCMscc, cstar.LCMmcc} {
		b.Run(sys.String(), func(b *testing.B) {
			benchWorkload(b, func() workloads.Result { return run(sys) })
		})
	}
}

// BenchmarkTable1StencilStat regenerates the Stencil-stat row of Table 1
// and the static half of Figure 2.
func BenchmarkTable1StencilStat(b *testing.B) {
	s := benchSuite()
	forSystems(b, func(sys cstar.System) workloads.Result {
		return workloads.RunStencil(sys, s.StencilSpec("static"), s.Cfg)
	})
}

// BenchmarkTable1StencilDyn regenerates the Stencil-dyn row of Table 1 and
// the dynamic half of Figure 2.
func BenchmarkTable1StencilDyn(b *testing.B) {
	s := benchSuite()
	forSystems(b, func(sys cstar.System) workloads.Result {
		return workloads.RunStencil(sys, s.StencilSpec("dynamic"), s.Cfg)
	})
}

// BenchmarkTable1AdaptiveStat regenerates the Adaptive row of Table 1 /
// Figure 3 with static partitioning.
func BenchmarkTable1AdaptiveStat(b *testing.B) {
	s := benchSuite()
	forSystems(b, func(sys cstar.System) workloads.Result {
		return workloads.RunAdaptive(sys, s.AdaptiveSpec("static"), s.Cfg)
	})
}

// BenchmarkTable1AdaptiveDyn regenerates the Adaptive row of Table 1 /
// Figure 3 with dynamic partitioning (the paper's headline 1.9x case).
func BenchmarkTable1AdaptiveDyn(b *testing.B) {
	s := benchSuite()
	forSystems(b, func(sys cstar.System) workloads.Result {
		return workloads.RunAdaptive(sys, s.AdaptiveSpec("dynamic"), s.Cfg)
	})
}

// BenchmarkTable1Threshold regenerates the Threshold row of Table 1 /
// Figure 3.
func BenchmarkTable1Threshold(b *testing.B) {
	s := benchSuite()
	forSystems(b, func(sys cstar.System) workloads.Result {
		return workloads.RunThreshold(sys, s.ThresholdSpec(), s.Cfg)
	})
}

// BenchmarkTable1Unstructured regenerates the Unstructured row of Table 1
// / Figure 3.
func BenchmarkTable1Unstructured(b *testing.B) {
	s := benchSuite()
	forSystems(b, func(sys cstar.System) workloads.Result {
		return workloads.RunUnstructured(sys, s.UnstructuredSpec(), s.Cfg)
	})
}

// BenchmarkAblationReduction regenerates the Section 7.1 comparison of
// lock-based, hand-partialled and RSM reductions.
func BenchmarkAblationReduction(b *testing.B) {
	s := benchSuite()
	var last []harness.ReductionResult
	for i := 0; i < b.N; i++ {
		last = s.RunReduction(1 << 14)
	}
	for _, r := range last {
		b.ReportMetric(float64(r.Cycles), "simcycles_"+r.Strategy)
	}
}

// BenchmarkAblationFalseSharing regenerates the Section 7.4 false-sharing
// kernel.
func BenchmarkAblationFalseSharing(b *testing.B) {
	s := benchSuite()
	var last []harness.FalseSharingResult
	for i := 0; i < b.N; i++ {
		last = s.RunFalseSharing(8, 10)
	}
	for _, r := range last {
		b.ReportMetric(float64(r.Cycles), "simcycles_"+r.System.String())
	}
}

// BenchmarkAblationStaleData regenerates the Section 7.5 staleness sweep.
func BenchmarkAblationStaleData(b *testing.B) {
	s := benchSuite()
	var last []harness.StaleResult
	for i := 0; i < b.N; i++ {
		last = s.RunStaleData(128, 12, []int{0, 4})
	}
	for _, r := range last {
		if r.StalePhases == 4 && r.MaxLagSeen > 4 {
			b.Fatalf("staleness bound violated: %+v", r)
		}
		b.ReportMetric(float64(r.Misses), "simmisses")
	}
}

// NodeSet microbenchmarks: the directory copyset operations that sit on
// the protocols' hot paths, at machine widths on both sides of the
// 64-bit inline/spill boundary.  "P" is the machine width the set is
// sized for; each set holds every fourth node, the shape of a busy
// sharer mask.
func forNodeSetWidths(b *testing.B, bench func(b *testing.B, p int, s *nodeset.Set)) {
	for _, p := range []int{8, 64, 256, 1024} {
		ar := nodeset.NewArena(p - 1)
		s := ar.Make()
		for id := 0; id < p; id += 4 {
			s.Add(id)
		}
		b.Run(fmt.Sprintf("P=%d", p), func(b *testing.B) {
			b.ReportAllocs()
			bench(b, p, &s)
		})
	}
}

func BenchmarkNodeSetMembership(b *testing.B) {
	forNodeSetWidths(b, func(b *testing.B, p int, s *nodeset.Set) {
		hits := 0
		for i := 0; i < b.N; i++ {
			if s.Contains(i % p) {
				hits++
			}
		}
		if hits == 0 && b.N > 3 {
			b.Fatal("no members seen")
		}
	})
}

func BenchmarkNodeSetFanOut(b *testing.B) {
	// The invalidation fan-out shape: iterate every member, touch it.
	forNodeSetWidths(b, func(b *testing.B, p int, s *nodeset.Set) {
		sum := 0
		for i := 0; i < b.N; i++ {
			for it := s.Iter(); ; {
				id, ok := it.Next()
				if !ok {
					break
				}
				sum += id
			}
		}
		if sum == 0 && b.N > 0 && p > 4 {
			b.Fatal("empty iteration")
		}
	})
}

func BenchmarkNodeSetPopcount(b *testing.B) {
	forNodeSetWidths(b, func(b *testing.B, p int, s *nodeset.Set) {
		total := 0
		for i := 0; i < b.N; i++ {
			total += s.Count()
		}
		if total < b.N { // every width holds P/4 >= 2 members
			b.Fatal("bad count")
		}
	})
}

func BenchmarkNodeSetAddRemove(b *testing.B) {
	// The fault-path mutation pair; must stay allocation-free at any P.
	forNodeSetWidths(b, func(b *testing.B, p int, s *nodeset.Set) {
		for i := 0; i < b.N; i++ {
			id := (i*7 + 1) % p
			s.Add(id)
			s.Remove(id)
		}
	})
}
