// Package cost defines the virtual-time cost model for the simulated
// Tempest machine.
//
// The reproduction runs protocols by execution-driven simulation: every
// program memory access consults fine-grain access-control tags, and
// protocol events charge virtual cycles to the node that experiences them.
// The constants below are calibrated to the Blizzard-E / CM-5 platform of
// the paper: a 33 MHz SPARC node where a software-handled remote miss costs
// a few thousand cycles, an access-control change tens of cycles, and a
// local-memory (Stache) fill tens of cycles.  Absolute values are a model;
// the reproduction targets relative shapes (see EXPERIMENTS.md).
package cost

// Model holds the per-event virtual-cycle charges used by the simulator.
// All fields are in processor cycles.
type Model struct {
	// CacheHit is charged for every load or store that the access-control
	// tags permit (the common case; Blizzard-E's inline tag check).
	CacheHit int64

	// LocalFill is charged when a miss is satisfied from the node's own
	// local memory (its Stache region or a locally retained clean copy).
	LocalFill int64

	// RemoteRoundTrip is charged to the requester for a two-message
	// request/response exchange with a remote home node.
	RemoteRoundTrip int64

	// ThirdHop is the additional charge when the home must forward the
	// request to a dirty remote owner (three-hop miss).
	ThirdHop int64

	// PerByte is the bandwidth term: charged per byte of block payload
	// on every data-carrying remote transfer, on top of the fixed
	// round-trip latency.  It makes large-block configurations pay for
	// the data they move.
	PerByte int64

	// HomeOccupancy is charged to the *home* node each time one of its
	// protocol handlers runs a blocking request on behalf of another
	// node (handler "stealing" compute cycles, as in Blizzard).
	HomeOccupancy int64

	// FlushOccupancy is charged to the home node per incoming one-way
	// block flush.  Flushes are fire-and-forget messages, much cheaper
	// to field than blocking miss requests.
	FlushOccupancy int64

	// InvalidatePerCopy is charged to the invalidating requester per
	// outstanding copy that must be invalidated.
	InvalidatePerCopy int64

	// Upgrade is charged for a ReadOnly -> ReadWrite permission upgrade
	// that carries no data.
	Upgrade int64

	// MarkLocal is charged for an LCM MarkModification that is satisfied
	// entirely locally (block already cached with a local clean copy).
	MarkLocal int64

	// FlushPerBlock is the fixed per-block charge for returning a
	// modified block to its home at FlushCopies/ReconcileCopies time.
	FlushPerBlock int64

	// MergePerWord is charged (to the home) per modified word merged into
	// the home's pending reconciled image.
	MergePerWord int64

	// Barrier is the fixed cost of a global barrier, charged to each node
	// on top of the synchronization (clock max) itself.
	Barrier int64

	// CopyPerWord is charged per word for program-level explicit copying
	// (the compiler-generated two-array strategy of the baseline): the
	// load, store and address arithmetic of the copy loop, including the
	// pointer chasing that copying a linked structure such as the
	// adaptive mesh's quad-trees entails.
	CopyPerWord int64

	// Compute is the charge for one abstract unit of computation; each
	// workload charges a small number of these per invocation so that
	// computation is not free relative to communication.
	Compute int64

	// The four fields below price crash recovery.  They are charged only
	// when the machine runs with Recovery enabled, so fault-free runs
	// remain bit-identical to historical results.

	// CheckpointPerLine is charged per installed line snapshotted into a
	// node's barrier-epoch checkpoint (a local memory copy).
	CheckpointPerLine int64

	// RestartBase is the fixed charge of one checkpoint restart: fault
	// detection, reinitialization, rejoining the computation.
	RestartBase int64

	// RestorePerLine is charged per line restored from the checkpoint at
	// restart (a local memory copy back).
	RestorePerLine int64

	// ReplayPerOp is charged per memory operation deterministically
	// replayed between the restored checkpoint and the crash point.
	ReplayPerOp int64
}

// Default returns the cost model used for all paper-reproduction
// experiments.  Values approximate Blizzard-E on a 32-node CM-5.
func Default() Model {
	return Model{
		CacheHit:          1,
		LocalFill:         40,
		RemoteRoundTrip:   3000,
		ThirdHop:          1500,
		PerByte:           2,
		HomeOccupancy:     400,
		FlushOccupancy:    60,
		InvalidatePerCopy: 300,
		Upgrade:           600,
		MarkLocal:         30,
		FlushPerBlock:     250,
		MergePerWord:      5,
		Barrier:           4000,
		CopyPerWord:       20,
		Compute:           40,
		CheckpointPerLine: 10,
		RestartBase:       20000,
		RestorePerLine:    40,
		ReplayPerOp:       2,
	}
}

// Uniform returns a degenerate model where every event costs c cycles.
// Used by tests that verify event counting independent of weighting.
func Uniform(c int64) Model {
	return Model{
		CacheHit: c, LocalFill: c, RemoteRoundTrip: c, ThirdHop: c,
		PerByte: c, HomeOccupancy: c, FlushOccupancy: c, InvalidatePerCopy: c, Upgrade: c, MarkLocal: c,
		FlushPerBlock: c, MergePerWord: c, Barrier: c, CopyPerWord: c,
		Compute:           c,
		CheckpointPerLine: c, RestartBase: c, RestorePerLine: c, ReplayPerOp: c,
	}
}

// Zero returns a model where nothing costs anything.  Useful for tests
// that assert pure protocol-state behaviour.
func Zero() Model { return Model{} }
