package cost

import "testing"

func TestDefaultOrdering(t *testing.T) {
	c := Default()
	// The relative cost structure the experiments depend on.
	if !(c.RemoteRoundTrip > c.InvalidatePerCopy &&
		c.InvalidatePerCopy > c.FlushPerBlock &&
		c.FlushPerBlock > c.LocalFill &&
		c.LocalFill > c.CacheHit &&
		c.CacheHit > 0) {
		t.Fatalf("cost ordering broken: %+v", c)
	}
	// Flushes are fire-and-forget: far cheaper than blocking misses for
	// both sender and receiver.
	if c.FlushPerBlock >= c.RemoteRoundTrip/4 {
		t.Fatal("flush should be much cheaper than a blocking miss")
	}
	if c.FlushOccupancy >= c.HomeOccupancy {
		t.Fatal("flush handler should be cheaper than a miss handler")
	}
}

func TestUniformAndZero(t *testing.T) {
	u := Uniform(7)
	if u.CacheHit != 7 || u.Barrier != 7 || u.MergePerWord != 7 || u.FlushOccupancy != 7 {
		t.Fatalf("uniform: %+v", u)
	}
	z := Zero()
	if z.RemoteRoundTrip != 0 || z.Compute != 0 {
		t.Fatalf("zero: %+v", z)
	}
}
