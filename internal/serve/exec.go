package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"

	"lcm/internal/check"
	"lcm/internal/cstar"
	"lcm/internal/harness"
	"lcm/internal/net"
	"lcm/internal/workloads"
)

// maxOutputEvents caps the harness output lines mirrored into a job's
// progress stream; past it the stream notes the truncation once (the
// full output still shapes netsweep result bytes).
const maxOutputEvents = 500

// lineEmitter mirrors harness Out lines into "output" progress events.
type lineEmitter struct {
	j     *Job
	buf   bytes.Buffer
	lines int
}

func (le *lineEmitter) Write(p []byte) (int, error) {
	le.buf.Write(p)
	for {
		line, err := le.buf.ReadString('\n')
		if err != nil {
			le.buf.WriteString(line) // incomplete line; keep for next write
			return len(p), nil
		}
		le.lines++
		if le.lines == maxOutputEvents {
			le.j.publish(Event{Event: "output", Line: "... output truncated in progress stream ..."})
		} else if le.lines < maxOutputEvents {
			le.j.publish(Event{Event: "output", Line: strings.TrimRight(line, "\n")})
		}
	}
}

// buildConfig turns a normalized spec into the machine configuration,
// mirroring cmd/lcmbench flag handling exactly so server-mode results
// are byte-identical to process-mode runs of the same tuple.
func buildConfig(sp JobSpec) workloads.Config {
	cfg := workloads.Config{
		P:         sp.P,
		BlockSize: uint32(sp.BlockSize),
		Verify:    sp.Verify,
		SchedSeed: sp.SchedSeed,
		FreeRun:   sp.Scheduler == "freerun",
		Par:       sp.Par,
	}
	if sp.Net != "uniform" || sp.LinkBW != 0 || sp.NILat != 0 {
		cfg.Net = &net.Config{Model: sp.Net, CyclesPerByte: sp.LinkBW, NICycles: sp.NILat}
	}
	return cfg
}

// chaosPlans resolves a chaos fault-plan name ("" = all defaults).
func chaosPlans(name string) ([]harness.ChaosPlan, error) {
	all := harness.DefaultChaosPlans()
	if name == "" {
		return all, nil
	}
	for _, p := range all {
		if p.Name == name {
			return []harness.ChaosPlan{p}, nil
		}
	}
	return nil, fmt.Errorf("unknown chaos fault_plan %q", name)
}

// recoveryPlans resolves a recovery plan name ("" = all defaults).
func recoveryPlans(name string) ([]harness.RecoveryPlan, error) {
	all := harness.DefaultRecoveryPlans()
	if name == "" {
		return all, nil
	}
	for _, p := range all {
		if p.Name == name {
			return []harness.RecoveryPlan{p}, nil
		}
	}
	return nil, fmt.Errorf("unknown recovery fault_plan %q", name)
}

// checkSystems resolves a model-checker protocol selector.
func checkSystems(name string) ([]cstar.System, error) {
	switch name {
	case "", "all":
		return []cstar.System{cstar.Copying, cstar.LCMscc, cstar.LCMmcc}, nil
	case "copying":
		return []cstar.System{cstar.Copying}, nil
	case "scc":
		return []cstar.System{cstar.LCMscc}, nil
	case "mcc":
		return []cstar.System{cstar.LCMmcc}, nil
	}
	return nil, fmt.Errorf("unknown protocol %q (want copying, scc, mcc or all)", name)
}

// verdict is the deterministic result body of chaos and recovery jobs:
// the campaign configuration and its assertion outcome.  All failure
// text derives from simulation observables, so the bytes are as
// cacheable as a grid cell's.
type verdict struct {
	Schema   string   `json:"schema"`
	Kind     string   `json:"kind"`
	P        int      `json:"p"`
	Scale    int      `json:"scale"`
	Plans    []string `json:"plans"`
	Seeds    []uint64 `json:"seeds,omitempty"`
	OK       bool     `json:"ok"`
	Failures []string `json:"failures,omitempty"`
}

// checkOutcome is one model-checker configuration's result.
type checkOutcome struct {
	System    string `json:"system"`
	Script    string `json:"script"`
	Schedules int    `json:"schedules"`
	Pruned    int    `json:"pruned"`
	Exhausted bool   `json:"exhausted"`
	Violation string `json:"violation,omitempty"`
	Path      []int  `json:"path,omitempty"`
}

// checkReport is the deterministic result body of check jobs.
type checkReport struct {
	Schema   string         `json:"schema"`
	Nodes    int            `json:"nodes"`
	Blocks   int            `json:"blocks"`
	Outcomes []checkOutcome `json:"outcomes"`
	OK       bool           `json:"ok"`
}

func failureLines(err error) []string {
	if err == nil {
		return nil
	}
	return strings.Split(err.Error(), "\n")
}

// execute runs one dequeued job to a terminal state.  It is the queue's
// worker body: the job is already in StateRunning.
func (s *Server) execute(j *Job) {
	if s.beforeRun != nil {
		s.beforeRun(j)
	}
	start := time.Now()
	sp := j.Spec

	var out bytes.Buffer
	suite := harness.New(io.MultiWriter(&out, &lineEmitter{j: j}))
	suite.Cfg = buildConfig(sp)
	suite.Scale = sp.Scale
	suite.KVSkew = sp.KVSkew
	suite.KVReshard = sp.KVReshard

	var body []byte
	ctype := "application/json"
	var err error

	switch sp.Kind {
	case "grid":
		body, err = s.runGrid(j, suite, sp)
	case "netsweep":
		suite.DefaultNetSweep()
		body, ctype = out.Bytes(), "text/plain; charset=utf-8"
	case "chaos":
		plans, _ := chaosPlans(sp.FaultPlan)
		names := make([]string, len(plans))
		for i, p := range plans {
			names[i] = p.Name
		}
		cerr := suite.RunChaos(plans)
		body, err = json.MarshalIndent(verdict{
			Schema: "lcmd-chaos/1", Kind: sp.Kind, P: sp.P, Scale: sp.Scale,
			Plans: names, OK: cerr == nil, Failures: failureLines(cerr),
		}, "", "  ")
	case "recovery":
		plans, _ := recoveryPlans(sp.FaultPlan)
		names := make([]string, len(plans))
		for i, p := range plans {
			names[i] = p.Name
		}
		rerr := suite.RunRecovery(plans, sp.Seeds)
		body, err = json.MarshalIndent(verdict{
			Schema: "lcmd-recovery/1", Kind: sp.Kind, P: sp.P, Scale: sp.Scale,
			Plans: names, Seeds: sp.Seeds, OK: rerr == nil, Failures: failureLines(rerr),
		}, "", "  ")
	case "check":
		body, err = runCheck(sp)
	default:
		err = fmt.Errorf("unknown kind %q", sp.Kind)
	}
	wall := time.Since(start)

	if err != nil {
		s.stats.JobExecuted(sp.Kind, sp.Scheduler, wall.Seconds())
		j.fail(err.Error(), wall)
		return
	}
	cache := ""
	if j.Key != "" {
		s.cache.Put(j.Key, body, ctype, j.ID)
		cache = "miss"
	}
	s.stats.JobExecuted(sp.Kind, sp.Scheduler, wall.Seconds())
	j.finish(body, ctype, cache, wall)
}

// runGrid executes a grid job's cells, threads the per-record counters
// into the metrics registry, and renders the deterministic BENCH bytes —
// the same bytes `lcmbench -detjson` writes for this tuple.
func (s *Server) runGrid(j *Job, suite *harness.Suite, sp JobSpec) ([]byte, error) {
	cells := harness.GridCells()
	if len(sp.Cells) > 0 {
		cells = cells[:0]
		for _, name := range sp.Cells {
			c, err := harness.ParseCell(name)
			if err != nil {
				return nil, err
			}
			cells = append(cells, c)
		}
	}
	suite.OnProgress = func(p harness.Progress) {
		j.publish(Event{
			Event: "cell", Cell: p.Cell, System: p.System,
			Done: p.Done, Total: p.Total, SimCycles: p.SimCycles,
		})
	}
	rows, err := suite.RunCells(cells)
	if err != nil {
		return nil, err
	}
	var failures []string
	var samples []RecordSample
	for _, row := range rows {
		for _, sys := range []cstar.System{cstar.Copying, cstar.LCMscc, cstar.LCMmcc} {
			r, ok := row[sys]
			if !ok {
				continue
			}
			if r.Err != nil {
				failures = append(failures, fmt.Sprintf("%s/%s: %v", r.Label(), r.System, r.Err))
			}
			samples = append(samples, RecordSample{
				Job: j.ID, Workload: r.Workload, Sched: r.Sched,
				System: r.System.String(), SimCycles: r.Cycles, C: r.C,
			})
		}
	}
	s.stats.AddRecords(samples)
	if len(failures) > 0 {
		return nil, fmt.Errorf("failed cells:\n%s", strings.Join(failures, "\n"))
	}
	return harness.MarshalDeterministic(suite.Cfg, suite.Scale, rows)
}

// runCheck explores the model-checker tuple and renders its report.
func runCheck(sp JobSpec) ([]byte, error) {
	systems, _ := checkSystems(sp.Protocol)
	var scripts []check.Script
	for _, sc := range check.Scripts(sp.Nodes, sp.Blocks) {
		if sp.Script == "" || sc.Name == sp.Script {
			scripts = append(scripts, sc)
		}
	}
	if len(scripts) == 0 {
		return nil, fmt.Errorf("no model-check script named %q", sp.Script)
	}
	maxSchedules := sp.MaxSchedules
	if maxSchedules < 0 {
		maxSchedules = 0 // negative requests exhaustion
	}
	report := checkReport{Schema: "lcmd-check/1", Nodes: sp.Nodes, Blocks: sp.Blocks, OK: true}
	for _, sys := range systems {
		for _, sc := range scripts {
			res, err := check.Explore(check.Config{
				System: sys, Nodes: sp.Nodes, Blocks: sp.Blocks,
				Script: sc, MaxSchedules: maxSchedules,
			})
			if err != nil {
				return nil, err
			}
			oc := checkOutcome{
				System: sys.String(), Script: sc.Name,
				Schedules: res.Schedules, Pruned: res.Pruned, Exhausted: res.Exhausted,
			}
			if res.Violation != nil {
				oc.Violation = res.Violation.Err.Error()
				oc.Path = res.Violation.Path
				report.OK = false
			}
			report.Outcomes = append(report.Outcomes, oc)
		}
	}
	return json.MarshalIndent(report, "", "  ")
}
