package serve

import (
	"errors"
	"sync"
	"sync/atomic"
)

// Queue is the bounded-concurrency job queue: a fixed worker pool pulls
// submitted jobs in FIFO order, and at most depth jobs wait.  Drain
// stops intake, cancels everything still queued with a structured 503
// terminal event, and waits for running jobs to finish — so a SIGTERM
// never strands a client on a dead progress stream.
type Queue struct {
	run  func(*Job)
	jobs chan *Job
	wg   sync.WaitGroup

	mu       sync.Mutex
	closed   bool
	draining atomic.Bool
	queued   atomic.Int64
	running  atomic.Int64
}

// ErrQueueFull rejects a submission when depth jobs are already waiting.
var ErrQueueFull = errors.New("job queue full")

// ErrDraining rejects a submission during shutdown.
var ErrDraining = errors.New("server draining")

// NewQueue starts workers goroutines executing run on submitted jobs.
func NewQueue(workers, depth int, run func(*Job)) *Queue {
	if workers < 1 {
		workers = 1
	}
	if depth < 1 {
		depth = 1
	}
	q := &Queue{run: run, jobs: make(chan *Job, depth)}
	q.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go q.worker()
	}
	return q
}

func (q *Queue) worker() {
	defer q.wg.Done()
	for j := range q.jobs {
		q.queued.Add(-1)
		if q.draining.Load() {
			j.cancel(503, "server draining: job cancelled before start")
			continue
		}
		if !j.begin() {
			continue // cancelled while queued
		}
		q.running.Add(1)
		q.run(j)
		q.running.Add(-1)
	}
}

// Submit enqueues j, failing fast when the queue is full or draining.
func (q *Queue) Submit(j *Job) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrDraining
	}
	select {
	case q.jobs <- j:
		q.queued.Add(1)
		return nil
	default:
		return ErrQueueFull
	}
}

// Depth returns the number of jobs waiting to start.
func (q *Queue) Depth() int { return int(q.queued.Load()) }

// Running returns the number of jobs currently executing.
func (q *Queue) Running() int { return int(q.running.Load()) }

// Draining reports whether Drain has begun.
func (q *Queue) Draining() bool { return q.draining.Load() }

// Drain shuts the queue down gracefully: no new submissions, queued
// jobs are cancelled with a 503-style terminal progress event, running
// jobs finish.  It blocks until every worker has exited and is
// idempotent.
func (q *Queue) Drain() {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		q.wg.Wait()
		return
	}
	q.draining.Store(true)
	q.closed = true
	close(q.jobs)
	q.mu.Unlock()
	// Workers cancel the still-buffered jobs as they pull them off the
	// closed channel, then exit when it is empty.
	q.wg.Wait()
}
