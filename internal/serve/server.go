package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
)

// Options configures a Server.
type Options struct {
	// Workers is the job-execution concurrency (default 2).
	Workers int
	// QueueDepth bounds waiting jobs (default 64); past it, submissions
	// fail fast with 503.
	QueueDepth int
	// CacheEntries bounds the result cache (default 256 entries).
	CacheEntries int
	// MetricSamples bounds retained per-record counter samples
	// (default 4096).
	MetricSamples int
}

func (o Options) norm() Options {
	if o.Workers == 0 {
		o.Workers = 2
	}
	if o.QueueDepth == 0 {
		o.QueueDepth = 64
	}
	if o.CacheEntries == 0 {
		o.CacheEntries = 256
	}
	if o.MetricSamples == 0 {
		o.MetricSamples = 4096
	}
	return o
}

// Server is the lcmd HTTP service: a job queue over the harness, a
// content-addressed result cache, and the /metrics registry.
type Server struct {
	queue *Queue
	cache *Cache
	reg   *Registry
	stats *JobStats
	mux   *http.ServeMux

	mu     sync.Mutex
	jobs   map[string]*Job
	order  []string // submission order, for GET /jobs
	nextID int

	draining atomic.Bool

	// beforeRun, when non-nil, is invoked at the start of every executed
	// job; tests use it to hold a worker mid-job deterministically.
	beforeRun func(*Job)
}

// New creates a Server and starts its worker pool.
func New(opts Options) *Server {
	opts = opts.norm()
	s := &Server{
		cache: NewCache(opts.CacheEntries),
		reg:   NewRegistry(),
		stats: NewJobStats(opts.MetricSamples),
		jobs:  make(map[string]*Job),
	}
	s.queue = NewQueue(opts.Workers, opts.QueueDepth, s.execute)
	s.reg.Register(
		tempestCollector{s.stats},
		netCollector{s.stats},
		recoveryCollector{s.stats},
		schedCollector{s.stats},
		queueCollector{s},
	)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /jobs", s.handleList)
	s.mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /jobs/{id}/progress", s.handleProgress)
	s.mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /cache/stats", s.handleCacheStats)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s
}

// Handler returns the HTTP surface.
func (s *Server) Handler() http.Handler { return s.mux }

// Drain gracefully shuts the job layer down: new submissions get 503,
// queued jobs are cancelled with a structured terminal progress event,
// and Drain blocks until running jobs finish.  The HTTP listener is the
// caller's to close afterwards (progress streams end on their own once
// every job is terminal).
func (s *Server) Drain() {
	s.draining.Store(true)
	s.queue.Drain()
}

// Draining reports whether Drain has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

func (s *Server) job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

func (s *Server) jobsInState(st State) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, j := range s.jobs {
		if j.State() == st {
			n++
		}
	}
	return n
}

// submitResponse is the wire shape of POST /jobs.
type submitResponse struct {
	ID    string `json:"id"`
	State State  `json:"state"`
	// Cache is "hit" when the result was served from the content-
	// addressed cache without running, "miss" when the job will run and
	// populate it, and empty for uncacheable (freerun) specs.
	Cache string `json:"cache,omitempty"`
	Key   string `json:"key,omitempty"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone; nothing to do
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "server draining: not accepting jobs")
		return
	}
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "bad job spec: %v", err)
		return
	}
	if err := spec.Normalize(); err != nil {
		writeError(w, http.StatusBadRequest, "bad job spec: %v", err)
		return
	}
	key, cacheable := spec.CacheKey()

	s.mu.Lock()
	s.nextID++
	id := fmt.Sprintf("j%d", s.nextID)
	s.mu.Unlock()
	j := newJob(id, spec, key)

	if cacheable {
		if body, ctype, _, ok := s.cache.Get(key); ok {
			// Served bit-identically from the content-addressed cache:
			// the job is born done, no queue slot consumed.
			s.register(j)
			j.finish(body, ctype, "hit", 0)
			writeJSON(w, http.StatusOK, submitResponse{ID: j.ID, State: j.State(), Cache: "hit", Key: key})
			return
		}
	}
	if err := s.queue.Submit(j); err != nil {
		code := http.StatusServiceUnavailable
		if errors.Is(err, ErrQueueFull) {
			writeError(w, code, "job queue full (%d waiting)", s.queue.Depth())
		} else {
			writeError(w, code, "%v", err)
		}
		return
	}
	s.register(j)
	resp := submitResponse{ID: j.ID, State: j.State(), Key: key}
	if cacheable {
		resp.Cache = "miss"
	}
	writeJSON(w, http.StatusAccepted, resp)
}

func (s *Server) register(j *Job) {
	s.mu.Lock()
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	s.mu.Unlock()
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	s.mu.Unlock()
	out := make([]status, 0, len(ids))
	for _, id := range ids {
		if j, ok := s.job(id); ok {
			out = append(out, j.status())
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

// handleProgress streams the job's event log as NDJSON until the job
// reaches a terminal state; late subscribers replay the retained log
// first, so a client can always read a complete stream.
func (s *Server) handleProgress(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for from := 0; ; {
		evs, final := j.eventsFrom(from)
		for _, ev := range evs {
			if err := enc.Encode(ev); err != nil {
				return // client gone
			}
		}
		from += len(evs)
		if flusher != nil {
			flusher.Flush()
		}
		if final {
			return
		}
	}
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	body, ctype, cache, ok := j.Result()
	if !ok {
		st := j.status()
		if st.State.Terminal() {
			writeError(w, http.StatusGone, "job %s %s: %s", j.ID, st.State, st.Error)
			return
		}
		writeError(w, http.StatusConflict, "job %s still %s; stream /jobs/%s/progress", j.ID, st.State, j.ID)
		return
	}
	w.Header().Set("Content-Type", ctype)
	if cache != "" {
		w.Header().Set("X-Lcmd-Cache", cache)
	}
	w.WriteHeader(http.StatusOK)
	w.Write(body) //nolint:errcheck // client gone; nothing to do
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WritePrometheus(w) //nolint:errcheck // client gone; nothing to do
}

func (s *Server) handleCacheStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.cache.Stats())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	w.Header().Set("Content-Type", "text/plain")
	fmt.Fprintln(w, "ok")
}
