package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"lcm/internal/harness"
	"lcm/internal/workloads"
)

// smallGrid is the cheap e2e tuple: one cell, tiny machine, tiny problem.
func smallGrid() JobSpec {
	return JobSpec{Kind: "grid", Cells: []string{"Stencil-static"}, P: 4, Scale: 64}
}

func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s := New(opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Drain()
	})
	return s, ts
}

func submit(t *testing.T, ts *httptest.Server, sp JobSpec) (int, submitResponse) {
	t.Helper()
	b, err := json.Marshal(sp)
	if err != nil {
		t.Fatalf("marshal spec: %v", err)
	}
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("POST /jobs: %v", err)
	}
	defer resp.Body.Close()
	var sr submitResponse
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
			t.Fatalf("decode submit response: %v", err)
		}
	}
	return resp.StatusCode, sr
}

// progress reads the job's whole NDJSON stream (blocks until terminal).
func progress(t *testing.T, ts *httptest.Server, id string) []Event {
	t.Helper()
	resp, err := http.Get(ts.URL + "/jobs/" + id + "/progress")
	if err != nil {
		t.Fatalf("GET progress: %v", err)
	}
	defer resp.Body.Close()
	var evs []Event
	dec := json.NewDecoder(resp.Body)
	for {
		var ev Event
		if err := dec.Decode(&ev); err == io.EOF {
			return evs
		} else if err != nil {
			t.Fatalf("decode progress event: %v", err)
		}
		evs = append(evs, ev)
	}
}

func result(t *testing.T, ts *httptest.Server, id string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/jobs/" + id + "/result")
	if err != nil {
		t.Fatalf("GET result: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read result: %v", err)
	}
	return resp.StatusCode, resp.Header, body
}

func get(t *testing.T, ts *httptest.Server, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return resp.StatusCode, body
}

// A grid job run through the server must produce byte-for-byte the same
// deterministic BENCH JSON as running the harness in process — the
// server is a delivery mechanism, not a different simulator.
func TestGridJobMatchesProcessModeBytes(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	code, sr := submit(t, ts, smallGrid())
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202", code)
	}
	if sr.Cache != "miss" || sr.Key == "" {
		t.Fatalf("submit response = %+v, want cache=miss with a key", sr)
	}

	evs := progress(t, ts, sr.ID)
	var kinds []string
	cellEvents := 0
	for _, ev := range evs {
		kinds = append(kinds, ev.Event)
		if ev.Event == "cell" {
			cellEvents++
			if ev.SimCycles <= 0 || ev.Total != 3 || ev.Done < 1 || ev.Done > 3 {
				t.Errorf("bad cell event: %+v", ev)
			}
		}
	}
	if cellEvents != 3 { // one per memory system
		t.Errorf("cell events = %d (%v), want 3", cellEvents, kinds)
	}
	last := evs[len(evs)-1]
	if last.Event != "done" || last.Cache != "miss" {
		t.Fatalf("terminal event = %+v, want done/miss", last)
	}

	code, hdr, body := result(t, ts, sr.ID)
	if code != http.StatusOK {
		t.Fatalf("result = %d: %s", code, body)
	}
	if hc := hdr.Get("X-Lcmd-Cache"); hc != "miss" {
		t.Errorf("X-Lcmd-Cache = %q, want miss", hc)
	}

	// In-process oracle: the same tuple through the harness library.
	suite := harness.New(io.Discard)
	suite.Cfg = workloads.Config{P: 4}
	suite.Scale = 64
	rows, err := suite.RunCells([]harness.CellSpec{{Workload: "Stencil", Sched: "static"}})
	if err != nil {
		t.Fatalf("RunCells: %v", err)
	}
	want, err := harness.MarshalDeterministic(suite.Cfg, suite.Scale, rows)
	if err != nil {
		t.Fatalf("MarshalDeterministic: %v", err)
	}
	if !bytes.Equal(body, want) {
		t.Errorf("server-mode bytes differ from process-mode bytes:\nserver: %s\nprocess: %s", body, want)
	}
}

// A KV serving-cell job through the server must also match process-mode
// bytes, with the KV tuning knobs threaded through the suite exactly as
// cmd/lcmbench threads its flags.
func TestKVGridJobMatchesProcessModeBytes(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	spec := JobSpec{Kind: "grid", Cells: []string{"KV-read"}, P: 8, Scale: 16,
		Verify: true, KVSkew: 1.2, KVReshard: 2}
	code, sr := submit(t, ts, spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202", code)
	}
	progress(t, ts, sr.ID)
	code, _, body := result(t, ts, sr.ID)
	if code != http.StatusOK {
		t.Fatalf("result = %d: %s", code, body)
	}

	suite := harness.New(io.Discard)
	suite.Cfg = workloads.Config{P: 8, Verify: true}
	suite.Scale = 16
	suite.KVSkew = 1.2
	suite.KVReshard = 2
	rows, err := suite.RunCells([]harness.CellSpec{{Workload: "KV", Sched: "read"}})
	if err != nil {
		t.Fatalf("RunCells: %v", err)
	}
	want, err := harness.MarshalDeterministic(suite.Cfg, suite.Scale, rows)
	if err != nil {
		t.Fatalf("MarshalDeterministic: %v", err)
	}
	if !bytes.Equal(body, want) {
		t.Errorf("KV server-mode bytes differ from process-mode bytes:\nserver: %s\nprocess: %s", body, want)
	}
	var bf harness.BenchFile
	if err := json.Unmarshal(body, &bf); err != nil {
		t.Fatalf("unmarshal result: %v", err)
	}
	for _, rec := range bf.Records {
		if rec.KVOps <= 0 || rec.KVAnswer == 0 || !rec.Verified {
			t.Errorf("record missing KV observables: %+v", rec)
		}
	}
}

// A repeated submission of the same tuple is served from the content-
// addressed cache, bit-identically, without consuming a queue slot.
func TestCacheHitServesIdenticalBytes(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	code, first := submit(t, ts, smallGrid())
	if code != http.StatusAccepted {
		t.Fatalf("first submit = %d, want 202", code)
	}
	progress(t, ts, first.ID) // wait for completion
	_, _, firstBody := result(t, ts, first.ID)

	code, second := submit(t, ts, smallGrid())
	if code != http.StatusOK {
		t.Fatalf("second submit = %d, want 200 (cache hit)", code)
	}
	if second.Cache != "hit" {
		t.Fatalf("second submit cache = %q, want hit", second.Cache)
	}
	if second.Key != first.Key {
		t.Errorf("same tuple produced different keys: %s vs %s", second.Key, first.Key)
	}
	code, hdr, secondBody := result(t, ts, second.ID)
	if code != http.StatusOK {
		t.Fatalf("cached result = %d", code)
	}
	if hc := hdr.Get("X-Lcmd-Cache"); hc != "hit" {
		t.Errorf("X-Lcmd-Cache = %q, want hit", hc)
	}
	if !bytes.Equal(firstBody, secondBody) {
		t.Errorf("cached bytes differ from the fresh run's bytes")
	}
	// The hit's event log terminates immediately: queued -> done(hit).
	evs := progress(t, ts, second.ID)
	if last := evs[len(evs)-1]; last.Event != "done" || last.Cache != "hit" {
		t.Errorf("cached job terminal event = %+v, want done/hit", last)
	}

	// Flipping the schedule seed is a different tuple: a miss that runs.
	flipped := smallGrid()
	flipped.SchedSeed = 1
	code, third := submit(t, ts, flipped)
	if code != http.StatusAccepted || third.Cache != "miss" {
		t.Fatalf("flipped-seed submit = %d %+v, want 202/miss", code, third)
	}
	if third.Key == first.Key {
		t.Errorf("flipping sched_seed kept the cache key")
	}
	progress(t, ts, third.ID)
	_, _, thirdBody := result(t, ts, third.ID)
	if bytes.Equal(thirdBody, firstBody) {
		t.Errorf("different sched_seed produced identical result bytes; seed not threaded through")
	}
}

// The /metrics surface must agree with the result bytes: the per-record
// tempest and interconnect counters exported for a job are the same
// numbers its BENCH JSON carries.
func TestMetricsMatchResultJSON(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	_, sr := submit(t, ts, smallGrid())
	progress(t, ts, sr.ID)
	_, _, body := result(t, ts, sr.ID)

	var bf harness.BenchFile
	if err := json.Unmarshal(body, &bf); err != nil {
		t.Fatalf("unmarshal result: %v", err)
	}
	if len(bf.Records) != 3 {
		t.Fatalf("records = %d, want 3", len(bf.Records))
	}

	code, scrape := get(t, ts, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	text := string(scrape)
	for _, r := range bf.Records {
		labels := fmt.Sprintf(`{job="%s",workload="%s",sched="%s",system="%s"}`, sr.ID, r.Workload, r.Sched, r.System)
		for _, want := range []string{
			fmt.Sprintf("lcmd_tempest_simcycles%s %d", labels, r.SimCycles),
			fmt.Sprintf("lcmd_tempest_simmisses%s %d", labels, r.SimMisses),
			fmt.Sprintf("lcmd_net_msgs%s %d", labels, r.NetMsgs),
			fmt.Sprintf("lcmd_net_bytes%s %d", labels, r.NetBytes),
		} {
			if !strings.Contains(text, want+"\n") {
				t.Errorf("/metrics missing %q", want)
			}
		}
	}
	for _, want := range []string{
		"# TYPE lcmd_tempest_simcycles gauge",
		"# TYPE lcmd_jobs_executed_total counter",
		`lcmd_jobs_executed_total{kind="grid"} 1`,
		`lcmd_sched_jobs_total{scheduler="det"} 1`,
		`lcmd_jobs_total{state="done"} 1`,
		"lcmd_draining 0",
		"lcmd_job_wall_seconds_count 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// One HELP/TYPE header per name, even with three records exported.
	if n := strings.Count(text, "# TYPE lcmd_tempest_simcycles "); n != 1 {
		t.Errorf("lcmd_tempest_simcycles TYPE headers = %d, want 1", n)
	}
}

// Graceful drain: queued-but-unstarted jobs end with a structured
// 503-style terminal progress event instead of leaving clients hanging,
// while the running job finishes normally.
func TestDrainCancelsQueuedJobs(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 4})
	started := make(chan string, 1)
	release := make(chan struct{})
	s.beforeRun = func(j *Job) {
		started <- j.ID
		<-release
	}

	_, running := submit(t, ts, smallGrid())
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("first job never started")
	}
	queued := smallGrid()
	queued.SchedSeed = 99 // distinct tuple so it cannot be served from cache
	code, waiting := submit(t, ts, queued)
	if code != http.StatusAccepted || waiting.State != StateQueued {
		t.Fatalf("second submit = %d state=%s, want 202 queued", code, waiting.State)
	}

	// Subscribe to the queued job's stream before draining: the drain
	// must terminate this live stream, not just future subscribers.
	streamed := make(chan []Event, 1)
	go func() { streamed <- progress(t, ts, waiting.ID) }()

	drained := make(chan struct{})
	go func() {
		s.Drain()
		close(drained)
	}()
	// Drain closes the queue; the worker is still blocked in beforeRun.
	select {
	case <-drained:
		t.Fatal("Drain returned while a job was still running")
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	select {
	case <-drained:
	case <-time.After(10 * time.Second):
		t.Fatal("Drain never returned")
	}

	evs := <-streamed
	last := evs[len(evs)-1]
	if last.Event != "cancelled" || last.Code != 503 {
		t.Fatalf("queued job terminal event = %+v, want cancelled/503", last)
	}
	if !strings.Contains(last.Reason, "draining") {
		t.Errorf("cancel reason = %q, want a draining explanation", last.Reason)
	}
	if st := waitingState(t, ts, waiting.ID); st != StateCancelled {
		t.Errorf("queued job state = %s, want cancelled", st)
	}
	if st := waitingState(t, ts, running.ID); st != StateDone {
		t.Errorf("running job state = %s, want done (running jobs finish during drain)", st)
	}

	// While draining: no new work, health says so, result of the
	// cancelled job is 410 with the structured reason.
	if code, _ := submit(t, ts, smallGrid()); code != http.StatusServiceUnavailable {
		t.Errorf("submit while draining = %d, want 503", code)
	}
	if code, _ := get(t, ts, "/healthz"); code != http.StatusServiceUnavailable {
		t.Errorf("healthz while draining = %d, want 503", code)
	}
	code, body := get(t, ts, "/jobs/"+waiting.ID+"/result")
	if code != http.StatusGone || !strings.Contains(string(body), "draining") {
		t.Errorf("cancelled job result = %d %s, want 410 with reason", code, body)
	}
	if _, scrape := get(t, ts, "/metrics"); !strings.Contains(string(scrape), "lcmd_draining 1") {
		t.Errorf("/metrics does not report lcmd_draining 1 during drain")
	}
}

func waitingState(t *testing.T, ts *httptest.Server, id string) State {
	t.Helper()
	_, body := get(t, ts, "/jobs/"+id)
	var st status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("unmarshal status: %v", err)
	}
	return st.State
}

// A full queue fails fast with 503 instead of blocking the submitter.
func TestQueueFullRejects(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 1})
	release := make(chan struct{})
	var once bool
	started := make(chan struct{}, 1)
	s.beforeRun = func(*Job) {
		if !once {
			once = true
			started <- struct{}{}
			<-release
		}
	}
	defer close(release)

	_, _ = submit(t, ts, smallGrid())
	<-started
	second := smallGrid()
	second.SchedSeed = 1
	if code, _ := submit(t, ts, second); code != http.StatusAccepted {
		t.Fatalf("second submit = %d, want 202 (fills the queue)", code)
	}
	third := smallGrid()
	third.SchedSeed = 2
	code, _ := submit(t, ts, third)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("third submit = %d, want 503 (queue full)", code)
	}
}

// Freerun jobs run, but are never content-addressed: both submissions
// execute and neither carries a cache disposition.
func TestFreerunNeverCached(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	sp := smallGrid()
	sp.Scheduler = "freerun"
	for i := 0; i < 2; i++ {
		code, sr := submit(t, ts, sp)
		if code != http.StatusAccepted {
			t.Fatalf("freerun submit %d = %d, want 202", i, code)
		}
		if sr.Cache != "" || sr.Key != "" {
			t.Fatalf("freerun submit %d = %+v, want no cache disposition", i, sr)
		}
		evs := progress(t, ts, sr.ID)
		if last := evs[len(evs)-1]; last.Event != "done" || last.Cache != "" {
			t.Fatalf("freerun terminal event = %+v, want done with no cache field", last)
		}
	}
}

// Model-checker jobs produce their deterministic report and are cached
// like any other pure tuple.
func TestCheckJob(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	sp := JobSpec{Kind: "check", Script: "pingpong", Protocol: "scc", MaxSchedules: 500}
	code, sr := submit(t, ts, sp)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202", code)
	}
	progress(t, ts, sr.ID)
	code, _, body := result(t, ts, sr.ID)
	if code != http.StatusOK {
		t.Fatalf("result = %d: %s", code, body)
	}
	var report struct {
		Schema   string `json:"schema"`
		OK       bool   `json:"ok"`
		Outcomes []struct {
			System    string `json:"system"`
			Script    string `json:"script"`
			Schedules int    `json:"schedules"`
		} `json:"outcomes"`
	}
	if err := json.Unmarshal(body, &report); err != nil {
		t.Fatalf("unmarshal report: %v", err)
	}
	if report.Schema != "lcmd-check/1" || !report.OK {
		t.Fatalf("report = %+v, want ok lcmd-check/1", report)
	}
	if len(report.Outcomes) != 1 || report.Outcomes[0].Script != "pingpong" || report.Outcomes[0].Schedules == 0 {
		t.Fatalf("outcomes = %+v, want one explored pingpong outcome", report.Outcomes)
	}
	if code, sr2 := submit(t, ts, sp); code != http.StatusOK || sr2.Cache != "hit" {
		t.Errorf("repeat check submit = %d %+v, want 200 hit", code, sr2)
	}
}

// Malformed submissions are rejected up front with 400.
func TestSubmitRejectsBadSpecs(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	for _, body := range []string{
		`{"kind":"grid","cells":["Mandelbrot"]}`,
		`{"kind":"tournament"}`,
		`{"kind":"grid","surprise":true}`, // unknown fields are errors
		`not json`,
	} {
		resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("submit %q = %d, want 400", body, resp.StatusCode)
		}
	}
	if code, _ := get(t, ts, "/jobs/j99"); code != http.StatusNotFound {
		t.Errorf("unknown job status = %d, want 404", code)
	}
	if code, _ := get(t, ts, "/jobs/j99/result"); code != http.StatusNotFound {
		t.Errorf("unknown job result = %d, want 404", code)
	}
}

// The non-grid campaign kinds run end to end: netsweep's rendered
// table is the (cacheable) result body, and chaos/recovery produce
// their deterministic verdict JSON.
func TestNetsweepChaosRecoveryJobs(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})

	code, sw := submit(t, ts, JobSpec{Kind: "netsweep", P: 4, Scale: 64})
	if code != http.StatusAccepted {
		t.Fatalf("netsweep submit = %d, want 202", code)
	}
	evs := progress(t, ts, sw.ID)
	outputs := 0
	for _, ev := range evs {
		if ev.Event == "output" {
			outputs++
		}
	}
	if outputs == 0 {
		t.Errorf("netsweep produced no output events; harness lines not mirrored")
	}
	code, hdr, body := result(t, ts, sw.ID)
	if code != http.StatusOK {
		t.Fatalf("netsweep result = %d: %s", code, body)
	}
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("netsweep content type = %q, want text/plain", ct)
	}
	if !strings.Contains(string(body), "Sweep:") {
		t.Errorf("netsweep result does not contain the sweep table: %.200s", body)
	}

	code, ch := submit(t, ts, JobSpec{Kind: "chaos", P: 4, Scale: 64, FaultPlan: "light"})
	if code != http.StatusAccepted {
		t.Fatalf("chaos submit = %d, want 202", code)
	}
	progress(t, ts, ch.ID)
	_, _, body = result(t, ts, ch.ID)
	var v struct {
		Schema string   `json:"schema"`
		Plans  []string `json:"plans"`
		OK     bool     `json:"ok"`
	}
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatalf("unmarshal chaos verdict: %v in %.200s", err, body)
	}
	if v.Schema != "lcmd-chaos/1" || !v.OK || len(v.Plans) != 1 || v.Plans[0] != "light" {
		t.Errorf("chaos verdict = %+v, want passing lcmd-chaos/1 for plan light", v)
	}

	code, rc := submit(t, ts, JobSpec{Kind: "recovery", P: 4, Scale: 64, FaultPlan: "drop-1pct", Seeds: []uint64{1}})
	if code != http.StatusAccepted {
		t.Fatalf("recovery submit = %d, want 202", code)
	}
	progress(t, ts, rc.ID)
	_, _, body = result(t, ts, rc.ID)
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatalf("unmarshal recovery verdict: %v in %.200s", err, body)
	}
	if v.Schema != "lcmd-recovery/1" || !v.OK {
		t.Errorf("recovery verdict = %+v, want passing lcmd-recovery/1", v)
	}
}

// A run that errors inside the simulator fails the job with the error
// in its terminal event, and the failed result answers 410.
func TestFailedJobReportsError(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	// 512-byte blocks pass spec validation (power of two) but exceed the
	// protocol's element-tracking limit, failing every cell at run time.
	sp := smallGrid()
	sp.BlockSize = 512
	code, sr := submit(t, ts, sp)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202", code)
	}
	evs := progress(t, ts, sr.ID)
	last := evs[len(evs)-1]
	if last.Event != "failed" || last.Error == "" {
		t.Fatalf("terminal event = %+v, want failed with an error", last)
	}
	code, _, body := result(t, ts, sr.ID)
	if code != http.StatusGone {
		t.Fatalf("failed job result = %d %s, want 410", code, body)
	}
	// The failure is not cached: resubmitting runs (and fails) again.
	if code, sr2 := submit(t, ts, sp); code != http.StatusAccepted || sr2.Cache != "miss" {
		t.Errorf("resubmit after failure = %d %+v, want 202 miss", code, sr2)
	}
}

func TestHealthzAndCollectorNames(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1})
	code, body := get(t, ts, "/healthz")
	if code != http.StatusOK || !strings.Contains(string(body), "ok") {
		t.Errorf("healthz = %d %q, want 200 ok", code, body)
	}
	if s.Draining() {
		t.Errorf("fresh server reports draining")
	}
	names := map[string]bool{}
	for _, c := range []Collector{
		tempestCollector{s.stats}, netCollector{s.stats}, recoveryCollector{s.stats},
		schedCollector{s.stats}, queueCollector{s},
	} {
		if n := c.Name(); n == "" || names[n] {
			t.Errorf("collector name %q empty or duplicated", n)
		} else {
			names[n] = true
		}
	}
}

// GET /jobs lists submissions in order; /cache/stats reports the
// content-addressed entries.
func TestListAndCacheStats(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	_, a := submit(t, ts, smallGrid())
	progress(t, ts, a.ID)
	_, b := submit(t, ts, smallGrid()) // hit
	code, body := get(t, ts, "/jobs")
	if code != http.StatusOK {
		t.Fatalf("/jobs = %d", code)
	}
	var list []status
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatalf("unmarshal list: %v", err)
	}
	if len(list) != 2 || list[0].ID != a.ID || list[1].ID != b.ID {
		t.Fatalf("list = %+v, want [%s %s]", list, a.ID, b.ID)
	}

	code, body = get(t, ts, "/cache/stats")
	if code != http.StatusOK {
		t.Fatalf("/cache/stats = %d", code)
	}
	var cs CacheStats
	if err := json.Unmarshal(body, &cs); err != nil {
		t.Fatalf("unmarshal cache stats: %v", err)
	}
	if cs.Entries != 1 || cs.Hits != 1 || cs.Bytes == 0 {
		t.Fatalf("cache stats = %+v, want 1 entry, 1 hit, nonzero bytes", cs)
	}
	if len(cs.Keys) != 1 || cs.Keys[0].Key != a.Key || cs.Keys[0].Job != a.ID {
		t.Fatalf("cache keys = %+v, want the first job's entry", cs.Keys)
	}
}
