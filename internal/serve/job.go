package serve

import (
	"sync"
	"time"
)

// State is a job's lifecycle position.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Event is one NDJSON progress line of a job's stream.  Events carry no
// host timestamps so that a job's event log, like its result, is a pure
// function of the tuple (Seq orders them).
type Event struct {
	Seq   int    `json:"seq"`
	Event string `json:"event"` // queued|started|cell|output|done|failed|cancelled
	Job   string `json:"job"`

	// Grid cell progress ("cell" events).
	Cell      string `json:"cell,omitempty"`
	System    string `json:"system,omitempty"`
	Done      int    `json:"done,omitempty"`
	Total     int    `json:"total,omitempty"`
	SimCycles int64  `json:"simcycles,omitempty"`

	// One harness output line ("output" events).
	Line string `json:"line,omitempty"`

	// Terminal details: Cache is "hit" or "miss" on "done"; Code and
	// Reason explain "cancelled" (503 = server draining before start);
	// Error explains "failed".
	Cache  string `json:"cache,omitempty"`
	Code   int    `json:"code,omitempty"`
	Reason string `json:"reason,omitempty"`
	Error  string `json:"error,omitempty"`
}

// Job is one submitted campaign and its event log.  The log is append-
// only under mu; readers block on cond until new events or a terminal
// state arrive, so a progress stream needs no per-subscriber channels
// and a slow client can never stall the runner.
type Job struct {
	ID   string
	Spec JobSpec
	// Key is the result's content address ("" when uncacheable).
	Key string

	mu     sync.Mutex
	cond   *sync.Cond
	state  State
	events []Event
	body   []byte
	ctype  string
	cache  string // "hit" | "miss" | "" (uncacheable)
	errMsg string
	wall   time.Duration
	done   chan struct{}
}

func newJob(id string, spec JobSpec, key string) *Job {
	j := &Job{ID: id, Spec: spec, Key: key, state: StateQueued, done: make(chan struct{})}
	j.cond = sync.NewCond(&j.mu)
	j.publish(Event{Event: "queued"})
	return j
}

// publish appends ev to the log (stamping Seq and Job) and wakes readers.
func (j *Job) publish(ev Event) {
	j.mu.Lock()
	ev.Seq = len(j.events)
	ev.Job = j.ID
	j.events = append(j.events, ev)
	j.cond.Broadcast()
	j.mu.Unlock()
}

// State returns the current lifecycle state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// begin moves queued -> running; it returns false if the job was already
// cancelled (a drain won the race), in which case the worker must skip it.
func (j *Job) begin() bool {
	j.mu.Lock()
	if j.state != StateQueued {
		j.mu.Unlock()
		return false
	}
	j.state = StateRunning
	j.mu.Unlock()
	j.publish(Event{Event: "started"})
	return true
}

// terminate moves the job to a final state, records the terminal event,
// and releases every waiter.  It is a no-op if the job is already final.
func (j *Job) terminate(state State, ev Event, body []byte, ctype, errMsg string, wall time.Duration) {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return
	}
	j.state = state
	j.body = body
	j.ctype = ctype
	j.errMsg = errMsg
	j.wall = wall
	j.mu.Unlock()
	j.publish(ev)
	close(j.done)
}

// finish completes the job successfully with its result bytes.  cache is
// "hit", "miss" or "" (uncacheable spec).
func (j *Job) finish(body []byte, ctype, cache string, wall time.Duration) {
	j.mu.Lock()
	j.cache = cache
	j.mu.Unlock()
	j.terminate(StateDone, Event{Event: "done", Cache: cache}, body, ctype, "", wall)
}

// fail completes the job with an error.
func (j *Job) fail(msg string, wall time.Duration) {
	j.terminate(StateFailed, Event{Event: "failed", Error: msg}, nil, "", msg, wall)
}

// cancel completes a never-started job with a structured terminal event,
// so progress streams end with an explanation instead of hanging on a
// dead connection.  code follows HTTP semantics (503 = server draining).
func (j *Job) cancel(code int, reason string) {
	j.terminate(StateCancelled, Event{Event: "cancelled", Code: code, Reason: reason}, nil, "", reason, 0)
}

// Result returns the result bytes once the job is done.
func (j *Job) Result() (body []byte, ctype, cache string, ok bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateDone {
		return nil, "", "", false
	}
	return j.body, j.ctype, j.cache, true
}

// eventsFrom returns the events at index >= from, blocking until at
// least one exists or the job is terminal.  final is true once the
// returned slice reaches the end of a terminated job's log, i.e. the
// stream is complete.
func (j *Job) eventsFrom(from int) (evs []Event, final bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	for from >= len(j.events) && !j.state.Terminal() {
		j.cond.Wait()
	}
	evs = append(evs, j.events[from:]...)
	return evs, j.state.Terminal() && from+len(evs) == len(j.events)
}

// status is the wire shape of GET /jobs/{id}.
type status struct {
	ID    string  `json:"id"`
	State State   `json:"state"`
	Spec  JobSpec `json:"spec"`
	Cache string  `json:"cache,omitempty"`
	Error string  `json:"error,omitempty"`
	// WallNS is the host runtime of a finished run (0 for cache hits and
	// unfinished jobs); informational, never part of result bytes.
	WallNS int64 `json:"wall_ns,omitempty"`
}

func (j *Job) status() status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return status{
		ID: j.ID, State: j.state, Spec: j.Spec,
		Cache: j.cache, Error: j.errMsg, WallNS: j.wall.Nanoseconds(),
	}
}
