// Package serve runs the simulator as a long-running service: harness
// campaigns (grid cells, the interconnect sweep, the chaos and recovery
// matrices, the protocol model checker) become submitted jobs behind a
// bounded-concurrency queue with streaming NDJSON progress, a
// content-addressed result cache keyed on the full deterministic run
// tuple, and a Prometheus-text /metrics surface exporting the per-node
// simulation counters that previously only landed in JSON/CSV files.
//
// Everything the simulator computes is a pure function of the submitted
// tuple (the deterministic scheduler makes even simulated cycles
// replayable), so a repeated submission is served from cache
// bit-identically to the first run — and to a process-mode `lcmbench
// -detjson` run of the same tuple.
package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"lcm/internal/cost"
	"lcm/internal/harness"
	"lcm/internal/net"
)

// JobSpec is the wire shape of one submitted job: the deterministic run
// tuple plus host-side execution knobs.  The zero value of every field
// means "the default", so a spec with explicit defaults and one that
// omits them normalize to the same tuple and hit the same cache entry.
type JobSpec struct {
	// Kind selects the campaign: "grid" (Table-1 cells), "netsweep"
	// (interconnect sensitivity sweep), "chaos" (fault-injection
	// campaign), "recovery" (crash-recovery matrix) or "check" (protocol
	// model checker).
	Kind string `json:"kind"`

	// Cells restricts a grid job to the named cells ("Stencil-static",
	// "Threshold", "KV-read", ...); empty means the full Table-1 grid.
	Cells []string `json:"cells,omitempty"`

	// P is the simulated machine size (default 32, the paper's).
	P int `json:"p,omitempty"`
	// Scale divides the problem sizes (default 1 = paper scale).
	Scale int `json:"scale,omitempty"`
	// BlockSize is the coherence block size in bytes (0 = 32).
	BlockSize int `json:"blocksize,omitempty"`
	// Verify checks results against the sequential references.
	Verify bool `json:"verify,omitempty"`

	// Net selects the interconnect model: "" or "uniform" for the flat
	// historical charges, "fattree" for the CM-5-style tree.  LinkBW and
	// NILat are the fat tree's cycles-per-byte and per-message NI
	// occupancy overrides (0 = model defaults).
	Net    string `json:"net,omitempty"`
	LinkBW int64  `json:"linkbw,omitempty"`
	NILat  int64  `json:"nilat,omitempty"`

	// Scheduler is "" or "det" for the deterministic virtual-time
	// scheduler, "freerun" for host-scheduled goroutines.  Freerun
	// results are not run-to-run reproducible and are never cached.
	Scheduler string `json:"scheduler,omitempty"`
	// SchedSeed selects the deterministic schedule.
	SchedSeed uint64 `json:"sched_seed,omitempty"`

	// Par runs the deterministic schedule time-parallel on up to Par
	// workers.  It is a host-side knob — observables are bit-identical
	// to serial — so it is excluded from the cache key.
	Par int `json:"par,omitempty"`

	// KVSkew and KVReshard tune the serving-traffic (KV) cells: the Zipf
	// skew exponent (0 = workload default of 0.99) and the reshard
	// cadence in phases (0 = default, negative = resharding off).  Both
	// change simulation observables and so are part of the deterministic
	// tuple; zero values are omitted from JSON, keeping pre-KV cache keys
	// stable.
	KVSkew    float64 `json:"kv_skew,omitempty"`
	KVReshard int     `json:"kv_reshard,omitempty"`

	// FaultPlan names the chaos plan ("light", "heavy") or recovery plan
	// ("kill-at-barrier", "drop-1pct", ...); empty means every default
	// plan.  Part of the deterministic tuple.
	FaultPlan string `json:"fault_plan,omitempty"`
	// Seeds are the recovery-matrix seeds (default [1 2]).
	Seeds []uint64 `json:"seeds,omitempty"`

	// The model-checker tuple ("check" jobs).
	Protocol string `json:"protocol,omitempty"` // copying|scc|mcc|all
	Nodes    int    `json:"nodes,omitempty"`    // 2-3 (default 2)
	Blocks   int    `json:"blocks,omitempty"`   // 2-4 (default 2)
	Script   string `json:"script,omitempty"`   // canned script name ("" = all)
	// MaxSchedules bounds the interleavings explored per configuration
	// (0 = the service default of 5000; negative = exhaust the tree).
	MaxSchedules int `json:"max_schedules,omitempty"`
}

// specSchema versions the cache key; bump when normalization or result
// rendering changes meaning so stale entries cannot be served.
const specSchema = "lcmd/1"

// validKinds lists the campaigns the server runs.
var validKinds = map[string]bool{
	"grid": true, "netsweep": true, "chaos": true, "recovery": true, "check": true,
}

// Normalize applies defaults and validates the spec in place, so that
// every field of the result is the value the run will actually use (and
// the cache key is canonical).  It returns an error suitable for a 400
// response.
func (sp *JobSpec) Normalize() error {
	if !validKinds[sp.Kind] {
		return fmt.Errorf("unknown kind %q (want grid, netsweep, chaos, recovery or check)", sp.Kind)
	}
	if sp.P == 0 {
		sp.P = 32
	}
	if sp.P < 1 {
		return fmt.Errorf("p must be >= 1, got %d", sp.P)
	}
	if sp.Scale == 0 {
		sp.Scale = 1
	}
	if sp.Scale < 1 {
		return fmt.Errorf("scale must be >= 1, got %d", sp.Scale)
	}
	if sp.BlockSize != 0 && (sp.BlockSize < 8 || sp.BlockSize&(sp.BlockSize-1) != 0) {
		return fmt.Errorf("blocksize must be a power of two >= 8, got %d", sp.BlockSize)
	}
	switch sp.Scheduler {
	case "":
		sp.Scheduler = "det"
	case "det", "freerun":
	default:
		return fmt.Errorf("scheduler must be det or freerun, got %q", sp.Scheduler)
	}
	if sp.Net == "" {
		sp.Net = "uniform"
	}
	if sp.Net != "uniform" || sp.LinkBW != 0 || sp.NILat != 0 {
		cfg := net.Config{Model: sp.Net, CyclesPerByte: sp.LinkBW, NICycles: sp.NILat}
		if _, err := net.New(cfg, sp.P, cost.Default()); err != nil {
			return err
		}
	}
	if sp.Par < 0 {
		return fmt.Errorf("par must be >= 0, got %d", sp.Par)
	}
	if sp.KVSkew < 0 {
		return fmt.Errorf("kv_skew must be >= 0, got %v", sp.KVSkew)
	}

	for _, name := range sp.Cells {
		if _, err := harness.ParseCell(name); err != nil {
			return err
		}
	}
	switch sp.Kind {
	case "grid", "netsweep":
		if sp.FaultPlan != "" {
			return fmt.Errorf("fault_plan applies only to chaos and recovery jobs")
		}
	case "chaos":
		if _, err := chaosPlans(sp.FaultPlan); err != nil {
			return err
		}
	case "recovery":
		if _, err := recoveryPlans(sp.FaultPlan); err != nil {
			return err
		}
		if len(sp.Seeds) == 0 {
			sp.Seeds = []uint64{1, 2}
		}
	case "check":
		if sp.Nodes == 0 {
			sp.Nodes = 2
		}
		if sp.Nodes < 2 || sp.Nodes > 3 {
			return fmt.Errorf("nodes must be 2 or 3, got %d", sp.Nodes)
		}
		if sp.Blocks == 0 {
			sp.Blocks = 2
		}
		if sp.Blocks < 2 || sp.Blocks > 4 {
			return fmt.Errorf("blocks must be 2-4, got %d", sp.Blocks)
		}
		if sp.MaxSchedules == 0 {
			sp.MaxSchedules = 5000
		}
		if _, err := checkSystems(sp.Protocol); err != nil {
			return err
		}
	}
	return nil
}

// Cacheable reports whether the spec's results are a pure function of
// the tuple.  Only freerun scheduling breaks that: the host's goroutine
// interleaving leaks into order-dependent observables.
func (sp JobSpec) Cacheable() bool { return sp.Scheduler != "freerun" }

// CacheKey returns the content address of the spec's result: the SHA-256
// of the canonical JSON of the normalized tuple with host-side knobs
// (Par) masked out.  ok is false for uncacheable specs.
func (sp JobSpec) CacheKey() (key string, ok bool) {
	if !sp.Cacheable() {
		return "", false
	}
	k := sp
	k.Par = 0 // bit-identical to serial by construction; not part of the tuple
	b, err := json.Marshal(k)
	if err != nil {
		return "", false
	}
	sum := sha256.Sum256(append([]byte(specSchema+":"), b...))
	return hex.EncodeToString(sum[:]), true
}
