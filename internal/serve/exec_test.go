package serve

import (
	"encoding/json"
	"testing"
)

func TestPlanAndProtocolSelectors(t *testing.T) {
	if plans, err := chaosPlans(""); err != nil || len(plans) < 2 {
		t.Errorf("chaosPlans(\"\") = %d plans, %v; want all defaults", len(plans), err)
	}
	if plans, err := chaosPlans("heavy"); err != nil || len(plans) != 1 || plans[0].Name != "heavy" {
		t.Errorf("chaosPlans(heavy) = %v, %v", plans, err)
	}
	if _, err := chaosPlans("zap"); err == nil {
		t.Errorf("chaosPlans accepted an unknown plan")
	}
	if plans, err := recoveryPlans(""); err != nil || len(plans) < 2 {
		t.Errorf("recoveryPlans(\"\") = %d plans, %v; want all defaults", len(plans), err)
	}
	if plans, err := recoveryPlans("dup-storm"); err != nil || len(plans) != 1 || plans[0].Name != "dup-storm" {
		t.Errorf("recoveryPlans(dup-storm) = %v, %v", plans, err)
	}
	if _, err := recoveryPlans("zap"); err == nil {
		t.Errorf("recoveryPlans accepted an unknown plan")
	}
	for name, n := range map[string]int{"": 3, "all": 3, "copying": 1, "scc": 1, "mcc": 1} {
		systems, err := checkSystems(name)
		if err != nil || len(systems) != n {
			t.Errorf("checkSystems(%q) = %d systems, %v; want %d", name, len(systems), err, n)
		}
	}
	if _, err := checkSystems("moesi"); err == nil {
		t.Errorf("checkSystems accepted an unknown protocol")
	}
}

// buildConfig must mirror cmd/lcmbench's flag handling: a plain uniform
// tuple leaves Net nil (the bit-exact historical charges path), any
// explicit interconnect knob constructs the model config.
func TestBuildConfigNetSelection(t *testing.T) {
	sp := normalized(t, JobSpec{Kind: "grid", P: 8, Scale: 16})
	if cfg := buildConfig(sp); cfg.Net != nil {
		t.Errorf("uniform default built an explicit net config %+v", cfg.Net)
	}
	sp = normalized(t, JobSpec{Kind: "grid", P: 8, Scale: 16, Net: "fattree", LinkBW: 8, NILat: 100})
	cfg := buildConfig(sp)
	if cfg.Net == nil || cfg.Net.Model != "fattree" || cfg.Net.CyclesPerByte != 8 || cfg.Net.NICycles != 100 {
		t.Errorf("fattree spec built net config %+v", cfg.Net)
	}
	sp = normalized(t, JobSpec{Kind: "grid", P: 8, Scale: 16, Scheduler: "freerun"})
	if cfg := buildConfig(sp); !cfg.FreeRun {
		t.Errorf("freerun spec did not set Config.FreeRun")
	}
}

func TestRunCheckExhaustsAndRejects(t *testing.T) {
	sp := normalized(t, JobSpec{Kind: "check", Protocol: "copying", Script: "pingpong", MaxSchedules: -1})
	body, err := runCheck(sp)
	if err != nil {
		t.Fatalf("runCheck: %v", err)
	}
	var report checkReport
	if err := json.Unmarshal(body, &report); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if len(report.Outcomes) != 1 || !report.Outcomes[0].Exhausted || !report.OK {
		t.Errorf("report = %+v, want one exhausted clean outcome", report)
	}

	bad := normalized(t, JobSpec{Kind: "check"})
	bad.Script = "no-such-script" // past Normalize: runCheck must reject
	if _, err := runCheck(bad); err == nil {
		t.Errorf("runCheck accepted an unknown script")
	}
}

func TestFailureLines(t *testing.T) {
	if failureLines(nil) != nil {
		t.Errorf("failureLines(nil) != nil")
	}
	if got := failureLines(errTwoLines{}); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("failureLines = %v, want [a b]", got)
	}
}

type errTwoLines struct{}

func (errTwoLines) Error() string { return "a\nb" }

func TestConstructorClamps(t *testing.T) {
	c := NewCache(0)
	c.Put("k1", []byte("x"), "t", "j")
	c.Put("k2", []byte("y"), "t", "j")
	if st := c.Stats(); st.Entries != 1 {
		t.Errorf("NewCache(0) entries = %d, want clamp to 1", st.Entries)
	}
	js := NewJobStats(0)
	js.AddRecords([]RecordSample{{Job: "a"}, {Job: "b"}})
	if samples, _, _, _, _ := js.snapshot(); len(samples) != 1 {
		t.Errorf("NewJobStats(0) retained %d samples, want clamp to 1", len(samples))
	}
	q := NewQueue(0, 0, func(*Job) {})
	if err := q.Submit(newJob("j1", JobSpec{}, "")); err != nil {
		t.Errorf("clamped queue rejected a submission: %v", err)
	}
	q.Drain()
	if err := q.Submit(newJob("j2", JobSpec{}, "")); err != ErrDraining {
		t.Errorf("Submit after Drain = %v, want ErrDraining", err)
	}
	q.Drain() // idempotent
}

func TestNormalizeBoundsChecks(t *testing.T) {
	for _, sp := range []JobSpec{
		{Kind: "grid", P: -1},
		{Kind: "grid", Par: -2},
		{Kind: "check", Blocks: 5},
		{Kind: "check", MaxSchedules: 0, Nodes: 3, Blocks: 4, Protocol: "bogus"},
	} {
		spec := sp
		if err := spec.Normalize(); err == nil {
			t.Errorf("Normalize(%+v) accepted an out-of-bounds spec", sp)
		}
	}
	ok := JobSpec{Kind: "check"}
	if err := ok.Normalize(); err != nil {
		t.Fatalf("Normalize(check): %v", err)
	}
	if ok.Nodes != 2 || ok.Blocks != 2 || ok.MaxSchedules != 5000 {
		t.Errorf("check defaults = %+v, want nodes=2 blocks=2 max_schedules=5000", ok)
	}
}
