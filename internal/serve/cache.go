package serve

import (
	"container/list"
	"sync"
)

// Cache is the content-addressed result store: key is the SHA-256 of a
// job's normalized deterministic tuple (JobSpec.CacheKey), value the
// exact result bytes of the run that computed it.  Because every cached
// campaign is a pure function of its tuple, a hit is bit-identical to
// re-running the job — the lcmd-smoke CI job and the serve tests assert
// exactly that.  Eviction is LRU by entry count.
type Cache struct {
	mu      sync.Mutex
	max     int
	ll      *list.List // front = most recently used
	byKey   map[string]*list.Element
	bytes   int64
	hits    int64
	misses  int64
	evicted int64
}

type cacheEntry struct {
	key   string
	body  []byte
	ctype string
	// job is the job that computed the entry, for provenance in
	// /cache/stats dumps.
	job string
}

// NewCache creates a cache holding at most maxEntries results.
func NewCache(maxEntries int) *Cache {
	if maxEntries < 1 {
		maxEntries = 1
	}
	return &Cache{max: maxEntries, ll: list.New(), byKey: make(map[string]*list.Element)}
}

// Get returns the cached result for key, counting a hit or miss.  The
// returned bytes are shared — callers must not mutate them.
func (c *Cache) Get(key string) (body []byte, ctype, job string, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		c.misses++
		return nil, "", "", false
	}
	c.hits++
	c.ll.MoveToFront(el)
	e := el.Value.(*cacheEntry)
	return e.body, e.ctype, e.job, true
}

// Put stores a computed result under its content address, evicting the
// least recently used entry past capacity.
func (c *Cache) Put(key string, body []byte, ctype, job string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		// Deterministic tuple, deterministic bytes: a re-insert can only
		// carry the identical body, so just refresh recency.
		c.ll.MoveToFront(el)
		return
	}
	el := c.ll.PushFront(&cacheEntry{key: key, body: body, ctype: ctype, job: job})
	c.byKey[key] = el
	c.bytes += int64(len(body))
	for c.ll.Len() > c.max {
		back := c.ll.Back()
		e := back.Value.(*cacheEntry)
		c.ll.Remove(back)
		delete(c.byKey, e.key)
		c.bytes -= int64(len(e.body))
		c.evicted++
	}
}

// CacheStats is the wire shape of GET /cache/stats.
type CacheStats struct {
	Entries   int   `json:"entries"`
	Bytes     int64 `json:"bytes"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	// Keys lists the resident content addresses (most recent first) with
	// the job that computed each, for cache-stats artifact dumps.
	Keys []CacheKeyInfo `json:"keys,omitempty"`
}

// CacheKeyInfo describes one resident entry.
type CacheKeyInfo struct {
	Key   string `json:"key"`
	Bytes int    `json:"bytes"`
	Job   string `json:"job"`
}

// Stats snapshots the cache counters and resident keys.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := CacheStats{
		Entries: c.ll.Len(), Bytes: c.bytes,
		Hits: c.hits, Misses: c.misses, Evictions: c.evicted,
	}
	for el := c.ll.Front(); el != nil; el = el.Next() {
		e := el.Value.(*cacheEntry)
		st.Keys = append(st.Keys, CacheKeyInfo{Key: e.key, Bytes: len(e.body), Job: e.job})
	}
	return st
}
