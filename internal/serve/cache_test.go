package serve

import (
	"fmt"
	"testing"
)

// normalized returns a normalized copy of sp, failing the test on error.
func normalized(t *testing.T, sp JobSpec) JobSpec {
	t.Helper()
	if err := sp.Normalize(); err != nil {
		t.Fatalf("Normalize(%+v): %v", sp, err)
	}
	return sp
}

func keyOf(t *testing.T, sp JobSpec) string {
	t.Helper()
	key, ok := normalized(t, sp).CacheKey()
	if !ok {
		t.Fatalf("spec unexpectedly uncacheable: %+v", sp)
	}
	return key
}

// The cache key is the content address of the full deterministic tuple:
// the same tuple (with or without explicit defaults) maps to the same
// key, and flipping any one of seed, P, net, scheduler seed, block size
// or fault plan changes it.
func TestCacheKeyTupleSensitivity(t *testing.T) {
	base := JobSpec{Kind: "grid", Cells: []string{"Stencil-static"}, P: 8, Scale: 16}

	if got, want := keyOf(t, base), keyOf(t, base); got != want {
		t.Fatalf("same tuple produced different keys: %s vs %s", got, want)
	}
	// Explicit defaults and implicit defaults are the same tuple.
	explicit := base
	explicit.Scheduler = "det"
	explicit.Net = "uniform"
	if keyOf(t, base) != keyOf(t, explicit) {
		t.Errorf("explicit defaults changed the key")
	}
	// Par is a host-side knob: results are bit-identical, same address.
	par := base
	par.Par = 4
	if keyOf(t, base) != keyOf(t, par) {
		t.Errorf("par changed the key; it must not (observables are bit-identical)")
	}

	flips := map[string]JobSpec{}
	f := base
	f.SchedSeed = 42
	flips["sched_seed"] = f
	f = base
	f.P = 16
	flips["p"] = f
	f = base
	f.Net = "fattree"
	flips["net"] = f
	f = base
	f.BlockSize = 64
	flips["blocksize"] = f
	f = base
	f.Scale = 32
	flips["scale"] = f
	f = base
	f.Verify = true
	flips["verify"] = f
	f = base
	f.Cells = []string{"Threshold"}
	flips["cells"] = f
	f = base
	f.Cells = []string{"KV-read"}
	flips["kv cell"] = f
	f = base
	f.KVSkew = 1.2
	flips["kv_skew"] = f
	f = base
	f.KVReshard = -1
	flips["kv_reshard"] = f

	baseKey := keyOf(t, base)
	seen := map[string]string{baseKey: "base"}
	for name, sp := range flips {
		k := keyOf(t, sp)
		if prev, dup := seen[k]; dup {
			t.Errorf("flipping %s collided with %s (key %s)", name, prev, k)
		}
		seen[k] = name
	}

	// Fault plan and recovery seeds are part of the recovery tuple.
	rec := JobSpec{Kind: "recovery", P: 4, Scale: 16, FaultPlan: "drop-1pct"}
	recFlip := rec
	recFlip.FaultPlan = "dup-storm"
	recSeeds := rec
	recSeeds.Seeds = []uint64{7}
	if keyOf(t, rec) == keyOf(t, recFlip) {
		t.Errorf("flipping fault_plan did not change the key")
	}
	if keyOf(t, rec) == keyOf(t, recSeeds) {
		t.Errorf("flipping recovery seeds did not change the key")
	}
}

// Freerun scheduling leaks host interleaving into observables, so those
// runs are never content-addressed.
func TestFreerunUncacheable(t *testing.T) {
	sp := normalized(t, JobSpec{Kind: "grid", Scheduler: "freerun", P: 4, Scale: 64})
	if sp.Cacheable() {
		t.Fatalf("freerun spec reported cacheable")
	}
	if _, ok := sp.CacheKey(); ok {
		t.Fatalf("freerun spec produced a cache key")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2)
	put := func(i int) { c.Put(fmt.Sprintf("k%d", i), []byte{byte(i)}, "t", "j") }
	put(1)
	put(2)
	if _, _, _, ok := c.Get("k1"); !ok { // k1 now most recent
		t.Fatalf("k1 missing before capacity reached")
	}
	put(3) // evicts k2, the least recently used
	if _, _, _, ok := c.Get("k2"); ok {
		t.Errorf("k2 survived eviction; LRU order wrong")
	}
	if _, _, _, ok := c.Get("k1"); !ok {
		t.Errorf("k1 evicted despite recent use")
	}
	st := c.Stats()
	if st.Entries != 2 || st.Evictions != 1 {
		t.Errorf("stats = %+v, want 2 entries, 1 eviction", st)
	}
	if st.Hits != 2 || st.Misses != 1 {
		t.Errorf("stats = %+v, want 2 hits, 1 miss", st)
	}
	if st.Bytes != 2 {
		t.Errorf("stats bytes = %d, want 2", st.Bytes)
	}
}

func TestNormalizeRejectsBadSpecs(t *testing.T) {
	bad := []JobSpec{
		{Kind: "nope"},
		{Kind: "grid", Cells: []string{"Mandelbrot"}},
		{Kind: "grid", BlockSize: 48},
		{Kind: "grid", Scale: -1},
		{Kind: "grid", Scheduler: "cooperative"},
		{Kind: "grid", Net: "torus"},
		{Kind: "grid", FaultPlan: "light"}, // fault plans are chaos/recovery-only
		{Kind: "chaos", FaultPlan: "nonexistent"},
		{Kind: "recovery", FaultPlan: "nonexistent"},
		{Kind: "check", Nodes: 9},
		{Kind: "check", Protocol: "mesi"},
		{Kind: "grid", KVSkew: -0.5},
	}
	for _, sp := range bad {
		spec := sp
		if err := spec.Normalize(); err == nil {
			t.Errorf("Normalize(%+v) accepted a bad spec", sp)
		}
	}
}
