package serve

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"

	"lcm/internal/stats"
)

// The observability surface follows a collector-registry layout: one
// collector per subsystem (tempest counters, interconnect, recovery,
// scheduler, job queue), each turning its subsystem's state into metric
// samples, and a registry rendering them as Prometheus text exposition.
// Per-node simulation counters reach the collectors through JobStats,
// the registry of stats.NodeCounters snapshots recorded when jobs
// complete — the same numbers the harness writes into BENCH JSON, so a
// /metrics scrape can be cross-checked against a job's result bytes.

// Metric is one sample: a name, help and type (shared across samples of
// the same name), ordered labels and a value.
type Metric struct {
	Name   string
	Help   string
	Type   string // "gauge" or "counter"
	Labels [][2]string
	Value  float64
}

// Collector turns one subsystem's state into metric samples.
type Collector interface {
	// Name identifies the collector ("tempest", "queue", ...).
	Name() string
	// Collect emits the subsystem's current samples.
	Collect(emit func(Metric))
}

// Registry renders registered collectors as Prometheus text exposition.
type Registry struct {
	mu         sync.Mutex
	collectors []Collector
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Register adds collectors to the registry.
func (r *Registry) Register(cs ...Collector) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collectors = append(r.collectors, cs...)
}

// escapeLabel escapes a label value per the exposition format.
var escapeLabel = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// formatValue renders a sample value.  Integral values (the counters
// threaded out of the simulator) print as plain integers rather than
// strconv's shortest float form, which switches to exponent notation
// past ~1e6 and would make a scrape impossible to cross-check textually
// against the same numbers in BENCH JSON.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every collector's samples in the Prometheus
// text format: one HELP/TYPE header per metric name (in first-seen
// order), then its samples.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	collectors := append([]Collector(nil), r.collectors...)
	r.mu.Unlock()

	var order []string
	byName := make(map[string][]Metric)
	for _, c := range collectors {
		c.Collect(func(m Metric) {
			if _, ok := byName[m.Name]; !ok {
				order = append(order, m.Name)
			}
			byName[m.Name] = append(byName[m.Name], m)
		})
	}
	for _, name := range order {
		ms := byName[name]
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, ms[0].Help, name, ms[0].Type); err != nil {
			return err
		}
		for _, m := range ms {
			var sb strings.Builder
			sb.WriteString(name)
			if len(m.Labels) > 0 {
				sb.WriteByte('{')
				for i, lv := range m.Labels {
					if i > 0 {
						sb.WriteByte(',')
					}
					fmt.Fprintf(&sb, `%s="%s"`, lv[0], escapeLabel.Replace(lv[1]))
				}
				sb.WriteByte('}')
			}
			if _, err := fmt.Fprintf(w, "%s %s\n", sb.String(), formatValue(m.Value)); err != nil {
				return err
			}
		}
	}
	return nil
}

// RecordSample is one completed (job, workload, system) grid record's
// simulation counters, as threaded out of the harness results.
type RecordSample struct {
	Job      string
	Workload string
	Sched    string
	System   string
	// SimCycles is the cell's simulated execution time (max node clock);
	// C carries the full per-node counter aggregate.
	SimCycles int64
	C         stats.NodeCounters
}

// JobStats is the registry of per-job simulation counters and job
// accounting that the subsystem collectors read.  Samples are retained
// FIFO up to a cap so a long-lived server's scrape stays bounded.
type JobStats struct {
	mu      sync.Mutex
	max     int
	samples []RecordSample
	bySched map[string]int64 // completed jobs by scheduler
	byKind  map[string]int64 // completed jobs by campaign kind
	wallSum float64          // executed (non-cached) job runtime, seconds
	wallN   int64
}

// NewJobStats creates a store retaining at most maxSamples records.
func NewJobStats(maxSamples int) *JobStats {
	if maxSamples < 1 {
		maxSamples = 1
	}
	return &JobStats{max: maxSamples, bySched: make(map[string]int64), byKind: make(map[string]int64)}
}

// AddRecords appends one completed job's per-record counters.
func (js *JobStats) AddRecords(samples []RecordSample) {
	js.mu.Lock()
	defer js.mu.Unlock()
	js.samples = append(js.samples, samples...)
	if over := len(js.samples) - js.max; over > 0 {
		js.samples = append([]RecordSample(nil), js.samples[over:]...)
	}
}

// JobExecuted accounts one executed (not cache-served) job.
func (js *JobStats) JobExecuted(kind, scheduler string, wallSeconds float64) {
	js.mu.Lock()
	defer js.mu.Unlock()
	js.byKind[kind]++
	js.bySched[scheduler]++
	js.wallSum += wallSeconds
	js.wallN++
}

func (js *JobStats) snapshot() ([]RecordSample, map[string]int64, map[string]int64, float64, int64) {
	js.mu.Lock()
	defer js.mu.Unlock()
	samples := append([]RecordSample(nil), js.samples...)
	bySched := make(map[string]int64, len(js.bySched))
	for k, v := range js.bySched {
		bySched[k] = v
	}
	byKind := make(map[string]int64, len(js.byKind))
	for k, v := range js.byKind {
		byKind[k] = v
	}
	return samples, bySched, byKind, js.wallSum, js.wallN
}

// recordLabels builds the identifying label set of one grid record.
func recordLabels(s RecordSample) [][2]string {
	return [][2]string{
		{"job", s.Job}, {"workload", s.Workload}, {"sched", s.Sched}, {"system", s.System},
	}
}

// tempestCollector exports the per-record tempest access counters — the
// paper's evaluation observables.
type tempestCollector struct{ js *JobStats }

func (c tempestCollector) Name() string { return "tempest" }

func (c tempestCollector) Collect(emit func(Metric)) {
	samples, _, _, _, _ := c.js.snapshot()
	for _, s := range samples {
		l := recordLabels(s)
		emit(Metric{"lcmd_tempest_simcycles", "Simulated execution time of the cell (max node clock).", "gauge", l, float64(s.SimCycles)})
		emit(Metric{"lcmd_tempest_simmisses", "Data-carrying protocol faults (the paper's cache-miss metric).", "gauge", l, float64(s.C.Misses)})
		emit(Metric{"lcmd_tempest_hits", "Accesses permitted by the access-control tags.", "gauge", l, float64(s.C.Hits)})
		emit(Metric{"lcmd_tempest_flushes", "Modified blocks returned home by flush or reconcile.", "gauge", l, float64(s.C.Flushes)})
		emit(Metric{"lcmd_tempest_barriers", "Global barriers per node, summed over nodes.", "gauge", l, float64(s.C.Barriers)})
	}
}

// netCollector exports the per-record interconnect counters.
type netCollector struct{ js *JobStats }

func (c netCollector) Name() string { return "net" }

func (c netCollector) Collect(emit func(Metric)) {
	samples, _, _, _, _ := c.js.snapshot()
	for _, s := range samples {
		l := recordLabels(s)
		emit(Metric{"lcmd_net_msgs", "Protocol messages injected into the interconnect.", "gauge", l, float64(s.C.Net.TotalMsgs())})
		emit(Metric{"lcmd_net_bytes", "Header plus payload bytes injected.", "gauge", l, float64(s.C.Net.Bytes)})
		emit(Metric{"lcmd_net_queue_cycles", "Cycles messages spent queueing for busy channels.", "gauge", l, float64(s.C.Net.QueueCycles)})
	}
}

// recoveryCollector exports the per-record crash-recovery counters.
type recoveryCollector struct{ js *JobStats }

func (c recoveryCollector) Name() string { return "recovery" }

func (c recoveryCollector) Collect(emit func(Metric)) {
	samples, _, _, _, _ := c.js.snapshot()
	for _, s := range samples {
		l := recordLabels(s)
		emit(Metric{"lcmd_recovery_checkpoints", "Barrier-epoch checkpoints captured.", "gauge", l, float64(s.C.Checkpoints)})
		emit(Metric{"lcmd_recovery_restarts", "Checkpoint restarts after injected kills.", "gauge", l, float64(s.C.Restarts)})
		emit(Metric{"lcmd_recovery_retransmits", "Messages re-sent after delivery faults.", "gauge", l, float64(s.C.Net.Retransmits)})
		emit(Metric{"lcmd_recovery_cycles", "Virtual cycles charged to checkpoint restarts.", "gauge", l, float64(s.C.RecoveryCycles)})
	}
}

// schedCollector exports job accounting by scheduler and campaign kind.
type schedCollector struct{ js *JobStats }

func (c schedCollector) Name() string { return "scheduler" }

func (c schedCollector) Collect(emit func(Metric)) {
	_, bySched, byKind, _, _ := c.js.snapshot()
	for _, sched := range sortedKeys(bySched) {
		emit(Metric{"lcmd_sched_jobs_total", "Executed jobs by scheduler.", "counter",
			[][2]string{{"scheduler", sched}}, float64(bySched[sched])})
	}
	for _, kind := range sortedKeys(byKind) {
		emit(Metric{"lcmd_jobs_executed_total", "Executed (non-cached) jobs by campaign kind.", "counter",
			[][2]string{{"kind", kind}}, float64(byKind[kind])})
	}
}

func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// queueCollector exports queue, job-state and cache gauges.
type queueCollector struct{ s *Server }

func (c queueCollector) Name() string { return "queue" }

func (c queueCollector) Collect(emit func(Metric)) {
	emit(Metric{"lcmd_queue_depth", "Jobs waiting to start.", "gauge", nil, float64(c.s.queue.Depth())})
	emit(Metric{"lcmd_jobs_running", "Jobs currently executing.", "gauge", nil, float64(c.s.queue.Running())})
	draining := 0.0
	if c.s.queue.Draining() {
		draining = 1
	}
	emit(Metric{"lcmd_draining", "1 while the server is draining for shutdown.", "gauge", nil, draining})
	for _, st := range []State{StateQueued, StateRunning, StateDone, StateFailed, StateCancelled} {
		emit(Metric{"lcmd_jobs_total", "Jobs by lifecycle state.", "gauge",
			[][2]string{{"state", string(st)}}, float64(c.s.jobsInState(st))})
	}
	_, _, _, wallSum, wallN := c.s.stats.snapshot()
	emit(Metric{"lcmd_job_wall_seconds_sum", "Total host runtime of executed jobs.", "counter", nil, wallSum})
	emit(Metric{"lcmd_job_wall_seconds_count", "Executed jobs with measured runtime.", "counter", nil, float64(wallN)})
	cs := c.s.cache.Stats()
	emit(Metric{"lcmd_cache_hits_total", "Result-cache hits.", "counter", nil, float64(cs.Hits)})
	emit(Metric{"lcmd_cache_misses_total", "Result-cache misses.", "counter", nil, float64(cs.Misses)})
	emit(Metric{"lcmd_cache_entries", "Resident result-cache entries.", "gauge", nil, float64(cs.Entries)})
	emit(Metric{"lcmd_cache_bytes", "Resident result-cache bytes.", "gauge", nil, float64(cs.Bytes)})
	emit(Metric{"lcmd_cache_evictions_total", "Result-cache LRU evictions.", "counter", nil, float64(cs.Evictions)})
}
