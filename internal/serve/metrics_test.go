package serve

import (
	"strings"
	"testing"
)

type fakeCollector struct {
	name string
	ms   []Metric
}

func (f fakeCollector) Name() string { return f.name }
func (f fakeCollector) Collect(emit func(Metric)) {
	for _, m := range f.ms {
		emit(m)
	}
}

func TestRegistryPrometheusRendering(t *testing.T) {
	r := NewRegistry()
	r.Register(
		fakeCollector{"a", []Metric{
			{"x_total", "Xes seen.", "counter", [][2]string{{"kind", "plain"}}, 3},
			{"y_depth", "Y depth.", "gauge", nil, 0.5},
		}},
		fakeCollector{"b", []Metric{
			// Same metric name from a second collector: no second header.
			{"x_total", "Xes seen.", "counter", [][2]string{{"kind", `quo"te` + "\n" + `back\slash`}}, 4},
			// Values past 1e6 must stay plain integers, not 7.201394e+06:
			// scrapes are cross-checked textually against BENCH JSON.
			{"x_total", "Xes seen.", "counter", [][2]string{{"kind", "big"}}, 7201394},
		}},
	)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	got := sb.String()
	want := "# HELP x_total Xes seen.\n" +
		"# TYPE x_total counter\n" +
		`x_total{kind="plain"} 3` + "\n" +
		`x_total{kind="quo\"te\nback\\slash"} 4` + "\n" +
		`x_total{kind="big"} 7201394` + "\n" +
		"# HELP y_depth Y depth.\n" +
		"# TYPE y_depth gauge\n" +
		"y_depth 0.5\n"
	if got != want {
		t.Errorf("rendered exposition:\n%s\nwant:\n%s", got, want)
	}
}

func TestJobStatsBoundsSamples(t *testing.T) {
	js := NewJobStats(2)
	js.AddRecords([]RecordSample{{Job: "j1"}, {Job: "j2"}})
	js.AddRecords([]RecordSample{{Job: "j3"}})
	samples, _, _, _, _ := js.snapshot()
	if len(samples) != 2 || samples[0].Job != "j2" || samples[1].Job != "j3" {
		t.Fatalf("samples = %+v, want FIFO-bounded to [j2 j3]", samples)
	}
}
