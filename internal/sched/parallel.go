package sched

// Time-parallel execution: conservative-lookahead admission of multiple
// nodes onto real OS threads, bit-identical to the serial token.
//
// The serial scheduler grants the token to the Order-minimum Ready node
// and waits for it to yield.  The parallel mode below keeps the exact
// same grant sequence but releases the next grants early, while earlier
// segments are still running, whenever it can prove the serial order
// could not have been different.  The proof obligations:
//
//   - Grants are released strictly in serial order: the admitter walks
//     the Ready queue in Order and admits the in-order prefix, stopping
//     at the first candidate it cannot prove safe.  It never skips, so
//     the grant sequence — and with it every node's seq numbers, grant
//     steps, and the Steps() total — is identical to the serial run's.
//
//   - A candidate c is only admitted past a running node i if every
//     future scheduling point of i provably lands strictly after
//     c.Clock.  Then i's future Ready entries sort after c under Order
//     (clock dominates every tie-break), so the serial scheduler would
//     also have granted c before revisiting i.  The bound on i is
//     eff(i) = max(grant clock + declared intent lower bound, published
//     clock), where the published clock is a monotone lower bound each
//     node stores (lock-free) as it accumulates charges.  The intent
//     lower bound comes from the interconnect model's MinLatency — no
//     remote operation can cost less — or the local-fill floor for
//     locally-homed faults.
//
//   - A candidate must not interact with any running segment through
//     shared simulator state.  Each scheduling point declares an Intent
//     for the segment it starts: a fence (anything might happen; runs
//     alone), a compute segment (no protocol handler before the next
//     scheduling point), or a fault handler on a declared block.  The
//     machine supplies an AdmitFunc that vetoes candidates whose
//     declared footprint overlaps a running member's (same block, the
//     member is the candidate's home or vice versa, either holds a
//     cached copy of the other's block), in both directions.
//
//   - Stateful interconnect models (the fat tree's channel ledgers)
//     additionally require their operations to execute in serial order
//     even across concurrently-running segments; NetGate blocks a
//     member's network operation until it is the oldest (lowest grant
//     step) member of the frontier.  Waiting only on strictly older
//     members keeps the gate acyclic, so it cannot deadlock.
//
// When the frontier is empty the Order-minimum candidate is always
// admissible (every check is vacuous), so parallel mode can never get
// stuck where the serial scheduler would have made progress.

import (
	"math"
	"sync"
	"sync/atomic"
)

// IntentKind classifies what a node's next segment may do.
type IntentKind uint8

const (
	// IntentFence is the conservative default: the segment may touch
	// anything, so it runs with the frontier empty and no candidate is
	// admitted while it runs.  The zero Intent is a fence.
	IntentFence IntentKind = iota
	// IntentCompute promises the segment performs no protocol handler,
	// no interconnect operation, and no charge to another node before
	// its next scheduling point.
	IntentCompute
	// IntentFault declares the segment enters a protocol fault handler
	// for Block (whose home node is Home) and performs no other
	// protocol action before its next scheduling point.
	IntentFault
)

// Intent describes the segment a scheduling point is about to start.
type Intent struct {
	Kind IntentKind
	// Block and Home identify the fault target (IntentFault only).
	Block uint32
	Home  int
	// LB is a lower bound on the virtual cycles the node will charge
	// itself before its next scheduling point.  Zero is always sound.
	LB int64
}

// Peer is a running frontier member offered to the AdmitFunc: its node
// ID and the intent its current segment was granted under.
type Peer struct {
	Node int
	It   Intent
}

// AdmitFunc decides whether candidate c, about to start a segment with
// intent it, may run concurrently with the given frontier members.  It
// is called with the scheduler lock held while the members are running;
// it must only read state that running segments cannot mutate (atomic
// line tags, immutable homes) and must not call back into the
// Scheduler.  Returning false is always safe.
type AdmitFunc func(c Candidate, it Intent, peers []Peer) bool

// pubSlot is a node's published-clock slot, padded to a cache line so
// per-charge stores don't false-share between worker threads.
type pubSlot struct {
	v atomic.Int64
	_ [56]byte
}

type parState struct {
	workers int
	admit   AdmitFunc

	cur   []Intent // intent declared for each node's next segment
	run   []Intent // intent each running member was granted under
	floor []int64  // grant clock + intent LB per running member

	isRunning    []bool
	runningCount int
	fenceRun     int // running members granted under a fence intent
	lockHeld     int // nodes inside a simulated-lock critical section

	pubs []pubSlot
	// watch is the Dekker flag pairing the admitter with publishers: the
	// admitter stores the stalled candidate's clock before re-reading
	// publications; a publisher whose new clock exceeds the watch
	// re-runs admission.  One of the two must observe the other (both
	// sides are sequentially-consistent atomics), so no wakeup is lost.
	// math.MaxInt64 means no candidate is stalled on publications.
	watch atomic.Int64

	// netCond serializes interconnect operations in grant order (see
	// NetGate); signaled whenever a member leaves the frontier.
	netCond *sync.Cond

	peersBuf []Peer
}

// SetParallel switches the scheduler into time-parallel mode: up to
// workers nodes run concurrently when the admission rules prove the
// serial order cannot observe the difference.  admit supplies the
// machine-side footprint checks (nil admits on scheduler-side rules
// alone, which is only sound if fault intents never overlap in ways the
// scheduler cannot see — real machines must pass one).  Must precede
// Start; incompatible with a Chooser, an Observer, or recording, all of
// which assume one quiescent decision point per grant.
func (s *Scheduler) SetParallel(workers int, admit AdmitFunc) {
	if workers <= 1 {
		return
	}
	if s.chooser != nil || s.observer != nil || s.record {
		panic("sched: SetParallel is incompatible with Chooser/Observer/recording")
	}
	n := len(s.nodes)
	p := &parState{
		workers:   workers,
		admit:     admit,
		cur:       make([]Intent, n),
		run:       make([]Intent, n),
		floor:     make([]int64, n),
		isRunning: make([]bool, n),
		pubs:      make([]pubSlot, n),
		netCond:   sync.NewCond(&s.mu),
	}
	for i := range p.cur {
		// Initial segments are compute: any protocol action a node can
		// take begins with its own scheduling point.
		p.cur[i] = Intent{Kind: IntentCompute}
	}
	p.watch.Store(math.MaxInt64)
	s.par = p
}

// Parallel reports whether time-parallel mode is enabled.
func (s *Scheduler) Parallel() bool { return s.par != nil }

// PubSlot returns node's published-clock slot.  The node stores a
// monotone lower bound on its virtual clock there as it runs; the
// admitter reads it lock-free.  Publish through it only from the owning
// node's goroutine, and call NotePublish after each store.
func (s *Scheduler) PubSlot(node int) *atomic.Int64 { return &s.par.pubs[node].v }

// NotePublish tells the admitter node's published clock rose to the
// given value.  Cheap when no candidate is stalled (one atomic load).
func (s *Scheduler) NotePublish(clock int64) {
	p := s.par
	if p == nil || clock <= p.watch.Load() {
		return
	}
	s.mu.Lock()
	if !s.poisoned {
		s.admitLocked()
	}
	s.mu.Unlock()
}

// SetLockHeld brackets a simulated-lock critical section: while any node
// holds a simulated lock the frontier degenerates to the serial token
// (one node at a time), because critical sections span multiple
// segments whose footprints the intents cannot describe.
func (s *Scheduler) SetLockHeld(node int, held bool) {
	p := s.par
	if p == nil {
		return
	}
	s.mu.Lock()
	if held {
		p.lockHeld++
	} else {
		p.lockHeld--
		if !s.poisoned {
			s.admitLocked()
		}
	}
	s.mu.Unlock()
}

// NetGate blocks until node is the oldest (lowest grant step) member of
// the frontier, so interconnect ledger mutations happen in exactly the
// serial order.  No-op in serial mode and when running alone.  A member
// only ever waits on strictly older members, each of which leaves the
// frontier in finite time, so the gate is deadlock-free.
func (s *Scheduler) NetGate(node int) {
	p := s.par
	if p == nil {
		return
	}
	s.mu.Lock()
	for !s.poisoned && !s.oldestRunningLocked(node) {
		p.netCond.Wait()
	}
	s.mu.Unlock()
}

func (s *Scheduler) oldestRunningLocked(node int) bool {
	p := s.par
	my := s.grantStep[node]
	for i := range s.nodes {
		if i != node && p.isRunning[i] && s.grantStep[i] < my {
			return false
		}
	}
	return true
}

// leaveFrontierLocked removes node from the running frontier after its
// segment ended (yield, block, or exit).  Caller holds s.mu.
func (s *Scheduler) leaveFrontierLocked(node int) {
	p := s.par
	if !p.isRunning[node] {
		return
	}
	p.isRunning[node] = false
	p.runningCount--
	if p.run[node].Kind == IntentFence {
		p.fenceRun--
	}
	p.netCond.Broadcast()
}

// admitLocked releases the longest provably-safe in-order prefix of the
// Ready queue into the frontier.  Caller holds s.mu.
func (s *Scheduler) admitLocked() {
	p := s.par
	if s.poisoned {
		return
	}
	p.watch.Store(math.MaxInt64)
	for {
		if p.fenceRun > 0 {
			return // a fence segment runs alone
		}
		c, ok := s.queueMinLocked()
		if !ok {
			if p.runningCount == 0 {
				s.parDeadlockLocked()
			}
			return
		}
		if p.runningCount >= p.workers {
			return // capacity; a member's yield re-runs admission
		}
		if p.lockHeld > 0 {
			// Simulated lock held: serial token semantics.
			if p.runningCount > 0 {
				return
			}
			s.grantParallel(c)
			return
		}
		it := p.cur[c.Node]
		if it.Kind == IntentFence {
			if p.runningCount > 0 {
				return
			}
			s.grantParallel(c)
			continue // fenceRun > 0 now; next iteration returns
		}
		ok, lbts := s.parAdmissibleLocked(c, it)
		if !ok {
			if lbts {
				// Stalled on publications: arm the watch, then re-read
				// them (Dekker with NotePublish).
				p.watch.Store(c.Clock)
				if ok2, _ := s.parAdmissibleLocked(c, it); ok2 {
					p.watch.Store(math.MaxInt64)
					s.grantParallel(c)
					continue
				}
			}
			return
		}
		s.grantParallel(c)
	}
}

// queueMinLocked returns the Order-minimum Ready candidate.
func (s *Scheduler) queueMinLocked() (Candidate, bool) {
	best := -1
	var bc Candidate
	for i := range s.nodes {
		if s.nodes[i].state != Ready {
			continue
		}
		c := Candidate{Node: i, Clock: s.nodes[i].clock, Seq: s.nodes[i].seq}
		if best == -1 || Order(s.seed, c, bc) {
			best, bc = i, c
		}
	}
	return bc, best != -1
}

// parAdmissibleLocked checks candidate c with intent it against every
// frontier member.  lbts reports whether the (sole, in-order) failure
// was a published-clock bound, the only failure a publication can cure.
func (s *Scheduler) parAdmissibleLocked(c Candidate, it Intent) (ok, lbts bool) {
	p := s.par
	peers := p.peersBuf[:0]
	for i := range s.nodes {
		if !p.isRunning[i] {
			continue
		}
		eff := p.floor[i]
		if pub := p.pubs[i].v.Load(); pub > eff {
			eff = pub
		}
		if eff <= c.Clock {
			p.peersBuf = peers
			return false, true
		}
		ri := p.run[i]
		if it.Kind == IntentFault && ri.Kind == IntentFault && ri.Block == it.Block {
			p.peersBuf = peers
			return false, false
		}
		peers = append(peers, Peer{Node: i, It: ri})
	}
	p.peersBuf = peers
	if len(peers) > 0 && p.admit != nil && !p.admit(c, it, peers) {
		return false, false
	}
	return true, false
}

// grantParallel admits c into the frontier.  Caller holds s.mu.
func (s *Scheduler) grantParallel(c Candidate) {
	p := s.par
	node := c.Node
	ns := &s.nodes[node]
	ns.state = Running
	it := p.cur[node]
	p.run[node] = it
	lb := it.LB
	if lb < 0 {
		lb = 0
	}
	p.floor[node] = c.Clock + lb
	p.isRunning[node] = true
	p.runningCount++
	if it.Kind == IntentFence {
		p.fenceRun++
	}
	s.grantStep[node] = uint64(s.step)
	s.step++
	ns.gate <- struct{}{} // buffered: never blocks
}

// parDeadlockLocked mirrors the serial deadlock check: the frontier is
// empty, nothing is Ready, but some node is still Blocked.
func (s *Scheduler) parDeadlockLocked() {
	for i := range s.nodes {
		if s.nodes[i].state == Blocked {
			s.fireDeadlockLocked(true)
			return
		}
	}
}
