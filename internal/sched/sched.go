// Package sched is the seeded deterministic scheduler for the simulated
// multicomputer.
//
// The simulator historically let node goroutines free-run: protocol fault
// handlers serialized on per-block home locks and barrier folding on a
// mutex, so which node won a contended lock — and therefore the order of
// directory transitions, invalidations, merge operations and charge
// attribution — depended on the host's goroutine scheduling.  Counters
// fixed by a node's own access stream stayed reproducible; anything
// order-dependent (copying-mode fault counts at P>1, simulated cycles
// through the barrier max) wobbled from run to run.
//
// This package replaces host-order interleaving with a cooperative token:
// at most one node executes simulator code at a time, and the token moves
// only at explicit synchronization points (protocol handler entry, barrier
// entry/exit, simulated locks).  The next node to run is chosen from the
// Ready set by a virtual-time run queue ordered by
//
//	(virtual clock, seeded tie-break hash, node ID, scheduling sequence)
//
// so the entire interleaving is a pure function of (workload, P, seed) and
// any run replays bit-identically — including simulated cycles and
// copying-mode fault counts at P>1.  Seed 0 is the canonical order
// (cycle, node); a non-zero seed mixes a splitmix64 hash of
// (seed, node, sequence) into ties, selecting an alternative — but equally
// deterministic — interleaving, which is what the CI seed sweep exercises.
//
// Two invariants make the schedule host-independent:
//
//  1. Only the running node performs Blocked→Ready transitions (a barrier's
//     last arriver readies its parked siblings; a simulated lock's releaser
//     readies its waiters), so wakeup order never depends on the host.
//  2. Grant channels are buffered, so a node can be granted the token
//     before it has parked; the grant is consumed whenever the goroutine
//     gets around to it.
//
// The scheduler also carries the hooks the bounded model checker
// (internal/check) builds on: a Chooser that overrides the run-queue order
// at every grant, an Observer called while the machine is quiescent at
// each decision point, and per-segment footprints (which block locks a
// node touched between two scheduling points) that enable sleep-set
// pruning.
package sched

import (
	"fmt"
	"sort"
	"sync"
)

// State is a node's scheduling state.
type State uint8

const (
	// Ready: runnable, waiting for the token.
	Ready State = iota
	// Running: holds the token.
	Running
	// Blocked: parked on a simulated event (barrier, simulated lock);
	// another node's SetReady makes it runnable again.
	Blocked
	// Done: the node's body returned or died.
	Done
)

// Candidate is one Ready node offered to the run queue (and, in checker
// mode, to the Chooser).
type Candidate struct {
	// Node is the node ID.
	Node int
	// Clock is the node's virtual time at its last scheduling point.
	Clock int64
	// Seq counts the node's scheduling points so far.
	Seq uint64
}

// Chooser overrides the run-queue policy: at every grant it receives the
// Ready candidates sorted in canonical order and returns the index to run.
// It is called with the scheduler's lock held while every node is
// quiescent; it must not call back into the Scheduler.
type Chooser func(step int, cands []Candidate) int

// Segment is the work one node performed between two scheduling points:
// which grant step started it and which block locks it touched.  Segments
// are recorded only when recording is enabled (checker mode).
type Segment struct {
	// Node ran the segment; Step is the grant that started it.
	Node int
	Step int
	// Blocks lists the block locks acquired during the segment, in order.
	Blocks []uint32
	// Barrier marks that the segment ended at (or crossed) a barrier.
	Barrier bool
}

type nodeState struct {
	state State
	clock int64
	seq   uint64
	gate  chan struct{}
}

// Scheduler serializes one machine run.  Create a fresh Scheduler per run.
type Scheduler struct {
	mu    sync.Mutex
	nodes []nodeState
	seed  uint64

	running  int // node holding the token, -1 if none (serial mode)
	step     int // grants so far
	poisoned bool
	poisonCh chan struct{}

	chooser    Chooser
	observer   func(step int)
	onDeadlock func()

	record bool // immutable after Start
	segs   []Segment
	curSeg int // index into segs of the running segment, -1 if none

	candBuf []Candidate

	// grantStep[n] is the grant step that started node n's current (or
	// last) segment.  Written under mu at grant time, before the grant
	// channel send; the owning node reads it via GrantKey after receiving
	// the grant, so the channel provides the happens-before edge.
	grantStep []uint64

	// par holds the time-parallel frontier state; nil in serial mode.
	// Immutable after SetParallel (which must precede Start).
	par *parState
}

// New creates a scheduler for n nodes with the given tie-break seed.  All
// nodes start Ready at clock 0.  Call Start before launching node
// goroutines.
func New(n int, seed uint64) *Scheduler {
	s := &Scheduler{
		nodes:     make([]nodeState, n),
		seed:      seed,
		running:   -1,
		poisonCh:  make(chan struct{}),
		curSeg:    -1,
		grantStep: make([]uint64, n),
	}
	for i := range s.nodes {
		s.nodes[i] = nodeState{state: Ready, gate: make(chan struct{}, 1)}
	}
	return s
}

// SetChooser installs a grant-order override (checker mode).  Must precede
// Start.
func (s *Scheduler) SetChooser(c Chooser) { s.chooser = c }

// SetObserver installs a quiescent-point callback invoked (with the
// scheduler lock held) before every grant decision.  Must precede Start.
func (s *Scheduler) SetObserver(f func(step int)) { s.observer = f }

// OnDeadlock installs the callback invoked — on a fresh goroutine, so it
// may take any lock — when no node is Ready or Running but some node is
// still Blocked.  Must precede Start.
func (s *Scheduler) OnDeadlock(f func()) { s.onDeadlock = f }

// EnableRecording turns on segment footprint recording.  Must precede
// Start.
func (s *Scheduler) EnableRecording() { s.record = true }

// Start performs the initial grant.  Call after configuration, before the
// node goroutines call AwaitGrant.
func (s *Scheduler) Start() {
	s.mu.Lock()
	if s.par != nil {
		s.admitLocked()
	} else {
		s.dispatch()
	}
	s.mu.Unlock()
}

// AwaitGrant blocks until the node is granted the token (or the scheduler
// is poisoned, in which case it returns immediately and the caller unwinds
// free-running).
func (s *Scheduler) AwaitGrant(node int) {
	select {
	case <-s.nodes[node].gate:
	case <-s.poisonCh:
	}
}

// Yield is a scheduling point: the running node offers the token at the
// given virtual clock and waits to be granted again.  The next segment is
// assumed to be a fence (maximally conservative) in parallel mode; use
// YieldIntent to declare a cheaper intent.
func (s *Scheduler) Yield(node int, clock int64) {
	s.YieldIntent(node, clock, Intent{})
}

// YieldIntent is Yield with a declared intent describing the node's next
// segment (parallel mode; the intent is ignored by the serial token).
func (s *Scheduler) YieldIntent(node int, clock int64, it Intent) {
	s.mu.Lock()
	if s.poisoned {
		s.mu.Unlock()
		return
	}
	ns := &s.nodes[node]
	ns.state = Ready
	ns.clock = clock
	ns.seq++
	s.endSegment(node)
	if s.par != nil {
		s.par.cur[node] = it
		s.leaveFrontierLocked(node)
		s.admitLocked()
	} else {
		if s.running == node {
			s.running = -1
		}
		s.dispatch()
	}
	s.mu.Unlock()
	s.AwaitGrant(node)
}

// Block transitions the running node to Blocked and passes the token on.
// The caller then parks on its own condition (e.g. a barrier's cond) and,
// once woken by a SetReady peer, must call AwaitGrant before touching
// simulator state.  Unlike Yield, Block does not wait here: the caller
// typically holds the mutex guarding its park condition.
func (s *Scheduler) Block(node int) {
	s.mu.Lock()
	if s.poisoned {
		s.mu.Unlock()
		return
	}
	ns := &s.nodes[node]
	ns.state = Blocked
	ns.seq++
	s.endSegment(node)
	if s.par != nil {
		s.par.cur[node] = Intent{} // wake as a fence unless overridden
		s.leaveFrontierLocked(node)
		s.admitLocked()
	} else {
		if s.running == node {
			s.running = -1
		}
		s.dispatch()
	}
	s.mu.Unlock()
}

// SetReady makes a Blocked node runnable again at its recorded clock.
// Must be called by the running node (invariant 1 in the package comment).
func (s *Scheduler) SetReady(node int) {
	s.mu.Lock()
	s.setReadyLocked(node, s.nodes[node].clock)
	s.mu.Unlock()
}

// SetReadyAt is SetReady with an updated virtual clock (a barrier's last
// arriver readies its siblings at the barrier's resolved time).
func (s *Scheduler) SetReadyAt(node int, clock int64) {
	s.mu.Lock()
	s.setReadyLocked(node, clock)
	s.mu.Unlock()
}

// SetReadyIntent is SetReadyAt with a declared intent for the woken
// node's next segment (parallel mode; ignored by the serial token).
func (s *Scheduler) SetReadyIntent(node int, clock int64, it Intent) {
	s.mu.Lock()
	if s.par != nil && s.nodes[node].state == Blocked {
		s.par.cur[node] = it
	}
	s.setReadyLocked(node, clock)
	s.mu.Unlock()
}

func (s *Scheduler) setReadyLocked(node int, clock int64) {
	if s.poisoned {
		return
	}
	ns := &s.nodes[node]
	if ns.state != Blocked {
		return
	}
	ns.state = Ready
	ns.clock = clock
	ns.seq++
	if s.par != nil {
		s.admitLocked()
		return
	}
	if s.running == -1 {
		s.dispatch()
	}
}

// Exit marks the node Done and passes the token on.  Called from the run
// loop when a node's body returns or dies (it is safe in any state).
func (s *Scheduler) Exit(node int) {
	s.mu.Lock()
	if s.nodes[node].state == Done {
		s.mu.Unlock()
		return
	}
	s.nodes[node].state = Done
	s.endSegment(node)
	if s.par != nil {
		s.leaveFrontierLocked(node)
		if !s.poisoned {
			s.admitLocked()
		}
		s.mu.Unlock()
		return
	}
	if s.running == node {
		s.running = -1
	}
	if !s.poisoned {
		s.dispatch()
	}
	s.mu.Unlock()
}

// Poison releases every waiter and makes all future scheduling calls
// no-ops: the run is failing and nodes must unwind free-running.  Safe
// from any goroutine, including while holding locks ordered before the
// scheduler's.
func (s *Scheduler) Poison() {
	s.mu.Lock()
	if !s.poisoned {
		s.poisoned = true
		close(s.poisonCh)
		if s.par != nil {
			s.par.netCond.Broadcast()
		}
	}
	s.mu.Unlock()
}

// Poisoned reports whether the scheduler has been poisoned.
func (s *Scheduler) Poisoned() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.poisoned
}

// NoteLock records a block-lock acquisition in the running segment
// (checker mode; cheap no-op otherwise).
func (s *Scheduler) NoteLock(block uint32) {
	if !s.record {
		return
	}
	s.mu.Lock()
	if s.curSeg >= 0 {
		s.segs[s.curSeg].Blocks = append(s.segs[s.curSeg].Blocks, block)
	}
	s.mu.Unlock()
}

// NoteBarrier marks the running segment as crossing a barrier (checker
// mode; cheap no-op otherwise).
func (s *Scheduler) NoteBarrier() {
	if !s.record {
		return
	}
	s.mu.Lock()
	if s.curSeg >= 0 {
		s.segs[s.curSeg].Barrier = true
	}
	s.mu.Unlock()
}

// Segments returns the recorded segment footprints.  Call only after the
// run completes.
func (s *Scheduler) Segments() []Segment {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.segs
}

// Steps returns the number of grants performed.  Call only after the run
// completes.
func (s *Scheduler) Steps() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.step
}

// dispatch grants the token to the next node.  Caller holds s.mu, no node
// is Running.  On deadlock (nothing Ready, something Blocked) it fires the
// OnDeadlock callback on a fresh goroutine: the caller may hold a lock —
// the barrier's, say — that the callback needs to abort cleanly.
func (s *Scheduler) dispatch() {
	if s.poisoned || s.running != -1 {
		return
	}
	if s.chooser == nil && s.observer == nil {
		// Fast path: only the run queue's minimum is ever granted, and
		// sorting the whole Ready set dominated grant cost in profiles.
		// A linear Order-minimum scan picks the identical node (Order is
		// a strict total order, so the minimum is unique).
		best := -1
		var bc Candidate
		blocked := false
		for i := range s.nodes {
			switch s.nodes[i].state {
			case Ready:
				c := Candidate{Node: i, Clock: s.nodes[i].clock, Seq: s.nodes[i].seq}
				if best == -1 || Order(s.seed, c, bc) {
					best, bc = i, c
				}
			case Blocked:
				blocked = true
			}
		}
		if best == -1 {
			s.fireDeadlockLocked(blocked)
			return
		}
		s.grantSerial(best)
		return
	}
	cands := s.candBuf[:0]
	blocked := false
	for i := range s.nodes {
		switch s.nodes[i].state {
		case Ready:
			cands = append(cands, Candidate{Node: i, Clock: s.nodes[i].clock, Seq: s.nodes[i].seq})
		case Blocked:
			blocked = true
		}
	}
	s.candBuf = cands
	if len(cands) == 0 {
		s.fireDeadlockLocked(blocked)
		return
	}
	seed := s.seed
	sort.Slice(cands, func(i, j int) bool { return Order(seed, cands[i], cands[j]) })
	if s.observer != nil {
		s.observer(s.step)
	}
	idx := 0
	if s.chooser != nil {
		idx = s.chooser(s.step, cands)
		if idx < 0 || idx >= len(cands) {
			panic(fmt.Sprintf("sched: chooser returned %d of %d candidates", idx, len(cands)))
		}
	}
	s.grantSerial(cands[idx].Node)
}

// grantSerial moves the token to node.  Caller holds s.mu.
func (s *Scheduler) grantSerial(node int) {
	ns := &s.nodes[node]
	ns.state = Running
	s.running = node
	s.grantStep[node] = uint64(s.step)
	s.step++
	if s.record {
		s.segs = append(s.segs, Segment{Node: node, Step: s.step - 1})
		s.curSeg = len(s.segs) - 1
	}
	ns.gate <- struct{}{} // buffered: never blocks (at most one outstanding grant)
}

// fireDeadlockLocked fires the OnDeadlock callback (once, on a fresh
// goroutine) when nothing is runnable but some node is still Blocked.
func (s *Scheduler) fireDeadlockLocked(blocked bool) {
	if blocked && s.onDeadlock != nil {
		cb := s.onDeadlock
		s.onDeadlock = nil // fire once
		go cb()
	}
}

// GrantKey returns the grant step that started node's current segment,
// establishing the canonical position of the segment's side effects in
// the serial order.  It is written under the scheduler lock before the
// grant is delivered and read by the granted node during its segment, so
// the grant channel orders the accesses.  Deterministic in both serial
// and parallel modes, and identical between them.
func (s *Scheduler) GrantKey(node int) uint64 { return s.grantStep[node] }

// endSegment closes the running segment, if any.  Caller holds s.mu.
func (s *Scheduler) endSegment(node int) {
	if s.record && s.curSeg >= 0 && s.segs[s.curSeg].Node == node {
		s.curSeg = -1
	}
}

// Order is the run queue's strict total order over candidates.  The
// exact comparison, which the time-parallel merge depends on and which
// the table test in sched_test.go pins for a fixed seed, is:
//
//  1. Clock, ascending: earlier virtual time runs first.
//  2. If the seed is non-zero and the candidates' clocks tie: mix(seed,
//     node, seq), ascending, where mix is the splitmix64 finalizer of
//     seed ^ node*0x9e3779b97f4a7c15 ^ seq*0xbf58476d1ce4e5b9.  Seed 0
//     skips this step entirely, giving the canonical (clock, node)
//     order.
//  3. Node ID, ascending (also the hash tie-break, making the order
//     total: node IDs are unique among candidates).
//  4. Seq, ascending — unreachable between two live candidates (a node
//     appears at most once in the Ready set) but kept so Order is total
//     over arbitrary Candidate values, which the fuzz test checks.
//
// Consequence used by the parallel admitter: if a.Clock > b.Clock then b
// precedes a regardless of seed, node, or seq — a running node whose
// future scheduling points all land strictly after a candidate's clock
// can never overtake that candidate in the serial order.
func Order(seed uint64, a, b Candidate) bool {
	if a.Clock != b.Clock {
		return a.Clock < b.Clock
	}
	if seed != 0 {
		ha, hb := mix(seed, a), mix(seed, b)
		if ha != hb {
			return ha < hb
		}
	}
	if a.Node != b.Node {
		return a.Node < b.Node
	}
	return a.Seq < b.Seq
}

// mix hashes a candidate under the seed (splitmix64 finalizer, the same
// generator internal/fault uses for its per-node streams).
func mix(seed uint64, c Candidate) uint64 {
	z := seed ^ uint64(c.Node)*0x9e3779b97f4a7c15 ^ c.Seq*0xbf58476d1ce4e5b9
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
