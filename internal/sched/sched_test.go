package sched

import (
	"sync"
	"testing"
	"time"
)

// runNodes drives n goroutines through the scheduler, each executing its
// script of (clock) yield points, and returns the grant order observed by
// the scheduler's step observer.
func runNodes(t *testing.T, s *Scheduler, scripts [][]int64) []int {
	t.Helper()
	var mu sync.Mutex
	var order []int
	s.SetObserver(func(step int) {})
	s.SetChooser(func(step int, cands []Candidate) int {
		mu.Lock()
		order = append(order, cands[0].Node)
		mu.Unlock()
		return 0
	})
	s.Start()
	var wg sync.WaitGroup
	for id := range scripts {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			s.AwaitGrant(id)
			for _, clock := range scripts[id] {
				s.Yield(id, clock)
			}
			s.Exit(id)
		}(id)
	}
	wg.Wait()
	return order
}

// TestGrantOrderByClock: the lowest-clock Ready node always runs next, and
// ties break by node ID under seed 0.
func TestGrantOrderByClock(t *testing.T) {
	s := New(3, 0)
	// Node 0 yields at clock 10 then 30; node 1 at 20; node 2 at 5 then 25.
	order := runNodes(t, s, [][]int64{{10, 30}, {20}, {5, 25}})
	// All start at clock 0: grants 0,1,2 (ties by ID).  Then the run queue
	// is {0@10, 1@20, 2@5}: grant 2, then 0@10, then 1@20, then 2@25, 0@30.
	want := []int{0, 1, 2, 2, 0, 1, 2, 0}
	if len(order) != len(want) {
		t.Fatalf("grant order %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("grant order %v, want %v", order, want)
		}
	}
}

// TestReplayIdentical: the same (scripts, seed) replays the same grant
// sequence, and different seeds may permute same-clock ties but each seed
// is self-consistent.
func TestReplayIdentical(t *testing.T) {
	scripts := [][]int64{{5, 5, 9}, {5, 7}, {5, 5, 5}}
	for _, seed := range []uint64{0, 1, 42, 0xdeadbeef} {
		a := runNodes(t, New(3, seed), scripts)
		b := runNodes(t, New(3, seed), scripts)
		if len(a) != len(b) {
			t.Fatalf("seed %d: replay lengths differ: %v vs %v", seed, a, b)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("seed %d: replay diverged at %d: %v vs %v", seed, i, a, b)
			}
		}
	}
}

// TestBlockSetReady: a Blocked node does not run until a peer readies it,
// and it resumes at the clock the peer assigns.
func TestBlockSetReady(t *testing.T) {
	s := New(2, 0)
	var order []int
	var mu sync.Mutex
	s.SetChooser(func(step int, cands []Candidate) int {
		mu.Lock()
		order = append(order, cands[0].Node)
		mu.Unlock()
		return 0
	})
	s.Start()
	woken := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // node 0: blocks immediately, waits for node 1 to ready it
		defer wg.Done()
		s.AwaitGrant(0)
		s.Block(0)
		s.AwaitGrant(0)
		close(woken)
		s.Exit(0)
	}()
	go func() { // node 1: runs, readies node 0 at clock 100, yields past it
		defer wg.Done()
		s.AwaitGrant(1)
		s.SetReadyAt(0, 100)
		s.Yield(1, 200)
		s.Exit(1)
	}()
	wg.Wait()
	select {
	case <-woken:
	default:
		t.Fatal("blocked node never woke")
	}
	// Grants: 0 (start), 1 (after block), 0@100 (readied, beats 1@200), 1@200.
	want := []int{0, 1, 0, 1}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("grant order %v, want %v", order, want)
		}
	}
}

// TestPoisonReleasesWaiters: poisoning unblocks AwaitGrant and turns
// scheduling calls into no-ops so unwinding nodes cannot hang.
func TestPoisonReleasesWaiters(t *testing.T) {
	s := New(2, 0)
	s.Start()
	done := make(chan struct{})
	go func() {
		s.AwaitGrant(1) // node 0 was granted first; node 1 waits
		s.Yield(1, 10)  // no-op after poison
		s.Exit(1)
		close(done)
	}()
	s.Poison()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("poison did not release the waiting node")
	}
	if !s.Poisoned() {
		t.Fatal("Poisoned() = false after Poison")
	}
}

// TestDeadlockCallback: all nodes Blocked with none Ready fires OnDeadlock
// exactly once, on a goroutine that may take unrelated locks.
func TestDeadlockCallback(t *testing.T) {
	s := New(1, 0)
	fired := make(chan struct{})
	s.OnDeadlock(func() {
		close(fired)
		s.Poison()
	})
	s.Start()
	done := make(chan struct{})
	go func() {
		s.AwaitGrant(0)
		s.Block(0)      // nothing can ever ready us: deadlock
		s.AwaitGrant(0) // released by the callback's Poison
		close(done)
	}()
	select {
	case <-fired:
	case <-time.After(5 * time.Second):
		t.Fatal("deadlock callback never fired")
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("blocked node not released after deadlock poison")
	}
}

// TestSegmentsRecordFootprints: recording captures per-grant segments with
// the lock footprint and barrier flag noted by the running node.
func TestSegmentsRecordFootprints(t *testing.T) {
	s := New(1, 0)
	s.EnableRecording()
	s.Start()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.AwaitGrant(0)
		s.NoteLock(7)
		s.NoteLock(3)
		s.Yield(0, 10)
		s.NoteBarrier()
		s.Exit(0)
	}()
	wg.Wait()
	segs := s.Segments()
	if len(segs) != 2 {
		t.Fatalf("got %d segments, want 2: %+v", len(segs), segs)
	}
	if len(segs[0].Blocks) != 2 || segs[0].Blocks[0] != 7 || segs[0].Blocks[1] != 3 {
		t.Errorf("segment 0 blocks = %v, want [7 3]", segs[0].Blocks)
	}
	if segs[0].Barrier {
		t.Error("segment 0 spuriously marked as barrier")
	}
	if !segs[1].Barrier {
		t.Error("segment 1 missing barrier mark")
	}
}

// TestOrderTotality: Order is a strict total order over distinct nodes for
// any seed (the fuzz target explores this much harder).
func TestOrderTotality(t *testing.T) {
	cands := []Candidate{
		{Node: 0, Clock: 5, Seq: 1}, {Node: 1, Clock: 5, Seq: 9},
		{Node: 2, Clock: 5, Seq: 0}, {Node: 3, Clock: 2, Seq: 4},
	}
	for _, seed := range []uint64{0, 1, 7, 1 << 40} {
		for i := range cands {
			for j := range cands {
				ab, ba := Order(seed, cands[i], cands[j]), Order(seed, cands[j], cands[i])
				if i == j && (ab || ba) {
					t.Fatalf("seed %d: candidate %d ordered before itself", seed, i)
				}
				if i != j && ab == ba {
					t.Fatalf("seed %d: candidates %d,%d not totally ordered (ab=%v ba=%v)", seed, i, j, ab, ba)
				}
			}
		}
	}
}

// TestSetReadyAndSteps: a lock-style handshake — node 0 blocks, node 1
// wakes it with SetReady at its recorded clock — plus the post-run Steps
// accessor and the no-op guards on SetReady, Exit, and the note hooks.
func TestSetReadyAndSteps(t *testing.T) {
	s := New(2, 0)
	s.Start()
	woken := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		s.AwaitGrant(0)
		s.Block(0) // park until node 1 readies us
		<-woken
		s.AwaitGrant(0)
		s.Yield(0, 10)
		s.Exit(0)
	}()
	go func() {
		defer wg.Done()
		s.AwaitGrant(1)
		s.SetReady(0)
		close(woken)
		s.Yield(1, 5)
		s.Exit(1)
	}()
	wg.Wait()
	if got := s.Steps(); got < 4 {
		t.Fatalf("Steps() = %d, want at least 4 grants", got)
	}
	// Post-run guards: note hooks without recording, readying a Done
	// node, and double Exit must all be no-ops.
	s.NoteLock(0)
	s.NoteBarrier()
	s.SetReady(0)
	s.Exit(0)
	if segs := s.Segments(); len(segs) != 0 {
		t.Fatalf("segments recorded without EnableRecording: %v", segs)
	}
}

// TestPoisonGuards: after Poison, the state-changing entry points are
// no-ops and a second Poison is idempotent.
func TestPoisonGuards(t *testing.T) {
	s := New(2, 0)
	s.Poison()
	s.Poison() // idempotent
	if !s.Poisoned() {
		t.Fatal("Poisoned() = false after Poison")
	}
	s.Block(0)
	s.SetReady(0)
	s.SetReadyAt(0, 5)
	s.Exit(0)
}
