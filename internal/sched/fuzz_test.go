package sched

import (
	"encoding/binary"
	"testing"
)

// FuzzTieBreak checks that Order is a strict total order — irreflexive,
// antisymmetric, transitive — for arbitrary seeds and candidate sets.  The
// scheduler's determinism rests entirely on this: sort.Slice over a
// non-total "order" is host-dependent, which is exactly the bug class this
// package exists to remove.
//
// The input encodes a seed followed by up to 16 candidates as
// (clock, node, seq) triples; node IDs are forced distinct, as they are in
// the run queue (one entry per Ready node).
func FuzzTieBreak(f *testing.F) {
	// Seed corpus: canonical order, a hash seed, same-clock ties, and
	// clock/seq extremes.
	f.Add(uint64(0), []byte{0, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0})
	f.Add(uint64(1), []byte{5, 0, 0, 0, 0, 0, 0, 0, 5, 0, 0, 0, 0, 0, 0, 0})
	f.Add(uint64(0xdeadbeef), []byte{255, 255, 255, 255, 255, 255, 255, 127})
	f.Add(uint64(42), make([]byte, 16*8))
	f.Fuzz(func(t *testing.T, seed uint64, raw []byte) {
		var cands []Candidate
		for i := 0; i+8 <= len(raw) && len(cands) < 16; i += 8 {
			v := binary.LittleEndian.Uint64(raw[i:])
			cands = append(cands, Candidate{
				Node:  len(cands), // distinct, like the run queue
				Clock: int64(v >> 16),
				Seq:   v & 0xffff,
			})
		}
		for i := range cands {
			if Order(seed, cands[i], cands[i]) {
				t.Fatalf("seed %#x: candidate %d ordered before itself", seed, i)
			}
			for j := range cands {
				if i == j {
					continue
				}
				ab := Order(seed, cands[i], cands[j])
				ba := Order(seed, cands[j], cands[i])
				if ab == ba {
					t.Fatalf("seed %#x: candidates %d,%d not antisymmetric/total: ab=%v ba=%v (%+v vs %+v)",
						seed, i, j, ab, ba, cands[i], cands[j])
				}
				if !ab {
					continue
				}
				for k := range cands {
					if k == i || k == j {
						continue
					}
					// a < b && b < c must imply a < c.
					if Order(seed, cands[j], cands[k]) && !Order(seed, cands[i], cands[k]) {
						t.Fatalf("seed %#x: order not transitive over %d,%d,%d", seed, i, j, k)
					}
				}
			}
		}
	})
}
