package sched

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestOrderPinned pins the exact total order for a fixed candidate set
// under fixed seeds.  The doc comment on Order specifies the comparison
// (clock, then seeded mix, then node, then seq); the parallel admitter's
// safety proof and the keyed side lists in internal/core both lean on
// that exact order, so any change to the hash or the tie-break sequence
// must show up here as a deliberate golden update.
func TestOrderPinned(t *testing.T) {
	cands := []Candidate{
		{Node: 0, Clock: 100, Seq: 3},
		{Node: 1, Clock: 100, Seq: 3},
		{Node: 2, Clock: 100, Seq: 3},
		{Node: 3, Clock: 100, Seq: 3},
		{Node: 4, Clock: 100, Seq: 5},
		{Node: 5, Clock: 40, Seq: 1},
		{Node: 6, Clock: 250, Seq: 9},
		{Node: 7, Clock: 100, Seq: 4},
	}
	want := map[uint64][]int{
		// Seed 0: clock ascending, same-clock ties by node ID.
		0: {5, 0, 1, 2, 3, 4, 7, 6},
		// Non-zero seeds permute only the same-clock ties (nodes 0-4, 7);
		// clock extremes stay pinned at the ends.
		42:         {5, 2, 4, 0, 3, 7, 1, 6},
		0xdeadbeef: {5, 0, 1, 7, 3, 2, 4, 6},
	}
	for seed, w := range want {
		got := make([]Candidate, len(cands))
		copy(got, cands)
		// Insertion sort via Order keeps the test free of sort-stability
		// assumptions: Order is a strict total order on this set.
		for i := 1; i < len(got); i++ {
			for j := i; j > 0 && Order(seed, got[j], got[j-1]); j-- {
				got[j], got[j-1] = got[j-1], got[j]
			}
		}
		for i := range w {
			if got[i].Node != w[i] {
				t.Errorf("seed %d: position %d is node %d, want %d (full order %v)",
					seed, i, got[i].Node, w[i], nodeIDs(got))
				break
			}
		}
	}
	// The consequence the admitter relies on: a later clock loses to an
	// earlier one regardless of seed, node, or seq.
	a := Candidate{Node: 0, Clock: 101, Seq: 0}
	b := Candidate{Node: 63, Clock: 100, Seq: 1 << 40}
	for _, seed := range []uint64{0, 1, 42, ^uint64(0)} {
		if Order(seed, a, b) || !Order(seed, b, a) {
			t.Errorf("seed %d: clock must dominate every tie-break", seed)
		}
	}
}

func nodeIDs(cs []Candidate) []int {
	ids := make([]int, len(cs))
	for i, c := range cs {
		ids[i] = c.Node
	}
	return ids
}

// states reads every node's scheduling state under the lock.
func states(s *Scheduler) []State {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]State, len(s.nodes))
	for i := range s.nodes {
		out[i] = s.nodes[i].state
	}
	return out
}

// TestParallelWindowEdgeStrict: a candidate whose clock equals a running
// member's admission floor must NOT be admitted — the member's next yield
// could land exactly on that clock and sort first (lower node ID wins the
// tie), so admitting would reorder the serial schedule.  One cycle below
// the floor is admissible.
func TestParallelWindowEdgeStrict(t *testing.T) {
	s := New(2, 0)
	s.SetParallel(2, nil)
	// Node 0's first segment declares a 100-cycle floor; node 1 is ready
	// at exactly clock 100.
	s.par.cur[0] = Intent{Kind: IntentCompute, LB: 100}
	s.nodes[1].clock = 100
	s.Start()
	if st := states(s); st[0] != Running || st[1] != Ready {
		t.Fatalf("after Start: states %v, want node 0 Running, node 1 Ready (floor 100 is not > clock 100)", st)
	}
	// One cycle earlier falls strictly inside the window.
	s.mu.Lock()
	s.nodes[1].clock = 99
	s.admitLocked()
	s.mu.Unlock()
	if st := states(s); st[1] != Running {
		t.Fatalf("candidate at clock 99 under floor 100: states %v, want node 1 Running", st)
	}
}

// TestParallelPublishExtendsWindow: with a zero floor nothing can be
// admitted past a just-granted member, but a published clock reopens the
// window and NotePublish must fire the admission itself (the member is
// mid-segment; nobody else will).
func TestParallelPublishExtendsWindow(t *testing.T) {
	s := New(2, 0)
	s.SetParallel(2, nil)
	s.Start() // node 0 granted at clock 0, floor 0; node 1 at clock 0 is not < 0
	if st := states(s); st[0] != Running || st[1] != Ready {
		t.Fatalf("after Start: states %v, want Running/Ready", st)
	}
	// Node 0 publishes progress to clock 7: now every future yield of
	// node 0 lands at >= 7 > 0, so node 1 is safe to run.
	s.PubSlot(0).Store(7)
	s.NotePublish(7)
	if st := states(s); st[1] != Running {
		t.Fatalf("after publish to 7: states %v, want node 1 Running", st)
	}
}

// TestParallelFenceRunsAlone: a fence-intent candidate is only admitted
// into an empty frontier, and while it runs nothing else is admitted.
func TestParallelFenceRunsAlone(t *testing.T) {
	s := New(3, 0)
	s.SetParallel(3, nil)
	s.par.cur[0] = Intent{} // fence
	s.Start()
	if st := states(s); st[0] != Running || st[1] != Ready || st[2] != Ready {
		t.Fatalf("fence must run alone: states %v", st)
	}
	// Even an infinitely-published fence member admits nobody.
	s.PubSlot(0).Store(1 << 40)
	s.NotePublish(1 << 40)
	if st := states(s); st[1] != Ready || st[2] != Ready {
		t.Fatalf("fence member must block all admission: states %v", st)
	}
}

// TestParallelLockHeldSerialToken: while a simulated lock is held the
// frontier degenerates to one node at a time, and releasing the lock
// re-opens admission.
func TestParallelLockHeldSerialToken(t *testing.T) {
	s := New(2, 0)
	s.SetParallel(2, nil)
	s.par.cur[0] = Intent{Kind: IntentCompute, LB: 1000}
	s.SetLockHeld(0, true)
	s.Start()
	if st := states(s); st[0] != Running || st[1] != Ready {
		t.Fatalf("lock held: states %v, want serial token", st)
	}
	s.SetLockHeld(0, false) // re-runs admission; node 1 clock 0 < floor 1000
	if st := states(s); st[1] != Running {
		t.Fatalf("lock released: states %v, want node 1 admitted", st)
	}
}

// TestParallelSetReadyOnWindowEdge: a blocked node readied at exactly a
// member's floor must wait (strictness applies to wakeups too); readied
// one cycle below, it runs immediately.
func TestParallelSetReadyOnWindowEdge(t *testing.T) {
	s := New(3, 0)
	s.SetParallel(3, nil)
	s.par.cur[0] = Intent{Kind: IntentCompute, LB: 100}
	s.nodes[1].state = Blocked
	s.nodes[2].state = Blocked
	s.Start()
	s.SetReadyIntent(1, 100, Intent{Kind: IntentCompute, LB: 4000})
	if st := states(s); st[1] != Ready {
		t.Fatalf("wakeup at clock 100 == floor 100: states %v, want node 1 still waiting", st)
	}
	s.SetReadyIntent(2, 99, Intent{Kind: IntentCompute, LB: 4000})
	if st := states(s); st[2] != Running {
		t.Fatalf("wakeup at clock 99 < floor 100: states %v, want node 2 admitted", st)
	}
	// Node 1 stays correct across the member's own progress: publish past
	// its clock and it must be released (node 2's floor is 99+4000).
	s.PubSlot(0).Store(101)
	s.NotePublish(101)
	if st := states(s); st[1] != Running {
		t.Fatalf("after publish past the edge: states %v, want node 1 admitted", st)
	}
}

// scriptStep is one segment of a scripted node: run to the given clock,
// then yield declaring the intent for the NEXT segment.
type scriptStep struct {
	clock int64
	next  Intent
}

// frontierSize counts nodes the scheduler currently has Running.
func frontierSize(s *Scheduler) int {
	n := 0
	for _, st := range states(s) {
		if st == Running {
			n++
		}
	}
	return n
}

// runScripted drives scripted nodes through s and returns the grant
// sequence indexed by grant step (via GrantKey, which is written under
// the scheduler lock before each grant) plus the peak number of nodes
// the scheduler held in the Running state at once.  Frontier occupancy
// is read from scheduler state rather than wall-clock overlap so the
// measurement works on a single-CPU host, where goroutines never
// physically overlap.
func runScripted(t *testing.T, s *Scheduler, scripts [][]scriptStep) ([]int, int) {
	t.Helper()
	total := len(scripts)
	for _, sc := range scripts {
		total += len(sc)
	}
	order := make([]int, total)
	var peak atomic.Int64
	var wg sync.WaitGroup
	s.Start()
	for id := range scripts {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			s.AwaitGrant(id)
			for _, st := range scripts[id] {
				if f := int64(frontierSize(s)); f > peak.Load() {
					peak.Store(f) // racy max is fine: only used as a lower bound
				}
				order[s.GrantKey(id)] = id
				if s.Parallel() {
					s.PubSlot(id).Store(st.clock)
					s.NotePublish(st.clock)
				}
				s.YieldIntent(id, st.clock, st.next)
			}
			order[s.GrantKey(id)] = id
			s.Exit(id)
		}(id)
	}
	wg.Wait()
	return order[:s.Steps()], int(peak.Load())
}

// TestParallelGrantOrderMatchesSerial runs the same scripted workload
// through the serial token and the parallel frontier (with compute and
// fault intents, overlapping and distinct blocks, an AdmitFunc vetoing
// same-home pairs) and asserts the grant sequences are identical.  It
// also asserts the parallel run actually overlapped segments — the test
// would pass vacuously if admission never fired.
func TestParallelGrantOrderMatchesSerial(t *testing.T) {
	mkScripts := func() [][]scriptStep {
		fault := func(block uint32, home int, lb int64) Intent {
			return Intent{Kind: IntentFault, Block: block, Home: home, LB: lb}
		}
		compute := func(lb int64) Intent { return Intent{Kind: IntentCompute, LB: lb} }
		// Four nodes, clocks spread so admission windows open and close;
		// every node's charge between yields is >= the LB it declared.
		return [][]scriptStep{
			{{100, fault(1, 1, 250)}, {400, compute(40)}, {460, fault(2, 1, 250)}, {800, Intent{}}, {900, compute(40)}},
			{{90, fault(3, 2, 250)}, {380, compute(40)}, {430, fault(1, 1, 250)}, {780, compute(40)}},
			{{110, fault(4, 3, 250)}, {420, fault(4, 3, 250)}, {700, compute(40)}},
			{{95, compute(40)}, {200, fault(5, 0, 250)}, {600, Intent{}}, {820, compute(40)}},
		}
	}
	admit := func(c Candidate, it Intent, peers []Peer) bool {
		if it.Kind != IntentFault {
			return true
		}
		for _, p := range peers {
			if p.It.Kind == IntentFault && p.It.Home == it.Home {
				return false
			}
		}
		return true
	}
	for _, seed := range []uint64{0, 42, 0xdeadbeef} {
		serial, _ := runScripted(t, New(4, seed), mkScripts())
		par := New(4, seed)
		par.SetParallel(4, admit)
		parallel, peak := runScripted(t, par, mkScripts())
		if len(serial) != len(parallel) {
			t.Fatalf("seed %d: step counts differ: serial %d, parallel %d", seed, len(serial), len(parallel))
		}
		for i := range serial {
			if serial[i] != parallel[i] {
				t.Fatalf("seed %d: grant order diverged at step %d:\nserial   %v\nparallel %v",
					seed, i, serial, parallel)
			}
		}
		if peak < 2 {
			t.Errorf("seed %d: parallel run never overlapped segments (peak %d); admission is not firing", seed, peak)
		}
	}
}
