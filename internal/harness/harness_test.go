package harness

import (
	"bytes"
	"strings"
	"testing"

	"lcm/internal/cost"
	"lcm/internal/cstar"
	"lcm/internal/workloads"
)

// smallSuite runs the whole campaign at an aggressively reduced scale so
// the test stays fast while still spanning all systems and workloads.
func smallSuite(buf *bytes.Buffer) *Suite {
	s := New(buf)
	s.Cfg = workloads.Config{P: 8, Verify: true}
	s.Scale = 16
	return s
}

func TestRunPaperEndToEnd(t *testing.T) {
	var buf bytes.Buffer
	s := smallSuite(&buf)
	rows := s.RunPaper()
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	for _, row := range rows {
		for sys, r := range row {
			if r.Err != nil {
				t.Fatalf("%s/%v failed verification: %v", r.Label(), sys, r.Err)
			}
			if r.Cycles <= 0 {
				t.Fatalf("%s/%v: zero cycles", r.Label(), sys)
			}
		}
	}
	out := buf.String()
	for _, want := range []string{"Table 1", "Figure 2", "Figure 3",
		"Stencil-stat", "Stencil-dyn", "Adaptive-stat", "Adaptive-dyn",
		"Threshold", "Unstructured", "miss:scc", "clean:mcc"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q", want)
		}
	}
}

func TestPaperShapeClaims(t *testing.T) {
	// The qualitative claims of Figures 2-3 must hold even at reduced
	// scale (the quantitative factors are checked at paper scale in
	// EXPERIMENTS.md).
	var buf bytes.Buffer
	s := smallSuite(&buf)
	s.Scale = 8
	rows := s.rows()
	stencilStat, stencilDyn := rows[0], rows[1]
	adaptiveDyn := rows[3]
	threshold, unstructured := rows[4], rows[5]

	// Stencil-stat: Stache wins big.
	if !(stencilStat[cstar.Copying].Cycles < stencilStat[cstar.LCMmcc].Cycles) {
		t.Error("Stencil-stat: Stache should beat LCM-mcc")
	}
	// LCM-scc slower than LCM-mcc with far more misses.
	if !(stencilStat[cstar.LCMscc].Cycles > stencilStat[cstar.LCMmcc].Cycles) {
		t.Error("Stencil-stat: scc should be slower than mcc")
	}
	if !(stencilStat[cstar.LCMscc].C.Misses > 3*stencilStat[cstar.LCMmcc].C.Misses) {
		t.Errorf("Stencil-stat: scc misses %d should be several times mcc's %d",
			stencilStat[cstar.LCMscc].C.Misses, stencilStat[cstar.LCMmcc].C.Misses)
	}
	// Stencil-dyn: the baseline's advantage must collapse; its misses
	// roughly double LCM-mcc's.
	if !(stencilDyn[cstar.Copying].C.Misses > stencilDyn[cstar.LCMmcc].C.Misses) {
		t.Error("Stencil-dyn: Copying should miss more than LCM-mcc")
	}
	// Adaptive-dyn, Threshold: LCM-mcc faster than the baseline.
	if !(adaptiveDyn[cstar.LCMmcc].Cycles < adaptiveDyn[cstar.Copying].Cycles) {
		t.Error("Adaptive-dyn: LCM-mcc should beat explicit copying")
	}
	if !(threshold[cstar.LCMmcc].Cycles < threshold[cstar.Copying].Cycles) {
		t.Error("Threshold: LCM-mcc should beat explicit copying")
	}
	if !(threshold[cstar.LCMmcc].Cycles < threshold[cstar.LCMscc].Cycles) {
		t.Error("Threshold: mcc should beat scc")
	}
	// Unstructured: LCM at least competitive.
	if float64(unstructured[cstar.LCMmcc].Cycles) > 1.1*float64(unstructured[cstar.Copying].Cycles) {
		t.Error("Unstructured: LCM-mcc should not lose to the baseline")
	}
}

func TestReductionAblation(t *testing.T) {
	var buf bytes.Buffer
	s := smallSuite(&buf)
	res := s.RunReduction(1 << 12)
	if len(res) != 3 {
		t.Fatal("want 3 strategies")
	}
	want := res[0].Value
	for _, r := range res {
		if r.Value != want {
			t.Fatalf("strategy %s result %v != %v", r.Strategy, r.Value, want)
		}
	}
	// The lock must be the bottleneck; the RSM reduction competitive
	// with hand-written partials.
	lock, partials, rsm := res[0], res[1], res[2]
	if !(lock.Cycles > partials.Cycles && lock.Cycles > rsm.Cycles) {
		t.Errorf("lock (%d) should be slowest (partials %d, rsm %d)",
			lock.Cycles, partials.Cycles, rsm.Cycles)
	}
	if float64(rsm.Cycles) > 1.5*float64(partials.Cycles) {
		t.Errorf("rsm reduction (%d) should be comparable to partials (%d)", rsm.Cycles, partials.Cycles)
	}
}

func TestFalseSharingAblation(t *testing.T) {
	var buf bytes.Buffer
	s := smallSuite(&buf)
	res := s.RunFalseSharing(4, 20)
	if strings.Contains(buf.String(), "WARNING") {
		t.Fatalf("false-sharing kernel lost updates:\n%s", buf.String())
	}
	var stache, mcc FalseSharingResult
	for _, r := range res {
		switch r.System {
		case cstar.Copying:
			stache = r
		case cstar.LCMmcc:
			mcc = r
		}
	}
	// Invalidation coherence must transfer blocks per writer per step;
	// LCM's private copies avoid the write-steal traffic.
	if !(stache.Misses > 0 && mcc.Misses > 0) {
		t.Fatal("no traffic measured")
	}
	if !(mcc.Cycles < stache.Cycles) {
		t.Errorf("LCM-mcc (%d cycles) should beat the invalidation protocol (%d) under false sharing",
			mcc.Cycles, stache.Cycles)
	}
}

func TestStaleDataAblation(t *testing.T) {
	var buf bytes.Buffer
	s := smallSuite(&buf)
	res := s.RunStaleData(64, 12, []int{0, 2, 4})
	if len(res) != 3 {
		t.Fatal("want 3 settings")
	}
	for i := 1; i < len(res); i++ {
		if !(res[i].Misses < res[i-1].Misses) {
			t.Errorf("misses should fall with staleness: %+v", res)
		}
		if res[i].MaxLagSeen > res[i].StalePhases {
			t.Errorf("staleness bound violated: lag %d > allowed %d",
				res[i].MaxLagSeen, res[i].StalePhases)
		}
	}
	if res[0].MaxLagSeen != 0 {
		t.Errorf("stale=0 must be fresh, lag %d", res[0].MaxLagSeen)
	}
}

func TestSpecScaling(t *testing.T) {
	s := New(&bytes.Buffer{})
	s.Scale = 4
	if sp := s.StencilSpec("static"); sp.N != 256 || sp.Iters != 12 {
		t.Fatalf("scaled stencil %+v", sp)
	}
	s.Scale = 1
	if sp := s.StencilSpec("dynamic"); sp.N != 1024 || sp.Iters != 50 || sp.Sched != "dynamic" {
		t.Fatalf("paper stencil %+v", sp)
	}
	if sp := s.UnstructuredSpec(); sp.Nodes != 256 || sp.Edges != 1024 || sp.Iters != 512 {
		t.Fatalf("paper unstructured %+v", sp)
	}
	s.Scale = 1000
	if sp := s.StencilSpec("static"); sp.N < 16 || sp.Iters < 3 {
		t.Fatalf("scale floor %+v", sp)
	}
}

func TestBlockSizeSweep(t *testing.T) {
	var buf bytes.Buffer
	s := smallSuite(&buf)
	res := s.RunBlockSizeSweep([]uint32{16, 32, 64})
	if len(res) != 9 {
		t.Fatalf("cells = %d, want 9", len(res))
	}
	// Larger blocks must reduce LCM-mcc misses (spatial amortization).
	missAt := func(bsz uint32) int64 {
		for _, r := range res {
			if r.BlockSize == bsz && r.System == cstar.LCMmcc {
				return r.Misses
			}
		}
		return -1
	}
	if !(missAt(16) > missAt(32) && missAt(32) > missAt(64)) {
		t.Fatalf("mcc misses not monotone in block size: %d, %d, %d",
			missAt(16), missAt(32), missAt(64))
	}
	if !strings.Contains(buf.String(), "block size") {
		t.Fatal("missing sweep table")
	}
}

func TestProcessorSweep(t *testing.T) {
	var buf bytes.Buffer
	s := smallSuite(&buf)
	res := s.RunProcessorSweep([]int{2, 4, 8})
	if len(res) != 6 {
		t.Fatalf("cells = %d, want 6", len(res))
	}
	// More processors must shorten the run for both systems.
	cy := func(p int, sys cstar.System) int64 {
		for _, r := range res {
			if r.P == p && r.System == sys {
				return r.Cycles
			}
		}
		return -1
	}
	for _, sys := range []cstar.System{cstar.Copying, cstar.LCMmcc} {
		if !(cy(2, sys) > cy(4, sys) && cy(4, sys) > cy(8, sys)) {
			t.Fatalf("%v does not scale: %d, %d, %d", sys, cy(2, sys), cy(4, sys), cy(8, sys))
		}
	}
}

func TestCommitSweep(t *testing.T) {
	var buf bytes.Buffer
	s := smallSuite(&buf)
	// Amplify per-block commit work so the strategy difference is well
	// above the compute floor at test scale.
	cm := cost.Default()
	cm.InvalidatePerCopy = 20000
	cm.LocalFill = 5000
	s.Cfg.CostModel = &cm
	res := s.RunCommitSweep([]int{2, 8})
	cy := func(p int, serial bool) int64 {
		for _, r := range res {
			if r.P == p && r.Serial == serial {
				return r.Cycles
			}
		}
		return -1
	}
	// Serializing the commit must hurt, and hurt more at larger P.
	if !(cy(8, true) > cy(8, false)) {
		t.Fatalf("serial commit (%d) not slower than parallel (%d) at P=8",
			cy(8, true), cy(8, false))
	}
	slow2 := float64(cy(2, true)) / float64(cy(2, false))
	slow8 := float64(cy(8, true)) / float64(cy(8, false))
	if slow8 <= slow2 {
		t.Fatalf("bottleneck should grow with P: slowdown %0.2f at P=2, %0.2f at P=8", slow2, slow8)
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	s := smallSuite(&buf)
	s.Cfg.Verify = false
	rows := s.rows()
	var csv bytes.Buffer
	if err := WriteCSV(&csv, rows); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 1+6*3 {
		t.Fatalf("csv has %d lines, want %d", len(lines), 1+6*3)
	}
	if !strings.HasPrefix(lines[0], "workload,system,sched,cycles") {
		t.Fatalf("header %q", lines[0])
	}
	for _, l := range lines[1:] {
		if strings.Count(l, ",") != strings.Count(lines[0], ",") {
			t.Fatalf("ragged row %q", l)
		}
	}
}
