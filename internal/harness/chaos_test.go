package harness

import (
	"bytes"
	"strings"
	"testing"

	"lcm/internal/workloads"
)

// TestChaosCampaign runs the full chaos matrix at reduced scale: every
// workload x every memory system under the default seeded plans, plus the
// unrecoverable-failure scenario.  RunChaos itself asserts bit-identical
// answers, intact invariants, and exact recovery accounting; the test only
// requires that no assertion failed.
func TestChaosCampaign(t *testing.T) {
	var buf bytes.Buffer
	s := New(&buf)
	s.Cfg = workloads.Config{P: 8}
	s.Scale = 16
	if err := s.RunChaos(DefaultChaosPlans()); err != nil {
		t.Fatalf("chaos campaign failed:\n%v\n\noutput:\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{"Stencil", "Adaptive", "Threshold", "Unstructured",
		"light", "heavy", "kill scenario"} {
		if !strings.Contains(out, want) {
			t.Fatalf("chaos output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "FAIL") {
		t.Fatalf("chaos output reports failure:\n%s", out)
	}
}
