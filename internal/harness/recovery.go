// Recovery matrix: every workload under every memory system runs under
// crash and delivery-fault plans with recovery enabled, and survival must
// be provable — the run completes, the answer is bit-identical to the
// fault-free oracle, the run replays bit-identically under the same
// (seed, faultplan), and the recovery counters account exactly for every
// injected fault: one restart per kill, one retransmission per drop, one
// discard per duplicate, one re-homing once the restart budget is spent.
package harness

import (
	"errors"
	"fmt"

	"lcm/internal/fault"
	"lcm/internal/net"
	"lcm/internal/workloads"
)

// RecoveryPlan is one cell of the crash-recovery matrix: an injector
// plan (kills), a delivery-fault config (drop/duplicate/reorder), or
// both.
type RecoveryPlan struct {
	Name string
	// Plan, when non-nil, is the fault-injection campaign (kill
	// triggers use KillRecover so the machine restarts instead of
	// aborting).
	Plan *fault.Plan
	// Loss, when non-nil, makes delivery unreliable.
	Loss *net.LossConfig
}

// DefaultRecoveryPlans returns the standard matrix: crash at the epoch
// boundary, crash mid-epoch, repeated crashes past the restart budget
// (forcing degraded-mode re-homing), sustained 1% message drop, and a
// duplicate/reorder storm.
func DefaultRecoveryPlans() []RecoveryPlan {
	return []RecoveryPlan{
		{Name: "kill-at-barrier", Plan: &fault.Plan{
			Seed: 0x1c3a05_0101, KillNode: 1, KillAtBarrier: 2, KillRecover: true,
		}},
		{Name: "kill-mid-epoch", Plan: &fault.Plan{
			Seed: 0x1c3a05_0102, KillNode: 1, KillAfter: 5, KillRecover: true,
		}},
		{Name: "kill-rehome", Plan: &fault.Plan{
			Seed: 0x1c3a05_0103, KillNode: 1, KillAfter: 3, KillCount: 4,
			KillRecover: true, RestartBudget: 2,
		}},
		{Name: "drop-1pct", Loss: &net.LossConfig{
			Seed: 0x1c3a05_0104, DropPerMil: 10,
		}},
		{Name: "dup-storm", Loss: &net.LossConfig{
			Seed: 0x1c3a05_0105, DupPerMil: 120, ReorderPerMil: 40,
		}},
	}
}

// RunRecovery runs the recovery matrix — every workload x memory system
// x plan x seed at the suite's P — asserting answer identity against the
// fault-free oracle, exact recovery accounting, and (for the first seed
// of each cell) bit-identical replay.  It prints one line per cell and
// returns the joined failures.
func (s *Suite) RunRecovery(plans []RecoveryPlan, seeds []uint64) error {
	cfg := s.Cfg
	cfg.Verify = true // answer identity against the sequential oracle
	if len(seeds) == 0 {
		seeds = []uint64{0}
	}
	var failures []error
	fmt.Fprintf(s.Out, "recovery matrix (P=%d, scale 1/%d, %d plans, %d seeds)...\n",
		cfg.P, s.Scale, len(plans), len(seeds))
	for _, c := range s.chaosCases() {
		for _, sys := range systems {
			base := c.run(sys, cfg)
			if base.Err != nil {
				failures = append(failures, fmt.Errorf("%s/%v: fault-free baseline failed: %w", c.name, sys, base.Err))
				continue
			}
			for _, p := range plans {
				if p.Plan != nil && p.Plan.KillNode >= cfg.P {
					fmt.Fprintf(s.Out, "  %-12s %-8v %-15s skip (kill target beyond P=%d)\n", c.name, sys, p.Name, cfg.P)
					continue
				}
				for i, seed := range seeds {
					fc := recoveryConfig(cfg, p, seed)
					res := c.run(sys, fc)
					err := checkRecovery(base, res, p, cfg.P)
					if err == nil && i == 0 {
						// Replay identity: the same (workload, P, seed,
						// faultplan) must reproduce every observable bit
						// for bit.
						replay := c.run(sys, fc)
						err = checkReplay(res, replay)
					}
					status := "ok"
					if err != nil {
						status = "FAIL: " + err.Error()
						failures = append(failures, fmt.Errorf("%s/%v/%s/seed%d: %w", c.name, sys, p.Name, seed, err))
					}
					fmt.Fprintf(s.Out, "  %-12s %-8v %-15s seed=%d kills=%d restarts=%d rehomed=%d retrans=%d dups=%d %s\n",
						c.name, sys, p.Name, seed, res.Faults.Kills, res.C.Restarts,
						res.C.RehomedBlocks, res.C.Net.Retransmits, res.C.Net.DupDelivered, status)
				}
			}
		}
	}
	return errors.Join(failures...)
}

// recoveryConfig builds one cell's machine configuration: recovery on,
// the plan's injector and loss model attached with their seeds shifted
// by the matrix seed.
func recoveryConfig(cfg workloads.Config, p RecoveryPlan, seed uint64) workloads.Config {
	cfg.Recover = true
	if p.Plan != nil {
		plan := *p.Plan
		plan.Seed += seed * 0x9e3779b97f4a7c15
		cfg.Faults = &plan
	}
	if p.Loss != nil {
		loss := *p.Loss
		loss.Seed += seed * 0x9e3779b97f4a7c15
		cfg.Loss = &loss
	}
	return cfg
}

// checkRecovery asserts one recovery run against its fault-free
// baseline: the run completed with the oracle answer, the access stream
// is untouched by recovery, and every injected fault is accounted for
// exactly.
func checkRecovery(base, res workloads.Result, p RecoveryPlan, P int) error {
	if res.Err != nil {
		return fmt.Errorf("run failed under recovery plan: %w", res.Err)
	}
	if P > 1 && res.Faults.Total() == 0 && res.Loss.Total() == 0 {
		return fmt.Errorf("plan injected nothing; matrix cell proves nothing")
	}
	checks := []struct {
		name      string
		want, got int64
	}{
		// Recovery must be invisible to the protocol's data movement:
		// the access stream matches the fault-free oracle run event for
		// event (answer identity itself is checked in-run by Verify).
		{"Hits", base.C.Hits, res.C.Hits},
		{"Misses", base.C.Misses, res.C.Misses},
		{"Flushes", base.C.Flushes, res.C.Flushes},
		{"WordsFlushed", base.C.WordsFlushed, res.C.WordsFlushed},
		{"Marks", base.C.Marks, res.C.Marks},
		{"Barriers", base.C.Barriers, res.C.Barriers},
		// Every node checkpoints at every barrier epoch.
		{"Checkpoints==Barriers", res.C.Barriers, res.C.Checkpoints},
		// One restart per injected kill, one retransmission per dropped
		// message, one discard per duplicate, one hold per reorder.
		{"Restarts==Kills", res.Faults.Kills, res.C.Restarts},
		{"Retransmits==Dropped", res.Loss.Dropped, res.C.Net.Retransmits},
		{"DupDelivered==Duplicated", res.Loss.Duplicated, res.C.Net.DupDelivered},
		{"ReorderHeld==Reordered", res.Loss.Reordered, res.C.Net.ReorderHeld},
	}
	for _, c := range checks {
		if c.want != c.got {
			return fmt.Errorf("%s: want %d, got %d", c.name, c.want, c.got)
		}
	}
	// Degraded mode: killed past the restart budget, the node re-homes
	// exactly once; within budget, never.
	if p.Plan != nil {
		budget := int64(p.Plan.RestartBudget)
		if budget <= 0 {
			budget = 4 // fault.Plan default
		}
		wantRehomings := int64(0)
		if res.Faults.Kills > budget && P > 1 {
			wantRehomings = 1
		}
		if res.C.Rehomings != wantRehomings {
			return fmt.Errorf("Rehomings: want %d (kills=%d budget=%d), got %d",
				wantRehomings, res.Faults.Kills, budget, res.C.Rehomings)
		}
		if wantRehomings == 1 && res.C.RehomedBlocks == 0 {
			return fmt.Errorf("re-homed with zero blocks migrated")
		}
	}
	return nil
}

// checkReplay asserts two runs of the same (workload, P, seed,
// faultplan) cell are bit-identical in every observable.
func checkReplay(a, b workloads.Result) error {
	if b.Err != nil {
		return fmt.Errorf("replay failed: %w", b.Err)
	}
	if a.Cycles != b.Cycles {
		return fmt.Errorf("replay diverged: cycles %d vs %d", a.Cycles, b.Cycles)
	}
	if a.C != b.C {
		return fmt.Errorf("replay diverged: counters %+v vs %+v", a.C, b.C)
	}
	if a.S != b.S {
		return fmt.Errorf("replay diverged: shared counters %+v vs %+v", a.S, b.S)
	}
	if a.Faults != b.Faults {
		return fmt.Errorf("replay diverged: fault tally %v vs %v", a.Faults, b.Faults)
	}
	if a.Loss != b.Loss {
		return fmt.Errorf("replay diverged: loss tally %v vs %v", a.Loss, b.Loss)
	}
	return nil
}
