package harness

import (
	"bytes"
	"testing"

	"lcm/internal/net"
	"lcm/internal/workloads"
)

// Parallel-identity tests: running the same (workload, P, schedule seed)
// grid time-parallel must produce trajectory JSON byte-identical to the
// serial run — simulated cycles, Copying fault counts, and every network
// counter included.  This is the end-to-end statement of the
// time-parallel executor's contract (the -par flag and benchdiff
// -identical assert the same thing from the command line), and because
// the test suite runs under -race in CI, it doubles as the race stress
// of the full P=8 grid in parallel mode: the worker pool, the publish
// protocol, the network gate and the keyed side lists all execute with
// the detector watching.

// TestParallelByteIdenticalJSON runs Stencil-dynamic and Adaptive-dynamic
// at P=8 serially and with Par=4 per schedule seed and asserts the
// deterministic JSON renderings are byte-identical, on both interconnect
// models (uniform uses the raw network, fattree exercises the ledger
// serialization gate).
func TestParallelByteIdenticalJSON(t *testing.T) {
	nets := []struct {
		name string
		cfg  *net.Config
	}{
		{"uniform", nil},
		{"fattree", &net.Config{Model: "fattree"}},
	}
	for _, nc := range nets {
		for _, seed := range []uint64{0, 1, 0xdeadbeef} {
			cfg := workloads.Config{P: 8, Verify: true, SchedSeed: seed, Net: nc.cfg}
			serial, err := MarshalDeterministic(cfg, 16, replayRows(t, cfg))
			if err != nil {
				t.Fatalf("%s seed %d: marshal serial: %v", nc.name, seed, err)
			}
			cfg.Par = 4
			parallel, err := MarshalDeterministic(cfg, 16, replayRows(t, cfg))
			if err != nil {
				t.Fatalf("%s seed %d: marshal parallel: %v", nc.name, seed, err)
			}
			if !bytes.Equal(serial, parallel) {
				t.Errorf("%s seed %d: parallel JSON differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s",
					nc.name, seed, serial, parallel)
			}
		}
	}
}
