package harness

import (
	"fmt"

	"lcm/internal/core"
	"lcm/internal/cost"
	"lcm/internal/cstar"
	"lcm/internal/memsys"
	"lcm/internal/stats"
	"lcm/internal/tempest"
	"lcm/internal/workloads"
)

// This file implements the Section 7 ablation experiments: global
// reductions (7.1), false-sharing relief (7.4) and stale data (7.5).
// Each returns measurements and prints a table; the claims being tested
// are stated in the output.

// ReductionResult measures one reduction strategy.
type ReductionResult struct {
	Strategy string
	Cycles   int64
	Misses   int64
	Value    float64
}

// RunReduction compares three ways of summing n values across P nodes
// (Section 7.1): a lock around a shared accumulator, per-node partial sums
// combined serially, and an RSM reduction region whose reconciliation
// function does the combine.
func (s *Suite) RunReduction(n int) []ReductionResult {
	cfg := s.Cfg
	want := float64(n) * float64(n-1) / 2

	var out []ReductionResult

	// Strategy 1: lock-protected shared accumulator.  Each node adds its
	// chunk under the lock in batches, as a pragmatic programmer would;
	// the lock transfer and the serialized critical sections dominate.
	{
		m := cstar.NewMachine(cfg.P, bs(cfg), costOf(cfg), cstar.Copying)
		total := cstar.NewVectorF64(m, "total", 1, core.Coherent(), memsys.SingleHome)
		m.Freeze()
		var lk tempest.SimLock
		m.Run(func(nd *tempest.Node) {
			lo, hi := (cstar.StaticSchedule{}).Range(nd.ID, m.P, 0, n)
			var local float64
			for i := lo; i < hi; i++ {
				local += float64(i)
				nd.Compute(1)
				// Batch into the shared total every 64 elements — the
				// naive per-element lock would be even worse.
				if (i-lo)%64 == 63 || i == hi-1 {
					lk.Acquire(nd)
					total.Set(nd, 0, total.Get(nd, 0)+local)
					lk.Release(nd)
					local = 0
				}
			}
			nd.Barrier()
		})
		out = append(out, ReductionResult{"lock", m.MaxClock(), m.TotalCounters().Misses, total.Peek(0)})
	}

	// Strategy 2: hand-written partial sums (what the paper suggests a
	// programmer rewrites the loop into).
	{
		m := cstar.NewMachine(cfg.P, bs(cfg), costOf(cfg), cstar.Copying)
		red := cstar.NewReduceF64(m, "total", cstar.Copying)
		m.Freeze()
		m.Run(func(nd *tempest.Node) {
			lo, hi := (cstar.StaticSchedule{}).Range(nd.ID, m.P, 0, n)
			for i := lo; i < hi; i++ {
				red.Add(nd, float64(i))
				nd.Compute(1)
			}
			red.Reduce(nd)
		})
		var v float64
		m.Run(func(nd *tempest.Node) {
			if nd.ID == 0 {
				v = red.Value(nd)
			}
		})
		out = append(out, ReductionResult{"partials", m.MaxClock(), m.TotalCounters().Misses, v})
	}

	// Strategy 3: RSM reduction — the memory system combines private
	// copies at reconciliation.
	{
		m := cstar.NewMachine(cfg.P, bs(cfg), costOf(cfg), cstar.LCMmcc)
		red := cstar.NewReduceF64(m, "total", cstar.LCMmcc)
		m.Freeze()
		m.Run(func(nd *tempest.Node) {
			lo, hi := (cstar.StaticSchedule{}).Range(nd.ID, m.P, 0, n)
			for i := lo; i < hi; i++ {
				red.Add(nd, float64(i))
				nd.Compute(1)
			}
			red.Reduce(nd)
		})
		var v float64
		m.Run(func(nd *tempest.Node) {
			if nd.ID == 0 {
				v = red.Value(nd)
			}
		})
		out = append(out, ReductionResult{"rsm-reduction", m.MaxClock(), m.TotalCounters().Misses, v})
	}

	tb := stats.NewTable(
		fmt.Sprintf("Ablation 7.1: global sum of %d values, P=%d (all values must equal %.0f)", n, cfg.P, want),
		"cycles", "misses", "value")
	for _, r := range out {
		tb.AddRow(r.Strategy, map[string]string{
			"cycles": stats.GroupInt(r.Cycles),
			"misses": stats.GroupInt(r.Misses),
			"value":  fmt.Sprintf("%.0f", r.Value),
		})
	}
	fmt.Fprintln(s.Out, tb.String())
	fmt.Fprintln(s.Out, "  paper claim: the RSM reconciliation reduction avoids the lock bottleneck and")
	fmt.Fprintln(s.Out, "  needs no extra analysis or data structures, at cost comparable to hand-written partials.")
	fmt.Fprintln(s.Out)
	return out
}

// FalseSharingResult measures one system on the false-sharing kernel.
type FalseSharingResult struct {
	System cstar.System
	Cycles int64
	Misses int64
}

// RunFalseSharing measures Section 7.4: writers updating distinct words of
// the same cache blocks, with writes to each block interleaved across the
// writers over time: each phase consists of rounds in which every writer
// touches a different block, rotating every round, so consecutive writes
// to one block always come from different processors.  Under
// invalidation-based coherence every such write steals the block from its
// previous writer; under LCM the first write of the phase makes a private
// copy and all later writes hit it, with reconciliation merging the
// disjoint words.
func (s *Suite) RunFalseSharing(blocks, steps int) []FalseSharingResult {
	cfg := s.Cfg
	var out []FalseSharingResult
	wordsPerBlock := int(bs(cfg) / 4)
	writers := min(cfg.P, wordsPerBlock, blocks)
	rounds := 4 * blocks // each writer revisits each block 4 times per phase
	for _, sys := range []cstar.System{cstar.Copying, cstar.LCMscc, cstar.LCMmcc} {
		m := cstar.NewMachine(cfg.P, bs(cfg), costOf(cfg), sys)
		v := cstar.NewVectorI32(m, "shared", blocks*wordsPerBlock, cstar.DataPolicy(sys), memsys.Interleaved)
		m.Freeze()
		m.Run(func(nd *tempest.Node) {
			for st := 0; st < steps; st++ {
				for r := 0; r < rounds; r++ {
					if nd.ID < writers {
						b := (nd.ID + r) % blocks
						idx := b*wordsPerBlock + nd.ID
						v.Set(nd, idx, v.Get(nd, idx)+1)
					}
					nd.Barrier() // writes to a block interleave across writers
				}
				nd.ReconcileCopies()
			}
		})
		out = append(out, FalseSharingResult{sys, m.MaxClock(), m.TotalCounters().Misses})
		// Sanity: each writer hit each block rounds/blocks times per phase.
		cstar.DrainToHome(m)
		want := int32(steps * rounds / blocks)
		for w := 0; w < writers; w++ {
			if got := v.Peek(w); got != want {
				fmt.Fprintf(s.Out, "  WARNING: word %d = %d, want %d\n", w, got, want)
			}
		}
	}
	tb := stats.NewTable(
		fmt.Sprintf("Ablation 7.4: false sharing — %d writers, %d-byte blocks, %d blocks, %d phases x %d interleaved rounds",
			writers, bs(cfg), blocks, steps, rounds),
		"cycles", "misses")
	for _, r := range out {
		tb.AddRow(r.System.String(), map[string]string{
			"cycles": stats.GroupInt(r.Cycles),
			"misses": stats.GroupInt(r.Misses),
		})
	}
	fmt.Fprintln(s.Out, tb.String())
	fmt.Fprintln(s.Out, "  paper claim: with private copies and word-level merge, false sharing causes no")
	fmt.Fprintln(s.Out, "  coherence ping-pong; the invalidation protocol transfers each block per writer per step.")
	fmt.Fprintln(s.Out)
	return out
}

// StaleResult measures one staleness setting.
type StaleResult struct {
	StalePhases int
	Cycles      int64
	Misses      int64
	MaxLagSeen  int
}

// RunStaleData measures Section 7.5: one producer updates a field every
// phase; the other nodes read all of it every phase.  With StalePhases=k a
// consumer's copy survives up to k producer updates, trading staleness for
// eliminated re-fetches — the N-body "distant elements" optimization.
func (s *Suite) RunStaleData(words, phases int, staleness []int) []StaleResult {
	cfg := s.Cfg
	var out []StaleResult
	for _, k := range staleness {
		m := cstar.NewMachine(cfg.P, bs(cfg), costOf(cfg), cstar.LCMmcc)
		pol := core.Stale(k)
		if k == 0 {
			pol = core.LooselyCoherent()
		}
		field := cstar.NewVectorF32(m, "field", words, pol, memsys.SingleHome)
		m.Freeze()
		maxLag := 0
		m.Run(func(nd *tempest.Node) {
			myMax := 0
			for ph := 0; ph < phases; ph++ {
				if nd.ID == 0 {
					for w := 0; w < words; w++ {
						field.Set(nd, w, float32(ph+1))
					}
				}
				nd.ReconcileCopies()
				if nd.ID != 0 {
					for w := 0; w < words; w++ {
						lag := (ph + 1) - int(field.Get(nd, w))
						if lag > myMax {
							myMax = lag
						}
					}
				}
			}
			nd.Barrier()
			if nd.ID == 1 {
				maxLag = myMax
			}
		})
		out = append(out, StaleResult{k, m.MaxClock(), m.TotalCounters().Misses, maxLag})
	}
	tb := stats.NewTable(
		fmt.Sprintf("Ablation 7.5: stale data — producer updates %d words over %d phases, %d consumers",
			words, phases, cfg.P-1),
		"cycles", "misses", "max_lag")
	for _, r := range out {
		tb.AddRow(fmt.Sprintf("stale=%d", r.StalePhases), map[string]string{
			"cycles":  stats.GroupInt(r.Cycles),
			"misses":  stats.GroupInt(r.Misses),
			"max_lag": fmt.Sprintf("%d", r.MaxLagSeen),
		})
	}
	fmt.Fprintln(s.Out, tb.String())
	fmt.Fprintln(s.Out, "  paper claim: tolerating staleness eliminates refetches of repeatedly-updated data;")
	fmt.Fprintln(s.Out, "  misses fall as allowed staleness grows, bounded lag in exchange.")
	fmt.Fprintln(s.Out)
	return out
}

// RunAblations runs all Section 7 experiments at default sizes.
func (s *Suite) RunAblations() {
	s.RunReduction(1 << 16)
	s.RunFalseSharing(16, 50)
	s.RunStaleData(256, 40, []int{0, 1, 2, 4, 8})
}

// costOf resolves the suite's cost model (defaulting like workloads do).
func costOf(cfg workloads.Config) cost.Model {
	if cfg.CostModel != nil {
		return *cfg.CostModel
	}
	return cost.Default()
}

// bs resolves the suite's block size (defaulting like workloads do).
func bs(cfg workloads.Config) uint32 {
	if cfg.BlockSize == 0 {
		return 32
	}
	return cfg.BlockSize
}
