package harness

import (
	"io"
	"testing"

	"lcm/internal/cstar"
	"lcm/internal/workloads"
)

// Golden Table-1 grid: the protocol counters of every (workload, system)
// cell at the CI reference configuration (-scale 16 -p 8), pinned exactly.
//
// These numbers were captured from the flat-charge cost model that predates
// internal/net; the uniform network model must reproduce them bit-for-bit
// (the tentpole contract: `-net=uniform` is the pre-net simulator).  They
// are also the values the CI determinism job sees, so any drift here means
// either a deliberate protocol change (update the table and EXPERIMENTS.md)
// or an accounting regression.
//
// Every cell is pinned on every field, Copying included: the deterministic
// scheduler (internal/sched, on by default in workloads.Config) makes the
// interleaving — and with it Copying's invalidation-order-dependent fault
// counts — a pure function of (workload, P, seed).  The Copying P>1 values
// below were re-captured under schedule seed 0 when the scheduler landed;
// LCM cells were stream-determined all along and did not move.
type grid struct {
	misses, remote, local, upgrades, invalsSent    int64
	flushes, wordsFlushed, marks, barriers, copied int64
	cleanHome, cleanLocal, reconciles              int64
}

var goldenGrid = []struct {
	workload string
	sched    string
	sys      cstar.System
	want     grid
}{
	{"Stencil", "static", cstar.Copying, grid{1396, 1253, 143, 614, 254, 0, 0, 0, 24, 0, 0, 0, 0}},
	{"Stencil", "static", cstar.LCMscc, grid{13345, 11672, 1673, 11532, 1797, 11532, 8789, 11532, 48, 0, 1488, 0, 1488}},
	{"Stencil", "static", cstar.LCMmcc, grid{1858, 1625, 233, 1506, 1842, 11532, 8789, 11532, 48, 0, 1488, 1506, 1488}},
	{"Stencil", "dynamic", cstar.Copying, grid{3148, 2881, 267, 124, 1556, 0, 0, 0, 24, 0, 0, 0, 0}},
	{"Stencil", "dynamic", cstar.LCMscc, grid{13377, 11705, 1672, 11532, 1797, 11532, 8789, 11532, 48, 0, 1488, 0, 1488}},
	{"Stencil", "dynamic", cstar.LCMmcc, grid{1890, 1654, 236, 1506, 1842, 11532, 8789, 11532, 48, 0, 1488, 1506, 1488}},
	{"Adaptive", "static", cstar.Copying, grid{6245, 5629, 616, 1424, 1105, 0, 0, 0, 96, 18128, 0, 0, 0}},
	{"Adaptive", "static", cstar.LCMscc, grid{10229, 8959, 1270, 3668, 2432, 6602, 28505, 6602, 96, 0, 6602, 0, 5003}},
	{"Adaptive", "static", cstar.LCMmcc, grid{7737, 6779, 958, 3668, 6158, 6602, 28505, 6602, 96, 0, 6602, 6602, 5003}},
	{"Adaptive", "dynamic", cstar.Copying, grid{15758, 14674, 1084, 4296, 6282, 0, 0, 0, 96, 18128, 0, 0, 0}},
	{"Adaptive", "dynamic", cstar.LCMscc, grid{12271, 10735, 1536, 3668, 2632, 6602, 28505, 6602, 96, 0, 6602, 0, 5003}},
	{"Adaptive", "dynamic", cstar.LCMmcc, grid{10824, 9468, 1356, 3668, 6699, 6602, 28505, 6602, 96, 0, 6602, 6602, 5003}},
	{"Threshold", "", cstar.Copying, grid{460, 418, 42, 182, 142, 0, 0, 0, 24, 2535, 0, 0, 0}},
	{"Threshold", "", cstar.LCMscc, grid{416, 368, 48, 147, 150, 147, 147, 147, 48, 0, 101, 0, 101}},
	{"Threshold", "", cstar.LCMmcc, grid{271, 238, 33, 101, 152, 147, 147, 147, 48, 0, 101, 101, 101}},
	{"Unstructured", "", cstar.Copying, grid{2240, 2204, 36, 496, 2108, 0, 0, 0, 256, 0, 0, 0, 0}},
	{"Unstructured", "", cstar.LCMscc, grid{2970, 2199, 771, 512, 2426, 512, 511, 512, 512, 0, 512, 0, 511}},
	{"Unstructured", "", cstar.LCMmcc, grid{2714, 2199, 515, 512, 2682, 512, 511, 512, 512, 0, 512, 512, 511}},
}

func gridOf(r workloads.Result) grid {
	return grid{
		misses: r.C.Misses, remote: r.C.RemoteMisses, local: r.C.LocalFills,
		upgrades: r.C.Upgrades, invalsSent: r.C.InvalidationsSent,
		flushes: r.C.Flushes, wordsFlushed: r.C.WordsFlushed, marks: r.C.Marks,
		barriers: r.C.Barriers, copied: r.C.CopiedWords,
		cleanHome: r.S.CleanCopiesHome, cleanLocal: r.S.CleanCopiesLocal,
		reconciles: r.S.Reconciles,
	}
}

// TestGoldenGridCounters runs the full Table-1 grid at the CI reference
// configuration and checks every cell against the pinned counters.
func TestGoldenGridCounters(t *testing.T) {
	s := New(io.Discard)
	s.Cfg = workloads.Config{P: 8, Verify: true}
	s.Scale = 16
	rows := s.RunPaperSelect(false, false, false)

	i := 0
	for _, row := range rows {
		for _, sys := range []cstar.System{cstar.Copying, cstar.LCMscc, cstar.LCMmcc} {
			if i >= len(goldenGrid) {
				t.Fatalf("more grid cells than golden entries")
			}
			g := goldenGrid[i]
			i++
			r, ok := row[sys]
			if !ok {
				t.Fatalf("missing cell %s/%s/%v", g.workload, g.sched, sys)
			}
			if r.Err != nil {
				t.Errorf("%s-%s/%v: run failed: %v", g.workload, g.sched, sys, r.Err)
				continue
			}
			if r.Workload != g.workload || r.Sched != g.sched || sys != g.sys {
				t.Fatalf("cell order drifted: got %s-%s/%v want %s-%s/%v",
					r.Workload, r.Sched, sys, g.workload, g.sched, g.sys)
			}
			if got, want := gridOf(r), g.want; got != want {
				t.Errorf("%s-%s/%v: counters drifted:\n got  %+v\n want %+v",
					g.workload, g.sched, sys, got, want)
			}
		}
	}
	if i != len(goldenGrid) {
		t.Fatalf("golden table has %d entries but grid produced %d cells", len(goldenGrid), i)
	}
}
