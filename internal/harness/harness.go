// Package harness runs the paper's experiments and renders their tables
// and figures as text: Table 1 (cache misses and clean copies), Figure 2
// (Stencil execution time) and Figure 3 (Adaptive, Threshold and
// Unstructured execution time), plus the Section 7 ablations (reductions,
// false sharing, stale data).
//
// Absolute cycle counts come from the simulator's cost model; the
// reproduction targets the paper's relative claims, which each figure
// prints alongside the measurements (see EXPERIMENTS.md).
package harness

import (
	"fmt"
	"io"
	"time"

	"lcm/internal/cstar"
	"lcm/internal/stats"
	"lcm/internal/workloads"
)

// Suite configures one experiment campaign.
type Suite struct {
	// Cfg is the machine configuration (paper: P=32, 32-byte blocks).
	Cfg workloads.Config
	// Scale divides the problem sizes; 1 reproduces the paper's
	// parameters, larger values give proportionally smaller runs for
	// quick checks.  Iteration counts shrink with the square root so
	// that scaled runs still cover multiple phases.
	Scale int
	// Out receives the rendered tables.
	Out io.Writer
	// OnProgress, when non-nil, is invoked after every completed (cell,
	// system) run of a grid campaign (see Progress).  It lets callers —
	// cmd progress meters, the lcmd job server — stream campaign state
	// without the harness writing anywhere but Out.
	OnProgress func(Progress)
	// KVSkew overrides the KV cells' Zipf exponent (0 = the workload
	// default of 0.99); KVReshard their reshard cadence in phases
	// (0 = default, negative = resharding off).  Both are part of the
	// deterministic run tuple.
	KVSkew    float64
	KVReshard int
}

// New creates a Suite with paper defaults writing to out.
func New(out io.Writer) *Suite {
	return &Suite{Cfg: workloads.Config{P: 32, Verify: false}, Scale: 1, Out: out}
}

func (s *Suite) scaleDim(n int) int {
	v := n / s.Scale
	if v < 16 {
		v = 16
	}
	return v
}

func (s *Suite) scaleIters(n int) int {
	v := n
	if s.Scale > 1 {
		v = n / s.Scale
	}
	if v < 3 {
		v = 3
	}
	return v
}

// StencilSpec returns the (possibly scaled) Stencil configuration.
func (s *Suite) StencilSpec(sched string) workloads.StencilSpec {
	p := workloads.PaperStencil(sched)
	p.N = s.scaleDim(p.N)
	p.Iters = s.scaleIters(p.Iters)
	return p
}

// ThresholdSpec returns the (possibly scaled) Threshold configuration.
func (s *Suite) ThresholdSpec() workloads.ThresholdSpec {
	p := workloads.PaperThreshold()
	p.N = s.scaleDim(p.N)
	p.Iters = s.scaleIters(p.Iters)
	return p
}

// AdaptiveSpec returns the (possibly scaled) Adaptive configuration.
func (s *Suite) AdaptiveSpec(sched string) workloads.AdaptiveSpec {
	p := workloads.PaperAdaptive(sched)
	p.N = s.scaleDim(p.N)
	p.Iters = s.scaleIters(p.Iters)
	return p
}

// UnstructuredSpec returns the (possibly scaled) Unstructured configuration.
func (s *Suite) UnstructuredSpec() workloads.UnstructuredSpec {
	p := workloads.PaperUnstructured()
	if s.Scale > 1 {
		p.Nodes /= s.Scale
		p.Edges /= s.Scale
		p.Iters = s.scaleIters(p.Iters)
	}
	return p
}

// KVSpec returns the (possibly scaled) serving-workload configuration
// for the given request mix, with the Suite's skew/reshard overrides
// applied.
func (s *Suite) KVSpec(mix string) workloads.KVSpec {
	p := workloads.PaperKV(mix)
	if s.Scale > 1 {
		// Floors keep heavily scaled runs meaningful: at least 32 keys
		// per shard (one maximum-size block) and one aligned op chunk
		// per stream; workloads.KVSpec.norm rounds the remainders up.
		if p.Keys /= s.Scale; p.Keys < p.Shards*32 {
			p.Keys = p.Shards * 32
		}
		if p.OpsPerStream /= s.Scale; p.OpsPerStream < 32 {
			p.OpsPerStream = 32
		}
		p.Phases = s.scaleIters(p.Phases)
	}
	if s.KVSkew != 0 {
		p.Skew = s.KVSkew
	}
	if s.KVReshard != 0 {
		p.ReshardEvery = s.KVReshard
	}
	return p
}

var systems = []cstar.System{cstar.LCMscc, cstar.LCMmcc, cstar.Copying}

// runRow runs one benchmark row under all three systems, stamping each
// result with its host wall-clock duration for the trajectory record and
// reporting campaign progress after each system completes.
func (s *Suite) runRow(cell string, done *int, total int, run func(sys cstar.System) workloads.Result) map[cstar.System]workloads.Result {
	out := make(map[cstar.System]workloads.Result, len(systems))
	for _, sys := range systems {
		t0 := time.Now()
		r := run(sys)
		r.Wall = time.Since(t0)
		out[sys] = r
		*done++
		if s.OnProgress != nil {
			s.OnProgress(Progress{
				Cell: cell, System: sys.String(), Done: *done, Total: total,
				SimCycles: r.Cycles, SimMisses: r.C.Misses, Wall: r.Wall, Err: r.Err,
			})
		}
	}
	return out
}

// rows runs all six benchmark rows of Table 1 / Figures 2-3.
func (s *Suite) rows() []map[cstar.System]workloads.Result {
	fmt.Fprintf(s.Out, "running benchmarks (P=%d, scale 1/%d)...\n", s.Cfg.P, s.Scale)
	all, err := s.RunCells(GridCells())
	if err != nil {
		// GridCells are the canonical cell set; a runner error for them
		// is a harness bug, not a configuration problem.
		panic(err)
	}
	return all
}

// Table1 reproduces the paper's Table 1: cache misses (in thousands) per
// system and clean copies (in thousands) for the two LCM variants.
func (s *Suite) Table1(rows []map[cstar.System]workloads.Result) {
	tb := stats.NewTable(
		"Table 1: benchmark cache misses and clean copies (in thousands)",
		"miss:scc", "miss:mcc", "miss:Copying", "clean:scc", "clean:mcc")
	for _, row := range rows {
		name := row[cstar.LCMscc].Label()
		tb.AddRow(name, map[string]string{
			"miss:scc":     stats.Thousands(row[cstar.LCMscc].C.Misses),
			"miss:mcc":     stats.Thousands(row[cstar.LCMmcc].C.Misses),
			"miss:Copying": stats.Thousands(row[cstar.Copying].C.Misses),
			"clean:scc":    stats.Thousands(row[cstar.LCMscc].CleanCopies()),
			"clean:mcc":    stats.Thousands(row[cstar.LCMmcc].CleanCopies()),
		})
	}
	fmt.Fprintln(s.Out, tb.String())
}

// figure renders one execution-time bar group.
func (s *Suite) figure(title string, rows []map[cstar.System]workloads.Result) {
	fmt.Fprintln(s.Out, title)
	var max int64
	for _, row := range rows {
		for _, sys := range systems {
			if c := row[sys].Cycles; c > max {
				max = c
			}
		}
	}
	for _, row := range rows {
		base := row[cstar.Copying].Cycles
		fmt.Fprintf(s.Out, "  %s\n", row[cstar.LCMscc].Label())
		for _, sys := range []cstar.System{cstar.Copying, cstar.LCMscc, cstar.LCMmcc} {
			r := row[sys]
			fmt.Fprintf(s.Out, "    %-8s %14s cycles  %-40s x%s vs Stache\n",
				sys, stats.GroupInt(r.Cycles), stats.Bar(r.Cycles, max, 40),
				stats.Speedup(base, r.Cycles))
		}
	}
	fmt.Fprintln(s.Out)
}

// Fig2 reproduces Figure 2: Stencil execution time, static and dynamic.
func (s *Suite) Fig2(rows []map[cstar.System]workloads.Result) {
	s.figure("Figure 2: Stencil execution time", rows[:2])
	fmt.Fprintln(s.Out, "  paper: Stencil-stat ~5x faster under Stache; Stencil-dyn ~2% faster under LCM-mcc;")
	fmt.Fprintln(s.Out, "         LCM-scc ~4x slower than LCM-mcc with ~8x its misses.")
	fmt.Fprintln(s.Out)
}

// Fig3 reproduces Figure 3: Adaptive, Threshold, Unstructured times.
func (s *Suite) Fig3(rows []map[cstar.System]workloads.Result) {
	s.figure("Figure 3: benchmark execution time", rows[2:])
	fmt.Fprintln(s.Out, "  paper: Adaptive-dyn ~1.9x faster under LCM-mcc; Threshold 97%/74% faster under")
	fmt.Fprintln(s.Out, "         LCM-mcc/scc; Unstructured 19-28% faster under LCM.")
	fmt.Fprintln(s.Out)
}

// RunPaper runs every benchmark and prints Table 1 and Figures 2 and 3.
// It returns the raw results for further inspection.
func (s *Suite) RunPaper() []map[cstar.System]workloads.Result {
	return s.RunPaperSelect(true, true, true)
}

// RunPaperSelect runs the benchmarks needed by the selected artifacts and
// prints them.  Table 1 and the figures share the same runs, so everything
// executes once.
func (s *Suite) RunPaperSelect(table1, fig2, fig3 bool) []map[cstar.System]workloads.Result {
	rows := s.rows()
	if table1 {
		s.Table1(rows)
	}
	if fig2 {
		s.Fig2(rows)
	}
	if fig3 {
		s.Fig3(rows)
	}
	return rows
}
