package harness

import (
	"fmt"

	"lcm/internal/core"
	"lcm/internal/cstar"
	"lcm/internal/memsys"
	"lcm/internal/stats"
	"lcm/internal/tempest"
	"lcm/internal/workloads"
)

// This file implements parameter sweeps beyond the paper's headline
// experiments: block-size sensitivity (LCM-mcc's advantage comes from
// spatial reuse of clean copies, which grows with the block; LCM-scc is
// nearly insensitive) and processor-count scaling (the paper argues
// reconciliation at the homes is unlikely to bottleneck because few copies
// of each block exist and flushes arrive spread out — the sweep checks
// that reconcile cost grows gracefully with P).

// BlockSizeResult is one cell of the block-size sweep.
type BlockSizeResult struct {
	BlockSize uint32
	System    cstar.System
	Cycles    int64
	Misses    int64
}

// RunBlockSizeSweep runs the Stencil benchmark across block sizes for all
// three systems.
func (s *Suite) RunBlockSizeSweep(sizes []uint32) []BlockSizeResult {
	var out []BlockSizeResult
	spec := s.StencilSpec("static")
	for _, bsz := range sizes {
		for _, sys := range []cstar.System{cstar.Copying, cstar.LCMscc, cstar.LCMmcc} {
			cfg := s.Cfg
			cfg.BlockSize = bsz
			r := workloads.RunStencil(sys, spec, cfg)
			out = append(out, BlockSizeResult{bsz, sys, r.Cycles, r.C.Misses})
		}
	}
	tb := stats.NewTable(
		fmt.Sprintf("Sweep: Stencil-stat (%dx%d, %d iters) vs block size",
			spec.N, spec.N, spec.Iters),
		"copying:cycles", "scc:cycles", "mcc:cycles", "scc:miss", "mcc:miss")
	for _, bsz := range sizes {
		row := map[string]string{}
		for _, r := range out {
			if r.BlockSize != bsz {
				continue
			}
			switch r.System {
			case cstar.Copying:
				row["copying:cycles"] = stats.GroupInt(r.Cycles)
			case cstar.LCMscc:
				row["scc:cycles"] = stats.GroupInt(r.Cycles)
				row["scc:miss"] = stats.Thousands(r.Misses) + "k"
			case cstar.LCMmcc:
				row["mcc:cycles"] = stats.GroupInt(r.Cycles)
				row["mcc:miss"] = stats.Thousands(r.Misses) + "k"
			}
		}
		tb.AddRow(fmt.Sprintf("%dB blocks", bsz), row)
	}
	fmt.Fprintln(s.Out, tb.String())
	fmt.Fprintln(s.Out, "  larger blocks amortize fetches for all systems; the scc/mcc gap tracks the")
	fmt.Fprintln(s.Out, "  spatial reuse a local clean copy preserves across flushed invocations.")
	fmt.Fprintln(s.Out)
	return out
}

// ScaleResult is one cell of the processor-count sweep.
type ScaleResult struct {
	P      int
	System cstar.System
	Cycles int64
}

// RunProcessorSweep runs Stencil-dyn across machine sizes.
func (s *Suite) RunProcessorSweep(ps []int) []ScaleResult {
	var out []ScaleResult
	spec := s.StencilSpec("dynamic")
	for _, p := range ps {
		for _, sys := range []cstar.System{cstar.Copying, cstar.LCMmcc} {
			cfg := s.Cfg
			cfg.P = p
			r := workloads.RunStencil(sys, spec, cfg)
			out = append(out, ScaleResult{p, sys, r.Cycles})
		}
	}
	tb := stats.NewTable(
		fmt.Sprintf("Sweep: Stencil-dyn (%dx%d, %d iters) vs processors",
			spec.N, spec.N, spec.Iters),
		"copying:cycles", "mcc:cycles", "mcc speedup over copying")
	for _, p := range ps {
		var cop, mcc int64
		for _, r := range out {
			if r.P != p {
				continue
			}
			if r.System == cstar.Copying {
				cop = r.Cycles
			} else {
				mcc = r.Cycles
			}
		}
		tb.AddRow(fmt.Sprintf("P=%d", p), map[string]string{
			"copying:cycles":           stats.GroupInt(cop),
			"mcc:cycles":               stats.GroupInt(mcc),
			"mcc speedup over copying": stats.Speedup(cop, mcc) + "x",
		})
	}
	fmt.Fprintln(s.Out, tb.String())
	fmt.Fprintln(s.Out, "  both systems scale; LCM's reconciliation commits in parallel at the homes, so")
	fmt.Fprintln(s.Out, "  it does not become the serialization point the paper's Section 5.1 worries about.")
	fmt.Fprintln(s.Out)
	return out
}

// CacheResult is one cell of the cache-capacity sweep.
type CacheResult struct {
	// Lines is the per-node cache capacity in blocks (0 = unbounded).
	Lines  int
	System cstar.System
	Cycles int64
	Evict  int64
}

// RunCacheSweep runs Stencil-stat with bounded per-node caches.  The paper
// notes that Stache's huge static-partition advantage depends on keeping
// whole chunk interiors resident: "On a machine with a limited cache ...
// the first version's [dynamic] performance is likely to be more typical."
// Shrinking the cache below the working set makes the baseline refetch its
// chunk every iteration, eroding exactly that advantage.
func (s *Suite) RunCacheSweep(lines []int) []CacheResult {
	var out []CacheResult
	spec := s.StencilSpec("static")
	for _, lns := range lines {
		for _, sys := range []cstar.System{cstar.Copying, cstar.LCMmcc} {
			cfg := s.Cfg
			cfg.CacheLines = lns
			r := workloads.RunStencil(sys, spec, cfg)
			out = append(out, CacheResult{lns, sys, r.Cycles, r.C.Evictions})
		}
	}
	tb := stats.NewTable(
		fmt.Sprintf("Sweep: Stencil-stat (%dx%d, %d iters) vs per-node cache capacity",
			spec.N, spec.N, spec.Iters),
		"copying:cycles", "mcc:cycles", "stache advantage", "copying:evict")
	for _, lns := range lines {
		var cop, mcc CacheResult
		for _, r := range out {
			if r.Lines != lns {
				continue
			}
			if r.System == cstar.Copying {
				cop = r
			} else {
				mcc = r
			}
		}
		name := "unbounded"
		if lns > 0 {
			name = fmt.Sprintf("%d blocks", lns)
		}
		tb.AddRow(name, map[string]string{
			"copying:cycles":   stats.GroupInt(cop.Cycles),
			"mcc:cycles":       stats.GroupInt(mcc.Cycles),
			"stache advantage": stats.Speedup(mcc.Cycles, cop.Cycles) + "x",
			"copying:evict":    stats.GroupInt(cop.Evict),
		})
	}
	fmt.Fprintln(s.Out, tb.String())
	fmt.Fprintln(s.Out, "  the baseline's static-partition advantage shrinks as the cache stops holding")
	fmt.Fprintln(s.Out, "  chunk interiors across iterations (paper Section 6.3's caveat).")
	fmt.Fprintln(s.Out)
	return out
}

// CommitResult is one cell of the commit-strategy sweep.
type CommitResult struct {
	P      int
	Serial bool
	Cycles int64
}

// RunCommitSweep contrasts LCM's parallel per-home reconciliation commit
// with a serialized commit at one node, across machine sizes.  Section 5.1
// worries that "reconciliation occurs at the home location of a modified
// block ... [which] poses a potential bottleneck for systems with many
// processors" and then argues it is unlikely to matter; the sweep
// quantifies that argument.
func (s *Suite) RunCommitSweep(ps []int) []CommitResult {
	var out []CommitResult
	spec := s.StencilSpec("static")
	for _, p := range ps {
		for _, serial := range []bool{false, true} {
			cfg := s.Cfg
			cfg.P = p
			mode := core.CommitHomeParallel
			if serial {
				mode = core.CommitSerial
			}
			r := runStencilWithCommitMode(spec, cfg, mode)
			out = append(out, CommitResult{p, serial, r.Cycles})
		}
	}
	tb := stats.NewTable(
		fmt.Sprintf("Sweep: LCM-mcc Stencil-stat (%dx%d, %d iters) commit strategy",
			spec.N, spec.N, spec.Iters),
		"parallel:cycles", "serial:cycles", "serial slowdown")
	for _, p := range ps {
		var par, ser int64
		for _, r := range out {
			if r.P != p {
				continue
			}
			if r.Serial {
				ser = r.Cycles
			} else {
				par = r.Cycles
			}
		}
		tb.AddRow(fmt.Sprintf("P=%d", p), map[string]string{
			"parallel:cycles": stats.GroupInt(par),
			"serial:cycles":   stats.GroupInt(ser),
			"serial slowdown": stats.Speedup(ser, par) + "x",
		})
	}
	fmt.Fprintln(s.Out, tb.String())
	fmt.Fprintln(s.Out, "  even fully serialized, commit work is ~1% of a phase at realistic costs —")
	fmt.Fprintln(s.Out, "  confirming Section 5.1's argument that reconciliation is unlikely to bottleneck")
	fmt.Fprintln(s.Out, "  (few copies per block, flushes spread out); the slowdown appears, and grows")
	fmt.Fprintln(s.Out, "  with P, only when per-block commit work is inflated (see the harness tests).")
	fmt.Fprintln(s.Out)
	return out
}

// runStencilWithCommitMode reimplements just enough of the stencil loop to
// test commit strategies (the workloads package has no commit-mode knob,
// since no real configuration would choose the serial mode).
func runStencilWithCommitMode(spec workloads.StencilSpec, cfg workloads.Config, mode core.CommitMode) workloads.Result {
	m := cstar.NewMachine(cfg.P, bs(cfg), costOf(cfg), cstar.LCMmcc)
	m.Protocol().(*core.LCM).SetCommitMode(mode)
	a := cstar.NewMatrixF32(m, "A", spec.N, spec.N, cstar.DataPolicy(cstar.LCMmcc), memsys.Interleaved)
	m.Freeze()
	for j := 0; j < spec.N; j++ {
		a.Poke(0, j, 100)
	}
	plan := cstar.Lower(cstar.AccessSummary{WritesOwnElementOnly: true, ReadsSharedData: true}, cstar.LCMmcc)
	inner := spec.N - 2
	total := inner * inner
	m.Run(func(n *tempest.Node) {
		for it := 0; it < spec.Iters; it++ {
			cstar.ForEach(n, cstar.StaticSchedule{}, plan, it, total, func(idx int) {
				i := 1 + idx/inner
				j := 1 + idx%inner
				v := (a.Get(n, i-1, j) + a.Get(n, i+1, j) + a.Get(n, i, j-1) + a.Get(n, i, j+1)) * 0.25
				a.Set(n, i, j, v)
				n.Compute(4)
			})
			cstar.EndParallel(n)
		}
	})
	res := workloads.Result{Workload: "Stencil", System: cstar.LCMmcc}
	res.Cycles = m.MaxClock()
	res.C = m.TotalCounters()
	return res
}

// RunSweeps runs the extension sweeps at sizes suited to the suite scale.
func (s *Suite) RunSweeps() {
	s.RunBlockSizeSweep([]uint32{8, 16, 32, 64, 128})
	s.RunProcessorSweep([]int{4, 8, 16, 32})
	// Working set per node at scale: 2 meshes / P plus boundary; sweep
	// around it.
	spec := s.StencilSpec("static")
	per := int(bs(s.Cfg) / 4)
	ws := 2 * spec.N * ((spec.N + per - 1) / per) / s.Cfg.P
	s.RunCacheSweep([]int{0, 2 * ws, ws, ws / 2, ws / 4})
	s.RunCommitSweep([]int{4, 8, 16, 32})
	s.DefaultNetSweep()
}
