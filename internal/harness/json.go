package harness

import (
	"encoding/json"
	"io"
	"time"

	"lcm/internal/cstar"
	"lcm/internal/workloads"
)

// BenchRecord is one (workload, system) cell of a benchmark trajectory
// file: the host wall-clock cost of producing the cell next to the
// simulation observables that must stay invariant while the host cost
// improves.  Tracking both across commits separates "the simulator got
// faster" from "the simulator got different".
type BenchRecord struct {
	Workload string `json:"workload"`
	Sched    string `json:"sched,omitempty"`
	System   string `json:"system"`
	// WallNS is host wall-clock time for the cell, in nanoseconds.
	WallNS int64 `json:"wall_ns"`
	// SimCycles, SimMisses and CleanCopies are simulation results; they
	// must be bit-identical across host-side optimizations.
	SimCycles   int64 `json:"simcycles"`
	SimMisses   int64 `json:"simmisses"`
	CleanCopies int64 `json:"cleancopies"`
	// Verified reports whether the run was checked against the
	// sequential reference (and passed; failed runs never reach here).
	Verified bool `json:"verified,omitempty"`
	// NetMsgs and NetBytes count protocol messages and bytes injected
	// into the interconnect; deterministic for every network model.
	NetMsgs  int64 `json:"net_msgs"`
	NetBytes int64 `json:"net_bytes"`
	// NetQueueCycles and MaxLinkBusy are contention observables; both
	// are zero under the uniform model (which has no links).  Under the
	// deterministic scheduler they are as reproducible as every other
	// observable and are held to the same identity check.
	NetQueueCycles int64 `json:"net_queue_cycles,omitempty"`
	MaxLinkBusy    int64 `json:"max_link_busy,omitempty"`
	// Fault-injection and crash-recovery observables.  All are zero for
	// fault-free runs and omitted from their JSON, so historical BENCH
	// files and benchdiff comparisons are unaffected.
	FaultCorruptions int64 `json:"fault_corruptions,omitempty"`
	FaultTimeouts    int64 `json:"fault_timeouts,omitempty"`
	FaultSpikes      int64 `json:"fault_spikes,omitempty"`
	FaultStalls      int64 `json:"fault_stalls,omitempty"`
	FaultKills       int64 `json:"fault_kills,omitempty"`
	Retransmits      int64 `json:"retransmits,omitempty"`
	DupDelivered     int64 `json:"dup_delivered,omitempty"`
	ReorderHeld      int64 `json:"reorder_held,omitempty"`
	Checkpoints      int64 `json:"checkpoints,omitempty"`
	Restarts         int64 `json:"restarts,omitempty"`
	RehomedRegions   int64 `json:"rehomed_regions,omitempty"`
	RehomedBlocks    int64 `json:"rehomed_blocks,omitempty"`
	RecoveryCycles   int64 `json:"recovery_cycles,omitempty"`
	// Serving-workload observables (the KV cells).  All are zero for
	// the paper's kernels and omitted from their JSON, so historical
	// BENCH files are unaffected; for KV records they are held to the
	// same bit-identity gates as the protocol counters.  KVAnswer is
	// the folded per-shard/per-stream checksum — the workload's final
	// answer as one value.
	KVOps            int64 `json:"kv_ops,omitempty"`
	KVGets           int64 `json:"kv_gets,omitempty"`
	KVPuts           int64 `json:"kv_puts,omitempty"`
	KVReshards       int64 `json:"kv_reshards,omitempty"`
	KVMigratedBlocks int64 `json:"kv_migrated_blocks,omitempty"`
	KVHotShardOps    int64 `json:"kv_hot_shard_ops,omitempty"`
	KVAnswer         int64 `json:"kv_answer,omitempty"`
}

// BenchFile is the on-disk BENCH_*.json shape.
type BenchFile struct {
	Schema string `json:"schema"`
	// UnixNS is the trajectory timestamp (when the campaign finished).
	// It is the only file-level field that varies between two runs of the
	// same configuration; MarshalDeterministic leaves it zero.
	UnixNS int64 `json:"unix_ns"`
	// P and Scale identify the configuration the records belong to.
	P     int `json:"p"`
	Scale int `json:"scale"`
	// Net names the interconnect model the records ran under.
	Net string `json:"net,omitempty"`
	// Scheduler records how node interleaving was resolved: "det" for the
	// deterministic virtual-time scheduler (the default; SchedSeed selects
	// the schedule) or "freerun" for host-scheduled goroutines.  Records
	// from different schedules are not comparable observable-for-
	// observable, so benchdiff refuses to diff across a mismatch.
	Scheduler string `json:"scheduler,omitempty"`
	SchedSeed uint64 `json:"sched_seed,omitempty"`
	// Par records the time-parallel worker count the campaign ran with
	// (0/1 = serial).  It is informational: parallel runs are bit-
	// identical to serial ones, so benchdiff does not treat a Par
	// mismatch as a configuration mismatch — that identity is exactly
	// what the parallel-determinism CI job asserts.
	Par     int           `json:"par,omitempty"`
	Records []BenchRecord `json:"records"`
}

// benchSchema names the record layout; bump when fields change meaning.
const benchSchema = "lcmbench/2"

// benchFile collects benchmark rows into the BENCH_*.json shape with no
// timestamp: every byte of the result is a pure function of the rows and
// configuration.
func benchFile(cfg workloads.Config, scale int, rows []map[cstar.System]workloads.Result) BenchFile {
	bf := BenchFile{
		Schema: benchSchema,
		P:      cfg.P,
		Scale:  scale,
	}
	if cfg.FreeRun {
		bf.Scheduler = "freerun"
	} else {
		bf.Scheduler = "det"
		bf.SchedSeed = cfg.SchedSeed
		if cfg.Par > 1 {
			bf.Par = cfg.Par
		}
	}
	for _, row := range rows {
		for _, sys := range []cstar.System{cstar.Copying, cstar.LCMscc, cstar.LCMmcc} {
			r, ok := row[sys]
			if !ok {
				continue
			}
			bf.Net = r.Net
			bf.Records = append(bf.Records, BenchRecord{
				Workload:       r.Workload,
				Sched:          r.Sched,
				System:         r.System.String(),
				WallNS:         r.Wall.Nanoseconds(),
				SimCycles:      r.Cycles,
				SimMisses:      r.C.Misses,
				CleanCopies:    r.CleanCopies(),
				Verified:       cfg.Verify && r.Err == nil,
				NetMsgs:        r.C.Net.TotalMsgs(),
				NetBytes:       r.C.Net.Bytes,
				NetQueueCycles: r.C.Net.QueueCycles,
				MaxLinkBusy:    r.Links.MaxBusy,

				FaultCorruptions: r.Faults.Corruptions,
				FaultTimeouts:    r.Faults.Timeouts,
				FaultSpikes:      r.Faults.Spikes,
				FaultStalls:      r.Faults.Stalls,
				FaultKills:       r.Faults.Kills,
				Retransmits:      r.C.Net.Retransmits,
				DupDelivered:     r.C.Net.DupDelivered,
				ReorderHeld:      r.C.Net.ReorderHeld,
				Checkpoints:      r.C.Checkpoints,
				Restarts:         r.C.Restarts,
				RehomedRegions:   r.C.Rehomings,
				RehomedBlocks:    r.C.RehomedBlocks,
				RecoveryCycles:   r.C.RecoveryCycles,

				KVOps:            r.KV.Ops,
				KVGets:           r.KV.Gets,
				KVPuts:           r.KV.Puts,
				KVReshards:       r.KV.Reshards,
				KVMigratedBlocks: r.KV.MigratedBlocks,
				KVHotShardOps:    r.KV.HotShardOps,
				KVAnswer:         r.KV.Answer,
			})
		}
	}
	return bf
}

// WriteJSON renders benchmark rows as a BENCH_*.json trajectory file,
// stamped with the current time.
func WriteJSON(w io.Writer, cfg workloads.Config, scale int, rows []map[cstar.System]workloads.Result) error {
	bf := benchFile(cfg, scale, rows)
	bf.UnixNS = time.Now().UnixNano()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(bf)
}

// MarshalDeterministic renders benchmark rows as BENCH_*.json bytes with
// the timestamp left zero and wall-clock times masked, so two runs of the
// same (workload set, P, scale, schedule seed) configuration must produce
// byte-identical output.  The replay tests assert exactly that.
func MarshalDeterministic(cfg workloads.Config, scale int, rows []map[cstar.System]workloads.Result) ([]byte, error) {
	bf := benchFile(cfg, scale, rows)
	bf.Par = 0 // like WallNS, a host-side knob that must not affect bytes
	for i := range bf.Records {
		bf.Records[i].WallNS = 0
	}
	return json.MarshalIndent(bf, "", "  ")
}
