package harness

import (
	"fmt"

	"lcm/internal/cstar"
	"lcm/internal/net"
	"lcm/internal/stats"
	"lcm/internal/workloads"
)

// NetSweepResult is one cell of the interconnect sensitivity sweep.
type NetSweepResult struct {
	// P is the machine size; CyclesPerByte the link serialization rate
	// (higher = less bandwidth).
	P             int
	CyclesPerByte int64
	System        cstar.System
	Cycles        int64
	Msgs          int64
	Bytes         int64
	QueueCycles   int64
	MaxLinkBusy   int64
}

// RunNetworkSweep runs Stencil-dyn over the fat-tree interconnect across
// machine sizes and link bandwidths, for the Copying baseline and
// LCM-mcc.  This is the paper's central claim as a curve: LCM moves
// fewer and cheaper messages, so making the network a contended resource
// (more nodes, slower links) should widen its advantage, where the flat
// uniform model could only ever show a constant gap.
func (s *Suite) RunNetworkSweep(ps []int, cpbs []int64) []NetSweepResult {
	var out []NetSweepResult
	spec := s.StencilSpec("dynamic")
	for _, p := range ps {
		for _, cpb := range cpbs {
			for _, sys := range []cstar.System{cstar.Copying, cstar.LCMmcc} {
				cfg := s.Cfg
				cfg.P = p
				cfg.Net = &net.Config{Model: "fattree", CyclesPerByte: cpb}
				r := workloads.RunStencil(sys, spec, cfg)
				out = append(out, NetSweepResult{
					P: p, CyclesPerByte: cpb, System: sys,
					Cycles: r.Cycles,
					Msgs:   r.C.Net.TotalMsgs(), Bytes: r.C.Net.Bytes,
					QueueCycles: r.C.Net.QueueCycles,
					MaxLinkBusy: r.Links.MaxBusy,
				})
			}
		}
	}
	tb := stats.NewTable(
		fmt.Sprintf("Sweep: Stencil-dyn (%dx%d, %d iters) on the fat-tree interconnect",
			spec.N, spec.N, spec.Iters),
		"copying:cycles", "mcc:cycles", "mcc advantage",
		"copying:msgs", "mcc:msgs", "copying:queue", "mcc:queue")
	for _, p := range ps {
		for _, cpb := range cpbs {
			var cop, mcc NetSweepResult
			for _, r := range out {
				if r.P != p || r.CyclesPerByte != cpb {
					continue
				}
				if r.System == cstar.Copying {
					cop = r
				} else {
					mcc = r
				}
			}
			tb.AddRow(fmt.Sprintf("P=%d cpb=%d", p, cpb), map[string]string{
				"copying:cycles": stats.GroupInt(cop.Cycles),
				"mcc:cycles":     stats.GroupInt(mcc.Cycles),
				"mcc advantage":  stats.Speedup(cop.Cycles, mcc.Cycles) + "x",
				"copying:msgs":   stats.GroupInt(cop.Msgs),
				"mcc:msgs":       stats.GroupInt(mcc.Msgs),
				"copying:queue":  stats.GroupInt(cop.QueueCycles),
				"mcc:queue":      stats.GroupInt(mcc.QueueCycles),
			})
		}
	}
	fmt.Fprintln(s.Out, tb.String())
	fmt.Fprintln(s.Out, "  with an explicit network, the baseline's larger message count turns into")
	fmt.Fprintln(s.Out, "  queueing: LCM's advantage widens as links slow down or the machine grows")
	fmt.Fprintln(s.Out, "  (the uniform model charged both systems the same flat per-message price).")
	fmt.Fprintln(s.Out)
	return out
}

// RunKVNetworkSweep runs the read-mostly KV serving cell over the
// fat-tree interconnect across machine sizes and link bandwidths, for
// the Copying baseline and LCM-mcc.  Serving traffic stresses the
// network differently from the paper's kernels: Zipf skew concentrates
// block ownership on hot shards, and each reshard epoch moves whole
// shards between owners in a burst, so this sweep covers bursty
// ownership migration where Stencil-dyn covers steady neighbor
// exchange.
func (s *Suite) RunKVNetworkSweep(ps []int, cpbs []int64) []NetSweepResult {
	var out []NetSweepResult
	spec := s.KVSpec("read")
	for _, p := range ps {
		for _, cpb := range cpbs {
			for _, sys := range []cstar.System{cstar.Copying, cstar.LCMmcc} {
				cfg := s.Cfg
				cfg.P = p
				cfg.Net = &net.Config{Model: "fattree", CyclesPerByte: cpb}
				r := workloads.RunKV(sys, spec, cfg)
				out = append(out, NetSweepResult{
					P: p, CyclesPerByte: cpb, System: sys,
					Cycles: r.Cycles,
					Msgs:   r.C.Net.TotalMsgs(), Bytes: r.C.Net.Bytes,
					QueueCycles: r.C.Net.QueueCycles,
					MaxLinkBusy: r.Links.MaxBusy,
				})
			}
		}
	}
	tb := stats.NewTable(
		fmt.Sprintf("Sweep: KV-read (%d keys, %d shards, skew %.2f) on the fat-tree interconnect",
			spec.Keys, spec.Shards, spec.Skew),
		"copying:cycles", "mcc:cycles", "mcc advantage",
		"copying:msgs", "mcc:msgs", "copying:queue", "mcc:queue")
	for _, p := range ps {
		for _, cpb := range cpbs {
			var cop, mcc NetSweepResult
			for _, r := range out {
				if r.P != p || r.CyclesPerByte != cpb {
					continue
				}
				if r.System == cstar.Copying {
					cop = r
				} else {
					mcc = r
				}
			}
			tb.AddRow(fmt.Sprintf("P=%d cpb=%d", p, cpb), map[string]string{
				"copying:cycles": stats.GroupInt(cop.Cycles),
				"mcc:cycles":     stats.GroupInt(mcc.Cycles),
				"mcc advantage":  stats.Speedup(cop.Cycles, mcc.Cycles) + "x",
				"copying:msgs":   stats.GroupInt(cop.Msgs),
				"mcc:msgs":       stats.GroupInt(mcc.Msgs),
				"copying:queue":  stats.GroupInt(cop.QueueCycles),
				"mcc:queue":      stats.GroupInt(mcc.QueueCycles),
			})
		}
	}
	fmt.Fprintln(s.Out, tb.String())
	fmt.Fprintln(s.Out, "  serving traffic adds reshard bursts: every migration epoch moves whole")
	fmt.Fprintln(s.Out, "  shards to new owners at a barrier, and the Zipf-hot shards keep a few")
	fmt.Fprintln(s.Out, "  links busy while the rest idle — watch mcc:queue vs copying:queue.")
	fmt.Fprintln(s.Out)
	return out
}

// DefaultNetSweep runs the network sweeps at sizes suited to the scale:
// Stencil-dyn for steady neighbor exchange, then KV-read for bursty
// ownership migration.
func (s *Suite) DefaultNetSweep() []NetSweepResult {
	out := s.RunNetworkSweep([]int{8, 16, 32}, []int64{2, 8, 32})
	out = append(out, s.RunKVNetworkSweep([]int{8, 16, 32}, []int64{2, 8, 32})...)
	return out
}
