// Chaos campaign: every workload under every memory system runs under
// seeded fault-injection plans, and recovery must be invisible — the final
// answer bit-identical to the fault-free run, the protocol invariants
// intact, and the machine's recovery counters exactly matching the faults
// the injector reports having injected.  A separate scenario injects an
// unrecoverable node failure and requires a structured error with a
// diagnostic dump inside a bounded wall-clock time.
package harness

import (
	"errors"
	"fmt"
	"time"

	"lcm/internal/cstar"
	"lcm/internal/fault"
	"lcm/internal/tempest"
	"lcm/internal/workloads"
)

// ChaosPlan is one named fault-injection campaign.
type ChaosPlan struct {
	Name string
	Plan fault.Plan
}

// DefaultChaosPlans returns the standard campaign: a light plan with rare
// faults of every recoverable kind, and a heavy plan aggressive enough
// that essentially every run retries many transfers and requests.
func DefaultChaosPlans() []ChaosPlan {
	return []ChaosPlan{
		{Name: "light", Plan: fault.Plan{
			Seed:            0x1c3a05_0001,
			CorruptPerMil:   5,
			TransientPerMil: 5,
			SpikePerMil:     3, SpikeCycles: 2000,
			StallPerMil: 2, StallCycles: 5000,
		}},
		{Name: "heavy", Plan: fault.Plan{
			Seed:            0x1c3a05_0002,
			CorruptPerMil:   60,
			TransientPerMil: 60,
			SpikePerMil:     30, SpikeCycles: 4000,
			StallPerMil: 15, StallCycles: 10000,
		}},
	}
}

// chaosCase is one workload entry of the chaos matrix.
type chaosCase struct {
	name string
	run  func(sys cstar.System, cfg workloads.Config) workloads.Result
}

func (s *Suite) chaosCases() []chaosCase {
	return []chaosCase{
		{"Stencil", func(sys cstar.System, cfg workloads.Config) workloads.Result {
			return workloads.RunStencil(sys, s.StencilSpec("static"), cfg)
		}},
		{"Adaptive", func(sys cstar.System, cfg workloads.Config) workloads.Result {
			return workloads.RunAdaptive(sys, s.AdaptiveSpec("static"), cfg)
		}},
		{"Threshold", func(sys cstar.System, cfg workloads.Config) workloads.Result {
			return workloads.RunThreshold(sys, s.ThresholdSpec(), cfg)
		}},
		{"Unstructured", func(sys cstar.System, cfg workloads.Config) workloads.Result {
			return workloads.RunUnstructured(sys, s.UnstructuredSpec(), cfg)
		}},
	}
}

// RunChaos runs the full chaos matrix — every workload x every memory
// system x every plan — plus the unrecoverable-failure scenario, printing
// one line per combination and returning the joined failures (nil when
// every assertion held).
func (s *Suite) RunChaos(plans []ChaosPlan) error {
	cfg := s.Cfg
	cfg.Verify = true // bit-exact check against the sequential reference
	var failures []error
	fmt.Fprintf(s.Out, "chaos campaign (P=%d, scale 1/%d, %d plans)...\n", cfg.P, s.Scale, len(plans))
	for _, c := range s.chaosCases() {
		for _, sys := range systems {
			base := c.run(sys, cfg)
			if base.Err != nil {
				failures = append(failures, fmt.Errorf("%s/%v: fault-free baseline failed: %w", c.name, sys, base.Err))
				continue
			}
			for _, p := range plans {
				fc := cfg
				plan := p.Plan
				fc.Faults = &plan
				res := c.run(sys, fc)
				err := checkChaos(base, res)
				status := "ok"
				if err != nil {
					status = "FAIL: " + err.Error()
					failures = append(failures, fmt.Errorf("%s/%v/%s: %w", c.name, sys, p.Name, err))
				}
				fmt.Fprintf(s.Out, "  %-12s %-8v %-6s injected[%s] %s\n", c.name, sys, p.Name, res.Faults, status)
			}
		}
	}
	if err := s.chaosKill(); err != nil {
		failures = append(failures, err)
	} else {
		fmt.Fprintf(s.Out, "  kill scenario: structured failure with diagnostics within bound: ok\n")
	}
	return errors.Join(failures...)
}

// checkChaos asserts one chaos run against its fault-free baseline:
// recovery succeeded, the answer and the access-stream counters are
// identical to the baseline's, and the recovery counters account for
// every injected fault exactly.
func checkChaos(base, res workloads.Result) error {
	if res.Err != nil {
		return fmt.Errorf("run failed under faults: %w", res.Err)
	}
	if res.Faults.Total() == 0 {
		return fmt.Errorf("plan injected no faults; campaign proves nothing")
	}
	// The access stream must be untouched by recovery: data-carrying
	// protocol activity matches the fault-free run event for event.
	checks := []struct {
		name      string
		base, got int64
	}{
		{"Hits", base.C.Hits, res.C.Hits},
		{"Misses", base.C.Misses, res.C.Misses},
		{"Flushes", base.C.Flushes, res.C.Flushes},
		{"WordsFlushed", base.C.WordsFlushed, res.C.WordsFlushed},
		{"Marks", base.C.Marks, res.C.Marks},
		{"Barriers", base.C.Barriers, res.C.Barriers},
		// Recovery counters must match the injector's own record of
		// what it injected, one for one.
		{"CorruptedTransfers==Corruptions", res.Faults.Corruptions, res.C.CorruptedTransfers},
		{"TransientTimeouts==Timeouts", res.Faults.Timeouts, res.C.TransientTimeouts},
		{"OccupancySpikes==Spikes", res.Faults.Spikes, res.C.OccupancySpikes},
		{"Stalls==Stalls", res.Faults.Stalls, res.C.Stalls},
	}
	for _, c := range checks {
		if c.base != c.got {
			return fmt.Errorf("%s: want %d, got %d", c.name, c.base, c.got)
		}
	}
	if res.C.FaultRetries < res.Faults.Corruptions+res.Faults.Timeouts {
		return fmt.Errorf("FaultRetries %d < injected corruptions+timeouts %d",
			res.C.FaultRetries, res.Faults.Corruptions+res.Faults.Timeouts)
	}
	return nil
}

// chaosKill injects an unrecoverable node failure and requires the run to
// terminate with a structured per-node error and a diagnostic dump within
// a bounded wall-clock time.
func (s *Suite) chaosKill() error {
	cfg := s.Cfg
	cfg.Verify = false
	plan := fault.Plan{Seed: 0x1c3a05_0003, KillNode: 1, KillAfter: 3}
	cfg.Faults = &plan
	cfg.Watchdog = 2 * time.Second
	const bound = 30 * time.Second
	start := time.Now()
	res := workloads.RunStencil(cstar.LCMscc, s.StencilSpec("static"), cfg)
	elapsed := time.Since(start)
	if elapsed > bound {
		return fmt.Errorf("chaos kill: run took %v, bound %v", elapsed, bound)
	}
	if res.Err == nil {
		return fmt.Errorf("chaos kill: injected node failure but run succeeded")
	}
	if !errors.Is(res.Err, fault.ErrKilled) {
		return fmt.Errorf("chaos kill: error does not match fault.ErrKilled: %v", res.Err)
	}
	var re *tempest.RunError
	if !errors.As(res.Err, &re) {
		return fmt.Errorf("chaos kill: error is not a *tempest.RunError: %v", res.Err)
	}
	first := re.First()
	if first == nil || first.Node != plan.KillNode {
		return fmt.Errorf("chaos kill: primary failure not on node %d: %v", plan.KillNode, res.Err)
	}
	if re.Diagnostics == "" {
		return fmt.Errorf("chaos kill: no diagnostic dump attached")
	}
	return nil
}
