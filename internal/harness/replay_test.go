package harness

import (
	"bytes"
	"testing"

	"lcm/internal/cstar"
	"lcm/internal/workloads"
)

// Replay tests: running the same (workload, P, schedule seed) twice must
// produce byte-identical trajectory JSON — simulated cycles, Copying
// fault counts, and network counters included.  This is the end-to-end
// statement of the deterministic scheduler's contract, one level above
// the per-field assertions in internal/workloads: if any observable
// anywhere in a record drifts between runs, the marshalled bytes differ.
//
// Stencil-dynamic and Adaptive-dynamic are the adversarial picks: both
// use the rotating schedule, so block ownership migrates across phases
// and the Copying baseline invalidates mid-phase, which was the classic
// source of run-to-run wobble before internal/sched.

func replayRows(t *testing.T, cfg workloads.Config) []map[cstar.System]workloads.Result {
	t.Helper()
	runs := []func(sys cstar.System) workloads.Result{
		func(sys cstar.System) workloads.Result {
			return workloads.RunStencil(sys, workloads.StencilSpec{N: 64, Iters: 4, Sched: "dynamic"}, cfg)
		},
		func(sys cstar.System) workloads.Result {
			return workloads.RunAdaptive(sys, workloads.AdaptiveSpec{N: 16, MaxDepth: 3, Iters: 8,
				Sched: "dynamic", Electrodes: 3, SubdivThreshold: 4}, cfg)
		},
	}
	rows := make([]map[cstar.System]workloads.Result, 0, len(runs))
	for _, run := range runs {
		row := map[cstar.System]workloads.Result{}
		for _, sys := range []cstar.System{cstar.Copying, cstar.LCMscc, cstar.LCMmcc} {
			r := run(sys)
			if r.Err != nil {
				t.Fatalf("%s/%v (seed %d): run failed: %v", r.Workload, sys, cfg.SchedSeed, r.Err)
			}
			row[sys] = r
		}
		rows = append(rows, row)
	}
	return rows
}

// TestReplayByteIdenticalJSON runs Stencil-dynamic and Adaptive-dynamic
// at P=8 twice per schedule seed and asserts the deterministic JSON
// renderings are byte-identical.
func TestReplayByteIdenticalJSON(t *testing.T) {
	for _, seed := range []uint64{0, 1, 0xdeadbeef} {
		cfg := workloads.Config{P: 8, Verify: true, SchedSeed: seed}
		first, err := MarshalDeterministic(cfg, 16, replayRows(t, cfg))
		if err != nil {
			t.Fatalf("seed %d: marshal: %v", seed, err)
		}
		second, err := MarshalDeterministic(cfg, 16, replayRows(t, cfg))
		if err != nil {
			t.Fatalf("seed %d: marshal: %v", seed, err)
		}
		if !bytes.Equal(first, second) {
			t.Errorf("seed %d: replay JSON differs between two runs:\n--- first ---\n%s\n--- second ---\n%s",
				seed, first, second)
		}
	}
}
