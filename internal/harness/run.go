package harness

import (
	"fmt"
	"strings"
	"time"

	"lcm/internal/cstar"
	"lcm/internal/workloads"
)

// This file is the library face of the harness: grid cells are named
// values that callers (cmd/lcmbench, internal/serve) select, run and
// observe through a progress callback, instead of the harness owning the
// whole campaign and its output files.  The rendered tables still go to
// Suite.Out; the raw results come back to the caller.

// CellSpec names one grid cell: a workload plus, where the workload has
// one, a schedule knob.
type CellSpec struct {
	// Workload is "Stencil", "Adaptive", "Threshold", "Unstructured" or
	// "KV".
	Workload string
	// Sched is "static" or "dynamic" for Stencil and Adaptive, the
	// request mix ("read" or "write") for KV, and empty for the
	// workloads without a knob.
	Sched string
}

// Label renders the canonical cell name ("Stencil-static", "Threshold").
func (c CellSpec) Label() string {
	if c.Sched == "" {
		return c.Workload
	}
	return c.Workload + "-" + c.Sched
}

// GridCells returns the six Table-1 / Figure-2 / Figure-3 cells in their
// canonical (paper) order.
func GridCells() []CellSpec {
	return []CellSpec{
		{"Stencil", "static"},
		{"Stencil", "dynamic"},
		{"Adaptive", "static"},
		{"Adaptive", "dynamic"},
		{"Threshold", ""},
		{"Unstructured", ""},
	}
}

// KVCells returns the serving-traffic cells: the sharded KV workload
// under its read-mostly and write-heavy mixes.  They are selectable by
// name (-cells, lcmd Cells) and deliberately not part of GridCells, so
// the Table-1 campaigns — and the committed BENCH_seed.json trajectory
// they are gated against — keep their historical shape.
func KVCells() []CellSpec {
	return []CellSpec{
		{"KV", "read"},
		{"KV", "write"},
	}
}

// AllCells returns every selectable cell: the Table-1 grid followed by
// the serving-traffic cells.
func AllCells() []CellSpec {
	return append(GridCells(), KVCells()...)
}

// UnknownCellError reports a cell name that resolves to no selectable
// cell, carrying the offending name and the known cell names so callers
// can render a structured diagnostic (and tests can assert on more than
// message text).
type UnknownCellError struct {
	// Name is the unresolvable input, as given.
	Name string
	// Known lists every valid cell label in canonical order.
	Known []string
}

func (e *UnknownCellError) Error() string {
	return fmt.Sprintf("unknown grid cell %q (want one of %s)", e.Name, strings.Join(e.Known, ", "))
}

// ParseCell resolves a cell name to its spec.  Both the full schedule
// names ("Stencil-static") and the table abbreviations ("Stencil-stat")
// are accepted; matching is case-insensitive.  An unresolvable name —
// including an empty segment from a stray comma — is an *UnknownCellError.
func ParseCell(name string) (CellSpec, error) {
	want := strings.ToLower(strings.TrimSpace(name))
	for _, c := range AllCells() {
		if strings.ToLower(c.Label()) == want {
			return c, nil
		}
		// The paper's tables abbreviate the schedule ("Stencil-stat").
		abbrev := map[string]string{"static": "stat", "dynamic": "dyn"}[c.Sched]
		if abbrev != "" && strings.ToLower(c.Workload+"-"+abbrev) == want {
			return c, nil
		}
	}
	return CellSpec{}, &UnknownCellError{Name: name, Known: CellNames()}
}

// CellNames returns the labels of every selectable cell in canonical
// order.
func CellNames() []string {
	var names []string
	for _, c := range AllCells() {
		names = append(names, c.Label())
	}
	return names
}

// Progress is one cell-completion notification delivered to
// Suite.OnProgress: the (cell, system) run that just finished and the
// campaign position.  SimCycles is the run's simulated execution time;
// Wall its host cost.  Err reports a failed run (the campaign continues;
// the caller decides whether failures are fatal).
type Progress struct {
	Cell   string
	System string
	Done   int
	Total  int

	SimCycles int64
	SimMisses int64
	Wall      time.Duration
	Err       error
}

// runner returns the function executing one cell under one system, or an
// error for an unknown cell.
func (s *Suite) runner(c CellSpec) (func(sys cstar.System) workloads.Result, error) {
	switch c.Workload {
	case "Stencil":
		if c.Sched != "static" && c.Sched != "dynamic" {
			return nil, fmt.Errorf("cell %s: Stencil needs a static or dynamic schedule", c.Label())
		}
		return func(sys cstar.System) workloads.Result {
			return workloads.RunStencil(sys, s.StencilSpec(c.Sched), s.Cfg)
		}, nil
	case "Adaptive":
		if c.Sched != "static" && c.Sched != "dynamic" {
			return nil, fmt.Errorf("cell %s: Adaptive needs a static or dynamic schedule", c.Label())
		}
		return func(sys cstar.System) workloads.Result {
			return workloads.RunAdaptive(sys, s.AdaptiveSpec(c.Sched), s.Cfg)
		}, nil
	case "Threshold":
		if c.Sched != "" {
			return nil, fmt.Errorf("cell %s: Threshold has no schedule variants", c.Label())
		}
		return func(sys cstar.System) workloads.Result {
			return workloads.RunThreshold(sys, s.ThresholdSpec(), s.Cfg)
		}, nil
	case "Unstructured":
		if c.Sched != "" {
			return nil, fmt.Errorf("cell %s: Unstructured has no schedule variants", c.Label())
		}
		return func(sys cstar.System) workloads.Result {
			return workloads.RunUnstructured(sys, s.UnstructuredSpec(), s.Cfg)
		}, nil
	case "KV":
		if c.Sched != "read" && c.Sched != "write" {
			return nil, fmt.Errorf("cell %s: KV needs a read or write mix", c.Label())
		}
		return func(sys cstar.System) workloads.Result {
			return workloads.RunKV(sys, s.KVSpec(c.Sched), s.Cfg)
		}, nil
	}
	return nil, fmt.Errorf("unknown workload %q in cell %s", c.Workload, c.Label())
}

// RunCells runs the given grid cells under all three memory systems,
// invoking Suite.OnProgress (when set) after every completed (cell,
// system) run.  The result slice is ordered like cells; each element maps
// system to its measurements, exactly as the whole-grid campaign produces
// them.  An unknown cell is an error before anything runs.
func (s *Suite) RunCells(cells []CellSpec) ([]map[cstar.System]workloads.Result, error) {
	runs := make([]func(sys cstar.System) workloads.Result, len(cells))
	for i, c := range cells {
		run, err := s.runner(c)
		if err != nil {
			return nil, err
		}
		runs[i] = run
	}
	total := len(cells) * len(systems)
	done := 0
	rows := make([]map[cstar.System]workloads.Result, len(cells))
	for i := range cells {
		rows[i] = s.runRow(cells[i].Label(), &done, total, runs[i])
	}
	return rows, nil
}
