package harness

import (
	"fmt"
	"io"

	"lcm/internal/cstar"
	"lcm/internal/workloads"
)

// WriteCSV renders benchmark results as CSV for external plotting: one row
// per (workload, system) cell with the headline metrics.
func WriteCSV(w io.Writer, rows []map[cstar.System]workloads.Result) error {
	if _, err := fmt.Fprintln(w, "workload,system,sched,cycles,misses,remote_misses,local_fills,upgrades,flushes,marks,copied_words,clean_copies,reconciles,write_conflicts,net,net_msgs,net_bytes,net_queue_cycles,max_link_busy,fault_corruptions,fault_timeouts,fault_spikes,fault_stalls,fault_kills,retransmits,dup_delivered,reorder_held,checkpoints,restarts,rehomed_regions,rehomed_blocks,recovery_cycles,kv_ops,kv_gets,kv_puts,kv_reshards,kv_migrated_blocks,kv_hot_shard_ops,kv_answer"); err != nil {
		return err
	}
	for _, row := range rows {
		for _, sys := range []cstar.System{cstar.Copying, cstar.LCMscc, cstar.LCMmcc} {
			r, ok := row[sys]
			if !ok {
				continue
			}
			if _, err := fmt.Fprintf(w, "%s,%s,%s,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%s,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d\n",
				r.Workload, r.System, r.Sched, r.Cycles,
				r.C.Misses, r.C.RemoteMisses, r.C.LocalFills, r.C.Upgrades,
				r.C.Flushes, r.C.Marks, r.C.CopiedWords,
				r.CleanCopies(), r.S.Reconciles, r.S.WriteConflicts,
				r.Net, r.C.Net.TotalMsgs(), r.C.Net.Bytes,
				r.C.Net.QueueCycles, r.Links.MaxBusy,
				r.Faults.Corruptions, r.Faults.Timeouts, r.Faults.Spikes,
				r.Faults.Stalls, r.Faults.Kills,
				r.C.Net.Retransmits, r.C.Net.DupDelivered, r.C.Net.ReorderHeld,
				r.C.Checkpoints, r.C.Restarts, r.C.Rehomings, r.C.RehomedBlocks,
				r.C.RecoveryCycles,
				r.KV.Ops, r.KV.Gets, r.KV.Puts, r.KV.Reshards,
				r.KV.MigratedBlocks, r.KV.HotShardOps, r.KV.Answer); err != nil {
				return err
			}
		}
	}
	return nil
}
