package harness

import (
	"bytes"
	"strings"
	"testing"

	"lcm/internal/workloads"
)

// TestRecoveryMatrix runs the crash-recovery matrix at reduced scale:
// every workload x memory system under the default kill/drop/duplicate
// plans with two seeds.  RunRecovery itself asserts answer identity
// against the fault-free oracle, bit-identical replay, and exact
// recovery accounting; the test only requires that no assertion failed.
func TestRecoveryMatrix(t *testing.T) {
	for _, p := range []int{1, 4, 8} {
		if testing.Short() && p != 4 {
			continue
		}
		var buf bytes.Buffer
		s := New(&buf)
		s.Cfg = workloads.Config{P: p}
		s.Scale = 16
		if err := s.RunRecovery(DefaultRecoveryPlans(), []uint64{1, 2}); err != nil {
			t.Fatalf("P=%d recovery matrix failed:\n%v\n\noutput:\n%s", p, err, buf.String())
		}
		out := buf.String()
		for _, want := range []string{"Stencil", "Adaptive", "Threshold", "Unstructured",
			"kill-at-barrier", "kill-mid-epoch", "kill-rehome", "drop-1pct", "dup-storm"} {
			if !strings.Contains(out, want) {
				t.Fatalf("P=%d recovery output missing %q:\n%s", p, want, out)
			}
		}
		if strings.Contains(out, "FAIL") {
			t.Fatalf("P=%d recovery output reports failure:\n%s", p, out)
		}
	}
}
