package harness

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"lcm/internal/workloads"
)

// Serving-cell tests: the KV cells are selectable by name alongside the
// Table-1 grid, their observables flow into the trajectory JSON and CSV,
// and an unresolvable cell name is a structured *UnknownCellError.

func TestParseCellKV(t *testing.T) {
	for _, name := range []string{"KV-read", "kv-write", " KV-read "} {
		c, err := ParseCell(name)
		if err != nil {
			t.Fatalf("ParseCell(%q): %v", name, err)
		}
		if c.Workload != "KV" {
			t.Fatalf("ParseCell(%q) = %+v, want workload KV", name, c)
		}
	}
}

func TestParseCellUnknownIsStructured(t *testing.T) {
	for _, name := range []string{"KV", "KV-mixed", "Stencil-", "", "nope"} {
		_, err := ParseCell(name)
		if err == nil {
			t.Fatalf("ParseCell(%q) succeeded, want error", name)
		}
		var uce *UnknownCellError
		if !errors.As(err, &uce) {
			t.Fatalf("ParseCell(%q) error %T, want *UnknownCellError", name, err)
		}
		if uce.Name != name {
			t.Fatalf("ParseCell(%q): error names %q", name, uce.Name)
		}
		if len(uce.Known) != len(AllCells()) {
			t.Fatalf("ParseCell(%q): %d known cells, want %d", name, len(uce.Known), len(AllCells()))
		}
		if !strings.Contains(err.Error(), "KV-read") || !strings.Contains(err.Error(), "Stencil-static") {
			t.Fatalf("ParseCell(%q): diagnostic missing cell names: %v", name, err)
		}
	}
}

func TestAllCellsShape(t *testing.T) {
	if got := len(GridCells()); got != 6 {
		t.Fatalf("GridCells() = %d cells, want the historical 6", got)
	}
	if got := len(AllCells()); got != 8 {
		t.Fatalf("AllCells() = %d cells, want 8", got)
	}
	names := CellNames()
	if names[len(names)-2] != "KV-read" || names[len(names)-1] != "KV-write" {
		t.Fatalf("CellNames() tail = %v, want KV cells last", names[len(names)-2:])
	}
}

func TestKVSpecOverrides(t *testing.T) {
	s := New(&bytes.Buffer{})
	if sp := s.KVSpec("read"); sp.Skew != 0.99 || sp.ReshardEvery != 4 {
		t.Fatalf("default KV spec %+v", sp)
	}
	s.KVSkew = 1.2
	s.KVReshard = -1
	if sp := s.KVSpec("write"); sp.Skew != 1.2 || sp.ReshardEvery != -1 {
		t.Fatalf("overridden KV spec %+v", sp)
	}
	s.Scale = 1000
	if sp := s.KVSpec("read"); sp.Keys < sp.Shards*32 || sp.OpsPerStream < 32 || sp.Phases < 3 {
		t.Fatalf("scale floor violated: %+v", sp)
	}
}

// TestKVCellsEndToEnd runs both KV cells through the harness at reduced
// scale and asserts the serving observables land in the trajectory JSON
// and the CSV rows, verified against the sequential reference.
func TestKVCellsEndToEnd(t *testing.T) {
	var buf bytes.Buffer
	s := smallSuite(&buf)
	rows, err := s.RunCells(KVCells())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	for _, row := range rows {
		for sys, r := range row {
			if r.Err != nil {
				t.Fatalf("%s/%v failed verification: %v", r.Label(), sys, r.Err)
			}
			if r.KV.Ops <= 0 || r.KV.Answer == 0 {
				t.Fatalf("%s/%v: empty KV stats %+v", r.Label(), sys, r.KV)
			}
		}
	}

	bf := benchFile(s.Cfg, s.Scale, rows)
	if len(bf.Records) != 6 {
		t.Fatalf("records = %d, want 6", len(bf.Records))
	}
	for _, rec := range bf.Records {
		if rec.Workload != "KV" {
			t.Fatalf("record workload %q", rec.Workload)
		}
		if rec.KVOps <= 0 || rec.KVGets <= 0 || rec.KVPuts <= 0 || rec.KVAnswer == 0 {
			t.Fatalf("record missing KV observables: %+v", rec)
		}
		if !rec.Verified {
			t.Fatalf("record not verified: %+v", rec)
		}
	}

	var csv bytes.Buffer
	if err := WriteCSV(&csv, rows); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 1+6 {
		t.Fatalf("csv has %d lines, want %d", len(lines), 1+6)
	}
	if !strings.Contains(lines[0], "kv_ops") || !strings.HasSuffix(lines[0], "kv_answer") {
		t.Fatalf("csv header missing KV columns: %q", lines[0])
	}
	for _, l := range lines[1:] {
		if strings.Count(l, ",") != strings.Count(lines[0], ",") {
			t.Fatalf("ragged row %q", l)
		}
	}
}

// TestKVReplayByteIdenticalJSON is the KV cells' version of the replay
// contract: two runs of the same tuple render byte-identical
// deterministic trajectory JSON, per schedule seed, including a
// serial-vs-time-parallel pairing (Par is masked from the bytes).
func TestKVReplayByteIdenticalJSON(t *testing.T) {
	run := func(cfg workloads.Config) []byte {
		t.Helper()
		s := New(&bytes.Buffer{})
		s.Cfg = cfg
		s.Scale = 16
		rows, err := s.RunCells(KVCells())
		if err != nil {
			t.Fatal(err)
		}
		for _, row := range rows {
			for sys, r := range row {
				if r.Err != nil {
					t.Fatalf("%s/%v (seed %d): %v", r.Label(), sys, cfg.SchedSeed, r.Err)
				}
			}
		}
		b, err := MarshalDeterministic(cfg, s.Scale, rows)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	for _, seed := range []uint64{0, 0xdeadbeef} {
		cfg := workloads.Config{P: 8, Verify: true, SchedSeed: seed}
		first := run(cfg)
		second := run(cfg)
		if !bytes.Equal(first, second) {
			t.Errorf("seed %d: KV replay JSON differs between two runs", seed)
		}
		parCfg := cfg
		parCfg.Par = 4
		par := run(parCfg)
		if !bytes.Equal(first, par) {
			t.Errorf("seed %d: KV serial and -par trajectory JSON differ", seed)
		}
	}
}

// TestKVSkewChangesBytes pins that the skew knob is part of the
// deterministic tuple: a different -kvskew must change the trajectory
// bytes (else the lcmd cache could serve the wrong result).
func TestKVSkewChangesBytes(t *testing.T) {
	run := func(skew float64) []byte {
		t.Helper()
		s := New(&bytes.Buffer{})
		s.Cfg = workloads.Config{P: 8, SchedSeed: 0}
		s.Scale = 16
		s.KVSkew = skew
		rows, err := s.RunCells([]CellSpec{{Workload: "KV", Sched: "read"}})
		if err != nil {
			t.Fatal(err)
		}
		b, err := MarshalDeterministic(s.Cfg, s.Scale, rows)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	if bytes.Equal(run(0.4), run(1.4)) {
		t.Fatal("different KV skews produced identical trajectory bytes")
	}
}
