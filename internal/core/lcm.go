// Package core implements the paper's contribution: the Reconcilable
// Shared Memory (RSM) model and its Loosely Coherent Memory (LCM)
// instance.
//
// RSM generalizes cache-coherent shared memory by placing two points of a
// coherence protocol under program control (Section 3):
//
//  1. the action taken when a processor requests a copy of a block
//     (the request policy), and
//  2. the way multiple outstanding copies of a block are brought back into
//     agreement (the reconciliation function).
//
// Unlike conventional shared memory, RSM places no restriction on multiple
// outstanding writable copies.  LCM exploits that freedom to implement
// C**'s "atomic and simultaneous" parallel-function semantics: a write to
// shared data creates a private copy of the containing block
// (copy-on-write after MarkModification), memory becomes intentionally
// inconsistent for the duration of the parallel call, and a global
// ReconcileCopies merges all private modifications back into a single
// coherent state using the region's reconciliation function.
//
// Two variants are implemented, matching the paper's measurements:
//
//   - LCM-scc keeps a single clean copy of each marked block at the
//     block's home; after a FlushCopies the flushing node's copy is
//     invalidated, so reuse re-fetches from home.
//   - LCM-mcc additionally keeps a clean copy on every processor that
//     marks the block; FlushCopies reverts the cached copy to the local
//     clean copy, so spatial/temporal reuse between invocations hits.
//
// Accesses to regions of kind memsys.KindCoherent fall through to an
// embedded Stache protocol, so a single machine mixes loosely coherent and
// sequentially consistent data exactly as the C** compiler requires.
package core

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"

	"lcm/internal/memsys"
	"lcm/internal/nodeset"
	"lcm/internal/stache"
	"lcm/internal/tempest"
	"lcm/internal/trace"
)

// Variant selects the clean-copy placement policy.
type Variant uint8

const (
	// SCC: single clean copy, kept at the block's home node.
	SCC Variant = iota
	// MCC: multiple clean copies, one at every processor that marks the
	// block, in addition to the home's.
	MCC
)

func (v Variant) String() string {
	if v == MCC {
		return "lcm-mcc"
	}
	return "lcm-scc"
}

// entry is the home-side LCM directory record for one block.  Guarded by
// the block's lock; the phase fields are lazily reset when gen is stale.
type entry struct {
	// sharers is the set of nodes currently holding read-only copies.
	// It persists across phases (unmodified blocks keep their copies).
	sharers nodeset.Set

	// gen is the reconcile phase for which the fields below are valid.
	gen uint32

	// readers is the set of nodes that faulted a read this phase
	// (tracked only for conflict-checked regions).
	readers nodeset.Set
	// writers is the set of nodes that returned modified elements.
	writers nodeset.Set
	// written is the per-element modified bitmask (elements, not nodes:
	// a block holds at most 64 four-byte words, so this stays a word).
	written uint64

	// pending is the merge image for the phase; hasPending records
	// whether it is live (the buffer itself is reused across phases).
	// While live, pending doubles as the home's "clean copy" ledger
	// entry: its creation is the clean-copy event of Table 1.
	pending    []byte
	hasPending bool
	registered bool
}

// nodeState is the per-node LCM state: the blocks marked since the last
// flush.  Stored in tempest.Node.PD.
type nodeState struct {
	marked []memsys.BlockID
}

// dirtyRef is one entry of a home's dirty (registered-for-commit) list:
// the block plus the registering segment's grant key.  Time-parallel
// segments may register out of serial order; commitLists stably sorts by
// key, so commit — and with it every network charge it makes — replays
// the serial order exactly.
type dirtyRef struct {
	b   memsys.BlockID
	key uint64
}

// ConflictKind distinguishes the two semantic violations LCM can detect.
type ConflictKind uint8

const (
	// WriteWrite: two processors wrote different values to one element.
	WriteWrite ConflictKind = iota
	// ReadWrite: readable and written copies of a block were
	// simultaneously outstanding in one phase.
	ReadWrite
)

func (k ConflictKind) String() string {
	if k == ReadWrite {
		return "read-write"
	}
	return "write-write"
}

// Conflict describes one detected semantic violation (Sections 7.2/7.3).
type Conflict struct {
	Kind    ConflictKind
	Block   memsys.BlockID
	Elem    int         // element index within the block (WriteWrite only)
	Region  string      // region name
	Writers nodeset.Set // writer set at detection time
	Readers nodeset.Set // reader set (ReadWrite only)
}

func (c Conflict) String() string {
	return fmt.Sprintf("%s conflict in %q block %d elem %d (writers %v readers %v)",
		c.Kind, c.Region, c.Block, c.Elem, c.Writers, c.Readers)
}

// conflictLog collects detected violations; guarded by its own mutex since
// different block locks may report concurrently.  Each entry carries the
// reporting segment's grant key so Conflicts can replay the serial
// insertion order even when time-parallel segments report out of order.
type conflictLog struct {
	mu    sync.Mutex
	list  []keyedConflict
	limit int
}

type keyedConflict struct {
	c   Conflict
	key uint64
}

func (cl *conflictLog) add(c Conflict, key uint64) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if cl.limit == 0 || len(cl.list) < cl.limit {
		cl.list = append(cl.list, keyedConflict{c: c, key: key})
	}
}

// CommitMode selects how reconciliation commits pending images.
type CommitMode uint8

const (
	// CommitHomeParallel: each home commits its own blocks inside the
	// reconciliation barrier window — reconciliation work is spread
	// across the machine (the default, and the reason Section 5.1's
	// feared bottleneck does not materialize).
	CommitHomeParallel CommitMode = iota
	// CommitSerial: one node commits every block.  Provided for the
	// ablation that makes the Section 5.1 bottleneck visible; a real
	// system would never choose it.
	CommitSerial
)

// LCM is the Loosely Coherent Memory protocol.
type LCM struct {
	m        *tempest.Machine
	variant  Variant
	commit   CommitMode
	coherent *stache.Protocol

	entries []entry
	phase   atomic.Uint32

	dirty   [][]dirtyRef
	dirtyMu []sync.Mutex

	conflicts conflictLog
}

// New creates an LCM protocol instance of the given variant.
func New(v Variant) *LCM {
	return &LCM{variant: v, coherent: stache.New(), conflicts: conflictLog{limit: 1024}}
}

// SetCommitMode selects the reconciliation commit strategy.  Call before
// the machine runs.
func (p *LCM) SetCommitMode(m CommitMode) { p.commit = m }

// Name implements tempest.Protocol.
func (p *LCM) Name() string { return p.variant.String() }

// Variant returns the clean-copy placement policy.
func (p *LCM) Variant() Variant { return p.variant }

// Phase returns the current reconcile-phase generation.
func (p *LCM) Phase() uint32 { return p.phase.Load() }

// DrainToHome flushes dirty coherent-region copies to the home image for
// sequential verification (see stache.Protocol.DrainToHome).  LCM-region
// data is already committed at home by ReconcileCopies.  Call only while
// the machine is quiescent.
func (p *LCM) DrainToHome() { p.coherent.DrainToHome() }

// Conflicts returns the violations detected so far (conflict-checked
// regions only), in serial grant order.  Call only while the machine is
// quiescent.
func (p *LCM) Conflicts() []Conflict {
	p.conflicts.mu.Lock()
	defer p.conflicts.mu.Unlock()
	keyed := make([]keyedConflict, len(p.conflicts.list))
	copy(keyed, p.conflicts.list)
	// Serial runs insert in nondecreasing key order, so the sort is the
	// identity there; parallel runs are restored to the same order.
	sort.SliceStable(keyed, func(i, j int) bool { return keyed[i].key < keyed[j].key })
	out := make([]Conflict, len(keyed))
	for i, k := range keyed {
		out[i] = k.c
	}
	return out
}

// Attach implements tempest.Protocol.
func (p *LCM) Attach(m *tempest.Machine) {
	if m.AS.BlockSize > 256 {
		// The per-element written mask tracks at most 64 four-byte
		// words per block.  A config error (not a panic) so the run
		// fails gracefully through Machine.RunErr, per the tempest
		// error-path convention.
		m.RecordConfigError(fmt.Errorf(
			"core: block size %d exceeds 256 bytes (the per-element modified bitmask tracks at most 64 words per block)",
			m.AS.BlockSize))
	}
	p.m = m
	p.entries = make([]entry, m.AS.NumBlocks())
	// P > 64 spills the directory copysets past their inline word; carve
	// the spill storage from one arena so the directory stays a handful
	// of allocations at any machine size.
	if ar := nodeset.NewArena(m.P - 1); ar.Words() > 0 {
		for i := range p.entries {
			e := &p.entries[i]
			e.sharers = ar.Make()
			e.readers = ar.Make()
			e.writers = ar.Make()
		}
	}
	p.dirty = make([][]dirtyRef, m.P)
	p.dirtyMu = make([]sync.Mutex, m.P)
	p.phase.Store(1)
	for _, n := range m.Nodes {
		n.PD = &nodeState{}
	}
	// Resolve default reconcilers per region so the flush path never
	// branches on nil.
	for _, r := range m.AS.Regions() {
		if r.Reconciler == nil {
			switch r.Kind {
			case memsys.KindReduction:
				panic(fmt.Sprintf("core: reduction region %q needs a Reconciler", r.Name))
			default:
				r.Reconciler = Overwrite{}
			}
		}
		if _, ok := r.Reconciler.(Reconciler); !ok {
			panic(fmt.Sprintf("core: region %q Reconciler does not implement core.Reconciler", r.Name))
		}
	}
	p.coherent.Attach(m)
}

func (p *LCM) state(n *tempest.Node) *nodeState { return n.PD.(*nodeState) }

// phaseEntry returns b's entry with its phase fields valid for ph.
// Caller holds b's lock.
func (p *LCM) phaseEntry(b memsys.BlockID, ph uint32) *entry {
	e := &p.entries[b]
	if e.gen != ph {
		e.gen = ph
		e.readers.Clear()
		e.writers.Clear()
		e.written = 0
		e.hasPending = false
		e.registered = false
	}
	return e
}

// chargeMiss charges a data-carrying fetch like Stache does.
func (p *LCM) chargeMiss(n *tempest.Node, home int) {
	m := p.m
	n.Ctr.Misses++
	if home == n.ID {
		n.Charge(m.Cost.LocalFill)
		n.Ctr.LocalFills++
		return
	}
	n.Charge(m.Net.RoundTrip(n.ID, home, int64(m.AS.BlockSize), n.Clock(), &n.Ctr.Net))
	n.Ctr.RemoteMisses++
	m.Nodes[home].ChargeRemote(m.Cost.HomeOccupancy)
}

// ReadFault implements tempest.Protocol: obtain a read-only copy carrying
// the pre-phase (clean) value of the block.
func (p *LCM) ReadFault(n *tempest.Node, b memsys.BlockID) *tempest.Line {
	r := p.m.AS.RegionOfBlock(b)
	if r.Kind == memsys.KindCoherent {
		return p.coherent.ReadFault(n, b)
	}
	home := p.m.AS.HomeOf(b)
	ph := p.phase.Load()
	n.SchedYieldFault(b) // deterministic handler-entry order (see internal/sched)
	p.m.Lock(b)
	defer p.m.Unlock(b)
	// The home image is not updated until reconciliation commits, so it
	// is the clean (pre-phase) value throughout the parallel phase.
	l := n.Install(b, p.m.AS.HomeData(b), tempest.TagReadOnly)
	l.Gen = ph
	e := p.phaseEntry(b, ph)
	e.sharers.Add(n.ID)
	if r.ConflictCheck {
		e.readers.Add(n.ID)
	}
	p.chargeMiss(n, home)
	if t := p.m.Trace; t != nil {
		t.Record(n.ID, n.Clock(), trace.ReadMiss, uint32(b), 0)
	}
	return l
}

// WriteFault implements tempest.Protocol.  A store to a loosely coherent
// block with no private copy is the copy-on-write trigger: it behaves as an
// implicit MarkModification (the "memory system detects the unusual case"
// path of the paper's conclusion).
func (p *LCM) WriteFault(n *tempest.Node, b memsys.BlockID) *tempest.Line {
	r := p.m.AS.RegionOfBlock(b)
	if r.Kind == memsys.KindCoherent {
		return p.coherent.WriteFault(n, b)
	}
	return p.mark(n, b)
}

// MarkModification implements tempest.Protocol: create an inconsistent,
// writable private copy of the block containing addr (Section 5.1).
func (p *LCM) MarkModification(n *tempest.Node, addr memsys.Addr) {
	b := p.m.AS.Block(addr)
	r := p.m.AS.RegionOfBlock(b)
	if r.Kind == memsys.KindCoherent {
		p.coherent.MarkModification(n, addr)
		return
	}
	p.mark(n, b)
}

// mark is the common MarkModification/copy-on-write path.
func (p *LCM) mark(n *tempest.Node, b memsys.BlockID) *tempest.Line {
	ph := p.phase.Load()
	c := p.m.Cost
	n.Ctr.Marks++
	l := n.Line(b)

	// Already private this phase: the directive is a cheap tag check.
	if l != nil && l.Tag() == tempest.TagPrivate && l.Gen == ph {
		n.Charge(c.MarkLocal)
		return l
	}

	// LCM-mcc fast path: a local clean copy from this phase lets the
	// node re-create its private copy without contacting home.
	if p.variant == MCC && l != nil && l.Tag() == tempest.TagReadOnly &&
		l.Clean != nil && l.CleanGen == ph {
		l.SetTag(tempest.TagPrivate)
		l.WMask = 0
		n.Charge(c.MarkLocal)
		p.noteMarked(n, l, b)
		return l
	}

	home := p.m.AS.HomeOf(b)
	n.SchedYieldFault(b) // deterministic handler-entry order (see internal/sched)
	p.m.Lock(b)
	defer p.m.Unlock(b)
	e := p.phaseEntry(b, ph)

	// First mark of this block in this phase: the home creates its clean
	// copy (the pending merge image starts as a copy of the pre-phase
	// value) and registers the block for commit at reconciliation.
	if !e.hasPending {
		if e.pending == nil {
			// Carved from the marking node's arena; published to other
			// goroutines only under b's lock, like the entry itself.
			e.pending = n.BlockBuf()
		}
		copy(e.pending, p.m.AS.HomeData(b))
		e.hasPending = true
		p.m.Shared.CleanCopiesHome.Add(1)
	}
	if !e.registered {
		e.registered = true
		p.dirtyMu[home].Lock()
		p.dirty[home] = append(p.dirty[home], dirtyRef{b: b, key: n.GrantKey()})
		p.dirtyMu[home].Unlock()
	}

	if l != nil && l.Tag() >= tempest.TagReadOnly {
		// Upgrade in place: the cached data is the pre-phase value.
		l.SetTag(tempest.TagPrivate)
		n.Ctr.Upgrades++
		if home == n.ID {
			n.Charge(c.MarkLocal)
		} else {
			n.Charge(p.m.Net.Upgrade(n.ID, home, n.Clock(), &n.Ctr.Net))
			p.m.Nodes[home].ChargeRemote(c.HomeOccupancy)
		}
	} else {
		// Fetch the clean value from home.
		l = n.Install(b, p.m.AS.HomeData(b), tempest.TagPrivate)
		p.chargeMiss(n, home)
	}
	l.Gen = ph
	l.WMask = 0
	if p.variant == MCC {
		if l.Clean == nil {
			l.Clean = n.BlockBuf()
		}
		copy(l.Clean, l.Data)
		l.CleanGen = ph
		p.m.Shared.CleanCopiesLocal.Add(1)
	}
	// A private writer is no longer a read-only sharer.
	e.sharers.Remove(n.ID)
	p.noteMarked(n, l, b)
	if t := p.m.Trace; t != nil {
		t.Record(n.ID, n.Clock(), trace.Mark, uint32(b), 0)
	}
	return l
}

// noteMarked puts b on the node's marked list exactly once per mark epoch.
func (p *LCM) noteMarked(n *tempest.Node, l *tempest.Line, b memsys.BlockID) {
	if !l.Marked {
		l.Marked = true
		st := p.state(n)
		st.marked = append(st.marked, b)
	}
}

// FlushCopies implements tempest.Protocol: return every private-modified
// block to its home for partial reconciliation, so the next invocation on
// this node cannot observe this invocation's writes (Section 5.1).
func (p *LCM) FlushCopies(n *tempest.Node) {
	st := p.state(n)
	if len(st.marked) == 0 {
		return
	}
	for _, b := range st.marked {
		p.flushBlock(n, b)
	}
	st.marked = st.marked[:0]
}

// flushBlock diffs one private copy against the clean value, merges the
// modified elements into the home's pending image, and releases or reverts
// the private copy according to the variant.
func (p *LCM) flushBlock(n *tempest.Node, b memsys.BlockID) {
	l := n.Line(b)
	if l == nil || l.Tag() != tempest.TagPrivate || !l.Marked {
		panic(fmt.Sprintf("core: node %d flushing block %d which is not private-marked", n.ID, b))
	}
	r := p.m.AS.RegionOfBlock(b)
	rec := r.Reconciler.(Reconciler)
	es := rec.ElemSize()
	home := p.m.AS.HomeOf(b)
	c := p.m.Cost

	// Every post-yield path charges at least a local fill or a network
	// flush, so the full fault floor holds (the no-pending path panics).
	n.SchedYieldFault(b) // deterministic handler-entry order (see internal/sched)
	p.m.Lock(b)
	e := &p.entries[b]
	if !e.hasPending || e.gen != p.phase.Load() {
		p.m.Unlock(b)
		panic(fmt.Sprintf("core: flush of block %d with no pending image", b))
	}
	clean := p.m.AS.HomeData(b)
	words := int64(0)
	bs := p.m.AS.BlockSize
	if !r.ConflictCheck && (es == 4 || es == 8) {
		// Fast diff for the common case (no store-granularity tracking):
		// most of a flushed block is untouched, so compare eight bytes
		// at a time and drop into per-element merging only around actual
		// modifications.  Merge order and results are identical to the
		// per-element loop below.
		for off := uint32(0); off < bs; off += 8 {
			if binary.LittleEndian.Uint64(l.Data[off:]) == binary.LittleEndian.Uint64(clean[off:]) {
				continue
			}
			if es == 8 {
				p.mergeElem(n, b, e, r, rec, es, l, clean, off)
				words++
				continue
			}
			if binary.LittleEndian.Uint32(l.Data[off:]) != binary.LittleEndian.Uint32(clean[off:]) {
				p.mergeElem(n, b, e, r, rec, es, l, clean, off)
				words++
			}
			if binary.LittleEndian.Uint32(l.Data[off+4:]) != binary.LittleEndian.Uint32(clean[off+4:]) {
				p.mergeElem(n, b, e, r, rec, es, l, clean, off+4)
				words++
			}
		}
	} else {
		for off := uint32(0); off < bs; off += es {
			in := l.Data[off : off+es]
			cl := clean[off : off+es]
			// A returning element is "modified" when its value differs
			// from the clean copy, or — in conflict-checked regions,
			// which track stores at word granularity (footnote 2) — when
			// it was stored to at all, even with an unchanged value.
			stored := false
			if r.ConflictCheck {
				for w := off / 4; w < (off+es)/4; w++ {
					if l.WMask&(1<<w) != 0 {
						stored = true
					}
				}
			}
			if equalBytes(in, cl) && !stored {
				continue
			}
			p.mergeElem(n, b, e, r, rec, es, l, clean, off)
			words++
		}
	}
	l.WMask = 0
	if words > 0 {
		e.writers.Add(n.ID)
	}
	n.Ctr.Flushes++
	n.Ctr.WordsFlushed += words * int64(es/4)

	switch p.variant {
	case SCC:
		// Single clean copy at home: drop the private copy; reuse
		// re-fetches the clean value from home.
		l.SetTag(tempest.TagInvalid)
	case MCC:
		// Revert to the local clean copy; the node keeps a readable
		// pre-phase copy without re-fetching.
		copy(l.Data, l.Clean)
		l.SetTag(tempest.TagReadOnly)
		e.sharers.Add(n.ID)
	}
	l.Marked = false
	p.m.Unlock(b)

	if t := p.m.Trace; t != nil {
		t.Record(n.ID, n.Clock(), trace.Flush, uint32(b), int32(words))
	}
	if home == n.ID {
		n.Charge(c.LocalFill + words*c.MergePerWord)
	} else {
		// One-way message carrying the modified elements; the network
		// charges the fixed send cost plus payload bandwidth.
		n.Charge(p.m.Net.Flush(n.ID, home, words*int64(es), n.Clock(), &n.Ctr.Net))
		p.m.Nodes[home].ChargeRemote(c.FlushOccupancy + words*c.MergePerWord)
	}
}

// mergeElem folds the modified element at byte offset off of block b into
// the home's pending image, with conflict detection and accounting.  The
// caller holds b's lock and invokes mergeElem in ascending offset order,
// exactly once per modified element.
func (p *LCM) mergeElem(n *tempest.Node, b memsys.BlockID, e *entry, r *memsys.Region, rec Reconciler, es uint32, l *tempest.Line, clean []byte, off uint32) {
	idx := off / es
	prior := e.written&(1<<idx) != 0
	conflict := rec.Merge(e.pending[off:off+es], l.Data[off:off+es], clean[off:off+es], prior)
	if r.ConflictCheck && prior {
		// Store granularity: any second modifier of an element in one
		// phase is a violation, value-equal or not.
		conflict = true
	}
	if conflict {
		p.m.Shared.WriteConflicts.Add(1)
		if t := p.m.Trace; t != nil {
			t.Record(n.ID, n.Clock(), trace.Conflict, uint32(b), int32(idx))
		}
		if r.ConflictCheck {
			// Cold path: the log snapshot clones the live writer set.
			writers := e.writers.Clone()
			writers.Add(n.ID)
			p.conflicts.add(Conflict{
				Kind: WriteWrite, Block: b, Elem: int(idx),
				Region: r.Name, Writers: writers,
			}, n.GrantKey())
		}
	}
	e.written |= 1 << idx
}

// Evict implements tempest.Protocol.  Private-modified copies must not be
// lost — the paper's Stache exists precisely to back them with local
// memory — so eviction refuses them; read-only copies of loose regions are
// dropped after the home forgets the sharer.  Coherent regions delegate to
// the embedded Stache.
func (p *LCM) Evict(n *tempest.Node, b memsys.BlockID) bool {
	r := p.m.AS.RegionOfBlock(b)
	if r.Kind == memsys.KindCoherent {
		return p.coherent.Evict(n, b)
	}
	l := n.Line(b)
	if l == nil || l.Tag() == tempest.TagInvalid {
		return true
	}
	if l.Tag() == tempest.TagPrivate {
		return false
	}
	n.SchedYieldEvict(b) // deterministic handler-entry order (see internal/sched)
	p.m.Lock(b)
	defer p.m.Unlock(b)
	p.entries[b].sharers.Remove(n.ID)
	l.SetTag(tempest.TagInvalid)
	n.Charge(p.m.Cost.MarkLocal)
	return true
}

// ReconcileCopies implements tempest.Protocol: the global reconciliation
// barrier (Section 5.1).  Every node flushes its remaining private copies,
// the homes commit pending images in parallel and invalidate outstanding
// copies of modified blocks, and memory returns to a coherent state.
func (p *LCM) ReconcileCopies(n *tempest.Node) {
	ph := p.phase.Load()
	p.FlushCopies(n)
	n.Barrier()
	switch p.commit {
	case CommitSerial:
		// Ablation mode: node 0 performs every home's commit work and
		// is charged for all of it; the barrier then propagates the
		// serialized time to everyone (the Section 5.1 bottleneck).
		if n.ID == 0 {
			for home := 0; home < p.m.P; home++ {
				p.commitLists(n, home, ph)
			}
		}
	default:
		p.commitHome(n, ph)
	}
	if n.ID == 0 {
		p.phase.Store(ph + 1)
	}
	n.Barrier()
}

// commitHome commits every registered block homed at n.  It runs inside
// the reconciliation barrier window: all other nodes are blocked at the
// barrier, so touching their lines' tags and generations is safe, and
// distinct homes own disjoint blocks.
func (p *LCM) commitHome(n *tempest.Node, ph uint32) {
	p.commitLists(n, n.ID, ph)
}

// Rehome implements tempest.Rehomer for degraded-mode recovery: blocks
// homed at `from` have just migrated to `to` (memsys.Rehome), so the
// pending entries of from's dirty list — registered before the migration
// but not yet committed — must move to the adopter's list, or the next
// reconciliation would never commit them (commitHome drains each node's
// own list, and the dead node's is now authoritative for nothing).
// Called from the dying node's goroutine at a deterministic point where
// no node is inside the reconciliation window.
func (p *LCM) Rehome(from, to int) {
	p.dirtyMu[from].Lock()
	list := p.dirty[from]
	p.dirty[from] = list[:0]
	p.dirtyMu[from].Unlock()
	if len(list) == 0 {
		return
	}
	p.dirtyMu[to].Lock()
	p.dirty[to] = append(p.dirty[to], list...)
	p.dirtyMu[to].Unlock()
}

// commitLists commits the dirty list of the given home, charging the work
// to n's clock.
func (p *LCM) commitLists(n *tempest.Node, home int, ph uint32) {
	c := p.m.Cost
	p.dirtyMu[home].Lock()
	list := p.dirty[home]
	p.dirty[home] = list[:0]
	p.dirtyMu[home].Unlock()
	// Replay registrations in serial grant order (identity on serial
	// runs, where appends already happen in grant order).
	sort.SliceStable(list, func(i, j int) bool { return list[i].key < list[j].key })

	for _, ref := range list {
		b := ref.b
		e := &p.entries[b]
		if e.gen != ph || !e.registered {
			continue
		}
		r := p.m.AS.RegionOfBlock(b)
		if !e.writers.Empty() {
			copy(p.m.AS.HomeData(b), e.pending)
			p.m.Shared.Reconciles.Add(1)
			n.Charge(c.LocalFill)
			if t := p.m.Trace; t != nil {
				t.Record(n.ID, n.Clock(), trace.Commit, uint32(b), int32(bits.OnesCount64(e.written)))
			}
			if r.ConflictCheck && !e.readers.SubsetOf(&e.writers) {
				p.m.Shared.ReadWriteConflicts.Add(1)
				pureReaders := e.readers.Clone()
				pureReaders.Subtract(&e.writers)
				p.conflicts.add(Conflict{
					Kind: ReadWrite, Block: b, Region: r.Name,
					Writers: e.writers.Clone(), Readers: pureReaders,
				}, n.GrantKey())
			}
			p.invalidateOutstanding(n, b, e, r, ph)
		}
		e.hasPending = false
		e.registered = false
	}

	// Actual-violation mode: flush every read-only copy of checked
	// regions so the next phase's reads fault and are observed
	// (the paper's "all read-only cache blocks must be flushed at
	// synchronization points").
	for _, r := range p.m.AS.Regions() {
		if !r.ConflictCheck || !r.FlushReads {
			continue
		}
		for i := uint32(0); i < r.NumBlocks(); i++ {
			b := r.FirstBlock() + memsys.BlockID(i)
			if p.m.AS.HomeOf(b) != home {
				continue
			}
			e := &p.entries[b]
			p.invalidateAllSharers(n, b, e)
		}
	}
}

// invalidateOutstanding removes outstanding read-only copies of a modified
// block, honoring the stale-data policy (Section 7.5): copies of a
// KindStale region younger than StalePhases survive the commit.
func (p *LCM) invalidateOutstanding(n *tempest.Node, b memsys.BlockID, e *entry, r *memsys.Region, ph uint32) {
	// Members are dropped in place while the fan-out walks them —
	// nodeset.Iter snapshots each word before popping its bits, so
	// removing the member just visited is safe and the ascending charge
	// order matches the historical flat-mask loop exactly.
	sent := int64(0)
	for it := e.sharers.Iter(); ; {
		id, ok := it.Next()
		if !ok {
			break
		}
		l := p.m.Nodes[id].Line(b)
		if l == nil {
			e.sharers.Remove(id)
			continue
		}
		if r.Kind == memsys.KindStale && ph-l.Gen < uint32(r.StalePhases) {
			continue // stale policy: the young copy survives the commit
		}
		e.sharers.Remove(id)
		l.SetTag(tempest.TagInvalid)
		n.Charge(p.m.Net.Invalidate(n.ID, id, n.Clock(), &n.Ctr.Net))
		sent++
	}
	n.Ctr.InvalidationsSent += sent
}

// invalidateAllSharers drops every read-only copy of b.
func (p *LCM) invalidateAllSharers(n *tempest.Node, b memsys.BlockID, e *entry) {
	for it := e.sharers.Iter(); ; {
		id, ok := it.Next()
		if !ok {
			break
		}
		if l := p.m.Nodes[id].Line(b); l != nil {
			l.SetTag(tempest.TagInvalid)
		}
		n.Ctr.InvalidationsSent++
		n.Charge(p.m.Net.Invalidate(n.ID, id, n.Clock(), &n.Ctr.Net))
	}
	e.sharers.Clear()
}

var _ tempest.Protocol = (*LCM)(nil)
