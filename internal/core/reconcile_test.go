package core

import (
	"encoding/binary"
	"math"
	"testing"
	"testing/quick"
)

func putI64(v int64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, uint64(v))
	return b
}

func getI64(b []byte) int64 { return int64(binary.LittleEndian.Uint64(b)) }

func putF64(v float64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, math.Float64bits(v))
	return b
}

func getF64(b []byte) float64 { return math.Float64frombits(binary.LittleEndian.Uint64(b)) }

func putU32(v uint32) []byte {
	b := make([]byte, 4)
	binary.LittleEndian.PutUint32(b, v)
	return b
}

func TestOverwriteMerge(t *testing.T) {
	rec := Overwrite{}
	if rec.ElemSize() != 4 {
		t.Fatal("default elem size")
	}
	pending := putU32(0)
	if rec.Merge(pending, putU32(5), putU32(0), false) {
		t.Fatal("first write flagged as conflict")
	}
	if binary.LittleEndian.Uint32(pending) != 5 {
		t.Fatal("value not merged")
	}
	// Second writer, same value: no conflict.
	if rec.Merge(pending, putU32(5), putU32(0), true) {
		t.Fatal("identical double write flagged")
	}
	// Second writer, different value: conflict, last wins.
	if !rec.Merge(pending, putU32(9), putU32(0), true) {
		t.Fatal("conflicting write not flagged")
	}
	if binary.LittleEndian.Uint32(pending) != 9 {
		t.Fatal("last value did not win")
	}
}

func TestOverwriteElemSizeOverride(t *testing.T) {
	rec := Overwrite{Elem: 8}
	if rec.ElemSize() != 8 {
		t.Fatal("elem size override")
	}
}

// Property: for any partition of contributions across copies, SumI64
// reconciliation equals the serial fold.
func TestSumI64MatchesSerialFold(t *testing.T) {
	f := func(initial int64, contribs []int32) bool {
		rec := SumI64{}
		clean := putI64(initial)
		pending := putI64(initial)
		want := initial
		for _, c := range contribs {
			want += int64(c)
			// Each copy starts from clean and adds its contribution,
			// exactly what an LCM private copy does.
			incoming := putI64(initial + int64(c))
			rec.Merge(pending, incoming, clean, false)
		}
		return getI64(pending) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: min/max reconciliation equals the serial min/max including the
// initial value.
func TestMinMaxMatchSerial(t *testing.T) {
	f := func(initial float64, vals []float64) bool {
		if math.IsNaN(initial) {
			return true
		}
		mn, mx := MinF64{}, MaxF64{}
		pmin, pmax := putF64(initial), putF64(initial)
		clean := putF64(initial)
		wantMin, wantMax := initial, initial
		for _, v := range vals {
			if math.IsNaN(v) {
				continue
			}
			mn.Merge(pmin, putF64(v), clean, false)
			mx.Merge(pmax, putF64(v), clean, false)
			if v < wantMin {
				wantMin = v
			}
			if v > wantMax {
				wantMax = v
			}
		}
		return getF64(pmin) == wantMin && getF64(pmax) == wantMax
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSumF64Contributions(t *testing.T) {
	rec := SumF64{}
	clean := putF64(10)
	pending := putF64(10)
	rec.Merge(pending, putF64(13), clean, false) // contribution +3
	rec.Merge(pending, putF64(8), clean, true)   // contribution -2
	if got := getF64(pending); got != 11 {
		t.Fatalf("sum = %v, want 11", got)
	}
}

func TestSumF32Contributions(t *testing.T) {
	rec := SumF32{}
	mk := func(v float32) []byte {
		b := make([]byte, 4)
		binary.LittleEndian.PutUint32(b, math.Float32bits(v))
		return b
	}
	clean := mk(1)
	pending := mk(1)
	rec.Merge(pending, mk(3), clean, false)
	rec.Merge(pending, mk(0), clean, true)
	got := math.Float32frombits(binary.LittleEndian.Uint32(pending))
	if got != 2 {
		t.Fatalf("sum = %v, want 2", got)
	}
}

func TestProdF64(t *testing.T) {
	rec := ProdF64{}
	clean := putF64(2)
	pending := putF64(2)
	rec.Merge(pending, putF64(6), clean, false) // factor 3
	rec.Merge(pending, putF64(10), clean, true) // factor 5
	if got := getF64(pending); got != 30 {
		t.Fatalf("prod = %v, want 30", got)
	}
	// Zero clean value: incoming replaces.
	cleanZ := putF64(0)
	pendZ := putF64(0)
	rec.Merge(pendZ, putF64(7), cleanZ, false)
	if got := getF64(pendZ); got != 7 {
		t.Fatalf("prod from zero = %v, want 7", got)
	}
}

func TestFuncReconciler(t *testing.T) {
	// XOR-merge as a custom policy.
	rec := Func{Elem: 4, F: func(pending, incoming, clean []byte, prior bool) bool {
		v := binary.LittleEndian.Uint32(pending) ^ binary.LittleEndian.Uint32(incoming)
		binary.LittleEndian.PutUint32(pending, v)
		return false
	}}
	if rec.ElemSize() != 4 {
		t.Fatal("elem size")
	}
	pending := putU32(0b1100)
	rec.Merge(pending, putU32(0b1010), putU32(0), false)
	if got := binary.LittleEndian.Uint32(pending); got != 0b0110 {
		t.Fatalf("xor merge = %#b", got)
	}
}

// Property: merging any set of writes to DISJOINT elements of a block under
// Overwrite yields exactly the union of the writes, independent of order.
func TestDisjointOverwriteMergeProperty(t *testing.T) {
	f := func(assign []uint8, vals []uint32) bool {
		const elems = 8
		if len(vals) == 0 {
			return true
		}
		rec := Overwrite{}
		clean := make([]byte, 4*elems) // zero clean image
		pending := make([]byte, 4*elems)
		want := make([]uint32, elems)
		// Each element is written by at most one "node": assign element
		// e to writer assign[e]%3; nodes write vals in their slots.
		for e := 0; e < elems && e < len(assign); e++ {
			v := vals[e%len(vals)]
			if v == 0 {
				continue // unmodified elements merge nothing
			}
			incoming := make([]byte, 4)
			binary.LittleEndian.PutUint32(incoming, v)
			if rec.Merge(pending[e*4:e*4+4], incoming, clean[e*4:e*4+4], false) {
				return false // disjoint writes must not conflict
			}
			want[e] = v
		}
		for e := 0; e < elems; e++ {
			if binary.LittleEndian.Uint32(pending[e*4:]) != want[e] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPolicyValidate(t *testing.T) {
	cases := []struct {
		pol Policy
		ok  bool
	}{
		{Coherent(), true},
		{LooselyCoherent(), true},
		{Reduction(SumF64{}), true},
		{Detect(true), true},
		{Detect(false), true},
		{Stale(3), true},
		{Policy{Kind: 1, StalePhases: -1}, false},
		{Policy{Kind: 2}, false},                   // reduction without reconciler
		{Policy{Kind: 1, FlushReads: true}, false}, // FlushReads without check
		{Policy{Kind: 1, StalePhases: 2}, false},   // stale phases on LCM kind
		{Policy{Kind: 2, Reconciler: SumF64{}, ConflictCheck: true}, false}, // checked reduction
	}
	for i, tc := range cases {
		err := tc.pol.Validate()
		if (err == nil) != tc.ok {
			t.Fatalf("case %d: Validate() = %v, ok=%v", i, err, tc.ok)
		}
	}
}

func TestVariantStrings(t *testing.T) {
	if SCC.String() != "lcm-scc" || MCC.String() != "lcm-mcc" {
		t.Fatal("variant strings")
	}
	if WriteWrite.String() != "write-write" || ReadWrite.String() != "read-write" {
		t.Fatal("conflict kind strings")
	}
}
