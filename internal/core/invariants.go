package core

import (
	"fmt"

	"lcm/internal/memsys"
	"lcm/internal/tempest"
)

// CheckInvariants audits LCM's directory state against every node's access
// tags and returns the first violation found, or nil.  It may only run
// while the machine is quiescent.
//
// Invariants of the LCM protocol, per loosely coherent block:
//
//   - Every node in the sharer mask holds a readable (not private) copy.
//   - A node holding a read-only copy of a current-generation block is in
//     the sharer mask (stale-policy and older-generation copies of
//     unmodified blocks may legitimately outlive their mask entry only if
//     the mask still records them — the protocol never clears a sharer
//     without invalidating the copy).
//   - Between phases (after ReconcileCopies) no private copies exist and
//     no pending merge images are live.
//
// Coherent-region blocks are delegated to the embedded Stache checker.
func (p *LCM) CheckInvariants() error { return p.checkTags(false) }

// checkTags is the shared body of CheckInvariants and CheckQuiescent.
// With forbidPrivate set, any private copy is a violation (the between-
// phases rule); otherwise private copies must carry the current phase
// generation.
//
// The audit runs in two passes.  The block-major pass checks the sparse
// positive obligations (every recorded sharer really holds a read-only
// copy).  The node-major pass checks every held copy against the
// directory, scanning each node's line table sequentially — the table is
// dense in blocks, so this order walks memory linearly instead of
// striding across all nodes' tables once per block.
func (p *LCM) checkTags(forbidPrivate bool) error {
	if err := p.coherent.CheckInvariants(); err != nil {
		return err
	}
	ph := p.phase.Load()
	for bi := range p.entries {
		b := memsys.BlockID(bi)
		e := &p.entries[bi]
		if e.sharers.Empty() || p.m.AS.RegionOfBlock(b).Kind == memsys.KindCoherent {
			continue
		}
		for it := e.sharers.Iter(); ; {
			id, ok := it.Next()
			if !ok {
				break
			}
			l := p.m.Nodes[id].Line(b)
			if l == nil || l.Tag() != tempest.TagReadOnly {
				tag := "none"
				if l != nil {
					tag = tempest.TagName(l.Tag())
				}
				return fmt.Errorf("core: block %d sharer %d holds %s, want ro", b, id, tag)
			}
		}
	}
	for id, nd := range p.m.Nodes {
		for _, chunk := range nd.InstalledLines() {
			for li := range chunk {
				l := &chunk[li]
				if l.Data == nil {
					break // unallocated arena tail
				}
				b := l.Block()
				tag := l.Tag()
				if tag == tempest.TagInvalid || p.m.AS.RegionOfBlock(b).Kind == memsys.KindCoherent {
					continue
				}
				switch tag {
				case tempest.TagReadWrite:
					return fmt.Errorf("core: loose block %d carries coherent rw tag at node %d", b, id)
				case tempest.TagReadOnly:
					if !p.entries[b].sharers.Contains(id) {
						return fmt.Errorf("core: block %d read-only at node %d but not in sharer mask", b, id)
					}
				case tempest.TagPrivate:
					if forbidPrivate {
						return fmt.Errorf("core: node %d still holds block %d privately between phases", id, b)
					}
					if l.Gen != ph {
						return fmt.Errorf("core: block %d private at node %d with stale generation %d (phase %d)",
							b, id, l.Gen, ph)
					}
				}
			}
		}
	}
	return nil
}

// CheckQuiescent additionally requires that no parallel phase is in
// flight: no private copies, no marked lists, no pending merge images.
// Call after ReconcileCopies has completed on all nodes.
func (p *LCM) CheckQuiescent() error {
	if err := p.checkTags(true); err != nil {
		return err
	}
	for id, nd := range p.m.Nodes {
		if st, ok := nd.PD.(*nodeState); ok && len(st.marked) != 0 {
			return fmt.Errorf("core: node %d has %d unflushed marked blocks", id, len(st.marked))
		}
	}
	for bi := range p.entries {
		e := &p.entries[bi]
		if e.hasPending && e.gen == p.phase.Load() {
			return fmt.Errorf("core: block %d has a live pending image between phases", bi)
		}
	}
	return nil
}
