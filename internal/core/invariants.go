package core

import (
	"fmt"
	"math/bits"

	"lcm/internal/memsys"
	"lcm/internal/tempest"
)

// CheckInvariants audits LCM's directory state against every node's access
// tags and returns the first violation found, or nil.  It may only run
// while the machine is quiescent.
//
// Invariants of the LCM protocol, per loosely coherent block:
//
//   - Every node in the sharer mask holds a readable (not private) copy.
//   - A node holding a read-only copy of a current-generation block is in
//     the sharer mask (stale-policy and older-generation copies of
//     unmodified blocks may legitimately outlive their mask entry only if
//     the mask still records them — the protocol never clears a sharer
//     without invalidating the copy).
//   - Between phases (after ReconcileCopies) no private copies exist and
//     no pending merge images are live.
//
// Coherent-region blocks are delegated to the embedded Stache checker.
func (p *LCM) CheckInvariants() error {
	if err := p.coherent.CheckInvariants(); err != nil {
		return err
	}
	ph := p.phase.Load()
	for bi := range p.entries {
		b := memsys.BlockID(bi)
		r := p.m.AS.RegionOfBlock(b)
		if r.Kind == memsys.KindCoherent {
			continue
		}
		e := &p.entries[b]
		// Sharer-mask soundness.
		for s := e.sharers; s != 0; s &= s - 1 {
			id := bits.TrailingZeros64(s)
			l := p.m.Nodes[id].Line(b)
			if l == nil || l.Tag() != tempest.TagReadOnly {
				tag := "none"
				if l != nil {
					tag = tempest.TagName(l.Tag())
				}
				return fmt.Errorf("core: block %d sharer %d holds %s, want ro", b, id, tag)
			}
		}
		// Copy-tag soundness.
		for id, nd := range p.m.Nodes {
			l := nd.Line(b)
			if l == nil {
				continue
			}
			switch l.Tag() {
			case tempest.TagReadWrite:
				return fmt.Errorf("core: loose block %d carries coherent rw tag at node %d", b, id)
			case tempest.TagReadOnly:
				if e.sharers&(1<<uint(id)) == 0 {
					return fmt.Errorf("core: block %d read-only at node %d but not in sharer mask", b, id)
				}
			case tempest.TagPrivate:
				if l.Gen != ph {
					return fmt.Errorf("core: block %d private at node %d with stale generation %d (phase %d)",
						b, id, l.Gen, ph)
				}
			}
		}
	}
	return nil
}

// CheckQuiescent additionally requires that no parallel phase is in
// flight: no private copies, no marked lists, no pending merge images.
// Call after ReconcileCopies has completed on all nodes.
func (p *LCM) CheckQuiescent() error {
	if err := p.CheckInvariants(); err != nil {
		return err
	}
	for id, nd := range p.m.Nodes {
		if st, ok := nd.PD.(*nodeState); ok && len(st.marked) != 0 {
			return fmt.Errorf("core: node %d has %d unflushed marked blocks", id, len(st.marked))
		}
	}
	for bi := range p.entries {
		e := &p.entries[bi]
		if e.hasPending && e.gen == p.phase.Load() {
			return fmt.Errorf("core: block %d has a live pending image between phases", bi)
		}
	}
	for id, nd := range p.m.Nodes {
		for bi := range p.entries {
			if l := nd.Line(memsys.BlockID(bi)); l != nil && l.Tag() == tempest.TagPrivate {
				return fmt.Errorf("core: node %d still holds block %d privately between phases", id, bi)
			}
		}
	}
	return nil
}
