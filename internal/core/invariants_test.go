package core

import (
	"testing"

	"lcm/internal/cost"
	"lcm/internal/memsys"
	"lcm/internal/tempest"
)

func TestInvariantsHoldAfterOracleProgram(t *testing.T) {
	for _, v := range []Variant{SCC, MCC} {
		prog := genProgram(777, 4, 64, 8, 40)
		m := tempest.New(4, 32, cost.Default())
		r := m.AS.Alloc("data", uint64(prog.elems)*4, memsys.KindLCM, memsys.Interleaved)
		pr := New(v)
		m.SetProtocol(pr)
		m.Freeze()
		m.Run(func(n *tempest.Node) {
			for ph := range prog.phases {
				for _, op := range prog.phases[ph][n.ID] {
					a := r.Base + memsys.Addr(op.elem*4)
					if op.write {
						n.WriteU32(a, op.val)
					} else {
						_ = n.ReadU32(a)
					}
					if op.endInv {
						n.FlushCopies()
					}
				}
				n.ReconcileCopies()
			}
		})
		if err := pr.CheckQuiescent(); err != nil {
			t.Fatalf("%v: %v", v, err)
		}
	}
}

func TestInvariantsHoldMidPhase(t *testing.T) {
	// CheckInvariants (not Quiescent) must accept a machine paused with
	// live private copies.
	m := tempest.New(2, 32, cost.Default())
	r := m.AS.Alloc("d", 64, memsys.KindLCM, memsys.Interleaved)
	pr := New(MCC)
	m.SetProtocol(pr)
	m.Freeze()
	m.Run(func(n *tempest.Node) {
		if n.ID == 0 {
			n.WriteU32(r.Base, 5) // leave a private copy live
		}
		n.Barrier()
	})
	if err := pr.CheckInvariants(); err != nil {
		t.Fatalf("mid-phase invariants: %v", err)
	}
	if err := pr.CheckQuiescent(); err == nil {
		t.Fatal("CheckQuiescent must reject a live private copy")
	}
}

func TestInvariantsHoldWithMixedRegions(t *testing.T) {
	m := tempest.New(4, 32, cost.Default())
	loose := m.AS.Alloc("loose", 256, memsys.KindLCM, memsys.Interleaved)
	coh := m.AS.Alloc("coh", 256, memsys.KindCoherent, memsys.Interleaved)
	red := m.AS.Alloc("red", 8, memsys.KindLCM, memsys.SingleHome)
	if err := Reduction(SumI64{}).ApplyTo(red); err != nil {
		t.Fatalf("ApplyTo: %v", err)
	}
	pr := New(MCC)
	m.SetProtocol(pr)
	m.Freeze()
	m.Run(func(n *tempest.Node) {
		for it := 0; it < 3; it++ {
			n.WriteU32(loose.Base+memsys.Addr(n.ID*4), uint32(it))
			n.WriteU32(coh.Base+memsys.Addr(n.ID*32), uint32(it))
			n.WriteI64(red.Base, n.ReadI64(red.Base)+1)
			n.FlushCopies()
			_ = n.ReadU32(loose.Base + memsys.Addr(((n.ID+1)%4)*4))
			n.ReconcileCopies()
		}
	})
	if err := pr.CheckQuiescent(); err != nil {
		t.Fatal(err)
	}
	// 4 nodes x 3 phases of +1 each.
	b := m.AS.Block(red.Base)
	if got := int64(m.AS.HomeData(b)[0]); got != 12 {
		t.Fatalf("reduction total = %d, want 12", got)
	}
}

// TestInvariantsAtWideMachines re-runs the directory audits on machines
// whose copysets spill past the inline 64-bit word: P=65 puts exactly
// one node in the spill, P=256 fills four words.  The access pattern
// forces wide sharer sets (every node reads block 0), wide writer sets
// (disjoint writes from low and high node IDs), and cross-word
// invalidation fan-out at reconcile.
func TestInvariantsAtWideMachines(t *testing.T) {
	for _, p := range []int{65, 256} {
		for _, v := range []Variant{SCC, MCC} {
			m := tempest.New(p, 32, cost.Default())
			r := m.AS.Alloc("data", uint64(p)*4, memsys.KindLCM, memsys.Interleaved)
			pr := New(v)
			m.SetProtocol(pr)
			m.Freeze()
			m.Run(func(n *tempest.Node) {
				for phase := 0; phase < 2; phase++ {
					_ = n.ReadU32(r.Base) // block 0: all P nodes share
					n.WriteU32(r.Base+memsys.Addr(n.ID*4), uint32(phase*p+n.ID))
					n.ReconcileCopies()
				}
			})
			if err := pr.CheckQuiescent(); err != nil {
				t.Fatalf("P=%d %v: %v", p, v, err)
			}
			for i := 0; i < p; i++ {
				b := m.AS.Block(r.Base + memsys.Addr(i*4))
				off := (r.Base + memsys.Addr(i*4)) & 31
				got := uint32(m.AS.HomeData(b)[off]) | uint32(m.AS.HomeData(b)[off+1])<<8 |
					uint32(m.AS.HomeData(b)[off+2])<<16 | uint32(m.AS.HomeData(b)[off+3])<<24
				if want := uint32(p + i); got != want {
					t.Fatalf("P=%d %v: elem %d = %d, want %d", p, v, i, got, want)
				}
			}
		}
	}
}

// TestOracleProgramAtWideMachines drives the random oracle program at
// P=65, crossing the spill boundary with an irregular access mix.
func TestOracleProgramAtWideMachines(t *testing.T) {
	for _, v := range []Variant{SCC, MCC} {
		prog := genProgram(4242, 65, 130, 4, 24)
		m := tempest.New(65, 32, cost.Default())
		r := m.AS.Alloc("data", uint64(prog.elems)*4, memsys.KindLCM, memsys.Interleaved)
		pr := New(v)
		m.SetProtocol(pr)
		m.Freeze()
		m.Run(func(n *tempest.Node) {
			for ph := range prog.phases {
				for _, op := range prog.phases[ph][n.ID] {
					a := r.Base + memsys.Addr(op.elem*4)
					if op.write {
						n.WriteU32(a, op.val)
					} else {
						_ = n.ReadU32(a)
					}
					if op.endInv {
						n.FlushCopies()
					}
				}
				n.ReconcileCopies()
			}
		})
		if err := pr.CheckQuiescent(); err != nil {
			t.Fatalf("%v: %v", v, err)
		}
	}
}
