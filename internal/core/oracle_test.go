package core

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"lcm/internal/cost"
	"lcm/internal/memsys"
	"lcm/internal/tempest"
)

// This file checks LCM against an executable model of C** semantics (the
// "oracle"): for randomly generated phased programs, every read observed
// during execution and every committed value after reconciliation must
// match what the language definition prescribes —
//
//   - a read sees the value the reading invocation itself wrote earlier,
//     if any, and otherwise the pre-phase global value, never another
//     invocation's in-flight write;
//   - after ReconcileCopies, a written element holds the written value
//     (writes are kept disjoint across nodes, so the surviving value is
//     deterministic);
//   - disjoint writes never report conflicts.
//
// The generated programs interleave invocations, flushes and phases across
// nodes and elements arbitrarily, so this exercises mark/flush/commit
// paths far beyond the hand-written scenarios.

// oracleOp is one operation of a node's script.
type oracleOp struct {
	write bool
	elem  int
	val   uint32
	// endInv flushes after this op (ends the invocation).
	endInv bool
}

// oracleProgram is a full machine script.
type oracleProgram struct {
	phases [][][]oracleOp // phases[ph][node] = ops
	elems  int
}

// genProgram derives a deterministic random program from a seed using an
// LCG (testing/quick supplies the seeds).
func genProgram(seed uint64, p, elems, phases, opsPerPhase int) oracleProgram {
	x := seed
	next := func(mod int) int {
		x = x*6364136223846793005 + 1442695040888963407
		return int((x >> 33) % uint64(mod))
	}
	prog := oracleProgram{elems: elems}
	for ph := 0; ph < phases; ph++ {
		// Partition elements among nodes so writes are disjoint across
		// nodes, and give each element one value for the whole phase:
		// re-writes from later invocations of the same node then carry
		// the same value, which C** tolerates (identical modifications
		// are not a conflict), keeping the expected conflict count at
		// zero.  A *different* value from a later invocation would be a
		// genuine C** conflict — that behaviour is covered separately
		// by TestConflictingWritesOneSurvives.
		owner := make([]int, elems)
		phaseVal := make([]uint32, elems)
		for e := range owner {
			owner[e] = next(p)
			phaseVal[e] = uint32(next(1<<30) + 1)
		}
		nodeOps := make([][]oracleOp, p)
		for nd := 0; nd < p; nd++ {
			for k := 0; k < opsPerPhase; k++ {
				e := next(elems)
				if owner[e] == nd && next(2) == 0 {
					nodeOps[nd] = append(nodeOps[nd], oracleOp{
						write: true, elem: e,
						val:    phaseVal[e],
						endInv: next(3) == 0,
					})
				} else {
					nodeOps[nd] = append(nodeOps[nd], oracleOp{
						elem:   e,
						endInv: next(4) == 0,
					})
				}
			}
		}
		prog.phases = append(prog.phases, nodeOps)
	}
	return prog
}

// runOracle executes the program under the given variant and compares
// every observation against the model.  It returns an error describing the
// first divergence.
func runOracle(v Variant, prog oracleProgram) error {
	m := tempest.New(4, 32, cost.Default())
	r := m.AS.Alloc("data", uint64(prog.elems)*4, memsys.KindLCM, memsys.Interleaved)
	pr := New(v)
	m.SetProtocol(pr)
	m.Freeze()

	committed := make([]uint32, prog.elems) // model's global state
	var mu sync.Mutex
	var failures []string
	fail := func(format string, args ...any) {
		mu.Lock()
		failures = append(failures, fmt.Sprintf(format, args...))
		mu.Unlock()
	}

	m.Run(func(n *tempest.Node) {
		for ph := range prog.phases {
			ops := prog.phases[ph][n.ID]
			invWrites := map[int]uint32{} // this invocation's own writes
			for _, op := range ops {
				a := r.Base + memsys.Addr(op.elem*4)
				if op.write {
					n.WriteU32(a, op.val)
					invWrites[op.elem] = op.val
				} else {
					got := n.ReadU32(a)
					want, ok := invWrites[op.elem]
					if !ok {
						want = committed[op.elem] // pre-phase value
					}
					if got != want {
						fail("phase %d node %d read elem %d = %d, want %d",
							ph, n.ID, op.elem, got, want)
					}
				}
				if op.endInv {
					n.FlushCopies()
					invWrites = map[int]uint32{}
				}
			}
			n.ReconcileCopies()
			// Commit the model between barriers: node 0 folds this
			// phase's (disjoint) writes into the committed state.
			if n.ID == 0 {
				for nd := 0; nd < m.P; nd++ {
					for _, op := range prog.phases[ph][nd] {
						if op.write {
							committed[op.elem] = op.val
						}
					}
				}
			}
			n.Barrier()
		}
	})

	if len(failures) > 0 {
		return fmt.Errorf("%d divergences, first: %s", len(failures), failures[0])
	}
	// Final global state must equal the model exactly.
	for e := 0; e < prog.elems; e++ {
		a := r.Base + memsys.Addr(e*4)
		b := m.AS.Block(a)
		got := uint32(m.AS.HomeData(b)[a%32]) |
			uint32(m.AS.HomeData(b)[a%32+1])<<8 |
			uint32(m.AS.HomeData(b)[a%32+2])<<16 |
			uint32(m.AS.HomeData(b)[a%32+3])<<24
		if got != committed[e] {
			return fmt.Errorf("final elem %d = %d, want %d", e, got, committed[e])
		}
	}
	if c := m.Shared.Snapshot().WriteConflicts; c != 0 {
		return fmt.Errorf("disjoint writes reported %d conflicts", c)
	}
	return nil
}

func TestLCMMatchesCStarOracle(t *testing.T) {
	for _, v := range []Variant{SCC, MCC} {
		v := v
		t.Run(v.String(), func(t *testing.T) {
			f := func(seed uint64) bool {
				prog := genProgram(seed, 4, 48, 5, 24)
				if err := runOracle(v, prog); err != nil {
					t.Logf("seed %d: %v", seed, err)
					return false
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestLCMOracleLongProgram runs one long random program as a soak test.
func TestLCMOracleLongProgram(t *testing.T) {
	for _, v := range []Variant{SCC, MCC} {
		prog := genProgram(12345, 4, 96, 40, 80)
		if err := runOracle(v, prog); err != nil {
			t.Fatalf("%v: %v", v, err)
		}
	}
}
