// Reconciliation functions: the second program-controlled point of the RSM
// model (Section 3).  When a modified copy of a block returns to its home,
// the region's reconciliation function folds each modified element into the
// home's pending image.  The default Overwrite function implements C**'s
// "exactly one modified value survives" rule; the arithmetic reconcilers
// implement C** reduction assignments and the Section 7.1 global
// reductions; Func lets applications supply their own.
package core

import (
	"encoding/binary"
	"math"
)

// Reconciler folds one modified element of a returning copy into the
// pending reconciled image of the block at its home.
//
// Merge is called only for elements whose incoming value differs from the
// clean (pre-phase) value, element by element.  pending, incoming and clean
// are ElemSize-byte little-endian slices; pending initially equals clean.
// prior reports whether another returning copy already modified this
// element in the current phase.  Merge returns true when the call
// constitutes a write-write conflict (two copies wrote different values to
// an element whose policy allows only one writer).
type Reconciler interface {
	// ElemSize is the element granularity in bytes (4 or 8).
	ElemSize() uint32
	Merge(pending, incoming, clean []byte, prior bool) bool
}

// Overwrite is the C** default reconciliation: the value from one modifying
// invocation survives.  If two copies modified the same element with
// different values the program has a (semantically tolerated, but counted)
// conflict; the last returning copy wins, mirroring the paper's "exactly
// one modified value will be visible".
type Overwrite struct {
	// Elem is the element granularity in bytes; zero means 4.
	Elem uint32
}

// ElemSize implements Reconciler.
func (o Overwrite) ElemSize() uint32 {
	if o.Elem == 0 {
		return 4
	}
	return o.Elem
}

// Merge implements Reconciler.
func (o Overwrite) Merge(pending, incoming, _ []byte, prior bool) bool {
	conflict := false
	if prior {
		conflict = !equalBytes(pending, incoming)
	}
	copy(pending, incoming)
	return conflict
}

func equalBytes(a, b []byte) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// SumF32 reconciles by accumulating each copy's contribution
// (incoming - clean) into the pending value: the C** "%+=" reduction for
// single-precision data.
type SumF32 struct{}

// ElemSize implements Reconciler.
func (SumF32) ElemSize() uint32 { return 4 }

// Merge implements Reconciler.
func (SumF32) Merge(pending, incoming, clean []byte, _ bool) bool {
	p := math.Float32frombits(binary.LittleEndian.Uint32(pending))
	in := math.Float32frombits(binary.LittleEndian.Uint32(incoming))
	cl := math.Float32frombits(binary.LittleEndian.Uint32(clean))
	binary.LittleEndian.PutUint32(pending, math.Float32bits(p+(in-cl)))
	return false
}

// SumF64 is SumF32 for double-precision data.
type SumF64 struct{}

// ElemSize implements Reconciler.
func (SumF64) ElemSize() uint32 { return 8 }

// Merge implements Reconciler.
func (SumF64) Merge(pending, incoming, clean []byte, _ bool) bool {
	p := math.Float64frombits(binary.LittleEndian.Uint64(pending))
	in := math.Float64frombits(binary.LittleEndian.Uint64(incoming))
	cl := math.Float64frombits(binary.LittleEndian.Uint64(clean))
	binary.LittleEndian.PutUint64(pending, math.Float64bits(p+(in-cl)))
	return false
}

// SumI64 accumulates 64-bit integer contributions; exact, so it is also
// what the property tests use to check reduction reconciliation against a
// serial fold.
type SumI64 struct{}

// ElemSize implements Reconciler.
func (SumI64) ElemSize() uint32 { return 8 }

// Merge implements Reconciler.
func (SumI64) Merge(pending, incoming, clean []byte, _ bool) bool {
	p := int64(binary.LittleEndian.Uint64(pending))
	in := int64(binary.LittleEndian.Uint64(incoming))
	cl := int64(binary.LittleEndian.Uint64(clean))
	binary.LittleEndian.PutUint64(pending, uint64(p+(in-cl)))
	return false
}

// MinF64 reconciles with the minimum of all written values and the initial
// value (the C** "%<?=" style reduction).
type MinF64 struct{}

// ElemSize implements Reconciler.
func (MinF64) ElemSize() uint32 { return 8 }

// Merge implements Reconciler.
func (MinF64) Merge(pending, incoming, _ []byte, _ bool) bool {
	p := math.Float64frombits(binary.LittleEndian.Uint64(pending))
	in := math.Float64frombits(binary.LittleEndian.Uint64(incoming))
	if in < p {
		copy(pending, incoming)
	}
	return false
}

// MaxF64 reconciles with the maximum of all written values and the initial
// value.
type MaxF64 struct{}

// ElemSize implements Reconciler.
func (MaxF64) ElemSize() uint32 { return 8 }

// Merge implements Reconciler.
func (MaxF64) Merge(pending, incoming, _ []byte, _ bool) bool {
	p := math.Float64frombits(binary.LittleEndian.Uint64(pending))
	in := math.Float64frombits(binary.LittleEndian.Uint64(incoming))
	if in > p {
		copy(pending, incoming)
	}
	return false
}

// ProdF64 reconciles by multiplying contributions: pending *= incoming/clean.
// Clean values of zero contribute the incoming value directly.
type ProdF64 struct{}

// ElemSize implements Reconciler.
func (ProdF64) ElemSize() uint32 { return 8 }

// Merge implements Reconciler.
func (ProdF64) Merge(pending, incoming, clean []byte, _ bool) bool {
	p := math.Float64frombits(binary.LittleEndian.Uint64(pending))
	in := math.Float64frombits(binary.LittleEndian.Uint64(incoming))
	cl := math.Float64frombits(binary.LittleEndian.Uint64(clean))
	if cl == 0 {
		binary.LittleEndian.PutUint64(pending, math.Float64bits(in))
		return false
	}
	binary.LittleEndian.PutUint64(pending, math.Float64bits(p*(in/cl)))
	return false
}

// Func adapts an application-supplied merge function to the Reconciler
// interface, the fully general RSM reconciliation hook.
type Func struct {
	// Elem is the element granularity in bytes (4 or 8).
	Elem uint32
	// F folds incoming into pending given clean; it returns true to
	// report a conflict.  Semantics are otherwise identical to
	// Reconciler.Merge.
	F func(pending, incoming, clean []byte, prior bool) bool
}

// ElemSize implements Reconciler.
func (f Func) ElemSize() uint32 { return f.Elem }

// Merge implements Reconciler.
func (f Func) Merge(pending, incoming, clean []byte, prior bool) bool {
	return f.F(pending, incoming, clean, prior)
}
