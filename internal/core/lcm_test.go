package core

import (
	"testing"

	"lcm/internal/cost"
	"lcm/internal/memsys"
	"lcm/internal/tempest"
)

type testMachine struct {
	m    *tempest.Machine
	data *memsys.Region
	lcm  *LCM
}

func newLCMMachine(t *testing.T, v Variant, p int, blocks uint64, pol Policy) *testMachine {
	t.Helper()
	m := tempest.New(p, 32, cost.Default())
	r := m.AS.Alloc("data", blocks*32, memsys.KindLCM, memsys.Interleaved)
	if err := pol.ApplyTo(r); err != nil {
		t.Fatalf("ApplyTo: %v", err)
	}
	pr := New(v)
	m.SetProtocol(pr)
	m.Freeze()
	return &testMachine{m: m, data: r, lcm: pr}
}

// addr returns the address of 32-bit element i of the data region.
func (tm *testMachine) addr(i int) memsys.Addr { return tm.data.Base + memsys.Addr(i*4) }

func TestWritesArePrivateUntilReconcile(t *testing.T) {
	for _, v := range []Variant{SCC, MCC} {
		t.Run(v.String(), func(t *testing.T) {
			tm := newLCMMachine(t, v, 2, 4, LooselyCoherent())
			tm.m.Run(func(n *tempest.Node) {
				if n.ID == 0 {
					n.WriteU32(tm.addr(0), 111)
				}
				n.Barrier()
				// Node 1 must still see the pre-phase value: the
				// modification is private to node 0's invocation.
				if n.ID == 1 {
					if got := n.ReadU32(tm.addr(0)); got != 0 {
						t.Errorf("mid-phase read = %d, want 0", got)
					}
				}
				n.ReconcileCopies()
				// After reconciliation the write is globally visible.
				if got := n.ReadU32(tm.addr(0)); got != 111 {
					t.Errorf("node %d post-reconcile read = %d, want 111", n.ID, got)
				}
			})
		})
	}
}

func TestWriterSeesOwnWritesWithinInvocation(t *testing.T) {
	tm := newLCMMachine(t, MCC, 1, 4, LooselyCoherent())
	tm.m.Run(func(n *tempest.Node) {
		n.WriteU32(tm.addr(0), 5)
		if got := n.ReadU32(tm.addr(0)); got != 5 {
			t.Errorf("own write not visible: %d", got)
		}
	})
}

func TestFlushHidesWritesFromNextInvocation(t *testing.T) {
	// Section 5.1: "A subsequent read of one of these blocks returns its
	// original value from the clean copy."
	for _, v := range []Variant{SCC, MCC} {
		t.Run(v.String(), func(t *testing.T) {
			tm := newLCMMachine(t, v, 1, 4, LooselyCoherent())
			tm.m.Run(func(n *tempest.Node) {
				n.WriteU32(tm.addr(0), 7) // invocation 1
				n.FlushCopies()
				// Invocation 2 reads the ORIGINAL value.
				if got := n.ReadU32(tm.addr(0)); got != 0 {
					t.Errorf("post-flush read = %d, want 0", got)
				}
				n.ReconcileCopies()
				if got := n.ReadU32(tm.addr(0)); got != 7 {
					t.Errorf("post-reconcile read = %d, want 7", got)
				}
			})
		})
	}
}

func TestSCCFlushRefetchesButMCCDoesNot(t *testing.T) {
	// The central scc/mcc distinction: after a flush, re-marking the
	// same block costs scc a miss (fetch clean copy from home) and mcc
	// nothing (local clean copy).
	missOf := func(v Variant) (misses, marks int64) {
		tm := newLCMMachine(t, v, 2, 4, LooselyCoherent())
		tm.m.Run(func(n *tempest.Node) {
			if n.ID != 0 {
				n.ReconcileCopies()
				return
			}
			for i := 0; i < 10; i++ {
				n.WriteU32(tm.addr(i%8), uint32(i)) // same block
				n.FlushCopies()
			}
			n.ReconcileCopies()
		})
		c := tm.m.TotalCounters()
		return c.Misses, c.Marks
	}
	sccMiss, _ := missOf(SCC)
	mccMiss, _ := missOf(MCC)
	if sccMiss != 10 {
		t.Fatalf("scc misses = %d, want 10 (one refetch per flushed invocation)", sccMiss)
	}
	if mccMiss != 1 {
		t.Fatalf("mcc misses = %d, want 1 (clean copy satisfies re-marks)", mccMiss)
	}
}

func TestCleanCopyCounters(t *testing.T) {
	// One block written by two nodes in one phase: one home clean copy;
	// mcc additionally one local clean copy per marking node.
	for _, tc := range []struct {
		v           Variant
		home, local int64
	}{{SCC, 1, 0}, {MCC, 1, 2}} {
		t.Run(tc.v.String(), func(t *testing.T) {
			tm := newLCMMachine(t, tc.v, 2, 4, LooselyCoherent())
			tm.m.Run(func(n *tempest.Node) {
				n.WriteU32(tm.addr(n.ID), uint32(n.ID+1))
				n.ReconcileCopies()
			})
			s := tm.m.Shared.Snapshot()
			if s.CleanCopiesHome != tc.home || s.CleanCopiesLocal != tc.local {
				t.Fatalf("clean copies home=%d local=%d, want %d/%d",
					s.CleanCopiesHome, s.CleanCopiesLocal, tc.home, tc.local)
			}
		})
	}
}

func TestDisjointWritesMergeWithoutConflict(t *testing.T) {
	// Two nodes modify different elements of the same block; both values
	// must survive reconciliation (fine-grain merge, not block
	// overwrite), with no conflict recorded.
	tm := newLCMMachine(t, MCC, 2, 4, LooselyCoherent())
	tm.m.Run(func(n *tempest.Node) {
		n.WriteU32(tm.addr(n.ID), uint32(100+n.ID))
		n.ReconcileCopies()
		if got := n.ReadU32(tm.addr(0)); got != 100 {
			t.Errorf("elem 0 = %d, want 100", got)
		}
		if got := n.ReadU32(tm.addr(1)); got != 101 {
			t.Errorf("elem 1 = %d, want 101", got)
		}
	})
	if s := tm.m.Shared.Snapshot(); s.WriteConflicts != 0 {
		t.Fatalf("conflicts = %d, want 0", s.WriteConflicts)
	}
}

func TestConflictingWritesOneSurvives(t *testing.T) {
	// C**: "if two or more invocations modify the same location, exactly
	// one modified value will be visible after this merge."
	tm := newLCMMachine(t, MCC, 3, 4, LooselyCoherent())
	tm.m.Run(func(n *tempest.Node) {
		n.WriteU32(tm.addr(0), uint32(n.ID+1))
		n.ReconcileCopies()
		got := n.ReadU32(tm.addr(0))
		if got != 1 && got != 2 && got != 3 {
			t.Errorf("merged value %d is none of the written values", got)
		}
	})
	if s := tm.m.Shared.Snapshot(); s.WriteConflicts < 1 {
		t.Fatalf("conflicts = %d, want >= 1", s.WriteConflicts)
	}
}

func TestUnmodifiedReadCopiesSurviveReconcile(t *testing.T) {
	// Threshold's key behaviour: reconciliation invalidates outstanding
	// copies of MODIFIED blocks only; untouched read-only copies stay.
	tm := newLCMMachine(t, MCC, 2, 8, LooselyCoherent())
	tm.m.Run(func(n *tempest.Node) {
		n.ReadU32(tm.addr(0))  // block 0: read by everyone
		n.ReadU32(tm.addr(63)) // block 7 (elem 63 = block 7): read-only
		n.Barrier()
		if n.ID == 0 {
			n.WriteU32(tm.addr(1), 9) // modify block 0 only
		}
		n.ReconcileCopies()
		// Re-reads: block 7 must hit (copy survived), block 0 must miss.
		before := n.Ctr.Misses
		n.ReadU32(tm.addr(63))
		if n.Ctr.Misses != before {
			t.Errorf("node %d: unmodified block was invalidated", n.ID)
		}
		before = n.Ctr.Misses
		n.ReadU32(tm.addr(0))
		if n.Ctr.Misses != before+1 {
			t.Errorf("node %d: modified block copy not invalidated", n.ID)
		}
	})
}

func TestReductionRegionSums(t *testing.T) {
	// Section 7.1: reconciliation implements a global sum.
	m := tempest.New(4, 32, cost.Default())
	r := m.AS.Alloc("total", 8, memsys.KindLCM, memsys.SingleHome)
	if err := Reduction(SumI64{}).ApplyTo(r); err != nil {
		t.Fatalf("ApplyTo: %v", err)
	}
	pr := New(MCC)
	m.SetProtocol(pr)
	m.Freeze()
	m.Run(func(n *tempest.Node) {
		// Each node accumulates locally over several "invocations",
		// flushing between them as the compiler would.
		for i := 0; i < 5; i++ {
			v := n.ReadI64(r.Base)
			n.WriteI64(r.Base, v+int64(n.ID+1))
			n.FlushCopies()
		}
		n.ReconcileCopies()
		want := int64(5 * (1 + 2 + 3 + 4))
		if got := n.ReadI64(r.Base); got != want {
			t.Errorf("node %d total = %d, want %d", n.ID, got, want)
		}
	})
	if s := m.Shared.Snapshot(); s.WriteConflicts != 0 {
		t.Fatalf("reduction reported %d conflicts", s.WriteConflicts)
	}
}

func TestCoherentRegionFallsThroughToStache(t *testing.T) {
	m := tempest.New(2, 32, cost.Default())
	lcmR := m.AS.Alloc("lcm", 32, memsys.KindLCM, memsys.Interleaved)
	cohR := m.AS.Alloc("coh", 32, memsys.KindCoherent, memsys.Interleaved)
	pr := New(MCC)
	m.SetProtocol(pr)
	m.Freeze()
	m.Run(func(n *tempest.Node) {
		if n.ID == 0 {
			n.WriteU32(cohR.Base, 77) // coherent: sequentially consistent
			n.WriteU32(lcmR.Base, 88) // loose: private
		}
		n.Barrier()
		if n.ID == 1 {
			// Coherent write is immediately visible via the protocol.
			if got := n.ReadU32(cohR.Base); got != 77 {
				t.Errorf("coherent read = %d, want 77", got)
			}
			// Loose write is not.
			if got := n.ReadU32(lcmR.Base); got != 0 {
				t.Errorf("loose read = %d, want 0", got)
			}
		}
		n.ReconcileCopies()
		if got := n.ReadU32(lcmR.Base); got != 88 {
			t.Errorf("node %d post-reconcile = %d, want 88", n.ID, got)
		}
	})
}

func TestWriteWriteConflictDetection(t *testing.T) {
	tm := newLCMMachine(t, MCC, 2, 4, Detect(false))
	tm.m.Run(func(n *tempest.Node) {
		n.WriteU32(tm.addr(0), uint32(10+n.ID)) // same element, different values
		n.ReconcileCopies()
	})
	cs := tm.lcm.Conflicts()
	if len(cs) == 0 {
		t.Fatal("no conflicts detected")
	}
	if cs[0].Kind != WriteWrite || cs[0].Elem != 0 {
		t.Fatalf("conflict = %+v", cs[0])
	}
	if cs[0].Region != "data" {
		t.Fatalf("conflict region = %q", cs[0].Region)
	}
}

func TestReadWriteConflictDetection(t *testing.T) {
	tm := newLCMMachine(t, MCC, 2, 4, Detect(true))
	tm.m.Run(func(n *tempest.Node) {
		if n.ID == 0 {
			_ = n.ReadU32(tm.addr(0)) // reader
		} else {
			n.WriteU32(tm.addr(1), 5) // writer, same block
		}
		n.ReconcileCopies()
	})
	found := false
	for _, c := range tm.lcm.Conflicts() {
		if c.Kind == ReadWrite {
			found = true
		}
	}
	if !found {
		t.Fatal("read-write conflict not detected")
	}
	if got := tm.m.Shared.Snapshot().ReadWriteConflicts; got != 1 {
		t.Fatalf("ReadWriteConflicts = %d, want 1", got)
	}
}

func TestFlushReadsCatchesSecondPhaseViolation(t *testing.T) {
	// Without FlushReads, a retained read-only copy from phase 1 hides a
	// phase-2 read-write violation; with it, the read faults again.
	run := func(actual bool) int64 {
		tm := newLCMMachine(t, MCC, 2, 4, Detect(actual))
		tm.m.Run(func(n *tempest.Node) {
			if n.ID == 0 {
				_ = n.ReadU32(tm.addr(0)) // phase 1: read only
			}
			n.ReconcileCopies()
			if n.ID == 0 {
				_ = n.ReadU32(tm.addr(0)) // phase 2: read again
			} else {
				n.WriteU32(tm.addr(1), 3) // phase 2: write same block
			}
			n.ReconcileCopies()
		})
		return tm.m.Shared.Snapshot().ReadWriteConflicts
	}
	if got := run(false); got != 0 {
		t.Fatalf("potential mode flagged %d violations, want 0 (read did not fault)", got)
	}
	if got := run(true); got != 1 {
		t.Fatalf("actual mode flagged %d violations, want 1", got)
	}
}

func TestStaleDataPolicy(t *testing.T) {
	// Section 7.5: a consumer's copy survives producer updates for
	// StalePhases reconciliations, then is refreshed.
	m := tempest.New(2, 32, cost.Default())
	r := m.AS.Alloc("field", 32, memsys.KindLCM, memsys.SingleHome)
	if err := Stale(2).ApplyTo(r); err != nil {
		t.Fatalf("ApplyTo: %v", err)
	}
	pr := New(MCC)
	m.SetProtocol(pr)
	m.Freeze()
	m.Run(func(n *tempest.Node) {
		if n.ID == 1 {
			_ = n.ReadU32(r.Base) // consumer caches value 0
		}
		n.Barrier()
		var got [4]uint32
		for ph := 0; ph < 4; ph++ {
			if n.ID == 0 {
				n.WriteU32(r.Base, uint32(ph+1)) // producer updates
			}
			n.ReconcileCopies()
			if n.ID == 1 {
				got[ph] = n.ReadU32(r.Base)
			}
		}
		if n.ID == 1 {
			// The copy survives up to StalePhases commits, then is
			// refreshed: the consumer's value may lag the producer's
			// by at most 2 phases, and the first reads must actually
			// be stale (or keeping copies bought nothing).
			if got != [4]uint32{0, 0, 3, 3} {
				t.Errorf("stale read sequence = %v, want [0 0 3 3]", got)
			}
			for ph, v := range got {
				latest := uint32(ph + 1)
				if v > latest || latest-v > 2 {
					t.Errorf("phase %d read %d lags more than StalePhases behind %d", ph+1, v, latest)
				}
			}
		}
	})
}

func TestReconcilePhaseAdvances(t *testing.T) {
	tm := newLCMMachine(t, MCC, 2, 4, LooselyCoherent())
	if tm.lcm.Phase() != 1 {
		t.Fatalf("initial phase = %d", tm.lcm.Phase())
	}
	tm.m.Run(func(n *tempest.Node) {
		n.ReconcileCopies()
		n.ReconcileCopies()
	})
	if tm.lcm.Phase() != 3 {
		t.Fatalf("phase = %d, want 3", tm.lcm.Phase())
	}
}

func TestExplicitMarkDirective(t *testing.T) {
	// The compiler may mark before writing; the write then proceeds
	// without a second fault.
	tm := newLCMMachine(t, MCC, 1, 4, LooselyCoherent())
	tm.m.Run(func(n *tempest.Node) {
		n.Mark(tm.addr(0))
		before := n.Ctr.Marks
		n.WriteU32(tm.addr(0), 1) // no fault: already private
		if n.Ctr.Marks != before {
			t.Error("write after mark re-marked")
		}
		n.ReconcileCopies()
		if got := n.ReadU32(tm.addr(0)); got != 1 {
			t.Errorf("value = %d", got)
		}
	})
}

func TestMultiPhaseConvergence(t *testing.T) {
	// A two-node iterative computation: each phase, each node updates
	// its own element reading the other's pre-phase value.  The result
	// must match a sequential two-array execution exactly — this is the
	// C** semantics LCM exists to provide.
	tm := newLCMMachine(t, MCC, 2, 2, LooselyCoherent())
	a0, a1 := tm.addr(0), tm.addr(8) // elements in different blocks
	var got [2]uint32
	tm.m.Run(func(n *tempest.Node) {
		mine, theirs := a0, a1
		if n.ID == 1 {
			mine, theirs = theirs, mine
		}
		if n.ID == 0 {
			n.WriteU32(a0, 1)
			n.WriteU32(a1, 2)
		}
		n.ReconcileCopies()
		for it := 0; it < 5; it++ {
			v := n.ReadU32(mine) + n.ReadU32(theirs)
			n.WriteU32(mine, v)
			n.ReconcileCopies()
		}
		if n.ID == 0 {
			got[0] = n.ReadU32(a0)
			got[1] = n.ReadU32(a1)
		}
	})
	seq := [2]uint32{1, 2}
	for it := 0; it < 5; it++ {
		seq[0], seq[1] = seq[0]+seq[1], seq[1]+seq[0]
	}
	if got != seq {
		t.Fatalf("parallel result %v != sequential %v", got, seq)
	}
}

func TestValueEqualWritesDetectedInCheckedRegions(t *testing.T) {
	// Footnote 2 semantics: conflict detection works at store
	// granularity, so two processors storing the SAME value to one
	// element is still a violation in a checked region (but merges
	// silently in a plain loose region, where only value diffs matter).
	for _, tc := range []struct {
		pol       Policy
		conflicts int64
	}{
		{LooselyCoherent(), 0}, // diff-based: same value, no conflict
		{Detect(false), 1},     // store-based: flagged
	} {
		tm := newLCMMachine(t, MCC, 2, 4, tc.pol)
		tm.m.Run(func(n *tempest.Node) {
			n.WriteU32(tm.addr(0), 77) // both nodes write the same value
			n.ReconcileCopies()
			if got := n.ReadU32(tm.addr(0)); got != 77 {
				t.Errorf("merged value %d", got)
			}
		})
		if got := tm.m.Shared.Snapshot().WriteConflicts; got != tc.conflicts {
			t.Fatalf("policy %+v: conflicts = %d, want %d", tc.pol, got, tc.conflicts)
		}
	}
}

func TestUnchangedValueStoreDetected(t *testing.T) {
	// A store of the value already present is invisible to a diff but
	// must count as a modification in a checked region.
	tm := newLCMMachine(t, SCC, 2, 4, Detect(false))
	tm.m.AS.HomeBytes(tm.addr(0), 4)[0] = 5
	tm.m.Run(func(n *tempest.Node) {
		if n.ID == 0 {
			n.WriteU32(tm.addr(0), 5) // same as clean value
		} else {
			n.WriteU32(tm.addr(0), 6)
		}
		n.ReconcileCopies()
	})
	if got := tm.m.Shared.Snapshot().WriteConflicts; got != 1 {
		t.Fatalf("conflicts = %d, want 1 (store-granularity)", got)
	}
}
