package core

import (
	"fmt"

	"lcm/internal/memsys"
)

// Policy bundles the two program-controlled points of the RSM model for a
// memory region: the request policy (selected by Kind and StalePhases) and
// the reconciliation function.  The compiler — or, in this library, the C**
// runtime and the application — attaches a Policy to each region it
// allocates; this is the "memory system directive ... for a region of
// memory" of Section 3.
type Policy struct {
	// Kind selects the request policy family.
	Kind memsys.Kind
	// Reconciler combines returning copies; nil selects the kind's
	// default (Overwrite for LCM and stale regions).
	Reconciler Reconciler
	// ConflictCheck enables semantic-violation detection for the region
	// (Sections 7.2/7.3): multiple writers of an element and read/write
	// copy co-existence are recorded at reconcile time.
	//
	// Detection is diff-based (modified words are found by comparing a
	// returning copy against the clean value), so a processor that
	// stores a value equal to the old one is not seen as a writer.  The
	// paper's footnote 2 sketches a store-trapping alternative that
	// would catch those too, at the cost of a trap per first store per
	// word.
	ConflictCheck bool
	// FlushReads, with ConflictCheck, invalidates all read-only copies
	// of the region at every reconciliation so that every phase's reads
	// fault and are observed; this upgrades "potential" violation
	// detection to "actual" detection at extra cost, exactly the
	// trade-off the paper describes.
	FlushReads bool
	// StalePhases is, for KindStale regions, how many reconcile phases a
	// consumer's read-only copy may outlive a producer update before the
	// memory system forcibly refreshes it (Section 7.5).
	StalePhases int
}

// Coherent is the default sequentially consistent policy.
func Coherent() Policy { return Policy{Kind: memsys.KindCoherent} }

// LooselyCoherent is the C** parallel-function policy: copy-on-write with
// one surviving value per modified element.
func LooselyCoherent() Policy { return Policy{Kind: memsys.KindLCM} }

// Reduction is a loosely coherent policy whose reconciliation combines
// contributions with the given reconciler (for example SumF64).
func Reduction(rec Reconciler) Policy {
	return Policy{Kind: memsys.KindReduction, Reconciler: rec}
}

// Detect is LooselyCoherent plus semantic-violation detection.  actual
// selects actual-violation mode (read-only copies flushed every phase).
func Detect(actual bool) Policy {
	return Policy{Kind: memsys.KindLCM, ConflictCheck: true, FlushReads: actual}
}

// Stale allows consumers to keep read-only copies for up to phases
// reconciliations after a producer update before being refreshed.
func Stale(phases int) Policy {
	return Policy{Kind: memsys.KindStale, StalePhases: phases}
}

// Validate checks internal consistency.
func (pol Policy) Validate() error {
	if pol.Kind == memsys.KindReduction && pol.Reconciler == nil {
		return fmt.Errorf("core: reduction policy requires a reconciler")
	}
	if pol.StalePhases < 0 {
		return fmt.Errorf("core: negative StalePhases %d", pol.StalePhases)
	}
	if pol.StalePhases > 0 && pol.Kind != memsys.KindStale {
		return fmt.Errorf("core: StalePhases set on non-stale kind %v", pol.Kind)
	}
	if pol.FlushReads && !pol.ConflictCheck {
		return fmt.Errorf("core: FlushReads requires ConflictCheck")
	}
	if pol.ConflictCheck && pol.Kind == memsys.KindReduction {
		return fmt.Errorf("core: reductions combine contributions by design; ConflictCheck would flag every second contributor")
	}
	return nil
}

// ApplyTo stamps the policy onto a region.  Must be called before the
// machine freezes.  An invalid policy is reported as an error and leaves
// the region untouched; callers surface it through the machine's config
// ledger (Machine.RecordConfigError) so Freeze/Run fail with it instead
// of crashing the process at allocation time.
func (pol Policy) ApplyTo(r *memsys.Region) error {
	if err := pol.Validate(); err != nil {
		return err
	}
	r.Kind = pol.Kind
	if pol.Reconciler != nil {
		r.Reconciler = pol.Reconciler
	}
	r.ConflictCheck = pol.ConflictCheck
	r.FlushReads = pol.FlushReads
	r.StalePhases = pol.StalePhases
	return nil
}
