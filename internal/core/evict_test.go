package core

import (
	"testing"

	"lcm/internal/cost"
	"lcm/internal/memsys"
	"lcm/internal/tempest"
)

func TestEvictionRefusesPrivateCopies(t *testing.T) {
	// The paper's Stache exists so "a processor's locally modified
	// (inconsistent) blocks are not lost by being flushed to their home
	// node": an LCM private copy must survive capacity pressure.
	m := tempest.New(1, 32, cost.Default())
	r := m.AS.Alloc("d", 32*16, memsys.KindLCM, memsys.Interleaved)
	pr := New(MCC)
	m.SetProtocol(pr)
	m.Freeze()
	m.CacheLines = 2
	m.Run(func(n *tempest.Node) {
		n.WriteU32(r.Base, 99) // private-modified block 0
		// Heavy read pressure tries to push it out.
		for i := 1; i < 10; i++ {
			n.ReadU32(r.Base + memsys.Addr(i*32))
		}
		b0 := m.AS.Block(r.Base)
		l := n.Line(b0)
		if l == nil || l.Tag() != tempest.TagPrivate {
			t.Error("private copy was evicted")
		}
		if got := n.ReadU32(r.Base); got != 99 {
			t.Errorf("private value lost: %d", got)
		}
		n.ReconcileCopies()
		if got := n.ReadU32(r.Base); got != 99 {
			t.Errorf("reconciled value %d, want 99", got)
		}
	})
}

func TestEvictionDropsReadOnlyLCMCopies(t *testing.T) {
	m := tempest.New(2, 32, cost.Default())
	r := m.AS.Alloc("d", 32*16, memsys.KindLCM, memsys.Interleaved)
	pr := New(MCC)
	m.SetProtocol(pr)
	m.Freeze()
	m.CacheLines = 2
	m.Run(func(n *tempest.Node) {
		if n.ID == 0 {
			for i := 0; i < 10; i++ {
				n.ReadU32(r.Base + memsys.Addr(i*32))
			}
			if n.Ctr.Evictions == 0 {
				t.Error("read-only copies were not evicted under pressure")
			}
		}
		n.ReconcileCopies()
	})
}

func TestLimitedCacheStillCorrect(t *testing.T) {
	// The multi-phase convergence computation must produce identical
	// results with a tiny cache (correctness is capacity-independent).
	run := func(lines int) uint32 {
		m := tempest.New(2, 32, cost.Default())
		r := m.AS.Alloc("d", 32*8, memsys.KindLCM, memsys.Interleaved)
		m.SetProtocol(New(MCC))
		m.Freeze()
		m.CacheLines = lines
		var out uint32
		m.Run(func(n *tempest.Node) {
			mine := r.Base + memsys.Addr(n.ID*32)
			theirs := r.Base + memsys.Addr((1-n.ID)*32)
			if n.ID == 0 {
				n.WriteU32(mine, 1)
				n.WriteU32(theirs, 2)
			}
			n.ReconcileCopies()
			for it := 0; it < 6; it++ {
				v := n.ReadU32(mine) + n.ReadU32(theirs)
				// Touch other blocks to create pressure.
				for i := 2; i < 8; i++ {
					_ = n.ReadU32(r.Base + memsys.Addr(i*32))
				}
				n.WriteU32(mine, v)
				n.ReconcileCopies()
			}
			if n.ID == 0 {
				out = n.ReadU32(mine)
			}
			n.Barrier()
		})
		return out
	}
	unbounded := run(0)
	tiny := run(2)
	if unbounded != tiny {
		t.Fatalf("capacity changed the answer: %d vs %d", unbounded, tiny)
	}
	if unbounded == 0 {
		t.Fatal("computation produced nothing")
	}
}
