package core

import (
	"testing"

	"lcm/internal/cost"
	"lcm/internal/memsys"
	"lcm/internal/tempest"
)

// Micro-benchmarks of the LCM protocol primitives, in host wall-clock time
// (simulated cycles are constant per operation).  They bound the real cost
// of running the simulator itself, which matters for full-scale runs.

func benchMachine(b *testing.B, v Variant, blocks uint64) (*tempest.Machine, *memsys.Region) {
	b.Helper()
	m := tempest.New(2, 32, cost.Default())
	r := m.AS.Alloc("data", blocks*32, memsys.KindLCM, memsys.Interleaved)
	m.SetProtocol(New(v))
	m.Freeze()
	return m, r
}

// BenchmarkHitLoad measures the tag-check fast path.
func BenchmarkHitLoad(b *testing.B) {
	m, r := benchMachine(b, MCC, 4)
	m.Run(func(n *tempest.Node) {
		if n.ID != 0 {
			return
		}
		_ = n.ReadU32(r.Base) // install
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = n.ReadU32(r.Base)
		}
	})
}

// BenchmarkPrivateStore measures a store to an already-private copy.
func BenchmarkPrivateStore(b *testing.B) {
	m, r := benchMachine(b, MCC, 4)
	m.Run(func(n *tempest.Node) {
		if n.ID != 0 {
			return
		}
		n.WriteU32(r.Base, 1) // mark
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			n.WriteU32(r.Base, uint32(i))
		}
	})
}

// BenchmarkMarkFlushCycle measures the mcc per-invocation mark+flush pair,
// the inner loop of every LCM workload.
func BenchmarkMarkFlushCycle(b *testing.B) {
	m, r := benchMachine(b, MCC, 4)
	m.Run(func(n *tempest.Node) {
		if n.ID != 0 {
			return
		}
		n.WriteU32(r.Base, 1)
		n.FlushCopies()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			n.WriteU32(r.Base, uint32(i))
			n.FlushCopies()
		}
	})
}

// BenchmarkReconcilePhase measures a full two-node reconciliation over 64
// modified blocks.
func BenchmarkReconcilePhase(b *testing.B) {
	m, r := benchMachine(b, MCC, 64)
	m.Run(func(n *tempest.Node) {
		for i := 0; i < b.N; i++ {
			for blk := 0; blk < 32; blk++ {
				idx := (blk*2 + n.ID) * 8
				n.WriteU32(r.Base+memsys.Addr(idx*4), uint32(i))
			}
			n.ReconcileCopies()
		}
	})
}

// BenchmarkOracleProgram runs a whole random phased program per iteration
// (end-to-end protocol throughput).
func BenchmarkOracleProgram(b *testing.B) {
	prog := genProgram(42, 4, 64, 4, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := runOracle(MCC, prog); err != nil {
			b.Fatal(err)
		}
	}
}
