// Package cstar is a Go-embedded runtime for the C** large-grain
// data-parallel programming model of Section 4, targeted at the simulated
// Tempest machine.
//
// C** applies a parallel function to an aggregate; each element's
// invocation executes "atomically and simultaneously": modifications are
// private to the invocation and become globally visible only when the
// parallel call completes and all private modifications merge into a new
// global state.  Reduction assignments (%+= and friends) combine values
// written to one location with an associative operator.
//
// The paper's C** compiler lowers a parallel function in one of two ways:
//
//   - LCM mode: emit the function body unchanged and insert memory-system
//     directives (MarkModification / FlushCopies / ReconcileCopies); the
//     memory system implements the semantics by fine-grain copy-on-write.
//   - Copying mode: generate conventional code for the Stache protocol
//     that explicitly maintains two copies of the data (reads from the old
//     copy, writes to the new, pointer swap at the end), plus per-node
//     partial accumulators for reductions.
//
// This package plays the compiler's role: Lower maps a summary of the
// function's access behaviour to a Plan, schedulers partition invocations
// over nodes (statically or dynamically, the paper's "-stat" and "-dyn"
// variants), and the aggregate types route every element access through
// the simulated machine's tagged load/store path so the active protocol
// observes exactly the access stream a compiled C** program would
// generate.
package cstar

import (
	"fmt"

	"lcm/internal/tempest"
)

// System identifies which memory system a workload instance targets.
type System uint8

const (
	// Copying: Stache protocol with compiler-generated explicit copying.
	Copying System = iota
	// LCMscc: LCM with a single clean copy at home.
	LCMscc
	// LCMmcc: LCM with clean copies at every marking processor.
	LCMmcc
)

func (s System) String() string {
	switch s {
	case Copying:
		return "copying"
	case LCMscc:
		return "lcm-scc"
	case LCMmcc:
		return "lcm-mcc"
	default:
		return fmt.Sprintf("System(%d)", uint8(s))
	}
}

// IsLCM reports whether the system uses the LCM protocol.
func (s System) IsLCM() bool { return s == LCMscc || s == LCMmcc }

// Mode is the lowering strategy chosen by the compiler for one parallel
// function.
type Mode uint8

const (
	// ModeLCM relies on the memory system (copy-on-write + reconcile).
	ModeLCM Mode = iota
	// ModeCopying uses explicit two-copy code on coherent memory.
	ModeCopying
)

func (m Mode) String() string {
	if m == ModeCopying {
		return "copying"
	}
	return "lcm"
}

// AccessSummary is what C** compiler analysis extracts from a parallel
// function body (Section 6: "Compiler analysis easily detects this
// potential conflict...").
type AccessSummary struct {
	// WritesOwnElementOnly: every invocation writes only the element it
	// was invoked on.
	WritesOwnElementOnly bool
	// ReadsSharedData: invocations read locations other invocations may
	// write (e.g. neighbouring elements).
	ReadsSharedData bool
	// DynamicStructure: the write set depends on run-time data (pointer
	// chasing, adaptive refinement) and cannot be analyzed statically.
	DynamicStructure bool
	// HasReduction: the body contains reduction assignments.
	HasReduction bool
}

// Plan is the lowered implementation strategy.
type Plan struct {
	Mode Mode
	// FlushBetweenInvocations: the compiler could not prove distinct
	// invocations on one processor access disjoint locations, so a
	// FlushCopies directive separates them (Section 5.1).
	FlushBetweenInvocations bool
}

// Lower plays the compiler: choose a plan for a parallel function with the
// given access behaviour on the given memory system.  On a coherent-only
// system the only correct lowering is explicit copying; under LCM the
// directives implement the semantics directly.
func Lower(sum AccessSummary, sys System) Plan {
	if !sys.IsLCM() {
		return Plan{Mode: ModeCopying}
	}
	flush := sum.ReadsSharedData || sum.DynamicStructure || sum.HasReduction ||
		!sum.WritesOwnElementOnly
	return Plan{Mode: ModeLCM, FlushBetweenInvocations: flush}
}

// Scheduler partitions an index space across nodes, possibly differently
// each iteration.
type Scheduler interface {
	Name() string
	// Range returns the half-open index range node executes during
	// iteration iter of a total-element parallel call.
	Range(node, p, iter, total int) (lo, hi int)
}

// StaticSchedule partitions once: node i always owns the i-th contiguous
// chunk (the paper's "-stat" variants, which let Stache keep chunk
// interiors local across iterations).
type StaticSchedule struct{}

// Name implements Scheduler.
func (StaticSchedule) Name() string { return "static" }

// Range implements Scheduler.
func (StaticSchedule) Range(node, p, _, total int) (int, int) {
	return chunk(node, p, total)
}

// RotatingSchedule re-partitions every iteration, assigning node i chunk
// (i+iter) mod p.  It models the paper's dynamically partitioned variants:
// each iteration a processor works on a different part of the aggregate,
// so protocols that rely on repeatable placement lose their locality.
type RotatingSchedule struct{}

// Name implements Scheduler.
func (RotatingSchedule) Name() string { return "dynamic" }

// Range implements Scheduler.
func (RotatingSchedule) Range(node, p, iter, total int) (int, int) {
	return chunk((node+iter)%p, p, total)
}

// chunk splits total into p nearly equal contiguous ranges.
func chunk(i, p, total int) (int, int) {
	per := (total + p - 1) / p
	lo := i * per
	hi := lo + per
	if lo > total {
		lo = total
	}
	if hi > total {
		hi = total
	}
	return lo, hi
}

// ForEach runs one parallel call's invocations assigned to node n by sched
// for iteration iter: body(idx) for each index, separated by FlushCopies
// when the plan requires it.  The caller ends the parallel call with
// EndParallel (all nodes must).
func ForEach(n *tempest.Node, sched Scheduler, plan Plan, iter, total int, body func(idx int)) {
	lo, hi := sched.Range(n.ID, n.M.P, iter, total)
	for idx := lo; idx < hi; idx++ {
		body(idx)
		if plan.FlushBetweenInvocations && plan.Mode == ModeLCM {
			n.FlushCopies()
		}
	}
}

// EndParallel completes a parallel call: under LCM it reconciles all
// private copies into the new global state; under explicit copying it is
// the barrier after which the program swaps its two copies.  Every node
// must call it.
func EndParallel(n *tempest.Node) { n.ReconcileCopies() }
