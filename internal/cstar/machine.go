package cstar

import (
	"lcm/internal/core"
	"lcm/internal/cost"
	"lcm/internal/stache"
	"lcm/internal/tempest"
)

// NewProtocol returns the coherence protocol implementing sys.
func NewProtocol(sys System) tempest.Protocol {
	switch sys {
	case LCMscc:
		return core.New(core.SCC)
	case LCMmcc:
		return core.New(core.MCC)
	default:
		return stache.New()
	}
}

// NewMachine builds a simulated machine with the protocol matching sys.
// The caller allocates aggregates and then calls Freeze on the machine.
func NewMachine(p int, blockSize uint32, cm cost.Model, sys System) *tempest.Machine {
	m := tempest.New(p, blockSize, cm)
	m.SetProtocol(NewProtocol(sys))
	return m
}

// DataPolicy returns the memory policy a C** compiler gives the shared
// aggregate data of a parallel function under sys: loosely coherent under
// LCM, plain coherent under the Copying baseline.
func DataPolicy(sys System) core.Policy {
	if sys.IsLCM() {
		return core.LooselyCoherent()
	}
	return core.Coherent()
}

// DrainToHome flushes dirty cached copies to home images for sequential
// verification, whatever the machine's protocol.
func DrainToHome(m *tempest.Machine) {
	switch p := m.Protocol().(type) {
	case *core.LCM:
		p.DrainToHome()
	case *stache.Protocol:
		p.DrainToHome()
	}
}
