package cstar

import (
	"math"

	"lcm/internal/core"
	"lcm/internal/memsys"
	"lcm/internal/tempest"
)

// ReduceOp selects the combining operator of a reduction variable.
type ReduceOp uint8

// Reduction operators.
const (
	// OpSum combines with addition (the C** "%+=" assignment).
	OpSum ReduceOp = iota
	// OpMin keeps the minimum ("%min=" / "%<?=" style).
	OpMin
	// OpMax keeps the maximum ("%max=").
	OpMax
)

// identity returns the operator's identity element.
func (op ReduceOp) identity() float64 {
	switch op {
	case OpMin:
		return math.Inf(1)
	case OpMax:
		return math.Inf(-1)
	default:
		return 0
	}
}

// fold combines two values.
func (op ReduceOp) fold(a, b float64) float64 {
	switch op {
	case OpMin:
		return math.Min(a, b)
	case OpMax:
		return math.Max(a, b)
	default:
		return a + b
	}
}

// reconciler returns the RSM reconciliation function implementing op.
func (op ReduceOp) reconciler() core.Reconciler {
	switch op {
	case OpMin:
		return core.MinF64{}
	case OpMax:
		return core.MaxF64{}
	default:
		return core.SumF64{}
	}
}

// ReduceF64 is a C** reduction variable: "total %+= expr" combines the
// values written by all invocations with an associative operator and
// leaves the result in the variable.
//
// Under LCM the variable lives in a reduction-policy region: each node's
// private copy accumulates locally and the RSM reconciliation function
// combines the contributions at ReconcileCopies — no extra compiler
// analysis, no extra data structures (Section 7.1).
//
// Under the Copying baseline the runtime emits what a programmer (or
// conventional compiler) would write instead: per-node partial sums in
// node-exclusive scratch blocks, combined by node 0 after the barrier.
type ReduceF64 struct {
	sys     System
	op      ReduceOp
	total   *VectorF64
	scratch *VectorF64 // Copying mode: one block-strided slot per node
}

// scratchStride is the element distance between per-node slots; with
// 8-byte elements and 32-byte blocks a stride of 4 gives each node its own
// block, so partials never false-share.
const scratchStride = 4

// NewReduceF64 allocates a sum-reduction variable for the given system.
func NewReduceF64(m *tempest.Machine, name string, sys System) *ReduceF64 {
	return NewReduceF64Op(m, name, sys, OpSum)
}

// NewReduceF64Op allocates a reduction variable with the given operator.
// Non-sum reductions start at the operator's identity; initialize the
// home image differently with Var().Poke before running if needed.
func NewReduceF64Op(m *tempest.Machine, name string, sys System, op ReduceOp) *ReduceF64 {
	r := &ReduceF64{sys: sys, op: op}
	if sys.IsLCM() {
		r.total = NewVectorF64(m, name, 1, core.Reduction(op.reconciler()), memsys.SingleHome)
		return r
	}
	r.total = NewVectorF64(m, name, 1, core.Coherent(), memsys.SingleHome)
	r.scratch = NewVectorF64(m, name+".partials", m.P*scratchStride, core.Coherent(), memsys.Blocked)
	return r
}

// Init seeds the variable's initial value in the home image (sequential;
// call after Freeze, before Run).  Non-sum reductions also seed the
// Copying-mode partial slots with the operator's identity.
func (r *ReduceF64) Init(v float64) {
	r.total.Poke(0, v)
	if r.scratch != nil {
		for i := 0; i < r.scratch.Len(); i += scratchStride {
			r.scratch.Poke(i, r.op.identity())
		}
	}
}

// Var exposes the underlying one-element vector (for Peek).
func (r *ReduceF64) Var() *VectorF64 { return r.total }

// Add accumulates v into the reduction through node n ("total %op= v").
func (r *ReduceF64) Add(n *tempest.Node, v float64) {
	switch {
	case r.sys.IsLCM():
		// The first write copy-on-writes a private copy of the total's
		// block; the reconciliation function combines the
		// contributions.
		cur := r.total.Get(n, 0)
		nv := r.op.fold(cur, v)
		if nv != cur || r.op == OpSum {
			r.total.Set(n, 0, nv)
		}
	default:
		slot := n.ID * scratchStride
		r.scratch.Set(n, slot, r.op.fold(r.scratch.Get(n, slot), v))
	}
}

// Reduce completes the reduction across all nodes; every node must call
// it (it contains the phase barrier).  Afterwards Value returns the
// combined result on any node.
func (r *ReduceF64) Reduce(n *tempest.Node) {
	if r.sys.IsLCM() {
		n.ReconcileCopies()
		return
	}
	n.ReconcileCopies() // barrier: all partials written
	if n.ID == 0 {
		// The serial combine the programmer writes by hand: node 0
		// walks the P partial blocks and folds them into the total.
		acc := r.total.Get(n, 0)
		for i := 0; i < n.M.P; i++ {
			acc = r.op.fold(acc, r.scratch.Get(n, i*scratchStride))
		}
		r.total.Set(n, 0, acc)
	}
	n.Barrier()
}

// ResetPartials clears per-node partials to the operator's identity for
// the next reduction round (Copying mode only; LCM needs nothing).  Each
// node clears its own slot.
func (r *ReduceF64) ResetPartials(n *tempest.Node) {
	if !r.sys.IsLCM() {
		r.scratch.Set(n, n.ID*scratchStride, r.op.identity())
	}
}

// Value reads the combined result through node n.
func (r *ReduceF64) Value(n *tempest.Node) float64 { return r.total.Get(n, 0) }
