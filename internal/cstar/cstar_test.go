package cstar

import (
	"testing"
	"testing/quick"

	"lcm/internal/core"
	"lcm/internal/cost"
	"lcm/internal/memsys"
	"lcm/internal/tempest"
)

func TestSystemStrings(t *testing.T) {
	if Copying.String() != "copying" || LCMscc.String() != "lcm-scc" || LCMmcc.String() != "lcm-mcc" {
		t.Fatal("system strings")
	}
	if Copying.IsLCM() || !LCMscc.IsLCM() || !LCMmcc.IsLCM() {
		t.Fatal("IsLCM")
	}
	if ModeLCM.String() != "lcm" || ModeCopying.String() != "copying" {
		t.Fatal("mode strings")
	}
}

func TestLowerDecisions(t *testing.T) {
	stencil := AccessSummary{WritesOwnElementOnly: true, ReadsSharedData: true}
	adaptive := AccessSummary{DynamicStructure: true, ReadsSharedData: true}
	independent := AccessSummary{WritesOwnElementOnly: true}

	// Coherent system: only explicit copying is correct.
	if p := Lower(stencil, Copying); p.Mode != ModeCopying {
		t.Fatalf("stencil on copying -> %v", p)
	}
	// LCM: directives, flushing between invocations when reads may see
	// other invocations' writes.
	if p := Lower(stencil, LCMmcc); p.Mode != ModeLCM || !p.FlushBetweenInvocations {
		t.Fatalf("stencil on lcm -> %+v", p)
	}
	if p := Lower(adaptive, LCMscc); p.Mode != ModeLCM || !p.FlushBetweenInvocations {
		t.Fatalf("adaptive on lcm -> %+v", p)
	}
	// Provably independent invocations need no flush.
	if p := Lower(independent, LCMmcc); p.Mode != ModeLCM || p.FlushBetweenInvocations {
		t.Fatalf("independent on lcm -> %+v", p)
	}
}

// Property: for any p, total, iter, both schedulers produce an exact
// disjoint cover of [0, total).
func TestSchedulersPartitionProperty(t *testing.T) {
	scheds := []Scheduler{StaticSchedule{}, RotatingSchedule{}}
	f := func(p8 uint8, total16 uint16, iter8 uint8) bool {
		p := int(p8)%16 + 1
		total := int(total16) % 5000
		iter := int(iter8)
		for _, s := range scheds {
			seen := make([]bool, total)
			for node := 0; node < p; node++ {
				lo, hi := s.Range(node, p, iter, total)
				if lo > hi || lo < 0 || hi > total {
					return false
				}
				for i := lo; i < hi; i++ {
					if seen[i] {
						return false // overlap
					}
					seen[i] = true
				}
			}
			for _, ok := range seen {
				if !ok {
					return false // gap
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRotatingScheduleActuallyRotates(t *testing.T) {
	s := RotatingSchedule{}
	lo0, _ := s.Range(0, 4, 0, 100)
	lo1, _ := s.Range(0, 4, 1, 100)
	if lo0 == lo1 {
		t.Fatal("rotation did not move node 0's chunk")
	}
	// Full cycle returns.
	lo4, _ := s.Range(0, 4, 4, 100)
	if lo0 != lo4 {
		t.Fatal("rotation period wrong")
	}
}

func TestSchedulerNames(t *testing.T) {
	if (StaticSchedule{}).Name() != "static" || (RotatingSchedule{}).Name() != "dynamic" {
		t.Fatal("scheduler names")
	}
}

func TestVectorRoundTrips(t *testing.T) {
	m := NewMachine(2, 32, cost.Default(), LCMmcc)
	vf32 := NewVectorF32(m, "f32", 10, core.LooselyCoherent(), memsys.Interleaved)
	vf64 := NewVectorF64(m, "f64", 10, core.LooselyCoherent(), memsys.Interleaved)
	vi32 := NewVectorI32(m, "i32", 10, core.LooselyCoherent(), memsys.Interleaved)
	vi64 := NewVectorI64(m, "i64", 10, core.LooselyCoherent(), memsys.Interleaved)
	m.Freeze()
	// Sequential init via Poke, then parallel read via Get.
	vf32.Poke(3, 1.5)
	vf64.Poke(4, 2.5)
	vi32.Poke(5, -3)
	vi64.Poke(6, 1<<40)
	m.Run(func(n *tempest.Node) {
		if n.ID == 0 {
			if vf32.Get(n, 3) != 1.5 || vf64.Get(n, 4) != 2.5 || vi32.Get(n, 5) != -3 || vi64.Get(n, 6) != 1<<40 {
				t.Error("poke/get mismatch")
			}
			vf32.Set(n, 0, 9)
			vi64.Set(n, 0, 7)
		}
		n.ReconcileCopies() // every node joins the reconciliation barrier
		if n.ID == 0 && (vf32.Get(n, 0) != 9 || vi64.Get(n, 0) != 7) {
			t.Error("set/reconcile/get mismatch")
		}
	})
	m.Run(func(n *tempest.Node) { n.Barrier() }) // nothing hangs on reuse
	if vf32.Peek(0) != 9 || vi64.Peek(0) != 7 {
		t.Fatal("home image lacks reconciled values")
	}
	if vf32.Len() != 10 || vf32.Region().Name != "f32" {
		t.Fatal("metadata")
	}
}

// The I64 span accessors move whole slices through the machine's
// amortized span engine; values must round-trip and be visible to
// element-wise Get on the same node.
func TestVectorI64Spans(t *testing.T) {
	m := NewMachine(2, 32, cost.Default(), LCMmcc)
	v := NewVectorI64(m, "i64", 24, core.LooselyCoherent(), memsys.Interleaved)
	m.Freeze()
	m.Run(func(n *tempest.Node) {
		if n.ID == 0 {
			want := make([]int64, 11) // crosses block boundaries
			for i := range want {
				want[i] = int64(i)*-5 + 2
			}
			v.SetSpan(n, 3, want)
			got := make([]int64, len(want))
			v.GetSpan(n, 3, got)
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("span[%d] = %d, want %d", i, got[i], want[i])
				}
				if e := v.Get(n, 3+i); e != want[i] {
					t.Errorf("element readback [%d] = %d, want %d", i, e, want[i])
				}
			}
		}
		n.Barrier()
	})
}

func TestMatrixRowMajorAddressing(t *testing.T) {
	m := NewMachine(1, 32, cost.Zero(), Copying)
	mx := NewMatrixF32(m, "m", 4, 8, core.Coherent(), memsys.Interleaved)
	m.Freeze()
	// One row of 8 float32 = exactly one 32-byte block.
	for j := 0; j < 7; j++ {
		if mx.M.AS.Block(mx.Addr(1, j)) != mx.M.AS.Block(mx.Addr(1, j+1)) {
			t.Fatal("row not contiguous within block")
		}
	}
	if mx.M.AS.Block(mx.Addr(1, 0)) == mx.M.AS.Block(mx.Addr(2, 0)) {
		t.Fatal("rows alias a block")
	}
	mx.Poke(2, 5, 42)
	if mx.Peek(2, 5) != 42 {
		t.Fatal("peek/poke")
	}
}

func TestMatrixFillAndCopyRows(t *testing.T) {
	m := NewMachine(2, 32, cost.Default(), Copying)
	src := NewMatrixF32(m, "src", 4, 8, core.Coherent(), memsys.Interleaved)
	dst := NewMatrixF32(m, "dst", 4, 8, core.Coherent(), memsys.Interleaved)
	m.Freeze()
	src.Fill(3)
	m.Run(func(n *tempest.Node) {
		if n.ID == 0 {
			dst.CopyRows(n, src, 0, 2)
		} else {
			dst.CopyRows(n, src, 2, 4)
		}
		n.Barrier()
	})
	DrainToHome(m)
	for i := 0; i < 4; i++ {
		for j := 0; j < 8; j++ {
			if dst.Peek(i, j) != 3 {
				t.Fatalf("dst[%d][%d] = %v", i, j, dst.Peek(i, j))
			}
		}
	}
	c := m.TotalCounters()
	if c.CopiedWords != 32 {
		t.Fatalf("copied words = %d, want 32", c.CopiedWords)
	}
}

func TestReduceMatchesSerialAcrossSystems(t *testing.T) {
	const N = 1000
	want := float64(N*(N-1)) / 2
	for _, sys := range []System{Copying, LCMscc, LCMmcc} {
		t.Run(sys.String(), func(t *testing.T) {
			m := NewMachine(4, 32, cost.Default(), sys)
			red := NewReduceF64(m, "total", sys)
			m.Freeze()
			m.Run(func(n *tempest.Node) {
				lo, hi := StaticSchedule{}.Range(n.ID, m.P, 0, N)
				for i := lo; i < hi; i++ {
					red.Add(n, float64(i))
				}
				red.Reduce(n)
				if got := red.Value(n); got != want {
					t.Errorf("node %d total = %v, want %v", n.ID, got, want)
				}
			})
		})
	}
}

func TestReduceMultiRound(t *testing.T) {
	for _, sys := range []System{Copying, LCMmcc} {
		m := NewMachine(2, 32, cost.Default(), sys)
		red := NewReduceF64(m, "t", sys)
		m.Freeze()
		m.Run(func(n *tempest.Node) {
			for round := 0; round < 3; round++ {
				red.ResetPartials(n)
				n.Barrier()
				red.Add(n, 1)
				red.Reduce(n)
			}
			if got := red.Value(n); got != 6 {
				t.Errorf("%v: after 3 rounds total = %v, want 6", sys, got)
			}
		})
	}
}

// The central C** semantics property: for any random mesh and any memory
// system and schedule, a parallel stencil step equals the sequential
// two-array reference.
func TestParallelStencilEqualsSequential(t *testing.T) {
	const rows, cols = 12, 16
	systems := []System{Copying, LCMscc, LCMmcc}
	scheds := []Scheduler{StaticSchedule{}, RotatingSchedule{}}
	f := func(seed int64) bool {
		// Deterministic pseudo-random mesh from the seed.
		mesh := make([][]float32, rows)
		x := uint64(seed)
		for i := range mesh {
			mesh[i] = make([]float32, cols)
			for j := range mesh[i] {
				x = x*6364136223846793005 + 1442695040888963407
				mesh[i][j] = float32(x>>40) / 1000
			}
		}
		// Sequential reference: one four-point stencil step.
		want := make([][]float32, rows)
		for i := range want {
			want[i] = make([]float32, cols)
			copy(want[i], mesh[i])
		}
		for i := 1; i < rows-1; i++ {
			for j := 1; j < cols-1; j++ {
				want[i][j] = (mesh[i-1][j] + mesh[i+1][j] + mesh[i][j-1] + mesh[i][j+1]) / 4
			}
		}
		for _, sys := range systems {
			for _, sched := range scheds {
				if !stencilStepMatches(sys, sched, mesh, want) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// stencilStepMatches runs one parallel stencil step and compares to want.
func stencilStepMatches(sys System, sched Scheduler, mesh [][]float32, want [][]float32) bool {
	rows, cols := len(mesh), len(mesh[0])
	m := NewMachine(4, 32, cost.Default(), sys)
	a := NewMatrixF32(m, "A", rows, cols, DataPolicy(sys), memsys.Interleaved)
	var old *MatrixF32
	if sys == Copying {
		old = NewMatrixF32(m, "A.old", rows, cols, core.Coherent(), memsys.Interleaved)
	}
	m.Freeze()
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			a.Poke(i, j, mesh[i][j])
			if old != nil {
				old.Poke(i, j, mesh[i][j])
			}
		}
	}
	plan := Lower(AccessSummary{WritesOwnElementOnly: true, ReadsSharedData: true}, sys)
	total := (rows - 2) * (cols - 2)
	m.Run(func(n *tempest.Node) {
		ForEach(n, sched, plan, 0, total, func(idx int) {
			i := 1 + idx/(cols-2)
			j := 1 + idx%(cols-2)
			src := a
			if plan.Mode == ModeCopying {
				src = old
			}
			v := (src.Get(n, i-1, j) + src.Get(n, i+1, j) + src.Get(n, i, j-1) + src.Get(n, i, j+1)) / 4
			a.Set(n, i, j, v)
		})
		EndParallel(n)
	})
	DrainToHome(m)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if a.Peek(i, j) != want[i][j] {
				return false
			}
		}
	}
	return true
}

func TestAggregateAddrsAndI32Copy(t *testing.T) {
	m := NewMachine(2, 32, cost.Default(), Copying)
	f32 := NewVectorF32(m, "f32", 8, core.Coherent(), memsys.Interleaved)
	f64 := NewVectorF64(m, "f64", 8, core.Coherent(), memsys.Interleaved)
	i32s := NewVectorI32(m, "i32s", 8, core.Coherent(), memsys.Interleaved)
	i32d := NewVectorI32(m, "i32d", 8, core.Coherent(), memsys.Interleaved)
	i64 := NewVectorI64(m, "i64", 8, core.Coherent(), memsys.Interleaved)
	m.Freeze()
	if f32.Addr(1)-f32.Addr(0) != 4 || f64.Addr(1)-f64.Addr(0) != 8 ||
		i32s.Addr(1)-i32s.Addr(0) != 4 || i64.Addr(1)-i64.Addr(0) != 8 {
		t.Fatal("element strides")
	}
	for i := 0; i < 8; i++ {
		i32s.Poke(i, int32(i*i))
	}
	m.Run(func(n *tempest.Node) {
		if n.ID == 0 {
			i32d.CopyRange(n, i32s, 0, 8)
			f32.Set(n, 2, 1.5)
			i64.Set(n, 3, -9)
		}
		n.Barrier()
		if n.ID == 1 {
			if f32.Get(n, 2) != 1.5 || i64.Get(n, 3) != -9 {
				t.Error("cross-node reads")
			}
		}
	})
	DrainToHome(m)
	for i := 0; i < 8; i++ {
		if i32d.Peek(i) != int32(i*i) {
			t.Fatalf("copied i32d[%d] = %d", i, i32d.Peek(i))
		}
	}
	if c := m.TotalCounters(); c.CopiedWords != 8 {
		t.Fatalf("copied words %d", c.CopiedWords)
	}
}
