package cstar

import (
	"encoding/binary"
	"fmt"
	"math"

	"lcm/internal/core"
	"lcm/internal/memsys"
	"lcm/internal/tempest"
)

// Aggregates are C**'s parallel data collections.  They are allocated in
// the simulated global address space, so every Get/Set issued by an
// invocation flows through the machine's tagged load/store path and is
// visible to the active coherence protocol — exactly as a compiled C**
// program's loads and stores would be.
//
// Each aggregate also offers Peek/Poke, which access the home memory image
// directly: these are for sequential initialization before a run and
// verification after it (combined with the protocols' DrainToHome), not
// for simulated execution, and they charge nothing.

// agg is the common allocation bookkeeping.
type agg struct {
	M    *tempest.Machine
	R    *memsys.Region
	len  int
	elem uint32
}

func allocAgg(m *tempest.Machine, name string, elems int, elemSize uint32, pol core.Policy, home memsys.HomePolicy, homeNode int) agg {
	if elems <= 0 {
		// Record the misconfiguration instead of crashing at allocation
		// time; Freeze/Run will fail with it.  Clamp so the returned
		// aggregate is still a valid (if useless) object.
		m.RecordConfigError(fmt.Errorf("cstar: aggregate %q with %d elements", name, elems))
		elems = 1
	}
	r := m.AS.AllocAt(name, uint64(elems)*uint64(elemSize), memsys.KindCoherent, home, homeNode)
	if err := pol.ApplyTo(r); err != nil {
		m.RecordConfigError(fmt.Errorf("cstar: aggregate %q: %w", name, err))
	}
	return agg{M: m, R: r, len: elems, elem: elemSize}
}

// Len returns the number of elements.
func (a *agg) Len() int { return a.len }

// Region returns the underlying memory region.
func (a *agg) Region() *memsys.Region { return a.R }

// addr returns the address of element i.
func (a *agg) addr(i int) memsys.Addr {
	return a.R.Base + memsys.Addr(i)*memsys.Addr(a.elem)
}

// VectorF32 is a one-dimensional aggregate of float32.
type VectorF32 struct{ agg }

// NewVectorF32 allocates a float32 aggregate with the given memory policy.
func NewVectorF32(m *tempest.Machine, name string, n int, pol core.Policy, home memsys.HomePolicy) *VectorF32 {
	return &VectorF32{allocAgg(m, name, n, 4, pol, home, 0)}
}

// Addr returns the address of element i.
func (v *VectorF32) Addr(i int) memsys.Addr { return v.addr(i) }

// Get loads element i through node n.
func (v *VectorF32) Get(n *tempest.Node, i int) float32 { return n.ReadF32(v.addr(i)) }

// Set stores element i through node n.
func (v *VectorF32) Set(n *tempest.Node, i int, x float32) { n.WriteF32(v.addr(i), x) }

// Peek reads element i from the home image (sequential, free).
func (v *VectorF32) Peek(i int) float32 {
	return math.Float32frombits(binary.LittleEndian.Uint32(v.M.AS.HomeBytes(v.addr(i), 4)))
}

// Poke writes element i to the home image (sequential, free).
func (v *VectorF32) Poke(i int, x float32) {
	binary.LittleEndian.PutUint32(v.M.AS.HomeBytes(v.addr(i), 4), math.Float32bits(x))
}

// GetSpan loads elements [i, i+len(dst)) into dst through node n.
func (v *VectorF32) GetSpan(n *tempest.Node, i int, dst []float32) {
	n.ReadSpanF32(v.addr(i), dst)
}

// SetSpan stores src into elements [i, i+len(src)) through node n.
func (v *VectorF32) SetSpan(n *tempest.Node, i int, src []float32) {
	n.WriteSpanF32(v.addr(i), src)
}

// FillSpan stores x into elements [lo, hi) through node n.
func (v *VectorF32) FillSpan(n *tempest.Node, lo, hi int, x float32) {
	n.FillSpanF32(v.addr(lo), hi-lo, x)
}

// CopyRange copies elements [lo,hi) from src through node n, counting and
// charging the copied words: this is the compiler-generated explicit-copy
// loop of the Copying baseline.  The transfer runs block segment by block
// segment (see tempest.CopySpan) with accounting identical to the
// element-by-element loop.
func (v *VectorF32) CopyRange(n *tempest.Node, src *VectorF32, lo, hi int) {
	n.CopySpan(v.addr(lo), src.addr(lo), hi-lo, 4)
	n.Ctr.CopiedWords += int64(hi - lo)
	n.Charge(int64(hi-lo) * n.M.Cost.CopyPerWord)
}

// VectorF64 is a one-dimensional aggregate of float64.
type VectorF64 struct{ agg }

// NewVectorF64 allocates a float64 aggregate with the given memory policy.
func NewVectorF64(m *tempest.Machine, name string, n int, pol core.Policy, home memsys.HomePolicy) *VectorF64 {
	return &VectorF64{allocAgg(m, name, n, 8, pol, home, 0)}
}

// Addr returns the address of element i.
func (v *VectorF64) Addr(i int) memsys.Addr { return v.addr(i) }

// Get loads element i through node n.
func (v *VectorF64) Get(n *tempest.Node, i int) float64 { return n.ReadF64(v.addr(i)) }

// Set stores element i through node n.
func (v *VectorF64) Set(n *tempest.Node, i int, x float64) { n.WriteF64(v.addr(i), x) }

// Peek reads element i from the home image (sequential, free).
func (v *VectorF64) Peek(i int) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(v.M.AS.HomeBytes(v.addr(i), 8)))
}

// Poke writes element i to the home image (sequential, free).
func (v *VectorF64) Poke(i int, x float64) {
	binary.LittleEndian.PutUint64(v.M.AS.HomeBytes(v.addr(i), 8), math.Float64bits(x))
}

// GetSpan loads elements [i, i+len(dst)) into dst through node n.
func (v *VectorF64) GetSpan(n *tempest.Node, i int, dst []float64) {
	n.ReadSpanF64(v.addr(i), dst)
}

// SetSpan stores src into elements [i, i+len(src)) through node n.
func (v *VectorF64) SetSpan(n *tempest.Node, i int, src []float64) {
	n.WriteSpanF64(v.addr(i), src)
}

// VectorI32 is a one-dimensional aggregate of int32 (indices, counters,
// quad-tree child pointers).
type VectorI32 struct{ agg }

// NewVectorI32 allocates an int32 aggregate with the given memory policy.
func NewVectorI32(m *tempest.Machine, name string, n int, pol core.Policy, home memsys.HomePolicy) *VectorI32 {
	return &VectorI32{allocAgg(m, name, n, 4, pol, home, 0)}
}

// Addr returns the address of element i.
func (v *VectorI32) Addr(i int) memsys.Addr { return v.addr(i) }

// Get loads element i through node n.
func (v *VectorI32) Get(n *tempest.Node, i int) int32 { return n.ReadI32(v.addr(i)) }

// Set stores element i through node n.
func (v *VectorI32) Set(n *tempest.Node, i int, x int32) { n.WriteI32(v.addr(i), x) }

// Peek reads element i from the home image (sequential, free).
func (v *VectorI32) Peek(i int) int32 {
	return int32(binary.LittleEndian.Uint32(v.M.AS.HomeBytes(v.addr(i), 4)))
}

// Poke writes element i to the home image (sequential, free).
func (v *VectorI32) Poke(i int, x int32) {
	binary.LittleEndian.PutUint32(v.M.AS.HomeBytes(v.addr(i), 4), uint32(x))
}

// GetSpan loads elements [i, i+len(dst)) into dst through node n.
func (v *VectorI32) GetSpan(n *tempest.Node, i int, dst []int32) {
	n.ReadSpanI32(v.addr(i), dst)
}

// SetSpan stores src into elements [i, i+len(src)) through node n.
func (v *VectorI32) SetSpan(n *tempest.Node, i int, src []int32) {
	n.WriteSpanI32(v.addr(i), src)
}

// CopyRange copies elements [lo,hi) from src through node n, counting and
// charging the copied words.
func (v *VectorI32) CopyRange(n *tempest.Node, src *VectorI32, lo, hi int) {
	n.CopySpan(v.addr(lo), src.addr(lo), hi-lo, 4)
	n.Ctr.CopiedWords += int64(hi - lo)
	n.Charge(int64(hi-lo) * n.M.Cost.CopyPerWord)
}

// VectorI64 is a one-dimensional aggregate of int64.
type VectorI64 struct{ agg }

// NewVectorI64 allocates an int64 aggregate with the given memory policy.
func NewVectorI64(m *tempest.Machine, name string, n int, pol core.Policy, home memsys.HomePolicy) *VectorI64 {
	return &VectorI64{allocAgg(m, name, n, 8, pol, home, 0)}
}

// Addr returns the address of element i.
func (v *VectorI64) Addr(i int) memsys.Addr { return v.addr(i) }

// Get loads element i through node n.
func (v *VectorI64) Get(n *tempest.Node, i int) int64 { return n.ReadI64(v.addr(i)) }

// Set stores element i through node n.
func (v *VectorI64) Set(n *tempest.Node, i int, x int64) { n.WriteI64(v.addr(i), x) }

// Peek reads element i from the home image (sequential, free).
func (v *VectorI64) Peek(i int) int64 {
	return int64(binary.LittleEndian.Uint64(v.M.AS.HomeBytes(v.addr(i), 8)))
}

// Poke writes element i to the home image (sequential, free).
func (v *VectorI64) Poke(i int, x int64) {
	binary.LittleEndian.PutUint64(v.M.AS.HomeBytes(v.addr(i), 8), uint64(x))
}

// GetSpan loads elements [i, i+len(dst)) into dst through node n.
func (v *VectorI64) GetSpan(n *tempest.Node, i int, dst []int64) {
	n.ReadSpanI64(v.addr(i), dst)
}

// SetSpan stores src into elements [i, i+len(src)) through node n.
func (v *VectorI64) SetSpan(n *tempest.Node, i int, src []int64) {
	n.WriteSpanI64(v.addr(i), src)
}

// MatrixF32 is a two-dimensional row-major aggregate of float32 — the
// paper's mesh type: with 32-byte blocks a cache block holds eight
// single-precision floats from one row.  Rows are padded to a whole number
// of blocks so that two rows never share a block: row-partitioned
// computations then have a single writer per block per phase, which is
// both how the paper's meshes behave (1024 floats = 128 exact blocks) and
// a requirement of the simulator's data-movement rules.
type MatrixF32 struct {
	agg
	Rows, Cols int
	stride     int
}

// NewMatrixF32 allocates a rows x cols float32 aggregate.
func NewMatrixF32(m *tempest.Machine, name string, rows, cols int, pol core.Policy, home memsys.HomePolicy) *MatrixF32 {
	per := int(m.AS.BlockSize / 4)
	stride := (cols + per - 1) / per * per
	a := allocAgg(m, name, rows*stride, 4, pol, home, 0)
	return &MatrixF32{agg: a, Rows: rows, Cols: cols, stride: stride}
}

// Addr returns the address of element (i, j).
func (mx *MatrixF32) Addr(i, j int) memsys.Addr { return mx.addr(i*mx.stride + j) }

// Get loads element (i, j) through node n.
func (mx *MatrixF32) Get(n *tempest.Node, i, j int) float32 {
	return n.ReadF32(mx.Addr(i, j))
}

// Set stores element (i, j) through node n.
func (mx *MatrixF32) Set(n *tempest.Node, i, j int, x float32) {
	n.WriteF32(mx.Addr(i, j), x)
}

// Peek reads element (i, j) from the home image (sequential, free).
func (mx *MatrixF32) Peek(i, j int) float32 {
	return math.Float32frombits(binary.LittleEndian.Uint32(mx.M.AS.HomeBytes(mx.Addr(i, j), 4)))
}

// Poke writes element (i, j) to the home image (sequential, free).
func (mx *MatrixF32) Poke(i, j int, x float32) {
	binary.LittleEndian.PutUint32(mx.M.AS.HomeBytes(mx.Addr(i, j), 4), math.Float32bits(x))
}

// GetRowSpan loads elements (i, j) .. (i, j+len(dst)) of one row into dst
// through node n.  The span must stay within the row's padded stride.
func (mx *MatrixF32) GetRowSpan(n *tempest.Node, i, j int, dst []float32) {
	if j < 0 || j+len(dst) > mx.stride {
		panic(fmt.Sprintf("cstar: row span [%d,%d) outside row of stride %d", j, j+len(dst), mx.stride))
	}
	n.ReadSpanF32(mx.Addr(i, j), dst)
}

// SetRowSpan stores src into elements (i, j) .. (i, j+len(src)) of one row
// through node n.  The span must stay within the row's padded stride.
func (mx *MatrixF32) SetRowSpan(n *tempest.Node, i, j int, src []float32) {
	if j < 0 || j+len(src) > mx.stride {
		panic(fmt.Sprintf("cstar: row span [%d,%d) outside row of stride %d", j, j+len(src), mx.stride))
	}
	n.WriteSpanF32(mx.Addr(i, j), src)
}

// CopyRows copies rows [lo,hi) from src through node n, counting and
// charging the copied words (the Copying baseline's whole-mesh copy).
// Each row moves block segment by block segment (see tempest.CopySpan).
func (mx *MatrixF32) CopyRows(n *tempest.Node, src *MatrixF32, lo, hi int) {
	for i := lo; i < hi; i++ {
		n.CopySpan(mx.Addr(i, 0), src.Addr(i, 0), mx.Cols, 4)
		n.Ctr.CopiedWords += int64(mx.Cols)
	}
	n.Charge(int64(hi-lo) * int64(mx.Cols) * n.M.Cost.CopyPerWord)
}

// Fill sets every home-image element to x (sequential initialization).
func (mx *MatrixF32) Fill(x float32) {
	for i := 0; i < mx.Rows; i++ {
		for j := 0; j < mx.Cols; j++ {
			mx.Poke(i, j, x)
		}
	}
}
