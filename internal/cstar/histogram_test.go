package cstar

import (
	"testing"
	"testing/quick"

	"lcm/internal/core"
	"lcm/internal/cost"
	"lcm/internal/memsys"
	"lcm/internal/tempest"
)

// Section 7.1 argues RSM reductions shine exactly where compiler analysis
// fails: reductions through computed subscripts ("A[f(i)] = A[f(i)] + c")
// or over pointer-based structures.  These tests build a histogram with an
// arbitrary hash as f: every node scatters increments across the whole
// bucket array, buckets collide freely across nodes and within blocks, and
// the reduction-policy region must still produce the exact counts with no
// per-node privatization code.

func hashBucket(i, buckets int) int {
	x := uint64(i) * 11400714819323198485
	return int(x>>33) % buckets
}

func TestIrregularHistogramReduction(t *testing.T) {
	const (
		p       = 8
		buckets = 64
		items   = 10_000
	)
	m := NewMachine(p, 32, cost.Default(), LCMmcc)
	hist := NewVectorI64(m, "hist", buckets, core.Reduction(core.SumI64{}), memsys.Interleaved)
	m.Freeze()

	m.Run(func(n *tempest.Node) {
		lo, hi := (StaticSchedule{}).Range(n.ID, p, 0, items)
		for i := lo; i < hi; i++ {
			b := hashBucket(i, buckets)
			// The C** reduction assignment: hist[f(i)] %+= 1.
			hist.Set(n, b, hist.Get(n, b)+1)
		}
		n.ReconcileCopies()
	})

	want := make([]int64, buckets)
	for i := 0; i < items; i++ {
		want[hashBucket(i, buckets)]++
	}
	var total int64
	for b := 0; b < buckets; b++ {
		got := hist.Peek(b)
		if got != want[b] {
			t.Fatalf("bucket %d = %d, want %d", b, got, want[b])
		}
		total += got
	}
	if total != items {
		t.Fatalf("total %d, want %d", total, items)
	}
	// Cross-node writes to shared buckets are contributions, not
	// conflicts.
	if c := m.Shared.Snapshot().WriteConflicts; c != 0 {
		t.Fatalf("reduction reported %d conflicts", c)
	}
}

// Property: the reduction histogram is exact for any item->bucket mapping
// and any number of reconcile phases splitting the work.
func TestHistogramReductionProperty(t *testing.T) {
	f := func(assign []uint8, phases8 uint8) bool {
		if len(assign) == 0 {
			return true
		}
		if len(assign) > 400 {
			assign = assign[:400]
		}
		const p, buckets = 4, 16
		phases := int(phases8)%3 + 1
		m := NewMachine(p, 32, cost.Zero(), LCMscc)
		hist := NewVectorI64(m, "hist", buckets, core.Reduction(core.SumI64{}), memsys.Interleaved)
		m.Freeze()
		m.Run(func(n *tempest.Node) {
			for ph := 0; ph < phases; ph++ {
				for i, a := range assign {
					if i%p != n.ID || i%phases != ph {
						continue
					}
					b := int(a) % buckets
					hist.Set(n, b, hist.Get(n, b)+1)
				}
				n.ReconcileCopies()
			}
		})
		want := make([]int64, buckets)
		for _, a := range assign {
			want[int(a)%buckets]++
		}
		for b := 0; b < buckets; b++ {
			if hist.Peek(b) != want[b] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestHistogramMinMaxReductions exercises the non-additive reconcilers on
// the same irregular pattern.
func TestHistogramMinMaxReductions(t *testing.T) {
	const p, slots, items = 4, 8, 500
	m := NewMachine(p, 32, cost.Zero(), LCMmcc)
	lows := NewVectorF64(m, "lows", slots, core.Reduction(core.MinF64{}), memsys.Interleaved)
	highs := NewVectorF64(m, "highs", slots, core.Reduction(core.MaxF64{}), memsys.Interleaved)
	m.Freeze()
	for s := 0; s < slots; s++ {
		lows.Poke(s, 1e18)
		highs.Poke(s, -1e18)
	}
	val := func(i int) float64 { return float64((i*2654435761)%10_000) - 5_000 }
	m.Run(func(n *tempest.Node) {
		lo, hi := (StaticSchedule{}).Range(n.ID, p, 0, items)
		for i := lo; i < hi; i++ {
			s := hashBucket(i, slots)
			if v := val(i); v < lows.Get(n, s) {
				lows.Set(n, s, v)
			}
			if v := val(i); v > highs.Get(n, s) {
				highs.Set(n, s, v)
			}
		}
		n.ReconcileCopies()
	})
	wantLo := make([]float64, slots)
	wantHi := make([]float64, slots)
	for s := range wantLo {
		wantLo[s], wantHi[s] = 1e18, -1e18
	}
	for i := 0; i < items; i++ {
		s := hashBucket(i, slots)
		if v := val(i); v < wantLo[s] {
			wantLo[s] = v
		}
		if v := val(i); v > wantHi[s] {
			wantHi[s] = v
		}
	}
	for s := 0; s < slots; s++ {
		if lows.Peek(s) != wantLo[s] || highs.Peek(s) != wantHi[s] {
			t.Fatalf("slot %d: min %v/%v max %v/%v", s,
				lows.Peek(s), wantLo[s], highs.Peek(s), wantHi[s])
		}
	}
}
