package cstar

import (
	"math"
	"testing"

	"lcm/internal/cost"
	"lcm/internal/tempest"
)

func TestReduceOpsPrimitives(t *testing.T) {
	if OpSum.identity() != 0 || !math.IsInf(OpMin.identity(), 1) || !math.IsInf(OpMax.identity(), -1) {
		t.Fatal("identities")
	}
	if OpSum.fold(2, 3) != 5 || OpMin.fold(2, 3) != 2 || OpMax.fold(2, 3) != 3 {
		t.Fatal("folds")
	}
	if OpSum.reconciler() == nil || OpMin.reconciler() == nil || OpMax.reconciler() == nil {
		t.Fatal("reconcilers")
	}
}

func TestReduceMinMaxAcrossSystems(t *testing.T) {
	vals := []float64{5, -3, 12, 0.5, 9, -3.5, 7, 2}
	for _, sys := range []System{Copying, LCMscc, LCMmcc} {
		for _, op := range []ReduceOp{OpMin, OpMax} {
			m := NewMachine(4, 32, cost.Default(), sys)
			red := NewReduceF64Op(m, "r", sys, op)
			m.Freeze()
			red.Init(op.identity())
			m.Run(func(n *tempest.Node) {
				lo, hi := (StaticSchedule{}).Range(n.ID, 4, 0, len(vals))
				for i := lo; i < hi; i++ {
					red.Add(n, vals[i])
				}
				red.Reduce(n)
			})
			want := op.identity()
			for _, v := range vals {
				want = op.fold(want, v)
			}
			if got := red.Var().Peek(0); got != want {
				t.Fatalf("%v/%v = %v, want %v", sys, op, got, want)
			}
		}
	}
}

func TestReduceInitSeedsValue(t *testing.T) {
	m := NewMachine(2, 32, cost.Default(), LCMmcc)
	red := NewReduceF64(m, "r", LCMmcc)
	m.Freeze()
	red.Init(100)
	m.Run(func(n *tempest.Node) {
		red.Add(n, 1)
		red.Reduce(n)
	})
	if got := red.Var().Peek(0); got != 102 {
		t.Fatalf("seeded total = %v, want 102", got)
	}
}
