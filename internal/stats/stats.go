// Package stats collects protocol and execution counters for the simulated
// machine and formats them for the experiment harness.
//
// Counters come in two flavours.  NodeCounters are owned by a single node
// goroutine and are plain integers updated on the hot path; they are
// aggregated only between phases.  Shared counters (clean copies created at
// a home, reconciliation conflicts, and so on) are updated from protocol
// handlers running on behalf of arbitrary nodes and therefore use atomics.
package stats

import (
	"fmt"
	"strings"
	"sync/atomic"

	"lcm/internal/net"
)

// NodeCounters is the per-node event record.  All fields are updated only
// by the owning node's goroutine (or inside a barrier window) and read
// after the machine quiesces.
type NodeCounters struct {
	// Hits counts loads/stores permitted by the access-control tags.
	Hits int64
	// Misses counts data-carrying protocol faults (block fetched from
	// home, a remote owner, or local memory).  This is the paper's
	// "cache misses" metric.
	Misses int64
	// RemoteMisses is the subset of Misses served by a remote node.
	RemoteMisses int64
	// LocalFills is the subset of Misses served from local memory
	// (the node is the home, or a locally retained clean copy).
	LocalFills int64
	// Upgrades counts ReadOnly -> ReadWrite permission upgrades that
	// carried no data.
	Upgrades int64
	// InvalidationsSent counts copies this node caused to be invalidated.
	InvalidationsSent int64
	// InvalidationsRecv counts this node's lines invalidated by others.
	InvalidationsRecv int64
	// Flushes counts modified blocks returned home by FlushCopies or
	// ReconcileCopies.
	Flushes int64
	// WordsFlushed counts modified 32-bit words carried by those flushes.
	WordsFlushed int64
	// Marks counts LCM MarkModification directives executed.
	Marks int64
	// Barriers counts global barriers this node participated in.
	Barriers int64
	// CopiedWords counts words moved by program-level explicit copying
	// (the baseline's compiler-generated copy code).
	CopiedWords int64
	// Evictions counts capacity evictions (limited-cache configurations).
	Evictions int64

	// The fields below are the fault-recovery record; all stay zero
	// unless a fault.Injector is attached to the machine.

	// CorruptedTransfers counts block transfers that arrived corrupted
	// (checksum mismatch) and were healed by re-fetch.
	CorruptedTransfers int64
	// TransientTimeouts counts remote request round trips that timed out
	// and were re-sent.
	TransientTimeouts int64
	// FaultRetries counts recovery retries issued (re-fetches plus
	// re-sends).
	FaultRetries int64
	// BackoffCycles counts virtual cycles spent in retry backoff.
	BackoffCycles int64
	// OccupancySpikes counts injected handler occupancy spikes absorbed.
	OccupancySpikes int64
	// Stalls counts injected node stalls; StallCycles is their total
	// virtual-clock jump.
	Stalls      int64
	StallCycles int64

	// The fields below are the crash-recovery record; all stay zero
	// unless the machine runs with Recovery enabled.

	// Checkpoints counts barrier-epoch checkpoints this node captured.
	Checkpoints int64
	// Restarts counts checkpoint restarts after injected kills.
	Restarts int64
	// RestoredLines counts lines restored across those restarts.
	RestoredLines int64
	// ReplayedOps counts memory operations deterministically replayed
	// between the restored checkpoint and the crash point.
	ReplayedOps int64
	// RecoveryCycles counts virtual cycles charged to checkpoint
	// restarts (restore, replay, rejoin).
	RecoveryCycles int64
	// Rehomings counts degraded-mode migrations of this node's home
	// responsibility to a live peer.
	Rehomings int64
	// RehomedBlocks counts blocks whose home moved in those migrations.
	RehomedBlocks int64

	// Net is the interconnect accounting record: messages injected by
	// kind, bytes, and cycles spent queueing for busy channels.
	Net net.Counters
}

// Add accumulates o into c.
func (c *NodeCounters) Add(o *NodeCounters) {
	c.Hits += o.Hits
	c.Misses += o.Misses
	c.RemoteMisses += o.RemoteMisses
	c.LocalFills += o.LocalFills
	c.Upgrades += o.Upgrades
	c.InvalidationsSent += o.InvalidationsSent
	c.InvalidationsRecv += o.InvalidationsRecv
	c.Flushes += o.Flushes
	c.WordsFlushed += o.WordsFlushed
	c.Marks += o.Marks
	c.Barriers += o.Barriers
	c.CopiedWords += o.CopiedWords
	c.Evictions += o.Evictions
	c.CorruptedTransfers += o.CorruptedTransfers
	c.TransientTimeouts += o.TransientTimeouts
	c.FaultRetries += o.FaultRetries
	c.BackoffCycles += o.BackoffCycles
	c.OccupancySpikes += o.OccupancySpikes
	c.Stalls += o.Stalls
	c.StallCycles += o.StallCycles
	c.Checkpoints += o.Checkpoints
	c.Restarts += o.Restarts
	c.RestoredLines += o.RestoredLines
	c.ReplayedOps += o.ReplayedOps
	c.RecoveryCycles += o.RecoveryCycles
	c.Rehomings += o.Rehomings
	c.RehomedBlocks += o.RehomedBlocks
	c.Net.Add(&o.Net)
}

// Shared holds machine-wide counters updated from protocol handlers under
// block locks; they use atomics because the updating goroutine is whichever
// node triggered the handler.
type Shared struct {
	// CleanCopiesHome counts clean copies created at home nodes (the
	// LCM-scc clean-copy metric of Table 1).
	CleanCopiesHome atomic.Int64
	// CleanCopiesLocal counts clean copies created in caching processors
	// (the additional copies kept by LCM-mcc).
	CleanCopiesLocal atomic.Int64
	// Reconciles counts blocks committed by ReconcileCopies.
	Reconciles atomic.Int64
	// WriteConflicts counts words written by more than one processor in
	// a single phase (C** leaves the surviving value unspecified; the
	// conflict-detection reconciler reports these as errors).
	WriteConflicts atomic.Int64
	// ReadWriteConflicts counts blocks with simultaneously outstanding
	// read-only and written copies, as detected at reconcile time when
	// conflict checking is enabled.
	ReadWriteConflicts atomic.Int64
}

// Snapshot is an immutable copy of Shared for reporting.
type Snapshot struct {
	CleanCopiesHome    int64
	CleanCopiesLocal   int64
	Reconciles         int64
	WriteConflicts     int64
	ReadWriteConflicts int64
}

// Snapshot captures the current shared counter values.
func (s *Shared) Snapshot() Snapshot {
	return Snapshot{
		CleanCopiesHome:    s.CleanCopiesHome.Load(),
		CleanCopiesLocal:   s.CleanCopiesLocal.Load(),
		Reconciles:         s.Reconciles.Load(),
		WriteConflicts:     s.WriteConflicts.Load(),
		ReadWriteConflicts: s.ReadWriteConflicts.Load(),
	}
}

// Reset zeroes all shared counters.
func (s *Shared) Reset() {
	s.CleanCopiesHome.Store(0)
	s.CleanCopiesLocal.Store(0)
	s.Reconciles.Store(0)
	s.WriteConflicts.Store(0)
	s.ReadWriteConflicts.Store(0)
}

// Table renders rows of named int64 columns as an aligned text table, for
// cmd/lcmbench output.  Columns appear in the order of cols; rows render in
// insertion order.
type Table struct {
	Title string
	cols  []string
	rows  []tableRow
}

type tableRow struct {
	name string
	vals map[string]string
}

// NewTable creates a table with the given title and column names.
func NewTable(title string, cols ...string) *Table {
	return &Table{Title: title, cols: cols}
}

// AddRow appends a row; vals maps column name to cell text.
func (t *Table) AddRow(name string, vals map[string]string) {
	t.rows = append(t.rows, tableRow{name: name, vals: vals})
}

// AddInts appends a row of integer cells rendered with thousands grouping.
func (t *Table) AddInts(name string, vals map[string]int64) {
	m := make(map[string]string, len(vals))
	for k, v := range vals {
		m[k] = GroupInt(v)
	}
	t.AddRow(name, m)
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	widths := make([]int, len(t.cols)+1)
	widths[0] = len("workload")
	for _, r := range t.rows {
		if len(r.name) > widths[0] {
			widths[0] = len(r.name)
		}
	}
	for i, c := range t.cols {
		widths[i+1] = len(c)
		for _, r := range t.rows {
			if len(r.vals[c]) > widths[i+1] {
				widths[i+1] = len(r.vals[c])
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i == 0 {
				fmt.Fprintf(&b, "%-*s", widths[0], c)
			} else {
				fmt.Fprintf(&b, "  %*s", widths[i], c)
			}
		}
		b.WriteByte('\n')
	}
	header := append([]string{"workload"}, t.cols...)
	line(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.rows {
		cells := make([]string, 0, len(t.cols)+1)
		cells = append(cells, r.name)
		for _, c := range t.cols {
			cells = append(cells, r.vals[c])
		}
		line(cells)
	}
	return b.String()
}

// GroupInt formats v with comma thousands separators ("1,234,567").
func GroupInt(v int64) string {
	neg := v < 0
	if neg {
		v = -v
	}
	s := fmt.Sprintf("%d", v)
	if len(s) > 3 {
		var b strings.Builder
		lead := len(s) % 3
		if lead == 0 {
			lead = 3
		}
		b.WriteString(s[:lead])
		for i := lead; i < len(s); i += 3 {
			b.WriteByte(',')
			b.WriteString(s[i : i+3])
		}
		s = b.String()
	}
	if neg {
		return "-" + s
	}
	return s
}

// Thousands renders v/1000 rounded to the nearest thousand, matching the
// paper's Table 1 units ("cache misses in thousands").
func Thousands(v int64) string {
	return GroupInt((v + 500) / 1000)
}

// Bar renders a horizontal bar proportional to v/max, width chars wide,
// used for the textual "figures".
func Bar(v, max int64, width int) string {
	if max <= 0 {
		max = 1
	}
	n := int(v * int64(width) / max)
	if n < 0 {
		n = 0
	}
	if n > width {
		n = width
	}
	return strings.Repeat("#", n)
}

// Summary holds min/max/mean of a per-node metric, for load-imbalance
// reporting.
type Summary struct {
	Min, Max, Mean int64
}

// Summarize computes a Summary over vals (zero Summary for empty input).
func Summarize(vals []int64) Summary {
	if len(vals) == 0 {
		return Summary{}
	}
	s := Summary{Min: vals[0], Max: vals[0]}
	var total int64
	for _, v := range vals {
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
		total += v
	}
	s.Mean = total / int64(len(vals))
	return s
}

// Imbalance returns max/mean as a percentage above perfect balance
// (0 = perfectly balanced).
func (s Summary) Imbalance() float64 {
	if s.Mean == 0 {
		return 0
	}
	return (float64(s.Max)/float64(s.Mean) - 1) * 100
}

// String renders "min 1,000 / mean 2,000 / max 3,000 (+50.0% imbalance)".
func (s Summary) String() string {
	return fmt.Sprintf("min %s / mean %s / max %s (+%.1f%% imbalance)",
		GroupInt(s.Min), GroupInt(s.Mean), GroupInt(s.Max), s.Imbalance())
}

// Speedup formats the ratio base/v as "x.xx" (how much faster v is than
// base; >1 means faster).
func Speedup(base, v int64) string {
	if v == 0 {
		return "inf"
	}
	return fmt.Sprintf("%.2f", float64(base)/float64(v))
}
