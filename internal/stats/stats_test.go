package stats

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestGroupInt(t *testing.T) {
	cases := map[int64]string{
		0:        "0",
		7:        "7",
		999:      "999",
		1000:     "1,000",
		1234567:  "1,234,567",
		-9876543: "-9,876,543",
		12:       "12",
		123456:   "123,456",
	}
	for v, want := range cases {
		if got := GroupInt(v); got != want {
			t.Errorf("GroupInt(%d) = %q, want %q", v, got, want)
		}
	}
}

// Property: GroupInt is the plain decimal rendering with commas removed.
func TestGroupIntProperty(t *testing.T) {
	f := func(v int64) bool {
		s := strings.ReplaceAll(GroupInt(v), ",", "")
		var back int64
		neg := false
		for i := 0; i < len(s); i++ {
			if s[i] == '-' {
				neg = true
				continue
			}
			back = back*10 + int64(s[i]-'0')
		}
		if neg {
			back = -back
		}
		return back == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestThousands(t *testing.T) {
	if got := Thousands(3215700); got != "3,216" {
		t.Fatalf("Thousands rounding: %q", got)
	}
	if got := Thousands(499); got != "0" {
		t.Fatalf("Thousands(499) = %q", got)
	}
	if got := Thousands(500); got != "1" {
		t.Fatalf("Thousands(500) = %q", got)
	}
}

func TestBar(t *testing.T) {
	if got := Bar(50, 100, 10); got != "#####" {
		t.Fatalf("Bar = %q", got)
	}
	if got := Bar(200, 100, 10); got != "##########" {
		t.Fatalf("Bar clamp = %q", got)
	}
	if got := Bar(5, 0, 10); len(got) > 10 {
		t.Fatalf("Bar with zero max = %q", got)
	}
}

func TestSpeedup(t *testing.T) {
	if got := Speedup(200, 100); got != "2.00" {
		t.Fatalf("Speedup = %q", got)
	}
	if got := Speedup(100, 0); got != "inf" {
		t.Fatalf("Speedup by zero = %q", got)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Table 1", "scc", "mcc")
	tb.AddInts("Stencil", map[string]int64{"scc": 3216, "mcc": 6374})
	tb.AddRow("Adaptive", map[string]string{"scc": "-", "mcc": "x"})
	out := tb.String()
	for _, want := range []string{"Table 1", "workload", "scc", "mcc", "3,216", "6,374", "Adaptive", "-"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("table has %d lines:\n%s", len(lines), out)
	}
}

func TestNodeCountersAdd(t *testing.T) {
	a := NodeCounters{Hits: 1, Misses: 2, RemoteMisses: 3, LocalFills: 4,
		Upgrades: 5, InvalidationsSent: 6, InvalidationsRecv: 7, Flushes: 8,
		WordsFlushed: 9, Marks: 10, Barriers: 11, CopiedWords: 12}
	var b NodeCounters
	b.Add(&a)
	b.Add(&a)
	if b.Hits != 2 || b.Misses != 4 || b.CopiedWords != 24 || b.Barriers != 22 {
		t.Fatalf("Add: %+v", b)
	}
}

func TestSharedSnapshotAndReset(t *testing.T) {
	var s Shared
	s.CleanCopiesHome.Add(3)
	s.WriteConflicts.Add(1)
	snap := s.Snapshot()
	if snap.CleanCopiesHome != 3 || snap.WriteConflicts != 1 {
		t.Fatalf("snapshot %+v", snap)
	}
	s.Reset()
	if got := s.Snapshot(); got != (Snapshot{}) {
		t.Fatalf("reset left %+v", got)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]int64{10, 20, 30})
	if s.Min != 10 || s.Max != 30 || s.Mean != 20 {
		t.Fatalf("summary %+v", s)
	}
	if got := s.Imbalance(); got != 50 {
		t.Fatalf("imbalance %v", got)
	}
	if !strings.Contains(s.String(), "+50.0% imbalance") {
		t.Fatalf("string %q", s.String())
	}
	if z := Summarize(nil); z != (Summary{}) {
		t.Fatalf("empty %+v", z)
	}
	if (Summary{}).Imbalance() != 0 {
		t.Fatal("zero-mean imbalance")
	}
}
