package memsys

import (
	"testing"
	"testing/quick"
)

func TestAllocGeometry(t *testing.T) {
	as := NewAddressSpace(4, 32)
	r1 := as.Alloc("a", 100, KindCoherent, Interleaved) // pads to 128
	r2 := as.Alloc("b", 32, KindLCM, Blocked)
	if r1.Base != 0 || r1.Size != 128 {
		t.Fatalf("r1 base/size = %d/%d, want 0/128", r1.Base, r1.Size)
	}
	if r2.Base != 128 {
		t.Fatalf("r2 base = %d, want 128", r2.Base)
	}
	if got := r1.NumBlocks(); got != 4 {
		t.Fatalf("r1 blocks = %d, want 4", got)
	}
	as.Freeze()
	if as.NumBlocks() != 5 {
		t.Fatalf("total blocks = %d, want 5", as.NumBlocks())
	}
}

func TestSplitRoundTrip(t *testing.T) {
	as := NewAddressSpace(2, 64)
	as.Alloc("a", 1024, KindCoherent, Interleaved)
	as.Freeze()
	for a := Addr(0); a < 1024; a += 7 {
		b, off := as.Split(a)
		if got := as.BlockBase(b) + Addr(off); got != a {
			t.Fatalf("split(%d) = (%d,%d) does not recombine (%d)", a, b, off, got)
		}
	}
}

func TestInterleavedHomes(t *testing.T) {
	as := NewAddressSpace(4, 32)
	r := as.Alloc("a", 32*8, KindCoherent, Interleaved)
	as.Freeze()
	for i := uint32(0); i < r.NumBlocks(); i++ {
		if got := as.HomeOf(r.FirstBlock() + BlockID(i)); got != int(i)%4 {
			t.Fatalf("block %d home = %d, want %d", i, got, i%4)
		}
	}
}

func TestBlockedHomes(t *testing.T) {
	as := NewAddressSpace(4, 32)
	r := as.Alloc("a", 32*8, KindCoherent, Blocked)
	as.Freeze()
	want := []int{0, 0, 1, 1, 2, 2, 3, 3}
	for i, w := range want {
		if got := as.HomeOf(r.FirstBlock() + BlockID(i)); got != w {
			t.Fatalf("block %d home = %d, want %d", i, got, w)
		}
	}
}

func TestBlockedHomesUneven(t *testing.T) {
	// 10 blocks over 4 nodes: ceil(10/4)=3 per node -> 3,3,3,1.
	as := NewAddressSpace(4, 32)
	r := as.Alloc("a", 32*10, KindCoherent, Blocked)
	as.Freeze()
	counts := make([]int, 4)
	for i := uint32(0); i < r.NumBlocks(); i++ {
		counts[as.HomeOf(r.FirstBlock()+BlockID(i))]++
	}
	if counts[0] != 3 || counts[1] != 3 || counts[2] != 3 || counts[3] != 1 {
		t.Fatalf("blocked home counts = %v", counts)
	}
}

func TestSingleHome(t *testing.T) {
	as := NewAddressSpace(8, 32)
	r := as.AllocAt("a", 32*5, KindCoherent, SingleHome, 3)
	as.Freeze()
	for i := uint32(0); i < r.NumBlocks(); i++ {
		if got := as.HomeOf(r.FirstBlock() + BlockID(i)); got != 3 {
			t.Fatalf("block %d home = %d, want 3", i, got)
		}
	}
}

func TestRegionLookup(t *testing.T) {
	as := NewAddressSpace(2, 32)
	r1 := as.Alloc("a", 64, KindCoherent, Interleaved)
	r2 := as.Alloc("b", 64, KindLCM, Interleaved)
	// Pre-freeze lookup uses binary search.
	if got := as.RegionOf(r2.Base + 10); got != r2 {
		t.Fatalf("pre-freeze RegionOf -> %v, want b", got)
	}
	as.Freeze()
	if got := as.RegionOf(r1.Base); got != r1 {
		t.Fatalf("RegionOf(r1.Base) -> %v", got)
	}
	if got := as.RegionOf(r2.End() - 1); got != r2 {
		t.Fatalf("RegionOf(end-1) -> %v", got)
	}
	if got := as.RegionOf(r2.End()); got != nil {
		t.Fatalf("RegionOf past end -> %v, want nil", got)
	}
	if got := as.RegionOfBlock(r2.FirstBlock()); got != r2 {
		t.Fatalf("RegionOfBlock -> %v", got)
	}
}

func TestHomeDataDistinct(t *testing.T) {
	as := NewAddressSpace(2, 32)
	as.Alloc("a", 96, KindCoherent, Interleaved)
	as.Freeze()
	d0 := as.HomeData(0)
	d1 := as.HomeData(1)
	if len(d0) != 32 || len(d1) != 32 {
		t.Fatalf("block data lengths %d,%d", len(d0), len(d1))
	}
	d0[0] = 0xAA
	if d1[0] == 0xAA {
		t.Fatal("blocks alias")
	}
	if as.HomeBytes(0, 1)[0] != 0xAA {
		t.Fatal("HomeBytes does not alias HomeData")
	}
}

func TestFreezeGuards(t *testing.T) {
	as := NewAddressSpace(2, 32)
	as.Alloc("a", 32, KindCoherent, Interleaved)
	as.Freeze()
	as.Freeze() // idempotent
	mustPanic(t, func() { as.Alloc("b", 32, KindCoherent, Interleaved) })
}

func TestConstructorValidation(t *testing.T) {
	mustPanic(t, func() { NewAddressSpace(0, 32) })
	mustPanic(t, func() { NewAddressSpace(2, 33) })
	mustPanic(t, func() { NewAddressSpace(2, 4) })
	as := NewAddressSpace(2, 32)
	mustPanic(t, func() { as.Alloc("z", 0, KindCoherent, Interleaved) })
	mustPanic(t, func() { as.AllocAt("z", 32, KindCoherent, SingleHome, 9) })
}

func TestKindAndPolicyStrings(t *testing.T) {
	if KindLCM.String() != "lcm" || KindCoherent.String() != "coherent" ||
		KindReduction.String() != "reduction" || KindStale.String() != "stale" {
		t.Fatal("kind strings")
	}
	if Interleaved.String() != "interleaved" || Blocked.String() != "blocked" ||
		SingleHome.String() != "singlehome" {
		t.Fatal("home policy strings")
	}
}

// Property: every block of every region maps to a home in [0,P) and the
// region lookup agrees with the allocation, for arbitrary small layouts.
func TestHomeMapProperty(t *testing.T) {
	f := func(p uint8, sizes []uint16, policy uint8) bool {
		np := int(p)%8 + 1
		as := NewAddressSpace(np, 32)
		if len(sizes) > 16 {
			sizes = sizes[:16]
		}
		var regs []*Region
		for i, s := range sizes {
			sz := uint64(s)%2048 + 1
			pol := HomePolicy(int(policy+uint8(i)) % 3)
			regs = append(regs, as.AllocAt("r", sz, KindCoherent, pol, i%np))
		}
		if len(regs) == 0 {
			return true
		}
		as.Freeze()
		for _, r := range regs {
			for i := uint32(0); i < r.NumBlocks(); i++ {
				b := r.FirstBlock() + BlockID(i)
				h := as.HomeOf(b)
				if h < 0 || h >= np {
					return false
				}
				if as.RegionOfBlock(b) != r {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}
