// Package memsys implements the global address space of the simulated
// machine: block geometry, region allocation, home-node mapping, and the
// per-region memory-system policy attributes that the RSM model exposes to
// the compiler (Section 3 of the paper).
//
// Physically distributed memory is addressed through a single global byte
// address space.  The space is carved into fixed-size blocks (the coherence
// transfer unit).  Every block has a home node determined by its region's
// home policy.  Regions also carry the RSM policy directives: which request
// policy governs copies of their blocks and which reconciliation function
// combines returned copies.
package memsys

import (
	"fmt"
	"math/bits"
	"sort"
)

// Addr is a global byte address in the simulated shared address space.
type Addr uint64

// BlockID identifies a coherence block: Addr >> blockShift.  Blocks are
// dense from 0, so protocols index flat per-block tables with them.
type BlockID uint32

// Kind selects the memory-system policy family for a region.  It is the
// program-visible RSM directive: it tells the active protocol which request
// and reconciliation policies govern the region's blocks.
type Kind uint8

const (
	// KindCoherent is the default sequentially consistent cache-coherent
	// policy (the Stache behaviour): single-writer, last-value-wins
	// reconciliation.
	KindCoherent Kind = iota
	// KindLCM marks the region loosely coherent: writes create private
	// copies (copy-on-write after MarkModification) and copies are
	// merged word-by-word at ReconcileCopies.
	KindLCM
	// KindReduction marks an LCM region whose reconciliation combines
	// values with an associative operator instead of overwriting (the
	// C** "%=" reduction assignments and Section 7.1 reductions).
	KindReduction
	// KindStale marks a region whose read-only copies may survive
	// reconciliation and serve stale values until the consumer refreshes
	// them (Section 7.5).
	KindStale
)

func (k Kind) String() string {
	switch k {
	case KindCoherent:
		return "coherent"
	case KindLCM:
		return "lcm"
	case KindReduction:
		return "reduction"
	case KindStale:
		return "stale"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// HomePolicy selects how a region's blocks map to home nodes.
type HomePolicy uint8

const (
	// Interleaved assigns homes block-cyclically across all nodes, the
	// default for shared heap data.
	Interleaved HomePolicy = iota
	// Blocked splits the region into P contiguous chunks, chunk i homed
	// at node i (owner-compute layouts).
	Blocked
	// SingleHome places every block of the region at one node.
	SingleHome
)

func (h HomePolicy) String() string {
	switch h {
	case Interleaved:
		return "interleaved"
	case Blocked:
		return "blocked"
	case SingleHome:
		return "singlehome"
	default:
		return fmt.Sprintf("HomePolicy(%d)", uint8(h))
	}
}

// Region is a contiguous allocation in the global address space with
// uniform policy attributes.  Regions are created before the machine is
// frozen and are immutable afterwards except for the protocol's private
// Attr field.
type Region struct {
	Name string
	Base Addr
	Size uint64

	Kind Kind
	Home HomePolicy
	// HomeNode is the home for SingleHome regions.
	HomeNode int

	// Reconciler, when non-nil, overrides the kind's default
	// reconciliation function for this region.  It is declared as an
	// opaque interface here to keep memsys at the bottom of the package
	// graph; internal/core defines the concrete Reconciler type and
	// performs the type assertion.
	Reconciler any

	// ConflictCheck enables Section 7.2/7.3 semantic-violation detection
	// for this region: multiple writers of one word, and read/write
	// copy co-existence, are recorded at reconcile time.
	ConflictCheck bool

	// FlushReads, with ConflictCheck, makes reconciliation invalidate
	// all read-only copies of the region so every phase's reads fault
	// and are observed ("actual" rather than "potential" violation
	// detection).
	FlushReads bool

	// StalePhases is, for KindStale regions, the number of reconcile
	// phases a consumer copy may survive before it must be refreshed.
	StalePhases int

	firstBlock BlockID
	nBlocks    uint32
	as         *AddressSpace
}

// End returns the first address past the region.
func (r *Region) End() Addr { return r.Base + Addr(r.Size) }

// Contains reports whether a lies inside the region.
func (r *Region) Contains(a Addr) bool { return a >= r.Base && a < r.End() }

// FirstBlock returns the region's first block.
func (r *Region) FirstBlock() BlockID { return r.firstBlock }

// NumBlocks returns the number of blocks spanned by the region.
func (r *Region) NumBlocks() uint32 { return r.nBlocks }

// AddressSpace is the machine-wide global memory: the allocator, the
// region table, the home map, and the home ("main memory") image of every
// block.  All allocation happens before Freeze; afterwards the structure
// is immutable and safe for concurrent readers, except for the home image
// bytes which protocols mutate under per-block locks.
type AddressSpace struct {
	P          int
	BlockSize  uint32
	blockShift uint
	frozen     bool

	next    Addr
	regions []*Region

	// home[b] is the home node of block b, built at Freeze.
	home []int32
	// rehomed, when non-nil, overrides home for degraded-mode recovery:
	// rehomed[b] == rehomeNone means "use home[b]", anything else is the
	// migrated home.  Allocated lazily by Rehome so the fault-free HomeOf
	// fast path costs one nil check.  Mutated only while the machine is
	// quiescent at a deterministic point (a single running node under the
	// deterministic scheduler).
	rehomed []int32
	// regionOf[b] is the index into regions of block b's region.
	regionOf []uint16
	// data is the home image, indexed by Addr.
	data []byte
}

// rehomeNone marks a block whose home has not migrated.
const rehomeNone = int32(-1)

// NewAddressSpace creates an address space for p nodes with the given
// block size (a power of two, at least 8 bytes).
func NewAddressSpace(p int, blockSize uint32) *AddressSpace {
	if p < 1 {
		panic(fmt.Sprintf("memsys: node count %d out of range", p))
	}
	if blockSize < 8 || bits.OnesCount32(blockSize) != 1 {
		panic(fmt.Sprintf("memsys: block size %d must be a power of two >= 8", blockSize))
	}
	return &AddressSpace{
		P:          p,
		BlockSize:  blockSize,
		blockShift: uint(bits.TrailingZeros32(blockSize)),
	}
}

// Alloc reserves a region of size bytes with the given policies.  The
// region is block-aligned and padded to a whole number of blocks so that
// distinct regions never share a block.  Alloc panics after Freeze.
func (as *AddressSpace) Alloc(name string, size uint64, kind Kind, home HomePolicy) *Region {
	return as.AllocAt(name, size, kind, home, 0)
}

// AllocAt is Alloc with an explicit home node for SingleHome regions.
func (as *AddressSpace) AllocAt(name string, size uint64, kind Kind, home HomePolicy, homeNode int) *Region {
	if as.frozen {
		panic("memsys: Alloc after Freeze")
	}
	if size == 0 {
		panic("memsys: zero-size region " + name)
	}
	if homeNode < 0 || homeNode >= as.P {
		panic(fmt.Sprintf("memsys: home node %d out of range", homeNode))
	}
	bs := uint64(as.BlockSize)
	padded := (size + bs - 1) / bs * bs
	r := &Region{
		Name:       name,
		Base:       as.next,
		Size:       padded,
		Kind:       kind,
		Home:       home,
		HomeNode:   homeNode,
		firstBlock: BlockID(uint64(as.next) >> as.blockShift),
		nBlocks:    uint32(padded / bs),
		as:         as,
	}
	as.next += Addr(padded)
	as.regions = append(as.regions, r)
	return r
}

// Freeze finalizes the address space: it materializes the home map, the
// region lookup table and the home data image.  After Freeze no further
// allocation is permitted.
func (as *AddressSpace) Freeze() {
	if as.frozen {
		return
	}
	as.frozen = true
	n := as.NumBlocks()
	as.home = make([]int32, n)
	as.regionOf = make([]uint16, n)
	as.data = make([]byte, uint64(as.next))
	if len(as.regions) > 1<<16 {
		panic("memsys: too many regions")
	}
	for ri, r := range as.regions {
		for i := uint32(0); i < r.nBlocks; i++ {
			b := r.firstBlock + BlockID(i)
			as.regionOf[b] = uint16(ri)
			as.home[b] = int32(r.homeOf(i, as.P))
		}
	}
}

// homeOf computes the home node for the i-th block of the region.
func (r *Region) homeOf(i uint32, p int) int {
	switch r.Home {
	case Interleaved:
		return int(i) % p
	case Blocked:
		per := (r.nBlocks + uint32(p) - 1) / uint32(p)
		h := int(i / per)
		if h >= p {
			h = p - 1
		}
		return h
	case SingleHome:
		return r.HomeNode
	default:
		panic("memsys: unknown home policy")
	}
}

// Frozen reports whether Freeze has run.
func (as *AddressSpace) Frozen() bool { return as.frozen }

// NumBlocks returns the total number of blocks allocated so far.
func (as *AddressSpace) NumBlocks() uint32 {
	return uint32(uint64(as.next) >> as.blockShift)
}

// Block returns the block containing a.
func (as *AddressSpace) Block(a Addr) BlockID {
	return BlockID(uint64(a) >> as.blockShift)
}

// Split returns the block containing a and a's byte offset within it.
func (as *AddressSpace) Split(a Addr) (BlockID, uint32) {
	return BlockID(uint64(a) >> as.blockShift), uint32(a) & (as.BlockSize - 1)
}

// BlockBase returns the first address of block b.
func (as *AddressSpace) BlockBase(b BlockID) Addr {
	return Addr(uint64(b) << as.blockShift)
}

// HomeOf returns the effective home node of block b — the Freeze-time
// home unless degraded-mode recovery migrated it.  Valid after Freeze.
func (as *AddressSpace) HomeOf(b BlockID) int {
	if as.rehomed != nil {
		if h := as.rehomed[b]; h != rehomeNone {
			return int(h)
		}
	}
	return int(as.home[b])
}

// BaseHomeOf returns the Freeze-time home of block b, ignoring any
// degraded-mode migration.
func (as *AddressSpace) BaseHomeOf(b BlockID) int { return int(as.home[b]) }

// Rehome migrates every block whose effective home is `from` to node
// `to`, returning the number of blocks moved.  It implements degraded-
// mode recovery: a node declared dead hands its home responsibility —
// directory authority and the charging destination for fetches, flushes
// and merges — to a live peer.  The home image itself needs no copy in
// the simulator (data is a global array indexed by block), which models
// the recovering peer adopting the dead node's memory pages.
//
// Call only at a deterministic quiescent point: under the deterministic
// scheduler with the calling node holding the token, so no reader can
// observe a half-migrated map.
func (as *AddressSpace) Rehome(from, to int) int64 {
	if !as.frozen {
		panic("memsys: Rehome before Freeze")
	}
	if from == to || from < 0 || from >= as.P || to < 0 || to >= as.P {
		panic(fmt.Sprintf("memsys: Rehome(%d, %d) invalid for P=%d", from, to, as.P))
	}
	if as.rehomed == nil {
		as.rehomed = make([]int32, len(as.home))
		for i := range as.rehomed {
			as.rehomed[i] = rehomeNone
		}
	}
	var moved int64
	for b := range as.home {
		if as.HomeOf(BlockID(b)) == from {
			as.rehomed[b] = int32(to)
			moved++
		}
	}
	return moved
}

// RegionOfBlock returns the region owning block b.  Valid after Freeze.
func (as *AddressSpace) RegionOfBlock(b BlockID) *Region {
	return as.regions[as.regionOf[b]]
}

// RegionOf returns the region containing address a, or nil if a is
// unallocated.  Works before Freeze (binary search over regions).
func (as *AddressSpace) RegionOf(a Addr) *Region {
	if as.frozen {
		if a >= as.next {
			return nil
		}
		return as.RegionOfBlock(as.Block(a))
	}
	i := sort.Search(len(as.regions), func(i int) bool { return as.regions[i].End() > a })
	if i < len(as.regions) && as.regions[i].Contains(a) {
		return as.regions[i]
	}
	return nil
}

// Regions returns the region table (do not mutate).
func (as *AddressSpace) Regions() []*Region { return as.regions }

// HomeData returns the home ("main memory") image of block b.  Protocols
// must hold the block's lock to mutate it; initialization code may write it
// freely before the machine starts running.
func (as *AddressSpace) HomeData(b BlockID) []byte {
	base := uint64(b) << as.blockShift
	return as.data[base : base+uint64(as.BlockSize) : base+uint64(as.BlockSize)]
}

// HomeBytes exposes the raw home image for a byte range, for sequential
// initialization and verification outside the protocol (for example,
// loading the initial mesh and checking final answers).
func (as *AddressSpace) HomeBytes(a Addr, n int) []byte {
	return as.data[a : a+Addr(n)]
}
