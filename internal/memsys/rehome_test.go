package memsys

import "testing"

// rehomeSpace builds a frozen 4-node space with one interleaved region so
// every node homes some blocks.
func rehomeSpace(t *testing.T) (*AddressSpace, *Region) {
	t.Helper()
	as := NewAddressSpace(4, 32)
	r := as.Alloc("data", 32*32, KindCoherent, Interleaved)
	as.Freeze()
	return as, r
}

// TestRehomeMigratesEveryBlock: after Rehome(from, to), no block's
// effective home is `from`, the migrated blocks answer `to`, other homes
// are untouched, and BaseHomeOf still reports the Freeze-time layout.
func TestRehomeMigratesEveryBlock(t *testing.T) {
	as, r := rehomeSpace(t)
	before := make([]int, r.NumBlocks())
	var expect int64
	for i := range before {
		before[i] = as.HomeOf(r.FirstBlock() + BlockID(i))
		if before[i] == 2 {
			expect++
		}
	}
	if expect == 0 {
		t.Fatal("interleaved layout homes nothing at node 2; test proves nothing")
	}
	if moved := as.Rehome(2, 0); moved != expect {
		t.Fatalf("Rehome moved %d blocks, want %d", moved, expect)
	}
	for i := range before {
		b := r.FirstBlock() + BlockID(i)
		want := before[i]
		if want == 2 {
			want = 0
		}
		if got := as.HomeOf(b); got != want {
			t.Errorf("block %d: HomeOf = %d, want %d", b, got, want)
		}
		if got := as.BaseHomeOf(b); got != before[i] {
			t.Errorf("block %d: BaseHomeOf = %d, want Freeze-time home %d", b, got, before[i])
		}
	}
}

// TestRehomeChains: a second migration moves the adopter's entire
// responsibility, including blocks it adopted earlier (effective home,
// not base home, decides).
func TestRehomeChains(t *testing.T) {
	as, r := rehomeSpace(t)
	as.Rehome(2, 3)
	as.Rehome(3, 1)
	for i := uint32(0); i < r.NumBlocks(); i++ {
		b := r.FirstBlock() + BlockID(i)
		if h := as.HomeOf(b); h == 2 || h == 3 {
			t.Errorf("block %d still homed at dead node %d after chained rehoming", b, h)
		}
		if base := as.BaseHomeOf(b); base == 2 || base == 3 {
			if got := as.HomeOf(b); got != 1 {
				t.Errorf("block %d (base home %d): HomeOf = %d, want final adopter 1", b, base, got)
			}
		}
	}
}

// TestRehomeValidation: migration is only legal on a frozen space between
// distinct valid nodes.
func TestRehomeValidation(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	unfrozen := NewAddressSpace(4, 32)
	unfrozen.Alloc("data", 64, KindCoherent, Interleaved)
	mustPanic("Rehome before Freeze", func() { unfrozen.Rehome(1, 0) })

	as, _ := rehomeSpace(t)
	mustPanic("Rehome(1,1)", func() { as.Rehome(1, 1) })
	mustPanic("Rehome(-1,0)", func() { as.Rehome(-1, 0) })
	mustPanic("Rehome(0,4)", func() { as.Rehome(0, 4) })
}

// TestRehomeUntouchedSpaceCostsNothing: before any migration the lazy
// indirection is absent and HomeOf answers from the base map alone.
func TestRehomeUntouchedSpaceCostsNothing(t *testing.T) {
	as, r := rehomeSpace(t)
	for i := uint32(0); i < r.NumBlocks(); i++ {
		b := r.FirstBlock() + BlockID(i)
		if as.HomeOf(b) != as.BaseHomeOf(b) {
			t.Fatalf("block %d: effective and base home differ before any Rehome", b)
		}
	}
}
