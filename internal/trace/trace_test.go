package trace

import (
	"strings"
	"testing"
)

func TestRecordAndNodeEvents(t *testing.T) {
	b := New(2, 4)
	b.Record(0, 10, ReadMiss, 7, 0)
	b.Record(0, 20, Mark, 7, 0)
	b.Record(1, 15, Flush, 9, 3)
	ev := b.NodeEvents(0)
	if len(ev) != 2 || ev[0].Kind != ReadMiss || ev[1].Kind != Mark {
		t.Fatalf("node 0 events %v", ev)
	}
	if ev[0].Clock != 10 || ev[1].Block != 7 {
		t.Fatalf("event fields %v", ev)
	}
	if got := b.NodeEvents(1); len(got) != 1 || got[0].Arg != 3 {
		t.Fatalf("node 1 events %v", got)
	}
}

func TestRingWrap(t *testing.T) {
	b := New(1, 3)
	for i := 0; i < 5; i++ {
		b.Record(0, int64(i), Flush, uint32(i), 0)
	}
	ev := b.NodeEvents(0)
	if len(ev) != 3 {
		t.Fatalf("retained %d, want 3", len(ev))
	}
	// Oldest events dropped; order preserved.
	if ev[0].Clock != 2 || ev[2].Clock != 4 {
		t.Fatalf("wrap order %v", ev)
	}
}

func TestMergedOrdersByClock(t *testing.T) {
	b := New(3, 8)
	b.Record(2, 30, Commit, 1, 0)
	b.Record(0, 10, ReadMiss, 1, 0)
	b.Record(1, 20, WriteMiss, 1, 0)
	m := b.Merged()
	if len(m) != 3 || m[0].Clock != 10 || m[1].Clock != 20 || m[2].Clock != 30 {
		t.Fatalf("merged %v", m)
	}
}

func TestCountKindAndDump(t *testing.T) {
	b := New(2, 8)
	b.Record(0, 1, Invalidate, 5, 1)
	b.Record(1, 2, Invalidate, 5, 0)
	b.Record(1, 3, BarrierEvt, 0, 0)
	if got := b.CountKind(Invalidate); got != 2 {
		t.Fatalf("count = %d", got)
	}
	d := b.Dump(0)
	if !strings.Contains(d, "invalidate") || !strings.Contains(d, "barrier") {
		t.Fatalf("dump:\n%s", d)
	}
	if lines := strings.Count(b.Dump(1), "\n"); lines != 1 {
		t.Fatalf("limited dump has %d lines", lines)
	}
}

func TestKindStrings(t *testing.T) {
	for k, want := range map[Kind]string{
		ReadMiss: "read-miss", WriteMiss: "write-miss", Upgrade: "upgrade",
		Mark: "mark", Flush: "flush", Invalidate: "invalidate",
		Commit: "commit", BarrierEvt: "barrier", Conflict: "conflict",
	} {
		if k.String() != want {
			t.Fatalf("%d -> %q", k, k.String())
		}
	}
}

func TestZeroCapacityClamped(t *testing.T) {
	b := New(1, 0)
	b.Record(0, 1, Mark, 0, 0)
	if len(b.NodeEvents(0)) != 1 {
		t.Fatal("clamped capacity broken")
	}
}
