// Package trace records protocol events in per-node ring buffers for
// debugging and for tests that assert on event sequences.
//
// Tracing is off by default and costs one predictable branch when
// disabled.  When enabled, each node's events go to its own fixed-size
// ring, so tracing never allocates on the hot path and never introduces
// cross-node synchronization that could perturb the behaviour being
// traced.  Events carry the node's virtual clock, so a merged dump shows
// the simulated interleaving rather than the host's.
package trace

import (
	"fmt"
	"sort"
	"strings"
)

// Kind labels one protocol event.
type Kind uint8

// Event kinds.
const (
	None Kind = iota
	// ReadMiss: a load fault was serviced.
	ReadMiss
	// WriteMiss: a store fault was serviced with data.
	WriteMiss
	// Upgrade: a store fault was serviced without data.
	Upgrade
	// Mark: an LCM MarkModification (explicit or copy-on-write).
	Mark
	// Flush: a private-modified block returned home.
	Flush
	// Invalidate: a copy was revoked.
	Invalidate
	// Commit: a home committed a reconciled block.
	Commit
	// BarrierEvt: the node passed a global barrier.
	BarrierEvt
	// Conflict: a semantic violation was recorded.
	Conflict
)

// String returns the event kind's short name.
func (k Kind) String() string {
	switch k {
	case ReadMiss:
		return "read-miss"
	case WriteMiss:
		return "write-miss"
	case Upgrade:
		return "upgrade"
	case Mark:
		return "mark"
	case Flush:
		return "flush"
	case Invalidate:
		return "invalidate"
	case Commit:
		return "commit"
	case BarrierEvt:
		return "barrier"
	case Conflict:
		return "conflict"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Event is one recorded protocol event.
type Event struct {
	Clock int64
	Node  int16
	Kind  Kind
	Block uint32
	// Arg is kind-specific: the peer node for Invalidate, the modified
	// word count for Flush/Commit, zero otherwise.
	Arg int32
}

// String renders an event for dumps.
func (e Event) String() string {
	return fmt.Sprintf("[%12d] n%-2d %-10s b%-6d arg=%d", e.Clock, e.Node, e.Kind, e.Block, e.Arg)
}

// Buffer is a per-machine trace: one ring per node.
type Buffer struct {
	rings [][]Event
	next  []int
	wrap  []bool
	cap   int
}

// New creates a Buffer for p nodes with the given per-node capacity.
func New(p, capacity int) *Buffer {
	if capacity < 1 {
		capacity = 1
	}
	b := &Buffer{
		rings: make([][]Event, p),
		next:  make([]int, p),
		wrap:  make([]bool, p),
		cap:   capacity,
	}
	for i := range b.rings {
		b.rings[i] = make([]Event, capacity)
	}
	return b
}

// Record appends an event to node's ring.  Only the owning node's
// goroutine (or a barrier-window committer acting as that node) may call
// it for a given node.
func (b *Buffer) Record(node int, clock int64, kind Kind, block uint32, arg int32) {
	r := b.rings[node]
	i := b.next[node]
	r[i] = Event{Clock: clock, Node: int16(node), Kind: kind, Block: block, Arg: arg}
	i++
	if i == b.cap {
		i = 0
		b.wrap[node] = true
	}
	b.next[node] = i
}

// NodeEvents returns node's retained events in recording order.
func (b *Buffer) NodeEvents(node int) []Event {
	r := b.rings[node]
	if !b.wrap[node] {
		out := make([]Event, b.next[node])
		copy(out, r[:b.next[node]])
		return out
	}
	out := make([]Event, 0, b.cap)
	out = append(out, r[b.next[node]:]...)
	out = append(out, r[:b.next[node]]...)
	return out
}

// Merged returns all retained events ordered by virtual clock (ties by
// node then recording order).  Call only while the machine is quiescent.
func (b *Buffer) Merged() []Event {
	var all []Event
	for n := range b.rings {
		all = append(all, b.NodeEvents(n)...)
	}
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].Clock != all[j].Clock {
			return all[i].Clock < all[j].Clock
		}
		return all[i].Node < all[j].Node
	})
	return all
}

// CountKind returns how many retained events have the given kind.
func (b *Buffer) CountKind(k Kind) int {
	total := 0
	for n := range b.rings {
		for _, e := range b.NodeEvents(n) {
			if e.Kind == k {
				total++
			}
		}
	}
	return total
}

// Dump renders the merged trace, at most limit lines (0 = all).
func (b *Buffer) Dump(limit int) string {
	events := b.Merged()
	if limit > 0 && len(events) > limit {
		events = events[len(events)-limit:]
	}
	var sb strings.Builder
	for _, e := range events {
		sb.WriteString(e.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}
