package check

import "fmt"

// val derives a unique, recognizable value for a write so a lost or
// misdirected update names its origin in failure output.
func val(phase, node, block, slot int) float32 {
	return float32(1000*(phase+1) + 100*node + 10*block + slot)
}

// Scripts returns the canned access programs for a machine of the given
// shape.  Each stays within the C** race discipline (one writer per
// element per phase, no reads of another node's same-phase writes) while
// maximizing protocol contention: false sharing inside blocks, ownership
// migration across phases, and cross-node read-after-reconcile chains.
func Scripts(nodes, blocks int) []Script {
	if nodes < 2 || nodes > slotsPerBlock || blocks < 2 {
		panic(fmt.Sprintf("check: unsupported shape %d nodes x %d blocks", nodes, blocks))
	}

	// pingpong: every node writes its own slot of every block each phase
	// (false sharing: all nodes contend for every block), then reads its
	// peer's previous-phase slot.  Phases alternate between two slot
	// groups so reads never touch an element being written this phase.
	if 2*nodes > slotsPerBlock {
		panic(fmt.Sprintf("check: pingpong needs 2*%d slots per block, have %d", nodes, slotsPerBlock))
	}
	group := func(ph int) int { return (ph % 2) * nodes }
	pingpong := Script{Name: "pingpong", Phases: make([][][]Op, 2)}
	for ph := range pingpong.Phases {
		pingpong.Phases[ph] = make([][]Op, nodes)
		for n := 0; n < nodes; n++ {
			var ops []Op
			for b := 0; b < blocks; b++ {
				if ph > 0 {
					ops = append(ops, Op{Block: b, Slot: (n+1)%nodes + group(ph-1)})
				}
				s := n + group(ph)
				ops = append(ops, Op{Write: true, Block: b, Slot: s, Val: val(ph, n, b, s)})
			}
			pingpong.Phases[ph][n] = ops
		}
	}

	// handoff: one rotating owner writes slot ph of every block in phase
	// ph while everyone reads the previous owner's slot — the
	// read-after-reconcile chain a lost update would break.  Writing a
	// fresh slot per phase keeps reads race-free under the discipline.
	handoff := Script{Name: "handoff", Phases: make([][][]Op, nodes+1)}
	for ph := range handoff.Phases {
		handoff.Phases[ph] = make([][]Op, nodes)
		owner := ph % nodes
		for n := 0; n < nodes; n++ {
			var ops []Op
			for b := 0; b < blocks; b++ {
				if ph > 0 {
					ops = append(ops, Op{Block: b, Slot: ph - 1})
				}
				if n == owner {
					ops = append(ops, Op{Write: true, Block: b, Slot: ph, Val: val(ph, n, b, ph)})
				}
			}
			handoff.Phases[ph][n] = ops
		}
	}

	// mixed: node 0 produces into one block while the others hammer the
	// last block's slots; the second phase swaps node 0 to the contended
	// block and the others away from it, so both blocks change their
	// reader and writer sets across one reconciliation.
	last := blocks - 1
	mixed := Script{Name: "mixed", Phases: make([][][]Op, 2)}
	for n := 0; n < nodes; n++ {
		var p0, p1 []Op
		if n == 0 {
			p0 = []Op{{Write: true, Block: 0, Slot: 0, Val: val(0, 0, 0, 0)}}
			p1 = []Op{
				{Block: last, Slot: 1}, // node 1's phase-0 value; unwritten in phase 1
				{Write: true, Block: last, Slot: 0, Val: val(1, 0, last, 0)},
			}
		} else {
			p0 = []Op{{Write: true, Block: last, Slot: n, Val: val(0, n, last, n)}}
			p1 = []Op{
				{Block: 0, Slot: 0}, // node 0's phase-0 value; unwritten in phase 1
				{Write: true, Block: 0, Slot: n, Val: val(1, n, 0, n)},
			}
		}
		mixed.Phases[0] = append(mixed.Phases[0], p0)
		mixed.Phases[1] = append(mixed.Phases[1], p1)
	}

	return []Script{pingpong, handoff, mixed}
}
