package check

import (
	"testing"

	"lcm/internal/cstar"
	"lcm/internal/fault"
)

// killCfg is the canned crash plan the nightly lcmcheck -kill run uses:
// node 1 dies recoverably at every second protocol fault, twice.
func killCfg(sys cstar.System, s Script) Config {
	return Config{
		System: sys, Nodes: 2, Blocks: 2, Script: s,
		Faults:   &fault.Plan{Seed: 0x6b111, KillNode: 1, KillAfter: 2, KillCount: 2, KillRecover: true},
		Recovery: true,
	}
}

// TestExploreKillRecoverClean: every protocol survives exploration with a
// recoverable kill injected into every run — all safety properties (single
// writer, directory/tag agreement, no lost updates, flush/commit pairing)
// must hold through checkpointed restarts on every interleaving.
func TestExploreKillRecoverClean(t *testing.T) {
	for _, sys := range []cstar.System{cstar.Copying, cstar.LCMscc, cstar.LCMmcc} {
		for _, s := range Scripts(2, 2) {
			cfg := killCfg(sys, s)
			cfg.MaxSchedules = 1000
			res, err := Explore(cfg)
			if err != nil {
				t.Fatalf("%v/%s: %v", sys, s.Name, err)
			}
			if res.Violation != nil {
				t.Errorf("%v/%s: violation under kill/restart after %d schedules: %v\n%s",
					sys, s.Name, res.Schedules, res.Violation, res.Violation.Trace)
			}
			if res.Schedules < 2 {
				t.Errorf("%v/%s: only %d schedules explored", sys, s.Name, res.Schedules)
			}
		}
	}
}

// TestExploreKillDeterministic: kill/restart does not break the
// reproducibility the search depends on — the same configuration explores
// the identical tree every time.
func TestExploreKillDeterministic(t *testing.T) {
	cfg := killCfg(cstar.LCMmcc, Scripts(2, 2)[0])
	cfg.MaxSchedules = 300
	a, err := Explore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Explore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Schedules != b.Schedules || a.Pruned != b.Pruned || a.Exhausted != b.Exhausted {
		t.Errorf("kill exploration not reproducible: %+v vs %+v", a, b)
	}
}

// TestUnrecoverableKillReported: without KillRecover the kill aborts the
// run and exploration reports it as a replayable violation instead of
// hanging or panicking the process.
func TestUnrecoverableKillReported(t *testing.T) {
	cfg := killCfg(cstar.LCMscc, Scripts(2, 2)[0])
	cfg.Faults.KillRecover = false
	cfg.MaxSchedules = 50
	res, err := Explore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil {
		t.Fatal("unrecoverable kill produced no violation")
	}
}
