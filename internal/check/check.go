// Package check is a bounded model checker for the simulated coherence
// protocols.  It drives tiny configurations — two or three nodes, two
// blocks, short scripted access sequences — through every reachable
// interleaving of the deterministic scheduler's decision tree and asserts
// protocol safety properties at every quiescent point and at the end of
// each run:
//
//   - Single writer: at most one node holds a read-write (exclusive) copy
//     of any block at any scheduling point.  (LCM's private copies use a
//     distinct tag and are exempt; multi-writer is their whole point.)
//   - Directory/tag agreement: the active protocol's own invariant audit
//     (stache.CheckInvariants / core.LCM.CheckInvariants) passes at every
//     scheduling point.
//   - No lost updates: after the final reconciliation, every element's
//     home value equals the last value the script wrote to it, computed
//     by an independent sequential oracle.
//   - Flush/commit pairing (LCM): every element flushed home is committed
//     exactly once per phase — total flushed and committed element counts
//     agree per block, and commits never appear on unflushed blocks.
//
// Exploration is a depth-first search over the scheduler's branch points.
// Each run replays a decision prefix and extends it with the canonical
// (index 0) choice; the run reports the fan-out at every step, and the
// search pushes the unexplored siblings.  Because the simulator is fully
// deterministic under the scheduler (the tentpole property), a decision
// prefix identifies a unique execution, so a violation is reported as a
// replayable path.
//
// A cheap sleep-set reduction prunes sibling branches that provably
// commute with the canonical choice: if the alternative candidate ran
// anyway at the very next step and the two adjacent segments are
// independent — neither crossed a barrier and their block-lock footprints
// are disjoint — then swapping them reaches the same states, and because
// every checked invariant is a per-block predicate, any violation visible
// in the swapped order is visible in the explored one.  -nosleep (the
// NoSleep field) disables the reduction for fully exhaustive runs.
package check

import (
	"fmt"
	"strings"

	"lcm/internal/core"
	"lcm/internal/cost"
	"lcm/internal/cstar"
	"lcm/internal/fault"
	"lcm/internal/memsys"
	"lcm/internal/sched"
	"lcm/internal/stache"
	"lcm/internal/tempest"
	"lcm/internal/trace"
)

// slotsPerBlock is the number of float32 elements per 32-byte block.
const slotsPerBlock = 8

// Op is one scripted access: a read or write of the given slot of the
// given block.  Writes store Val; reads assert the value the sequential
// oracle predicts.
type Op struct {
	Write bool
	Block int
	Slot  int
	Val   float32
}

// Script is a phased access program: Phases[p][n] is the op sequence node
// n executes in phase p.  Every phase ends with the reconciliation
// barrier (cstar.EndParallel), so phases are the protocol's epochs.
//
// Scripts must follow the C** data-race discipline the oracle can price:
// within one phase an element is written by at most one node, and a node
// only reads elements it wrote itself this phase or that were committed
// in an earlier phase.
type Script struct {
	Name   string
	Phases [][][]Op
}

// Config is one model-checking problem.
type Config struct {
	// System selects the protocol under test.
	System cstar.System
	// Nodes and Blocks size the machine (2-3 nodes, 2 blocks typical).
	Nodes  int
	Blocks int
	// Script is the access program.
	Script Script
	// MaxSchedules bounds the number of explored interleavings
	// (0 = unbounded: explore to exhaustion).
	MaxSchedules int
	// NoSleep disables the sleep-set reduction.
	NoSleep bool
	// Faults, when non-nil, attaches a deterministic fault injector to
	// every explored run.  With a KillRecover plan and Recovery set, the
	// search covers kill/restart across interleavings: the kill node's
	// recovery charge perturbs the virtual clocks, so schedules around
	// the crash point are explored, and every safety property must still
	// hold through checkpointed restarts.
	Faults *fault.Plan
	// Recovery enables checkpoint/restart (tempest.Machine.Recovery).
	Recovery bool
	// NewProtocol, when non-nil, overrides the protocol construction
	// (tests inject violating doubles here).  The protocol-specific
	// invariant audits and flush/commit pairing only run for the real
	// protocol types.
	NewProtocol func() tempest.Protocol
}

// Violation is one safety failure with everything needed to replay it.
type Violation struct {
	// Err describes the violated property.
	Err error
	// Step is the scheduler step the violation was detected at (-1 for
	// end-of-run checks).
	Step int
	// Path is the decision prefix that reaches the violation: Path[i] is
	// the index chosen among the step-i candidates (canonical order);
	// steps beyond the prefix choose index 0.
	Path []int
	// Trace is the protocol event dump of the violating run.
	Trace string
}

func (v *Violation) Error() string {
	return fmt.Sprintf("step %d, path %v: %v", v.Step, v.Path, v.Err)
}

// Result summarizes one exploration.
type Result struct {
	// Schedules is the number of distinct interleavings executed.
	Schedules int
	// Pruned counts sibling branches skipped by the sleep-set reduction.
	Pruned int
	// Exhausted reports whether the full decision tree was covered
	// (false when MaxSchedules stopped the search early).
	Exhausted bool
	// Violation is the first safety failure found, nil if none.
	Violation *Violation
}

// oracle is the sequential prediction of every observable value: the
// expected result of each read op and the final committed image.
type oracle struct {
	// reads[ph][node][i] is the expected value of op i (reads only).
	reads [][][]float32
	// final[e] is the home value of element e after the last phase.
	final []float32
}

// buildOracle validates the script's race discipline and computes the
// expected values.
func buildOracle(cfg Config) (*oracle, error) {
	elems := cfg.Blocks * slotsPerBlock
	committed := make([]float32, elems)
	o := &oracle{reads: make([][][]float32, len(cfg.Script.Phases))}
	for ph, phase := range cfg.Script.Phases {
		if len(phase) != cfg.Nodes {
			return nil, fmt.Errorf("script %s: phase %d has %d node programs, config has %d nodes",
				cfg.Script.Name, ph, len(phase), cfg.Nodes)
		}
		writer := make(map[int]int, elems) // elem -> writing node this phase
		for node, ops := range phase {
			for _, op := range ops {
				if op.Block < 0 || op.Block >= cfg.Blocks || op.Slot < 0 || op.Slot >= slotsPerBlock {
					return nil, fmt.Errorf("script %s: phase %d node %d: op out of range: %+v",
						cfg.Script.Name, ph, node, op)
				}
				if !op.Write {
					continue
				}
				e := op.Block*slotsPerBlock + op.Slot
				if w, ok := writer[e]; ok && w != node {
					return nil, fmt.Errorf("script %s: phase %d: element %d written by nodes %d and %d",
						cfg.Script.Name, ph, e, w, node)
				}
				writer[e] = node
			}
		}
		o.reads[ph] = make([][]float32, cfg.Nodes)
		for node, ops := range phase {
			own := make(map[int]float32)
			o.reads[ph][node] = make([]float32, len(ops))
			for i, op := range ops {
				e := op.Block*slotsPerBlock + op.Slot
				if op.Write {
					own[e] = op.Val
					continue
				}
				if w, ok := writer[e]; ok && w != node {
					return nil, fmt.Errorf("script %s: phase %d node %d: reads element %d while node %d writes it (racy)",
						cfg.Script.Name, ph, node, e, w)
				}
				if v, ok := own[e]; ok {
					o.reads[ph][node][i] = v
				} else {
					o.reads[ph][node][i] = committed[e]
				}
			}
		}
		for node, ops := range phase {
			for _, op := range ops {
				if op.Write && writer[op.Block*slotsPerBlock+op.Slot] == node {
					committed[op.Block*slotsPerBlock+op.Slot] = op.Val
				}
			}
		}
	}
	o.final = committed
	return o, nil
}

// runOut is everything one execution reports back to the search.
type runOut struct {
	steps  int
	fanout []int   // candidates at each step
	nodes  [][]int // candidate node IDs at each step, canonical order
	segs   []sched.Segment
	vio    *Violation
}

// runOne executes the configuration under the decision prefix path
// (canonical choice beyond it) and checks every property.
func runOne(cfg Config, o *oracle, path []int) runOut {
	newProto := cfg.NewProtocol
	if newProto == nil {
		newProto = func() tempest.Protocol { return cstar.NewProtocol(cfg.System) }
	}
	m := tempest.New(cfg.Nodes, 32, cost.Default())
	m.SetProtocol(newProto())
	tb := m.AttachTrace(4096)
	if cfg.Faults != nil {
		m.AttachFaults(*cfg.Faults)
	}
	m.Recovery = cfg.Recovery
	v := cstar.NewVectorF32(m, "v", cfg.Blocks*slotsPerBlock, cstar.DataPolicy(cfg.System), memsys.Blocked)
	m.Freeze()
	m.DetSched = true

	out := runOut{}
	firstBlock := v.Region().FirstBlock()
	nBlocks := v.Region().NumBlocks()
	m.SchedHook = func(s *sched.Scheduler) {
		s.EnableRecording()
		s.SetChooser(func(step int, cands []sched.Candidate) int {
			out.fanout = append(out.fanout, len(cands))
			ids := make([]int, len(cands))
			for i, c := range cands {
				ids[i] = c.Node
			}
			out.nodes = append(out.nodes, ids)
			if step < len(path) && path[step] < len(cands) {
				return path[step]
			}
			return 0
		})
		s.SetObserver(func(step int) {
			if out.vio != nil {
				return
			}
			if err := checkState(m, firstBlock, nBlocks); err != nil {
				out.vio = &Violation{Err: err, Step: step}
			}
		})
	}

	readErrs := make([]error, cfg.Nodes)
	runErr := m.RunErr(func(n *tempest.Node) {
		for ph, phase := range cfg.Script.Phases {
			for i, op := range phase[n.ID] {
				e := op.Block*slotsPerBlock + op.Slot
				if op.Write {
					v.Set(n, e, op.Val)
				} else if got, want := v.Get(n, e), o.reads[ph][n.ID][i]; got != want && readErrs[n.ID] == nil {
					readErrs[n.ID] = fmt.Errorf("phase %d node %d: read element %d = %v, oracle says %v",
						ph, n.ID, e, got, want)
				}
			}
			cstar.EndParallel(n)
		}
	})

	if sc := m.Sched(); sc != nil {
		out.steps = sc.Steps()
		out.segs = sc.Segments()
	}
	if out.vio == nil {
		out.vio = finalChecks(m, v, o, tb, runErr, readErrs)
	}
	if out.vio != nil {
		out.vio.Path = append([]int(nil), path...)
		out.vio.Trace = tb.Dump(200)
	}
	return out
}

// checkState asserts the quiescent-point invariants: the single-writer
// property over the script's blocks, and the protocol's own audit.
func checkState(m *tempest.Machine, first memsys.BlockID, n uint32) error {
	for i := uint32(0); i < n; i++ {
		b := first + memsys.BlockID(i)
		writers := 0
		for _, nd := range m.Nodes {
			if l := nd.Line(b); l != nil && l.Tag() == tempest.TagReadWrite {
				writers++
			}
		}
		if writers > 1 {
			return fmt.Errorf("single-writer violated: block %d has %d read-write copies", b, writers)
		}
	}
	switch p := m.Protocol().(type) {
	case *stache.Protocol:
		if err := p.CheckInvariants(); err != nil {
			return err
		}
	case *core.LCM:
		if err := p.CheckInvariants(); err != nil {
			return err
		}
	}
	return nil
}

// finalChecks runs the end-of-run properties: clean termination, read
// values against the oracle, the lost-update audit of the home image,
// quiescence, and LCM flush/commit pairing.
func finalChecks(m *tempest.Machine, v *cstar.VectorF32, o *oracle, tb *trace.Buffer, runErr error, readErrs []error) *Violation {
	if runErr != nil {
		return &Violation{Err: fmt.Errorf("run failed: %w", runErr), Step: -1}
	}
	for _, err := range readErrs {
		if err != nil {
			return &Violation{Err: err, Step: -1}
		}
	}
	switch p := m.Protocol().(type) {
	case *stache.Protocol:
		if err := p.CheckInvariants(); err != nil {
			return &Violation{Err: err, Step: -1}
		}
	case *core.LCM:
		if err := p.CheckQuiescent(); err != nil {
			return &Violation{Err: err, Step: -1}
		}
	}
	cstar.DrainToHome(m)
	for e, want := range o.final {
		if got := v.Peek(e); got != want {
			return &Violation{Err: fmt.Errorf("lost update: element %d home value %v, oracle says %v", e, got, want), Step: -1}
		}
	}
	if _, ok := m.Protocol().(*core.LCM); ok {
		if err := checkFlushCommit(tb); err != nil {
			return &Violation{Err: err, Step: -1}
		}
	}
	return nil
}

// checkFlushCommit audits the LCM trace: per block, the element counts
// flushed home and committed by reconciliation must agree, and a commit
// must never appear on a block nothing was flushed to.  (The script's
// race discipline guarantees no write-write conflicts, so every flushed
// element is committed exactly once per phase.)
func checkFlushCommit(tb *trace.Buffer) error {
	flushed := map[uint32]int64{}
	committed := map[uint32]int64{}
	for _, e := range tb.Merged() {
		switch e.Kind {
		case trace.Flush:
			flushed[e.Block] += int64(e.Arg)
		case trace.Commit:
			committed[e.Block] += int64(e.Arg)
		}
	}
	for b, c := range committed {
		if flushed[b] == 0 {
			return fmt.Errorf("flush/commit pairing: block %d committed %d elements but flushed none", b, c)
		}
	}
	for b, f := range flushed {
		if c := committed[b]; f != c {
			return fmt.Errorf("flush/commit pairing: block %d flushed %d elements, committed %d", b, f, c)
		}
	}
	return nil
}

// independent reports whether two adjacent segments commute: neither
// crossed a barrier and their block-lock footprints are disjoint.
func independent(a, b sched.Segment) bool {
	if a.Barrier || b.Barrier {
		return false
	}
	for _, x := range a.Blocks {
		for _, y := range b.Blocks {
			if x == y {
				return false
			}
		}
	}
	return true
}

// prunable reports whether sibling choice c at step i of the base run is
// covered by the sleep-set argument: the alternative candidate ran at the
// very next step anyway, and the two adjacent segments are independent,
// so the swapped order reaches the same per-block states.
func prunable(out runOut, i, c int) bool {
	if i+1 >= len(out.segs) {
		return false
	}
	alt := out.nodes[i][c]
	if out.segs[i+1].Node != alt {
		return false
	}
	return independent(out.segs[i], out.segs[i+1])
}

// Explore searches the configuration's interleaving tree depth-first and
// returns the first violation found, or a clean exhaustion report.
func Explore(cfg Config) (Result, error) {
	o, err := buildOracle(cfg)
	if err != nil {
		return Result{}, err
	}
	res := Result{}
	stack := [][]int{nil}
	for len(stack) > 0 {
		if cfg.MaxSchedules > 0 && res.Schedules >= cfg.MaxSchedules {
			return res, nil
		}
		path := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		out := runOne(cfg, o, path)
		res.Schedules++
		if out.vio != nil {
			res.Violation = out.vio
			return res, nil
		}
		// Push unexplored siblings of every canonical choice this run
		// made beyond its prefix.  Siblings at steps < len(path) were
		// pushed when the ancestor run was expanded.
		for i := out.steps - 1; i >= len(path); i-- {
			for c := 1; c < out.fanout[i]; c++ {
				if !cfg.NoSleep && prunable(out, i, c) {
					res.Pruned++
					continue
				}
				sib := make([]int, i+1)
				copy(sib, path)
				sib[i] = c
				stack = append(stack, sib)
			}
		}
	}
	res.Exhausted = true
	return res, nil
}

// Replay executes a single decision path and returns its violation (nil
// if the path is clean) plus the run's event trace.
func Replay(cfg Config, path []int) (*Violation, string, error) {
	o, err := buildOracle(cfg)
	if err != nil {
		return nil, "", err
	}
	out := runOne(cfg, o, path)
	var dump string
	if out.vio != nil {
		dump = out.vio.Trace
	}
	return out.vio, dump, nil
}

// ParsePath parses a comma-separated decision path ("0,2,1").
func ParsePath(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var path []int
	for _, f := range strings.Split(s, ",") {
		var d int
		if _, err := fmt.Sscanf(strings.TrimSpace(f), "%d", &d); err != nil || d < 0 {
			return nil, fmt.Errorf("bad path element %q", f)
		}
		path = append(path, d)
	}
	return path, nil
}
