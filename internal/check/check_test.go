package check

import (
	"errors"
	"strings"
	"testing"

	"lcm/internal/core"
	"lcm/internal/cstar"
	"lcm/internal/memsys"
	"lcm/internal/stache"
	"lcm/internal/tempest"
	"lcm/internal/trace"
)

// TestScriptsValid: every canned script at every supported shape must
// pass the oracle's race-discipline validation.
func TestScriptsValid(t *testing.T) {
	for _, shape := range []struct{ nodes, blocks int }{{2, 2}, {3, 2}, {2, 3}} {
		for _, s := range Scripts(shape.nodes, shape.blocks) {
			cfg := Config{System: cstar.Copying, Nodes: shape.nodes, Blocks: shape.blocks, Script: s}
			if _, err := buildOracle(cfg); err != nil {
				t.Errorf("%dx%d %s: %v", shape.nodes, shape.blocks, s.Name, err)
			}
		}
	}
}

// TestOracleRejectsRacyScript: a same-phase foreign read and a two-writer
// element must both be rejected.
func TestOracleRejectsRacyScript(t *testing.T) {
	twoWriters := Script{Name: "bad", Phases: [][][]Op{{
		{{Write: true, Block: 0, Slot: 0, Val: 1}},
		{{Write: true, Block: 0, Slot: 0, Val: 2}},
	}}}
	cfg := Config{System: cstar.Copying, Nodes: 2, Blocks: 2, Script: twoWriters}
	if _, err := buildOracle(cfg); err == nil {
		t.Error("two writers of one element accepted")
	}
	racyRead := Script{Name: "bad", Phases: [][][]Op{{
		{{Write: true, Block: 0, Slot: 0, Val: 1}},
		{{Block: 0, Slot: 0}},
	}}}
	cfg.Script = racyRead
	if _, err := buildOracle(cfg); err == nil {
		t.Error("same-phase foreign read accepted")
	}
}

// TestExploreClean: every protocol survives exhaustive (or capped)
// exploration of the canned scripts at 2 nodes x 2 blocks with zero
// violations.
func TestExploreClean(t *testing.T) {
	for _, sys := range []cstar.System{cstar.Copying, cstar.LCMscc, cstar.LCMmcc} {
		for _, s := range Scripts(2, 2) {
			cfg := Config{System: sys, Nodes: 2, Blocks: 2, Script: s, MaxSchedules: 2000}
			res, err := Explore(cfg)
			if err != nil {
				t.Fatalf("%v/%s: %v", sys, s.Name, err)
			}
			if res.Violation != nil {
				t.Errorf("%v/%s: violation after %d schedules: %v\n%s",
					sys, s.Name, res.Schedules, res.Violation, res.Violation.Trace)
			}
			if res.Schedules < 2 {
				t.Errorf("%v/%s: only %d schedules explored; branch enumeration is broken", sys, s.Name, res.Schedules)
			}
			t.Logf("%v/%s: %d schedules, %d pruned, exhausted=%v", sys, s.Name, res.Schedules, res.Pruned, res.Exhausted)
		}
	}
}

// TestExploreDeterministic: the same configuration explores the same
// number of schedules every time (the tree itself is reproducible).
func TestExploreDeterministic(t *testing.T) {
	cfg := Config{System: cstar.LCMmcc, Nodes: 2, Blocks: 2, Script: Scripts(2, 2)[2], MaxSchedules: 500}
	a, err := Explore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Explore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Schedules != b.Schedules || a.Pruned != b.Pruned || a.Exhausted != b.Exhausted {
		t.Errorf("exploration not reproducible: %+v vs %+v", a, b)
	}
}

// TestSleepSetSound: with pruning disabled the search explores at least
// as many schedules and still finds no violation, so the reduction only
// removes redundant interleavings.
func TestSleepSetSound(t *testing.T) {
	base := Config{System: cstar.Copying, Nodes: 2, Blocks: 2, Script: Scripts(2, 2)[2], MaxSchedules: 2000}
	with, err := Explore(base)
	if err != nil {
		t.Fatal(err)
	}
	base.NoSleep = true
	without, err := Explore(base)
	if err != nil {
		t.Fatal(err)
	}
	if with.Violation != nil || without.Violation != nil {
		t.Fatalf("clean config reported violations: %v / %v", with.Violation, without.Violation)
	}
	if with.Exhausted && without.Exhausted && without.Schedules < with.Schedules {
		t.Errorf("pruned search explored more schedules (%d) than the full search (%d)",
			with.Schedules, without.Schedules)
	}
}

// brokenStache wraps the real Stache protocol but grants a second
// read-write copy of every write-faulted block to a peer node: a
// deliberate single-writer violation the checker must catch.
type brokenStache struct {
	*stache.Protocol
	m *tempest.Machine
}

func (p *brokenStache) Attach(m *tempest.Machine) {
	p.m = m
	p.Protocol.Attach(m)
}

func (p *brokenStache) WriteFault(n *tempest.Node, b memsys.BlockID) *tempest.Line {
	l := p.Protocol.WriteFault(n, b)
	peer := (n.ID + 1) % p.m.P
	p.m.Nodes[peer].Install(b, l.Data, tempest.TagReadWrite)
	return l
}

// TestBrokenProtocolCaught: the checker must find the planted violation,
// report a replayable path, and the replay must reproduce it.
func TestBrokenProtocolCaught(t *testing.T) {
	cfg := Config{
		System: cstar.Copying, Nodes: 2, Blocks: 2,
		Script:       Scripts(2, 2)[0],
		MaxSchedules: 2000,
		NewProtocol: func() tempest.Protocol {
			return &brokenStache{Protocol: stache.New()}
		},
	}
	res, err := Explore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil {
		t.Fatalf("planted single-writer violation not found in %d schedules", res.Schedules)
	}
	if !strings.Contains(res.Violation.Err.Error(), "single-writer") {
		t.Errorf("unexpected violation kind: %v", res.Violation.Err)
	}
	if res.Violation.Trace == "" {
		t.Error("violation carries no event trace")
	}
	vio, _, err := Replay(cfg, res.Violation.Path)
	if err != nil {
		t.Fatal(err)
	}
	if vio == nil {
		t.Fatalf("replaying path %v did not reproduce the violation", res.Violation.Path)
	}
	if vio.Err.Error() != res.Violation.Err.Error() {
		t.Errorf("replay found a different violation: %v vs %v", vio.Err, res.Violation.Err)
	}
}

// TestReplayCleanPath: the canonical path of a correct protocol replays
// clean.
func TestReplayCleanPath(t *testing.T) {
	cfg := Config{System: cstar.LCMscc, Nodes: 2, Blocks: 2, Script: Scripts(2, 2)[1]}
	vio, _, err := Replay(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if vio != nil {
		t.Errorf("canonical path reported violation: %v\n%s", vio, vio.Trace)
	}
}

func TestParsePath(t *testing.T) {
	p, err := ParsePath(" 0, 2,1 ")
	if err != nil || len(p) != 3 || p[0] != 0 || p[1] != 2 || p[2] != 1 {
		t.Errorf("ParsePath = %v, %v", p, err)
	}
	if p, err := ParsePath(""); err != nil || p != nil {
		t.Errorf("empty path = %v, %v", p, err)
	}
	if _, err := ParsePath("1,x"); err == nil {
		t.Error("bad element accepted")
	}
	if _, err := ParsePath("-1"); err == nil {
		t.Error("negative element accepted")
	}
}

// TestViolationError: the error string carries the step, path, and cause.
func TestViolationError(t *testing.T) {
	v := &Violation{Err: errors.New("boom"), Step: 7, Path: []int{1, 0, 2}}
	msg := v.Error()
	for _, want := range []string{"step 7", "[1 0 2]", "boom"} {
		if !strings.Contains(msg, want) {
			t.Errorf("Error() = %q, missing %q", msg, want)
		}
	}
}

// TestFinalChecksShortCircuits: a run error or a node read error is
// reported before any machine-state audit runs (nil machine proves it).
func TestFinalChecksShortCircuits(t *testing.T) {
	v := finalChecks(nil, nil, nil, nil, errors.New("kaput"), nil)
	if v == nil || !strings.Contains(v.Err.Error(), "run failed") {
		t.Fatalf("run error not reported: %v", v)
	}
	v = finalChecks(nil, nil, nil, nil, nil, []error{nil, errors.New("read mismatch")})
	if v == nil || !strings.Contains(v.Err.Error(), "read mismatch") {
		t.Fatalf("read error not reported: %v", v)
	}
}

// TestCheckFlushCommit: balanced traces pass, orphan commits and
// mismatched element counts are flagged.
func TestCheckFlushCommit(t *testing.T) {
	tb := trace.New(2, 64)
	tb.Record(0, 10, trace.Flush, 3, 8)
	tb.Record(1, 20, trace.Commit, 3, 8)
	if err := checkFlushCommit(tb); err != nil {
		t.Fatalf("balanced trace rejected: %v", err)
	}
	tb = trace.New(2, 64)
	tb.Record(1, 20, trace.Commit, 5, 4)
	if err := checkFlushCommit(tb); err == nil || !strings.Contains(err.Error(), "flushed none") {
		t.Fatalf("orphan commit not flagged: %v", err)
	}
	tb = trace.New(2, 64)
	tb.Record(0, 10, trace.Flush, 3, 8)
	tb.Record(1, 20, trace.Commit, 3, 4)
	if err := checkFlushCommit(tb); err == nil || !strings.Contains(err.Error(), "committed 4") {
		t.Fatalf("count mismatch not flagged: %v", err)
	}
}

// lossyLCM wraps the real LCM protocol but replaces reconciliation with
// bare barriers: private modified copies are never flushed or committed,
// so the writes never reach home — a deliberate lost update the
// end-of-run audit must catch.  (Stache cannot lose updates this way:
// its read-write stores write through to the home image at storeAt.)
type lossyLCM struct {
	*core.LCM
}

func (p *lossyLCM) ReconcileCopies(n *tempest.Node) {
	n.Barrier()
	n.Barrier()
}

// TestLostUpdateCaught: a write-only script (no reads to trip first)
// whose updates vanish at reconciliation must fail the home-image audit.
func TestLostUpdateCaught(t *testing.T) {
	cfg := Config{
		System: cstar.LCMscc, Nodes: 2, Blocks: 2,
		Script: Script{Name: "writeonly", Phases: [][][]Op{{
			{{Write: true, Block: 1, Slot: 0, Val: 1}},
			{{Write: true, Block: 0, Slot: 0, Val: 2}},
		}}},
		MaxSchedules: 100,
		NewProtocol: func() tempest.Protocol {
			return &lossyLCM{LCM: core.New(core.SCC)}
		},
	}
	res, err := Explore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil {
		t.Fatalf("planted lost update not found in %d schedules", res.Schedules)
	}
	if !strings.Contains(res.Violation.Err.Error(), "lost update") {
		t.Errorf("unexpected violation kind: %v", res.Violation.Err)
	}
}
