package tempest

import (
	"encoding/binary"
	"fmt"
	"math"

	"lcm/internal/memsys"
)

// This file implements the program-visible load/store interface.  Every
// access checks the node's fine-grain access-control tag for the block
// (Blizzard-E's lookup) and traps to the protocol's user-level handler on a
// tag violation.  Accesses must not straddle block boundaries; the C**
// runtime allocates aggregates element-aligned so they never do.
//
// The scalar accessors below and the span accessors in access_span.go both
// funnel into loadSeg/storeSeg, so the fault/charge/write-through sequence
// exists in exactly one place; the only difference is how many permitted
// accesses a single tag check amortizes (see "Fast-path invariants" in
// DESIGN.md).

// lineFor returns the node's line for b via the MRU cache, falling back to
// the line table (and refreshing the MRU) on a different block.  The
// caller must still check the returned line's tag: line pointers are
// assigned once and never reassigned, so a stale MRU entry can at worst
// carry a revoked tag, which the check catches.
func (n *Node) lineFor(b memsys.BlockID) *Line {
	if l := n.mruLine; l != nil && n.mruBlock == b {
		return l
	}
	l := n.lines[b]
	if l != nil {
		n.mruBlock, n.mruLine = b, l
	}
	return l
}

// readable returns the line for b if a load is permitted, else nil.
func (n *Node) readable(b memsys.BlockID) *Line {
	if l := n.lineFor(b); l != nil && l.Tag() >= TagReadOnly {
		return l
	}
	return nil
}

// writable returns the line for b if a store is permitted, else nil.
func (n *Node) writable(b memsys.BlockID) *Line {
	if l := n.lineFor(b); l != nil && l.Tag() >= TagReadWrite {
		return l
	}
	return nil
}

// loadFault is the out-of-line read-miss path: trap to the protocol and
// refresh the MRU with the installed line.  Kept separate so the hot-path
// functions stay small enough to avoid extra call layers.
func (n *Node) loadFault(b memsys.BlockID) *Line {
	n.preFault(b)
	n.makeRoom()
	l := n.M.protocol.ReadFault(n, b)
	n.mruBlock, n.mruLine = b, l
	return l
}

// loadSeg is THE load access sequence, shared by the scalar and span read
// paths: one tag check for block b — faulting to the protocol when it
// fails — then a single charge for k permitted loads within the block.
func (n *Node) loadSeg(b memsys.BlockID, k int64) *Line {
	l := n.readable(b)
	if l == nil {
		l = n.loadFault(b)
	}
	n.clock += k * n.M.Cost.CacheHit
	n.Ctr.Hits += k
	n.publish()
	return l
}

// load32 is the scalar 32-bit load fast path — loadSeg with k=1 flattened
// in, so a scalar load costs a single non-inlined call (the typed Read*
// wrappers all inline down to this or load64).
func (n *Node) load32(a memsys.Addr) uint32 {
	b, off := n.M.AS.Split(a)
	if off+4 > n.M.AS.BlockSize {
		panic(fmt.Sprintf("tempest: load of 4 bytes at %#x straddles block boundary", a))
	}
	l := n.mruLine
	if l == nil || n.mruBlock != b {
		if l = n.lines[b]; l != nil {
			n.mruBlock, n.mruLine = b, l
		}
	}
	if l == nil || l.Tag() < TagReadOnly {
		l = n.loadFault(b)
	}
	n.clock += n.M.Cost.CacheHit
	n.Ctr.Hits++
	return binary.LittleEndian.Uint32(l.Data[off:])
}

// load64 is the scalar 64-bit load fast path.
func (n *Node) load64(a memsys.Addr) uint64 {
	b, off := n.M.AS.Split(a)
	if off+8 > n.M.AS.BlockSize {
		panic(fmt.Sprintf("tempest: load of 8 bytes at %#x straddles block boundary", a))
	}
	l := n.mruLine
	if l == nil || n.mruBlock != b {
		if l = n.lines[b]; l != nil {
			n.mruBlock, n.mruLine = b, l
		}
	}
	if l == nil || l.Tag() < TagReadOnly {
		l = n.loadFault(b)
	}
	n.clock += n.M.Cost.CacheHit
	n.Ctr.Hits++
	return binary.LittleEndian.Uint64(l.Data[off:])
}

// storeSeg is THE fault/charge/write-through sequence, shared by the
// scalar and span store paths.  It stores src at byte offset off of block
// b — one tag check, one fault and one home-lock acquisition for the whole
// segment — and charges k permitted stores.
//
// Stores to private (LCM) copies touch only the node-local line and need
// no locking.  Stores to coherent exclusive copies additionally write
// through to the home image under the block's lock: protocol handlers can
// then serve the current value of any coherent block from the home image
// without ever reading another node's line buffer while its owner might be
// storing — this is what makes the simulator race-free under the Go memory
// model even for programs with genuine (application-level) data races,
// such as the false-sharing ablation.  The write-through is a simulation
// mechanism, not a modelled cost: a permitted store still charges one
// cache hit per element.
func (n *Node) storeAt(a memsys.Addr, src []byte, k int64) {
	b, off := n.M.AS.Split(a)
	if off+uint32(len(src)) > n.M.AS.BlockSize {
		panic(fmt.Sprintf("tempest: store of %d bytes at %#x straddles block boundary", len(src), a))
	}
	l := n.writable(b)
	if l == nil {
		n.preFault(b)
		n.makeRoom()
		l = n.M.protocol.WriteFault(n, b)
		n.mruBlock, n.mruLine = b, l
	}
	n.clock += k * n.M.Cost.CacheHit
	n.Ctr.Hits += k
	if l.Tag() == TagPrivate {
		copy(l.Data[off:], src)
		if n.M.trackWrites {
			n.recordWrite(b, l, off, uint32(len(src)))
		}
		return
	}
	n.M.Lock(b)
	copy(l.Data[off:], src)
	copy(n.M.AS.HomeData(b)[off:], src)
	n.M.Unlock(b)
}

// store32 implements the 4-byte store path: a thin, inlinable wrapper so a
// scalar store costs a single non-inlined call (storeAt, which owns the
// block split and straddle check).
func (n *Node) store32(a memsys.Addr, v uint32) {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], v)
	n.storeAt(a, buf[:], 1)
}

// store64 implements the 8-byte store path.
func (n *Node) store64(a memsys.Addr, v uint64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	n.storeAt(a, buf[:], 1)
}

// ReadU32 loads a 32-bit word.
func (n *Node) ReadU32(a memsys.Addr) uint32 { return n.load32(a) }

// WriteU32 stores a 32-bit word.
func (n *Node) WriteU32(a memsys.Addr, v uint32) { n.store32(a, v) }

// ReadU64 loads a 64-bit word.
func (n *Node) ReadU64(a memsys.Addr) uint64 { return n.load64(a) }

// WriteU64 stores a 64-bit word.
func (n *Node) WriteU64(a memsys.Addr, v uint64) { n.store64(a, v) }

// ReadF32 loads a single-precision float (the element type of the paper's
// meshes: a 32-byte block holds eight of them).
func (n *Node) ReadF32(a memsys.Addr) float32 {
	return math.Float32frombits(n.load32(a))
}

// WriteF32 stores a single-precision float.  (Body matches store32 rather
// than calling it: the extra frame would push it past the inlining budget.)
func (n *Node) WriteF32(a memsys.Addr, v float32) {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], math.Float32bits(v))
	n.storeAt(a, buf[:], 1)
}

// ReadF64 loads a double-precision float.
func (n *Node) ReadF64(a memsys.Addr) float64 {
	return math.Float64frombits(n.load64(a))
}

// WriteF64 stores a double-precision float.
func (n *Node) WriteF64(a memsys.Addr, v float64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
	n.storeAt(a, buf[:], 1)
}

// ReadI32 loads a 32-bit signed integer.
func (n *Node) ReadI32(a memsys.Addr) int32 { return int32(n.load32(a)) }

// WriteI32 stores a 32-bit signed integer.
func (n *Node) WriteI32(a memsys.Addr, v int32) { n.store32(a, uint32(v)) }

// ReadI64 loads a 64-bit signed integer.
func (n *Node) ReadI64(a memsys.Addr) int64 { return int64(n.load64(a)) }

// WriteI64 stores a 64-bit signed integer.
func (n *Node) WriteI64(a memsys.Addr, v int64) { n.store64(a, uint64(v)) }

// recordWrite marks the stored words in the line's write mask when the
// block's region is conflict-checked, so reconciliation can detect
// value-equal stores as modifications (footnote 2 of the paper: trap
// stores and record modified words).  The simulator records directly
// instead of trapping; the observable semantics are the trap scheme's.
func (n *Node) recordWrite(b memsys.BlockID, l *Line, off, size uint32) {
	if !n.M.AS.RegionOfBlock(b).ConflictCheck {
		return
	}
	for w := off / 4; w < (off+size)/4; w++ {
		l.WMask |= 1 << w
	}
}

// Compute charges units of abstract computation to the node (workloads use
// this so arithmetic is not free relative to communication).
func (n *Node) Compute(units int64) {
	n.clock += units * n.M.Cost.Compute
	n.publish()
}
