package tempest

import (
	"encoding/binary"
	"fmt"
	"math"

	"lcm/internal/memsys"
)

// This file implements the program-visible load/store interface.  Every
// access checks the node's fine-grain access-control tag for the block
// (Blizzard-E's lookup) and traps to the protocol's user-level handler on a
// tag violation.  Accesses must not straddle block boundaries; the C**
// runtime allocates aggregates element-aligned so they never do.

// readable returns the line for b if a load is permitted, else nil.
func (n *Node) readable(b memsys.BlockID) *Line {
	if l := n.lines[b]; l != nil && l.Tag() >= TagReadOnly {
		return l
	}
	return nil
}

// writable returns the line for b if a store is permitted, else nil.
func (n *Node) writable(b memsys.BlockID) *Line {
	if l := n.lines[b]; l != nil && l.Tag() >= TagReadWrite {
		return l
	}
	return nil
}

// loadLine returns a readable line for the block containing a, faulting to
// the protocol if necessary, and charges the hit cost.
func (n *Node) loadLine(a memsys.Addr, size uint32) (*Line, uint32) {
	b, off := n.M.AS.Split(a)
	if off+size > n.M.AS.BlockSize {
		panic(fmt.Sprintf("tempest: load of %d bytes at %#x straddles block boundary", size, a))
	}
	l := n.readable(b)
	if l == nil {
		n.preFault(b)
		n.makeRoom()
		l = n.M.protocol.ReadFault(n, b)
	}
	n.clock += n.M.Cost.CacheHit
	n.Ctr.Hits++
	return l, off
}

// Stores fault to the protocol if the access-control tags disallow them
// and charge the hit cost.
//
// Stores to private (LCM) copies touch only the node-local line and need
// no locking.  Stores to coherent exclusive copies additionally write
// through to the home image under the block's lock: protocol handlers can
// then serve the current value of any coherent block from the home image
// without ever reading another node's line buffer while its owner might be
// storing — this is what makes the simulator race-free under the Go memory
// model even for programs with genuine (application-level) data races,
// such as the false-sharing ablation.  The write-through is a simulation
// mechanism, not a modelled cost: a permitted store still charges one
// cache hit.

// store32 implements the 4-byte store path.
func (n *Node) store32(a memsys.Addr, v uint32) {
	b, off := n.M.AS.Split(a)
	if off+4 > n.M.AS.BlockSize {
		panic(fmt.Sprintf("tempest: store of 4 bytes at %#x straddles block boundary", a))
	}
	l := n.writable(b)
	if l == nil {
		n.preFault(b)
		n.makeRoom()
		l = n.M.protocol.WriteFault(n, b)
	}
	n.clock += n.M.Cost.CacheHit
	n.Ctr.Hits++
	if l.Tag() == TagPrivate {
		binary.LittleEndian.PutUint32(l.Data[off:], v)
		if n.M.trackWrites {
			n.recordWrite(b, l, off, 4)
		}
		return
	}
	n.M.Lock(b)
	binary.LittleEndian.PutUint32(l.Data[off:], v)
	binary.LittleEndian.PutUint32(n.M.AS.HomeData(b)[off:], v)
	n.M.Unlock(b)
}

// store64 implements the 8-byte store path.
func (n *Node) store64(a memsys.Addr, v uint64) {
	b, off := n.M.AS.Split(a)
	if off+8 > n.M.AS.BlockSize {
		panic(fmt.Sprintf("tempest: store of 8 bytes at %#x straddles block boundary", a))
	}
	l := n.writable(b)
	if l == nil {
		n.preFault(b)
		n.makeRoom()
		l = n.M.protocol.WriteFault(n, b)
	}
	n.clock += n.M.Cost.CacheHit
	n.Ctr.Hits++
	if l.Tag() == TagPrivate {
		binary.LittleEndian.PutUint64(l.Data[off:], v)
		if n.M.trackWrites {
			n.recordWrite(b, l, off, 8)
		}
		return
	}
	n.M.Lock(b)
	binary.LittleEndian.PutUint64(l.Data[off:], v)
	binary.LittleEndian.PutUint64(n.M.AS.HomeData(b)[off:], v)
	n.M.Unlock(b)
}

// ReadU32 loads a 32-bit word.
func (n *Node) ReadU32(a memsys.Addr) uint32 {
	l, off := n.loadLine(a, 4)
	return binary.LittleEndian.Uint32(l.Data[off:])
}

// WriteU32 stores a 32-bit word.
func (n *Node) WriteU32(a memsys.Addr, v uint32) { n.store32(a, v) }

// ReadU64 loads a 64-bit word.
func (n *Node) ReadU64(a memsys.Addr) uint64 {
	l, off := n.loadLine(a, 8)
	return binary.LittleEndian.Uint64(l.Data[off:])
}

// WriteU64 stores a 64-bit word.
func (n *Node) WriteU64(a memsys.Addr, v uint64) { n.store64(a, v) }

// ReadF32 loads a single-precision float (the element type of the paper's
// meshes: a 32-byte block holds eight of them).
func (n *Node) ReadF32(a memsys.Addr) float32 {
	return math.Float32frombits(n.ReadU32(a))
}

// WriteF32 stores a single-precision float.
func (n *Node) WriteF32(a memsys.Addr, v float32) {
	n.WriteU32(a, math.Float32bits(v))
}

// ReadF64 loads a double-precision float.
func (n *Node) ReadF64(a memsys.Addr) float64 {
	return math.Float64frombits(n.ReadU64(a))
}

// WriteF64 stores a double-precision float.
func (n *Node) WriteF64(a memsys.Addr, v float64) {
	n.WriteU64(a, math.Float64bits(v))
}

// ReadI32 loads a 32-bit signed integer.
func (n *Node) ReadI32(a memsys.Addr) int32 { return int32(n.ReadU32(a)) }

// WriteI32 stores a 32-bit signed integer.
func (n *Node) WriteI32(a memsys.Addr, v int32) { n.WriteU32(a, uint32(v)) }

// ReadI64 loads a 64-bit signed integer.
func (n *Node) ReadI64(a memsys.Addr) int64 { return int64(n.ReadU64(a)) }

// WriteI64 stores a 64-bit signed integer.
func (n *Node) WriteI64(a memsys.Addr, v int64) { n.WriteU64(a, uint64(v)) }

// recordWrite marks the stored words in the line's write mask when the
// block's region is conflict-checked, so reconciliation can detect
// value-equal stores as modifications (footnote 2 of the paper: trap
// stores and record modified words).  The simulator records directly
// instead of trapping; the observable semantics are the trap scheme's.
func (n *Node) recordWrite(b memsys.BlockID, l *Line, off, size uint32) {
	if !n.M.AS.RegionOfBlock(b).ConflictCheck {
		return
	}
	for w := off / 4; w < (off+size)/4; w++ {
		l.WMask |= 1 << w
	}
}

// Compute charges units of abstract computation to the node (workloads use
// this so arithmetic is not free relative to communication).
func (n *Node) Compute(units int64) { n.clock += units * n.M.Cost.Compute }
