package tempest

import (
	"errors"
	"strings"
	"testing"
	"time"
)

// waitArrived polls until n waiters are parked in the barrier.
func waitArrived(t *testing.T, b *Barrier, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		b.mu.Lock()
		arrived := b.arrived
		b.mu.Unlock()
		if arrived == n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d waiters arrived", arrived, n)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestBarrierAbortReleasesWaiters(t *testing.T) {
	b := NewBarrier(3)
	errs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func(id int) {
			_, err := b.WaitNode(id, 0)
			errs <- err
		}(i)
	}
	waitArrived(t, b, 2)
	cause := errors.New("participant died")
	b.Abort(cause)
	for i := 0; i < 2; i++ {
		err := <-errs
		if !errors.Is(err, ErrAborted) {
			t.Fatalf("released waiter error = %v, want ErrAborted", err)
		}
		if !errors.Is(err, cause) {
			t.Fatalf("abort cause not preserved: %v", err)
		}
	}
	// The barrier stays poisoned: later waits fail fast instead of
	// blocking forever on a dead sibling.
	if _, err := b.WaitNode(2, 0); !errors.Is(err, ErrAborted) {
		t.Fatalf("post-abort wait error = %v, want ErrAborted", err)
	}
	if !errors.Is(b.Err(), ErrAborted) {
		t.Fatalf("Err() = %v, want ErrAborted", b.Err())
	}
}

func TestBarrierSingleParticipantMaxClock(t *testing.T) {
	b := NewBarrier(1)
	for round, clock := range []int64{42, 7, 1000} {
		c, err := b.WaitNode(0, clock)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if c != clock {
			// A solo participant's max is its own clock, and the max
			// must reset between rounds (round 1 passes a lower clock).
			t.Fatalf("round %d: clock = %d, want %d", round, c, clock)
		}
	}
}

func TestBarrierReuseAcrossRunPhases(t *testing.T) {
	m, r := newTestMachine(t, 4, 64)
	phase := func() {
		m.Run(func(n *Node) {
			n.WriteU32(r.Base+4*4, uint32(n.ID))
			n.Barrier()
			n.Charge(int64(n.ID) * 100)
			n.Barrier()
		})
	}
	phase()
	phase() // the same machine barrier serves a second Run
	for _, nd := range m.Nodes {
		if nd.Ctr.Barriers != 4 {
			t.Fatalf("node %d barriers = %d, want 4", nd.ID, nd.Ctr.Barriers)
		}
	}
}

// TestRunErrRecoversNodePanic is the regression for the old behaviour
// where a panicking node body crashed the whole process and stranded its
// siblings in the barrier.
func TestRunErrRecoversNodePanic(t *testing.T) {
	m, _ := newTestMachine(t, 4, 64)
	err := m.RunErr(func(n *Node) {
		if n.ID == 2 {
			panic("node body bug")
		}
		n.Barrier()
	})
	var re *RunError
	if !errors.As(err, &re) {
		t.Fatalf("RunErr = %v, want *RunError", err)
	}
	first := re.First()
	if first == nil || first.Node != 2 || first.Collateral {
		t.Fatalf("primary failure = %+v, want non-collateral node 2", first)
	}
	if first.Stack == "" {
		t.Fatal("primary failure has no stack")
	}
	collateral := 0
	for _, ne := range re.Nodes {
		if ne.Collateral {
			collateral++
			if !errors.Is(ne.Err, ErrAborted) {
				t.Fatalf("collateral node %d error = %v, want ErrAborted", ne.Node, ne.Err)
			}
		}
	}
	if collateral != 3 {
		t.Fatalf("collateral failures = %d, want 3 (siblings released by abort)", collateral)
	}
	if !strings.Contains(err.Error(), "sibling nodes released") {
		t.Fatalf("error message does not mention released siblings: %v", err)
	}
	if re.Diagnostics == "" {
		t.Fatal("no diagnostics attached to quiescent failure")
	}
}

// TestRunPanicsWithRunError checks the backward-compatible Run wrapper.
func TestRunPanicsWithRunError(t *testing.T) {
	m, _ := newTestMachine(t, 2, 64)
	defer func() {
		r := recover()
		if _, ok := r.(*RunError); !ok {
			t.Fatalf("Run panicked with %T, want *RunError", r)
		}
	}()
	m.Run(func(n *Node) { panic("boom") })
	t.Fatal("Run returned despite node panic")
}

// TestWatchdogDetectsBarrierStall: a node that never reaches the barrier
// must not hang the run forever — the watchdog aborts the round with
// per-node diagnostics.
func TestWatchdogDetectsBarrierStall(t *testing.T) {
	m, _ := newTestMachine(t, 2, 64)
	m.Watchdog = 100 * time.Millisecond
	start := time.Now()
	err := m.RunErr(func(n *Node) {
		if n.ID == 0 {
			n.Barrier() // node 1 never arrives
		}
	})
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("stalled run took %v; watchdog did not bound it", elapsed)
	}
	if !errors.Is(err, ErrStalled) {
		t.Fatalf("RunErr = %v, want ErrStalled in chain", err)
	}
	var se *StallError
	if !errors.As(err, &se) {
		t.Fatalf("RunErr = %v, want *StallError in chain", err)
	}
	if se.Arrived != 1 || se.N != 2 {
		t.Fatalf("stall = %d/%d arrived, want 1/2", se.Arrived, se.N)
	}
	if !strings.Contains(se.Diagnostics, "NOT AT BARRIER") {
		t.Fatalf("stall diagnostics do not flag the missing node:\n%s", se.Diagnostics)
	}
	if !strings.Contains(se.Diagnostics, "node  0") {
		t.Fatalf("stall diagnostics missing parked node dump:\n%s", se.Diagnostics)
	}
}

// TestRunErrConfigError: a recorded configuration error surfaces from
// RunErr instead of executing the run.
func TestRunErrConfigError(t *testing.T) {
	m, _ := newTestMachine(t, 2, 64)
	bad := errors.New("bad aggregate")
	m.RecordConfigError(bad)
	ran := false
	err := m.RunErr(func(n *Node) { ran = true })
	if !errors.Is(err, bad) {
		t.Fatalf("RunErr = %v, want recorded config error", err)
	}
	if ran {
		t.Fatal("body ran despite config error")
	}
}
