package tempest

import (
	"testing"

	"lcm/internal/cost"
	"lcm/internal/memsys"
)

func TestUnboundedCacheNeverEvicts(t *testing.T) {
	m, r := newTestMachine(t, 1, 256)
	m.Run(func(n *Node) {
		for i := 0; i < 32; i++ {
			n.ReadU32(r.Base + memsys.Addr(i*32))
		}
	})
	if c := m.TotalCounters(); c.Evictions != 0 {
		t.Fatalf("evictions = %d", c.Evictions)
	}
}

func TestCapacityEnforcedFIFO(t *testing.T) {
	m := New(1, 32, cost.Uniform(1))
	r := m.AS.Alloc("d", 32*16, memsys.KindCoherent, memsys.Interleaved)
	m.SetProtocol(&fakeProtocol{})
	m.Freeze()
	m.CacheLines = 4
	m.Run(func(n *Node) {
		// Touch 8 distinct blocks; only 4 may stay resident.
		for i := 0; i < 8; i++ {
			n.ReadU32(r.Base + memsys.Addr(i*32))
		}
		resident := 0
		for i := 0; i < 8; i++ {
			b := m.AS.Block(r.Base + memsys.Addr(i*32))
			if l := n.Line(b); l != nil && l.Tag() != TagInvalid {
				resident++
			}
		}
		if resident > 4 {
			t.Errorf("resident = %d, capacity 4", resident)
		}
		// FIFO: the first-touched blocks were the victims.
		b0 := m.AS.Block(r.Base)
		if l := n.Line(b0); l != nil && l.Tag() != TagInvalid {
			t.Error("oldest block survived FIFO eviction")
		}
	})
	if c := m.TotalCounters(); c.Evictions == 0 {
		t.Fatal("no evictions recorded")
	}
}

func TestEvictedBlockRefetches(t *testing.T) {
	m := New(1, 32, cost.Uniform(1))
	r := m.AS.Alloc("d", 32*16, memsys.KindCoherent, memsys.Interleaved)
	m.SetProtocol(&fakeProtocol{})
	m.Freeze()
	m.CacheLines = 2
	m.Run(func(n *Node) {
		n.WriteU32(r.Base, 42)
		for i := 1; i < 6; i++ { // push block 0 out
			n.ReadU32(r.Base + memsys.Addr(i*32))
		}
		// The value survives in the home image (write-through) even
		// though the copy was evicted.
		if got := n.ReadU32(r.Base); got != 42 {
			t.Errorf("refetched value %d, want 42", got)
		}
	})
	c := m.TotalCounters()
	if c.Misses < 7 {
		t.Fatalf("misses = %d; the evicted block must refault", c.Misses)
	}
}
