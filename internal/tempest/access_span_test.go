package tempest

import (
	"bytes"
	"sync"
	"testing"

	"lcm/internal/cost"
	"lcm/internal/memsys"
)

// fillHome writes a deterministic byte pattern into every home block of r,
// so two machines can start from identical images.
func fillHome(m *Machine, r *memsys.Region) {
	b0 := m.AS.Block(r.Base)
	b1 := m.AS.Block(r.Base + memsys.Addr(r.Size) - 1)
	for b := b0; b <= b1; b++ {
		d := m.AS.HomeData(b)
		for i := range d {
			d[i] = byte((int(b)*31 + i*7) % 251)
		}
	}
}

// spanPattern exercises every span accessor with segment boundaries that
// land mid-block, mid-span and exactly on block edges, plus interleaved
// scalar accesses.  Run on a span machine and a ScalarAccess machine, the
// virtual-time observables must match bit-for-bit.
func spanPattern(n *Node, base memsys.Addr) {
	f32 := make([]float32, 13)
	n.ReadSpanF32(base+4, f32) // starts mid-block, spans two blocks
	for i := range f32 {
		f32[i] += 0.5
	}
	n.WriteSpanF32(base+4, f32)

	u32 := make([]uint32, 16) // exactly two blocks, block-aligned
	n.ReadSpanU32(base+64, u32)
	n.WriteSpanU32(base+64, u32)

	i32 := make([]int32, 3) // single partial block
	n.ReadSpanI32(base+140, i32)
	n.WriteSpanI32(base+140, i32)

	u64 := make([]uint64, 5)
	n.ReadSpanU64(base+8, u64)
	n.WriteSpanU64(base+8, u64)

	i64 := make([]int64, 7) // mid-block start, crosses a boundary
	n.ReadSpanI64(base+48, i64)
	for i := range i64 {
		i64[i] -= 3
	}
	n.WriteSpanI64(base+48, i64)

	f64 := make([]float64, 4)
	n.ReadSpanF64(base+192, f64)
	n.WriteSpanF64(base+192, f64)

	// Copy with different source and destination block phases, so the
	// dual-boundary segmentation is exercised.
	n.CopySpan(base+268, base+64, 17, 4)
	n.CopySpan(base+392, base+8, 6, 8)

	n.FillSpanF32(base+452, 11, 3.25)

	// Scalar accesses interleaved with spans share the same MRU/tag path.
	_ = n.ReadF32(base + 4)
	n.WriteF32(base+500, n.ReadF32(base+456))
}

// TestSpanScalarEquivalence runs the same access pattern through the span
// engine and through the per-element fallback on two identical machines
// and asserts that the clock, hit/miss counters, fault counts and the
// final home image are bit-identical.
func TestSpanScalarEquivalence(t *testing.T) {
	type run struct {
		clock        int64
		hits, misses int64
		reads, wris  int
		image        []byte
	}
	exec := func(scalar bool) run {
		m, r := newTestMachine(t, 1, 256)
		m.ScalarAccess = scalar
		fillHome(m, r)
		m.Run(func(n *Node) { spanPattern(n, r.Base) })
		fp := m.protocol.(*fakeProtocol)
		var img []byte
		b0 := m.AS.Block(r.Base)
		b1 := m.AS.Block(r.Base + memsys.Addr(r.Size) - 1)
		for b := b0; b <= b1; b++ {
			img = append(img, m.AS.HomeData(b)...)
		}
		nd := m.Nodes[0]
		return run{nd.Clock(), nd.Ctr.Hits, nd.Ctr.Misses, fp.readFaults, fp.writeFault, img}
	}
	span, scal := exec(false), exec(true)
	if span.clock != scal.clock {
		t.Errorf("clock: span %d, scalar %d", span.clock, scal.clock)
	}
	if span.hits != scal.hits || span.misses != scal.misses {
		t.Errorf("hits/misses: span %d/%d, scalar %d/%d",
			span.hits, span.misses, scal.hits, scal.misses)
	}
	if span.reads != scal.reads || span.wris != scal.wris {
		t.Errorf("faults: span %d/%d, scalar %d/%d",
			span.reads, span.wris, scal.reads, scal.wris)
	}
	if !bytes.Equal(span.image, scal.image) {
		t.Errorf("final home image differs between span and scalar execution")
	}
}

// TestSpanRoundTrip checks values survive a span write / span read cycle
// across block boundaries, and that a span store really reaches the home
// image (the write-through contract).
func TestSpanRoundTrip(t *testing.T) {
	m, r := newTestMachine(t, 1, 64)
	m.Run(func(n *Node) {
		want := make([]float32, 15)
		for i := range want {
			want[i] = float32(i)*1.5 - 3
		}
		n.WriteSpanF32(r.Base+8, want)
		got := make([]float32, len(want))
		n.ReadSpanF32(r.Base+8, got)
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("f32[%d] = %v, want %v", i, got[i], want[i])
			}
			if v := n.ReadF32(r.Base + 8 + memsys.Addr(4*i)); v != want[i] {
				t.Errorf("scalar readback [%d] = %v, want %v", i, v, want[i])
			}
		}
		n.CopySpan(r.Base+128, r.Base+8, len(want), 4)
		for i := range want {
			if v := n.ReadF32(r.Base + 128 + memsys.Addr(4*i)); v != want[i] {
				t.Errorf("copy dst [%d] = %v, want %v", i, v, want[i])
			}
		}
		wantI := make([]int64, 9) // 72 bytes ending at the region edge
		for i := range wantI {
			wantI[i] = int64(i)*-7 + 3
		}
		n.WriteSpanI64(r.Base+184, wantI)
		gotI := make([]int64, len(wantI))
		n.ReadSpanI64(r.Base+184, gotI)
		for i := range wantI {
			if gotI[i] != wantI[i] {
				t.Errorf("i64[%d] = %v, want %v", i, gotI[i], wantI[i])
			}
		}
	})
	// The store path must have written through to the home image.
	b := m.AS.Block(r.Base + 8)
	if len(m.AS.HomeData(b)) == 0 {
		t.Fatalf("no home data")
	}
}

// TestSpanChargesPerElement checks the amortized span paths charge exactly
// one cache hit per element, not one per segment.
func TestSpanChargesPerElement(t *testing.T) {
	m, r := newTestMachine(t, 1, 64)
	m.Run(func(n *Node) {
		dst := make([]float32, 12)
		c0, h0 := n.Clock(), n.Ctr.Hits
		n.ReadSpanF32(r.Base+4, dst) // 12 loads over two blocks
		if d := n.Clock() - c0; d != 12*m.Cost.CacheHit {
			t.Errorf("span read charged %d cycles, want %d", d, 12*m.Cost.CacheHit)
		}
		if d := n.Ctr.Hits - h0; d != 12 {
			t.Errorf("span read counted %d hits, want 12", d)
		}
		c0, h0 = n.Clock(), n.Ctr.Hits
		n.WriteSpanF32(r.Base+4, dst)
		if d := n.Clock() - c0; d != 12*m.Cost.CacheHit {
			t.Errorf("span write charged %d cycles, want %d", d, 12*m.Cost.CacheHit)
		}
		if d := n.Ctr.Hits - h0; d != 12 {
			t.Errorf("span write counted %d hits, want 12", d)
		}
	})
}

// privProtocol installs write-faulting blocks as private copies, the way
// LCM does, so the WMask recording path is exercised.
type privProtocol struct {
	fakeProtocol
}

func (f *privProtocol) WriteFault(n *Node, b memsys.BlockID) *Line {
	f.m.Lock(b)
	defer f.m.Unlock(b)
	n.Ctr.Misses++
	return n.Install(b, f.m.AS.HomeData(b), TagPrivate)
}

// TestSpanWMaskRecording: span stores into a conflict-checked private copy
// must set exactly the same per-word WMask bits as the scalar loop.
func TestSpanWMaskRecording(t *testing.T) {
	mask := func(scalar bool) (got uint64) {
		m := New(1, 32, cost.Uniform(1))
		r := m.AS.Alloc("data", 64*4, memsys.KindLCM, memsys.Interleaved)
		r.ConflictCheck = true
		m.SetProtocol(&privProtocol{})
		m.Freeze()
		m.ScalarAccess = scalar
		m.Run(func(n *Node) {
			vals := []float32{1, 2, 3, 4, 5}
			n.WriteSpanF32(r.Base+4, vals) // words 1..5 of block 0
			got = n.Line(m.AS.Block(r.Base)).WMask
		})
		return got
	}
	span, scal := mask(false), mask(true)
	if span != scal {
		t.Errorf("WMask: span %#b, scalar %#b", span, scal)
	}
	if want := uint64(0b111110); span != want {
		t.Errorf("WMask = %#b, want %#b", span, want)
	}
}

// TestMRURevocation: the MRU cache must never satisfy an access after the
// line's tag has been revoked (as a remote protocol handler would).
func TestMRURevocation(t *testing.T) {
	m, r := newTestMachine(t, 1, 64)
	m.Run(func(n *Node) {
		fp := m.protocol.(*fakeProtocol)
		_ = n.ReadF32(r.Base) // faults, installs, seeds the MRU
		if fp.readFaults != 1 {
			t.Fatalf("readFaults = %d, want 1", fp.readFaults)
		}
		_ = n.ReadF32(r.Base + 4) // MRU hit, no new fault
		if fp.readFaults != 1 {
			t.Fatalf("readFaults after MRU hit = %d, want 1", fp.readFaults)
		}
		// Revoke the tag the way a remote handler does, then access again:
		// the MRU pointer is stale but the atomic tag check must trap.
		n.Line(m.AS.Block(r.Base)).SetTag(TagInvalid)
		_ = n.ReadF32(r.Base)
		if fp.readFaults != 2 {
			t.Errorf("readFaults after revocation = %d, want 2", fp.readFaults)
		}
	})
}

// TestMakeRoomFIFOBounded: the residency queue must not leak its backing
// array.  Before the head-index ring, `fifo = fifo[1:]` kept every popped
// entry reachable and the array grew with the total number of installs.
func TestMakeRoomFIFOBounded(t *testing.T) {
	m, r := newTestMachine(t, 1, 512) // 64 blocks of 8 words
	m.CacheLines = 4
	var maxCap int
	m.Run(func(n *Node) {
		for pass := 0; pass < 200; pass++ {
			for blk := 0; blk < 64; blk++ {
				_ = n.ReadF32(r.Base + memsys.Addr(blk*32))
			}
			if c := cap(n.fifo); c > maxCap {
				maxCap = c
			}
		}
		if n.Ctr.Evictions == 0 {
			t.Errorf("no evictions despite CacheLines=%d", m.CacheLines)
		}
	})
	// 200 passes × 64 blocks ≈ 12800 installs; the ring must stay within a
	// small multiple of the compaction threshold, not grow with installs.
	if maxCap > 4*fifoCompactMin {
		t.Errorf("fifo backing array grew to cap %d (want ≤ %d)", maxCap, 4*fifoCompactMin)
	}
}

// TestSpanEquivalenceUnderEviction repeats the equivalence check with a
// tight cache so the span fault path interacts with makeRoom/eviction.
func TestSpanEquivalenceUnderEviction(t *testing.T) {
	exec := func(scalar bool) (int64, int64, int64, int64) {
		m, r := newTestMachine(t, 1, 256)
		m.CacheLines = 3
		m.ScalarAccess = scalar
		fillHome(m, r)
		m.Run(func(n *Node) {
			for pass := 0; pass < 4; pass++ {
				spanPattern(n, r.Base)
			}
		})
		nd := m.Nodes[0]
		return nd.Clock(), nd.Ctr.Hits, nd.Ctr.Misses, nd.Ctr.Evictions
	}
	c1, h1, m1, e1 := exec(false)
	c2, h2, m2, e2 := exec(true)
	if c1 != c2 || h1 != h2 || m1 != m2 || e1 != e2 {
		t.Errorf("span (clock %d hits %d misses %d evict %d) != scalar (%d %d %d %d)",
			c1, h1, m1, e1, c2, h2, m2, e2)
	}
}

// TestSpanUnalignedPanics: spans must start element-aligned.
func TestSpanUnalignedPanics(t *testing.T) {
	m, r := newTestMachine(t, 1, 64)
	m.Run(func(n *Node) {
		defer func() {
			if recover() == nil {
				t.Errorf("unaligned span did not panic")
			}
		}()
		dst := make([]float64, 2)
		n.ReadSpanF64(r.Base+4, dst) // 8-byte elements at offset 4
	})
}

// TestSpanConcurrentNodes runs span sweeps from all nodes at once over
// disjoint ranges (race detector food) and checks per-node accounting.
func TestSpanConcurrentNodes(t *testing.T) {
	const p = 4
	m, r := newTestMachine(t, p, 64*p)
	fillHome(m, r)
	var mu sync.Mutex
	hits := map[int]int64{}
	m.Run(func(n *Node) {
		base := r.Base + memsys.Addr(n.ID*256)
		buf := make([]float32, 32)
		n.ReadSpanF32(base, buf)
		n.WriteSpanF32(base, buf)
		n.Barrier()
		mu.Lock()
		hits[n.ID] = n.Ctr.Hits
		mu.Unlock()
	})
	for id := 0; id < p; id++ {
		if hits[id] != 64 {
			t.Errorf("node %d hits = %d, want 64", id, hits[id])
		}
	}
}
