package tempest

import (
	"lcm/internal/memsys"
	"lcm/internal/sched"
)

// This file is the machine side of time-parallel execution (see
// internal/sched/parallel.go for the scheduler side).  parWorkers decides
// whether a run may engage the parallel admitter at all; admitOK supplies
// the footprint checks the scheduler cannot make itself, because they
// involve protocol state — block homes and cached-copy tags.

// parWorkers returns the worker count for the next run, or 1 when the run
// must stay serial.  Parallel admission is only sound when every source
// of scheduling-relevant nondeterminism is off:
//
//   - SchedHook installs checker choosers/observers that assume one
//     quiescent decision point per grant;
//   - fault injection and delivery loss restructure charges mid-segment
//     (timeouts, retransmissions), so no latency floor holds;
//   - recovery replays the schedule and must observe it serially;
//   - a network model with no positive MinLatency (zero-cost model, or
//     the retransmission layer) yields a zero lookahead window — the
//     admitter could never admit past a running fault anyway.
//
// DetSched is checked by the caller (serial free-running runs have no
// scheduler at all).
func (m *Machine) parWorkers() int {
	par := m.Par
	if par > m.P {
		par = m.P
	}
	if par <= 1 {
		return 1
	}
	if m.SchedHook != nil || m.Fault != nil || m.Loss != nil || m.Recovery {
		return 1
	}
	if m.Net.MinLatency() <= 0 {
		return 1
	}
	return par
}

// admitOK vetoes a fault-intent candidate that could interact with a
// running frontier member through protocol state, in both directions:
//
//   - the member is the home of the candidate's fault block (the handler
//     mutates the home's directory entry and charges it occupancy), or
//     vice versa;
//   - the member holds a valid cached copy of the candidate's fault
//     block (the handler may invalidate or recall it, writing the
//     member's line while it runs), or vice versa.
//
// The scheduler has already rejected two members faulting the same
// block, so the line checks below never race the one line slot a running
// handler may write: a handler only writes its own node's slot for its
// own declared block, and block distinctness excludes exactly that slot.
// Tag reads are atomic; a stale read is conservative in the only
// direction that matters — a member's copy of the candidate's block can
// only appear valid when it is not (recently invalidated), never the
// reverse, because no running segment can create a copy of a block it
// did not declare.
//
// Called with the scheduler lock held; reads only atomic tags and
// immutable homes, calls nothing back.
//
// The veto deliberately consults per-node line tables rather than the
// directory copysets (nodeset.Set): it is O(frontier members), so it is
// width-independent — the same code admits at P=8 and at P=1024 — and
// it never takes the block locks that guard the copysets.
func (m *Machine) admitOK(c sched.Candidate, it sched.Intent, peers []sched.Peer) bool {
	cFault := it.Kind == sched.IntentFault
	var cb memsys.BlockID
	if cFault {
		cb = memsys.BlockID(it.Block)
	}
	for _, p := range peers {
		if cFault {
			if p.Node == it.Home {
				return false
			}
			if l := m.Nodes[p.Node].lines[cb]; l != nil && l.Tag() >= TagReadOnly {
				return false
			}
		}
		if p.It.Kind == sched.IntentFault {
			if c.Node == p.It.Home {
				return false
			}
			pb := memsys.BlockID(p.It.Block)
			if l := m.Nodes[c.Node].lines[pb]; l != nil && l.Tag() >= TagReadOnly {
				return false
			}
		}
	}
	return true
}
