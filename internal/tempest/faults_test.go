package tempest

import (
	"errors"
	"testing"

	"lcm/internal/fault"
	"lcm/internal/memsys"
	"lcm/internal/stats"
)

// touchAll makes node n write and read back every word of r, generating
// one access fault per block (and checking the data survives recovery).
func touchAll(t *testing.T, n *Node, r *memsys.Region, words uint64) {
	for w := uint64(0); w < words; w++ {
		a := r.Base + memsys.Addr(w*4)
		v := uint32(w)*2654435761 + uint32(n.ID)
		n.WriteU32(a, v)
		if got := n.ReadU32(a); got != v {
			t.Errorf("node %d word %d = %#x, want %#x (recovery corrupted data)", n.ID, w, got, v)
			return
		}
	}
}

func chaosPlan() fault.Plan {
	return fault.Plan{
		Seed:            0xbeef,
		CorruptPerMil:   300,
		TransientPerMil: 300,
		SpikePerMil:     200, SpikeCycles: 2500,
		StallPerMil: 100, StallCycles: 4000,
	}
}

// runFaulted builds a fresh machine, injects plan, and runs touchAll on
// every node, returning the machine and the run error.
func runFaulted(t *testing.T, plan fault.Plan, words uint64) (*Machine, error) {
	t.Helper()
	m, r := newTestMachine(t, 2, words)
	m.AttachFaults(plan)
	err := m.RunErr(func(n *Node) {
		touchAll(t, n, r, words)
		n.Barrier()
	})
	return m, err
}

// TestFaultRecoveryInvisible: under a plan with every recoverable fault
// kind, the run succeeds, the data is intact, and the machine's recovery
// counters equal the injector's record of what it injected.
func TestFaultRecoveryInvisible(t *testing.T) {
	m, err := runFaulted(t, chaosPlan(), 512)
	if err != nil {
		t.Fatalf("RunErr under recoverable plan: %v", err)
	}
	tally := m.Fault.Tally()
	if tally.Total() == 0 {
		t.Fatal("plan injected nothing; test proves nothing")
	}
	c := m.TotalCounters()
	if c.CorruptedTransfers != tally.Corruptions {
		t.Fatalf("CorruptedTransfers = %d, injected %d", c.CorruptedTransfers, tally.Corruptions)
	}
	if c.TransientTimeouts != tally.Timeouts {
		t.Fatalf("TransientTimeouts = %d, injected %d", c.TransientTimeouts, tally.Timeouts)
	}
	if c.OccupancySpikes != tally.Spikes {
		t.Fatalf("OccupancySpikes = %d, injected %d", c.OccupancySpikes, tally.Spikes)
	}
	if c.Stalls != tally.Stalls {
		t.Fatalf("Stalls = %d, injected %d", c.Stalls, tally.Stalls)
	}
	if c.FaultRetries < tally.Corruptions+tally.Timeouts {
		t.Fatalf("FaultRetries = %d < %d injected recoverable faults", c.FaultRetries, tally.Corruptions+tally.Timeouts)
	}
	if tally.Stalls > 0 && c.StallCycles != tally.Stalls*4000 {
		t.Fatalf("StallCycles = %d, want %d", c.StallCycles, tally.Stalls*4000)
	}
}

// TestFaultDeterminism: the same plan injects the same faults and charges
// the same recovery work on every run, independent of interleaving.
func TestFaultDeterminism(t *testing.T) {
	var tallies []fault.Tally
	var counters []stats.NodeCounters
	for i := 0; i < 3; i++ {
		m, err := runFaulted(t, chaosPlan(), 256)
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		tallies = append(tallies, m.Fault.Tally())
		counters = append(counters, m.TotalCounters())
	}
	for i := 1; i < len(tallies); i++ {
		if tallies[i] != tallies[0] {
			t.Fatalf("run %d tally %v != run 0 tally %v", i, tallies[i], tallies[0])
		}
		if counters[i] != counters[0] {
			t.Fatalf("run %d counters %+v != run 0 %+v", i, counters[i], counters[0])
		}
	}
}

// TestRetryBudgetExhaustion: with every transfer corrupted, re-fetches can
// never succeed and the run must fail with the structured exhaustion
// error instead of looping forever.
func TestRetryBudgetExhaustion(t *testing.T) {
	_, err := runFaulted(t, fault.Plan{Seed: 1, CorruptPerMil: 1000, RetryBudget: 4}, 64)
	if err == nil {
		t.Fatal("run succeeded with 100% corruption")
	}
	if !errors.Is(err, fault.ErrRetryExhausted) {
		t.Fatalf("err = %v, want ErrRetryExhausted in chain", err)
	}
	var ree *fault.RetryExhaustedError
	if !errors.As(err, &ree) {
		t.Fatalf("err = %v, want *RetryExhaustedError in chain", err)
	}
	if ree.Attempts != 5 {
		t.Fatalf("Attempts = %d, want budget+1 = 5", ree.Attempts)
	}
}

// TestInjectedKillIsStructured: an injected unrecoverable node failure
// surfaces as a RunError naming the killed node, matching ErrKilled.
func TestInjectedKillIsStructured(t *testing.T) {
	_, err := runFaulted(t, fault.Plan{Seed: 2, KillNode: 1, KillAfter: 2}, 64)
	if err == nil {
		t.Fatal("run succeeded despite injected kill")
	}
	if !errors.Is(err, fault.ErrKilled) {
		t.Fatalf("err = %v, want ErrKilled in chain", err)
	}
	var re *RunError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want *RunError", err)
	}
	if first := re.First(); first == nil || first.Node != 1 {
		t.Fatalf("primary failure = %+v, want node 1", re.First())
	}
}
