package tempest

import (
	"errors"
	"fmt"
	"testing"

	"lcm/internal/fault"
)

// TestRunErrorUnwrapChain pins the error-wrapping contract callers branch
// on: a RunError unwraps to its first primary NodeError, which unwraps to
// the per-node cause, so errors.Is reaches the fault sentinels and
// errors.As recovers every typed layer without manual traversal.
func TestRunErrorUnwrapChain(t *testing.T) {
	kill := &fault.KillError{Node: 1, After: 3}
	exhaust := &fault.RetryExhaustedError{Node: 2, Op: "re-fetch", Block: 7, Attempts: 9}
	cases := []struct {
		name  string
		err   error
		is    error
		node  int
		check func(t *testing.T, err error)
	}{
		{
			name: "kill",
			err: &RunError{Nodes: []*NodeError{
				{Node: 1, Err: kill},
				{Node: 0, Err: errors.New("barrier aborted"), Collateral: true},
			}},
			is:   fault.ErrKilled,
			node: 1,
			check: func(t *testing.T, err error) {
				var ke *fault.KillError
				if !errors.As(err, &ke) || ke.Node != 1 || ke.After != 3 {
					t.Errorf("KillError not recovered: %+v", ke)
				}
			},
		},
		{
			name: "retry exhausted",
			err: &RunError{Nodes: []*NodeError{
				{Node: 2, Err: fmt.Errorf("access failed: %w", exhaust)},
			}},
			is:   fault.ErrRetryExhausted,
			node: 2,
			check: func(t *testing.T, err error) {
				var re *fault.RetryExhaustedError
				if !errors.As(err, &re) || re.Block != 7 || re.Attempts != 9 {
					t.Errorf("RetryExhaustedError not recovered: %+v", re)
				}
			},
		},
		{
			name: "collateral first in slice",
			err: &RunError{Nodes: []*NodeError{
				{Node: 0, Err: errors.New("barrier aborted"), Collateral: true},
				{Node: 3, Err: kill},
			}},
			is:   fault.ErrKilled,
			node: 3,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if !errors.Is(tc.err, tc.is) {
				t.Errorf("errors.Is(%v, %v) = false", tc.err, tc.is)
			}
			var re *RunError
			if !errors.As(tc.err, &re) {
				t.Fatalf("errors.As(*RunError) failed for %v", tc.err)
			}
			var ne *NodeError
			if !errors.As(tc.err, &ne) {
				t.Fatalf("errors.As(*NodeError) failed for %v", tc.err)
			}
			if ne.Node != tc.node {
				t.Errorf("unwrapped to node %d, want primary failure on node %d", ne.Node, tc.node)
			}
			if tc.check != nil {
				tc.check(t, tc.err)
			}
		})
	}
	if (&RunError{}).Unwrap() != nil {
		t.Error("empty RunError must unwrap to nil, not a nil-typed error")
	}
}

// TestRunErrorBranching shows the intended caller pattern end to end on a
// real run: distinguish an injected kill from other failures with one
// errors.Is, no string matching.
func TestRunErrorBranching(t *testing.T) {
	m, r := newTestMachine(t, 2, 64)
	m.AttachFaults(fault.Plan{Seed: 11, KillNode: 1, KillAfter: 2})
	err := m.RunErr(func(n *Node) {
		touchAll(t, n, r, 64)
		n.Barrier()
	})
	switch {
	case err == nil:
		t.Fatal("run succeeded despite injected kill")
	case errors.Is(err, fault.ErrRetryExhausted):
		t.Fatalf("kill misclassified as retry exhaustion: %v", err)
	case !errors.Is(err, fault.ErrKilled):
		t.Fatalf("kill not branchable via errors.Is: %v", err)
	}
}
