package tempest

import (
	"errors"
	"fmt"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"time"

	"lcm/internal/sched"
)

// This file is the hardened execution core.  Run historically crashed the
// whole process when any node's body panicked, and a dead node left its
// siblings blocked in the barrier forever.  RunErr recovers node panics
// into structured per-node errors, aborts the barrier so every sibling
// unwinds instead of deadlocking, and — when a watchdog is armed — bounds
// the wall-clock cost of a wedged node, returning a diagnostic dump
// instead of hanging.

// ErrUnresponsive marks a node that neither finished nor died within the
// post-failure grace period (its goroutine is leaked; the machine's state
// must not be trusted afterwards).
var ErrUnresponsive = errors.New("tempest: node unresponsive after run failure")

// NodeError is one node's structured failure.
type NodeError struct {
	Node int
	Err  error
	// Stack is the node goroutine's stack at the point of death (empty
	// for unresponsive nodes).
	Stack string
	// Collateral marks nodes that died only because the barrier was
	// aborted on behalf of another node's failure.
	Collateral bool
}

func (e *NodeError) Error() string {
	return fmt.Sprintf("node %d: %v", e.Node, e.Err)
}

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *NodeError) Unwrap() error { return e.Err }

// RunError aggregates every node failure of one Run.
type RunError struct {
	// Nodes holds one entry per failed node, primary failures first.
	Nodes []*NodeError
	// Diagnostics is the per-node machine dump taken when the run
	// failed (clock, counters, tag histogram, last trace events).
	Diagnostics string
}

// First returns the first primary (non-collateral) failure, falling back
// to the first failure of any kind.
func (e *RunError) First() *NodeError {
	for _, ne := range e.Nodes {
		if !ne.Collateral {
			return ne
		}
	}
	if len(e.Nodes) > 0 {
		return e.Nodes[0]
	}
	return nil
}

func (e *RunError) Error() string {
	first := e.First()
	if first == nil {
		return "tempest: run failed"
	}
	collateral := 0
	for _, ne := range e.Nodes {
		if ne.Collateral {
			collateral++
		}
	}
	msg := fmt.Sprintf("tempest: run failed: %v", first)
	if collateral > 0 {
		msg += fmt.Sprintf(" (+%d sibling nodes released by barrier abort)", collateral)
	}
	return msg
}

// Unwrap exposes the first primary failure to errors.Is/As: callers can
// extract the *NodeError itself (errors.As) or keep unwrapping through
// it to the root cause and branch on sentinels like fault.ErrKilled
// (errors.Is).
func (e *RunError) Unwrap() error {
	if first := e.First(); first != nil {
		return first
	}
	return nil
}

// Run executes body on every node concurrently (SPMD) and returns when
// all nodes finish.  The machine must be frozen.  If any node fails, Run
// panics with the *RunError that RunErr would return; callers that want
// to handle failure call RunErr instead.
func (m *Machine) Run(body func(n *Node)) {
	if err := m.RunErr(body); err != nil {
		panic(err)
	}
}

// RunErr executes body on every node concurrently (SPMD) and returns a
// structured error when any node fails.
//
// A node "fails" by panicking (a protocol bug, an injected unrecoverable
// fault, or a retry budget running out).  The first failure aborts the
// machine's barrier, so siblings parked there unwind promptly and are
// reported as collateral.  When Machine.Watchdog is positive, a barrier
// round that stalls past the bound is aborted with per-node diagnostics,
// and nodes that still fail to unwind within a grace period are reported
// unresponsive (their goroutines are leaked and the machine is poisoned —
// read nothing further from it).
//
// On failure the machine must be considered poisoned: the barrier stays
// aborted and protocol state may be mid-transition.  Build a fresh
// machine to run again.
func (m *Machine) RunErr(body func(n *Node)) error {
	if !m.frozen {
		panic("tempest: Run before Freeze")
	}
	if m.cfgErr != nil {
		return m.cfgErr
	}
	if m.Recovery && !m.DetSched {
		// Restart-by-deterministic-replay is only sound when the access
		// stream is reproducible.
		return errors.New("tempest: Recovery requires the deterministic scheduler (set DetSched)")
	}
	if m.Watchdog > 0 {
		m.bar.SetWatchdog(m.Watchdog, m.barrierDiagnostics)
	} else {
		m.bar.SetWatchdog(0, nil)
	}
	// Each run gets a fresh deterministic scheduler (the previous run's, if
	// any, is fully drained: RunErr does not return while node goroutines
	// live).  A barrier abort or watchdog stall poisons it so unwinding
	// nodes free-run; a node that exits while a sibling still waits at the
	// barrier is a deadlock the scheduler detects and converts to an abort.
	var sc *sched.Scheduler
	for _, nd := range m.Nodes {
		nd.pubClock = nil
	}
	m.bar.wakeLB = 0
	if m.DetSched {
		sc = sched.New(m.P, m.SchedSeed)
		if m.SchedHook != nil {
			m.SchedHook(sc)
		}
		sc.OnDeadlock(func() {
			m.bar.Abort(errors.New("tempest: scheduler deadlock: all live nodes blocked"))
		})
		m.schedder = sc
		m.bar.setSched(sc)
		if par := m.parWorkers(); par > 1 {
			m.laRemote = m.Net.MinLatency()
			m.laLocal = m.Cost.MarkLocal
			if m.Cost.LocalFill < m.laLocal {
				m.laLocal = m.Cost.LocalFill
			}
			if m.laLocal < 0 {
				m.laLocal = 0
			}
			sc.SetParallel(par, m.admitOK)
			for _, nd := range m.Nodes {
				nd.pubClock = sc.PubSlot(nd.ID)
			}
			m.bar.wakeLB = m.Cost.Barrier
			if m.Net.Name() != "uniform" {
				// Contention models mutate a shared ledger per message;
				// gate them so concurrent segments touch it in grant order.
				inner := m.Net
				m.Net = &gatedNet{Network: inner, s: sc}
				defer func() { m.Net = inner }()
			}
		}
		sc.Start()
	} else {
		m.schedder = nil
		m.bar.setSched(nil)
	}

	var (
		mu       sync.Mutex
		nodeErrs = make([]*NodeError, m.P)
		finished = make([]bool, m.P)
		failOnce sync.Once
		failed   = make(chan struct{})
		wg       sync.WaitGroup
	)
	wg.Add(m.P)
	for _, nd := range m.Nodes {
		go func(nd *Node) {
			defer wg.Done()
			defer func() {
				var err error
				if r := recover(); r != nil {
					err = panicError(r)
				}
				mu.Lock()
				finished[nd.ID] = true
				if err != nil {
					nodeErrs[nd.ID] = &NodeError{
						Node:       nd.ID,
						Err:        err,
						Stack:      string(debug.Stack()),
						Collateral: errors.Is(err, ErrAborted),
					}
				}
				mu.Unlock()
				if err != nil {
					// Abort (which poisons the scheduler) before Exit, so
					// the token is never handed onward from a dying run.
					m.bar.Abort(fmt.Errorf("node %d died: %w", nd.ID, err))
					failOnce.Do(func() { close(failed) })
				}
				if sc != nil {
					sc.Exit(nd.ID)
				}
			}()
			if sc != nil {
				sc.AwaitGrant(nd.ID)
			}
			body(nd)
			nd.FoldStolen()
		}(nd)
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()

	hung := false
	select {
	case <-done:
	case <-failed:
		// A node died.  The barrier abort releases parked siblings;
		// give the rest a grace period to unwind before declaring them
		// unresponsive.  Without a watchdog the caller asked for no
		// wall-clock bounds, so wait indefinitely (abort still
		// prevents the barrier deadlock itself).
		if m.Watchdog > 0 {
			grace := 2*m.Watchdog + 500*time.Millisecond
			select {
			case <-done:
			case <-time.After(grace):
				hung = true
			}
		} else {
			<-done
		}
	}

	mu.Lock()
	var errs []*NodeError
	for _, ne := range nodeErrs {
		if ne != nil {
			errs = append(errs, ne)
		}
	}
	if hung {
		for id, fin := range finished {
			if !fin && nodeErrs[id] == nil {
				errs = append(errs, &NodeError{Node: id, Err: ErrUnresponsive})
			}
		}
	}
	mu.Unlock()
	if len(errs) == 0 {
		return nil
	}
	sort.SliceStable(errs, func(i, j int) bool {
		if errs[i].Collateral != errs[j].Collateral {
			return !errs[i].Collateral
		}
		return errs[i].Node < errs[j].Node
	})
	re := &RunError{Nodes: errs}
	if !hung {
		// All node goroutines have exited, so the machine is quiescent
		// and fully readable.
		re.Diagnostics = m.Diagnostics()
	} else if se := new(StallError); errors.As(m.bar.Err(), &se) {
		// Unsafe to touch node state with goroutines leaked; reuse the
		// dump the watchdog took under the barrier lock.
		re.Diagnostics = se.Diagnostics
	}
	return re
}

// panicError converts a recovered panic value into an error.
func panicError(r any) error {
	if err, ok := r.(error); ok {
		return err
	}
	return fmt.Errorf("panic: %v", r)
}

// Diagnostics renders a per-node dump — clock, key counters, access-tag
// histogram, and the tail of the trace — for failure reports.  Call only
// while the machine is quiescent.
func (m *Machine) Diagnostics() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "machine: P=%d protocol=%s blocks=%d\n", m.P, m.protocol.Name(), m.AS.NumBlocks())
	for _, nd := range m.Nodes {
		sb.WriteString(m.nodeDiagnostics(nd, true))
	}
	return sb.String()
}

// barrierDiagnostics is the watchdog's stall-time dump.  It runs with the
// barrier lock held: nodes parked at the barrier (present[i]) released
// that lock inside cond.Wait and cannot wake until the abort broadcasts,
// so their state is readable race-free; for absent nodes — the stalled or
// dead ones — only their atomic fields are touched.
func (m *Machine) barrierDiagnostics(present []bool) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "machine: P=%d protocol=%s blocks=%d\n", m.P, m.protocol.Name(), m.AS.NumBlocks())
	for _, nd := range m.Nodes {
		if present[nd.ID] {
			sb.WriteString(m.nodeDiagnostics(nd, true))
		} else {
			fmt.Fprintf(&sb, "node %2d: NOT AT BARRIER (stalled or dead); stolen=%d\n",
				nd.ID, nd.stolen.Load())
		}
	}
	return sb.String()
}

// nodeDiagnostics renders one node's state.  The caller must guarantee
// the node is quiescent (machine stopped, or parked under the barrier
// lock the caller holds).
func (m *Machine) nodeDiagnostics(nd *Node, atBarrier bool) string {
	var sb strings.Builder
	var tags [4]int
	for _, l := range nd.lines {
		if l != nil {
			t := l.Tag()
			if t < 4 {
				tags[t]++
			}
		}
	}
	fmt.Fprintf(&sb, "node %2d: clock=%d barriers=%d misses=%d flushes=%d retries=%d tags[inv=%d ro=%d rw=%d priv=%d]\n",
		nd.ID, nd.Clock(), nd.Ctr.Barriers, nd.Ctr.Misses, nd.Ctr.Flushes, nd.Ctr.FaultRetries,
		tags[TagInvalid], tags[TagReadOnly], tags[TagReadWrite], tags[TagPrivate])
	if m.Trace != nil {
		evts := m.Trace.NodeEvents(nd.ID)
		if len(evts) > 0 {
			fmt.Fprintf(&sb, "         last trace: %s\n", evts[len(evts)-1])
		}
	}
	return sb.String()
}
