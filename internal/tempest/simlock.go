package tempest

import "sync"

// SimLock is a simulated inter-node lock.  It provides real mutual
// exclusion for the simulator (so critical-section data movement is
// race-free under the Go memory model) and models the lock's virtual-time
// behaviour: acquisition costs a remote round trip and the holder's
// critical sections serialize, so virtual time exposes the bottleneck a
// contended lock creates — exactly the effect Section 7.1 contrasts with
// RSM reductions.
//
// Under the deterministic scheduler (Machine.DetSched) mutual exclusion is
// carried by the cooperative token instead of by holding mu across the
// critical section — the holder may reach scheduling points (access
// faults) inside the critical section, and parking the token under a host
// mutex would wedge the run queue.  Contenders block in the run queue and
// the releaser readies them itself, so acquisition order is a function of
// virtual time, not host mutex arbitration.
type SimLock struct {
	mu          sync.Mutex
	lastRelease int64

	// held and waiters are used only in deterministic-scheduler mode,
	// guarded by mu (which is then only ever held briefly, never across a
	// scheduling point).
	held    bool
	waiters []int
}

// Acquire takes the lock.  The caller's clock advances past the previous
// holder's release time (serialization) plus the lock-transfer round trip.
func (lk *SimLock) Acquire(n *Node) {
	if s := n.M.schedder; s != nil {
		// Contend in virtual time: the run queue decides who attempts the
		// lock next, and losers park until the releaser readies them.
		s.Yield(n.ID, n.Clock())
		lk.mu.Lock()
		for lk.held {
			if s.Poisoned() {
				// The run is dying (abort/stall); the holder may never
				// release.  Proceed so the unwinding node reaches its
				// barrier abort instead of spinning.
				break
			}
			lk.waiters = append(lk.waiters, n.ID)
			lk.mu.Unlock()
			s.Block(n.ID)
			s.AwaitGrant(n.ID)
			lk.mu.Lock()
		}
		lk.held = true
		lk.mu.Unlock()
		// While the lock is held the time-parallel admitter degenerates to
		// the serial token: critical sections serialize in virtual time and
		// admitting around them would reorder the contention.
		s.SetLockHeld(n.ID, true)
	} else {
		lk.mu.Lock()
	}
	n.FoldStolen()
	if lk.lastRelease > n.Clock() {
		n.Charge(lk.lastRelease - n.Clock())
	}
	n.Charge(n.M.Cost.RemoteRoundTrip)
}

// Release releases the lock, recording the holder's clock as the earliest
// time the next holder can enter.
func (lk *SimLock) Release(n *Node) {
	if s := n.M.schedder; s != nil {
		lk.mu.Lock()
		lk.lastRelease = n.Clock()
		lk.held = false
		ws := lk.waiters
		lk.waiters = nil
		lk.mu.Unlock()
		s.SetLockHeld(n.ID, false)
		// Ready every waiter; the run queue grants them in virtual-time
		// order and each re-checks held, so the hand-off is deterministic.
		for _, id := range ws {
			s.SetReady(id)
		}
		return
	}
	lk.lastRelease = n.Clock()
	lk.mu.Unlock()
}
