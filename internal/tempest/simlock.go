package tempest

import "sync"

// SimLock is a simulated inter-node lock.  It provides real mutual
// exclusion for the simulator (so critical-section data movement is
// race-free under the Go memory model) and models the lock's virtual-time
// behaviour: acquisition costs a remote round trip and the holder's
// critical sections serialize, so virtual time exposes the bottleneck a
// contended lock creates — exactly the effect Section 7.1 contrasts with
// RSM reductions.
type SimLock struct {
	mu          sync.Mutex
	lastRelease int64
}

// Acquire takes the lock.  The caller's clock advances past the previous
// holder's release time (serialization) plus the lock-transfer round trip.
func (lk *SimLock) Acquire(n *Node) {
	lk.mu.Lock()
	n.FoldStolen()
	if lk.lastRelease > n.Clock() {
		n.Charge(lk.lastRelease - n.Clock())
	}
	n.Charge(n.M.Cost.RemoteRoundTrip)
}

// Release releases the lock, recording the holder's clock as the earliest
// time the next holder can enter.
func (lk *SimLock) Release(n *Node) {
	lk.lastRelease = n.Clock()
	lk.mu.Unlock()
}
