package tempest

import (
	"lcm/internal/net"
	"lcm/internal/sched"
)

// gatedNet wraps a stateful interconnect model (the fat tree's channel
// ledger) for time-parallel runs: every timed operation first waits until
// the calling node is the oldest member of the running frontier
// (sched.NetGate), so ledger mutations — channel free-at times, queueing
// charges — happen in exactly the order the serial scheduler would have
// produced.  The uniform model is stateless per message and runs
// ungated.
//
// The gate cannot deadlock against the simulator's block locks: a gated
// caller may hold its fault block's home lock, but no younger frontier
// member can need that lock mid-segment — acquiring it requires either a
// fault grant on the same block (excluded by the scheduler's block
// distinctness) or a write-through, which requires a writable cached
// copy admission has vetoed while the handler's copy exists.
type gatedNet struct {
	net.Network
	s *sched.Scheduler
}

func (g *gatedNet) RoundTrip(src, dst int, payload int64, now int64, c *net.Counters) int64 {
	g.s.NetGate(src)
	return g.Network.RoundTrip(src, dst, payload, now, c)
}

func (g *gatedNet) Timeout(src, dst int, now int64, c *net.Counters) int64 {
	g.s.NetGate(src)
	return g.Network.Timeout(src, dst, now, c)
}

func (g *gatedNet) Forward(src, dst int, now int64, c *net.Counters) int64 {
	g.s.NetGate(src)
	return g.Network.Forward(src, dst, now, c)
}

func (g *gatedNet) Upgrade(src, dst int, now int64, c *net.Counters) int64 {
	g.s.NetGate(src)
	return g.Network.Upgrade(src, dst, now, c)
}

func (g *gatedNet) Invalidate(src, dst int, now int64, c *net.Counters) int64 {
	g.s.NetGate(src)
	return g.Network.Invalidate(src, dst, now, c)
}

func (g *gatedNet) Flush(src, dst int, payload int64, now int64, c *net.Counters) int64 {
	g.s.NetGate(src)
	return g.Network.Flush(src, dst, payload, now, c)
}
