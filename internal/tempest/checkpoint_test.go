package tempest

import (
	"strings"
	"testing"

	"lcm/internal/fault"
	"lcm/internal/memsys"
)

// recoveryMachine is newTestMachine with the deterministic scheduler and
// checkpoint/restart enabled.
func recoveryMachine(t *testing.T, p int, words uint64) (*Machine, *memsys.Region) {
	t.Helper()
	m, r := newTestMachine(t, p, words)
	m.DetSched = true
	m.Recovery = true
	return m, r
}

// TestCheckpointEveryBarrier: under Recovery every node snapshots at
// every barrier — one checkpoint per barrier crossed, covering the lines
// the node had installed.
func TestCheckpointEveryBarrier(t *testing.T) {
	m, r := recoveryMachine(t, 2, 128)
	err := m.RunErr(func(n *Node) {
		touchAll(t, n, r, 128)
		n.Barrier()
		touchAll(t, n, r, 128)
		n.Barrier()
	})
	if err != nil {
		t.Fatalf("RunErr: %v", err)
	}
	for _, n := range m.Nodes {
		if n.Ctr.Checkpoints != n.Ctr.Barriers || n.Ctr.Barriers != 2 {
			t.Errorf("node %d: %d checkpoints over %d barriers, want one per barrier",
				n.ID, n.Ctr.Checkpoints, n.Ctr.Barriers)
		}
		if n.CheckpointLines() == 0 {
			t.Errorf("node %d: last checkpoint is empty after touching every word", n.ID)
		}
	}
}

// TestRestoreCheckpoint proves the snapshot holds real state: mutate every
// checkpointed line after the barrier, install a brand-new line, restore,
// and the machine must be back to its barrier image byte for byte with the
// late line invalidated.
func TestRestoreCheckpoint(t *testing.T) {
	m, r := recoveryMachine(t, 1, 64)
	half := memsys.Addr(32 * 4) // second half stays untouched until after the barrier
	err := m.RunErr(func(n *Node) {
		for w := uint64(0); w < 32; w++ {
			n.WriteU32(r.Base+memsys.Addr(w*4), uint32(w)+1000)
		}
		n.Barrier() // checkpoint captures the first-half lines
		snapLines := n.CheckpointLines()
		for w := uint64(0); w < 32; w++ {
			n.WriteU32(r.Base+memsys.Addr(w*4), 0xdeadbeef)
		}
		n.WriteU32(r.Base+half, 7) // installs a line the checkpoint never saw

		n.RestoreCheckpoint()

		if got := n.CheckpointLines(); got != snapLines {
			t.Errorf("restore changed the checkpoint itself: %d lines, had %d", got, snapLines)
		}
		for w := uint64(0); w < 32; w++ {
			if got, want := n.ReadU32(r.Base+memsys.Addr(w*4)), uint32(w)+1000; got != want {
				t.Fatalf("word %d after restore = %#x, want the barrier image %#x", w, got, want)
			}
		}
		lateBlock := m.AS.Block(r.Base + half)
		if l := n.Line(lateBlock); l != nil && l.Tag() != TagInvalid {
			t.Errorf("line installed after the checkpoint survived the restore (tag %v)", l.Tag())
		}
	})
	if err != nil {
		t.Fatalf("RunErr: %v", err)
	}
}

// TestKillRecoverRestarts: a KillRecover plan turns injected kills into
// checkpoint restarts — the run completes, data verifies, and the restart
// accounting matches the kills injected.
func TestKillRecoverRestarts(t *testing.T) {
	m, r := recoveryMachine(t, 2, 128)
	m.AttachFaults(fault.Plan{Seed: 3, KillNode: 1, KillAfter: 2, KillCount: 2, KillRecover: true})
	err := m.RunErr(func(n *Node) {
		touchAll(t, n, r, 128)
		n.Barrier()
		touchAll(t, n, r, 128)
		n.Barrier()
	})
	if err != nil {
		t.Fatalf("RunErr under KillRecover plan: %v", err)
	}
	tally := m.Fault.Tally()
	if tally.Kills == 0 {
		t.Fatal("plan killed nothing; test proves nothing")
	}
	n1 := m.Nodes[1]
	if n1.Ctr.Restarts != tally.Kills {
		t.Errorf("node 1 restarts = %d, injected kills = %d", n1.Ctr.Restarts, tally.Kills)
	}
	if n1.Ctr.RecoveryCycles == 0 {
		t.Error("restarts charged no recovery cycles")
	}
	if m.Nodes[0].Ctr.Restarts != 0 {
		t.Errorf("node 0 restarted %d times without being killed", m.Nodes[0].Ctr.Restarts)
	}
	if n1.Degraded() {
		t.Error("node 1 went degraded within its restart budget")
	}
}

// TestKillAtBarrierRecovers: a crash at the barrier itself restarts from
// the previous epoch's checkpoint and the barrier still completes.
func TestKillAtBarrierRecovers(t *testing.T) {
	m, r := recoveryMachine(t, 2, 128)
	m.AttachFaults(fault.Plan{Seed: 4, KillNode: 1, KillAtBarrier: 2, KillRecover: true})
	err := m.RunErr(func(n *Node) {
		for i := 0; i < 3; i++ {
			touchAll(t, n, r, 128)
			n.Barrier()
		}
	})
	if err != nil {
		t.Fatalf("RunErr: %v", err)
	}
	if got := m.Fault.Tally().Kills; got != 1 {
		t.Fatalf("kills = %d, want exactly one barrier kill", got)
	}
	if got := m.Nodes[1].Ctr.Restarts; got != 1 {
		t.Errorf("node 1 restarts = %d, want 1", got)
	}
}

// TestRehomePastBudget: killed more often than the restart budget allows,
// the node's home responsibility migrates to the live peer and the run
// still completes with intact data.
func TestRehomePastBudget(t *testing.T) {
	m, r := recoveryMachine(t, 2, 128)
	m.AttachFaults(fault.Plan{
		Seed: 5, KillNode: 1, KillAfter: 2, KillCount: 4,
		KillRecover: true, RestartBudget: 2,
	})
	err := m.RunErr(func(n *Node) {
		touchAll(t, n, r, 128)
		n.Barrier()
		touchAll(t, n, r, 128)
		n.Barrier()
	})
	if err != nil {
		t.Fatalf("RunErr: %v", err)
	}
	n1 := m.Nodes[1]
	if !n1.Degraded() {
		t.Fatalf("node 1 killed %d times with budget 2 but never went degraded", m.Fault.Tally().Kills)
	}
	if n1.Ctr.Rehomings != 1 {
		t.Errorf("Rehomings = %d, want exactly 1 (re-homing is once per node)", n1.Ctr.Rehomings)
	}
	if n1.Ctr.RehomedBlocks == 0 {
		t.Error("re-homing migrated zero blocks")
	}
	first, nb := r.FirstBlock(), r.NumBlocks()
	for i := uint32(0); i < nb; i++ {
		b := first + memsys.BlockID(i)
		if m.AS.HomeOf(b) == 1 {
			t.Fatalf("block %d still homed at the degraded node", b)
		}
		if m.AS.BaseHomeOf(b) == 1 && m.AS.HomeOf(b) != 0 {
			t.Fatalf("block %d migrated to %d, want the only live peer 0", b, m.AS.HomeOf(b))
		}
	}
}

// TestRecoveryRequiresDetSched: restart-by-deterministic-replay is only
// sound when the access stream is reproducible, so Recovery under FreeRun
// must refuse to run.
func TestRecoveryRequiresDetSched(t *testing.T) {
	m, _ := newTestMachine(t, 2, 64)
	m.Recovery = true
	m.DetSched = false
	err := m.RunErr(func(n *Node) { n.Barrier() })
	if err == nil || !strings.Contains(err.Error(), "deterministic scheduler") {
		t.Fatalf("RunErr = %v, want a Recovery-requires-DetSched refusal", err)
	}
}

// TestKillWithoutRecoverStillAborts: Recovery on the machine does not
// soften a plan that never opted into KillRecover — the historical abort
// path is preserved.
func TestKillWithoutRecoverStillAborts(t *testing.T) {
	m, r := recoveryMachine(t, 2, 64)
	m.AttachFaults(fault.Plan{Seed: 6, KillNode: 1, KillAfter: 2})
	err := m.RunErr(func(n *Node) {
		touchAll(t, n, r, 64)
		n.Barrier()
	})
	if err == nil {
		t.Fatal("run succeeded despite an unrecoverable kill")
	}
}
