package tempest

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"lcm/internal/sched"
)

// Barrier is a reusable sense-reversing barrier that also computes the
// maximum virtual clock of the arriving nodes; Wait returns that maximum,
// which each node adopts as its post-barrier clock.
//
// A barrier can be aborted: Abort releases every current waiter and makes
// every future wait fail fast with the same distinguished error, so the
// death of one participant cannot strand its siblings forever.  An
// optional wall-clock watchdog (SetWatchdog) aborts a round that stalls —
// some participant failed to arrive in time — after collecting per-node
// diagnostics; this turns a silent deadlock into a structured, bounded
// failure.  Once aborted, a barrier stays poisoned; build a fresh machine
// to run again.
type Barrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	n       int
	arrived int
	gen     uint64
	max     int64
	result  int64

	// present[i] records that node i is parked in the current round,
	// for the watchdog's diagnostics.  Guarded by mu.
	present []bool

	// err, once set, poisons the barrier: all waits return it.
	err error

	// foldClocks, when non-nil (machine barriers), is called under mu at
	// the instant the last participant arrives; it folds every node's
	// stolen handler cycles and returns the resulting clock maximum.  All
	// participants are quiescent inside WaitNode at that point, so the
	// fold cannot race an in-flight ChargeRemote.
	foldClocks func() int64

	// sched, when non-nil, is the run's deterministic scheduler: parkers
	// hand the token on, the last arriver readies them, and an abort
	// poisons the scheduler so unwinding nodes free-run.
	sched *sched.Scheduler

	// wakeLB is the admission lower bound declared for post-barrier
	// segments under the time-parallel scheduler: every node leaving a
	// machine barrier charges Cost.Barrier before its next scheduling
	// point.  Zero (raw barriers, serial runs) declares nothing.
	wakeLB int64

	watchdog time.Duration
	onStall  func(present []bool) string
	timer    *time.Timer
}

// NewBarrier creates a barrier for n participants.
func NewBarrier(n int) *Barrier {
	b := &Barrier{n: n, present: make([]bool, n)}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// ErrAborted is the sentinel every post-abort wait returns (match with
// errors.Is); the concrete error also carries the abort's cause.
var ErrAborted = errors.New("tempest: barrier aborted")

// abortedError wraps the cause a barrier was aborted with.
type abortedError struct{ cause error }

func (e *abortedError) Error() string   { return "tempest: barrier aborted: " + e.cause.Error() }
func (e *abortedError) Unwrap() error   { return e.cause }
func (e *abortedError) Is(t error) bool { return t == ErrAborted }

// ErrStalled is the sentinel for a watchdog-detected barrier stall (match
// with errors.Is).
var ErrStalled = errors.New("tempest: barrier stalled")

// StallError reports a barrier round that the watchdog gave up on: some
// participant never arrived within the wall-clock bound.
type StallError struct {
	Arrived, N  int
	Timeout     time.Duration
	Diagnostics string
}

func (e *StallError) Error() string {
	return fmt.Sprintf("tempest: barrier stalled: %d/%d nodes arrived within %v", e.Arrived, e.N, e.Timeout)
}

// Is matches ErrStalled.
func (e *StallError) Is(t error) bool { return t == ErrStalled }

// setSched attaches (or detaches, with nil) a run's deterministic
// scheduler.
func (b *Barrier) setSched(s *sched.Scheduler) {
	b.mu.Lock()
	b.sched = s
	b.mu.Unlock()
}

// SetWatchdog bounds the wall-clock duration of any single barrier round
// (0 disables).  onStall, when non-nil, is invoked — with the barrier
// lock held, so parked nodes are quiescent and their state is safely
// readable — to collect diagnostics before the abort.
func (b *Barrier) SetWatchdog(d time.Duration, onStall func(present []bool) string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.watchdog = d
	b.onStall = onStall
}

// Wait blocks until all n participants have arrived, then returns the
// maximum clock value passed by any participant in this round.  It panics
// if the barrier is aborted while waiting; Machine.RunErr recovers such
// panics into a structured per-node error.  Use WaitNode to observe the
// abort as an error instead.
func (b *Barrier) Wait(clock int64) int64 {
	c, err := b.WaitNode(-1, clock)
	if err != nil {
		panic(err)
	}
	return c
}

// WaitNode is Wait with an error return and a participant identity for
// the watchdog's diagnostics (pass -1 when the caller is not a node).  On
// abort it returns the abort error (errors.Is ErrAborted) and the clock
// the caller passed in.
func (b *Barrier) WaitNode(node int, clock int64) (int64, error) {
	b.mu.Lock()
	if b.err != nil {
		err := b.err
		b.mu.Unlock()
		return clock, err
	}
	if clock > b.max {
		b.max = clock
	}
	gen := b.gen
	b.arrived++
	if node >= 0 && node < len(b.present) {
		b.present[node] = true
	}
	s := b.sched
	if s != nil && node >= 0 {
		s.NoteBarrier() // the running segment crosses a barrier
	}
	if b.arrived == b.n {
		// Last arriver: every participant is inside WaitNode, so fold the
		// stolen handler cycles race-free (see foldClocks) and resolve the
		// round at the true clock maximum.
		if b.foldClocks != nil {
			if f := b.foldClocks(); f > b.max {
				b.max = f
			}
		}
		b.result = b.max
		res := b.result
		// Under the deterministic scheduler the last arriver — the only
		// running node — readies its parked siblings itself, so wakeup
		// order never depends on the host (invariant 1 in sched's docs).
		// All resume at the barrier's resolved time; ties break by node.
		if s != nil && node >= 0 {
			for i, p := range b.present {
				if p && i != node {
					s.SetReadyIntent(i, res, sched.Intent{Kind: sched.IntentCompute, LB: b.wakeLB})
				}
			}
		}
		b.max = 0
		b.arrived = 0
		for i := range b.present {
			b.present[i] = false
		}
		b.gen++
		b.stopTimer()
		b.cond.Broadcast()
		b.mu.Unlock()
		if s != nil && node >= 0 {
			// Re-enter the run queue alongside the siblings just readied.
			s.YieldIntent(node, res, sched.Intent{Kind: sched.IntentCompute, LB: b.wakeLB})
		}
		return res, nil
	}
	if b.arrived == 1 && b.watchdog > 0 {
		b.timer = time.AfterFunc(b.watchdog, func() { b.stalled(gen) })
	}
	if s != nil && node >= 0 {
		// Hand the token on before parking.  Safe while holding b.mu: the
		// granted node can only contend for b.mu once we release it inside
		// cond.Wait, and nothing we touch until then is simulator state.
		s.Block(node)
	}
	for gen == b.gen && b.err == nil {
		b.cond.Wait()
	}
	if b.err != nil {
		err := b.err
		b.mu.Unlock()
		return clock, err
	}
	res := b.result
	b.mu.Unlock()
	if s != nil && node >= 0 {
		// Readied by the last arriver; wait for the run queue's grant
		// before re-entering simulator code.
		s.AwaitGrant(node)
	}
	return res, nil
}

// Abort poisons the barrier with cause: every parked waiter wakes and
// every future wait fails fast with an error matching ErrAborted.  The
// first abort wins; later calls are no-ops.
func (b *Barrier) Abort(cause error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.abortLocked(cause)
}

func (b *Barrier) abortLocked(cause error) {
	if b.err != nil {
		return
	}
	if errors.Is(cause, ErrAborted) {
		b.err = cause
	} else {
		b.err = &abortedError{cause: cause}
	}
	if b.sched != nil {
		// Lock order is always barrier → scheduler, so poisoning here is
		// safe; released waiters must not block on the dead run queue.
		b.sched.Poison()
	}
	b.stopTimer()
	b.cond.Broadcast()
}

// Err returns the abort error, or nil while the barrier is healthy.
func (b *Barrier) Err() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.err
}

// stalled is the watchdog timer callback for round gen.
func (b *Barrier) stalled(gen uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.err != nil || b.gen != gen || b.arrived == 0 {
		return // the round completed (or already died) before the timer fired
	}
	stall := &StallError{Arrived: b.arrived, N: b.n, Timeout: b.watchdog}
	if b.onStall != nil {
		// Parked nodes released the lock inside cond.Wait and cannot
		// wake before our Broadcast, so the callback reads their state
		// race-free under mu.
		stall.Diagnostics = b.onStall(b.present)
	}
	b.abortLocked(stall)
}

// stopTimer stops a pending watchdog timer.  Caller holds mu.
func (b *Barrier) stopTimer() {
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
}
