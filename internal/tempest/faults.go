package tempest

import (
	"lcm/internal/fault"
	"lcm/internal/memsys"
)

// This file wires the fault injector into the Tempest data-movement
// boundary.  Three injection points cover the substrate failures the
// paper's real CM-5 hardware could exhibit:
//
//   - block-transfer corruption, detected by a per-transfer checksum and
//     healed by bounded re-fetch with exponential backoff (deliverBlock);
//   - transient remote-access failure: a fault-handler round trip times
//     out and is re-sent up to a budget (preFault);
//   - handler occupancy spikes and node stalls that stress the cost
//     model without touching data (preFault).
//
// All recovery is charged in virtual cycles and recorded in the node's
// counters; injected faults never change program-visible data, so a run
// under any recoverable plan is bit-identical to the fault-free run.
// Exhausting a retry budget — or the plan's explicit kill — panics with a
// structured error that RunErr recovers into a per-node failure.

// AttachFaults attaches a deterministic fault injector executing plan.
// Call before Run; pass the zero Plan to model a perfect interconnect
// with checksums still verified.
func (m *Machine) AttachFaults(plan fault.Plan) *fault.Injector {
	m.Fault = fault.NewInjector(m.P, plan)
	return m.Fault
}

// preFault runs the injector's pre-dispatch faults for an access fault on
// block b.  It executes in the faulting node's goroutine before the
// protocol handler, exactly where Blizzard's trap entry ran.
func (n *Node) preFault(b memsys.BlockID) {
	f := n.M.Fault
	if f == nil {
		return
	}
	if f.AccessFault(n.ID) {
		n.killed(f, f.Plan().KillAfter)
	}
	if cyc, ok := f.Stall(n.ID); ok {
		n.clock += cyc
		n.Ctr.Stalls++
		n.Ctr.StallCycles += cyc
	}
	if n.M.AS.HomeOf(b) == n.ID {
		return // local fill: no messages to lose or spike
	}
	// Transient failure: the request round trip is lost, the requester
	// times out (one full round trip of virtual time) and re-sends after
	// exponential backoff, up to the retry budget.
	for attempt := 1; f.TransientTimeout(n.ID); attempt++ {
		if attempt > f.RetryBudget() {
			panic(&fault.RetryExhaustedError{
				Node: n.ID, Op: "remote request", Block: uint32(b), Attempts: attempt,
			})
		}
		backoff := f.Backoff(attempt)
		n.clock += n.M.Net.Timeout(n.ID, n.M.AS.HomeOf(b), n.Clock(), &n.Ctr.Net) + backoff
		n.Ctr.TransientTimeouts++
		n.Ctr.FaultRetries++
		n.Ctr.BackoffCycles += backoff
	}
	if cyc, ok := f.OccupancySpike(n.ID); ok {
		n.M.Nodes[n.M.AS.HomeOf(b)].ChargeRemote(cyc)
		n.Ctr.OccupancySpikes++
	}
}

// deliverBlock models the arrival of a block transfer into line l.  The
// sender's per-transfer checksum is verified against the received data; a
// mismatch triggers a bounded re-fetch with exponential backoff, charged
// in virtual cycles.  Runs in the receiving node's goroutine with src
// stable (the caller holds the block's lock), so the re-fetch can simply
// re-copy the true data.
func (n *Node) deliverBlock(f *fault.Injector, b memsys.BlockID, l *Line, src []byte) {
	sum := fault.Checksum(src)
	remote := n.M.AS.HomeOf(b) != n.ID
	for attempt := 1; ; attempt++ {
		if f.CorruptTransfer(n.ID) {
			f.CorruptBytes(n.ID, l.Data)
		}
		if fault.Checksum(l.Data) == sum {
			return // transfer verified intact
		}
		n.Ctr.CorruptedTransfers++
		if attempt > f.RetryBudget() {
			panic(&fault.RetryExhaustedError{
				Node: n.ID, Op: "block transfer", Block: uint32(b), Attempts: attempt,
			})
		}
		backoff := f.Backoff(attempt)
		n.Ctr.FaultRetries++
		n.Ctr.BackoffCycles += backoff
		if remote {
			n.clock += n.M.Net.RoundTrip(n.ID, n.M.AS.HomeOf(b), int64(n.M.AS.BlockSize), n.Clock(), &n.Ctr.Net) + backoff
		} else {
			n.clock += n.M.Cost.LocalFill + backoff
		}
		copy(l.Data, src)
	}
}
