package tempest

import (
	"encoding/binary"
	"fmt"
	"math"

	"lcm/internal/memsys"
)

// Span accessors: bulk loads and stores over [a, a+k*elem) that pay the
// Blizzard-E lookup once per block segment instead of once per element.
// Each span splits at block boundaries; within one segment a single tag
// check (and at most one fault, one makeRoom, and — for coherent stores —
// one home-lock acquisition) covers the whole transfer, which is then a
// bulk copy, while the virtual-cycle accounting charges k × Cost.CacheHit
// and Ctr.Hits += k exactly as k scalar accesses would.  The per-block
// fault sequence is identical to the scalar path's: a scalar loop touching
// the same range faults each block once, at its first element, in the same
// order.  With Machine.ScalarAccess set every span decomposes into the
// scalar accessors so differential tests can assert that equivalence.
//
// Spans must start element-aligned (aggregates are allocated that way), so
// segments never straddle a block boundary mid-element.

// spanSeg returns the block, byte offset and element count of the span
// segment starting at a, covering at most max elements of size elem.
func (n *Node) spanSeg(a memsys.Addr, elem uint32, max int) (memsys.BlockID, uint32, int) {
	b, off := n.M.AS.Split(a)
	if off&(elem-1) != 0 {
		panic(fmt.Sprintf("tempest: span of %d-byte elements at %#x is not element-aligned", elem, a))
	}
	k := int((n.M.AS.BlockSize - off) / elem)
	if k > max {
		k = max
	}
	return b, off, k
}

// ReadSpanU32 loads len(dst) consecutive 32-bit words starting at a.
func (n *Node) ReadSpanU32(a memsys.Addr, dst []uint32) {
	if n.M.ScalarAccess {
		for i := range dst {
			dst[i] = n.ReadU32(a + memsys.Addr(4*i))
		}
		return
	}
	for len(dst) > 0 {
		b, off, k := n.spanSeg(a, 4, len(dst))
		seg := n.loadSeg(b, int64(k)).Data[off:]
		for i := 0; i < k; i++ {
			dst[i] = binary.LittleEndian.Uint32(seg[4*i:])
		}
		dst = dst[k:]
		a += memsys.Addr(4 * k)
	}
}

// WriteSpanU32 stores the words of src consecutively starting at a.
func (n *Node) WriteSpanU32(a memsys.Addr, src []uint32) {
	if n.M.ScalarAccess {
		for i, v := range src {
			n.WriteU32(a+memsys.Addr(4*i), v)
		}
		return
	}
	for len(src) > 0 {
		_, _, k := n.spanSeg(a, 4, len(src))
		buf := n.spanBuf[:4*k]
		for i := 0; i < k; i++ {
			binary.LittleEndian.PutUint32(buf[4*i:], src[i])
		}
		n.storeAt(a, buf, int64(k))
		src = src[k:]
		a += memsys.Addr(4 * k)
	}
}

// ReadSpanU64 loads len(dst) consecutive 64-bit words starting at a.
func (n *Node) ReadSpanU64(a memsys.Addr, dst []uint64) {
	if n.M.ScalarAccess {
		for i := range dst {
			dst[i] = n.ReadU64(a + memsys.Addr(8*i))
		}
		return
	}
	for len(dst) > 0 {
		b, off, k := n.spanSeg(a, 8, len(dst))
		seg := n.loadSeg(b, int64(k)).Data[off:]
		for i := 0; i < k; i++ {
			dst[i] = binary.LittleEndian.Uint64(seg[8*i:])
		}
		dst = dst[k:]
		a += memsys.Addr(8 * k)
	}
}

// WriteSpanU64 stores the words of src consecutively starting at a.
func (n *Node) WriteSpanU64(a memsys.Addr, src []uint64) {
	if n.M.ScalarAccess {
		for i, v := range src {
			n.WriteU64(a+memsys.Addr(8*i), v)
		}
		return
	}
	for len(src) > 0 {
		_, _, k := n.spanSeg(a, 8, len(src))
		buf := n.spanBuf[:8*k]
		for i := 0; i < k; i++ {
			binary.LittleEndian.PutUint64(buf[8*i:], src[i])
		}
		n.storeAt(a, buf, int64(k))
		src = src[k:]
		a += memsys.Addr(8 * k)
	}
}

// ReadSpanF32 loads len(dst) consecutive single-precision floats.
func (n *Node) ReadSpanF32(a memsys.Addr, dst []float32) {
	if n.M.ScalarAccess {
		for i := range dst {
			dst[i] = n.ReadF32(a + memsys.Addr(4*i))
		}
		return
	}
	for len(dst) > 0 {
		b, off, k := n.spanSeg(a, 4, len(dst))
		seg := n.loadSeg(b, int64(k)).Data[off:]
		for i := 0; i < k; i++ {
			dst[i] = math.Float32frombits(binary.LittleEndian.Uint32(seg[4*i:]))
		}
		dst = dst[k:]
		a += memsys.Addr(4 * k)
	}
}

// WriteSpanF32 stores the floats of src consecutively starting at a.
func (n *Node) WriteSpanF32(a memsys.Addr, src []float32) {
	if n.M.ScalarAccess {
		for i, v := range src {
			n.WriteF32(a+memsys.Addr(4*i), v)
		}
		return
	}
	for len(src) > 0 {
		_, _, k := n.spanSeg(a, 4, len(src))
		buf := n.spanBuf[:4*k]
		for i := 0; i < k; i++ {
			binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(src[i]))
		}
		n.storeAt(a, buf, int64(k))
		src = src[k:]
		a += memsys.Addr(4 * k)
	}
}

// ReadSpanF64 loads len(dst) consecutive double-precision floats.
func (n *Node) ReadSpanF64(a memsys.Addr, dst []float64) {
	if n.M.ScalarAccess {
		for i := range dst {
			dst[i] = n.ReadF64(a + memsys.Addr(8*i))
		}
		return
	}
	for len(dst) > 0 {
		b, off, k := n.spanSeg(a, 8, len(dst))
		seg := n.loadSeg(b, int64(k)).Data[off:]
		for i := 0; i < k; i++ {
			dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(seg[8*i:]))
		}
		dst = dst[k:]
		a += memsys.Addr(8 * k)
	}
}

// WriteSpanF64 stores the floats of src consecutively starting at a.
func (n *Node) WriteSpanF64(a memsys.Addr, src []float64) {
	if n.M.ScalarAccess {
		for i, v := range src {
			n.WriteF64(a+memsys.Addr(8*i), v)
		}
		return
	}
	for len(src) > 0 {
		_, _, k := n.spanSeg(a, 8, len(src))
		buf := n.spanBuf[:8*k]
		for i := 0; i < k; i++ {
			binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(src[i]))
		}
		n.storeAt(a, buf, int64(k))
		src = src[k:]
		a += memsys.Addr(8 * k)
	}
}

// ReadSpanI32 loads len(dst) consecutive 32-bit signed integers.
func (n *Node) ReadSpanI32(a memsys.Addr, dst []int32) {
	if n.M.ScalarAccess {
		for i := range dst {
			dst[i] = n.ReadI32(a + memsys.Addr(4*i))
		}
		return
	}
	for len(dst) > 0 {
		b, off, k := n.spanSeg(a, 4, len(dst))
		seg := n.loadSeg(b, int64(k)).Data[off:]
		for i := 0; i < k; i++ {
			dst[i] = int32(binary.LittleEndian.Uint32(seg[4*i:]))
		}
		dst = dst[k:]
		a += memsys.Addr(4 * k)
	}
}

// WriteSpanI32 stores the integers of src consecutively starting at a.
func (n *Node) WriteSpanI32(a memsys.Addr, src []int32) {
	if n.M.ScalarAccess {
		for i, v := range src {
			n.WriteI32(a+memsys.Addr(4*i), v)
		}
		return
	}
	for len(src) > 0 {
		_, _, k := n.spanSeg(a, 4, len(src))
		buf := n.spanBuf[:4*k]
		for i := 0; i < k; i++ {
			binary.LittleEndian.PutUint32(buf[4*i:], uint32(src[i]))
		}
		n.storeAt(a, buf, int64(k))
		src = src[k:]
		a += memsys.Addr(4 * k)
	}
}

// ReadSpanI64 loads len(dst) consecutive 64-bit signed integers.
func (n *Node) ReadSpanI64(a memsys.Addr, dst []int64) {
	if n.M.ScalarAccess {
		for i := range dst {
			dst[i] = n.ReadI64(a + memsys.Addr(8*i))
		}
		return
	}
	for len(dst) > 0 {
		b, off, k := n.spanSeg(a, 8, len(dst))
		seg := n.loadSeg(b, int64(k)).Data[off:]
		for i := 0; i < k; i++ {
			dst[i] = int64(binary.LittleEndian.Uint64(seg[8*i:]))
		}
		dst = dst[k:]
		a += memsys.Addr(8 * k)
	}
}

// WriteSpanI64 stores the integers of src consecutively starting at a.
func (n *Node) WriteSpanI64(a memsys.Addr, src []int64) {
	if n.M.ScalarAccess {
		for i, v := range src {
			n.WriteI64(a+memsys.Addr(8*i), v)
		}
		return
	}
	for len(src) > 0 {
		_, _, k := n.spanSeg(a, 8, len(src))
		buf := n.spanBuf[:8*k]
		for i := 0; i < k; i++ {
			binary.LittleEndian.PutUint64(buf[8*i:], uint64(src[i]))
		}
		n.storeAt(a, buf, int64(k))
		src = src[k:]
		a += memsys.Addr(8 * k)
	}
}

// CopySpan copies k elements of elem bytes (4 or 8) from src to dst
// through the tagged access path, exactly as the scalar loop
// "for i: store(dst+i*elem, load(src+i*elem))" would: segments split at
// the earliest next block boundary of either the source or the
// destination, and each segment performs its loads (one tag check) then
// its stores (one tag check), so the per-block fault order matches the
// element-by-element loop's.  Data moves directly from the source line to
// the destination with no staging buffer.
func (n *Node) CopySpan(dst, src memsys.Addr, k int, elem uint32) {
	if elem != 4 && elem != 8 {
		panic(fmt.Sprintf("tempest: CopySpan element size %d (want 4 or 8)", elem))
	}
	if n.M.ScalarAccess {
		for i := 0; i < k; i++ {
			d, s := dst+memsys.Addr(uint32(i)*elem), src+memsys.Addr(uint32(i)*elem)
			if elem == 4 {
				n.WriteU32(d, n.ReadU32(s))
			} else {
				n.WriteU64(d, n.ReadU64(s))
			}
		}
		return
	}
	for k > 0 {
		sb, soff, kk := n.spanSeg(src, elem, k)
		_, _, dk := n.spanSeg(dst, elem, kk)
		kk = dk
		l := n.loadSeg(sb, int64(kk))
		n.storeAt(dst, l.Data[soff:soff+uint32(kk)*elem], int64(kk))
		k -= kk
		src += memsys.Addr(uint32(kk) * elem)
		dst += memsys.Addr(uint32(kk) * elem)
	}
}

// FillSpanF32 stores v to k consecutive float32 elements starting at a.
func (n *Node) FillSpanF32(a memsys.Addr, k int, v float32) {
	if n.M.ScalarAccess {
		for i := 0; i < k; i++ {
			n.WriteF32(a+memsys.Addr(4*i), v)
		}
		return
	}
	for k > 0 {
		_, _, kk := n.spanSeg(a, 4, k)
		buf := n.spanBuf[:4*kk]
		for i := 0; i < kk; i++ {
			binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(v))
		}
		n.storeAt(a, buf, int64(kk))
		k -= kk
		a += memsys.Addr(4 * kk)
	}
}
