package tempest

import (
	"sync"

	"lcm/internal/fault"
	"lcm/internal/net"
)

// This file is the sequence-numbered ack/retransmission layer that makes
// the protocol survive an unreliable interconnect.  AttachLoss seeds the
// active network model with delivery faults (drop/duplicate/reorder; see
// net.Loss) and wraps it in reliableNet, which sits between every
// protocol charge site and the model:
//
//   - each message carries a per-sender sequence number; the receiver
//     acks cumulatively;
//   - a dropped message is detected by ack timeout: the sender waits out
//     one timeout window (priced by the inner model), backs off
//     exponentially (fault.Injector.Backoff), and re-sends, up to the
//     retry budget — every wasted cycle and re-sent message is charged
//     through the inner model, so retransmissions show up in net_msgs
//     and net_queue_cycles like any other traffic;
//   - a duplicated message arrives with a stale sequence number and is
//     discarded by the receiver at zero protocol cost (idempotence);
//   - a reordered message is held in the receiver's resequencing buffer
//     until the gap fills; in virtual time the hold resolves within the
//     same exchange, so only the event is counted.
//
// Wrapping the Network interface covers every protocol charge site —
// stache fetches, LCM flushes and merges, invalidations, upgrades —
// without touching protocol code.  Barriers ride the reliable control
// network and pass through unclassified, as does Timeout (it prices an
// exchange the fault injector already declared lost; reclassifying it
// would double-inject).
type reliableNet struct {
	inner net.Network
	f     *fault.Injector

	mu      sync.Mutex
	sendSeq []uint64 // per sender: last sequence number issued
	recvSeq []uint64 // per sender: highest sequence delivered in order
}

func newReliableNet(inner net.Network, f *fault.Injector, p int) *reliableNet {
	return &reliableNet{
		inner:   inner,
		f:       f,
		sendSeq: make([]uint64, p),
		recvSeq: make([]uint64, p),
	}
}

// AttachLoss attaches a seeded delivery-fault model to the machine's
// network and interposes the retransmission layer.  Call after any
// SetNetwork and before Run.  The retransmission layer reuses the fault
// injector's timeout/backoff/budget discipline; a machine without
// AttachFaults gets a zero-plan injector (defaults only, injecting
// nothing itself).
func (m *Machine) AttachLoss(cfg net.LossConfig) *net.Loss {
	if m.frozen {
		panic("tempest: AttachLoss after Freeze")
	}
	if m.Fault == nil {
		m.AttachFaults(fault.Plan{})
	}
	l := net.NewLoss(cfg, m.P)
	m.Net.SetLoss(l)
	m.Net = newReliableNet(m.Net, m.Fault, m.P)
	m.Loss = l
	return l
}

// nextSeq issues the sequence number for src's next message.  Re-sends
// of a dropped message reuse its number.
func (r *reliableNet) nextSeq(src int) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sendSeq[src]++
	return r.sendSeq[src]
}

// delivered records the arrival of message seq from src, counting
// duplicate discards and resequencing holds into c.
func (r *reliableNet) delivered(src int, seq uint64, d net.Delivery, c *net.Counters) {
	r.mu.Lock()
	defer r.mu.Unlock()
	switch d {
	case net.Duplicated:
		// The second copy carries seq <= recvSeq and is discarded.
		c.DupDelivered++
	case net.Reordered:
		c.ReorderHeld++
	}
	if seq > r.recvSeq[src] {
		r.recvSeq[src] = seq
	}
}

// exchange runs one message exchange from src under the loss model:
// dropped sends are retried with timeout + backoff until delivered or the
// retry budget runs out; the surviving exchange is priced by price at the
// virtual time it finally happens.
func (r *reliableNet) exchange(src, dst int, now int64, c *net.Counters, price func(now int64) int64) int64 {
	seq := r.nextSeq(src)
	var waste int64
	for attempt := 1; ; attempt++ {
		d := r.inner.Deliver(src, dst)
		if d == net.Dropped {
			if attempt > r.f.RetryBudget() {
				panic(&fault.RetryExhaustedError{
					Node: src, Op: "retransmission", Attempts: attempt,
				})
			}
			backoff := r.f.Backoff(attempt)
			lost := r.inner.Timeout(src, dst, now+waste, c) + backoff
			waste += lost
			c.Retransmits++
			c.RetransCycles += lost
			continue
		}
		r.delivered(src, seq, d, c)
		return waste + price(now+waste)
	}
}

// Name implements net.Network.
func (r *reliableNet) Name() string { return r.inner.Name() }

// RoundTrip implements net.Network with retransmission.
func (r *reliableNet) RoundTrip(src, dst int, payload int64, now int64, c *net.Counters) int64 {
	return r.exchange(src, dst, now, c, func(t int64) int64 {
		return r.inner.RoundTrip(src, dst, payload, t, c)
	})
}

// Timeout passes through: it prices an exchange the fault injector
// already declared lost, so the loss model must not reclassify it.
func (r *reliableNet) Timeout(src, dst int, now int64, c *net.Counters) int64 {
	return r.inner.Timeout(src, dst, now, c)
}

// Forward implements net.Network with retransmission.
func (r *reliableNet) Forward(src, dst int, now int64, c *net.Counters) int64 {
	return r.exchange(src, dst, now, c, func(t int64) int64 {
		return r.inner.Forward(src, dst, t, c)
	})
}

// Upgrade implements net.Network with retransmission.
func (r *reliableNet) Upgrade(src, dst int, now int64, c *net.Counters) int64 {
	return r.exchange(src, dst, now, c, func(t int64) int64 {
		return r.inner.Upgrade(src, dst, t, c)
	})
}

// Invalidate implements net.Network with retransmission.
func (r *reliableNet) Invalidate(src, dst int, now int64, c *net.Counters) int64 {
	return r.exchange(src, dst, now, c, func(t int64) int64 {
		return r.inner.Invalidate(src, dst, t, c)
	})
}

// Flush implements net.Network with retransmission.  Flushes are fire-
// and-forget at the protocol level, but the reliable layer still acks
// them (a lost writeback would lose data), so a dropped flush costs the
// sender the same timeout-and-retry discipline.
func (r *reliableNet) Flush(src, dst int, payload int64, now int64, c *net.Counters) int64 {
	return r.exchange(src, dst, now, c, func(t int64) int64 {
		return r.inner.Flush(src, dst, payload, t, c)
	})
}

// Barrier rides the dedicated control network, which stays reliable.
func (r *reliableNet) Barrier(node int, c *net.Counters) { r.inner.Barrier(node, c) }

// LinkStats implements net.Network.
func (r *reliableNet) LinkStats() net.LinkStats { return r.inner.LinkStats() }

// SetLoss forwards to the wrapped model.
func (r *reliableNet) SetLoss(l *net.Loss) { r.inner.SetLoss(l) }

// Deliver reports what the layer guarantees: everything above it is
// delivered exactly once, in order.
func (r *reliableNet) Deliver(src, dst int) net.Delivery { return net.Delivered }

// MinLatency reports no lookahead: with delivery faults armed a message's
// charge can be restructured by timeouts and retransmissions, so the layer
// cannot promise any positive latency floor.  A zero window forces the
// scheduler to stay serial (see internal/sched).
func (r *reliableNet) MinLatency() int64 { return 0 }
