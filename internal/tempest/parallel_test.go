package tempest

import (
	"fmt"
	"testing"

	"lcm/internal/cost"
	"lcm/internal/fault"
	"lcm/internal/memsys"
	"lcm/internal/net"
	"lcm/internal/sched"
)

// TestParWorkersForcing pins the serial-forcing matrix: every
// configuration that cannot prove a conservative lookahead window must
// fall back to the serial token, silently and completely.  The loss case
// is the "window collapses to zero" satellite: an armed unreliable
// network reports MinLatency 0 through reliableNet, because a dropped
// message means a remote operation can charge the sender nothing before
// the retransmission machinery runs.
func TestParWorkersForcing(t *testing.T) {
	base := func() *Machine {
		m := New(8, 32, cost.Default())
		m.DetSched = true
		m.Par = 4
		return m
	}
	cases := []struct {
		name string
		prep func(m *Machine)
		want int
	}{
		{"default", func(m *Machine) {}, 4},
		{"serial when Par=0", func(m *Machine) { m.Par = 0 }, 1},
		{"serial when Par=1", func(m *Machine) { m.Par = 1 }, 1},
		{"capped at P", func(m *Machine) { m.Par = 100 }, 8},
		{"loss collapses the window", func(m *Machine) { m.AttachLoss(net.LossConfig{Seed: 1, DropPerMil: 5}) }, 1},
		{"fault injection forces serial", func(m *Machine) { m.AttachFaults(fault.Plan{Seed: 1, CorruptPerMil: 5}) }, 1},
		{"recovery forces serial", func(m *Machine) { m.Recovery = true }, 1},
		{"sched hook forces serial", func(m *Machine) { m.SchedHook = func(*sched.Scheduler) {} }, 1},
		{"zero-cost net forces serial", nil, 1}, // built below: MinLatency 0
	}
	for _, tc := range cases {
		var m *Machine
		if tc.prep != nil {
			m = base()
			tc.prep(m)
		} else {
			m = New(8, 32, cost.Zero())
			m.DetSched = true
			m.Par = 4
		}
		if got := m.parWorkers(); got != tc.want {
			t.Errorf("%s: parWorkers() = %d, want %d", tc.name, got, tc.want)
		}
	}
}

// TestParallelBarrierClockIdentity runs a skewed compute/barrier loop —
// each round a different node is the straggler, so admission windows
// open and slam shut exactly at barrier boundaries — serially and
// time-parallel, and requires every node's final clock to match.  This
// is the window-boundary case: a barrier wake is a SetReadyIntent whose
// clock lands exactly at the barrier-release cycle shared by all nodes,
// and the compute floor after it must keep later admission honest.
func TestParallelBarrierClockIdentity(t *testing.T) {
	const rounds = 6
	run := func(par int) []int64 {
		m, r := newTestMachine(t, 4, 256)
		m.DetSched = true
		m.Par = par
		m.Run(func(n *Node) {
			for round := 0; round < rounds; round++ {
				// Straggler rotates; compute spread keeps clocks unequal
				// going into the barrier.
				n.Compute(int64(1 + (n.ID+round)%4*37))
				a := r.Base + memsys.Addr(((n.ID+round)%4)*64)
				n.WriteF32(a, float32(n.ID*rounds+round))
				_ = n.ReadF32(a)
				n.Barrier()
			}
		})
		clocks := make([]int64, m.P)
		for i, nd := range m.Nodes {
			clocks[i] = nd.Clock()
		}
		return clocks
	}
	serial := run(0)
	parallel := run(4)
	if fmt.Sprint(serial) != fmt.Sprint(parallel) {
		t.Fatalf("final clocks diverged:\nserial   %v\nparallel %v", serial, parallel)
	}
	// Every node must have passed all barriers at the same release cycle,
	// so all clocks are equal after the final barrier.
	for i := 1; i < len(serial); i++ {
		if serial[i] != serial[0] {
			t.Fatalf("post-barrier clocks unequal: %v", serial)
		}
	}
}
