package tempest

import (
	"sync"
	"testing"

	"lcm/internal/cost"
	"lcm/internal/memsys"
)

// fakeProtocol satisfies every fault by installing the home image
// read-write, with no coherence.  It lets the tests below exercise the
// machine, accessors, clocks and barriers in isolation.
type fakeProtocol struct {
	m          *Machine
	mu         sync.Mutex
	readFaults int
	writeFault int
}

func (f *fakeProtocol) Name() string      { return "fake" }
func (f *fakeProtocol) Attach(m *Machine) { f.m = m }

func (f *fakeProtocol) ReadFault(n *Node, b memsys.BlockID) *Line {
	f.m.Lock(b)
	defer f.m.Unlock(b)
	f.mu.Lock()
	f.readFaults++
	f.mu.Unlock()
	n.Ctr.Misses++
	return n.Install(b, f.m.AS.HomeData(b), TagReadWrite)
}

func (f *fakeProtocol) WriteFault(n *Node, b memsys.BlockID) *Line {
	f.m.Lock(b)
	defer f.m.Unlock(b)
	f.mu.Lock()
	f.writeFault++
	f.mu.Unlock()
	n.Ctr.Misses++
	return n.Install(b, f.m.AS.HomeData(b), TagReadWrite)
}

func (f *fakeProtocol) MarkModification(n *Node, a memsys.Addr) {}
func (f *fakeProtocol) Evict(n *Node, b memsys.BlockID) bool {
	if l := n.Line(b); l != nil {
		l.SetTag(TagInvalid)
	}
	return true
}
func (f *fakeProtocol) FlushCopies(n *Node)     {}
func (f *fakeProtocol) ReconcileCopies(n *Node) { n.Barrier() }

func newTestMachine(t *testing.T, p int, words uint64) (*Machine, *memsys.Region) {
	t.Helper()
	m := New(p, 32, cost.Uniform(1))
	r := m.AS.Alloc("data", words*4, memsys.KindCoherent, memsys.Interleaved)
	m.SetProtocol(&fakeProtocol{})
	m.Freeze()
	return m, r
}

func TestAccessorsRoundTrip(t *testing.T) {
	m, r := newTestMachine(t, 1, 64)
	m.Run(func(n *Node) {
		n.WriteF32(r.Base, 1.5)
		n.WriteF64(r.Base+8, -2.25)
		n.WriteI32(r.Base+16, -7)
		n.WriteI64(r.Base+24, 1<<40)
		n.WriteU32(r.Base+40, 0xDEADBEEF)
		n.WriteU64(r.Base+48, 0xCAFEBABE12345678)
		if v := n.ReadF32(r.Base); v != 1.5 {
			t.Errorf("f32 = %v", v)
		}
		if v := n.ReadF64(r.Base + 8); v != -2.25 {
			t.Errorf("f64 = %v", v)
		}
		if v := n.ReadI32(r.Base + 16); v != -7 {
			t.Errorf("i32 = %v", v)
		}
		if v := n.ReadI64(r.Base + 24); v != 1<<40 {
			t.Errorf("i64 = %v", v)
		}
		if v := n.ReadU32(r.Base + 40); v != 0xDEADBEEF {
			t.Errorf("u32 = %#x", v)
		}
		if v := n.ReadU64(r.Base + 48); v != 0xCAFEBABE12345678 {
			t.Errorf("u64 = %#x", v)
		}
	})
}

func TestStraddlePanics(t *testing.T) {
	m, r := newTestMachine(t, 1, 64)
	m.Run(func(n *Node) {
		defer func() {
			if recover() == nil {
				t.Error("expected straddle panic")
			}
		}()
		n.ReadF64(r.Base + 28) // 8 bytes at offset 28 of a 32-byte block
	})
}

func TestFaultOnlyOnInvalid(t *testing.T) {
	m, r := newTestMachine(t, 1, 64)
	fp := m.Protocol().(*fakeProtocol)
	m.Run(func(n *Node) {
		n.ReadF32(r.Base)     // fault
		n.ReadF32(r.Base + 4) // same block: hit
		n.WriteF32(r.Base, 1) // tag is RW: hit
		n.ReadF32(r.Base + 32)
	})
	if fp.readFaults != 2 || fp.writeFault != 0 {
		t.Fatalf("faults = %d read, %d write; want 2, 0", fp.readFaults, fp.writeFault)
	}
	c := m.TotalCounters()
	if c.Hits != 4 || c.Misses != 2 {
		t.Fatalf("hits=%d misses=%d, want 4, 2", c.Hits, c.Misses)
	}
}

// DropCopy discards a read-only copy through the protocol's eviction
// path (so a real directory forgets the sharer) and leaves private
// copies alone.
func TestDropCopyEvictsReadOnlyOnly(t *testing.T) {
	m, r := newTestMachine(t, 1, 64)
	fp := m.Protocol().(*fakeProtocol)
	m.Run(func(n *Node) {
		b := m.AS.Block(r.Base)
		n.ReadF32(r.Base) // fault in (fake installs RW)

		// A private (writable) copy must survive a DropCopy.
		n.DropCopy(r.Base)
		if l := n.Line(b); l == nil || l.Tag() != TagReadWrite {
			t.Errorf("DropCopy touched a private copy")
		}

		// Demote to read-only: now DropCopy must evict, and the next
		// read must re-fault.
		n.Line(b).SetTag(TagReadOnly)
		n.DropCopy(r.Base)
		if l := n.Line(b); l != nil && l.Tag() != TagInvalid {
			t.Errorf("dropped copy still holds tag %v", l.Tag())
		}
		before := fp.readFaults
		n.ReadF32(r.Base)
		if fp.readFaults != before+1 {
			t.Errorf("read after DropCopy did not re-fault")
		}
	})
}

func TestClockChargesAndBarrierMax(t *testing.T) {
	m, _ := newTestMachine(t, 4, 64)
	m.Run(func(n *Node) {
		n.Charge(int64(100 * (n.ID + 1)))
		n.Barrier()
		// All nodes resume at max(100..400) + barrier cost (1).
		if got := n.Clock(); got != 401 {
			t.Errorf("node %d clock = %d, want 401", n.ID, got)
		}
	})
	if got := m.MaxClock(); got != 401 {
		t.Fatalf("max clock = %d, want 401", got)
	}
}

func TestChargeRemoteFoldsAtBarrier(t *testing.T) {
	m, _ := newTestMachine(t, 2, 64)
	m.Run(func(n *Node) {
		if n.ID == 0 {
			m.Nodes[1].ChargeRemote(500)
		}
		n.Barrier()
		if n.ID == 1 && n.Clock() < 500 {
			t.Errorf("stolen cycles not folded: clock = %d", n.Clock())
		}
	})
}

func TestBarrierReuse(t *testing.T) {
	m, _ := newTestMachine(t, 8, 64)
	m.Run(func(n *Node) {
		for i := 0; i < 100; i++ {
			n.Charge(1)
			n.Barrier()
		}
	})
	// 100 rounds x (1 compute + 1 barrier cost) lockstep.
	for _, n := range m.Nodes {
		if n.Clock() != 200 {
			t.Fatalf("node %d clock = %d, want 200", n.ID, n.Clock())
		}
		if n.Ctr.Barriers != 100 {
			t.Fatalf("node %d barriers = %d", n.ID, n.Ctr.Barriers)
		}
	}
}

func TestRunIsSPMD(t *testing.T) {
	m, r := newTestMachine(t, 4, 64)
	// Each node writes one word; afterwards all must be in home... no
	// coherence in fakeProtocol, but each node's own line holds it.
	m.Run(func(n *Node) {
		n.WriteI32(r.Base+memsys.Addr(n.ID*32), int32(n.ID+1))
	})
	for i, n := range m.Nodes {
		b := m.AS.Block(r.Base + memsys.Addr(i*32))
		l := n.Line(b)
		if l == nil || l.Tag() != TagReadWrite {
			t.Fatalf("node %d missing its line", i)
		}
	}
}

func TestInstallReusesLine(t *testing.T) {
	m, r := newTestMachine(t, 1, 64)
	b := m.AS.Block(r.Base)
	n := m.Nodes[0]
	m.Lock(b)
	l1 := n.Install(b, m.AS.HomeData(b), TagReadOnly)
	l2 := n.Install(b, m.AS.HomeData(b), TagReadWrite)
	m.Unlock(b)
	if l1 != l2 {
		t.Fatal("Install allocated a second line for the same block")
	}
	if l2.Tag() != TagReadWrite {
		t.Fatal("tag not updated")
	}
}

func TestFreezeGuards(t *testing.T) {
	m := New(2, 32, cost.Zero())
	m.AS.Alloc("a", 32, memsys.KindCoherent, memsys.Interleaved)
	mustPanic(t, func() { m.Freeze() }) // no protocol
	m.SetProtocol(&fakeProtocol{})
	mustPanic(t, func() { m.Run(func(*Node) {}) }) // not frozen
	m.Freeze()
	mustPanic(t, func() { m.Freeze() })                     // double freeze
	mustPanic(t, func() { m.SetProtocol(&fakeProtocol{}) }) // after freeze
	if !m.Frozen() {
		t.Fatal("not frozen")
	}
}

func TestSimLockSerializesVirtualTime(t *testing.T) {
	m, _ := newTestMachine(t, 4, 64)
	var lk SimLock
	m.Run(func(n *Node) {
		lk.Acquire(n)
		n.Charge(10) // critical section
		lk.Release(n)
	})
	// Virtual time must show full serialization: the last node to hold
	// the lock ends at >= 4 * (acquire + 10).
	var max int64
	for _, n := range m.Nodes {
		if c := n.Clock(); c > max {
			max = c
		}
	}
	if max < 4*10 {
		t.Fatalf("lock did not serialize virtual time: max clock %d", max)
	}
}

func TestTagNames(t *testing.T) {
	for tag, want := range map[Tag]string{
		TagInvalid: "inv", TagReadOnly: "ro", TagReadWrite: "rw", TagPrivate: "priv",
	} {
		if got := TagName(tag); got != want {
			t.Fatalf("TagName(%d) = %q", tag, got)
		}
	}
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}
