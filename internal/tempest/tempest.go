// Package tempest implements the simulated parallel machine that plays the
// role of the paper's CM-5 + Blizzard-E substrate.
//
// The machine is a collection of autonomous nodes connected by a
// point-to-point network.  Each node runs its program on its own goroutine
// and owns a virtual cycle clock.  Every program load and store consults
// the node's fine-grain access-control tag for the addressed block —
// exactly the control point Blizzard-E instruments — and a disallowed
// access invokes the active coherence protocol's user-level fault handler.
// Protocol handlers run synchronously in the faulting node's goroutine
// under the block's home lock, charging the requester the modelled network
// latency and the home node a handler-occupancy charge; this mirrors the
// execution-driven simulation methodology of the Wisconsin Wind Tunnel
// project from which the paper comes.
//
// The package deliberately exposes the Tempest control points and nothing
// more: access-control tags, block data transfer, fault-handler dispatch,
// and barriers.  Coherence policy lives entirely in user-level protocol
// packages (internal/stache, internal/core).
package tempest

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"lcm/internal/cost"
	"lcm/internal/fault"
	"lcm/internal/memsys"
	"lcm/internal/net"
	"lcm/internal/sched"
	"lcm/internal/stats"
	"lcm/internal/trace"
)

// Tag is a fine-grain access-control tag.  Order matters: a load is legal
// when tag >= TagReadOnly, a store when tag >= TagReadWrite.
type Tag = uint32

const (
	// TagInvalid: no access; any reference faults.
	TagInvalid Tag = iota
	// TagReadOnly: loads succeed, stores fault.
	TagReadOnly
	// TagReadWrite: exclusive coherent copy; loads and stores succeed.
	TagReadWrite
	// TagPrivate: LCM private-modified copy; loads and stores succeed but
	// the contents are intentionally inconsistent with global memory
	// until reconciliation.
	TagPrivate
)

// TagName returns a short human-readable tag name for traces and tests.
func TagName(t Tag) string {
	switch t {
	case TagInvalid:
		return "inv"
	case TagReadOnly:
		return "ro"
	case TagReadWrite:
		return "rw"
	case TagPrivate:
		return "priv"
	default:
		return fmt.Sprintf("tag(%d)", t)
	}
}

// Line is a node's cached copy of one block.  The tag is atomic because
// remote protocol handlers revoke access concurrently with the owner's tag
// checks; everything else is mutated only by the owning node's goroutine or
// under the block's lock (see the data-movement rules in DESIGN.md).
type Line struct {
	tag atomic.Uint32

	// Data is the cached copy, blockSize bytes.
	Data []byte

	// Clean is the node-local clean copy kept by LCM-mcc (nil when none).
	Clean []byte

	// Gen is protocol scratch: LCM stores the reconcile-phase generation
	// in which the line was installed or marked.
	Gen uint32

	// CleanGen is the reconcile-phase generation in which Clean was
	// captured; a clean copy is only valid within its own phase.
	CleanGen uint32

	// Marked records that the line is on the node's marked-blocks list
	// for the current invocation (owner goroutine only).
	Marked bool

	// inFIFO records residency-queue membership for capacity-limited
	// machines (owner goroutine only).
	inFIFO bool

	// WMask records which 32-bit words of a private copy were stored to
	// since the last mark, at store granularity (owner goroutine only).
	// Maintained only for conflict-checked regions, where reconciliation
	// must see value-equal stores as modifications (the paper's footnote
	// 2 store-trapping scheme).
	WMask uint64

	// block is the line's block ID, fixed at first install (lines map
	// 1:1 to (node, block) for the machine's lifetime).  It lets audits
	// walk a node's installed lines without scanning the full table.
	block memsys.BlockID
}

// Block returns the block the line caches.
func (l *Line) Block() memsys.BlockID { return l.block }

// Tag returns the line's current access tag.
func (l *Line) Tag() Tag { return l.tag.Load() }

// SetTag stores a new access tag.  Callers must either be the owning node's
// goroutine or hold the block's lock.
func (l *Line) SetTag(t Tag) { l.tag.Store(t) }

// Protocol is a user-level coherence protocol: the policy code that Tempest
// dispatches to on access faults and memory-system directives.  Fault
// handlers run in the faulting node's goroutine and must return a line with
// a tag permitting the faulted access.
type Protocol interface {
	// Name identifies the protocol in reports ("stache", "lcm-mcc", ...).
	Name() string

	// Attach is called once at Machine.Freeze so the protocol can size
	// its per-block directory state.
	Attach(m *Machine)

	// ReadFault handles a load with no readable copy.
	ReadFault(n *Node, b memsys.BlockID) *Line

	// WriteFault handles a store with no writable copy.
	WriteFault(n *Node, b memsys.BlockID) *Line

	// MarkModification is the LCM directive: create an inconsistent
	// writable copy of the block containing addr (Section 5.1).
	// Coherent protocols treat it as an ordinary write preparation.
	MarkModification(n *Node, addr memsys.Addr)

	// FlushCopies is the LCM directive: return this node's modified
	// copies to their homes for (partial) reconciliation, so the next
	// invocation cannot observe them.
	FlushCopies(n *Node)

	// ReconcileCopies is the LCM directive: a global barrier after which
	// memory is coherent again.  Every node must call it.
	ReconcileCopies(n *Node)

	// Evict asks the protocol to drop node n's copy of block b to make
	// room (capacity-limited configurations).  It returns false when the
	// copy cannot be discarded — LCM refuses to evict private-modified
	// blocks, whose only copy of the modifications lives in the cache.
	Evict(n *Node, b memsys.BlockID) bool
}

// Machine is the simulated multicomputer.
type Machine struct {
	P     int
	AS    *memsys.AddressSpace
	Cost  cost.Model
	Nodes []*Node

	// Shared holds machine-wide protocol counters.
	Shared stats.Shared

	// Trace, when non-nil, records protocol events (see internal/trace).
	// Attach with AttachTrace before Run.
	Trace *trace.Buffer

	// CacheLines bounds each node's resident blocks (0 = unbounded, the
	// default: the paper's Stache backs caching with all of local
	// memory).  When set, a fault on a full cache first evicts the
	// oldest resident block FIFO-style.  Set before Run.
	CacheLines int

	// Fault, when non-nil, injects deterministic faults at the
	// data-movement boundary (see internal/fault and faults.go).
	// Attach with AttachFaults before Run.
	Fault *fault.Injector

	// Net prices and accounts every protocol message (see internal/net).
	// New installs the uniform model, which reproduces the historical
	// flat charges bit-exactly; SetNetwork swaps in a topology-aware
	// model before Run.  AttachLoss wraps whichever model is installed
	// with the retransmission layer (see retrans.go).
	Net net.Network

	// Loss is the delivery-fault model attached by AttachLoss, nil on
	// reliable runs.
	Loss *net.Loss

	// Recovery enables crash recovery: every node snapshots its protocol
	// state at each barrier epoch (see checkpoint.go), injected kills
	// under a KillRecover plan restart from the last checkpoint instead
	// of aborting the machine, and a node killed past its restart budget
	// hands its home regions to a live peer (degraded mode).  All
	// recovery charges are gated on this flag, so fault-free runs stay
	// bit-identical to historical results.  Requires DetSched.  Set
	// before Run.
	Recovery bool

	// Watchdog, when positive, bounds the wall-clock duration of any
	// single barrier round: a round that stalls past the bound is
	// aborted with per-node diagnostics instead of deadlocking, and
	// RunErr bounds its post-failure wait for straggler nodes.  Zero
	// (the default) disables all wall-clock timers.  Set before Run.
	Watchdog time.Duration

	// ScalarAccess disables the bulk span transfer paths: every
	// ReadSpan*/WriteSpan*/CopySpan call decomposes into the per-element
	// scalar accessors instead.  Accounting is identical either way (the
	// span engine's contract); the flag exists so differential tests can
	// run both engines over the same workload and assert it.  Set before
	// Run.
	ScalarAccess bool

	// DetSched enables the deterministic virtual-time scheduler (see
	// internal/sched): node goroutines hand a cooperative token around at
	// synchronization points instead of free-running, so the whole
	// interleaving — and with it simulated cycles and order-dependent
	// fault counts at P>1 — is a pure function of (workload, P,
	// SchedSeed).  Set before Run.  Off by default at this level so raw
	// tempest tests exercise the free-running engine; the workloads layer
	// turns it on by default.
	DetSched bool

	// SchedSeed selects the deterministic schedule's tie-break hash when
	// DetSched is set (0 = canonical cycle/node order).
	SchedSeed uint64

	// Par, when > 1, enables time-parallel execution under DetSched: up
	// to Par nodes run their segments on concurrent OS threads whenever
	// the interconnect model's minimum message latency (net.MinLatency)
	// proves the serial grant order cannot observe the difference.
	// Every observable — simulated cycles included — stays bit-identical
	// to the serial token scheduler.  Runs that cannot make that proof
	// fall back to serial silently: free-running, checker hooks, fault
	// injection, delivery loss, recovery replay, and models with no
	// positive latency floor.  Set before Run.
	Par int

	// SchedHook, when non-nil, is invoked on each run's fresh scheduler
	// before it starts, so the model checker (internal/check) can install
	// its chooser, observer, and footprint recording.
	SchedHook func(*sched.Scheduler)

	protocol Protocol
	locks    []sync.Mutex
	bar      *Barrier
	frozen   bool
	cfgErr   error
	schedder *sched.Scheduler

	// laLocal/laRemote are the active run's admission lower bounds for
	// locally- and remotely-homed fault segments (see parallel.go); set
	// by RunErr when parallel mode engages, read by SchedYieldFault.
	laLocal  int64
	laRemote int64

	// trackWrites is set at Freeze when any region requests conflict
	// checking; it gates the per-store word recording.
	trackWrites bool
}

// New creates a machine with p nodes and the given block size and cost
// model.  Allocate regions through AS, install a protocol with SetProtocol,
// then call Freeze before Run.
func New(p int, blockSize uint32, c cost.Model) *Machine {
	m := &Machine{
		P:    p,
		AS:   memsys.NewAddressSpace(p, blockSize),
		Cost: c,
		Net:  net.NewUniform(c, 0),
		bar:  NewBarrier(p),
	}
	m.Nodes = make([]*Node, p)
	for i := range m.Nodes {
		m.Nodes[i] = &Node{ID: i, M: m}
	}
	// Fold every node's stolen handler cycles into the barrier maximum at
	// the instant the last participant arrives.  At that point all P nodes
	// are inside WaitNode — the parked ones under the barrier mutex, so no
	// ChargeRemote can be in flight — which makes the fold race-free and
	// the barrier result independent of host scheduling (the historical
	// FoldStolen wobble: a charge could land before or after its victim's
	// pre-barrier fold, moving the max by the stolen amount).
	m.bar.foldClocks = func() int64 {
		var max int64
		for _, nd := range m.Nodes {
			if c := nd.clock + nd.stolen.Swap(0); c > max {
				max = c
			}
		}
		return max
	}
	return m
}

// SetProtocol installs the coherence protocol.  Must precede Freeze.
func (m *Machine) SetProtocol(p Protocol) {
	if m.frozen {
		panic("tempest: SetProtocol after Freeze")
	}
	m.protocol = p
}

// Protocol returns the installed protocol.
func (m *Machine) Protocol() Protocol { return m.protocol }

// SetNetwork replaces the interconnect model.  Must precede Run.
func (m *Machine) SetNetwork(nw net.Network) {
	if nw != nil {
		m.Net = nw
	}
}

// RecordConfigError records a machine-configuration error caused by bad
// user input (an invalid policy, a bad allocation request).  The first
// recorded error is surfaced by FreezeErr and RunErr, so library layers
// can report bad configuration without panicking mid-allocation.
func (m *Machine) RecordConfigError(err error) {
	if m.cfgErr == nil && err != nil {
		m.cfgErr = err
	}
}

// Freeze finalizes the address space, sizes per-node line tables and block
// locks, and attaches the protocol.  Must be called exactly once, after all
// allocation and before Run.  It panics on recorded configuration errors;
// FreezeErr reports them as an error instead.
func (m *Machine) Freeze() {
	if err := m.FreezeErr(); err != nil {
		panic(err)
	}
}

// FreezeErr is Freeze with configuration errors returned rather than
// panicked: bad user-suppliable input (policies, allocation sizes)
// surfaces here.  Misuse of the API itself (double freeze, no protocol)
// still panics.
func (m *Machine) FreezeErr() error {
	if m.frozen {
		panic("tempest: double Freeze")
	}
	if m.protocol == nil {
		panic("tempest: Freeze without a protocol")
	}
	if m.cfgErr != nil {
		return m.cfgErr
	}
	m.frozen = true
	m.AS.Freeze()
	n := m.AS.NumBlocks()
	m.locks = make([]sync.Mutex, n)
	for _, nd := range m.Nodes {
		nd.lines = make([]*Line, n)
		nd.spanBuf = make([]byte, m.AS.BlockSize)
	}
	for _, r := range m.AS.Regions() {
		if r.ConflictCheck {
			m.trackWrites = true
		}
	}
	m.protocol.Attach(m)
	return nil
}

// Frozen reports whether Freeze has run.
func (m *Machine) Frozen() bool { return m.frozen }

// Lock acquires the home/directory lock of block b.  All protocol state
// transitions and cross-node data movement for b happen under this lock.
// Under the deterministic scheduler the lock is uncontended (only the
// token holder runs simulator code) and doubles as the footprint the
// model checker records for sleep-set pruning.
func (m *Machine) Lock(b memsys.BlockID) {
	if s := m.schedder; s != nil {
		s.NoteLock(uint32(b))
	}
	m.locks[b].Lock()
}

// Unlock releases block b's lock.
func (m *Machine) Unlock(b memsys.BlockID) { m.locks[b].Unlock() }

// Barrier returns the machine's global barrier.
func (m *Machine) Barrier() *Barrier { return m.bar }

// Sched returns the current (or most recent) run's deterministic
// scheduler, nil when DetSched is off or no run has started.
func (m *Machine) Sched() *sched.Scheduler { return m.schedder }

// AttachTrace enables event tracing with the given per-node ring capacity.
func (m *Machine) AttachTrace(capacity int) *trace.Buffer {
	m.Trace = trace.New(m.P, capacity)
	return m.Trace
}

// MaxClock returns the maximum virtual clock across nodes.  Meaningful only
// while no node is running.
func (m *Machine) MaxClock() int64 {
	var max int64
	for _, nd := range m.Nodes {
		if c := nd.Clock(); c > max {
			max = c
		}
	}
	return max
}

// TotalCounters sums all per-node counters.  Meaningful only while no node
// is running.
func (m *Machine) TotalCounters() stats.NodeCounters {
	var t stats.NodeCounters
	for _, nd := range m.Nodes {
		t.Add(&nd.Ctr)
	}
	return t
}

// Node is one processing element: a processor, its fine-grain tags and
// cached lines, its local-memory cache, and its virtual clock.
type Node struct {
	ID int
	M  *Machine

	// Ctr is the node's event record (owner goroutine only).
	Ctr stats.NodeCounters

	// PD is per-node protocol state, owned by the active protocol.
	PD any

	clock  int64
	stolen atomic.Int64

	lines []*Line

	// mruBlock/mruLine cache the most recently accessed (block, line)
	// pair so consecutive same-block accesses skip the line-table load.
	// Owner goroutine only; the cached line's atomic tag is still checked
	// on every access, so concurrent remote revocations stay correct (see
	// "Fast-path invariants" in DESIGN.md).  mruLine == nil means empty.
	mruBlock memsys.BlockID
	mruLine  *Line

	// fifo is the residency queue for capacity-limited machines, a
	// head-indexed ring: entries before fifoHead are dead.  The dead
	// prefix is compacted away periodically so the backing array stays
	// proportional to the live queue, not to the eviction history.
	fifo     []memsys.BlockID
	fifoHead int

	// spanBuf is a block-sized staging buffer for the span store path
	// (owner goroutine only), allocated at Freeze.
	spanBuf []byte

	// lineArena and dataArena back new lines in chunks (owner goroutine
	// only): a P-node run creates up to P×blocks lines, so first-touch
	// installs carve from these instead of paying two allocations per
	// block.  lineChunks retains every arena chunk in allocation order
	// so audits can walk installed lines densely (see InstalledLines).
	lineArena  []Line
	dataArena  []byte
	lineChunks [][]Line

	// ckpt is the node's last barrier-epoch checkpoint; degraded marks a
	// node whose home responsibility migrated to a peer.  Both owner
	// goroutine only; see checkpoint.go.
	ckpt     checkpoint
	degraded bool

	// pubClock is the node's published-clock slot in the time-parallel
	// scheduler (nil on serial runs).  The node stores a monotone lower
	// bound on its virtual clock there as charges accumulate, so the
	// admitter can release later candidates while this segment still
	// runs.  It publishes n.clock without the stolen component: stolen
	// only ever adds, so the store stays a valid lower bound.
	pubClock *atomic.Int64
}

// publish exports the node's clock to the parallel admitter.  No-op on
// serial runs (one nil check).
func (n *Node) publish() {
	if p := n.pubClock; p != nil {
		p.Store(n.clock)
		n.M.schedder.NotePublish(n.clock)
	}
}

// Clock returns the node's current virtual cycle count including handler
// cycles stolen by other nodes' requests.
func (n *Node) Clock() int64 { return n.clock + n.stolen.Load() }

// SchedYield is a deterministic-scheduler synchronization point: under
// DetSched the node offers the token at its current virtual time and does
// not proceed until the run queue grants it again.  Protocol handlers
// call it immediately before acquiring a block's home lock, so the order
// in which contending nodes enter a handler is decided by virtual time,
// not by the host's mutex arbitration.  No-op when DetSched is off.
// This plain form declares a fence (maximally conservative) intent; the
// protocol fault paths use the intent-carrying variants below so the
// time-parallel admitter can overlap provably-independent segments.
func (n *Node) SchedYield() {
	if s := n.M.schedder; s != nil {
		s.Yield(n.ID, n.Clock())
	}
}

// SchedYieldFault is the scheduling point at a fault-handler entry for
// block b: the next segment touches only b's protocol state, b's home,
// and this node's own clock, and charges at least the declared floor
// before its next scheduling point (local fill when b is homed here, the
// interconnect's minimum message latency otherwise — every post-yield
// path of every handler charges at least that; see PROTOCOLS.md).
func (n *Node) SchedYieldFault(b memsys.BlockID) {
	s := n.M.schedder
	if s == nil {
		return
	}
	home := n.M.AS.HomeOf(b)
	lb := n.M.laLocal
	if home != n.ID {
		lb = n.M.laRemote
	}
	s.YieldIntent(n.ID, n.Clock(), sched.Intent{Kind: sched.IntentFault, Block: uint32(b), Home: home, LB: lb})
}

// SchedYieldEvict is SchedYieldFault for eviction segments.  An eviction
// may find the copy already revoked and return chargeless, so it
// declares no charge floor (LB zero is always sound).
func (n *Node) SchedYieldEvict(b memsys.BlockID) {
	s := n.M.schedder
	if s == nil {
		return
	}
	s.YieldIntent(n.ID, n.Clock(), sched.Intent{Kind: sched.IntentFault, Block: uint32(b), Home: n.M.AS.HomeOf(b)})
}

// GrantKey returns the position of the node's current segment in the
// scheduler's grant sequence — a total order identical between serial
// and time-parallel runs.  Protocols key order-sensitive side lists
// (dirty lists, conflict logs) with it so a later stable sort replays
// insertions in serial order.  Zero without a scheduler.
func (n *Node) GrantKey() uint64 {
	if s := n.M.schedder; s != nil {
		return s.GrantKey(n.ID)
	}
	return 0
}

// Charge advances the node's clock by c cycles (owner goroutine only).
func (n *Node) Charge(c int64) {
	n.clock += c
	n.publish()
}

// ChargeRemote charges c cycles to another node's clock (handler occupancy
// stolen from the home processor).  Safe from any goroutine.
func (n *Node) ChargeRemote(c int64) { n.stolen.Add(c) }

// FoldStolen folds stolen handler cycles into the local clock.  Called at
// barriers and at the end of Run.
func (n *Node) FoldStolen() {
	n.clock += n.stolen.Swap(0)
	n.publish()
}

// Line returns the node's line for block b, or nil if none was ever
// installed.  The line's tag must be checked before using its data.
func (n *Node) Line(b memsys.BlockID) *Line { return n.lines[b] }

// Install makes the node's line for b hold a copy of src with the given
// tag, creating the line on first use.  Callers must hold b's lock (all
// installs race with cross-node reads of the line pointer, which also
// happen under the lock).  With a fault injector attached, the transfer
// is checksummed and corrupted arrivals are healed by bounded re-fetch
// (see deliverBlock).
func (n *Node) Install(b memsys.BlockID, src []byte, tag Tag) *Line {
	l := n.lines[b]
	if l == nil {
		l = n.newLine(b)
		n.lines[b] = l
	}
	copy(l.Data, src)
	if f := n.M.Fault; f != nil {
		n.deliverBlock(f, b, l, src)
	}
	l.SetTag(tag)
	if n.M.CacheLines > 0 && !l.inFIFO {
		l.inFIFO = true
		n.fifo = append(n.fifo, b)
	}
	return l
}

// lineArenaChunk is how many lines (and line-sized buffers) the node
// arenas grow by at a time.
const lineArenaChunk = 64

// newLine carves a fresh line with a zeroed block-sized data buffer from
// the node's arenas (owner goroutine only; install paths all run in the
// faulting node's goroutine).  The backing arrays are only ever resliced,
// never reallocated, so pointers into them stay valid for the machine's
// lifetime.
func (n *Node) newLine(b memsys.BlockID) *Line {
	if len(n.lineArena) == 0 {
		n.lineArena = make([]Line, lineArenaChunk)
		n.lineChunks = append(n.lineChunks, n.lineArena)
	}
	l := &n.lineArena[0]
	n.lineArena = n.lineArena[1:]
	l.Data = n.BlockBuf()
	l.block = b
	return l
}

// InstalledLines returns the node's line storage in allocation order:
// every line the node has ever installed appears in exactly one chunk,
// carrying its block ID (Line.Block).  Entries with nil Data are the
// unallocated tail of the last chunk.  For quiescent audits only — the
// caller must not run concurrently with the owner goroutine.
func (n *Node) InstalledLines() [][]Line { return n.lineChunks }

// BlockBuf returns a zeroed block-sized buffer carved from the node's
// data arena (owner goroutine only).  Protocols use it for per-line
// auxiliary images (e.g. LCM-mcc local clean copies) so those do not pay
// one allocation per line either.
func (n *Node) BlockBuf() []byte {
	bs := int(n.M.AS.BlockSize)
	if len(n.dataArena) < bs {
		n.dataArena = make([]byte, bs*lineArenaChunk)
	}
	buf := n.dataArena[:bs:bs]
	n.dataArena = n.dataArena[bs:]
	return buf
}

// fifoCompactMin is the dead-prefix length below which makeRoom does not
// bother compacting the residency ring.
const fifoCompactMin = 64

// fifoLen returns the live length of the residency queue.
func (n *Node) fifoLen() int { return len(n.fifo) - n.fifoHead }

// makeRoom evicts resident blocks FIFO-style until the cache is under
// capacity.  Called on the fault path before the protocol installs a new
// line; the caller holds no block lock.  Blocks the protocol refuses to
// evict (LCM private copies) are requeued.
//
// Pops advance fifoHead instead of re-slicing, and the dead prefix is
// copied away once it dominates the backing array: a plain
// `fifo = fifo[1:]` never releases the popped entries, so long
// capacity-limited runs would grow the array without bound.
func (n *Node) makeRoom() {
	capLines := n.M.CacheLines
	if capLines <= 0 {
		return
	}
	attempts := n.fifoLen()
	for n.fifoLen() >= capLines && attempts > 0 {
		attempts--
		b := n.fifo[n.fifoHead]
		n.fifoHead++
		if n.fifoHead >= fifoCompactMin && n.fifoHead*2 >= len(n.fifo) {
			n.fifo = n.fifo[:copy(n.fifo, n.fifo[n.fifoHead:])]
			n.fifoHead = 0
		}
		l := n.lines[b]
		if l == nil {
			continue
		}
		l.inFIFO = false
		if l.Tag() == TagInvalid {
			continue // already revoked remotely; the slot is free
		}
		if !n.M.protocol.Evict(n, b) {
			l.inFIFO = true
			n.fifo = append(n.fifo, b) // unevictable: requeue
			continue
		}
		if n.mruLine != nil && n.mruBlock == b {
			n.mruLine = nil
		}
		n.Ctr.Evictions++
	}
}

// Barrier joins the global barrier: the node's clock is advanced to the
// maximum across nodes plus the barrier cost.  If the barrier is aborted
// while this node waits — a sibling died, or the watchdog detected a
// stall — the node panics with the distinguished abort error, which
// RunErr recovers into a structured collateral failure.
func (n *Node) Barrier() {
	// A plan may kill the node at the epoch boundary, before its arrival
	// resolves the barrier: crash-at-barrier restarts from the *previous*
	// epoch's checkpoint.
	if f := n.M.Fault; f != nil && f.BarrierArrival(n.ID) {
		n.killed(f, f.Plan().KillAtBarrier)
	}
	n.M.Net.Barrier(n.ID, &n.Ctr.Net)
	n.FoldStolen()
	c, err := n.M.bar.WaitNode(n.ID, n.clock)
	if err != nil {
		panic(err)
	}
	n.clock = c + n.M.Cost.Barrier
	n.publish()
	n.Ctr.Barriers++
	if n.M.Recovery {
		// The epoch boundary is where the consistency contract makes
		// node state meaningful, so it is the checkpoint point.
		n.takeCheckpoint()
	}
	if t := n.M.Trace; t != nil {
		t.Record(n.ID, n.clock, trace.BarrierEvt, 0, 0)
	}
}

// DropCopy discards this node's read-only copy of the block containing a,
// if any.  The next reference re-fetches the latest value — the consumer-
// driven refresh of the stale-data policy (Section 7.5: "the consumer can
// simply flush the block") and the relinquish half of a shard handoff.
// The drop goes through the protocol's eviction path so the home
// directory forgets the sharer (a silently dropped copy would earn
// useless invalidations later and fails the quiescent audits).  Private
// (modified) copies are not dropped.
func (n *Node) DropCopy(a memsys.Addr) {
	b := n.M.AS.Block(a)
	if l := n.lines[b]; l != nil && l.Tag() == TagReadOnly {
		n.M.protocol.Evict(n, b)
		if n.mruLine != nil && n.mruBlock == b {
			n.mruLine = nil
		}
	}
}

// Mark executes the LCM MarkModification directive for addr.
func (n *Node) Mark(addr memsys.Addr) { n.M.protocol.MarkModification(n, addr) }

// FlushCopies executes the LCM FlushCopies directive.
func (n *Node) FlushCopies() { n.M.protocol.FlushCopies(n) }

// ReconcileCopies executes the LCM ReconcileCopies directive (a global
// barrier; every node must call it).
func (n *Node) ReconcileCopies() { n.M.protocol.ReconcileCopies(n) }
