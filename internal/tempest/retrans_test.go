package tempest

import (
	"errors"
	"testing"

	"lcm/internal/cost"
	"lcm/internal/fault"
	"lcm/internal/net"
)

// lossSeed brute-forces a seed whose first draws for sender 0 under cfg
// match the wanted fate pattern, so the closed-form charge tests can
// script the loss model through its real randomness.
func lossSeed(t *testing.T, cfg net.LossConfig, want []net.Delivery) uint64 {
	t.Helper()
	for seed := uint64(1); seed < 1_000_000; seed++ {
		cfg.Seed = seed
		l := net.NewLoss(cfg, 1)
		ok := true
		for _, w := range want {
			if l.Classify(0) != w {
				ok = false
				break
			}
		}
		if ok {
			return seed
		}
	}
	t.Fatalf("no seed under 1e6 yields %v at %v", want, cfg)
	return 0
}

func lossyNet(inner net.Network, cfg net.LossConfig, p int) (*reliableNet, *net.Loss, *fault.Injector) {
	l := net.NewLoss(cfg, p)
	inner.SetLoss(l)
	f := fault.NewInjector(p, fault.Plan{})
	return newReliableNet(inner, f, p), l, f
}

// TestRetransDropCostUniform pins the closed-form recovery charge on the
// uniform model: a message dropped once and then delivered costs exactly
// the clean exchange plus one timeout window (= one wire round trip under
// the uniform model) plus the first backoff penalty — i.e. 2x wire time +
// 1 backoff + the payload term.
func TestRetransDropCostUniform(t *testing.T) {
	c := cost.Default()
	cfg := net.LossConfig{DropPerMil: 500}
	cfg.Seed = lossSeed(t, cfg, []net.Delivery{net.Dropped, net.Delivered})
	r, _, f := lossyNet(net.NewUniform(c, net.DefaultHeaderBytes), cfg, 2)

	var ctr net.Counters
	got := r.RoundTrip(0, 1, 32, 0, &ctr)
	want := c.RemoteRoundTrip + // timeout window of the lost send
		f.Backoff(1) + // first retry backoff
		c.RemoteRoundTrip + 32*c.PerByte // the surviving exchange
	if got != want {
		t.Errorf("dropped-once round trip charged %d, want %d (2x wire + backoff + payload)", got, want)
	}
	if ctr.Retransmits != 1 {
		t.Errorf("Retransmits = %d, want 1", ctr.Retransmits)
	}
	if wantLost := c.RemoteRoundTrip + f.Backoff(1); ctr.RetransCycles != wantLost {
		t.Errorf("RetransCycles = %d, want %d", ctr.RetransCycles, wantLost)
	}
	// The re-send shows up in the message account exactly as a timeout
	// followed by a clean round trip would.
	ref := net.NewUniform(c, net.DefaultHeaderBytes)
	var refCtr net.Counters
	ref.Timeout(0, 1, 0, &refCtr)
	ref.RoundTrip(0, 1, 32, 0, &refCtr)
	refCtr.Retransmits, refCtr.RetransCycles = ctr.Retransmits, ctr.RetransCycles
	if ctr != refCtr {
		t.Errorf("message account:\n got  %+v\n want timeout+roundtrip composition %+v", ctr, refCtr)
	}
}

// TestRetransDropCostFatTree pins the same identity on the queueing
// fat-tree model by composition: the lossy exchange must charge exactly
// what a fresh fat tree charges for timeout-then-roundtrip at the same
// virtual times, plus the backoff penalty.
func TestRetransDropCostFatTree(t *testing.T) {
	c := cost.Default()
	cfg := net.LossConfig{DropPerMil: 500}
	cfg.Seed = lossSeed(t, cfg, []net.Delivery{net.Dropped, net.Delivered})
	r, _, f := lossyNet(net.NewFatTree(net.Config{Model: "fattree"}, 8, c), cfg, 8)

	const now = 12345
	var ctr net.Counters
	got := r.RoundTrip(0, 5, 32, now, &ctr)

	ref := net.NewFatTree(net.Config{Model: "fattree"}, 8, c)
	var refCtr net.Counters
	timeout := ref.Timeout(0, 5, now, &refCtr)
	want := timeout + f.Backoff(1) + ref.RoundTrip(0, 5, 32, now+timeout+f.Backoff(1), &refCtr)
	if got != want {
		t.Errorf("dropped-once fat-tree round trip charged %d, want %d (timeout + backoff + delayed retry)", got, want)
	}
	if ctr.Retransmits != 1 || ctr.RetransCycles != timeout+f.Backoff(1) {
		t.Errorf("retransmission account %d/%d, want 1/%d", ctr.Retransmits, ctr.RetransCycles, timeout+f.Backoff(1))
	}
}

// TestRetransDuplicateIdempotent checks a duplicated delivery costs
// exactly the clean exchange — the receiver discards the stale copy at
// zero protocol cost — and is counted, not retried.
func TestRetransDuplicateIdempotent(t *testing.T) {
	c := cost.Default()
	cfg := net.LossConfig{DupPerMil: 500}
	cfg.Seed = lossSeed(t, cfg, []net.Delivery{net.Duplicated})
	r, l, _ := lossyNet(net.NewUniform(c, net.DefaultHeaderBytes), cfg, 2)

	var ctr net.Counters
	got := r.RoundTrip(0, 1, 32, 0, &ctr)
	if want := c.RemoteRoundTrip + 32*c.PerByte; got != want {
		t.Errorf("duplicated round trip charged %d, want clean %d", got, want)
	}
	if ctr.DupDelivered != 1 || ctr.Retransmits != 0 {
		t.Errorf("dup account: DupDelivered=%d Retransmits=%d, want 1/0", ctr.DupDelivered, ctr.Retransmits)
	}
	if l.Tally().Duplicated != 1 {
		t.Errorf("loss tally %v, want one duplicate", l.Tally())
	}
}

// TestRetransReorderHeld checks a reordered delivery is held (counted)
// but charges the clean exchange: resequencing resolves within the same
// virtual-time exchange.
func TestRetransReorderHeld(t *testing.T) {
	c := cost.Default()
	cfg := net.LossConfig{ReorderPerMil: 500}
	cfg.Seed = lossSeed(t, cfg, []net.Delivery{net.Reordered})
	r, _, _ := lossyNet(net.NewUniform(c, net.DefaultHeaderBytes), cfg, 2)

	var ctr net.Counters
	if got, want := r.RoundTrip(0, 1, 0, 0, &ctr), c.RemoteRoundTrip; got != want {
		t.Errorf("reordered round trip charged %d, want clean %d", got, want)
	}
	if ctr.ReorderHeld != 1 {
		t.Errorf("ReorderHeld = %d, want 1", ctr.ReorderHeld)
	}
}

// TestRetransExhaustion checks a message dropped past the retry budget
// panics with a RetryExhaustedError that errors.Is-matches
// fault.ErrRetryExhausted.
func TestRetransExhaustion(t *testing.T) {
	c := cost.Default()
	r, _, f := lossyNet(net.NewUniform(c, net.DefaultHeaderBytes),
		net.LossConfig{Seed: 1, DropPerMil: 1000}, 2)

	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("certain drop did not exhaust the retry budget")
		}
		err, ok := v.(error)
		if !ok {
			t.Fatalf("panic value %v is not an error", v)
		}
		if !errors.Is(err, fault.ErrRetryExhausted) {
			t.Errorf("panic %v does not match fault.ErrRetryExhausted", err)
		}
		var re *fault.RetryExhaustedError
		if !errors.As(err, &re) {
			t.Fatalf("panic %v is not a *fault.RetryExhaustedError", err)
		}
		if re.Node != 0 || re.Op != "retransmission" || re.Attempts != f.RetryBudget()+1 {
			t.Errorf("exhaustion detail %+v, want node 0, op retransmission, attempts %d", re, f.RetryBudget()+1)
		}
	}()
	var ctr net.Counters
	r.RoundTrip(0, 1, 32, 0, &ctr)
}

// TestReliableNetPassThrough checks the wrapper's non-exchange surface:
// barriers and timeouts are never classified, and the wrapper reports
// exactly-once delivery upward.
func TestReliableNetPassThrough(t *testing.T) {
	c := cost.Default()
	r, l, _ := lossyNet(net.NewUniform(c, net.DefaultHeaderBytes),
		net.LossConfig{Seed: 1, DropPerMil: 1000}, 2)
	var ctr net.Counters
	if got, want := r.Timeout(0, 1, 0, &ctr), c.RemoteRoundTrip; got != want {
		t.Errorf("Timeout charged %d, want %d", got, want)
	}
	r.Barrier(0, &ctr)
	if l.Tally().Total() != 0 {
		t.Errorf("pass-through paths drew from the loss model: %v", l.Tally())
	}
	if r.Deliver(0, 1) != net.Delivered {
		t.Error("reliable layer must guarantee delivery upward")
	}
	if r.Name() != "uniform" {
		t.Errorf("Name = %q", r.Name())
	}
}
