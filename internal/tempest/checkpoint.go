package tempest

import (
	"lcm/internal/fault"
	"lcm/internal/memsys"
)

// This file implements crash recovery: barrier-epoch checkpoints,
// restart-from-checkpoint for injected kills, and degraded-mode
// re-homing once a node's restart budget is spent.
//
// The checkpoint discipline is coordinated: every node snapshots its
// protocol state at every global barrier, which in this machine is
// exactly where the memory consistency contract makes the state
// meaningful (LCM reconciles at barriers; between them copies are
// intentionally inconsistent).  A node's snapshot holds its installed
// lines — tag, data image, local clean copy, reconcile generations,
// mark/write-mask bookkeeping — i.e. everything the protocol keeps per
// node.  Directory state needs no snapshot: it lives in the global
// simulator structures that survive a node crash (it models state kept
// in the survivors' memories and the home's directory).
//
// Restart is checkpoint-plus-deterministic-replay.  The simulator
// cannot rewind an SPMD body mid-flight, and it does not need to: the
// machine is deterministic under the scheduler, so re-executing the
// epoch's access stream from the restored checkpoint reproduces, bit
// for bit, the state the node held at the crash point.  The live path
// therefore charges the restart (fixed base + per-line restore +
// per-operation replay) and continues from state that is identical to
// the replay's outcome by construction.  RestoreCheckpoint performs the
// literal byte restore; tests use it on quiescent machines to prove the
// snapshot really contains the state a replay would start from.

// lineSnap is one installed line's checkpointed image.
type lineSnap struct {
	block    memsys.BlockID
	tag      Tag
	gen      uint32
	cleanGen uint32
	marked   bool
	wmask    uint64
	data     []byte
	// hasClean records whether the line kept a local clean copy; the
	// clean buffer itself is reused across epochs, so its non-nilness
	// cannot encode that.
	hasClean bool
	clean    []byte
}

// checkpoint is one node's barrier-epoch snapshot.  Buffers are reused
// across epochs, so steady-state checkpointing allocates nothing.
type checkpoint struct {
	// epoch is the barrier count at capture.
	epoch int64
	// clock is the node's virtual time at capture.
	clock int64
	// opsMark is Hits+Misses at capture: the origin for replay
	// accounting when a restart replays the epoch.
	opsMark int64
	lines   []lineSnap
}

// takeCheckpoint snapshots every installed, valid line of n into its
// checkpoint, charging CheckpointPerLine per line.  Called by
// Node.Barrier (owner goroutine, no lock needed: tags are atomic and
// data is only written by the owner or under locks the owner is not
// currently inside).
func (n *Node) takeCheckpoint() {
	ck := &n.ckpt
	bs := int(n.M.AS.BlockSize)
	ck.lines = ck.lines[:0]
	for _, chunk := range n.lineChunks {
		for i := range chunk {
			l := &chunk[i]
			if l.Data == nil {
				break // unallocated arena tail
			}
			if l.Tag() == TagInvalid {
				continue
			}
			// Reuse the slot (and its buffers) from previous epochs.
			if len(ck.lines) < cap(ck.lines) {
				ck.lines = ck.lines[:len(ck.lines)+1]
			} else {
				ck.lines = append(ck.lines, lineSnap{})
			}
			s := &ck.lines[len(ck.lines)-1]
			s.block = l.block
			s.tag = l.Tag()
			s.gen = l.Gen
			s.cleanGen = l.CleanGen
			s.marked = l.Marked
			s.wmask = l.WMask
			if s.data == nil {
				s.data = make([]byte, bs)
			}
			copy(s.data, l.Data)
			s.hasClean = l.Clean != nil
			if s.hasClean {
				if s.clean == nil {
					s.clean = make([]byte, bs)
				}
				copy(s.clean, l.Clean)
			}
		}
	}
	ck.epoch = n.Ctr.Barriers
	ck.clock = n.clock
	ck.opsMark = n.Ctr.Hits + n.Ctr.Misses
	n.clock += int64(len(ck.lines)) * n.M.Cost.CheckpointPerLine
	n.Ctr.Checkpoints++
}

// restartFromCheckpoint models node n crashing and restarting from its
// last barrier-epoch checkpoint, charging restore and replay in virtual
// cycles.  See the file comment for why the live path does not (and
// need not) literally rewind state.
func (n *Node) restartFromCheckpoint() {
	c := &n.M.Cost
	lines := int64(len(n.ckpt.lines))
	ops := n.Ctr.Hits + n.Ctr.Misses - n.ckpt.opsMark
	charge := c.RestartBase + lines*c.RestorePerLine + ops*c.ReplayPerOp
	n.clock += charge
	n.Ctr.Restarts++
	n.Ctr.RestoredLines += lines
	n.Ctr.ReplayedOps += ops
	n.Ctr.RecoveryCycles += charge
}

// RestoreCheckpoint literally restores the node's lines to the last
// checkpoint image: snapshotted lines get their tag, data, clean copy
// and bookkeeping back; lines installed after the snapshot are
// invalidated.  For quiescent machines only (tests and post-mortem
// inspection) — the live restart path models the restore plus a
// deterministic replay, which lands back on the current state.
func (n *Node) RestoreCheckpoint() {
	ck := &n.ckpt
	snapped := make(map[memsys.BlockID]bool, len(ck.lines))
	for i := range ck.lines {
		s := &ck.lines[i]
		snapped[s.block] = true
		l := n.lines[s.block]
		l.SetTag(s.tag)
		l.Gen = s.gen
		l.CleanGen = s.cleanGen
		l.Marked = s.marked
		l.WMask = s.wmask
		copy(l.Data, s.data)
		if s.hasClean {
			if l.Clean == nil {
				l.Clean = n.BlockBuf()
			}
			copy(l.Clean, s.clean)
		} else {
			l.Clean = nil
		}
	}
	for _, chunk := range n.lineChunks {
		for i := range chunk {
			l := &chunk[i]
			if l.Data == nil {
				break
			}
			if !snapped[l.block] {
				l.SetTag(TagInvalid)
				l.Marked = false
				l.WMask = 0
				l.Clean = nil
			}
		}
	}
	n.mruLine = nil
}

// CheckpointLines returns the number of lines in the node's last
// checkpoint (0 before the first barrier).
func (n *Node) CheckpointLines() int { return len(n.ckpt.lines) }

// Degraded reports whether the node's home responsibility has migrated
// to a peer (degraded mode).
func (n *Node) Degraded() bool { return n.degraded }

// killed handles an injected kill of node n triggered after `after`
// events: a machine-wide abort by default; under Recovery with a
// KillRecover plan, a checkpoint restart — and, once the node has been
// killed past its restart budget, degraded-mode re-homing.  Runs in the
// dying node's goroutine at a point where it holds no block lock.
func (n *Node) killed(f *fault.Injector, after int) {
	if !n.M.Recovery || !f.Plan().KillRecover {
		panic(&fault.KillError{Node: n.ID, After: after})
	}
	n.restartFromCheckpoint()
	if int(n.Ctr.Restarts) > f.RestartBudget() {
		n.M.rehomeNode(n)
	}
}

// Rehomer is implemented by protocols that keep per-home aggregate state
// which must migrate when a home's responsibility moves in degraded
// mode.  LCM implements it to hand the dead home's dirty-block list to
// the adopter; Stache's directory is purely per-block and needs no hook.
type Rehomer interface {
	Rehome(from, to int)
}

// rehomeNode declares node n dead for homing purposes: every block it
// homes migrates to the next live peer, the protocol migrates its
// per-home state, and n continues as a pure compute client (the run
// completes with P−1 serving nodes).  The home images need no copy in
// the simulator — they live in the global address space — which models
// the adopter taking over the dead node's memory pages; what is charged
// is the directory/image handover, one block-sized transfer per
// migrated block through the network model.
func (m *Machine) rehomeNode(n *Node) {
	if m.P < 2 || n.degraded {
		return
	}
	to := -1
	for i := 1; i < m.P; i++ {
		cand := (n.ID + i) % m.P
		if !m.Nodes[cand].degraded {
			to = cand
			break
		}
	}
	if to < 0 {
		return // no live peer left to adopt the regions
	}
	n.degraded = true
	moved := m.AS.Rehome(n.ID, to)
	var cyc int64
	for i := int64(0); i < moved; i++ {
		cyc += m.Net.Flush(n.ID, to, int64(m.AS.BlockSize), n.Clock()+cyc, &n.Ctr.Net)
	}
	n.clock += cyc
	if r, ok := m.protocol.(Rehomer); ok {
		r.Rehome(n.ID, to)
	}
	n.Ctr.Rehomings++
	n.Ctr.RehomedBlocks += moved
}
