package fault

import (
	"strings"
	"testing"
)

// TestKillSchedule pins the multi-kill trigger: node KillNode dies at
// every multiple of KillAfter access faults until KillCount deaths, and
// nobody else ever does.
func TestKillSchedule(t *testing.T) {
	in := NewInjector(4, Plan{Seed: 1, KillNode: 2, KillAfter: 3, KillCount: 2})
	var killsAt []int
	for i := 1; i <= 20; i++ {
		if in.AccessFault(2) {
			killsAt = append(killsAt, i)
		}
		if in.AccessFault(1) {
			t.Fatalf("fault %d: kill triggered on node 1, plan targets node 2", i)
		}
	}
	if len(killsAt) != 2 || killsAt[0] != 3 || killsAt[1] != 6 {
		t.Fatalf("kills at faults %v, want [3 6]", killsAt)
	}
	if got := in.Tally().Kills; got != 2 {
		t.Fatalf("tally.Kills = %d, want 2", got)
	}
}

// TestKillAtBarrier pins the barrier trigger: exactly one kill, at the
// KillAtBarrier-th arrival, sharing the KillCount budget with the access
// trigger.
func TestKillAtBarrier(t *testing.T) {
	in := NewInjector(2, Plan{Seed: 1, KillNode: 1, KillAtBarrier: 2})
	var killsAt []int
	for i := 1; i <= 5; i++ {
		if in.BarrierArrival(1) {
			killsAt = append(killsAt, i)
		}
		if in.BarrierArrival(0) {
			t.Fatalf("barrier %d: kill triggered on node 0, plan targets node 1", i)
		}
	}
	if len(killsAt) != 1 || killsAt[0] != 2 {
		t.Fatalf("barrier kills at %v, want [2]", killsAt)
	}

	// The two triggers share KillCount: a barrier kill spends the budget
	// an access kill would have used.
	in = NewInjector(2, Plan{Seed: 1, KillNode: 1, KillAfter: 1, KillAtBarrier: 1, KillCount: 1})
	if !in.BarrierArrival(1) {
		t.Fatal("first barrier arrival did not kill")
	}
	if in.AccessFault(1) {
		t.Fatal("access kill triggered after KillCount was spent at the barrier")
	}
}

// TestKillDefaults pins the defaulting: configuring any kill trigger
// implies KillCount 1, and RestartBudget defaults to 4.
func TestKillDefaults(t *testing.T) {
	in := NewInjector(2, Plan{KillNode: 1, KillAfter: 5})
	if got := in.Plan().KillCount; got != 1 {
		t.Errorf("KillCount defaulted to %d, want 1", got)
	}
	if got := in.RestartBudget(); got != 4 {
		t.Errorf("RestartBudget defaulted to %d, want 4", got)
	}
	if in := NewInjector(2, Plan{}); in.Plan().KillCount != 0 {
		t.Errorf("plan with no kill trigger got KillCount %d, want 0", in.Plan().KillCount)
	}
}

// TestKillPlanString covers the plan rendering used in reports.
func TestKillPlanString(t *testing.T) {
	p := Plan{Seed: 1, KillNode: 1, KillAfter: 3, KillAtBarrier: 2, KillRecover: true,
		KillCount: 4, RestartBudget: 2}
	s := p.String()
	for _, want := range []string{"kill=n1@3", "kill=n1@bar2", "recover(x4,budget=2)"} {
		if !strings.Contains(s, want) {
			t.Errorf("plan string %q missing %q", s, want)
		}
	}
}
