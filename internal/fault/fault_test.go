package fault

import "testing"

// TestStreamsDeterministic: two injectors built from the same plan make
// identical decisions — the property the chaos harness's exact-count
// assertions rest on.
func TestStreamsDeterministic(t *testing.T) {
	plan := Plan{Seed: 42, CorruptPerMil: 100, TransientPerMil: 200, SpikePerMil: 50, SpikeCycles: 7, StallPerMil: 30, StallCycles: 9}
	a := NewInjector(4, plan)
	b := NewInjector(4, plan)
	for i := 0; i < 10000; i++ {
		node := i % 4
		if a.CorruptTransfer(node) != b.CorruptTransfer(node) {
			t.Fatalf("CorruptTransfer diverged at step %d", i)
		}
		if a.TransientTimeout(node) != b.TransientTimeout(node) {
			t.Fatalf("TransientTimeout diverged at step %d", i)
		}
	}
	if a.Tally() != b.Tally() {
		t.Fatalf("tallies diverged: %v vs %v", a.Tally(), b.Tally())
	}
	if a.Tally().Total() == 0 {
		t.Fatal("no faults injected at these probabilities; test proves nothing")
	}
}

// TestStreamsDecorrelated: different nodes (and nearby seeds) draw
// different streams.
func TestStreamsDecorrelated(t *testing.T) {
	in := NewInjector(2, Plan{Seed: 1, CorruptPerMil: 500})
	same := 0
	const draws = 1000
	for i := 0; i < draws; i++ {
		if in.CorruptTransfer(0) == in.CorruptTransfer(1) {
			same++
		}
	}
	// Independent fair-ish coins agree ~half the time; identical streams
	// agree always.
	if same > draws*9/10 {
		t.Fatalf("node streams look identical: %d/%d draws agree", same, draws)
	}
}

func TestBackoffExponentialWithCap(t *testing.T) {
	in := NewInjector(1, Plan{BackoffBase: 100, BackoffCap: 3})
	want := []int64{100, 200, 400, 800, 800, 800}
	for i, w := range want {
		if got := in.Backoff(i + 1); got != w {
			t.Fatalf("Backoff(%d) = %d, want %d", i+1, got, w)
		}
	}
}

func TestBackoffDefaults(t *testing.T) {
	in := NewInjector(1, Plan{})
	if got := in.Backoff(1); got != 3000 {
		t.Fatalf("default Backoff(1) = %d, want 3000", got)
	}
	if in.RetryBudget() != 8 {
		t.Fatalf("default RetryBudget = %d, want 8", in.RetryBudget())
	}
}

// TestChecksumDetectsCorruption: every single-bit flip CorruptBytes makes
// must change the checksum.
func TestChecksumDetectsCorruption(t *testing.T) {
	in := NewInjector(1, Plan{Seed: 7})
	data := make([]byte, 32)
	for i := range data {
		data[i] = byte(i * 37)
	}
	clean := Checksum(data)
	for i := 0; i < 100; i++ {
		buf := append([]byte(nil), data...)
		in.CorruptBytes(0, buf)
		if Checksum(buf) == clean {
			t.Fatalf("corruption %d not detected by checksum", i)
		}
	}
}

// TestKillGating: the kill fires exactly on the KillAfter-th access fault
// of the designated node and never on others.
func TestKillGating(t *testing.T) {
	in := NewInjector(2, Plan{KillNode: 1, KillAfter: 3})
	for i := 0; i < 10; i++ {
		if in.AccessFault(0) {
			t.Fatalf("kill fired on wrong node at fault %d", i)
		}
	}
	for i := 1; i <= 5; i++ {
		got := in.AccessFault(1)
		if want := i == 3; got != want {
			t.Fatalf("AccessFault(1) at fault %d = %v, want %v", i, got, want)
		}
	}
	if k := in.Tally().Kills; k != 1 {
		t.Fatalf("Kills = %d, want 1", k)
	}
	// KillAfter == 0 disables the kill entirely.
	off := NewInjector(2, Plan{KillNode: 1})
	for i := 0; i < 10; i++ {
		if off.AccessFault(1) {
			t.Fatal("kill fired with KillAfter == 0")
		}
	}
}
