// Package fault is a deterministic, seed-driven fault-injection layer for
// the simulated Tempest machine.
//
// The paper's substrate — Blizzard on a real CM-5, with coherence handled
// by user-level software — ran on hardware where transient message loss,
// corrupted transfers and stalled handlers were real events.  The
// simulator's interconnect is perfect, so this package re-introduces those
// events under test control: an Injector attached to a machine decides, at
// every data-movement boundary, whether to corrupt a block transfer, drop
// a fault-handler round trip, spike a home handler's occupancy, stall a
// node's virtual clock, or kill a node outright.
//
// Determinism is the design constraint.  Every node owns an independent
// splitmix64 stream seeded from (Plan.Seed, node ID), and every injection
// decision is made in the owning node's goroutine at a point fixed by that
// node's access stream.  Since the simulator's access streams are
// themselves deterministic (see the golden accounting tests in
// internal/workloads), the same Plan injects the same faults at the same
// points on every run, regardless of goroutine interleaving — which is
// what lets the chaos harness assert that recovery counters match the
// injected plan exactly.
//
// Faults never change program-visible data: corruption is healed by
// re-fetch, timeouts are retried, and stalls/spikes only charge virtual
// cycles.  A chaos run must therefore produce results bit-identical to the
// fault-free run; any divergence is a recovery bug.
package fault

import (
	"errors"
	"fmt"
)

// Plan describes one seeded fault-injection campaign.  Probabilities are
// expressed per mille (0..1000) so that decisions reduce to an integer
// compare against the node's deterministic stream.  The zero value injects
// nothing.
type Plan struct {
	// Seed selects the per-node random streams.
	Seed uint64

	// CorruptPerMil is the per-transfer probability (‰) that the data of
	// a fetched block is corrupted in flight.  Corruption is detected by
	// a per-transfer checksum and healed by bounded re-fetch with
	// exponential backoff, charged in virtual cycles.
	CorruptPerMil int

	// TransientPerMil is the probability (‰), per remote access-fault
	// round trip, that the request "times out" and must be re-sent.
	TransientPerMil int

	// SpikePerMil is the probability (‰), per remote access fault, that
	// the home node's handler suffers an occupancy spike of SpikeCycles.
	SpikePerMil int
	SpikeCycles int64

	// StallPerMil is the probability (‰), per access fault, that the
	// faulting node stalls for StallCycles (a virtual-clock jump).
	StallPerMil int
	StallCycles int64

	// RetryBudget bounds consecutive recovery attempts for one operation
	// (re-fetches of one transfer, re-sends of one request).  Exceeding
	// it is an unrecoverable fault.  Default 8.
	RetryBudget int

	// BackoffBase is the virtual-cycle penalty of the first retry; each
	// further retry doubles it, up to BackoffCap doublings.  Defaults:
	// 3000 cycles (one modelled remote round trip) and 6 doublings.
	BackoffBase int64
	BackoffCap  int

	// KillNode / KillAfter inject a node failure: node KillNode dies on
	// its KillAfter-th access fault.  Active only when KillAfter > 0.
	// Without KillRecover the failure is unrecoverable (machine-wide
	// abort); with it, and with the machine's Recovery mode on, each kill
	// becomes a deterministic restart from the node's last barrier-epoch
	// checkpoint.
	KillNode  int
	KillAfter int

	// KillRecover turns injected kills into checkpoint restarts (see
	// above).  Ignored unless the machine runs with Recovery enabled.
	KillRecover bool

	// KillCount is the number of kills injected (default 1 when a kill
	// trigger is configured): with KillAfter the node dies at every
	// multiple of KillAfter access faults until KillCount deaths.
	KillCount int

	// KillAtBarrier, when > 0, additionally kills KillNode at its
	// KillAtBarrier-th barrier arrival (before the barrier resolves), so
	// crash-at-the-epoch-boundary is reachable deterministically.
	KillAtBarrier int

	// RestartBudget bounds checkpoint restarts per node.  A node killed
	// again past the budget is declared dead for homing purposes: its
	// home-region responsibility migrates to a live peer (degraded mode)
	// and it continues as a pure compute client.  Default 4.
	RestartBudget int
}

// withDefaults fills the defaulted fields.
func (p Plan) withDefaults() Plan {
	if p.RetryBudget <= 0 {
		p.RetryBudget = 8
	}
	if p.BackoffBase <= 0 {
		p.BackoffBase = 3000
	}
	if p.BackoffCap <= 0 {
		p.BackoffCap = 6
	}
	if p.KillCount <= 0 && (p.KillAfter > 0 || p.KillAtBarrier > 0) {
		p.KillCount = 1
	}
	if p.RestartBudget <= 0 {
		p.RestartBudget = 4
	}
	return p
}

// String renders the plan for reports.
func (p Plan) String() string {
	s := fmt.Sprintf("seed=%#x corrupt=%d‰ transient=%d‰ spike=%d‰ stall=%d‰",
		p.Seed, p.CorruptPerMil, p.TransientPerMil, p.SpikePerMil, p.StallPerMil)
	if p.KillAfter > 0 {
		s += fmt.Sprintf(" kill=n%d@%d", p.KillNode, p.KillAfter)
	}
	if p.KillAtBarrier > 0 {
		s += fmt.Sprintf(" kill=n%d@bar%d", p.KillNode, p.KillAtBarrier)
	}
	if p.KillRecover {
		s += fmt.Sprintf(" recover(x%d,budget=%d)", p.KillCount, p.RestartBudget)
	}
	return s
}

// Tally counts the faults an Injector actually injected.  The chaos
// harness asserts the machine's recovery counters against it.
type Tally struct {
	// Corruptions is the number of block transfers corrupted in flight.
	Corruptions int64
	// Timeouts is the number of remote request round trips dropped.
	Timeouts int64
	// Spikes is the number of handler occupancy spikes.
	Spikes int64
	// Stalls is the number of node stalls.
	Stalls int64
	// Kills is the number of injected node failures (at most KillCount;
	// unrecoverable unless the plan sets KillRecover).
	Kills int64
}

// Add accumulates o into t.
func (t *Tally) Add(o Tally) {
	t.Corruptions += o.Corruptions
	t.Timeouts += o.Timeouts
	t.Spikes += o.Spikes
	t.Stalls += o.Stalls
	t.Kills += o.Kills
}

// Total returns the total number of injected faults.
func (t Tally) Total() int64 {
	return t.Corruptions + t.Timeouts + t.Spikes + t.Stalls + t.Kills
}

// String renders the tally for reports.
func (t Tally) String() string {
	return fmt.Sprintf("corruptions=%d timeouts=%d spikes=%d stalls=%d kills=%d",
		t.Corruptions, t.Timeouts, t.Spikes, t.Stalls, t.Kills)
}

// nodeStream is one node's private injection state.  All fields are
// touched only by the owning node's goroutine; tallies are read after the
// machine quiesces.
type nodeStream struct {
	rng      uint64
	faults   int
	barriers int
	kills    int
	tally    Tally
}

// Injector is the per-machine fault-injection state.  Decision methods
// must be called from the owning node's goroutine (the same discipline as
// tempest's per-node counters); Tally only while the machine is quiescent.
type Injector struct {
	plan  Plan
	nodes []nodeStream
}

// NewInjector creates an injector for p nodes executing plan.
func NewInjector(p int, plan Plan) *Injector {
	plan = plan.withDefaults()
	in := &Injector{plan: plan, nodes: make([]nodeStream, p)}
	for i := range in.nodes {
		// Decorrelate node streams: mix the seed with the node ID
		// through one splitmix64 round so nearby seeds do not alias.
		in.nodes[i].rng = mix64(plan.Seed ^ (uint64(i+1) * 0x9e3779b97f4a7c15))
	}
	return in
}

// Plan returns the injector's plan (with defaults applied).
func (in *Injector) Plan() Plan { return in.plan }

// Tally sums the injected-fault tallies across nodes.  Call only while
// the machine is quiescent.
func (in *Injector) Tally() Tally {
	var t Tally
	for i := range in.nodes {
		t.Add(in.nodes[i].tally)
	}
	return t
}

// NodeTally returns node i's injected-fault tally (quiescent only).
func (in *Injector) NodeTally(i int) Tally { return in.nodes[i].tally }

// next advances node's stream and returns the next 64-bit value.
func (in *Injector) next(node int) uint64 {
	s := &in.nodes[node]
	s.rng += 0x9e3779b97f4a7c15
	return mix64(s.rng)
}

// mix64 is the splitmix64 output function.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// roll draws one decision with probability perMil/1000.
func (in *Injector) roll(node, perMil int) bool {
	if perMil <= 0 {
		return false
	}
	return in.next(node)%1000 < uint64(perMil)
}

// CorruptTransfer decides whether node's next inbound block transfer is
// corrupted, tallying an injection when it is.
func (in *Injector) CorruptTransfer(node int) bool {
	if !in.roll(node, in.plan.CorruptPerMil) {
		return false
	}
	in.nodes[node].tally.Corruptions++
	return true
}

// CorruptBytes flips one deterministic bit of data in place, simulating a
// transfer error on the wire.
func (in *Injector) CorruptBytes(node int, data []byte) {
	if len(data) == 0 {
		return
	}
	bit := in.next(node) % uint64(len(data)*8)
	data[bit/8] ^= 1 << (bit % 8)
}

// TransientTimeout decides whether node's next remote request round trip
// is dropped (the requester times out and must re-send).
func (in *Injector) TransientTimeout(node int) bool {
	if !in.roll(node, in.plan.TransientPerMil) {
		return false
	}
	in.nodes[node].tally.Timeouts++
	return true
}

// OccupancySpike decides whether the home handler serving node's next
// remote fault suffers an occupancy spike, returning the spike cycles.
func (in *Injector) OccupancySpike(node int) (int64, bool) {
	if !in.roll(node, in.plan.SpikePerMil) {
		return 0, false
	}
	in.nodes[node].tally.Spikes++
	return in.plan.SpikeCycles, true
}

// Stall decides whether node stalls at its next access fault, returning
// the virtual-clock jump.
func (in *Injector) Stall(node int) (int64, bool) {
	if !in.roll(node, in.plan.StallPerMil) {
		return 0, false
	}
	in.nodes[node].tally.Stalls++
	return in.plan.StallCycles, true
}

// AccessFault records one access fault on node and reports whether the
// plan's kill triggers now.  With KillCount > 1 the node dies at every
// multiple of KillAfter access faults until KillCount kills are injected.
func (in *Injector) AccessFault(node int) bool {
	if in.plan.KillAfter <= 0 || node != in.plan.KillNode {
		return false
	}
	s := &in.nodes[node]
	s.faults++
	if s.faults%in.plan.KillAfter != 0 || s.kills >= in.plan.KillCount {
		return false
	}
	s.kills++
	s.tally.Kills++
	return true
}

// BarrierArrival records one barrier arrival of node and reports whether
// the plan's barrier kill triggers now.
func (in *Injector) BarrierArrival(node int) bool {
	if in.plan.KillAtBarrier <= 0 || node != in.plan.KillNode {
		return false
	}
	s := &in.nodes[node]
	s.barriers++
	if s.barriers != in.plan.KillAtBarrier || s.kills >= in.plan.KillCount {
		return false
	}
	s.kills++
	s.tally.Kills++
	return true
}

// RestartBudget returns the per-node checkpoint-restart budget; one more
// kill past it re-homes the node's home regions (degraded mode).
func (in *Injector) RestartBudget() int { return in.plan.RestartBudget }

// RetryBudget returns the bounded retry budget per operation.
func (in *Injector) RetryBudget() int { return in.plan.RetryBudget }

// Backoff returns the virtual-cycle backoff penalty of the attempt-th
// retry (1-based): exponential with a capped number of doublings.
func (in *Injector) Backoff(attempt int) int64 {
	sh := attempt - 1
	if sh < 0 {
		sh = 0
	}
	if sh > in.plan.BackoffCap {
		sh = in.plan.BackoffCap
	}
	return in.plan.BackoffBase << sh
}

// Checksum is the per-transfer checksum (FNV-1a 64) used to detect
// corrupted block transfers.
func Checksum(b []byte) uint64 {
	h := uint64(0xcbf29ce484222325)
	for _, c := range b {
		h ^= uint64(c)
		h *= 0x100000001b3
	}
	return h
}

// ErrKilled is the sentinel for an injected unrecoverable node failure
// (match with errors.Is).
var ErrKilled = errors.New("fault: injected unrecoverable node failure")

// KillError reports an injected unrecoverable node failure.
type KillError struct {
	Node  int
	After int // access-fault count at which the node died
}

func (e *KillError) Error() string {
	return fmt.Sprintf("fault: injected unrecoverable failure on node %d (access fault %d)", e.Node, e.After)
}

// Is matches ErrKilled.
func (e *KillError) Is(target error) bool { return target == ErrKilled }

// ErrRetryExhausted is the sentinel for a recovery retry budget running
// out (match with errors.Is).
var ErrRetryExhausted = errors.New("fault: recovery retry budget exhausted")

// RetryExhaustedError reports a recovery that exceeded its retry budget
// and became unrecoverable.
type RetryExhaustedError struct {
	Node     int
	Op       string // "block transfer" or "remote request"
	Block    uint32
	Attempts int
}

func (e *RetryExhaustedError) Error() string {
	return fmt.Sprintf("fault: node %d %s for block %d unrecoverable after %d attempts",
		e.Node, e.Op, e.Block, e.Attempts)
}

// Is matches ErrRetryExhausted.
func (e *RetryExhaustedError) Is(target error) bool { return target == ErrRetryExhausted }
