// Package nodeset provides the copyset representation shared by the
// coherence directories: a set of node IDs with an inline single-word
// fast path for machines of at most 64 nodes and a multi-word bitset
// spill beyond that.
//
// The directories (internal/core, internal/stache) keep one sharer set
// per block plus per-phase reader/writer sets, so the representation is
// chosen for their access pattern rather than for generality:
//
//   - Machines with P <= 64 — every historical configuration — live
//     entirely in the inline word.  Add/Remove/Contains/Count compile to
//     the same mask arithmetic the old flat uint64 bitmasks used, and a
//     Set costs no heap allocation at all.
//   - Larger machines spill IDs >= 64 into []uint64 words.  Directory-
//     resident sets carve their spill storage from an Arena (one chunked
//     allocation per directory, the idiom of tempest's line arenas), so
//     steady-state protocol execution stays allocation-free at any P.
//
// Iteration (Iter) visits members in ascending ID order by popping bits
// with TrailingZeros64 and skipping empty words, which keeps the
// invalidation fan-out and invariant-audit loops O(members + words)
// instead of O(P).  Ascending order is load-bearing: the order of
// invalidation charges is a simulation observable, and it must replay
// the historical uint64 iteration exactly.
package nodeset

import (
	"math/bits"
	"strconv"
)

// wordBits is the capacity of the inline word: IDs 0..63 need no spill.
const wordBits = 64

// Set is a set of small non-negative node IDs.  The zero value is an
// empty set ready for use; Add grows spill storage on demand.  Sets that
// live in a directory should instead be created by an Arena so their
// spill words are pre-sized and pooled.
//
// IDs 0..63 live in the inline word lo; ID i >= 64 lives in bit i%64 of
// spill[i/64-1].  Methods taking a second set accept any spill length on
// either side; missing words read as zero.
type Set struct {
	lo    uint64
	spill []uint64
}

// SpillWords returns the number of spill words a set needs to hold IDs
// in [0, maxID].
func SpillWords(maxID int) int {
	if maxID < wordBits {
		return 0
	}
	return maxID / wordBits
}

// Of returns a set holding the given IDs (a test convenience).
func Of(ids ...int) Set {
	var s Set
	for _, id := range ids {
		s.Add(id)
	}
	return s
}

// Add inserts id, growing spill storage if needed.  id must be >= 0.
func (s *Set) Add(id int) {
	if id < wordBits {
		s.lo |= 1 << uint(id)
		return
	}
	w := id/wordBits - 1
	if w >= len(s.spill) {
		grown := make([]uint64, w+1)
		copy(grown, s.spill)
		s.spill = grown
	}
	s.spill[w] |= 1 << (uint(id) % wordBits)
}

// Remove deletes id; removing an absent id is a no-op.
func (s *Set) Remove(id int) {
	if id < wordBits {
		s.lo &^= 1 << uint(id)
		return
	}
	if w := id/wordBits - 1; w < len(s.spill) {
		s.spill[w] &^= 1 << (uint(id) % wordBits)
	}
}

// Contains reports whether id is a member.
func (s *Set) Contains(id int) bool {
	if id < wordBits {
		return s.lo&(1<<uint(id)) != 0
	}
	w := id/wordBits - 1
	return w < len(s.spill) && s.spill[w]&(1<<(uint(id)%wordBits)) != 0
}

// Count returns the number of members (popcount over all words).
func (s *Set) Count() int {
	c := bits.OnesCount64(s.lo)
	for _, w := range s.spill {
		c += bits.OnesCount64(w)
	}
	return c
}

// Empty reports whether the set has no members.
func (s *Set) Empty() bool {
	if s.lo != 0 {
		return false
	}
	for _, w := range s.spill {
		if w != 0 {
			return false
		}
	}
	return true
}

// Single returns the sole member when the set has exactly one, else
// (-1, false).
func (s *Set) Single() (int, bool) {
	if s.Count() != 1 {
		return -1, false
	}
	it := s.Iter()
	id, _ := it.Next()
	return id, true
}

// Clear removes all members, keeping spill storage for reuse.
func (s *Set) Clear() {
	s.lo = 0
	for i := range s.spill {
		s.spill[i] = 0
	}
}

// Intersects reports whether s and o share any member.
func (s *Set) Intersects(o *Set) bool {
	if s.lo&o.lo != 0 {
		return true
	}
	n := min(len(s.spill), len(o.spill))
	for i := 0; i < n; i++ {
		if s.spill[i]&o.spill[i] != 0 {
			return true
		}
	}
	return false
}

// SubsetOf reports whether every member of s is also in o.
func (s *Set) SubsetOf(o *Set) bool {
	olo := o.lo
	if s.lo&^olo != 0 {
		return false
	}
	for i, w := range s.spill {
		var ow uint64
		if i < len(o.spill) {
			ow = o.spill[i]
		}
		if w&^ow != 0 {
			return false
		}
	}
	return true
}

// Subtract removes every member of o from s in place.
func (s *Set) Subtract(o *Set) {
	s.lo &^= o.lo
	n := min(len(s.spill), len(o.spill))
	for i := 0; i < n; i++ {
		s.spill[i] &^= o.spill[i]
	}
}

// Clone returns an independent copy of s.  Cold paths only (the conflict
// log); directory hot paths never clone.
func (s *Set) Clone() Set {
	c := Set{lo: s.lo}
	if len(s.spill) > 0 {
		c.spill = make([]uint64, len(s.spill))
		copy(c.spill, s.spill)
	}
	return c
}

// Low64 returns the inline word covering IDs 0..63.  Test helpers on
// small machines compare directory masks against literals through this.
func (s *Set) Low64() uint64 { return s.lo }

// Members returns the IDs in ascending order (a test convenience).
func (s *Set) Members() []int {
	out := make([]int, 0, s.Count())
	for it := s.Iter(); ; {
		id, ok := it.Next()
		if !ok {
			return out
		}
		out = append(out, id)
	}
}

// String renders the members like "{0,2,65}".
func (s Set) String() string {
	b := []byte{'{'}
	first := true
	for it := s.Iter(); ; {
		id, ok := it.Next()
		if !ok {
			break
		}
		if !first {
			b = append(b, ',')
		}
		first = false
		b = strconv.AppendInt(b, int64(id), 10)
	}
	return string(append(b, '}'))
}

// Iter iterates the members of a Set in ascending ID order, skipping
// empty words.  Each word is copied into the iterator before its bits
// are popped, so removing the member just returned (or any member at or
// below it) during iteration is safe and does not perturb the sequence —
// the reconcile invalidation loop relies on this to drop sharers while
// walking them.
type Iter struct {
	cur   uint64
	base  int
	next  int
	spill []uint64
}

// Iter returns an iterator positioned before the first member.
func (s *Set) Iter() Iter { return Iter{cur: s.lo, spill: s.spill} }

// Next returns the next member in ascending order, or (-1, false) when
// the set is exhausted.
func (it *Iter) Next() (int, bool) {
	for it.cur == 0 {
		if it.next >= len(it.spill) {
			return -1, false
		}
		it.cur = it.spill[it.next]
		it.next++
		it.base = it.next * wordBits
	}
	id := it.base + bits.TrailingZeros64(it.cur)
	it.cur &= it.cur - 1
	return id, true
}

// arenaChunkSets is how many sets' spill storage one backing chunk
// holds; mirrors tempest's lineArenaChunk sizing.
const arenaChunkSets = 256

// Arena carves the spill words of directory-resident sets from chunked
// backing storage: one Go allocation per chunk instead of one per set,
// the same idiom as tempest's per-node line and data arenas.  For
// machines with P <= 64 the spill width is zero and Make returns the
// inline-only zero Set without touching the arena at all.
type Arena struct {
	words int
	buf   []uint64
}

// NewArena returns an arena producing sets pre-sized for IDs in
// [0, maxID].
func NewArena(maxID int) *Arena { return &Arena{words: SpillWords(maxID)} }

// Words returns the spill width of the sets this arena produces.
func (a *Arena) Words() int { return a.words }

// Make returns an empty set whose spill storage (if any) is carved from
// the arena.  The full-length slice expression caps the slice so a
// stray append can never bleed into a neighboring set's words.
func (a *Arena) Make() Set {
	if a.words == 0 {
		return Set{}
	}
	if len(a.buf) < a.words {
		a.buf = make([]uint64, a.words*arenaChunkSets)
	}
	sp := a.buf[:a.words:a.words]
	a.buf = a.buf[a.words:]
	return Set{spill: sp}
}
