package nodeset

import (
	"math/rand"
	"reflect"
	"testing"
)

// refSet is the reference model: a plain map with the same operations.
type refSet map[int]bool

// refMembers lists the model's members in ascending order.
func refMembers(r refSet) []int {
	out := []int{}
	for id := 0; id < 65536; id++ {
		if r[id] {
			out = append(out, id)
		}
	}
	return out
}

// checkAgainst asserts every observation of s matches the model.
func checkAgainst(t *testing.T, s *Set, ref refSet) {
	t.Helper()
	want := refMembers(ref)
	if got := s.Members(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Members() = %v, want %v", got, want)
	}
	if got := s.Count(); got != len(want) {
		t.Fatalf("Count() = %d, want %d", got, len(want))
	}
	if got := s.Empty(); got != (len(want) == 0) {
		t.Fatalf("Empty() = %v with %d members", got, len(want))
	}
	id, ok := s.Single()
	if wantOK := len(want) == 1; ok != wantOK || (ok && id != want[0]) {
		t.Fatalf("Single() = (%d, %v), want one of %v", id, ok, want)
	}
	// Membership probes on both sides of every boundary of interest.
	for _, probe := range []int{0, 1, 62, 63, 64, 65, 127, 128, 129, 1023} {
		if got := s.Contains(probe); got != ref[probe] {
			t.Fatalf("Contains(%d) = %v, want %v", probe, got, ref[probe])
		}
	}
}

// TestDifferentialAgainstMap drives random Add/Remove/Clear sequences
// across the 64-bit spill boundary and checks every observation against
// the map model.
func TestDifferentialAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var s Set
	ref := refSet{}
	for step := 0; step < 20000; step++ {
		// Cluster IDs near word boundaries so the spill transitions get
		// dense coverage, with occasional far outliers.
		id := rng.Intn(130)
		if rng.Intn(20) == 0 {
			id = 64*rng.Intn(16) + rng.Intn(3)
		}
		switch rng.Intn(5) {
		case 0, 1, 2:
			s.Add(id)
			ref[id] = true
		case 3:
			s.Remove(id)
			delete(ref, id)
		case 4:
			if rng.Intn(50) == 0 {
				s.Clear()
				ref = refSet{}
			}
		}
		if step%500 == 0 || step > 19900 {
			checkAgainst(t, &s, ref)
		}
	}
	checkAgainst(t, &s, ref)
}

// TestSetAlgebra checks Intersects/SubsetOf/Subtract/Clone against the
// model on random pairs, including pairs with different spill lengths.
func TestSetAlgebra(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 2000; trial++ {
		a, b := Set{}, Set{}
		ra, rb := refSet{}, refSet{}
		// Different max IDs per side so spill lengths disagree.
		maxA, maxB := 1+rng.Intn(200), 1+rng.Intn(200)
		for i := 0; i < 30; i++ {
			ida, idb := rng.Intn(maxA), rng.Intn(maxB)
			a.Add(ida)
			ra[ida] = true
			b.Add(idb)
			rb[idb] = true
		}
		wantInter := false
		wantSubset := true
		for id := range ra {
			if rb[id] {
				wantInter = true
			} else {
				wantSubset = false
			}
		}
		if got := a.Intersects(&b); got != wantInter {
			t.Fatalf("Intersects(%v, %v) = %v, want %v", a, b, got, wantInter)
		}
		if got := a.SubsetOf(&b); got != wantSubset {
			t.Fatalf("SubsetOf(%v, %v) = %v, want %v", a, b, got, wantSubset)
		}
		diff := a.Clone()
		diff.Subtract(&b)
		for id := range rb {
			delete(ra, id)
		}
		if got, want := diff.Members(), refMembers(ra); !reflect.DeepEqual(got, want) {
			t.Fatalf("Subtract: got %v, want %v", got, want)
		}
	}
}

// TestCloneIsIndependent verifies mutating a clone never touches the
// original (the conflict log depends on this).
func TestCloneIsIndependent(t *testing.T) {
	s := Of(3, 70, 140)
	c := s.Clone()
	c.Add(5)
	c.Remove(70)
	if got := s.Members(); !reflect.DeepEqual(got, []int{3, 70, 140}) {
		t.Fatalf("original mutated through clone: %v", got)
	}
	if got := c.Members(); !reflect.DeepEqual(got, []int{3, 5, 140}) {
		t.Fatalf("clone = %v", got)
	}
}

// TestIterRemoveDuringIteration pins the documented guarantee the
// reconcile fan-out relies on: removing the member just returned does
// not perturb the remaining sequence.
func TestIterRemoveDuringIteration(t *testing.T) {
	s := Of(0, 5, 63, 64, 90, 127, 128, 300)
	var seen []int
	for it := s.Iter(); ; {
		id, ok := it.Next()
		if !ok {
			break
		}
		seen = append(seen, id)
		if id != 90 { // keep one member in place, drop the rest
			s.Remove(id)
		}
	}
	if want := []int{0, 5, 63, 64, 90, 127, 128, 300}; !reflect.DeepEqual(seen, want) {
		t.Fatalf("iteration saw %v, want %v", seen, want)
	}
	if got := s.Members(); !reflect.DeepEqual(got, []int{90}) {
		t.Fatalf("after removal Members() = %v, want [90]", got)
	}
}

// TestLow64MatchesFlatMask checks the inline word is bit-compatible with
// the historical flat uint64 representation for IDs below 64.
func TestLow64MatchesFlatMask(t *testing.T) {
	s := Of(0, 1, 3, 63)
	if got, want := s.Low64(), uint64(1)|1<<1|1<<3|1<<63; got != want {
		t.Fatalf("Low64() = %#x, want %#x", got, want)
	}
	s.Add(64) // spill members must not leak into the inline word
	if got, want := s.Low64(), uint64(1)|1<<1|1<<3|1<<63; got != want {
		t.Fatalf("Low64() after spill Add = %#x, want %#x", got, want)
	}
}

// TestArenaSets checks arena-carved sets are empty, pre-sized, and fully
// independent of each other.
func TestArenaSets(t *testing.T) {
	if w := NewArena(63).Words(); w != 0 {
		t.Fatalf("Words(maxID=63) = %d, want 0 (inline only)", w)
	}
	if s := NewArena(63).Make(); len(s.spill) != 0 {
		t.Fatalf("P<=64 arena set has spill %v", s.spill)
	}
	ar := NewArena(255)
	if ar.Words() != 3 {
		t.Fatalf("Words(maxID=255) = %d, want 3", ar.Words())
	}
	// More sets than one chunk holds, so chunk refill is exercised.
	sets := make([]Set, 3*arenaChunkSets/2)
	for i := range sets {
		sets[i] = ar.Make()
		if !sets[i].Empty() {
			t.Fatalf("arena set %d not empty", i)
		}
	}
	for i := range sets {
		sets[i].Add(64 + i%192)
	}
	for i := range sets {
		if got := sets[i].Members(); !reflect.DeepEqual(got, []int{64 + i%192}) {
			t.Fatalf("set %d = %v, want [%d] (aliasing between arena sets?)", i, got, 64+i%192)
		}
	}
}

func TestString(t *testing.T) {
	if got := Of().String(); got != "{}" {
		t.Errorf("empty String() = %q", got)
	}
	if got := Of(2, 0, 65).String(); got != "{0,2,65}" {
		t.Errorf("String() = %q, want {0,2,65}", got)
	}
}

// FuzzOps feeds arbitrary op streams (2 bytes per op: opcode + ID) to a
// Set and the map model, biasing IDs to straddle the spill boundary.
func FuzzOps(f *testing.F) {
	f.Add([]byte{0, 63, 0, 64, 1, 63, 0, 65, 1, 64})
	f.Add([]byte{0, 0, 0, 127, 0, 128, 2, 0, 0, 63})
	f.Add([]byte{0, 10, 0, 200, 1, 200, 0, 255})
	f.Fuzz(func(t *testing.T, ops []byte) {
		var s Set
		ref := refSet{}
		for i := 0; i+1 < len(ops); i += 2 {
			id := int(ops[i+1])
			switch ops[i] % 3 {
			case 0:
				s.Add(id)
				ref[id] = true
			case 1:
				s.Remove(id)
				delete(ref, id)
			case 2:
				s.Clear()
				ref = refSet{}
			}
			if got, want := s.Count(), len(ref); got != want {
				t.Fatalf("op %d: Count() = %d, want %d", i, got, want)
			}
		}
		if got, want := s.Members(), refMembers(ref); !reflect.DeepEqual(got, want) {
			t.Fatalf("Members() = %v, want %v", got, want)
		}
		for id := range ref {
			if !s.Contains(id) {
				t.Fatalf("Contains(%d) = false, want true", id)
			}
		}
	})
}
