package stache

import (
	"testing"

	"lcm/internal/cost"
	"lcm/internal/memsys"
	"lcm/internal/tempest"
)

func newMachine(t *testing.T, p int, blocks uint64) (*tempest.Machine, *memsys.Region, *Protocol) {
	t.Helper()
	m := tempest.New(p, 32, cost.Default())
	r := m.AS.Alloc("data", blocks*32, memsys.KindCoherent, memsys.Interleaved)
	pr := New()
	m.SetProtocol(pr)
	m.Freeze()
	return m, r, pr
}

func TestReadSharing(t *testing.T) {
	m, r, pr := newMachine(t, 4, 8)
	m.AS.HomeBytes(r.Base, 4)[0] = 42
	m.Run(func(n *tempest.Node) {
		if v := n.ReadU32(r.Base); v != 42 {
			t.Errorf("node %d read %d", n.ID, v)
		}
	})
	state, _, sharers := pr.inspect(m.AS.Block(r.Base))
	if state != "shared" || sharers != 0xF {
		t.Fatalf("state %s sharers %#x, want shared 0xf", state, sharers)
	}
	c := m.TotalCounters()
	if c.Misses != 4 {
		t.Fatalf("misses = %d, want 4", c.Misses)
	}
	// Home of block 0 under interleaving is node 0: one local fill.
	if c.LocalFills != 1 || c.RemoteMisses != 3 {
		t.Fatalf("local %d remote %d, want 1, 3", c.LocalFills, c.RemoteMisses)
	}
}

func TestWriteInvalidatesSharers(t *testing.T) {
	m, r, pr := newMachine(t, 4, 8)
	b := m.AS.Block(r.Base)
	m.Run(func(n *tempest.Node) {
		n.ReadU32(r.Base) // all nodes share
		n.Barrier()
		if n.ID == 2 {
			n.WriteU32(r.Base, 99)
		}
		n.Barrier()
	})
	state, owner, sharers := pr.inspect(b)
	if state != "excl" || owner != 2 || sharers != 0 {
		t.Fatalf("state=%s owner=%d sharers=%#x", state, owner, sharers)
	}
	// Every other node's copy must have been invalidated.
	for i, n := range m.Nodes {
		l := n.Line(b)
		want := tempest.TagInvalid
		if i == 2 {
			want = tempest.TagReadWrite
		}
		if l.Tag() != want {
			t.Fatalf("node %d tag %s", i, tempest.TagName(l.Tag()))
		}
	}
	c := m.TotalCounters()
	if c.Upgrades != 1 {
		t.Fatalf("upgrades = %d, want 1 (writer held a read-only copy)", c.Upgrades)
	}
	if c.InvalidationsSent != 3 {
		t.Fatalf("invalidations = %d, want 3", c.InvalidationsSent)
	}
}

func TestThreeHopReadRecallsDirty(t *testing.T) {
	m, r, pr := newMachine(t, 4, 8)
	b := m.AS.Block(r.Base)
	m.Run(func(n *tempest.Node) {
		if n.ID == 1 {
			n.WriteU32(r.Base, 7) // dirty exclusive at node 1
		}
		n.Barrier()
		if n.ID == 3 {
			if v := n.ReadU32(r.Base); v != 7 {
				t.Errorf("read %d, want 7 from dirty owner", v)
			}
		}
		n.Barrier()
	})
	state, _, sharers := pr.inspect(b)
	if state != "shared" || sharers != (1<<1|1<<3) {
		t.Fatalf("state=%s sharers=%#x, want shared nodes 1,3", state, sharers)
	}
	// The home image must now hold the written value.
	if got := m.AS.HomeBytes(r.Base, 4)[0]; got != 7 {
		t.Fatalf("home image %d, want 7", got)
	}
	// Old owner keeps a read-only copy.
	if m.Nodes[1].Line(b).Tag() != tempest.TagReadOnly {
		t.Fatal("old owner not downgraded to read-only")
	}
}

func TestThreeHopWriteMigratesOwnership(t *testing.T) {
	m, r, pr := newMachine(t, 4, 8)
	b := m.AS.Block(r.Base)
	m.Run(func(n *tempest.Node) {
		if n.ID == 0 {
			n.WriteU32(r.Base, 5)
		}
		n.Barrier()
		if n.ID == 3 {
			n.WriteU32(r.Base+4, 6) // migrate exclusive 0 -> 3
		}
		n.Barrier()
	})
	state, owner, _ := pr.inspect(b)
	if state != "excl" || owner != 3 {
		t.Fatalf("state=%s owner=%d, want excl 3", state, owner)
	}
	if m.Nodes[0].Line(b).Tag() != tempest.TagInvalid {
		t.Fatal("old owner not invalidated")
	}
	// Node 3's copy must carry node 0's value.
	l := m.Nodes[3].Line(b)
	if l.Data[0] != 5 {
		t.Fatalf("migrated copy lost the dirty value: %d", l.Data[0])
	}
}

func TestExclusiveReuseIsSilent(t *testing.T) {
	m, r, _ := newMachine(t, 2, 8)
	m.Run(func(n *tempest.Node) {
		if n.ID == 0 {
			for i := 0; i < 100; i++ {
				n.WriteU32(r.Base, uint32(i))
				_ = n.ReadU32(r.Base)
			}
		}
	})
	c := m.TotalCounters()
	if c.Misses != 1 {
		t.Fatalf("misses = %d, want 1 (first write only)", c.Misses)
	}
	if c.Hits != 200 {
		t.Fatalf("hits = %d, want 200", c.Hits)
	}
}

func TestPingPongCountsPerTransfer(t *testing.T) {
	// Two nodes alternately write the same block in barrier-separated
	// steps: every step after the first transfers ownership (3-hop).
	m, r, _ := newMachine(t, 2, 8)
	const steps = 10
	m.Run(func(n *tempest.Node) {
		for s := 0; s < steps; s++ {
			if s%2 == n.ID {
				n.WriteU32(r.Base, uint32(s))
			}
			n.Barrier()
		}
	})
	c := m.TotalCounters()
	if c.Misses != steps {
		t.Fatalf("misses = %d, want %d (one transfer per step)", c.Misses, steps)
	}
}

func TestDirectivesAreCoherentNoOps(t *testing.T) {
	m, r, _ := newMachine(t, 2, 8)
	m.Run(func(n *tempest.Node) {
		if n.ID == 0 {
			n.Mark(r.Base) // behaves as write preparation
			n.WriteU32(r.Base, 3)
		}
		n.FlushCopies() // no-op
		n.ReconcileCopies()
		// After "reconciliation" the other node reads the value through
		// the ordinary protocol.
		if n.ID == 1 {
			if v := n.ReadU32(r.Base); v != 3 {
				t.Errorf("read %d, want 3", v)
			}
		}
	})
	c := m.TotalCounters()
	if c.Barriers != 2 {
		t.Fatalf("barriers = %d, want 2 (ReconcileCopies is one barrier per node)", c.Barriers)
	}
}

func TestHomeWriteLocalFill(t *testing.T) {
	m, r, _ := newMachine(t, 4, 8)
	// Block 1 is homed at node 1 under interleaving.
	a := r.Base + 32
	m.Run(func(n *tempest.Node) {
		if n.ID == 1 {
			n.WriteU32(a, 1)
		}
	})
	c := m.TotalCounters()
	if c.LocalFills != 1 || c.RemoteMisses != 0 {
		t.Fatalf("local %d remote %d, want 1, 0", c.LocalFills, c.RemoteMisses)
	}
}

func TestVirtualTimeOrdering(t *testing.T) {
	// A remote miss must cost more than a local fill, which must cost
	// more than a hit, under the default model.
	m, r, _ := newMachine(t, 2, 8)
	var remote, local, hit int64
	m.Run(func(n *tempest.Node) {
		if n.ID != 0 {
			return
		}
		c0 := n.Clock()
		n.ReadU32(r.Base) // home 0: local fill
		local = n.Clock() - c0
		c0 = n.Clock()
		n.ReadU32(r.Base + 32) // home 1: remote
		remote = n.Clock() - c0
		c0 = n.Clock()
		n.ReadU32(r.Base + 4) // hit
		hit = n.Clock() - c0
	})
	if !(remote > local && local > hit && hit > 0) {
		t.Fatalf("cost ordering violated: remote=%d local=%d hit=%d", remote, local, hit)
	}
}
