// Package stache implements the baseline user-level coherence protocol of
// the paper: Stache, a sequentially consistent, directory-based,
// write-invalidate protocol in which a processor's local memory acts as a
// large, fully associative cache for remote data (Reinhardt, Larus & Wood,
// "Tempest and Typhoon", ISCA 1994).
//
// In RSM terms (Section 3 of the LCM paper), Stache is the degenerate
// instance of Reconcilable Shared Memory: its request policy permits at
// most one outstanding writable copy of a block, and its reconciliation
// function simply makes a returned writable copy the new value of the
// location.
//
// The simulation does not model capacity evictions: the paper's Stache
// backs cached blocks with all of local memory, so for the benchmark sizes
// used here a block fetched by a node stays resident until the protocol
// invalidates it.  A home node's own blocks live in the home memory image
// and cost a local fill on first touch.
package stache

import (
	"fmt"

	"lcm/internal/memsys"
	"lcm/internal/nodeset"
	"lcm/internal/tempest"
	"lcm/internal/trace"
)

// dirState is the home directory state of one block.
type dirState uint8

const (
	// stateIdle: only the home memory image is valid; no cached copies.
	stateIdle dirState = iota
	// stateShared: one or more read-only copies; home image valid.
	stateShared
	// stateExcl: exactly one read-write copy; home image stale.
	stateExcl
)

// entry is one block's home directory record.  Guarded by the block's lock.
type entry struct {
	sharers nodeset.Set // nodes holding read-only copies
	owner   int32       // exclusive owner when state == stateExcl
	state   dirState
}

// Protocol is the Stache coherence protocol.  One instance serves one
// machine.  It also serves as the coherent-region fallback inside the LCM
// protocol (internal/core).
type Protocol struct {
	m       *tempest.Machine
	entries []entry
}

// New creates a Stache protocol instance.
func New() *Protocol { return &Protocol{} }

// Name implements tempest.Protocol.
func (p *Protocol) Name() string { return "stache" }

// Attach implements tempest.Protocol.
func (p *Protocol) Attach(m *tempest.Machine) {
	p.m = m
	p.entries = make([]entry, m.AS.NumBlocks())
	// P > 64 spills the sharer sets past their inline word; carve the
	// spill storage from one arena (see internal/nodeset).
	if ar := nodeset.NewArena(m.P - 1); ar.Words() > 0 {
		for i := range p.entries {
			p.entries[i].sharers = ar.Make()
		}
	}
}

// Entry state inspection for tests: returns (state name, owner, and the
// sharer set's inline word — the tests drive machines of at most 64
// nodes, where the word is the whole set).
func (p *Protocol) inspect(b memsys.BlockID) (string, int, uint64) {
	e := &p.entries[b]
	switch e.state {
	case stateIdle:
		return "idle", -1, e.sharers.Low64()
	case stateShared:
		return "shared", -1, e.sharers.Low64()
	case stateExcl:
		return "excl", int(e.owner), e.sharers.Low64()
	}
	return "?", -1, 0
}

// chargeMiss charges the requester for a data-carrying miss and counts it.
// threeHop records whether the dirty remote copy at owner had to be
// consulted; owner is ignored otherwise.
func (p *Protocol) chargeMiss(n *tempest.Node, home, owner int, threeHop bool) {
	m := p.m
	n.Ctr.Misses++
	if home == n.ID && !threeHop {
		n.Charge(m.Cost.LocalFill)
		n.Ctr.LocalFills++
		return
	}
	n.Charge(m.Net.RoundTrip(n.ID, home, int64(m.AS.BlockSize), n.Clock(), &n.Ctr.Net))
	n.Ctr.RemoteMisses++
	if threeHop {
		n.Charge(m.Net.Forward(home, owner, n.Clock(), &n.Ctr.Net))
	}
	if home != n.ID {
		m.Nodes[home].ChargeRemote(m.Cost.HomeOccupancy)
	}
}

// recallDirty downgrades or invalidates the exclusive owner's copy.
// Coherent stores write through to the home image (see tempest), so the
// home already holds the owner's data; only the owner's access rights
// change.  Caller holds b's lock.
func (p *Protocol) recallDirty(b memsys.BlockID, e *entry, downgradeTo tempest.Tag) {
	owner := p.m.Nodes[int(e.owner)]
	l := owner.Line(b)
	if l == nil {
		panic(fmt.Sprintf("stache: directory says node %d owns block %d but it has no line", e.owner, b))
	}
	l.SetTag(downgradeTo)
}

// ReadFault implements tempest.Protocol: obtain a read-only copy.
func (p *Protocol) ReadFault(n *tempest.Node, b memsys.BlockID) *tempest.Line {
	m := p.m
	home := m.AS.HomeOf(b)
	n.SchedYieldFault(b) // deterministic handler-entry order (see internal/sched)
	m.Lock(b)
	defer m.Unlock(b)
	e := &p.entries[b]
	threeHop := false
	owner := home
	if e.state == stateExcl {
		if int(e.owner) == n.ID {
			// Our own line must still be readable; a read fault here
			// means the tag was dropped without telling the
			// directory, which is a protocol bug.
			panic(fmt.Sprintf("stache: node %d read fault on its own exclusive block %d", n.ID, b))
		}
		owner = int(e.owner)
		p.recallDirty(b, e, tempest.TagReadOnly)
		e.sharers.Clear()
		e.sharers.Add(int(e.owner))
		e.state = stateShared
		threeHop = true
	}
	l := n.Install(b, m.AS.HomeData(b), tempest.TagReadOnly)
	e.sharers.Add(n.ID)
	e.state = stateShared
	p.chargeMiss(n, home, owner, threeHop)
	if t := m.Trace; t != nil {
		t.Record(n.ID, n.Clock(), trace.ReadMiss, uint32(b), 0)
	}
	return l
}

// WriteFault implements tempest.Protocol: obtain the (single) writable
// copy, invalidating all other copies.
func (p *Protocol) WriteFault(n *tempest.Node, b memsys.BlockID) *tempest.Line {
	m := p.m
	home := m.AS.HomeOf(b)
	n.SchedYieldFault(b) // deterministic handler-entry order (see internal/sched)
	m.Lock(b)
	defer m.Unlock(b)
	e := &p.entries[b]

	if e.state == stateExcl {
		if int(e.owner) == n.ID {
			panic(fmt.Sprintf("stache: node %d write fault on its own exclusive block %d", n.ID, b))
		}
		// Three-hop: recall the dirty copy, invalidate the old owner.
		oldOwner := int(e.owner)
		p.recallDirty(b, e, tempest.TagInvalid)
		n.Ctr.InvalidationsSent++
		n.Charge(m.Net.Invalidate(n.ID, oldOwner, n.Clock(), &n.Ctr.Net))
		e.sharers.Clear()
		e.state = stateIdle
		l := n.Install(b, m.AS.HomeData(b), tempest.TagReadWrite)
		e.state = stateExcl
		e.owner = int32(n.ID)
		p.chargeMiss(n, home, oldOwner, true)
		if t := m.Trace; t != nil {
			t.Record(n.ID, n.Clock(), trace.WriteMiss, uint32(b), 0)
		}
		return l
	}

	// Invalidate outstanding read-only copies (other than ours).
	p.invalidateSharers(n, b, e)

	var l *tempest.Line
	if e.sharers.Contains(n.ID) || hasValidLine(n, b) {
		// Upgrade in place: we already hold the current data read-only.
		l = n.Line(b)
		l.SetTag(tempest.TagReadWrite)
		n.Ctr.Upgrades++
		if home == n.ID {
			n.Charge(m.Cost.MarkLocal)
		} else {
			n.Charge(m.Net.Upgrade(n.ID, home, n.Clock(), &n.Ctr.Net))
			p.m.Nodes[home].ChargeRemote(m.Cost.HomeOccupancy)
		}
	} else {
		l = n.Install(b, m.AS.HomeData(b), tempest.TagReadWrite)
		p.chargeMiss(n, home, home, false)
	}
	if t := m.Trace; t != nil {
		k := trace.WriteMiss
		if l.Tag() == tempest.TagReadWrite && e.sharers.Contains(n.ID) {
			k = trace.Upgrade
		}
		t.Record(n.ID, n.Clock(), k, uint32(b), 0)
	}
	e.sharers.Clear()
	e.state = stateExcl
	e.owner = int32(n.ID)
	return l
}

// hasValidLine reports whether n holds a readable line for b (used when the
// directory lost track, which cannot happen under the invariants but keeps
// the upgrade path robust).
func hasValidLine(n *tempest.Node, b memsys.BlockID) bool {
	l := n.Line(b)
	return l != nil && l.Tag() >= tempest.TagReadOnly
}

// invalidateSharers invalidates all read-only copies other than n's own and
// charges n for them.  Caller holds b's lock.  Returns the count.
func (p *Protocol) invalidateSharers(n *tempest.Node, b memsys.BlockID, e *entry) int {
	count := 0
	for it := e.sharers.Iter(); ; {
		id, ok := it.Next()
		if !ok {
			break
		}
		if id == n.ID {
			continue
		}
		if l := p.m.Nodes[id].Line(b); l != nil {
			l.SetTag(tempest.TagInvalid)
		}
		if t := p.m.Trace; t != nil {
			t.Record(n.ID, n.Clock(), trace.Invalidate, uint32(b), int32(id))
		}
		n.Charge(p.m.Net.Invalidate(n.ID, id, n.Clock(), &n.Ctr.Net))
		count++
	}
	n.Ctr.InvalidationsSent += int64(count)
	return count
}

// Evict implements tempest.Protocol: drop n's copy of b, updating the
// directory.  Coherent stores write through, so the home image is already
// current and even a dirty exclusive copy can be dropped after charging
// the write-back message.
func (p *Protocol) Evict(n *tempest.Node, b memsys.BlockID) bool {
	m := p.m
	n.SchedYieldEvict(b) // deterministic handler-entry order (see internal/sched)
	m.Lock(b)
	defer m.Unlock(b)
	l := n.Line(b)
	if l == nil || l.Tag() == tempest.TagInvalid {
		return true
	}
	e := &p.entries[b]
	switch {
	case e.state == stateExcl && int(e.owner) == n.ID:
		e.state = stateIdle
		e.sharers.Clear()
		// Dirty write-back message (no payload charge: coherent stores
		// wrote the data through to the home image as they happened).
		n.Charge(m.Net.Flush(n.ID, m.AS.HomeOf(b), 0, n.Clock(), &n.Ctr.Net))
	default:
		e.sharers.Remove(n.ID)
		if e.sharers.Empty() && e.state == stateShared {
			e.state = stateIdle
		}
		n.Charge(m.Cost.MarkLocal) // silent drop of a clean copy
	}
	l.SetTag(tempest.TagInvalid)
	return true
}

// DrainToHome is retained for API symmetry with earlier revisions: since
// coherent stores write through to the home image, the home copy of every
// block is already current and there is nothing to drain.
func (p *Protocol) DrainToHome() {}

// MarkModification implements tempest.Protocol.  Under plain coherent
// memory the directive degenerates to "make the block writable", which is
// what the C** compiler's explicit-copying code needs anyway.
func (p *Protocol) MarkModification(n *tempest.Node, addr memsys.Addr) {
	b := p.m.AS.Block(addr)
	if l := n.Line(b); l == nil || l.Tag() < tempest.TagReadWrite {
		p.WriteFault(n, b)
	}
}

// FlushCopies implements tempest.Protocol.  Coherent memory has no private
// copies to flush; this is a no-op.
func (p *Protocol) FlushCopies(*tempest.Node) {}

// ReconcileCopies implements tempest.Protocol.  Coherent memory is always
// reconciled; the directive degenerates to the global barrier, which keeps
// workload code identical across memory systems.
func (p *Protocol) ReconcileCopies(n *tempest.Node) { n.Barrier() }

var _ tempest.Protocol = (*Protocol)(nil)
