package stache

import (
	"fmt"

	"lcm/internal/memsys"
	"lcm/internal/tempest"
)

// CheckInvariants audits the directory against every node's access tags
// and returns the first violation found, or nil.  It may only run while
// the machine is quiescent (between Run calls or inside a barrier window).
//
// Invariants of the Stache protocol, per block:
//
//   - stateIdle: no node holds a readable copy.
//   - stateShared: exactly the nodes in the sharer mask hold copies, all
//     read-only.
//   - stateExcl: exactly the owner holds a copy, read-write; nobody else
//     holds any access.
//   - No line anywhere carries TagPrivate (that tag belongs to LCM).
//
// The audit runs in two passes.  The block-major pass checks the sparse
// positive obligations (recorded sharers and owners really hold their
// copies).  The node-major pass checks every held copy against the
// directory; it scans each node's line table sequentially, which walks
// memory linearly instead of striding across all nodes' tables per block.
func (p *Protocol) CheckInvariants() error {
	for bi := range p.entries {
		b := memsys.BlockID(bi)
		e := &p.entries[bi]
		if e.state == stateIdle {
			continue
		}
		// When embedded inside LCM, this protocol only governs
		// coherent regions; loose blocks legitimately carry private
		// tags and are audited by the LCM checker.
		if p.m.AS.RegionOfBlock(b).Kind != memsys.KindCoherent {
			continue
		}
		if e.state == stateExcl {
			if l := p.m.Nodes[int(e.owner)].Line(b); l == nil || l.Tag() != tempest.TagReadWrite {
				return fmt.Errorf("stache: block %d owner %d has tag %s", b, e.owner, lineTagName(l))
			}
			continue
		}
		// Word-skipping member iteration: O(sharers), not O(P) per block.
		for it := e.sharers.Iter(); ; {
			id, ok := it.Next()
			if !ok {
				break
			}
			if l := p.m.Nodes[id].Line(b); l == nil || l.Tag() != tempest.TagReadOnly {
				return fmt.Errorf("stache: block %d sharer %d has tag %s", b, id, lineTagName(l))
			}
		}
	}
	for id, nd := range p.m.Nodes {
		for _, chunk := range nd.InstalledLines() {
			for li := range chunk {
				l := &chunk[li]
				if l.Data == nil {
					break // unallocated arena tail
				}
				b := l.Block()
				tag := l.Tag()
				if tag == tempest.TagInvalid || p.m.AS.RegionOfBlock(b).Kind != memsys.KindCoherent {
					continue
				}
				if tag == tempest.TagPrivate {
					return fmt.Errorf("stache: node %d holds private tag on block %d", id, b)
				}
				switch e := &p.entries[b]; e.state {
				case stateIdle:
					return fmt.Errorf("stache: idle block %d readable at node %d (%s)", b, id, tempest.TagName(tag))
				case stateShared:
					if !e.sharers.Contains(id) {
						return fmt.Errorf("stache: block %d non-sharer %d has tag %s", b, id, tempest.TagName(tag))
					}
				case stateExcl:
					if id != int(e.owner) {
						return fmt.Errorf("stache: block %d non-owner %d has tag %s", b, id, tempest.TagName(tag))
					}
				}
			}
		}
	}
	return nil
}

// lineTagName renders a possibly-absent line's tag for error messages.
func lineTagName(l *tempest.Line) string {
	if l == nil {
		return "none"
	}
	return tempest.TagName(l.Tag())
}
