package stache

import (
	"fmt"

	"lcm/internal/memsys"
	"lcm/internal/tempest"
)

// CheckInvariants audits the directory against every node's access tags
// and returns the first violation found, or nil.  It may only run while
// the machine is quiescent (between Run calls or inside a barrier window).
//
// Invariants of the Stache protocol, per block:
//
//   - stateIdle: no node holds a readable copy.
//   - stateShared: exactly the nodes in the sharer mask hold copies, all
//     read-only.
//   - stateExcl: exactly the owner holds a copy, read-write; nobody else
//     holds any access.
//   - No line anywhere carries TagPrivate (that tag belongs to LCM).
func (p *Protocol) CheckInvariants() error {
	for bi := range p.entries {
		b := memsys.BlockID(bi)
		// When embedded inside LCM, this protocol only governs
		// coherent regions; loose blocks legitimately carry private
		// tags and are audited by the LCM checker.
		if p.m.AS.RegionOfBlock(b).Kind != memsys.KindCoherent {
			continue
		}
		if err := p.checkBlock(b); err != nil {
			return err
		}
	}
	return nil
}

// checkBlock verifies one block's directory entry.
func (p *Protocol) checkBlock(b memsys.BlockID) error {
	e := &p.entries[b]
	for id, nd := range p.m.Nodes {
		l := nd.Line(b)
		tag := tempest.TagInvalid
		if l != nil {
			tag = l.Tag()
		}
		if tag == tempest.TagPrivate {
			return fmt.Errorf("stache: node %d holds private tag on block %d", id, b)
		}
		bit := uint64(1) << uint(id)
		switch e.state {
		case stateIdle:
			if tag != tempest.TagInvalid {
				return fmt.Errorf("stache: idle block %d readable at node %d (%s)", b, id, tempest.TagName(tag))
			}
		case stateShared:
			switch {
			case e.sharers&bit != 0 && tag != tempest.TagReadOnly:
				return fmt.Errorf("stache: block %d sharer %d has tag %s", b, id, tempest.TagName(tag))
			case e.sharers&bit == 0 && tag != tempest.TagInvalid:
				return fmt.Errorf("stache: block %d non-sharer %d has tag %s", b, id, tempest.TagName(tag))
			}
		case stateExcl:
			switch {
			case id == int(e.owner) && tag != tempest.TagReadWrite:
				return fmt.Errorf("stache: block %d owner %d has tag %s", b, id, tempest.TagName(tag))
			case id != int(e.owner) && tag != tempest.TagInvalid:
				return fmt.Errorf("stache: block %d non-owner %d has tag %s", b, id, tempest.TagName(tag))
			}
		}
	}
	return nil
}
