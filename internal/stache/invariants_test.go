package stache

import (
	"testing"
	"testing/quick"

	"lcm/internal/cost"
	"lcm/internal/memsys"
	"lcm/internal/tempest"
)

func TestInvariantsAfterScriptedScenarios(t *testing.T) {
	m, r, pr := newMachine(t, 4, 8)
	m.Run(func(n *tempest.Node) {
		// Read sharing, upgrade, 3-hop read, 3-hop write, barriers.
		n.ReadU32(r.Base)
		n.Barrier()
		if n.ID == 1 {
			n.WriteU32(r.Base, 7)
		}
		n.Barrier()
		if n.ID == 3 {
			_ = n.ReadU32(r.Base)
		}
		n.Barrier()
		if n.ID == 0 {
			n.WriteU32(r.Base+32, 9)
		}
		n.Barrier()
		if n.ID == 2 {
			n.WriteU32(r.Base+36, 1) // 3-hop write migration
		}
		n.Barrier()
	})
	if err := pr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// Property: any barrier-separated random single-writer access pattern
// leaves the directory consistent with the tags, and every read observes
// the latest barrier-ordered write (sequential consistency at phase
// granularity).
func TestStacheSequentialConsistencyProperty(t *testing.T) {
	f := func(seed uint64) bool {
		const p, words, phases = 4, 16, 8
		x := seed
		next := func(mod int) int {
			x = x*6364136223846793005 + 1442695040888963407
			return int((x >> 33) % uint64(mod))
		}
		m := tempest.New(p, 32, cost.Default())
		r := m.AS.Alloc("d", words*4, memsys.KindCoherent, memsys.Interleaved)
		pr := New()
		m.SetProtocol(pr)
		m.Freeze()

		// Script: each phase picks one writer per word (may be none)
		// and a value; all nodes read all words in the next phase.
		type wr struct{ node, word, val int }
		var script [phases][]wr
		model := make([]int, words)
		expect := make([][phases + 1][]int, 1)
		_ = expect
		modelAt := make([][]int, phases+1)
		modelAt[0] = append([]int(nil), model...)
		for ph := 0; ph < phases; ph++ {
			used := map[int]bool{}
			for k := 0; k < 4; k++ {
				w := next(words)
				if used[w] {
					continue
				}
				used[w] = true
				n := next(p)
				v := next(1 << 20)
				script[ph] = append(script[ph], wr{n, w, v})
				model[w] = v
			}
			modelAt[ph+1] = append([]int(nil), model...)
		}

		ok := true
		m.Run(func(n *tempest.Node) {
			for ph := 0; ph < phases; ph++ {
				for _, s := range script[ph] {
					if s.node == n.ID {
						n.WriteU32(r.Base+memsys.Addr(s.word*4), uint32(s.val))
					}
				}
				n.Barrier()
				// Every node verifies the phase's final state.
				for w := 0; w < words; w++ {
					if got := n.ReadU32(r.Base + memsys.Addr(w*4)); got != uint32(modelAt[ph+1][w]) {
						ok = false
					}
				}
				n.Barrier()
			}
		})
		if !ok {
			return false
		}
		return pr.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestInvariantsAtWideMachines re-runs the directory audit on machines
// whose sharer sets spill past the inline 64-bit word (P=65 and P=256):
// all nodes share a block, a high-ID owner (> 63) takes it exclusive —
// a cross-word invalidation fan-out — and the sharing re-forms through
// a 3-hop recall from the spilled owner.
func TestInvariantsAtWideMachines(t *testing.T) {
	for _, p := range []int{65, 256} {
		m, r, pr := newMachine(t, p, 8)
		writer := p - 1 // lives in the spill words
		ok := true
		m.Run(func(n *tempest.Node) {
			_ = n.ReadU32(r.Base)
			n.Barrier()
			if n.ID == writer {
				n.WriteU32(r.Base, 1234)
			}
			n.Barrier()
			if n.ReadU32(r.Base) != 1234 { // 3-hop recall from the spilled owner
				ok = false
			}
			n.Barrier()
		})
		if !ok {
			t.Fatalf("P=%d: read did not observe the spilled owner's write", p)
		}
		if err := pr.CheckInvariants(); err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
	}
}
