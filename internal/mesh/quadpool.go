// Package mesh implements the adaptive-mesh substrate of Section 6.2: a
// two-dimensional grid of root cells, each the root of a quad-tree that
// selectively subdivides where the solution needs finer detail (the
// "electric potentials in a box" program).
//
// Cells live in aggregates in the simulated global address space, so every
// traversal and update flows through the active memory system.  To keep
// simulated runs deterministic across memory systems and schedules, each
// root cell owns a fixed sub-pool of cell slots sized for a full tree of
// the maximum depth, and subdivision bump-allocates inside the owning
// sub-pool only.  (The paper's program allocates quad-tree nodes from a
// per-processor heap; a deterministic per-subtree arena exercises the same
// memory-system behaviour without making miss counts depend on goroutine
// interleaving.)
package mesh

import (
	"fmt"

	"lcm/internal/core"
	"lcm/internal/cstar"
	"lcm/internal/memsys"
	"lcm/internal/tempest"
)

// NoChild marks a leaf in the children index.
const NoChild = int32(-1)

// SubtreeSlots returns the number of cell slots a root cell needs for a
// full quad-tree of the given maximum depth (root at depth 0):
// 1 + 4 + 16 + ... + 4^maxDepth.
func SubtreeSlots(maxDepth int) int {
	slots, pow := 0, 1
	for d := 0; d <= maxDepth; d++ {
		slots += pow
		pow *= 4
	}
	return slots
}

// QuadPool is the cell storage for an adaptive mesh: values, child links
// and per-subtree allocation counts, all in simulated memory.
//
// Cell identifiers are absolute pool indices.  Root cell (i, j) of an
// R x C mesh has id (i*C+j)*SubtreeSlots(maxDepth).
type QuadPool struct {
	M        *tempest.Machine
	Rows     int
	Cols     int
	MaxDepth int
	slots    int // logical per-subtree slot count
	stride   int // slots padded to a whole number of blocks
	cstride  int // per-root Count stride (one block per root)

	// Val holds cell values; under the Copying baseline the workload
	// allocates a second QuadPool view sharing topology (see NewShadow).
	Val *cstar.VectorF32
	// Child holds the pool index of the first of four children, or
	// NoChild for leaves.  Children are allocated as four consecutive
	// slots.
	Child *cstar.VectorI32
	// Count holds, per root cell, the number of slots allocated in its
	// sub-pool (at least 1: the root itself).
	Count *cstar.VectorI32
}

// New allocates a QuadPool with the given value policy for Val, and the
// same policy for topology (Child/Count), which the paper's program also
// updates inside parallel functions.
func New(m *tempest.Machine, name string, rows, cols, maxDepth int, pol core.Policy) *QuadPool {
	slots := SubtreeSlots(maxDepth)
	// Pad each sub-pool to a whole number of blocks so distinct root
	// cells (distinct writers) never share a block, and give each root
	// its own Count block: the simulator requires a single writer per
	// block per phase, and the paper's per-processor heaps had the same
	// effect.
	per := int(m.AS.BlockSize / 4)
	stride := (slots + per - 1) / per * per
	n := rows * cols * stride
	q := &QuadPool{M: m, Rows: rows, Cols: cols, MaxDepth: maxDepth,
		slots: slots, stride: stride, cstride: per}
	q.Val = cstar.NewVectorF32(m, name+".val", n, pol, memsys.Interleaved)
	q.Child = cstar.NewVectorI32(m, name+".child", n, pol, memsys.Interleaved)
	q.Count = cstar.NewVectorI32(m, name+".count", rows*cols*per, pol, memsys.Interleaved)
	return q
}

// NewShadow allocates a second value array for the Copying baseline's
// two-copy strategy.  Topology (Child/Count) is shared with q.
func NewShadow(m *tempest.Machine, name string, q *QuadPool, pol core.Policy) *QuadPool {
	s := *q
	s.Val = cstar.NewVectorF32(m, name+".val", q.Val.Len(), pol, memsys.Interleaved)
	return &s
}

// InitRoots sets every root cell to a leaf with value 0 and allocation
// count 1, sequentially (home image), for use before the machine runs.
func (q *QuadPool) InitRoots() {
	for i := 0; i < q.Val.Len(); i++ {
		q.Child.Poke(i, NoChild)
	}
	for c := 0; c < q.Rows*q.Cols; c++ {
		q.Count.Poke(c*q.cstride, 1)
	}
}

// RootID returns the pool index of root cell (i, j).
func (q *QuadPool) RootID(i, j int) int32 {
	if i < 0 || i >= q.Rows || j < 0 || j >= q.Cols {
		panic(fmt.Sprintf("mesh: root (%d,%d) out of range", i, j))
	}
	return int32((i*q.Cols + j) * q.stride)
}

// RootIndex returns the linear root index of root cell (i, j) for Count.
func (q *QuadPool) RootIndex(i, j int) int { return i*q.Cols + j }

// Slots returns the logical per-subtree slot count (maximum cells in one
// full tree).
func (q *QuadPool) Slots() int { return q.slots }

// Stride returns the padded per-subtree allocation span in cells.
func (q *QuadPool) Stride() int { return q.stride }

// GetCount reads root rootIdx's allocation count through node n.
func (q *QuadPool) GetCount(n *tempest.Node, rootIdx int) int32 {
	return q.Count.Get(n, rootIdx*q.cstride)
}

// Subdivide turns leaf cell into an interior cell with four children that
// inherit its value, allocating from the sub-pool of root cell rootIdx.
// It returns the first child id, or NoChild when the sub-pool is full or
// the tree would exceed MaxDepth (depth is the leaf's depth).
// Must run through node n (all accesses are simulated).
func (q *QuadPool) Subdivide(n *tempest.Node, rootIdx int, cell int32, depth int) int32 {
	if depth >= q.MaxDepth {
		return NoChild
	}
	cnt := q.GetCount(n, rootIdx)
	if int(cnt)+4 > q.slots {
		return NoChild
	}
	base := int32(rootIdx*q.stride) + cnt
	v := q.Val.Get(n, int(cell))
	for k := int32(0); k < 4; k++ {
		q.Val.Set(n, int(base+k), v)
		q.Child.Set(n, int(base+k), NoChild)
	}
	q.Child.Set(n, int(cell), base)
	q.Count.Set(n, rootIdx*q.cstride, cnt+4)
	return base
}

// VisitLeaves calls fn for every leaf of the subtree rooted at cell,
// passing the leaf id and its depth.  Traversal reads Child through node n.
func (q *QuadPool) VisitLeaves(n *tempest.Node, cell int32, depth int, fn func(leaf int32, depth int)) {
	ch := q.Child.Get(n, int(cell))
	if ch == NoChild {
		fn(cell, depth)
		return
	}
	for k := int32(0); k < 4; k++ {
		q.VisitLeaves(n, ch+k, depth+1, fn)
	}
}

// CountSeq reads root (i, j)'s allocation count from the home image
// (sequential verification helper).
func (q *QuadPool) CountSeq(i, j int) int32 {
	return q.Count.Peek(q.RootIndex(i, j) * q.cstride)
}

// CountCells returns the total allocated cells (sequential, home image).
func (q *QuadPool) CountCells() int {
	total := 0
	for c := 0; c < q.Rows*q.Cols; c++ {
		total += int(q.Count.Peek(c * q.cstride))
	}
	return total
}

// LeafCountSeq returns the number of leaves of root cell (i, j) using the
// home image (sequential verification helper).
func (q *QuadPool) LeafCountSeq(i, j int) int {
	var walk func(cell int32) int
	walk = func(cell int32) int {
		ch := q.Child.Peek(int(cell))
		if ch == NoChild {
			return 1
		}
		total := 0
		for k := int32(0); k < 4; k++ {
			total += walk(ch + k)
		}
		return total
	}
	return walk(q.RootID(i, j))
}
