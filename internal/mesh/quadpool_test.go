package mesh

import (
	"testing"
	"testing/quick"

	"lcm/internal/cost"
	"lcm/internal/cstar"
	"lcm/internal/tempest"
)

func TestSubtreeSlots(t *testing.T) {
	cases := map[int]int{0: 1, 1: 5, 2: 21, 3: 85, 4: 341}
	for depth, want := range cases {
		if got := SubtreeSlots(depth); got != want {
			t.Errorf("SubtreeSlots(%d) = %d, want %d", depth, got, want)
		}
	}
}

func newPool(t *testing.T, sys cstar.System, rows, cols, depth int) (*tempest.Machine, *QuadPool) {
	t.Helper()
	m := cstar.NewMachine(2, 32, cost.Default(), sys)
	q := New(m, "mesh", rows, cols, depth, cstar.DataPolicy(sys))
	m.Freeze()
	q.InitRoots()
	return m, q
}

func TestRootIDs(t *testing.T) {
	_, q := newPool(t, cstar.Copying, 4, 4, 2)
	if q.RootID(0, 0) != 0 {
		t.Fatal("root 0")
	}
	if q.RootID(0, 1) != int32(q.Stride()) {
		t.Fatal("root spacing")
	}
	if q.RootID(3, 3) != int32(15*q.Stride()) {
		t.Fatal("last root")
	}
	if q.Stride() < q.Slots() || q.Stride()%8 != 0 {
		t.Fatalf("stride %d not block-padded beyond %d slots", q.Stride(), q.Slots())
	}
	mustPanic(t, func() { q.RootID(4, 0) })
	mustPanic(t, func() { q.RootID(0, -1) })
}

func TestSubdivideAndVisit(t *testing.T) {
	m, q := newPool(t, cstar.Copying, 2, 2, 2)
	m.Run(func(n *tempest.Node) {
		if n.ID != 0 {
			return
		}
		root := q.RootID(0, 0)
		q.Val.Set(n, int(root), 5)
		ch := q.Subdivide(n, 0, root, 0)
		if ch == NoChild {
			t.Error("subdivide failed")
			return
		}
		// Children inherit the parent's value.
		for k := int32(0); k < 4; k++ {
			if got := q.Val.Get(n, int(ch+k)); got != 5 {
				t.Errorf("child %d value %v", k, got)
			}
		}
		// Subdivide one child; depth limit stops the next level.
		gc := q.Subdivide(n, 0, ch, 1)
		if gc == NoChild {
			t.Error("second subdivide failed")
		}
		if q.Subdivide(n, 0, gc, 2) != NoChild {
			t.Error("depth limit not enforced")
		}
		// Leaf visit: 3 children + 4 grandchildren = 7 leaves.
		leaves := 0
		maxDepth := 0
		q.VisitLeaves(n, root, 0, func(leaf int32, d int) {
			leaves++
			if d > maxDepth {
				maxDepth = d
			}
		})
		if leaves != 7 || maxDepth != 2 {
			t.Errorf("leaves=%d maxDepth=%d, want 7, 2", leaves, maxDepth)
		}
	})
}

func TestSubdividePoolExhaustion(t *testing.T) {
	m, q := newPool(t, cstar.Copying, 1, 1, 1) // 5 slots: root + 4
	m.Run(func(n *tempest.Node) {
		if n.ID != 0 {
			return
		}
		root := q.RootID(0, 0)
		ch := q.Subdivide(n, 0, root, 0)
		if ch == NoChild {
			t.Error("first subdivide should fit")
		}
		// Pool now full: subdividing a child must fail on capacity even
		// though depth would allow... depth 1 == MaxDepth, so blocked
		// by depth; verify count stayed consistent.
		if got := q.GetCount(n, 0); got != 5 {
			t.Errorf("count = %d, want 5", got)
		}
	})
	cstar.DrainToHome(m) // Count lives dirty in node 0's cache
	if q.CountCells() != 5 {
		t.Fatalf("CountCells = %d", q.CountCells())
	}
	if q.LeafCountSeq(0, 0) != 4 {
		t.Fatalf("LeafCountSeq = %d", q.LeafCountSeq(0, 0))
	}
}

// Property: any sequence of subdivision attempts keeps the pool invariants:
// count within bounds, children allocated consecutively inside the owning
// sub-pool, and leaf count == (count-1)/4*3 + 1.
func TestSubdivisionInvariantsProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		m := cstar.NewMachine(1, 32, cost.Zero(), cstar.LCMmcc)
		q := New(m, "q", 2, 1, 3, cstar.DataPolicy(cstar.LCMmcc))
		m.Freeze()
		q.InitRoots()
		ok := true
		m.Run(func(n *tempest.Node) {
			if len(ops) > 40 {
				ops = ops[:40]
			}
			for _, op := range ops {
				rootIdx := int(op) % 2
				cnt := q.GetCount(n, rootIdx)
				// Pick an allocated cell; find its depth by walking.
				cell := int32(rootIdx*q.Stride()) + int32(op/2)%cnt
				depth := depthOf(n, q, rootIdx, cell)
				if depth < 0 {
					continue // unreachable slot (never happens if invariants hold)
				}
				if q.Child.Get(n, int(cell)) != NoChild {
					continue // interior already
				}
				q.Subdivide(n, rootIdx, cell, depth)
			}
			for rootIdx := 0; rootIdx < 2; rootIdx++ {
				cnt := int(q.GetCount(n, rootIdx))
				if cnt < 1 || cnt > q.Slots() || (cnt-1)%4 != 0 {
					ok = false
				}
				leaves := 0
				q.VisitLeaves(n, q.RootID(rootIdx, 0), 0, func(int32, int) { leaves++ })
				if leaves != (cnt-1)/4*3+1 {
					ok = false
				}
			}
			n.ReconcileCopies()
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// depthOf returns the depth of cell within root rootIdx's subtree, or -1.
func depthOf(n *tempest.Node, q *QuadPool, rootIdx int, cell int32) int {
	var walk func(c int32, d int) int
	walk = func(c int32, d int) int {
		if c == cell {
			return d
		}
		ch := q.Child.Get(n, int(c))
		if ch == NoChild {
			return -1
		}
		for k := int32(0); k < 4; k++ {
			if r := walk(ch+k, d+1); r >= 0 {
				return r
			}
		}
		return -1
	}
	return walk(q.RootID(rootIdx, 0), 0)
}

func TestShadowSharesTopology(t *testing.T) {
	m := cstar.NewMachine(1, 32, cost.Zero(), cstar.Copying)
	q := New(m, "q", 2, 2, 2, cstar.DataPolicy(cstar.Copying))
	s := NewShadow(m, "q.old", q, cstar.DataPolicy(cstar.Copying))
	m.Freeze()
	q.InitRoots()
	if s.Child != q.Child || s.Count != q.Count {
		t.Fatal("shadow does not share topology")
	}
	if s.Val == q.Val {
		t.Fatal("shadow shares values")
	}
	if s.Val.Len() != q.Val.Len() {
		t.Fatal("shadow size")
	}
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}
