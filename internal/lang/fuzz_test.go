package lang

import (
	"strings"
	"testing"
)

// FuzzParse feeds arbitrary text to the compiler front end: it must either
// return an error or produce a function that survives analysis, and never
// panic.  Run with `go test -fuzz=FuzzParse ./internal/lang` to explore; the
// seed corpus runs on every ordinary `go test`.
func FuzzParse(f *testing.F) {
	seeds := []string{
		stencilSrc,
		thresholdSrc,
		sumSrc,
		vectorSrc,
		"parallel f(A) { A[i][j] = 1; }",
		"parallel f(A) { let x = A[i][j]; if (x > 0) { A[i][j] = -x; } else { t %min= x; } }",
		"parallel f(A) { A[j][i] = A[i][j]; }",
		"parallel f(A) { A[i*2][j] = 0; }",
		"parallel f(A",
		"parallel f(A) { A[i][j] = ((((1)))); }",
		"}}{{",
		"parallel \x00 f(A) {}",
		"parallel f(A) { A[i][j] = 1e; }",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		// Guard against pathological parser recursion on adversarial
		// nesting: bound the input.
		if len(src) > 4096 {
			return
		}
		fn, err := Parse(src)
		if err != nil {
			if !strings.Contains(err.Error(), "line") {
				t.Fatalf("error without position info: %v", err)
			}
			return
		}
		// A parsed function must analyze without panicking and carry a
		// sane rank.
		_ = Analyze(fn)
		_ = AlwaysWritesOwn(fn)
		if fn.Rank != 1 && fn.Rank != 2 {
			t.Fatalf("rank %d", fn.Rank)
		}
	})
}

// FuzzLex checks the tokenizer never panics and always terminates.
func FuzzLex(f *testing.F) {
	f.Add("A[i-1] %+= 0.25 // c\n")
	f.Add("%%%===&&&|||")
	f.Add("1.2.3.4")
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 4096 {
			return
		}
		toks, err := lex(src)
		if err != nil {
			return
		}
		if len(toks) == 0 || toks[len(toks)-1].kind != tokEOF {
			t.Fatal("token stream not EOF-terminated")
		}
	})
}
