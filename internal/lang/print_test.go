package lang

import (
	"reflect"
	"strings"
	"testing"
)

func TestFormatGolden(t *testing.T) {
	fn, err := Parse(thresholdSrc)
	if err != nil {
		t.Fatal(err)
	}
	want := `parallel threshold(A) {
    let v = A[i][j];
    let nv = (A[i - 1][j] + A[i + 1][j] + A[i][j - 1] + A[i][j + 1]) * 0.25;
    if (abs(nv - v) > 0.05) {
        A[i][j] = nv;
    }
}
`
	if got := Format(fn); got != want {
		t.Fatalf("format:\n%s\nwant:\n%s", got, want)
	}
}

// Round trip: parsing the formatted source reproduces an equivalent AST
// (compared via a second Format, which is canonical).
func TestFormatRoundTrip(t *testing.T) {
	for _, src := range []string{stencilSrc, thresholdSrc, sumSrc, vectorSrc,
		`parallel p(A) { A[i][j] = -(A[i][j] - 1) * (2 + 3 * 4); }`,
		`parallel q(A) { if (i < 2 && j > 1 || i == j) { A[i][j] = i / (j + 1); } else { t %+= 1; } }`,
	} {
		fn, err := Parse(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		once := Format(fn)
		fn2, err := Parse(once)
		if err != nil {
			t.Fatalf("reparse failed:\n%s\n%v", once, err)
		}
		twice := Format(fn2)
		if once != twice {
			t.Fatalf("not a fixed point:\n%s\nvs\n%s", once, twice)
		}
		// Structural equivalence of the two ASTs (ignoring positions is
		// impractical with reflect, so compare canonical text instead;
		// additionally reductions and rank must survive).
		if fn.Rank != fn2.Rank || !reflect.DeepEqual(fn.Reductions, fn2.Reductions) {
			t.Fatalf("metadata changed: %v/%v vs %v/%v", fn.Rank, fn.Reductions, fn2.Rank, fn2.Reductions)
		}
	}
}

func TestFormatPrecedence(t *testing.T) {
	fn, err := Parse(`parallel p(A) { A[i][j] = (1 + 2) * 3 - 4 / (5 - 6); }`)
	if err != nil {
		t.Fatal(err)
	}
	out := Format(fn)
	if !strings.Contains(out, "(1 + 2) * 3 - 4 / (5 - 6)") {
		t.Fatalf("parenthesization lost:\n%s", out)
	}
}
