package lang

import "fmt"

// The AST mirrors the subset of C** the package accepts: one parallel
// function over one aggregate, with float expressions, let bindings,
// conditionals, element assignments and reduction assignments.

// expr is an expression node.
type expr interface {
	exprPos() int
}

// numLit is a numeric literal.
type numLit struct {
	pos int
	v   float64
}

// varRef references i, j, rows, cols, or a let-bound name.
type varRef struct {
	pos  int
	name string
}

// binOp is a binary operation: + - * / == != < <= > >= && ||.
type binOp struct {
	pos  int
	op   string
	l, r expr
}

// negOp is unary minus.
type negOp struct {
	pos int
	e   expr
}

// absCall is abs(e).
type absCall struct {
	pos int
	e   expr
}

// aggRef reads aggregate element A[ix][jx] (jx nil for a 1-D aggregate).
type aggRef struct {
	pos    int
	ix, jx expr
}

func (e *numLit) exprPos() int  { return e.pos }
func (e *varRef) exprPos() int  { return e.pos }
func (e *binOp) exprPos() int   { return e.pos }
func (e *negOp) exprPos() int   { return e.pos }
func (e *absCall) exprPos() int { return e.pos }
func (e *aggRef) exprPos() int  { return e.pos }

// stmt is a statement node.
type stmt interface {
	stmtPos() int
}

// letStmt binds a local name.
type letStmt struct {
	pos  int
	name string
	e    expr
}

// storeStmt assigns to an aggregate element: A[ix][jx] = e (jx nil for a
// 1-D aggregate).
type storeStmt struct {
	pos    int
	ix, jx expr
	e      expr
}

// RedOp is a reduction operator.
type RedOp uint8

// Reduction operators.
const (
	RedSum RedOp = iota
	RedMin
	RedMax
)

func (o RedOp) String() string {
	switch o {
	case RedMin:
		return "%min="
	case RedMax:
		return "%max="
	default:
		return "%+="
	}
}

// redStmt is a reduction assignment into a scalar: total %+= e.
type redStmt struct {
	pos  int
	name string
	op   RedOp
	e    expr
}

// ifStmt is a conditional.
type ifStmt struct {
	pos  int
	cond expr
	then []stmt
	els  []stmt
}

func (s *letStmt) stmtPos() int   { return s.pos }
func (s *storeStmt) stmtPos() int { return s.pos }
func (s *redStmt) stmtPos() int   { return s.pos }
func (s *ifStmt) stmtPos() int    { return s.pos }

// Func is a parsed parallel function.
type Func struct {
	// Name is the function's name.
	Name string
	// Agg is the aggregate parameter's name.
	Agg string
	// Rank is the aggregate's dimensionality (1 or 2), inferred from the
	// first subscripted use and enforced on every use.
	Rank int
	// Body is the statement list.
	Body []stmt
	// Reductions lists the reduction variables the body assigns, with
	// their operators, in first-use order.
	Reductions []Reduction
}

// Reduction describes one reduction variable of a function.
type Reduction struct {
	Name string
	Op   RedOp
}

// Error is a compile error with position information.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("line %d: %s", e.Line, e.Msg) }
