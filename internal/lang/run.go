package lang

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"lcm/internal/cstar"
	"lcm/internal/memsys"
	"lcm/internal/tempest"
)

// Program is a compiled parallel function: the AST plus the access summary
// the compiler derived from it.
type Program struct {
	Fn      *Func
	Summary cstar.AccessSummary
}

// Compile parses and analyzes a parallel function.
func Compile(src string) (*Program, error) {
	fn, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return &Program{Fn: fn, Summary: Analyze(fn)}, nil
}

// env supplies an invocation's data access primitives; the interpreter is
// shared between the simulated-machine execution and the sequential
// reference, which differ only in these hooks.
type env struct {
	read   func(i, j int) float32
	write  func(i, j int, v float32)
	reduce func(name string, op RedOp, v float64)
	i, j   int
	rows   int
	cols   int
	lets   map[string]float64
}

// runtimeError reports an execution fault (subscript out of range); the
// interpreter panics with it and Instance.Run converts it back to an
// error.
type runtimeError struct{ msg string }

func (e runtimeError) Error() string { return e.msg }

func (ev *env) index(e expr, limit int, what string) int {
	if e == nil {
		return 0 // the missing axis of a 1-D aggregate
	}
	v := ev.eval(e)
	idx := int(v)
	if float64(idx) != v {
		panic(runtimeError{fmt.Sprintf("non-integer %s subscript %v", what, v)})
	}
	if idx < 0 || idx >= limit {
		panic(runtimeError{fmt.Sprintf("%s subscript %d out of range [0,%d)", what, idx, limit)})
	}
	return idx
}

func (ev *env) eval(e expr) float64 {
	switch v := e.(type) {
	case *numLit:
		return v.v
	case *varRef:
		switch v.name {
		case "i":
			return float64(ev.i)
		case "j":
			return float64(ev.j)
		case "rows":
			return float64(ev.rows)
		case "cols":
			return float64(ev.cols)
		default:
			return ev.lets[v.name]
		}
	case *negOp:
		return -ev.eval(v.e)
	case *absCall:
		return math.Abs(ev.eval(v.e))
	case *aggRef:
		i := ev.index(v.ix, ev.rows, "row")
		j := ev.index(v.jx, ev.cols, "column")
		return float64(ev.read(i, j))
	case *binOp:
		switch v.op {
		case "&&":
			if ev.eval(v.l) != 0 && ev.eval(v.r) != 0 {
				return 1
			}
			return 0
		case "||":
			if ev.eval(v.l) != 0 || ev.eval(v.r) != 0 {
				return 1
			}
			return 0
		}
		l, r := ev.eval(v.l), ev.eval(v.r)
		switch v.op {
		case "+":
			return l + r
		case "-":
			return l - r
		case "*":
			return l * r
		case "/":
			return l / r
		case "==":
			return b2f(l == r)
		case "!=":
			return b2f(l != r)
		case "<":
			return b2f(l < r)
		case "<=":
			return b2f(l <= r)
		case ">":
			return b2f(l > r)
		case ">=":
			return b2f(l >= r)
		}
	}
	panic(runtimeError{"unreachable expression"})
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func (ev *env) exec(ss []stmt) {
	for _, s := range ss {
		switch v := s.(type) {
		case *letStmt:
			ev.lets[v.name] = ev.eval(v.e)
		case *storeStmt:
			i := ev.index(v.ix, ev.rows, "row")
			j := ev.index(v.jx, ev.cols, "column")
			ev.write(i, j, float32(ev.eval(v.e)))
		case *redStmt:
			ev.reduce(v.name, v.op, ev.eval(v.e))
		case *ifStmt:
			if ev.eval(v.cond) != 0 {
				ev.exec(v.then)
			} else {
				ev.exec(v.els)
			}
		}
	}
}

// Instance binds a compiled program to a simulated machine: the aggregate
// (and its shadow copy under the Copying baseline), the reduction
// variables, and the lowering plan.
type Instance struct {
	Prog *Program
	Sys  cstar.System
	Plan cstar.Plan
	M    *tempest.Machine

	A    *cstar.MatrixF32
	old  *cstar.MatrixF32
	reds map[string]*cstar.ReduceF64

	// swap records the Copying-mode strategy: true = pointer swap (valid
	// because every invocation writes its element), false = conservative
	// copy phase before each iteration.
	swap bool

	// aborted is set when any invocation faults; remaining invocations
	// become no-ops so every node still executes the same barrier
	// schedule and the machine quiesces cleanly.
	aborted atomic.Bool
	errMu   sync.Mutex
	err     error

	rows, cols int
}

// fault records the first runtime error and aborts remaining invocations.
func (inst *Instance) fault(err error) {
	inst.errMu.Lock()
	if inst.err == nil {
		inst.err = err
	}
	inst.errMu.Unlock()
	inst.aborted.Store(true)
}

// Err returns the first runtime error of the last run, if any.
func (inst *Instance) Err() error {
	inst.errMu.Lock()
	defer inst.errMu.Unlock()
	return inst.err
}

// Instantiate allocates the program's data on m (call before m.Freeze).
// For rank-1 programs the aggregate has rows elements and cols is ignored
// (stored as an n x 1 matrix, one element per block, like the paper's
// per-vertex records).
func (p *Program) Instantiate(m *tempest.Machine, rows, cols int, sys cstar.System) *Instance {
	if p.Fn.Rank == 1 {
		cols = 1
	}
	inst := &Instance{
		Prog: p, Sys: sys, M: m, rows: rows, cols: cols,
		Plan: cstar.Lower(p.Summary, sys),
		reds: map[string]*cstar.ReduceF64{},
	}
	inst.A = cstar.NewMatrixF32(m, p.Fn.Agg, rows, cols, cstar.DataPolicy(sys), memsys.Interleaved)
	if inst.Plan.Mode == cstar.ModeCopying {
		inst.old = cstar.NewMatrixF32(m, p.Fn.Agg+".old", rows, cols, cstar.DataPolicy(cstar.Copying), memsys.Interleaved)
		inst.swap = AlwaysWritesOwn(p.Fn)
	}
	for _, rd := range p.Fn.Reductions {
		var op cstar.ReduceOp
		switch rd.Op {
		case RedMin:
			op = cstar.OpMin
		case RedMax:
			op = cstar.OpMax
		default:
			op = cstar.OpSum
		}
		inst.reds[rd.Name] = cstar.NewReduceF64Op(m, rd.Name, sys, op)
	}
	return inst
}

// Init seeds the aggregate's home image (call after m.Freeze, before Run)
// and resets reduction variables to their operator identities.
func (inst *Instance) Init(f func(i, j int) float32) {
	for i := 0; i < inst.rows; i++ {
		for j := 0; j < inst.cols; j++ {
			v := f(i, j)
			inst.A.Poke(i, j, v)
			if inst.old != nil {
				inst.old.Poke(i, j, v)
			}
		}
	}
	for _, rd := range inst.Prog.Fn.Reductions {
		inst.reds[rd.Name].Init(identityOf(rd.Op))
	}
}

func identityOf(op RedOp) float64 {
	switch op {
	case RedMin:
		return math.Inf(1)
	case RedMax:
		return math.Inf(-1)
	default:
		return 0
	}
}

// RunNode executes iters applications of the parallel function over the
// aggregate's interior as node n's share of the SPMD program.  Every node
// of the machine must call it with identical arguments.  It returns the
// first runtime error (out-of-range subscript) once the whole machine has
// quiesced: a fault turns the remaining invocations on every node into
// no-ops rather than deserting the barrier schedule, so no node deadlocks.
func (inst *Instance) RunNode(n *tempest.Node, iters int, sched cstar.Scheduler) error {
	inner := inst.cols - 2
	total := (inst.rows - 2) * inner
	if inst.Prog.Fn.Rank == 1 {
		inner = 1
		total = inst.rows - 2
	}
	cur, prev := inst.A, inst.old
	ev := &env{rows: inst.rows, cols: inst.cols, lets: map[string]float64{}}
	ev.reduce = func(name string, _ RedOp, v float64) {
		inst.reds[name].Add(n, v)
	}
	invoke := func(body []stmt) {
		if inst.aborted.Load() {
			return
		}
		defer func() {
			if r := recover(); r != nil {
				if re, ok := r.(runtimeError); ok {
					inst.fault(fmt.Errorf("lang: %s at invocation (%d,%d)", re.msg, ev.i, ev.j))
					return
				}
				panic(r)
			}
		}()
		ev.exec(body)
	}
	for it := 0; it < iters; it++ {
		if inst.Plan.Mode == cstar.ModeCopying && !inst.swap {
			// Conservative lowering for functions that may leave
			// elements unwritten: copy the whole aggregate into the
			// old image before computing, exactly the per-iteration
			// copy the paper's compiler emits when it cannot prove
			// every element is refreshed.
			lo, hi := sched.Range(n.ID, n.M.P, it, inst.rows)
			prev.CopyRows(n, cur, lo, hi)
			n.Barrier()
		}
		src := cur
		if inst.Plan.Mode == cstar.ModeCopying {
			src = prev
		}
		ev.read = func(i, j int) float32 { return src.Get(n, i, j) }
		ev.write = func(i, j int, v float32) { cur.Set(n, i, j, v) }
		cstar.ForEach(n, sched, inst.Plan, it, total, func(idx int) {
			if inst.Prog.Fn.Rank == 1 {
				ev.i, ev.j = 1+idx, 0
			} else {
				ev.i = 1 + idx/inner
				ev.j = 1 + idx%inner
			}
			clear(ev.lets)
			invoke(inst.Prog.Fn.Body)
			n.Compute(2)
		})
		if len(inst.Prog.Fn.Reductions) > 0 {
			for _, rd := range inst.Prog.Fn.Reductions {
				inst.reds[rd.Name].Reduce(n)
				// Each parallel call contributes its own values once:
				// clear this node's partial accumulator for the next
				// call (Copying mode; a no-op under LCM, where the
				// flushed private copies already carried exactly this
				// phase's contributions).
				inst.reds[rd.Name].ResetPartials(n)
			}
		} else {
			cstar.EndParallel(n)
		}
		if inst.Plan.Mode == cstar.ModeCopying && inst.swap {
			cur, prev = prev, cur
		}
	}
	return inst.Err()
}

// Result returns the matrix holding the final values after iters
// iterations (accounting for the Copying mode's buffer parity under the
// swap strategy), for home-image inspection with Peek.
func (inst *Instance) Result(iters int) *cstar.MatrixF32 {
	if inst.Plan.Mode == cstar.ModeCopying && inst.swap && iters%2 == 0 {
		return inst.old
	}
	return inst.A
}

// Reduction returns the named reduction variable.
func (inst *Instance) Reduction(name string) *cstar.ReduceF64 { return inst.reds[name] }

// SeqApply runs the program sequentially with two-copy C** semantics in
// plain Go memory: the reference implementation for verification.  It
// returns the final mesh and the reduction results.  Rank-1 programs use
// cols = 1 (matching Instantiate).
func (p *Program) SeqApply(rows, cols, iters int, init func(i, j int) float32) ([][]float32, map[string]float64) {
	if p.Fn.Rank == 1 {
		cols = 1
	}
	cur := make([][]float32, rows)
	old := make([][]float32, rows)
	for i := range cur {
		cur[i] = make([]float32, cols)
		old[i] = make([]float32, cols)
		for j := range cur[i] {
			cur[i][j] = init(i, j)
			old[i][j] = init(i, j)
		}
	}
	reds := map[string]float64{}
	for _, rd := range p.Fn.Reductions {
		reds[rd.Name] = identityOf(rd.Op)
	}
	ev := &env{rows: rows, cols: cols, lets: map[string]float64{}}
	ev.reduce = func(name string, op RedOp, v float64) {
		switch op {
		case RedMin:
			reds[name] = math.Min(reds[name], v)
		case RedMax:
			reds[name] = math.Max(reds[name], v)
		default:
			reds[name] += v
		}
	}
	for it := 0; it < iters; it++ {
		cur, old = old, cur
		ev.read = func(i, j int) float32 { return old[i][j] }
		ev.write = func(i, j int, v float32) { cur[i][j] = v }
		for i := 0; i < rows; i++ {
			copy(cur[i], old[i])
		}
		if p.Fn.Rank == 1 {
			for i := 1; i < rows-1; i++ {
				ev.i, ev.j = i, 0
				clear(ev.lets)
				ev.exec(p.Fn.Body)
			}
		} else {
			for i := 1; i < rows-1; i++ {
				for j := 1; j < cols-1; j++ {
					ev.i, ev.j = i, j
					clear(ev.lets)
					ev.exec(p.Fn.Body)
				}
			}
		}
	}
	return cur, reds
}
