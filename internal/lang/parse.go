package lang

import "fmt"

// parser is a recursive-descent parser over the token stream.
//
// Grammar:
//
//	program := "parallel" ident "(" ident ")" block
//	block   := "{" stmt* "}"
//	stmt    := "let" ident "=" expr ";"
//	         | Agg "[" expr "]" "[" expr "]" "=" expr ";"
//	         | ident ("%+=" | "%min=" | "%max=") expr ";"
//	         | "if" "(" expr ")" block ("else" block)?
//	expr    := or
//	or      := and ("||" and)*
//	and     := cmp ("&&" cmp)*
//	cmp     := add (relop add)?
//	add     := mul (("+" | "-") mul)*
//	mul     := unary (("*" | "/") unary)*
//	unary   := "-" unary | primary
//	primary := number | "(" expr ")" | "abs" "(" expr ")"
//	         | Agg "[" expr "]" "[" expr "]" | ident
type parser struct {
	toks []token
	i    int
	agg  string
	fn   *Func
	reds map[string]RedOp
	lets map[string]bool
}

// Parse compiles source text to a Func.
func Parse(src string) (*Func, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, reds: map[string]RedOp{}, lets: map[string]bool{}}
	fn, err := p.program()
	if err != nil {
		return nil, err
	}
	return fn, nil
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) errf(format string, args ...any) error {
	return &Error{Line: p.cur().line, Msg: fmt.Sprintf(format, args...)}
}

// accept consumes the next token if it is the given punctuation.
func (p *parser) accept(text string) bool {
	if p.cur().kind == tokPunct && p.cur().text == text {
		p.i++
		return true
	}
	return false
}

// expect consumes required punctuation.
func (p *parser) expect(text string) error {
	if !p.accept(text) {
		return p.errf("expected %q, found %q", text, p.cur().text)
	}
	return nil
}

// keyword consumes a required identifier keyword.
func (p *parser) keyword(kw string) error {
	if p.cur().kind != tokIdent || p.cur().text != kw {
		return p.errf("expected %q, found %q", kw, p.cur().text)
	}
	p.i++
	return nil
}

// identifier consumes any identifier.
func (p *parser) identifier() (string, error) {
	if p.cur().kind != tokIdent {
		return "", p.errf("expected identifier, found %q", p.cur().text)
	}
	return p.next().text, nil
}

func (p *parser) program() (*Func, error) {
	if err := p.keyword("parallel"); err != nil {
		return nil, err
	}
	name, err := p.identifier()
	if err != nil {
		return nil, err
	}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	agg, err := p.identifier()
	if err != nil {
		return nil, err
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	p.agg = agg
	p.fn = &Func{Name: name, Agg: agg}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	p.fn.Body = body
	if p.fn.Rank == 0 {
		p.fn.Rank = 2 // no subscripted use: default to the matrix form
	}
	if p.cur().kind != tokEOF {
		return nil, p.errf("trailing input after function body: %q", p.cur().text)
	}
	return p.fn, nil
}

func (p *parser) block() ([]stmt, error) {
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	var out []stmt
	for !p.accept("}") {
		if p.cur().kind == tokEOF {
			return nil, p.errf("unterminated block")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

func (p *parser) stmt() (stmt, error) {
	t := p.cur()
	if t.kind != tokIdent {
		return nil, p.errf("expected statement, found %q", t.text)
	}
	switch t.text {
	case "let":
		p.i++
		name, err := p.identifier()
		if err != nil {
			return nil, err
		}
		if p.isReserved(name) {
			return nil, p.errf("cannot bind reserved name %q", name)
		}
		if err := p.expect("="); err != nil {
			return nil, err
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		p.lets[name] = true
		return &letStmt{pos: t.pos, name: name, e: e}, nil
	case "if":
		p.i++
		if err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		then, err := p.block()
		if err != nil {
			return nil, err
		}
		var els []stmt
		if p.cur().kind == tokIdent && p.cur().text == "else" {
			p.i++
			els, err = p.block()
			if err != nil {
				return nil, err
			}
		}
		return &ifStmt{pos: t.pos, cond: cond, then: then, els: els}, nil
	case p.agg:
		p.i++
		ix, jx, err := p.subscripts()
		if err != nil {
			return nil, err
		}
		if err := p.expect("="); err != nil {
			return nil, err
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return &storeStmt{pos: t.pos, ix: ix, jx: jx, e: e}, nil
	}
	// Reduction assignment: ident %op= expr ;
	name := t.text
	p.i++
	var op RedOp
	switch p.cur().text {
	case "%+=":
		op = RedSum
	case "%min=":
		op = RedMin
	case "%max=":
		op = RedMax
	default:
		return nil, p.errf("expected a reduction assignment after %q, found %q", name, p.cur().text)
	}
	p.i++
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}
	if prev, ok := p.reds[name]; ok && prev != op {
		return nil, p.errf("reduction %q used with both %v and %v", name, prev, op)
	}
	if _, ok := p.reds[name]; !ok {
		p.reds[name] = op
		p.fn.Reductions = append(p.fn.Reductions, Reduction{Name: name, Op: op})
	}
	return &redStmt{pos: t.pos, name: name, op: op, e: e}, nil
}

func (p *parser) isReserved(name string) bool {
	switch name {
	case "i", "j", "rows", "cols", "abs", "let", "if", "else", "parallel", p.agg:
		return true
	}
	return false
}

// subscripts parses A's one or two subscripts and checks the aggregate is
// used with a consistent rank throughout the function.
func (p *parser) subscripts() (expr, expr, error) {
	if err := p.expect("["); err != nil {
		return nil, nil, err
	}
	ix, err := p.expr()
	if err != nil {
		return nil, nil, err
	}
	if err := p.expect("]"); err != nil {
		return nil, nil, err
	}
	var jx expr
	rank := 1
	if p.cur().kind == tokPunct && p.cur().text == "[" {
		p.i++
		jx, err = p.expr()
		if err != nil {
			return nil, nil, err
		}
		if err := p.expect("]"); err != nil {
			return nil, nil, err
		}
		rank = 2
	}
	if p.fn.Rank == 0 {
		p.fn.Rank = rank
	} else if p.fn.Rank != rank {
		return nil, nil, p.errf("aggregate %q used as both %d-D and %d-D", p.agg, p.fn.Rank, rank)
	}
	return ix, jx, nil
}

func (p *parser) expr() (expr, error) { return p.orExpr() }

func (p *parser) orExpr() (expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokPunct && p.cur().text == "||" {
		pos := p.next().pos
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = &binOp{pos: pos, op: "||", l: l, r: r}
	}
	return l, nil
}

func (p *parser) andExpr() (expr, error) {
	l, err := p.cmpExpr()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokPunct && p.cur().text == "&&" {
		pos := p.next().pos
		r, err := p.cmpExpr()
		if err != nil {
			return nil, err
		}
		l = &binOp{pos: pos, op: "&&", l: l, r: r}
	}
	return l, nil
}

func (p *parser) cmpExpr() (expr, error) {
	l, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	switch p.cur().text {
	case "==", "!=", "<", "<=", ">", ">=":
		op := p.next()
		r, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		return &binOp{pos: op.pos, op: op.text, l: l, r: r}, nil
	}
	return l, nil
}

func (p *parser) addExpr() (expr, error) {
	l, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokPunct && (p.cur().text == "+" || p.cur().text == "-") {
		op := p.next()
		r, err := p.mulExpr()
		if err != nil {
			return nil, err
		}
		l = &binOp{pos: op.pos, op: op.text, l: l, r: r}
	}
	return l, nil
}

func (p *parser) mulExpr() (expr, error) {
	l, err := p.unary()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokPunct && (p.cur().text == "*" || p.cur().text == "/") {
		op := p.next()
		r, err := p.unary()
		if err != nil {
			return nil, err
		}
		l = &binOp{pos: op.pos, op: op.text, l: l, r: r}
	}
	return l, nil
}

func (p *parser) unary() (expr, error) {
	if p.cur().kind == tokPunct && p.cur().text == "-" {
		pos := p.next().pos
		e, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &negOp{pos: pos, e: e}, nil
	}
	return p.primary()
}

func (p *parser) primary() (expr, error) {
	t := p.cur()
	switch {
	case t.kind == tokNumber:
		p.i++
		var v float64
		if _, err := fmt.Sscanf(t.text, "%g", &v); err != nil {
			return nil, p.errf("bad number %q", t.text)
		}
		return &numLit{pos: t.pos, v: v}, nil
	case t.kind == tokPunct && t.text == "(":
		p.i++
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.kind == tokIdent && t.text == "abs":
		p.i++
		if err := p.expect("("); err != nil {
			return nil, err
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return &absCall{pos: t.pos, e: e}, nil
	case t.kind == tokIdent && t.text == p.agg:
		p.i++
		ix, jx, err := p.subscripts()
		if err != nil {
			return nil, err
		}
		return &aggRef{pos: t.pos, ix: ix, jx: jx}, nil
	case t.kind == tokIdent:
		p.i++
		switch t.text {
		case "i", "j", "rows", "cols":
			return &varRef{pos: t.pos, name: t.text}, nil
		default:
			if !p.lets[t.text] {
				return nil, p.errf("unknown name %q", t.text)
			}
			return &varRef{pos: t.pos, name: t.text}, nil
		}
	}
	return nil, p.errf("expected expression, found %q", t.text)
}
