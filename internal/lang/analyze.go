package lang

import (
	"lcm/internal/cstar"
)

// This file is the "compiler analysis" half of Section 6: given a parsed
// parallel function, decide what its invocations read and write so the
// planner can choose between explicit two-copy code and LCM directives.
//
// The analysis is a small abstract interpretation of subscript
// expressions.  A subscript is *affine* when it has the form v + c for a
// pseudo-variable v (i or j) and integer constant c; stencil-style
// functions subscript affinely, and the compiler can then reason about
// which elements each invocation touches.  Any other subscript (data
// dependent, multiplicative, let-bound arithmetic) is *dynamic* — the
// compiler must assume the worst, which is exactly when the paper's LCM
// pays off.

// idxShape classifies one subscript expression.
type idxShape struct {
	// base is 'i' or 'j' for affine subscripts, 0 for constant-only,
	// and -1 for dynamic (unanalyzable).
	base int8
	// off is the constant offset for affine/constant subscripts.
	off int
}

const dynBase = int8(-1)

// analyzeIndex abstractly evaluates a subscript expression.  A nil
// subscript (the missing axis of a 1-D aggregate) is its own pseudo-
// variable axis by construction.
func analyzeIndex(e expr) idxShape {
	if e == nil {
		return idxShape{base: 'j'}
	}
	switch v := e.(type) {
	case *numLit:
		if v.v == float64(int(v.v)) {
			return idxShape{base: 0, off: int(v.v)}
		}
		return idxShape{base: dynBase}
	case *varRef:
		switch v.name {
		case "i":
			return idxShape{base: 'i'}
		case "j":
			return idxShape{base: 'j'}
		default:
			// rows/cols or let-bound values: data dependent.
			return idxShape{base: dynBase}
		}
	case *negOp:
		s := analyzeIndex(v.e)
		if s.base == 0 {
			return idxShape{base: 0, off: -s.off}
		}
		return idxShape{base: dynBase}
	case *binOp:
		if v.op != "+" && v.op != "-" {
			return idxShape{base: dynBase}
		}
		l := analyzeIndex(v.l)
		r := analyzeIndex(v.r)
		if v.op == "-" {
			if r.base != 0 {
				return idxShape{base: dynBase}
			}
			r.off = -r.off
		}
		switch {
		case l.base == dynBase || r.base == dynBase:
			return idxShape{base: dynBase}
		case l.base != 0 && r.base != 0:
			return idxShape{base: dynBase} // i+j etc.
		case l.base != 0:
			return idxShape{base: l.base, off: l.off + r.off}
		default:
			return idxShape{base: r.base, off: l.off + r.off}
		}
	default:
		return idxShape{base: dynBase}
	}
}

// access is one aggregate access discovered by the walk.
type access struct {
	write  bool
	ix, jx idxShape
}

// collectAccesses walks the function body.
func collectAccesses(body []stmt) []access {
	var out []access
	var walkExpr func(e expr)
	walkExpr = func(e expr) {
		switch v := e.(type) {
		case *aggRef:
			out = append(out, access{ix: analyzeIndex(v.ix), jx: analyzeIndex(v.jx)})
			walkExpr(v.ix)
			walkExpr(v.jx)
		case *binOp:
			walkExpr(v.l)
			walkExpr(v.r)
		case *negOp:
			walkExpr(v.e)
		case *absCall:
			walkExpr(v.e)
		}
	}
	var walkStmt func(s stmt)
	walkStmt = func(s stmt) {
		switch v := s.(type) {
		case *letStmt:
			walkExpr(v.e)
		case *storeStmt:
			out = append(out, access{write: true, ix: analyzeIndex(v.ix), jx: analyzeIndex(v.jx)})
			walkExpr(v.ix)
			walkExpr(v.jx)
			walkExpr(v.e)
		case *redStmt:
			walkExpr(v.e)
		case *ifStmt:
			walkExpr(v.cond)
			for _, t := range v.then {
				walkStmt(t)
			}
			for _, t := range v.els {
				walkStmt(t)
			}
		}
	}
	for _, s := range body {
		walkStmt(s)
	}
	return out
}

// ownElement reports whether an access touches exactly the invocation's
// own element (i, j).
func (a access) ownElement() bool {
	return a.ix.base == 'i' && a.ix.off == 0 && a.jx.base == 'j' && a.jx.off == 0
}

// dynamic reports whether either subscript defeated the analysis.
func (a access) dynamic() bool {
	return a.ix.base == dynBase || a.jx.base == dynBase
}

// Analyze derives the function's access summary — the facts the paper's
// compiler extracts before choosing a lowering (Section 6):
//
//   - WritesOwnElementOnly: every store subscripts exactly (i, j);
//   - ReadsSharedData: some read touches an element another invocation may
//     write (any non-own read, when the function writes at all);
//   - DynamicStructure: some subscript is data dependent, so the write and
//     read sets cannot be bounded statically;
//   - HasReduction: the body contains reduction assignments.
func Analyze(fn *Func) cstar.AccessSummary {
	accs := collectAccesses(fn.Body)
	sum := cstar.AccessSummary{
		WritesOwnElementOnly: true,
		HasReduction:         len(fn.Reductions) > 0,
	}
	writes := false
	for _, a := range accs {
		if a.write {
			writes = true
			if a.dynamic() || !a.ownElement() {
				sum.WritesOwnElementOnly = false
			}
			if a.dynamic() {
				sum.DynamicStructure = true
			}
		}
	}
	for _, a := range accs {
		if a.write {
			continue
		}
		if a.dynamic() {
			sum.DynamicStructure = true
			sum.ReadsSharedData = true
			continue
		}
		// A read of a non-own element may observe another invocation's
		// write whenever the function writes anything.
		if writes && !a.ownElement() {
			sum.ReadsSharedData = true
		}
	}
	if !writes {
		sum.WritesOwnElementOnly = false // nothing written at all
	}
	return sum
}

// AlwaysWritesOwn reports whether the function unconditionally stores to
// its own element (i, j) on every invocation — a top-level store outside
// any conditional.  When true, the two-copy lowering may use a cheap
// pointer swap instead of a conservative per-iteration copy phase, because
// every element of the new copy is freshly written (the Section 6.1
// Stencil optimization).
func AlwaysWritesOwn(fn *Func) bool {
	for _, s := range fn.Body {
		if st, ok := s.(*storeStmt); ok {
			a := access{write: true, ix: analyzeIndex(st.ix), jx: analyzeIndex(st.jx)}
			if a.ownElement() {
				return true
			}
		}
	}
	return false
}
