// Package lang implements a miniature C** front end: a lexer, parser,
// access analyzer and interpreter for single parallel functions over
// two-dimensional aggregates.
//
// The paper's division of labor gives the compiler two jobs: analyze a
// parallel function's data accesses, and lower it either to explicit
// two-copy code or to LCM directives (Section 6).  This package performs
// both for a small but genuine language:
//
//	parallel stencil(A) {
//	    A[i][j] = (A[i-1][j] + A[i+1][j] + A[i][j-1] + A[i][j+1]) * 0.25;
//	}
//
//	parallel sum(A) {
//	    total %+= A[i][j];
//	}
//
// Functions are applied to the interior elements of an aggregate; the
// pseudo-variables i and j name the element the invocation operates on
// (the paper's #0/#1).  Supported constructs: float expressions with
// + - * /, comparisons, abs(), parenthesization; let bindings; if/else;
// assignment to subscripted aggregate elements; the %+=, %min= and %max=
// reduction assignments into scalar reduction variables.
//
// Compile analyzes the body (does every invocation write only its own
// element?  does it read elements other invocations write?  are subscripts
// analyzable at all?) and produces the cstar.AccessSummary that drives
// plan selection, exactly the decision procedure Section 6 sketches.
package lang

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind classifies tokens.
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokPunct // single or multi char punctuation/operator
)

// token is one lexeme with its source position.
type token struct {
	kind tokKind
	text string
	pos  int // byte offset, for error messages
	line int
}

// lexer splits source text into tokens.
type lexer struct {
	src    string
	off    int
	line   int
	tokens []token
}

// lex tokenizes src.  It returns an error carrying line information for
// the first bad character.
func lex(src string) ([]token, error) {
	lx := &lexer{src: src, line: 1}
	for lx.off < len(lx.src) {
		c := lx.src[lx.off]
		switch {
		case c == '\n':
			lx.line++
			lx.off++
		case c == ' ' || c == '\t' || c == '\r':
			lx.off++
		case c == '/' && lx.off+1 < len(lx.src) && lx.src[lx.off+1] == '/':
			for lx.off < len(lx.src) && lx.src[lx.off] != '\n' {
				lx.off++
			}
		case isIdentStart(rune(c)):
			lx.ident()
		case unicode.IsDigit(rune(c)) || (c == '.' && lx.off+1 < len(lx.src) && unicode.IsDigit(rune(lx.src[lx.off+1]))):
			lx.number()
		default:
			if !lx.punct() {
				return nil, fmt.Errorf("line %d: unexpected character %q", lx.line, c)
			}
		}
	}
	lx.emit(tokEOF, "", lx.off)
	return lx.tokens, nil
}

func isIdentStart(c rune) bool {
	return unicode.IsLetter(c) || c == '_'
}

func (lx *lexer) emit(k tokKind, text string, pos int) {
	lx.tokens = append(lx.tokens, token{kind: k, text: text, pos: pos, line: lx.line})
}

func (lx *lexer) ident() {
	start := lx.off
	for lx.off < len(lx.src) && (isIdentStart(rune(lx.src[lx.off])) || unicode.IsDigit(rune(lx.src[lx.off]))) {
		lx.off++
	}
	lx.emit(tokIdent, lx.src[start:lx.off], start)
}

func (lx *lexer) number() {
	start := lx.off
	seenDot := false
	for lx.off < len(lx.src) {
		c := lx.src[lx.off]
		if c == '.' && !seenDot {
			seenDot = true
			lx.off++
			continue
		}
		if !unicode.IsDigit(rune(c)) {
			break
		}
		lx.off++
	}
	lx.emit(tokNumber, lx.src[start:lx.off], start)
}

// multi-character operators, longest first.
var multiOps = []string{"%max=", "%min=", "%+=", "==", "!=", "<=", ">=", "&&", "||"}

func (lx *lexer) punct() bool {
	rest := lx.src[lx.off:]
	for _, op := range multiOps {
		if strings.HasPrefix(rest, op) {
			lx.emit(tokPunct, op, lx.off)
			lx.off += len(op)
			return true
		}
	}
	switch rest[0] {
	case '+', '-', '*', '/', '(', ')', '[', ']', '{', '}', ';', ',', '=', '<', '>', '!':
		lx.emit(tokPunct, rest[:1], lx.off)
		lx.off++
		return true
	}
	return false
}
