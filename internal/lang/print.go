package lang

import (
	"fmt"
	"strings"
)

// Format renders a parsed function back to canonical source form: stable
// spacing, one statement per line, explicit parentheses only where the
// grammar needs them.  Round-tripping Format through Parse yields an
// equivalent AST (see TestFormatRoundTrip), which makes it useful both
// for debugging the compiler and for golden tests.
func Format(fn *Func) string {
	var b strings.Builder
	fmt.Fprintf(&b, "parallel %s(%s) {\n", fn.Name, fn.Agg)
	printStmts(&b, fn.Body, 1, fn.Agg)
	b.WriteString("}\n")
	return b.String()
}

func indent(b *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("    ")
	}
}

func printStmts(b *strings.Builder, ss []stmt, depth int, agg string) {
	for _, s := range ss {
		indent(b, depth)
		switch v := s.(type) {
		case *letStmt:
			fmt.Fprintf(b, "let %s = %s;\n", v.name, formatExpr(v.e, agg, 0))
		case *storeStmt:
			b.WriteString(agg)
			printSubscripts(b, v.ix, v.jx, agg)
			fmt.Fprintf(b, " = %s;\n", formatExpr(v.e, agg, 0))
		case *redStmt:
			fmt.Fprintf(b, "%s %s %s;\n", v.name, v.op, formatExpr(v.e, agg, 0))
		case *ifStmt:
			fmt.Fprintf(b, "if (%s) {\n", formatExpr(v.cond, agg, 0))
			printStmts(b, v.then, depth+1, agg)
			indent(b, depth)
			if len(v.els) > 0 {
				b.WriteString("} else {\n")
				printStmts(b, v.els, depth+1, agg)
				indent(b, depth)
			}
			b.WriteString("}\n")
		}
	}
}

func printSubscripts(b *strings.Builder, ix, jx expr, agg string) {
	fmt.Fprintf(b, "[%s]", formatExpr(ix, agg, 0))
	if jx != nil {
		fmt.Fprintf(b, "[%s]", formatExpr(jx, agg, 0))
	}
}

// precedence levels for minimal parenthesization, matching the grammar:
// 1 ||, 2 &&, 3 comparisons, 4 + -, 5 * /, 6 unary/primary.
func opPrec(op string) int {
	switch op {
	case "||":
		return 1
	case "&&":
		return 2
	case "==", "!=", "<", "<=", ">", ">=":
		return 3
	case "+", "-":
		return 4
	default: // * /
		return 5
	}
}

// formatExpr renders e, parenthesizing when its precedence is below the
// context's.
func formatExpr(e expr, agg string, ctx int) string {
	switch v := e.(type) {
	case *numLit:
		if v.v == float64(int64(v.v)) {
			return fmt.Sprintf("%d", int64(v.v))
		}
		return fmt.Sprintf("%g", v.v)
	case *varRef:
		return v.name
	case *negOp:
		return "-" + formatExpr(v.e, agg, 6)
	case *absCall:
		return "abs(" + formatExpr(v.e, agg, 0) + ")"
	case *aggRef:
		var b strings.Builder
		b.WriteString(agg)
		printSubscripts(&b, v.ix, v.jx, agg)
		return b.String()
	case *binOp:
		p := opPrec(v.op)
		// Left-associative grammar: the right operand needs one level
		// more to force re-grouping on round trip.
		s := formatExpr(v.l, agg, p) + " " + v.op + " " + formatExpr(v.r, agg, p+1)
		if p < ctx {
			return "(" + s + ")"
		}
		return s
	default:
		return "?"
	}
}
