package lang

import (
	"strings"
	"sync/atomic"
	"testing"
	"testing/quick"

	"lcm/internal/cost"
	"lcm/internal/cstar"
	"lcm/internal/tempest"
)

const stencilSrc = `
// four-point relaxation
parallel stencil(A) {
    A[i][j] = (A[i-1][j] + A[i+1][j] + A[i][j-1] + A[i][j+1]) * 0.25;
}`

const thresholdSrc = `
parallel threshold(A) {
    let v = A[i][j];
    let nv = (A[i-1][j] + A[i+1][j] + A[i][j-1] + A[i][j+1]) * 0.25;
    if (abs(nv - v) > 0.05) {
        A[i][j] = nv;
    }
}`

const sumSrc = `
parallel sum(A) {
    total %+= A[i][j];
    peak %max= A[i][j];
    low %min= A[i][j];
}`

const dynamicSrc = `
parallel scatter(A) {
    let t = A[i][j] * 3;
    A[i][t - t + j] = t;
}`

func TestLexBasics(t *testing.T) {
	toks, err := lex("A[i-1] %+= 0.25 // comment\n<= %max=")
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tk := range toks {
		texts = append(texts, tk.text)
	}
	want := []string{"A", "[", "i", "-", "1", "]", "%+=", "0.25", "<=", "%max=", ""}
	if len(texts) != len(want) {
		t.Fatalf("tokens %q", texts)
	}
	for k := range want {
		if texts[k] != want[k] {
			t.Fatalf("token %d = %q, want %q", k, texts[k], want[k])
		}
	}
}

func TestLexRejectsBadChar(t *testing.T) {
	if _, err := lex("a @ b"); err == nil || !strings.Contains(err.Error(), "line 1") {
		t.Fatalf("err = %v", err)
	}
}

func TestParseStencil(t *testing.T) {
	fn, err := Parse(stencilSrc)
	if err != nil {
		t.Fatal(err)
	}
	if fn.Name != "stencil" || fn.Agg != "A" || len(fn.Body) != 1 {
		t.Fatalf("fn = %+v", fn)
	}
	if _, ok := fn.Body[0].(*storeStmt); !ok {
		t.Fatalf("body[0] is %T", fn.Body[0])
	}
}

func TestParseReductions(t *testing.T) {
	fn, err := Parse(sumSrc)
	if err != nil {
		t.Fatal(err)
	}
	if len(fn.Reductions) != 3 {
		t.Fatalf("reductions = %v", fn.Reductions)
	}
	if fn.Reductions[0] != (Reduction{"total", RedSum}) ||
		fn.Reductions[1] != (Reduction{"peak", RedMax}) ||
		fn.Reductions[2] != (Reduction{"low", RedMin}) {
		t.Fatalf("reductions = %v", fn.Reductions)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",                                     // no 'parallel'
		"parallel f(A) { A[i][j] = ; }",        // missing expr
		"parallel f(A) { A[] = 1; }",           // empty subscript
		"parallel f(A) { x = 1; }",             // unknown statement form
		"parallel f(A) { let i = 1; }",         // reserved name
		"parallel f(A) { A[i][j] = y; }",       // unknown name
		"parallel f(A) { t %+= 1; t %max= 1;}", // operator mismatch
		"parallel f(A) { A[i][j] = 1;",         // unterminated block
		"parallel f(A) { A[i][j] = 1; } junk",  // trailing input
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestAnalyzeStencil(t *testing.T) {
	p, err := Compile(stencilSrc)
	if err != nil {
		t.Fatal(err)
	}
	want := cstar.AccessSummary{WritesOwnElementOnly: true, ReadsSharedData: true}
	if p.Summary != want {
		t.Fatalf("summary %+v", p.Summary)
	}
	if !AlwaysWritesOwn(p.Fn) {
		t.Fatal("stencil writes unconditionally")
	}
}

func TestAnalyzeThreshold(t *testing.T) {
	p, err := Compile(thresholdSrc)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Summary.WritesOwnElementOnly || !p.Summary.ReadsSharedData || p.Summary.DynamicStructure {
		t.Fatalf("summary %+v", p.Summary)
	}
	// The store is conditional: the two-copy lowering must use the
	// conservative copy phase, not a pointer swap.
	if AlwaysWritesOwn(p.Fn) {
		t.Fatal("conditional store misclassified as unconditional")
	}
}

func TestAnalyzeReductionOnly(t *testing.T) {
	p, err := Compile(sumSrc)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Summary.HasReduction || p.Summary.WritesOwnElementOnly {
		t.Fatalf("summary %+v", p.Summary)
	}
}

func TestAnalyzeDynamicSubscript(t *testing.T) {
	p, err := Compile(dynamicSrc)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Summary.DynamicStructure {
		t.Fatalf("summary %+v: data-dependent subscript not detected", p.Summary)
	}
}

// runProgram executes src on a machine and compares against SeqApply.
func runProgram(t *testing.T, src string, sys cstar.System, rows, cols, iters int, init func(i, j int) float32) (*Instance, map[string]float64) {
	t.Helper()
	p, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	m := cstar.NewMachine(4, 32, cost.Default(), sys)
	inst := p.Instantiate(m, rows, cols, sys)
	m.Freeze()
	inst.Init(init)
	m.Run(func(n *tempest.Node) {
		if err := inst.RunNode(n, iters, cstar.StaticSchedule{}); err != nil {
			t.Error(err)
		}
	})
	cstar.DrainToHome(m)
	wantMesh, wantReds := p.SeqApply(rows, cols, iters, init)
	got := inst.Result(iters)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if got.Peek(i, j) != wantMesh[i][j] {
				t.Fatalf("%v: A[%d][%d] = %v, want %v", sys, i, j, got.Peek(i, j), wantMesh[i][j])
			}
		}
	}
	return inst, wantReds
}

func meshInit(i, j int) float32 {
	return float32((i*13+j*7)%23) / 3
}

func TestCompiledStencilMatchesReference(t *testing.T) {
	for _, sys := range []cstar.System{cstar.Copying, cstar.LCMscc, cstar.LCMmcc} {
		runProgram(t, stencilSrc, sys, 16, 16, 4, meshInit)
	}
}

func TestCompiledThresholdMatchesReference(t *testing.T) {
	// Conditional stores: exercises the conservative copy-phase lowering
	// under Copying and sparse modification under LCM.
	for _, sys := range []cstar.System{cstar.Copying, cstar.LCMscc, cstar.LCMmcc} {
		runProgram(t, thresholdSrc, sys, 16, 16, 5, meshInit)
	}
}

func TestCompiledReductionsMatchReference(t *testing.T) {
	// Floating-point sums combine in flush-arrival order, which is not
	// deterministic, so compare with a tight relative tolerance; min and
	// max are order-independent and must be exact.
	for _, sys := range []cstar.System{cstar.Copying, cstar.LCMmcc} {
		for _, iters := range []int{1, 3} {
			inst, want := runProgram(t, sumSrc, sys, 12, 12, iters, meshInit)
			for name, w := range want {
				got := inst.Reduction(name).Var().Peek(0)
				if name == "total" {
					if d := got - w; d > 1e-6*w || d < -1e-6*w {
						t.Fatalf("%v iters=%d: %s = %v, want %v", sys, iters, name, got, w)
					}
				} else if got != w {
					t.Fatalf("%v iters=%d: %s = %v, want %v", sys, iters, name, got, w)
				}
			}
		}
	}
}

func TestCompiledOddIterationParity(t *testing.T) {
	runProgram(t, stencilSrc, cstar.Copying, 12, 12, 3, meshInit)
	runProgram(t, stencilSrc, cstar.Copying, 12, 12, 2, meshInit)
}

func TestRuntimeBoundsFaultReported(t *testing.T) {
	src := `parallel bad(A) { A[i][j] = A[i + 100][j]; }`
	p, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	m := cstar.NewMachine(4, 32, cost.Default(), cstar.LCMmcc)
	inst := p.Instantiate(m, 8, 8, cstar.LCMmcc)
	m.Freeze()
	inst.Init(func(i, j int) float32 { return 0 })
	var errs atomic.Int32
	m.Run(func(n *tempest.Node) {
		if err := inst.RunNode(n, 2, cstar.StaticSchedule{}); err != nil {
			errs.Add(1)
		}
	})
	if errs.Load() == 0 {
		t.Fatal("runtime bounds fault not reported")
	}
	if inst.Err() == nil || !strings.Contains(inst.Err().Error(), "out of range") {
		t.Fatalf("Err() = %v", inst.Err())
	}
}

// Property: for random affine stencil coefficients and mesh seeds, the
// compiled program matches the sequential reference on every system.
func TestCompiledProgramProperty(t *testing.T) {
	f := func(seed uint8, a, b, c uint8) bool {
		// Coefficients in [0,3); offsets +-1.
		ca := float32(a%3) / 2
		cb := float32(b%3) / 3
		cc := float32(c%3) / 4
		src := buildSrc(ca, cb, cc)
		p, err := Compile(src)
		if err != nil {
			return false
		}
		init := func(i, j int) float32 {
			return float32((i*int(seed+1)+j*3)%17) / 2
		}
		wantMesh, _ := p.SeqApply(10, 10, 3, init)
		for _, sys := range []cstar.System{cstar.Copying, cstar.LCMmcc} {
			m := cstar.NewMachine(3, 32, cost.Zero(), sys)
			inst := p.Instantiate(m, 10, 10, sys)
			m.Freeze()
			inst.Init(init)
			ok := true
			m.Run(func(n *tempest.Node) {
				if err := inst.RunNode(n, 3, cstar.RotatingSchedule{}); err != nil {
					ok = false
				}
			})
			if !ok {
				return false
			}
			cstar.DrainToHome(m)
			got := inst.Result(3)
			for i := 0; i < 10; i++ {
				for j := 0; j < 10; j++ {
					if got.Peek(i, j) != wantMesh[i][j] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func buildSrc(a, b, c float32) string {
	return `parallel gen(A) {
		A[i][j] = A[i-1][j] * ` + ftoa(a) + ` + A[i][j+1] * ` + ftoa(b) + ` + A[i][j] * ` + ftoa(c) + `;
	}`
}

func ftoa(v float32) string {
	switch {
	case v == 0:
		return "0"
	case v == 0.5:
		return "0.5"
	default:
		// Render as fraction to stay within the literal grammar.
		for den := 2; den <= 4; den++ {
			for num := 0; num <= den; num++ {
				if float32(num)/float32(den) == v {
					return itoa(num) + "/" + itoa(den)
				}
			}
		}
		return "1"
	}
}

func itoa(v int) string { return string(rune('0' + v)) }

const vectorSrc = `
parallel smooth(V) {
    V[i] = (V[i-1] + V[i+1]) * 0.5;
    total %+= V[i];
}`

func TestParseVectorRank(t *testing.T) {
	fn, err := Parse(vectorSrc)
	if err != nil {
		t.Fatal(err)
	}
	if fn.Rank != 1 {
		t.Fatalf("rank = %d, want 1", fn.Rank)
	}
	// Mixed ranks rejected.
	if _, err := Parse(`parallel f(A) { A[i] = A[i][j]; }`); err == nil {
		t.Fatal("mixed-rank use accepted")
	}
}

func TestAnalyzeVector(t *testing.T) {
	p, err := Compile(vectorSrc)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Summary.WritesOwnElementOnly || !p.Summary.ReadsSharedData {
		t.Fatalf("summary %+v", p.Summary)
	}
	if !AlwaysWritesOwn(p.Fn) {
		t.Fatal("unconditional own-element store not recognized in 1-D")
	}
}

func TestCompiledVectorMatchesReference(t *testing.T) {
	p, err := Compile(vectorSrc)
	if err != nil {
		t.Fatal(err)
	}
	const n, iters = 64, 5
	init1 := func(i, j int) float32 { return float32((i*7)%13) / 2 }
	wantMesh, wantReds := p.SeqApply(n, 0, iters, init1)
	for _, sys := range []cstar.System{cstar.Copying, cstar.LCMscc, cstar.LCMmcc} {
		m := cstar.NewMachine(4, 32, cost.Default(), sys)
		inst := p.Instantiate(m, n, 0, sys)
		m.Freeze()
		inst.Init(init1)
		m.Run(func(nd *tempest.Node) {
			if err := inst.RunNode(nd, iters, cstar.StaticSchedule{}); err != nil {
				t.Error(err)
			}
		})
		cstar.DrainToHome(m)
		got := inst.Result(iters)
		for i := 0; i < n; i++ {
			if got.Peek(i, 0) != wantMesh[i][0] {
				t.Fatalf("%v: V[%d] = %v, want %v", sys, i, got.Peek(i, 0), wantMesh[i][0])
			}
		}
		gotRed := inst.Reduction("total").Var().Peek(0)
		w := wantReds["total"]
		if d := gotRed - w; d > 1e-6*w || d < -1e-6*w {
			t.Fatalf("%v: total = %v, want %v", sys, gotRed, w)
		}
	}
}
