package workloads

import (
	"fmt"
	"sync"

	"lcm/internal/core"
	"lcm/internal/cstar"
	"lcm/internal/memsys"
	"lcm/internal/tempest"
)

// ThresholdSpec parameterizes the Threshold benchmark of Section 6.3: a
// stencil over a structured mesh that updates a point only when its value
// changes by more than a threshold.  The mesh is initially zero except for
// a few fixed-potential points, so only cells near a source change during
// the early iterations and the modified fraction stays small (the paper
// reports 2.1%).
//
// Paper configuration: N=512, Iters=50, static partitioning.
type ThresholdSpec struct {
	N     int
	Iters int
	// Threshold is the minimum change that triggers an update.
	Threshold float32
	// Sources is the number of fixed-potential points.
	Sources int
}

// PaperThreshold returns the paper's configuration.
func PaperThreshold() ThresholdSpec {
	return ThresholdSpec{N: 512, Iters: 50, Threshold: 0.05, Sources: 6}
}

// thresholdSources spreads the fixed points deterministically over the
// interior.
func thresholdSources(spec ThresholdSpec) [][2]int {
	pts := make([][2]int, 0, spec.Sources)
	for s := 0; s < spec.Sources; s++ {
		i := (s*2097 + 311) % (spec.N - 2)
		j := (s*4421 + 739) % (spec.N - 2)
		pts = append(pts, [2]int{1 + i, 1 + j})
	}
	return pts
}

// RunThreshold executes the Threshold benchmark on the given system.
func RunThreshold(sys cstar.System, spec ThresholdSpec, cfg Config) Result {
	cfg = cfg.norm()
	res := Result{Workload: "Threshold", System: sys, Extra: map[string]float64{}}
	m := cfg.machine(sys)

	a := cstar.NewMatrixF32(m, "T", spec.N, spec.N, cstar.DataPolicy(sys), memsys.Interleaved)
	var old *cstar.MatrixF32
	if sys == cstar.Copying {
		// Without LCM the mesh must be fully copied each iteration to
		// move values from the old mesh to the new one; the program
		// itself copies the not-updated values (Section 6.3), so the
		// copy is folded into the update loop below.
		old = cstar.NewMatrixF32(m, "T.old", spec.N, spec.N, core.Coherent(), memsys.Interleaved)
	}
	m.Freeze()

	srcs := thresholdSources(spec)
	// Dense fixed-point lookup (a map lookup per visited cell dominated
	// the host-time profile); fixedRow gates the row-span fast path below.
	fixed := make([]bool, spec.N*spec.N)
	fixedRow := make([]bool, spec.N)
	for _, p := range srcs {
		a.Poke(p[0], p[1], 100)
		if old != nil {
			old.Poke(p[0], p[1], 100)
		}
		fixed[p[0]*spec.N+p[1]] = true
		fixedRow[p[0]] = true
	}

	plan := cstar.Lower(stencilSummary, sys)
	sched := cstar.StaticSchedule{}
	inner := spec.N - 2
	total := inner * inner
	scratch := newRowScratch(cfg.P, inner)
	var updated, visited int64
	var tallyMu sync.Mutex

	runErr := m.RunErr(func(n *tempest.Node) {
		cur, prev := a, old
		var myUpdated, myVisited int64
		for it := 0; it < spec.Iters; it++ {
			src := cur
			if plan.Mode == cstar.ModeCopying {
				src = prev
			}
			cell := func(i, j int) {
				myVisited++
				v := src.Get(n, i, j)
				if fixed[i*spec.N+j] {
					if plan.Mode == cstar.ModeCopying {
						cur.Set(n, i, j, v) // program-level copy
					}
					return
				}
				nv := stencilVal(src.Get(n, i-1, j), src.Get(n, i+1, j),
					src.Get(n, i, j-1), src.Get(n, i, j+1))
				n.Compute(5)
				if abs32(nv-v) > spec.Threshold {
					cur.Set(n, i, j, nv)
					myUpdated++
				} else if plan.Mode == cstar.ModeCopying {
					// The explicit-copy version must still move the
					// unchanged value into the new mesh.
					cur.Set(n, i, j, v)
					n.Ctr.CopiedWords++
				}
			}
			if plan.Mode == cstar.ModeCopying {
				// Span sweep over rows without fixed points (reads from
				// the old mesh only, writes to the new mesh only); rows
				// holding a fixed point keep the per-element path.
				// Accounting matches the scalar loop: k value reads, 4k
				// neighbour reads, 5k compute units and k writes per
				// k-element piece.
				sc := scratch[n.ID]
				lo, hi := sched.Range(n.ID, n.M.P, it, total)
				sweepRowPieces(lo, hi, inner, func(i, jlo, jhi int) {
					if fixedRow[i] {
						for j := jlo; j < jhi; j++ {
							cell(i, j)
						}
						return
					}
					k := jhi - jlo
					myVisited += int64(k)
					val, out := sc.val[:k], sc.out[:k]
					up, down := sc.up[:k], sc.down[:k]
					left, right := sc.left[:k], sc.right[:k]
					src.GetRowSpan(n, i, jlo, val)
					src.GetRowSpan(n, i-1, jlo, up)
					src.GetRowSpan(n, i+1, jlo, down)
					src.GetRowSpan(n, i, jlo-1, left)
					src.GetRowSpan(n, i, jlo+1, right)
					for x := 0; x < k; x++ {
						nv := stencilVal(up[x], down[x], left[x], right[x])
						if abs32(nv-val[x]) > spec.Threshold {
							out[x] = nv
							myUpdated++
						} else {
							out[x] = val[x]
							n.Ctr.CopiedWords++
						}
					}
					n.Compute(5 * int64(k))
					cur.SetRowSpan(n, i, jlo, out)
				})
				cstar.EndParallel(n)
				cur, prev = prev, cur
				continue
			}
			cstar.ForEach(n, sched, plan, it, total, func(idx int) {
				cell(1+idx/inner, 1+idx%inner)
			})
			cstar.EndParallel(n)
		}
		tallyMu.Lock()
		updated += myUpdated
		visited += myVisited
		tallyMu.Unlock()
	})
	if runErr != nil {
		// The machine is poisoned (a node died or the watchdog fired);
		// report the structured error without reading further state.
		res.Err = runErr
		return res
	}
	finish(m, &res)
	res.Extra["modified_ratio"] = float64(updated) / float64(visited)

	if cfg.Verify {
		final := a
		if sys == cstar.Copying && spec.Iters%2 == 0 {
			final = old
		}
		cstar.DrainToHome(m)
		if res.Err == nil {
			res.Err = verifyThreshold(final, spec)
		}
	}
	return res
}

func abs32(v float32) float32 {
	if v < 0 {
		return -v
	}
	return v
}

// verifyThreshold recomputes the benchmark sequentially and compares.
func verifyThreshold(got *cstar.MatrixF32, spec ThresholdSpec) error {
	n := spec.N
	cur := make([][]float32, n)
	old := make([][]float32, n)
	for i := range cur {
		cur[i] = make([]float32, n)
		old[i] = make([]float32, n)
	}
	fixed := make(map[[2]int]bool)
	for _, p := range thresholdSources(spec) {
		cur[p[0]][p[1]] = 100
		old[p[0]][p[1]] = 100
		fixed[p] = true
	}
	for it := 0; it < spec.Iters; it++ {
		cur, old = old, cur
		for i := 1; i < n-1; i++ {
			for j := 1; j < n-1; j++ {
				v := old[i][j]
				if fixed[[2]int{i, j}] {
					cur[i][j] = v
					continue
				}
				nv := stencilVal(old[i-1][j], old[i+1][j], old[i][j-1], old[i][j+1])
				if abs32(nv-v) > spec.Threshold {
					cur[i][j] = nv
				} else {
					cur[i][j] = v
				}
			}
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if !approxEq(got.Peek(i, j), cur[i][j]) {
				return fmt.Errorf("threshold: T[%d][%d] = %v, want %v", i, j, got.Peek(i, j), cur[i][j])
			}
		}
	}
	return nil
}
