package workloads

import (
	"testing"

	"lcm/internal/cstar"
)

// Golden accounting tests: protocol event counts for fixed configurations
// are fully deterministic (fault counts depend only on the access
// schedule, not on goroutine interleaving), so any drift signals an
// unintended change to protocol accounting.  Update the numbers only for
// deliberate protocol changes, and update EXPERIMENTS.md alongside.

type golden struct {
	misses, marks, flushes int64
	cleanHome, cleanLocal  int64
}

func snapshot(r Result) golden {
	return golden{
		misses:     r.C.Misses,
		marks:      r.C.Marks,
		flushes:    r.C.Flushes,
		cleanHome:  r.S.CleanCopiesHome,
		cleanLocal: r.S.CleanCopiesLocal,
	}
}

func TestGoldenStencilCounts(t *testing.T) {
	cfg := Config{P: 8, Verify: true}
	spec := StencilSpec{N: 64, Iters: 4, Sched: "static"}
	for _, tc := range []struct {
		sys  cstar.System
		want golden
	}{
		{cstar.Copying, golden{misses: 1520, marks: 0, flushes: 0, cleanHome: 0, cleanLocal: 0}},
		{cstar.LCMscc, golden{misses: 17788, marks: 15376, flushes: 15376, cleanHome: 1984, cleanLocal: 0}},
		{cstar.LCMmcc, golden{misses: 2472, marks: 15376, flushes: 15376, cleanHome: 1984, cleanLocal: 2008}},
	} {
		// The goldens must hold both through the span fast path and the
		// per-element fallback.
		for _, scalar := range []bool{false, true} {
			cfg.ScalarAccess = scalar
			r := RunStencil(tc.sys, spec, cfg)
			if r.Err != nil {
				t.Fatalf("%v (scalar=%v): %v", tc.sys, scalar, r.Err)
			}
			if got := snapshot(r); got != tc.want {
				t.Errorf("%v (scalar=%v): counts drifted:\n got  %+v\n want %+v",
					tc.sys, scalar, got, tc.want)
			}
		}
	}
}

func TestGoldenCountsStableAcrossRuns(t *testing.T) {
	// The counts above must not depend on goroutine interleaving.
	cfg := Config{P: 8}
	spec := StencilSpec{N: 48, Iters: 3, Sched: "dynamic"}
	first := snapshot(RunStencil(cstar.LCMmcc, spec, cfg))
	for i := 0; i < 3; i++ {
		if got := snapshot(RunStencil(cstar.LCMmcc, spec, cfg)); got != first {
			t.Fatalf("run %d: counts vary: %+v vs %+v", i, got, first)
		}
	}
}
