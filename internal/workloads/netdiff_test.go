package workloads

import (
	"testing"

	"lcm/internal/cost"
	"lcm/internal/cstar"
	"lcm/internal/memsys"
	"lcm/internal/net"
	"lcm/internal/tempest"
)

// These tests pin the exact virtual-cycle charge of every remote protocol
// message path as a closed-form expression of the cost model.  They were
// written against the flat charging that predates internal/net and must
// keep passing with the default (uniform) network model: that is the
// bit-exactness contract of `-net=uniform`.
//
// Each scenario has a single acting node per phase, and assertions are
// limited to quantities that cannot depend on goroutine interleaving: the
// final actor's own clock (its charges plus deterministic barrier maxima
// it inherited) and machine-total counters.

// netdiffMachine builds a P-node machine whose vector of n float32s is
// Blocked across homes, so the block owned by each node is known.
func netdiffMachine(t *testing.T, p, n int, sys cstar.System) (*tempest.Machine, *cstar.VectorF32, cost.Model) {
	t.Helper()
	c := cost.Default()
	m := cstar.NewMachine(p, 32, c, sys)
	v := cstar.NewVectorF32(m, "v", n, cstar.DataPolicy(sys), memsys.Blocked)
	m.Freeze()
	return m, v, c
}

// TestStacheRemoteChargeFormulas drives one remote read miss, one local
// fill, and one remote upgrade through the Stache protocol from a single
// actor and checks the actor's clock against the cost-model formula.
func TestStacheRemoteChargeFormulas(t *testing.T) {
	// P=2, 16 floats = 2 blocks: block 0 homed at node 0, block 1 at 1.
	m, v, c := netdiffMachine(t, 2, 16, cstar.Copying)
	bs := int64(32)
	m.Run(func(n *tempest.Node) {
		if n.ID != 0 {
			return
		}
		_ = v.Get(n, 8)  // remote read miss on block 1
		_ = v.Get(n, 0)  // local fill on block 0
		v.Set(n, 8, 1.5) // remote upgrade (we hold block 1 read-only)
	})
	n0 := m.Nodes[0]
	want := (c.RemoteRoundTrip + bs*c.PerByte + c.CacheHit) + // remote miss
		(c.LocalFill + c.CacheHit) + // local fill
		(c.Upgrade + c.CacheHit) // upgrade
	if got := n0.Clock(); got != want {
		t.Errorf("actor clock = %d, want %d", got, want)
	}
	// The home of block 1 was charged handler occupancy for the miss and
	// the upgrade.
	if got, want := m.Nodes[1].Clock(), 2*c.HomeOccupancy; got != want {
		t.Errorf("home clock = %d, want %d", got, want)
	}
	tc := m.TotalCounters()
	if tc.Misses != 2 || tc.RemoteMisses != 1 || tc.LocalFills != 1 || tc.Upgrades != 1 {
		t.Errorf("counters: %+v", tc)
	}
}

// TestStacheThreeHopChargeFormula covers the three-hop miss: the home
// forwards the request to a dirty remote owner.
func TestStacheThreeHopChargeFormula(t *testing.T) {
	// P=4, 32 floats = 4 blocks: block i homed at node i.
	m, v, c := netdiffMachine(t, 4, 32, cstar.Copying)
	bs := int64(32)
	m.Run(func(n *tempest.Node) {
		if n.ID == 1 {
			v.Set(n, 16, 2.0) // block 2: node 1 becomes dirty exclusive owner
		}
		n.Barrier()
		if n.ID == 0 {
			_ = v.Get(n, 17) // three-hop read: home 2, owner 1
		}
	})
	// Phase A: node 1's write miss dominates the barrier maximum.
	maxA := c.RemoteRoundTrip + bs*c.PerByte + c.CacheHit
	want := maxA + c.Barrier + // inherited at the barrier
		(c.RemoteRoundTrip + bs*c.PerByte + c.ThirdHop + c.CacheHit)
	if got := m.Nodes[0].Clock(); got != want {
		t.Errorf("actor clock = %d, want %d", got, want)
	}
	if got := m.MaxClock(); got != want {
		t.Errorf("MaxClock = %d, want %d (final actor must dominate)", got, want)
	}
}

// TestStacheInvalidationChargeFormula covers write-fault invalidation of
// outstanding read-only copies.
func TestStacheInvalidationChargeFormula(t *testing.T) {
	m, v, c := netdiffMachine(t, 4, 32, cstar.Copying)
	bs := int64(32)
	m.Run(func(n *tempest.Node) {
		if n.ID == 1 || n.ID == 2 {
			_ = v.Get(n, 16) // two read-only sharers of block 2
		}
		n.Barrier()
		if n.ID == 0 {
			v.Set(n, 16, 3.0) // invalidates both sharers, then misses
		}
	})
	maxA := c.RemoteRoundTrip + bs*c.PerByte + c.CacheHit
	want := maxA + c.Barrier +
		(2*c.InvalidatePerCopy + c.RemoteRoundTrip + bs*c.PerByte + c.CacheHit)
	if got := m.Nodes[0].Clock(); got != want {
		t.Errorf("actor clock = %d, want %d", got, want)
	}
	if tc := m.TotalCounters(); tc.InvalidationsSent != 2 {
		t.Errorf("InvalidationsSent = %d, want 2", tc.InvalidationsSent)
	}
}

// TestLCMChargeFormulas covers the LCM mark (fetch and upgrade flavors),
// flush, and the mcc local clean-copy re-mark, as cost-model formulas.
func TestLCMChargeFormulas(t *testing.T) {
	for _, sys := range []cstar.System{cstar.LCMmcc, cstar.LCMscc} {
		// P=2, 32 floats = 4 blocks: 0,1 homed at node 0; 2,3 at node 1.
		m, v, c := netdiffMachine(t, 2, 32, sys)
		bs := int64(32)
		m.Run(func(n *tempest.Node) {
			if n.ID != 0 {
				return
			}
			_ = v.Get(n, 16)  // remote read miss on block 2
			v.Set(n, 16, 1.0) // mark by upgrade (read-only copy in place)
			v.Set(n, 24, 2.0) // mark by fetch on block 3
			n.FlushCopies()   // two remote one-way flushes, 1 word each
			v.Set(n, 16, 3.0) // re-mark: mcc local clean copy / scc re-fetch
			_ = v.Get(n, 17)  // private hit
		})
		miss := c.RemoteRoundTrip + bs*c.PerByte
		flush := c.FlushPerBlock + 1*4*c.PerByte // one modified float32
		want := (miss + c.CacheHit) +            // read miss
			(c.Upgrade + c.CacheHit) + // mark upgrade
			(miss + c.CacheHit) + // mark fetch
			2*flush + // FlushCopies
			c.CacheHit // final private hit
		remark := c.MarkLocal // mcc: revert to the local clean copy
		homeSteal := 3*c.HomeOccupancy + 2*(c.FlushOccupancy+1*c.MergePerWord)
		if sys == cstar.LCMscc {
			remark = miss // scc: the flush dropped the copy; full re-fetch
			homeSteal += c.HomeOccupancy
		}
		want += remark + c.CacheHit
		if got := m.Nodes[0].Clock(); got != want {
			t.Errorf("%v: actor clock = %d, want %d", sys, got, want)
		}
		if got := m.Nodes[1].Clock(); got != homeSteal {
			t.Errorf("%v: home clock = %d, want %d", sys, got, homeSteal)
		}
		tc := m.TotalCounters()
		if tc.Flushes != 2 || tc.WordsFlushed != 2 || tc.Marks != 3 {
			t.Errorf("%v: counters: %+v", sys, tc)
		}
	}
}

// TestNetworkModelDifferential runs the Stencil benchmark under the
// default network (nil Config.Net), an explicit uniform model, and the
// fat tree.  The first two must agree on every counter (the explicit
// construction path is the same model); the fat tree must see the same
// message stream — protocols decide what to send from access order, not
// prices — while pricing it differently.
//
// The default and explicit-uniform runs replay the identical deterministic
// schedule, so they are compared bit-exactly for every system.  The fat
// tree prices messages differently, which shifts virtual times and hence
// the deterministic schedule itself; LCM's message stream is still fixed
// by each node's own access stream (no mid-phase revocation), but
// Copying's fault count legitimately depends on invalidation order, so the
// fattree-vs-uniform message comparison exempts Copying.
func TestNetworkModelDifferential(t *testing.T) {
	spec := StencilSpec{N: 32, Iters: 3}
	base := Config{P: 8, Verify: true}
	for _, sys := range []cstar.System{cstar.Copying, cstar.LCMscc, cstar.LCMmcc} {
		rDefault := RunStencil(sys, spec, base)
		cfgU := base
		cfgU.Net = &net.Config{Model: "uniform"}
		rUniform := RunStencil(sys, spec, cfgU)
		cfgF := base
		cfgF.Net = &net.Config{Model: "fattree"}
		rFattree := RunStencil(sys, spec, cfgF)

		for _, r := range []Result{rDefault, rUniform, rFattree} {
			if r.Err != nil {
				t.Fatalf("%v/%s: run failed: %v", sys, r.Net, r.Err)
			}
		}
		if rDefault.Net != "uniform" || rUniform.Net != "uniform" || rFattree.Net != "fattree" {
			t.Fatalf("%v: model names %q %q %q", sys, rDefault.Net, rUniform.Net, rFattree.Net)
		}
		if rDefault.C != rUniform.C {
			t.Errorf("%v: explicit uniform config drifted from default:\n got  %+v\n want %+v",
				sys, rUniform.C, rDefault.C)
		}
		if rDefault.Cycles != rUniform.Cycles {
			t.Errorf("%v: explicit uniform cycles drifted from default: %d vs %d",
				sys, rUniform.Cycles, rDefault.Cycles)
		}
		if rDefault.Links != (net.LinkStats{}) {
			t.Errorf("%v: uniform model reported links: %+v", sys, rDefault.Links)
		}
		if sys != cstar.Copying &&
			(rFattree.C.Net.Msgs != rDefault.C.Net.Msgs || rFattree.C.Net.Bytes != rDefault.C.Net.Bytes) {
			t.Errorf("%v: fattree message stream differs from uniform:\n got  %+v\n want %+v",
				sys, rFattree.C.Net, rDefault.C.Net)
		}
		if rFattree.C.Net.TotalMsgs() == 0 {
			t.Errorf("%v: fattree counted no messages", sys)
		}
		if rFattree.Links.MaxBusy == 0 || rFattree.Links.Links == 0 {
			t.Errorf("%v: fattree saw no link occupancy: %+v", sys, rFattree.Links)
		}
	}
}

// TestNetworkBadModelSurfaces checks a bad network model is recorded as
// a configuration error and surfaces at Freeze like other bad user
// input (lcmbench validates the -net flag before this point; the
// recorded error is the library-level backstop).
func TestNetworkBadModelSurfaces(t *testing.T) {
	defer func() {
		err, ok := recover().(error)
		if !ok || err == nil {
			t.Fatal("bad network model did not surface a configuration error")
		}
	}()
	cfg := Config{P: 2, Net: &net.Config{Model: "hypercube"}}
	RunStencil(cstar.Copying, StencilSpec{N: 16, Iters: 3}, cfg)
}
