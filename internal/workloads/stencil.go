package workloads

import (
	"fmt"

	"lcm/internal/core"
	"lcm/internal/cstar"
	"lcm/internal/memsys"
	"lcm/internal/tempest"
)

// StencilSpec parameterizes the Stencil benchmark of Sections 4.2/6.1:
// a four-point relaxation over a fixed two-dimensional mesh.
// Paper configuration: N=1024, Iters=50, measured with both static
// ("Stencil-stat") and dynamic ("Stencil-dyn") partitioning.
type StencilSpec struct {
	N     int
	Iters int
	// Sched is "static" or "dynamic".
	Sched string
}

// PaperStencil returns the paper's configuration.
func PaperStencil(sched string) StencilSpec {
	return StencilSpec{N: 1024, Iters: 50, Sched: sched}
}

// stencilSummary is what compiler analysis sees in the stencil parallel
// function: each invocation writes its own element and reads neighbours.
var stencilSummary = cstar.AccessSummary{WritesOwnElementOnly: true, ReadsSharedData: true}

// initStencilMesh writes the initial condition into a mesh's home image: a
// hot top boundary over a varied interior, so every element changes every
// iteration (the paper's mesh has activity and cache-block reuse
// everywhere, not a cold front creeping from one edge).
func initStencilMesh(poke func(i, j int, v float32), n int) {
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			poke(i, j, float32((i*31+j*17)%97)/9.7)
		}
	}
	for j := 0; j < n; j++ {
		poke(0, j, 100)
	}
}

// stencilVal computes one element update; both the parallel and the
// sequential code use exactly this expression, so results are bit-equal.
func stencilVal(up, down, left, right float32) float32 {
	return (up + down + left + right) * 0.25
}

// RunStencil executes the Stencil benchmark on the given memory system.
func RunStencil(sys cstar.System, spec StencilSpec, cfg Config) Result {
	cfg = cfg.norm()
	res := Result{Workload: "Stencil", System: sys, Sched: spec.Sched}
	m := cfg.machine(sys)

	a := cstar.NewMatrixF32(m, "A", spec.N, spec.N, cstar.DataPolicy(sys), memsys.Interleaved)
	var old *cstar.MatrixF32
	if sys == cstar.Copying {
		// The compiler's explicit two-copy lowering (Section 6.1): all
		// reads from the old copy, all writes to the new, pointer swap
		// after each iteration.
		old = cstar.NewMatrixF32(m, "A.old", spec.N, spec.N, core.Coherent(), memsys.Interleaved)
	}
	m.Freeze()

	initStencilMesh(a.Poke, spec.N)
	if old != nil {
		initStencilMesh(old.Poke, spec.N)
	}

	plan := cstar.Lower(stencilSummary, sys)
	sched := schedFor(spec.Sched)
	inner := spec.N - 2
	total := inner * inner

	runErr := m.RunErr(func(n *tempest.Node) {
		cur, prev := a, old
		for it := 0; it < spec.Iters; it++ {
			src := cur
			if plan.Mode == cstar.ModeCopying {
				src = prev
			}
			cstar.ForEach(n, sched, plan, it, total, func(idx int) {
				i := 1 + idx/inner
				j := 1 + idx%inner
				v := stencilVal(src.Get(n, i-1, j), src.Get(n, i+1, j),
					src.Get(n, i, j-1), src.Get(n, i, j+1))
				cur.Set(n, i, j, v)
				n.Compute(4)
			})
			cstar.EndParallel(n)
			if plan.Mode == cstar.ModeCopying {
				cur, prev = prev, cur
			}
		}
	})
	if runErr != nil {
		// The machine is poisoned (a node died or the watchdog fired);
		// report the structured error without reading further state.
		res.Err = runErr
		return res
	}
	finish(m, &res)

	if cfg.Verify {
		// Under Copying, iteration k writes a when k is even and old
		// when k is odd, so the last write (k = Iters-1) lands in a for
		// odd Iters and in old for even Iters.  Under LCM it is always a.
		final := a
		if sys == cstar.Copying && spec.Iters%2 == 0 {
			final = old
		}
		cstar.DrainToHome(m)
		if res.Err == nil {
			res.Err = verifyStencil(final, spec)
		}
	}
	return res
}

// verifyStencil recomputes the stencil sequentially with two arrays and
// compares every element.
func verifyStencil(got *cstar.MatrixF32, spec StencilSpec) error {
	n := spec.N
	cur := make([][]float32, n)
	old := make([][]float32, n)
	for i := range cur {
		cur[i] = make([]float32, n)
		old[i] = make([]float32, n)
	}
	initStencilMesh(func(i, j int, v float32) { cur[i][j] = v; old[i][j] = v }, n)
	for it := 0; it < spec.Iters; it++ {
		cur, old = old, cur
		for i := 1; i < n-1; i++ {
			for j := 1; j < n-1; j++ {
				cur[i][j] = stencilVal(old[i-1][j], old[i+1][j], old[i][j-1], old[i][j+1])
			}
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if !approxEq(got.Peek(i, j), cur[i][j]) {
				return fmt.Errorf("stencil: A[%d][%d] = %v, want %v", i, j, got.Peek(i, j), cur[i][j])
			}
		}
	}
	return nil
}
