package workloads

import (
	"fmt"

	"lcm/internal/core"
	"lcm/internal/cstar"
	"lcm/internal/memsys"
	"lcm/internal/tempest"
)

// StencilSpec parameterizes the Stencil benchmark of Sections 4.2/6.1:
// a four-point relaxation over a fixed two-dimensional mesh.
// Paper configuration: N=1024, Iters=50, measured with both static
// ("Stencil-stat") and dynamic ("Stencil-dyn") partitioning.
type StencilSpec struct {
	N     int
	Iters int
	// Sched is "static" or "dynamic".
	Sched string
}

// PaperStencil returns the paper's configuration.
func PaperStencil(sched string) StencilSpec {
	return StencilSpec{N: 1024, Iters: 50, Sched: sched}
}

// stencilSummary is what compiler analysis sees in the stencil parallel
// function: each invocation writes its own element and reads neighbours.
var stencilSummary = cstar.AccessSummary{WritesOwnElementOnly: true, ReadsSharedData: true}

// initStencilMesh writes the initial condition into a mesh's home image: a
// hot top boundary over a varied interior, so every element changes every
// iteration (the paper's mesh has activity and cache-block reuse
// everywhere, not a cold front creeping from one edge).
func initStencilMesh(poke func(i, j int, v float32), n int) {
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			poke(i, j, float32((i*31+j*17)%97)/9.7)
		}
	}
	for j := 0; j < n; j++ {
		poke(0, j, 100)
	}
}

// stencilVal computes one element update; both the parallel and the
// sequential code use exactly this expression, so results are bit-equal.
func stencilVal(up, down, left, right float32) float32 {
	return (up + down + left + right) * 0.25
}

// RunStencil executes the Stencil benchmark on the given memory system.
func RunStencil(sys cstar.System, spec StencilSpec, cfg Config) Result {
	cfg = cfg.norm()
	res := Result{Workload: "Stencil", System: sys, Sched: spec.Sched}
	m := cfg.machine(sys)

	a := cstar.NewMatrixF32(m, "A", spec.N, spec.N, cstar.DataPolicy(sys), memsys.Interleaved)
	var old *cstar.MatrixF32
	if sys == cstar.Copying {
		// The compiler's explicit two-copy lowering (Section 6.1): all
		// reads from the old copy, all writes to the new, pointer swap
		// after each iteration.
		old = cstar.NewMatrixF32(m, "A.old", spec.N, spec.N, core.Coherent(), memsys.Interleaved)
	}
	m.Freeze()

	initStencilMesh(a.Poke, spec.N)
	if old != nil {
		initStencilMesh(old.Poke, spec.N)
	}

	plan := cstar.Lower(stencilSummary, sys)
	sched := schedFor(spec.Sched)
	inner := spec.N - 2
	total := inner * inner
	scratch := newRowScratch(cfg.P, inner)

	runErr := m.RunErr(func(n *tempest.Node) {
		cur, prev := a, old
		for it := 0; it < spec.Iters; it++ {
			src := cur
			if plan.Mode == cstar.ModeCopying {
				src = prev
			}
			if plan.Mode == cstar.ModeCopying {
				// Span sweep: the two-copy lowering reads only the old
				// mesh and writes only the new one, so whole row pieces
				// can stream through the span engine.  Accounting is
				// identical to the per-element loop: the same blocks
				// fault at the same first touch, and 4k reads + k writes
				// + 4k compute units are charged per k-element piece.
				sc := scratch[n.ID]
				lo, hi := sched.Range(n.ID, n.M.P, it, total)
				sweepRowPieces(lo, hi, inner, func(i, jlo, jhi int) {
					k := jhi - jlo
					up, down := sc.up[:k], sc.down[:k]
					left, right := sc.left[:k], sc.right[:k]
					out := sc.out[:k]
					src.GetRowSpan(n, i-1, jlo, up)
					src.GetRowSpan(n, i+1, jlo, down)
					src.GetRowSpan(n, i, jlo-1, left)
					src.GetRowSpan(n, i, jlo+1, right)
					for x := 0; x < k; x++ {
						out[x] = stencilVal(up[x], down[x], left[x], right[x])
					}
					n.Compute(4 * int64(k))
					cur.SetRowSpan(n, i, jlo, out)
				})
				cstar.EndParallel(n)
				cur, prev = prev, cur
				continue
			}
			cstar.ForEach(n, sched, plan, it, total, func(idx int) {
				i := 1 + idx/inner
				j := 1 + idx%inner
				v := stencilVal(src.Get(n, i-1, j), src.Get(n, i+1, j),
					src.Get(n, i, j-1), src.Get(n, i, j+1))
				cur.Set(n, i, j, v)
				n.Compute(4)
			})
			cstar.EndParallel(n)
		}
	})
	if runErr != nil {
		// The machine is poisoned (a node died or the watchdog fired);
		// report the structured error without reading further state.
		res.Err = runErr
		return res
	}
	finish(m, &res)

	if cfg.Verify {
		// Under Copying, iteration k writes a when k is even and old
		// when k is odd, so the last write (k = Iters-1) lands in a for
		// odd Iters and in old for even Iters.  Under LCM it is always a.
		final := a
		if sys == cstar.Copying && spec.Iters%2 == 0 {
			final = old
		}
		cstar.DrainToHome(m)
		if res.Err == nil {
			res.Err = verifyStencil(final, spec)
		}
	}
	return res
}

// rowScratch holds one node's staging buffers for the span sweeps of the
// stencil-family workloads (Stencil, Threshold): a value row, its four
// neighbour rows, and the output row.
type rowScratch struct {
	val, up, down, left, right, out []float32
}

// newRowScratch allocates per-node row buffers of capacity k.
func newRowScratch(p, k int) []rowScratch {
	sc := make([]rowScratch, p)
	for i := range sc {
		sc[i] = rowScratch{
			val: make([]float32, k), up: make([]float32, k),
			down: make([]float32, k), left: make([]float32, k),
			right: make([]float32, k), out: make([]float32, k),
		}
	}
	return sc
}

// sweepRowPieces invokes fn(i, jlo, jhi) for each maximal single-row piece
// of the flattened interior index range [lo, hi), where index idx maps to
// mesh cell (1 + idx/inner, 1 + idx%inner).
func sweepRowPieces(lo, hi, inner int, fn func(i, jlo, jhi int)) {
	for idx := lo; idx < hi; {
		end := idx + inner - idx%inner // start of the next mesh row
		if end > hi {
			end = hi
		}
		fn(1+idx/inner, 1+idx%inner, 1+idx%inner+(end-idx))
		idx = end
	}
}

// verifyStencil recomputes the stencil sequentially with two arrays and
// compares every element.
func verifyStencil(got *cstar.MatrixF32, spec StencilSpec) error {
	n := spec.N
	cur := make([][]float32, n)
	old := make([][]float32, n)
	for i := range cur {
		cur[i] = make([]float32, n)
		old[i] = make([]float32, n)
	}
	initStencilMesh(func(i, j int, v float32) { cur[i][j] = v; old[i][j] = v }, n)
	for it := 0; it < spec.Iters; it++ {
		cur, old = old, cur
		for i := 1; i < n-1; i++ {
			for j := 1; j < n-1; j++ {
				cur[i][j] = stencilVal(old[i-1][j], old[i+1][j], old[i][j-1], old[i][j+1])
			}
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if !approxEq(got.Peek(i, j), cur[i][j]) {
				return fmt.Errorf("stencil: A[%d][%d] = %v, want %v", i, j, got.Peek(i, j), cur[i][j])
			}
		}
	}
	return nil
}
