package workloads

import (
	"fmt"

	"lcm/internal/cstar"
	"lcm/internal/mesh"
	"lcm/internal/tempest"
)

// AdaptiveSpec parameterizes the Adaptive benchmark of Section 6.2: the
// "electric potentials in a box" program.  A mesh of root cells relaxes
// toward the average of its neighbours; where the gradient is steep a cell
// subdivides into a quad-tree of finer cells, up to MaxDepth.
//
// Paper configuration: 64x64 initial mesh, quad-tree depth <= 4, 100
// iterations, measured with static and dynamic partitioning.
type AdaptiveSpec struct {
	N        int
	MaxDepth int
	Iters    int
	// Sched is "static" or "dynamic".
	Sched string
	// Electrodes is the number of fixed-potential root cells.
	Electrodes int
	// SubdivThreshold is the gradient that triggers refinement.
	SubdivThreshold float32
}

// PaperAdaptive returns the paper's configuration.
func PaperAdaptive(sched string) AdaptiveSpec {
	return AdaptiveSpec{N: 64, MaxDepth: 4, Iters: 100, Sched: sched,
		Electrodes: 5, SubdivThreshold: 4}
}

// adaptiveSummary: dynamic data structure, neighbour reads — exactly the
// case Section 6.2 argues a compiler cannot analyze.
var adaptiveSummary = cstar.AccessSummary{ReadsSharedData: true, DynamicStructure: true}

// adaptiveElectrodes places the fixed-potential roots deterministically.
func adaptiveElectrodes(spec AdaptiveSpec) [][2]int {
	pts := make([][2]int, 0, spec.Electrodes)
	for s := 0; s < spec.Electrodes; s++ {
		i := (s*37 + 11) % spec.N
		j := (s*53 + 23) % spec.N
		pts = append(pts, [2]int{i, j})
	}
	return pts
}

// relaxLeaf is the per-leaf update; sequential and parallel code share it
// so results are bit-equal.  The small drive term keeps cells active for
// the whole run (a time-varying source) without perturbing the subdivision
// criterion, which uses the undriven gradient.
// ord is the leaf's allocation ordinal within its subtree, which both the
// pool and the reference compute identically.
func relaxLeaf(lv, navg float32, ord, it int) float32 {
	return lv + (navg-lv)*0.25 + float32((ord+it)%5-2)*0.01
}

// RunAdaptive executes the Adaptive benchmark on the given system.
func RunAdaptive(sys cstar.System, spec AdaptiveSpec, cfg Config) Result {
	cfg = cfg.norm()
	res := Result{Workload: "Adaptive", System: sys, Sched: spec.Sched,
		Extra: map[string]float64{}}
	m := cfg.machine(sys)

	q := mesh.New(m, "mesh", spec.N, spec.N, spec.MaxDepth, cstar.DataPolicy(sys))
	var old *mesh.QuadPool
	if sys == cstar.Copying {
		// Two copies of the mesh, values copied between them before
		// each iteration (Section 6.3's description of Adaptive under
		// a conventional memory system).
		old = mesh.NewShadow(m, "mesh.old", q, cstar.DataPolicy(sys))
	}
	m.Freeze()

	q.InitRoots()
	elecs := adaptiveElectrodes(spec)
	fixed := make([]bool, spec.N*spec.N)
	for _, p := range elecs {
		q.Val.Poke(int(q.RootID(p[0], p[1])), 100)
		if old != nil {
			old.Val.Poke(int(q.RootID(p[0], p[1])), 100)
		}
		fixed[q.RootIndex(p[0], p[1])] = true
	}

	plan := cstar.Lower(adaptiveSummary, sys)
	sched := schedFor(spec.Sched)
	total := spec.N * spec.N
	leafScratch := make([][]int32, cfg.P)
	depthScratch := make([][]int, cfg.P)

	runErr := m.RunErr(func(n *tempest.Node) {
		for it := 0; it < spec.Iters; it++ {
			if plan.Mode == cstar.ModeCopying {
				// Conservative copy phase: every allocated cell of
				// every assigned subtree moves to the old copy, since
				// the compiler cannot tell which parts the iteration
				// will modify.
				lo, hi := sched.Range(n.ID, n.M.P, it, total)
				for r := lo; r < hi; r++ {
					cnt := int(q.GetCount(n, r))
					base := r * q.Stride()
					old.Val.CopyRange(n, q.Val, base, base+cnt)
				}
				n.Barrier()
			}
			src := q
			if plan.Mode == cstar.ModeCopying {
				src = old
			}
			cstar.ForEach(n, sched, plan, it, total, func(rIdx int) {
				i, j := rIdx/spec.N, rIdx%spec.N
				if fixed[rIdx] {
					return // electrode: potential is pinned
				}
				navg := rootNeighborAvg(n, src, q, spec, i, j)
				// Collect leaves first: subdivision must not extend
				// this invocation's own traversal.
				leaves := leafScratch[n.ID][:0]
				depths := depthScratch[n.ID][:0]
				q.VisitLeaves(n, q.RootID(i, j), 0, func(leaf int32, d int) {
					leaves = append(leaves, leaf)
					depths = append(depths, d)
				})
				var sum float32
				for k, leaf := range leaves {
					lv := src.Val.Get(n, int(leaf))
					nv := relaxLeaf(lv, navg, int(leaf)%q.Stride(), it)
					q.Val.Set(n, int(leaf), nv)
					n.Compute(3)
					sum += nv
					if abs32(navg-lv) > spec.SubdivThreshold {
						q.Subdivide(n, rIdx, leaf, depths[k])
					}
				}
				if len(leaves) > 1 {
					q.Val.Set(n, int(q.RootID(i, j)), sum/float32(len(leaves)))
				}
				leafScratch[n.ID] = leaves
				depthScratch[n.ID] = depths
			})
			cstar.EndParallel(n)
		}
	})
	if runErr != nil {
		// The machine is poisoned (a node died or the watchdog fired);
		// report the structured error without reading further state.
		res.Err = runErr
		return res
	}
	finish(m, &res)
	cstar.DrainToHome(m)
	res.Extra["cells"] = float64(q.CountCells())

	if cfg.Verify {
		if res.Err == nil {
			res.Err = verifyAdaptive(q, spec)
		}
	}
	return res
}

// rootNeighborAvg averages the up/down/left/right root-cell values that
// exist, reading through src (the old copy under explicit copying).
func rootNeighborAvg(n *tempest.Node, src, q *mesh.QuadPool, spec AdaptiveSpec, i, j int) float32 {
	var sum float32
	cnt := 0
	if i > 0 {
		sum += src.Val.Get(n, int(q.RootID(i-1, j)))
		cnt++
	}
	if i < spec.N-1 {
		sum += src.Val.Get(n, int(q.RootID(i+1, j)))
		cnt++
	}
	if j > 0 {
		sum += src.Val.Get(n, int(q.RootID(i, j-1)))
		cnt++
	}
	if j < spec.N-1 {
		sum += src.Val.Get(n, int(q.RootID(i, j+1)))
		cnt++
	}
	return sum / float32(cnt)
}

// seqCell is the sequential reference's quad-tree node.  ord mirrors the
// pool's within-subtree allocation ordinal (root = 0, children allocated
// consecutively), which the drive term depends on.
type seqCell struct {
	val      float32
	ord      int
	children []*seqCell
}

// verifyAdaptive recomputes the benchmark sequentially (two-copy
// semantics, identical float expression order) and compares every root's
// value and leaf count.
func verifyAdaptive(q *mesh.QuadPool, spec AdaptiveSpec) error {
	n := spec.N
	roots := make([]*seqCell, n*n)
	for i := range roots {
		roots[i] = &seqCell{}
	}
	fixed := make(map[int]bool)
	for _, p := range adaptiveElectrodes(spec) {
		roots[p[0]*n+p[1]].val = 100
		fixed[p[0]*n+p[1]] = true
	}
	alloc := make([]int, n*n)
	for i := range alloc {
		alloc[i] = 1
	}
	for it := 0; it < spec.Iters; it++ {
		oldVals := make([]float32, n*n)
		for r, c := range roots {
			oldVals[r] = c.val
		}
		type leafRef struct {
			c *seqCell
			d int
		}
		snapshot := func(c *seqCell) map[*seqCell]float32 {
			vals := map[*seqCell]float32{}
			var walk func(x *seqCell)
			walk = func(x *seqCell) {
				vals[x] = x.val
				for _, ch := range x.children {
					walk(ch)
				}
			}
			walk(c)
			return vals
		}
		for r, c := range roots {
			if fixed[r] {
				continue
			}
			i, j := r/n, r%n
			var sum float32
			cnt := 0
			if i > 0 {
				sum += oldVals[(i-1)*n+j]
				cnt++
			}
			if i < n-1 {
				sum += oldVals[(i+1)*n+j]
				cnt++
			}
			if j > 0 {
				sum += oldVals[i*n+j-1]
				cnt++
			}
			if j < n-1 {
				sum += oldVals[i*n+j+1]
				cnt++
			}
			navg := sum / float32(cnt)
			oldLeafVals := snapshot(c)
			var leaves []leafRef
			var collect func(x *seqCell, d int)
			collect = func(x *seqCell, d int) {
				if x.children == nil {
					leaves = append(leaves, leafRef{x, d})
					return
				}
				for _, ch := range x.children {
					collect(ch, d+1)
				}
			}
			collect(c, 0)
			var lsum float32
			for _, lf := range leaves {
				lv := oldLeafVals[lf.c]
				nv := relaxLeaf(lv, navg, lf.c.ord, it)
				lf.c.val = nv
				lsum += nv
				if abs32(navg-lv) > spec.SubdivThreshold &&
					lf.d < spec.MaxDepth && alloc[r]+4 <= mesh.SubtreeSlots(spec.MaxDepth) {
					lf.c.children = []*seqCell{
						{val: nv, ord: alloc[r]},
						{val: nv, ord: alloc[r] + 1},
						{val: nv, ord: alloc[r] + 2},
						{val: nv, ord: alloc[r] + 3},
					}
					alloc[r] += 4
				}
			}
			if len(leaves) > 1 {
				c.val = lsum / float32(len(leaves))
			}
		}
	}
	// Compare allocation counts and root values.
	for r := range roots {
		i, j := r/n, r%n
		if got := int(q.CountSeq(i, j)); got != alloc[r] {
			return fmt.Errorf("adaptive: root (%d,%d) allocated %d cells, want %d", i, j, got, alloc[r])
		}
		if got := q.Val.Peek(int(q.RootID(i, j))); !approxEq(got, roots[r].val) {
			return fmt.Errorf("adaptive: root (%d,%d) = %v, want %v", i, j, got, roots[r].val)
		}
	}
	return nil
}
