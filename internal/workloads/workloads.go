// Package workloads implements the paper's four C** benchmarks — Stencil,
// Adaptive, Threshold and Unstructured — each runnable under all three
// memory systems (Stache + explicit copying, LCM-scc, LCM-mcc) and, where
// the paper measured it, under both static and dynamic partitioning.
//
// Every workload:
//
//   - allocates its aggregates in the simulated global address space with
//     the policies the C** compiler would choose for the target system,
//   - runs the same parallel computation SPMD on the simulated machine so
//     the protocols observe the real access stream, and
//   - verifies its numerical result against a sequential reference
//     implementation (bit-exact: the parallel schedule computes each
//     element with the same float expression and operand values).
package workloads

import (
	"fmt"
	"time"

	"lcm/internal/core"
	"lcm/internal/cost"
	"lcm/internal/cstar"
	"lcm/internal/fault"
	"lcm/internal/net"
	"lcm/internal/stache"
	"lcm/internal/stats"
	"lcm/internal/tempest"
	"lcm/internal/trace"
)

// Config is the machine configuration shared by all workloads.
type Config struct {
	// P is the number of processors (paper: 32).
	P int
	// BlockSize is the coherence block size in bytes (paper: 32, eight
	// single-precision floats).
	BlockSize uint32
	// CostModel sets the virtual-time charges; zero value means
	// cost.Default().
	CostModel *cost.Model
	// Verify runs the sequential reference and checks the result.
	Verify bool
	// TraceCap, when positive, attaches a protocol event trace with this
	// many retained events per node; it is returned in Result.Trace.
	TraceCap int
	// CacheLines bounds each node's resident blocks (0 = unbounded, the
	// paper's configuration: Stache backs caching with all of local
	// memory).
	CacheLines int
	// Faults, when non-nil, attaches a deterministic fault injector
	// executing this plan (see internal/fault); recovery is charged in
	// virtual cycles and tallied in Result.Faults.
	Faults *fault.Plan
	// Watchdog, when positive, bounds the wall-clock duration of any
	// barrier round; a stalled barrier is aborted with diagnostics
	// instead of hanging the process.
	Watchdog time.Duration
	// ScalarAccess disables the machine's bulk span transfer paths so
	// every access goes through the per-element scalar accessors, for
	// differential testing of the span engine (accounting must be
	// identical either way).
	ScalarAccess bool
	// Net selects the interconnect model (nil = uniform, which matches
	// the historical flat charges bit-exactly; see internal/net).
	Net *net.Config
	// Loss, when non-nil, makes the interconnect unreliable with the
	// given seeded drop/duplicate/reorder rates; the tempest
	// retransmission layer is interposed so runs still complete, with
	// recovery charged in virtual cycles and tallied in Result.Loss.
	Loss *net.LossConfig
	// Recover enables checkpoint/restart plus degraded-mode re-homing
	// (tempest.Machine.Recovery): kills under a KillRecover fault plan
	// restart from the last barrier checkpoint instead of aborting.
	// Requires the deterministic scheduler (incompatible with FreeRun).
	Recover bool
	// SchedSeed selects the deterministic schedule (see internal/sched):
	// every (workload, P, seed) triple replays bit-identically, including
	// simulated cycles and copying-mode fault counts at P>1.  Seed 0 is
	// the canonical (cycle, node) order; other seeds permute same-cycle
	// ties.
	SchedSeed uint64
	// FreeRun disables the deterministic scheduler and lets node
	// goroutines interleave at the host's whim, as the simulator did
	// historically.  Order-dependent observables are then not run-to-run
	// reproducible; only benchmarking wall-clock parallelism wants this.
	FreeRun bool
	// Par, when > 1, runs the deterministic schedule time-parallel on up
	// to Par worker threads (tempest.Machine.Par): every observable stays
	// bit-identical to Par=0, only host wall clock changes.  Ignored
	// under FreeRun and silently serial for configurations that cannot
	// prove a lookahead window (loss, faults, recovery).
	Par int
}

func (c Config) norm() Config {
	if c.P == 0 {
		c.P = 32
	}
	if c.BlockSize == 0 {
		c.BlockSize = 32
	}
	if c.CostModel == nil {
		m := cost.Default()
		c.CostModel = &m
	}
	return c
}

func (c Config) machine(sys cstar.System) *tempest.Machine {
	m := cstar.NewMachine(c.P, c.BlockSize, *c.CostModel, sys)
	if c.TraceCap > 0 {
		m.AttachTrace(c.TraceCap)
	}
	m.CacheLines = c.CacheLines
	if c.Faults != nil {
		m.AttachFaults(*c.Faults)
	}
	m.Watchdog = c.Watchdog
	m.ScalarAccess = c.ScalarAccess
	m.DetSched = !c.FreeRun
	m.SchedSeed = c.SchedSeed
	m.Par = c.Par
	if c.Net != nil {
		nw, err := net.New(*c.Net, c.P, *c.CostModel)
		if err != nil {
			m.RecordConfigError(err)
		} else {
			m.SetNetwork(nw)
		}
	}
	if c.Loss != nil {
		m.AttachLoss(*c.Loss)
	}
	m.Recovery = c.Recover
	return m
}

// Result is one workload run's measurements.
type Result struct {
	Workload string
	System   cstar.System
	Sched    string
	// Cycles is the simulated execution time (max node clock).
	Cycles int64
	// C aggregates per-node protocol counters.
	C stats.NodeCounters
	// S holds the shared counters (clean copies, conflicts, ...).
	S stats.Snapshot
	// Extra carries per-workload facts (modified ratios, cell counts).
	Extra map[string]float64
	// PerNodeClocks and PerNodeMisses summarize load balance.
	PerNodeClocks stats.Summary
	PerNodeMisses stats.Summary
	// Wall is the host wall-clock duration of the run when measured by
	// the harness (zero otherwise).  Host time is a property of the
	// simulator, not of the simulated machine — it never feeds back into
	// Cycles or any counter.
	Wall time.Duration
	// Trace holds the protocol event trace when Config.TraceCap was set.
	Trace *trace.Buffer
	// Faults is the injector's record of faults injected during the run
	// (zero when Config.Faults was nil).
	Faults fault.Tally
	// Loss is the delivery-fault record of an unreliable-network run
	// (zero when Config.Loss was nil).
	Loss net.LossTally
	// KV holds the serving-workload observables (zero for the paper's
	// four kernels).
	KV KVStats
	// Net is the run's network model name; Links summarizes channel
	// occupancy (all zero under the uniform model, which has no links).
	Net   string
	Links net.LinkStats
	// Err is non-nil if the run failed (a node died, a retry budget ran
	// out, the watchdog fired) or verification failed.
	Err error
}

// CleanCopies returns the paper's Table 1 clean-copy metric for the run's
// system: home copies under scc, per-processor copies under mcc, zero for
// the Copying baseline.
func (r Result) CleanCopies() int64 {
	switch r.System {
	case cstar.LCMscc:
		return r.S.CleanCopiesHome
	case cstar.LCMmcc:
		return r.S.CleanCopiesLocal
	default:
		return 0
	}
}

// Label renders "name-sched" ("Stencil-stat") like the paper's tables.
// Schedules without a table abbreviation (the KV mixes) keep their full
// name rather than collapsing to a dangling "name-".
func (r Result) Label() string {
	if r.Sched == "" {
		return r.Workload
	}
	abbrev, ok := map[string]string{"static": "stat", "dynamic": "dyn"}[r.Sched]
	if !ok {
		abbrev = r.Sched
	}
	return fmt.Sprintf("%s-%s", r.Workload, abbrev)
}

// finish collects machine-wide measurements into r after a run and audits
// the protocol's invariants (directory state vs access tags, no live
// private copies between phases).
func finish(m *tempest.Machine, r *Result) {
	r.Cycles = m.MaxClock()
	r.C = m.TotalCounters()
	r.S = m.Shared.Snapshot()
	r.Net = m.Net.Name()
	r.Links = m.Net.LinkStats()
	r.Trace = m.Trace
	if m.Fault != nil {
		r.Faults = m.Fault.Tally()
	}
	if m.Loss != nil {
		r.Loss = m.Loss.Tally()
	}
	clocks := make([]int64, m.P)
	misses := make([]int64, m.P)
	for i, nd := range m.Nodes {
		clocks[i] = nd.Clock()
		misses[i] = nd.Ctr.Misses
	}
	r.PerNodeClocks = stats.Summarize(clocks)
	r.PerNodeMisses = stats.Summarize(misses)
	switch p := m.Protocol().(type) {
	case *core.LCM:
		r.Err = p.CheckQuiescent()
	case *stache.Protocol:
		r.Err = p.CheckInvariants()
	}
}

// schedFor maps a name to a scheduler.
func schedFor(name string) cstar.Scheduler {
	switch name {
	case "dynamic":
		return cstar.RotatingSchedule{}
	default:
		return cstar.StaticSchedule{}
	}
}

// approxEq compares float32 values bit-exactly; the parallel executions
// evaluate identical expressions on identical operands, so no tolerance is
// needed (any difference is a semantics bug, which is the point).
func approxEq(a, b float32) bool { return a == b }
