package workloads

import (
	"strings"
	"testing"

	"lcm/internal/cstar"
)

// kvTestSpec is a small serving campaign with two mid-run reshard
// epochs (phases 2 and 4 of 6), sized so the full system x machine-size
// matrix stays fast.
func kvTestSpec(mix string) KVSpec {
	return KVSpec{Keys: 2048, Shards: 16, Streams: 8, Phases: 6,
		OpsPerStream: 32, Skew: 0.99, Mix: mix, ReshardEvery: 2, Seed: 7}
}

var kvSystems = []cstar.System{cstar.Copying, cstar.LCMscc, cstar.LCMmcc}

// TestKVAnswerIdenticalAcrossSystemsAndP is the differential statement
// of the KV consistency contract: the final per-shard store checksums
// and per-stream get checksums must be identical across all three
// memory systems and machine sizes P in {1,4,8}, with resharding
// epochs in the middle of the run — and every run must also verify
// against the sequential reference.
func TestKVAnswerIdenticalAcrossSystemsAndP(t *testing.T) {
	for _, mix := range []string{"read", "write"} {
		spec := kvTestSpec(mix)
		var base Result
		first := true
		for _, p := range []int{1, 4, 8} {
			for _, sys := range kvSystems {
				r := RunKV(sys, spec, Config{P: p, Verify: true})
				if r.Err != nil {
					t.Fatalf("%s P=%d %v: %v", mix, p, sys, r.Err)
				}
				if first {
					base, first = r, false
					continue
				}
				if r.KV.Answer != base.KV.Answer {
					t.Errorf("%s P=%d %v: answer %#x, want %#x", mix, p, sys, r.KV.Answer, base.KV.Answer)
				}
				if r.KV.GetSum != base.KV.GetSum {
					t.Errorf("%s P=%d %v: getsum %#x, want %#x", mix, p, sys, r.KV.GetSum, base.KV.GetSum)
				}
				for s := range base.KV.PerShard {
					if r.KV.PerShard[s] != base.KV.PerShard[s] {
						t.Errorf("%s P=%d %v: shard %d checksum %#x, want %#x",
							mix, p, sys, s, r.KV.PerShard[s], base.KV.PerShard[s])
					}
				}
				if r.KV.Ops != base.KV.Ops || r.KV.Gets != base.KV.Gets || r.KV.Puts != base.KV.Puts {
					t.Errorf("%s P=%d %v: ops %d/%d/%d, want %d/%d/%d", mix, p, sys,
						r.KV.Ops, r.KV.Gets, r.KV.Puts, base.KV.Ops, base.KV.Gets, base.KV.Puts)
				}
			}
		}
	}
}

// TestKVSerialVsParIdentical runs the same tuple serial and
// time-parallel and requires every observable to match, the serving
// stats included.
func TestKVSerialVsParIdentical(t *testing.T) {
	spec := kvTestSpec("write")
	for _, sys := range kvSystems {
		ser := RunKV(sys, spec, Config{P: 8, Verify: true})
		par := RunKV(sys, spec, Config{P: 8, Verify: true, Par: 4})
		if ser.Err != nil || par.Err != nil {
			t.Fatalf("%v: serial err %v, par err %v", sys, ser.Err, par.Err)
		}
		if ser.Cycles != par.Cycles || ser.C != par.C || ser.S != par.S {
			t.Errorf("%v: serial vs -par observables drifted: cycles %d vs %d, counters %+v vs %+v",
				sys, ser.Cycles, par.Cycles, ser.C, par.C)
		}
		if ser.KV.Ops != par.KV.Ops || ser.KV.Reshards != par.KV.Reshards ||
			ser.KV.MigratedBlocks != par.KV.MigratedBlocks ||
			ser.KV.HotShardOps != par.KV.HotShardOps || ser.KV.Answer != par.KV.Answer {
			t.Errorf("%v: serial vs -par KV stats drifted: %+v vs %+v", sys, ser.KV, par.KV)
		}
	}
}

// TestKVReplayIdentical pins run-to-run determinism at the workload
// level: two runs of the same tuple agree on every counter.
func TestKVReplayIdentical(t *testing.T) {
	spec := kvTestSpec("read")
	for _, seed := range []uint64{0, 42} {
		a := RunKV(cstar.LCMmcc, spec, Config{P: 4, SchedSeed: seed})
		b := RunKV(cstar.LCMmcc, spec, Config{P: 4, SchedSeed: seed})
		if a.Err != nil || b.Err != nil {
			t.Fatalf("seed %d: errs %v, %v", seed, a.Err, b.Err)
		}
		if a.Cycles != b.Cycles || a.C != b.C || a.KV.Answer != b.KV.Answer {
			t.Errorf("seed %d: replay drifted: cycles %d vs %d", seed, a.Cycles, b.Cycles)
		}
	}
}

// TestKVReshardAccounting checks the epoch bookkeeping: 6 phases with
// ReshardEvery=2 cross two epoch boundaries, migrating every shard's
// blocks each time at P>1; disabling resharding zeroes both counters.
func TestKVReshardAccounting(t *testing.T) {
	spec := kvTestSpec("read")
	r := RunKV(cstar.LCMmcc, spec, Config{P: 4, Verify: true})
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if r.KV.Reshards != 2 {
		t.Errorf("Reshards = %d, want 2", r.KV.Reshards)
	}
	// Every shard changes owner at each epoch under rotation: 16 shards
	// x (128 keys / 4 per block) blocks x 2 epochs.
	wantBlocks := int64(16 * (128 / 4) * 2)
	if r.KV.MigratedBlocks != wantBlocks {
		t.Errorf("MigratedBlocks = %d, want %d", r.KV.MigratedBlocks, wantBlocks)
	}

	spec.ReshardEvery = -1
	r = RunKV(cstar.LCMmcc, spec, Config{P: 4, Verify: true})
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if r.KV.Reshards != 0 || r.KV.MigratedBlocks != 0 {
		t.Errorf("resharding disabled: Reshards=%d MigratedBlocks=%d, want 0/0",
			r.KV.Reshards, r.KV.MigratedBlocks)
	}
}

// TestKVSkewShapesTraffic checks the generator end of the tentpole: a
// hotter Zipf exponent concentrates more requests on the hottest shard,
// and the mixes deliver their read fractions.
func TestKVSkewShapesTraffic(t *testing.T) {
	spec := kvTestSpec("read")
	spec.ReshardEvery = -1
	cold, hot := spec, spec
	cold.Skew, hot.Skew = 0.4, 1.4
	rc := RunKV(cstar.LCMmcc, cold, Config{P: 4})
	rh := RunKV(cstar.LCMmcc, hot, Config{P: 4})
	if rc.Err != nil || rh.Err != nil {
		t.Fatalf("errs %v, %v", rc.Err, rh.Err)
	}
	if rh.KV.HotShardOps <= rc.KV.HotShardOps {
		t.Errorf("skew 1.4 hot-shard ops %d not above skew 0.4's %d",
			rh.KV.HotShardOps, rc.KV.HotShardOps)
	}

	read := RunKV(cstar.LCMmcc, kvTestSpec("read"), Config{P: 4})
	write := RunKV(cstar.LCMmcc, kvTestSpec("write"), Config{P: 4})
	if read.Err != nil || write.Err != nil {
		t.Fatalf("errs %v, %v", read.Err, write.Err)
	}
	if frac := float64(read.KV.Gets) / float64(read.KV.Ops); frac < 0.90 {
		t.Errorf("read-mostly get fraction %.3f, want ~0.95", frac)
	}
	if frac := float64(write.KV.Gets) / float64(write.KV.Ops); frac < 0.40 || frac > 0.60 {
		t.Errorf("write-heavy get fraction %.3f, want ~0.50", frac)
	}
}

// TestKVBadMix reports a config error instead of running.
func TestKVBadMix(t *testing.T) {
	spec := kvTestSpec("read")
	spec.Mix = "chaotic"
	r := RunKV(cstar.LCMmcc, spec, Config{P: 2})
	if r.Err == nil || !strings.Contains(r.Err.Error(), "unknown mix") {
		t.Fatalf("err = %v, want unknown-mix config error", r.Err)
	}
}

// TestKVLabel renders the mix as-is (no dangling dash for schedules
// outside the paper's static/dynamic abbreviations).
func TestKVLabel(t *testing.T) {
	r := Result{Workload: "KV", Sched: "read"}
	if got := r.Label(); got != "KV-read" {
		t.Errorf("Label() = %q, want KV-read", got)
	}
}

// TestKVSpecNorm pins the alignment rounding: shard and stream extents
// are rounded up to 32-element (256-byte) multiples.
func TestKVSpecNorm(t *testing.T) {
	s := KVSpec{Keys: 1000, Shards: 16, OpsPerStream: 33}.norm()
	if s.Keys != 16*64 {
		t.Errorf("Keys = %d, want %d (per-shard rounded 63->64)", s.Keys, 16*64)
	}
	if s.OpsPerStream != 64 {
		t.Errorf("OpsPerStream = %d, want 64", s.OpsPerStream)
	}
	if s.Mix != "read" || s.Skew != 0.99 || s.Seed != 1 {
		t.Errorf("defaults not applied: %+v", s)
	}
}

// TestPaperKV pins the canonical serving configuration: already
// block-aligned, so norm leaves it untouched.
func TestPaperKV(t *testing.T) {
	p := PaperKV("write")
	if p.Keys != 65536 || p.Shards != 64 || p.Streams != 64 || p.Phases != 12 ||
		p.OpsPerStream != 256 || p.Skew != 0.99 || p.Mix != "write" ||
		p.ReshardEvery != 4 || p.Seed != 1 {
		t.Fatalf("PaperKV = %+v", p)
	}
	if n := p.norm(); n != p {
		t.Fatalf("paper spec not fixed under norm: %+v", n)
	}
}

// TestKVIntentEncoding round-trips the intent-slot encoding: gets
// encode to the zero slot, puts carry key and 32-bit value.
func TestKVIntentEncoding(t *testing.T) {
	if got := kvEncode(kvOp{key: 7, val: 9, put: false}); got != 0 {
		t.Fatalf("get encoded to %d, want 0", got)
	}
	if _, _, put := kvDecode(0); put {
		t.Fatal("zero slot decoded as a put")
	}
	slot := kvEncode(kvOp{key: 123456, val: 0xFFFF_FFFF, put: true})
	key, val, put := kvDecode(slot)
	if !put || key != 123456 || val != 0xFFFF_FFFF {
		t.Fatalf("decode = (%d, %d, %v), want (123456, 0xFFFFFFFF, true)", key, val, put)
	}
}
