package workloads

import (
	"testing"

	"lcm/internal/cstar"
)

// Small-scale configurations keep the tests quick while still spanning
// multiple blocks per row, multiple phases, and subdivision activity.
var testCfg = Config{P: 8, Verify: true}

var allSystems = []cstar.System{cstar.Copying, cstar.LCMscc, cstar.LCMmcc}

func TestStencilAllSystemsAndSchedules(t *testing.T) {
	for _, sys := range allSystems {
		for _, sched := range []string{"static", "dynamic"} {
			spec := StencilSpec{N: 40, Iters: 6, Sched: sched}
			r := RunStencil(sys, spec, testCfg)
			if r.Err != nil {
				t.Fatalf("%v/%s: %v", sys, sched, r.Err)
			}
			if r.Cycles <= 0 || r.C.Misses == 0 {
				t.Fatalf("%v/%s: empty measurements %+v", sys, sched, r)
			}
			if sys.IsLCM() && r.S.WriteConflicts != 0 {
				t.Fatalf("%v/%s: stencil has disjoint writes but %d conflicts", sys, sched, r.S.WriteConflicts)
			}
			if !sys.IsLCM() && r.CleanCopies() != 0 {
				t.Fatalf("copying baseline reports clean copies")
			}
		}
	}
}

func TestStencilOddIterations(t *testing.T) {
	// Exercises the final-buffer parity logic under Copying.
	r := RunStencil(cstar.Copying, StencilSpec{N: 24, Iters: 5, Sched: "static"}, testCfg)
	if r.Err != nil {
		t.Fatal(r.Err)
	}
}

func TestStencilSCCRefetchesMoreThanMCC(t *testing.T) {
	spec := StencilSpec{N: 64, Iters: 4, Sched: "static"}
	scc := RunStencil(cstar.LCMscc, spec, testCfg)
	mcc := RunStencil(cstar.LCMmcc, spec, testCfg)
	if scc.Err != nil || mcc.Err != nil {
		t.Fatal(scc.Err, mcc.Err)
	}
	if scc.C.Misses <= 2*mcc.C.Misses {
		t.Fatalf("scc misses (%d) should far exceed mcc misses (%d)", scc.C.Misses, mcc.C.Misses)
	}
	if scc.Cycles <= mcc.Cycles {
		t.Fatalf("scc (%d cycles) should be slower than mcc (%d)", scc.Cycles, mcc.Cycles)
	}
	// mcc keeps local clean copies, scc none.
	if scc.S.CleanCopiesLocal != 0 || mcc.S.CleanCopiesLocal == 0 {
		t.Fatalf("local clean copies: scc %d, mcc %d", scc.S.CleanCopiesLocal, mcc.S.CleanCopiesLocal)
	}
}

func TestStencilStaticFavorsStacheDynamicFavorsLCM(t *testing.T) {
	// The headline Figure 2 shape at small scale: the gap between
	// Copying and LCM-mcc must shrink dramatically (or invert) when
	// partitioning becomes dynamic.
	spec := func(s string) StencilSpec { return StencilSpec{N: 64, Iters: 6, Sched: s} }
	copyStat := RunStencil(cstar.Copying, spec("static"), testCfg)
	mccStat := RunStencil(cstar.LCMmcc, spec("static"), testCfg)
	copyDyn := RunStencil(cstar.Copying, spec("dynamic"), testCfg)
	mccDyn := RunStencil(cstar.LCMmcc, spec("dynamic"), testCfg)
	if copyStat.Cycles >= mccStat.Cycles {
		t.Fatalf("static: Stache (%d) should beat LCM-mcc (%d)", copyStat.Cycles, mccStat.Cycles)
	}
	statRatio := float64(mccStat.Cycles) / float64(copyStat.Cycles)
	dynRatio := float64(mccDyn.Cycles) / float64(copyDyn.Cycles)
	if dynRatio >= statRatio {
		t.Fatalf("dynamic partitioning should favor LCM: static ratio %.2f, dynamic ratio %.2f", statRatio, dynRatio)
	}
	// Dynamic partitioning must cost Stache many more misses.
	if copyDyn.C.Misses <= 2*copyStat.C.Misses {
		t.Fatalf("dynamic Stache misses (%d) should far exceed static (%d)", copyDyn.C.Misses, copyStat.C.Misses)
	}
}

func TestThresholdAllSystems(t *testing.T) {
	spec := ThresholdSpec{N: 48, Iters: 8, Threshold: 0.05, Sources: 3}
	var misses [3]int64
	for i, sys := range allSystems {
		r := RunThreshold(sys, spec, testCfg)
		if r.Err != nil {
			t.Fatalf("%v: %v", sys, r.Err)
		}
		ratio := r.Extra["modified_ratio"]
		if ratio <= 0 || ratio > 0.5 {
			t.Fatalf("%v: modified ratio %.3f implausible", sys, ratio)
		}
		misses[i] = r.C.Misses
	}
	// LCM copies only modified blocks; the baseline touches the whole
	// mesh every iteration, so it must miss more than mcc.
	if misses[0] <= misses[2] {
		t.Fatalf("copying misses (%d) should exceed lcm-mcc misses (%d)", misses[0], misses[2])
	}
}

func TestAdaptiveAllSystemsAndSchedules(t *testing.T) {
	for _, sys := range allSystems {
		for _, sched := range []string{"static", "dynamic"} {
			spec := AdaptiveSpec{N: 8, MaxDepth: 3, Iters: 10, Sched: sched,
				Electrodes: 2, SubdivThreshold: 4}
			r := RunAdaptive(sys, spec, testCfg)
			if r.Err != nil {
				t.Fatalf("%v/%s: %v", sys, sched, r.Err)
			}
			if r.Extra["cells"] <= float64(8*8) {
				t.Fatalf("%v/%s: no subdivision happened (cells=%v)", sys, sched, r.Extra["cells"])
			}
		}
	}
}

func TestAdaptiveSubdivisionDeterministicAcrossSystems(t *testing.T) {
	spec := AdaptiveSpec{N: 8, MaxDepth: 3, Iters: 12, Sched: "static",
		Electrodes: 2, SubdivThreshold: 4}
	var cells []float64
	for _, sys := range allSystems {
		r := RunAdaptive(sys, spec, testCfg)
		if r.Err != nil {
			t.Fatalf("%v: %v", sys, r.Err)
		}
		cells = append(cells, r.Extra["cells"])
	}
	if cells[0] != cells[1] || cells[1] != cells[2] {
		t.Fatalf("cell counts diverge across systems: %v", cells)
	}
}

func TestAdaptiveCopyingCopiesEverything(t *testing.T) {
	spec := AdaptiveSpec{N: 8, MaxDepth: 3, Iters: 10, Sched: "static",
		Electrodes: 2, SubdivThreshold: 4}
	cop := RunAdaptive(cstar.Copying, spec, testCfg)
	mcc := RunAdaptive(cstar.LCMmcc, spec, testCfg)
	if cop.Err != nil || mcc.Err != nil {
		t.Fatal(cop.Err, mcc.Err)
	}
	if cop.C.CopiedWords == 0 {
		t.Fatal("copying baseline copied nothing")
	}
	if mcc.C.CopiedWords != 0 {
		t.Fatal("LCM version should not copy explicitly")
	}
}

func TestUnstructuredAllSystems(t *testing.T) {
	spec := UnstructuredSpec{Nodes: 64, Edges: 256, Iters: 12, Seed: 7, Stride: 8}
	var cycles []int64
	for _, sys := range allSystems {
		r := RunUnstructured(sys, spec, testCfg)
		if r.Err != nil {
			t.Fatalf("%v: %v", sys, r.Err)
		}
		if r.Extra["cross_edges"] < 10 {
			t.Fatalf("graph should have many cross edges, got %v", r.Extra["cross_edges"])
		}
		cycles = append(cycles, r.Cycles)
	}
	// LCM should be at least competitive with the two-copy baseline.
	if float64(cycles[2]) > 1.2*float64(cycles[0]) {
		t.Fatalf("lcm-mcc (%d) much slower than copying (%d)", cycles[2], cycles[0])
	}
}

func TestUnstructuredOddIterations(t *testing.T) {
	r := RunUnstructured(cstar.Copying, UnstructuredSpec{Nodes: 32, Edges: 64, Iters: 5, Seed: 3, Stride: 8}, testCfg)
	if r.Err != nil {
		t.Fatal(r.Err)
	}
}

func TestResultLabels(t *testing.T) {
	r := Result{Workload: "Stencil", Sched: "static"}
	if r.Label() != "Stencil-stat" {
		t.Fatalf("label %q", r.Label())
	}
	r.Sched = "dynamic"
	if r.Label() != "Stencil-dyn" {
		t.Fatalf("label %q", r.Label())
	}
	r.Sched = ""
	if r.Label() != "Stencil" {
		t.Fatalf("label %q", r.Label())
	}
}
