package workloads

import (
	"fmt"
	"math"
	"sync"

	"lcm/internal/core"
	"lcm/internal/cstar"
	"lcm/internal/memsys"
	"lcm/internal/tempest"
)

// KVSpec parameterizes the sharded key-value serving workload: a hashed
// key space partitioned into contiguous shards laid out over the
// simulated global address space, driven by per-stream Zipf-skewed
// get/put request generators.  Unlike the paper's four kernels this is
// irregular serving traffic — hot-key read sharing, single-owner shard
// writes, and epoch-based resharding whose block handoff stresses the
// protocols mid-run.
//
// Consistency contract (all three systems implement it identically):
// a phase's gets read the store state committed at the previous phase
// boundary; its puts are buffered as intents and applied at the phase
// boundary by each shard's owner, scanning streams in canonical order
// (stream index ascending, then request order) so the last writer of a
// key is schedule- and P-independent.  Under LCM that is exactly the
// reconcile semantics; under Stache the same structure is imposed by
// barriers, so the final store bytes agree bit-for-bit across systems.
type KVSpec struct {
	// Keys is the key-space size; keys are 64-bit values.
	Keys int
	// Shards is the number of contiguous key ranges with a single owner
	// each; Keys must divide evenly into block-aligned shards (norm
	// rounds Keys up).
	Shards int
	// Streams is the number of client request streams; stream c is
	// served by node c mod P, but its request sequence depends only on
	// (Seed, c), never on P.
	Streams int
	// Phases is the number of serving phases (each = serve + apply).
	Phases int
	// OpsPerStream is the number of requests per stream per phase.
	OpsPerStream int
	// Skew is the Zipf exponent of the key popularity distribution
	// (0.99 is the YCSB-style default; higher = hotter hot keys).
	Skew float64
	// Mix names the phase schedule: "read" (read-mostly, 95% gets) or
	// "write" (write-heavy, 50% gets).
	Mix string
	// ReshardEvery starts a new ownership epoch every this many phases,
	// rotating every shard to the next node with block handoff charged
	// through the protocols; negative disables resharding.
	ReshardEvery int
	// Seed seeds the per-stream request generators.
	Seed uint64
}

// PaperKV returns the default serving configuration for the given mix.
func PaperKV(mix string) KVSpec {
	return KVSpec{Keys: 65536, Shards: 64, Streams: 64, Phases: 12,
		OpsPerStream: 256, Skew: 0.99, Mix: mix, ReshardEvery: 4, Seed: 1}
}

// kvAlign is the element alignment of shard and stream extents: 32
// 8-byte elements = 256 bytes, the protocol's largest legal block, so a
// shard (single store writer) or stream intent range (single buffer
// writer) never shares a block with another owner at any block size.
const kvAlign = 32

// norm applies defaults and rounds the extents to block-aligned sizes.
func (s KVSpec) norm() KVSpec {
	if s.Shards <= 0 {
		s.Shards = 64
	}
	if s.Streams <= 0 {
		s.Streams = 64
	}
	if s.Keys <= 0 {
		s.Keys = 65536
	}
	if s.Phases <= 0 {
		s.Phases = 12
	}
	if s.OpsPerStream <= 0 {
		s.OpsPerStream = 256
	}
	if s.Skew == 0 {
		s.Skew = 0.99
	}
	if s.Mix == "" {
		s.Mix = "read"
	}
	if s.ReshardEvery == 0 {
		s.ReshardEvery = 4
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	// Round the per-shard key count and per-stream op count up to the
	// alignment quantum, then rebuild the totals from them.
	perShard := (s.Keys + s.Shards - 1) / s.Shards
	perShard = (perShard + kvAlign - 1) / kvAlign * kvAlign
	s.Keys = perShard * s.Shards
	s.OpsPerStream = (s.OpsPerStream + kvAlign - 1) / kvAlign * kvAlign
	return s
}

// readFrac is the get fraction of the spec's mix schedule.
func (s KVSpec) readFrac() (float64, error) {
	switch s.Mix {
	case "read":
		return 0.95, nil
	case "write":
		return 0.50, nil
	}
	return 0, fmt.Errorf("kv: unknown mix %q (want read or write)", s.Mix)
}

// sm64 is a splitmix64 generator: tiny, seedable, and with no shared
// state between streams, so request sequences are a pure function of
// (Seed, stream) independent of P and of the schedule.
type sm64 struct{ s uint64 }

func (r *sm64) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// float returns a uniform float64 in [0, 1).
func (r *sm64) float() float64 { return float64(r.next()>>11) * 0x1p-53 }

// kvStreamRNG seeds stream c's generator.
func kvStreamRNG(seed uint64, c int) sm64 {
	r := sm64{s: seed ^ (uint64(c+1) * 0xD1B54A32D192ED03)}
	r.next() // decorrelate nearby seeds
	return r
}

// kvHash spreads popularity rank r over the key space, so the Zipf head
// lands on pseudo-random shards instead of shard 0.
func kvHash(r int) uint64 {
	x := sm64{s: uint64(r)}
	return x.next()
}

// zipfTable returns the cumulative (unnormalized) Zipf weights
// sum_{r<=i} 1/(r+1)^s; sampling is a uniform draw against the total
// followed by a binary search.  The table is host-side and shared
// read-only by all node goroutines.
func zipfTable(n int, s float64) []float64 {
	cum := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += math.Pow(float64(i+1), -s)
		cum[i] = total
	}
	return cum
}

// zipfSample draws a popularity rank in [0, len(cum)).
func zipfSample(r *sm64, cum []float64) int {
	u := r.float() * cum[len(cum)-1]
	lo, hi := 0, len(cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// kvOp is one generated request.
type kvOp struct {
	key int
	put bool
	val int64
}

// kvGen draws stream r's next request.  Both the parallel run and the
// sequential reference call exactly this, in the same order, so the
// request trace is shared by construction.
func kvGen(r *sm64, cum []float64, keys int, readFrac float64) kvOp {
	get := r.float() < readFrac
	rank := zipfSample(r, cum)
	key := int(kvHash(rank) % uint64(keys))
	op := kvOp{key: key, put: !get}
	if op.put {
		op.val = int64(r.next() & 0xFFFFFFFF)
	}
	return op
}

// Intent encoding: one int64 per request slot.  Zero means "get"
// (nothing to apply); a put sets bit 62, carries the key in bits 61..32
// and the 32-bit value in bits 31..0.
const (
	kvPutFlag  = int64(1) << 62
	kvKeyShift = 32
	kvValMask  = (int64(1) << 32) - 1
)

func kvEncode(op kvOp) int64 {
	if !op.put {
		return 0
	}
	return kvPutFlag | int64(op.key)<<kvKeyShift | op.val
}

func kvDecode(slot int64) (key int, val int64, put bool) {
	if slot&kvPutFlag == 0 {
		return 0, 0, false
	}
	return int(slot >> kvKeyShift & ((1 << 30) - 1)), slot & kvValMask, true
}

// kvOwner is the shard->node assignment of an ownership epoch: each
// epoch rotates every shard to the next node, so a reshard migrates the
// whole map (the stress case for block handoff).
func kvOwner(shard, epoch, p int) int { return (shard + epoch) % p }

// KVStats holds the serving-workload observables.  All are zero for the
// other workloads; the scalar fields land in BENCH JSON/CSV and are held
// to the same bit-identity gates as every protocol counter.
type KVStats struct {
	// Ops, Gets and Puts count served requests (host-side tallies of
	// the deterministic request trace; P-independent).
	Ops, Gets, Puts int64
	// Reshards counts ownership epoch transitions; MigratedBlocks the
	// store blocks whose owner changed across them.
	Reshards, MigratedBlocks int64
	// HotShardOps is the request count of the hottest shard — the
	// hot-key skew the Zipf generator actually delivered.
	HotShardOps int64
	// Answer folds the per-shard store checksums and the per-stream get
	// checksums into one value; it must be identical across protocols,
	// machine sizes and schedules (the differential tests assert this).
	Answer int64
	// PerShard and GetSum are the unfolded answer parts for tests.
	PerShard []uint64 `json:"-"`
	GetSum   uint64   `json:"-"`
}

// fnv1a folds v into h (FNV-1a over the 8 bytes, little-endian).
func fnv1a(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= (v >> (8 * i)) & 0xFF
		h *= 1099511628211
	}
	return h
}

const fnvOffset = 14695981039346656037

// RunKV executes the sharded KV serving workload on the given system.
func RunKV(sys cstar.System, spec KVSpec, cfg Config) Result {
	cfg = cfg.norm()
	spec = spec.norm()
	res := Result{Workload: "KV", System: sys, Sched: spec.Mix, Extra: map[string]float64{}}
	readFrac, err := spec.readFrac()
	if err != nil {
		res.Err = err
		return res
	}
	m := cfg.machine(sys)
	p := cfg.P

	perShard := spec.Keys / spec.Shards
	slots := spec.Streams * spec.OpsPerStream
	elemsPerBlock := int(cfg.BlockSize / 8)
	blocksPerShard := perShard / elemsPerBlock

	// The store and the intent buffer carry the data-parallel traffic
	// and take the system's data policy (loosely coherent under LCM);
	// the shard map is control metadata and stays coherent everywhere.
	store := cstar.NewVectorI64(m, "KV.store", spec.Keys, cstar.DataPolicy(sys), memsys.Blocked)
	intents := cstar.NewVectorI64(m, "KV.intents", slots, cstar.DataPolicy(sys), memsys.Interleaved)
	getsum := cstar.NewVectorI64(m, "KV.getsum", spec.Streams, cstar.DataPolicy(sys), memsys.Interleaved)
	// shardMap[s] is shard s's owner; the last element is the epoch
	// version, bumped by node 0 at each reshard barrier.
	shardMap := cstar.NewVectorI32(m, "KV.map", spec.Shards+1, core.Coherent(), memsys.SingleHome)
	m.Freeze()
	for s := 0; s < spec.Shards; s++ {
		shardMap.Poke(s, int32(kvOwner(s, 0, p)))
	}

	cum := zipfTable(spec.Keys, spec.Skew)

	var tallyMu sync.Mutex
	var stats KVStats
	shardOps := make([]int64, spec.Shards)

	runErr := m.RunErr(func(n *tempest.Node) {
		// Per-stream generator state, indexed by stream; this node only
		// touches the streams it serves (c mod P == n.ID), always in
		// ascending stream order so its access stream is deterministic.
		rngs := make([]sm64, spec.Streams)
		mySums := make([]uint64, spec.Streams)
		for c := n.ID; c < spec.Streams; c += p {
			rngs[c] = kvStreamRNG(spec.Seed, c)
			mySums[c] = fnvOffset
		}
		var myGets, myPuts, myMigrated, myReshards int64
		myShardOps := make([]int64, spec.Shards)
		span := make([]int64, kvAlign)
		epoch := 0

		for phase := 0; phase < spec.Phases; phase++ {
			// Reshard barrier: node 0 republishes the shard map under a
			// new version; the old owner hands its blocks off by
			// dropping its cached copies, and the new owner tallies the
			// migration.  The extra EndParallel versions the map: every
			// node sees the new epoch before any request of the phase.
			if spec.ReshardEvery > 0 && phase > 0 && phase%spec.ReshardEvery == 0 {
				epoch++
				if n.ID == 0 {
					for s := 0; s < spec.Shards; s++ {
						shardMap.Set(n, s, int32(kvOwner(s, epoch, p)))
					}
					shardMap.Set(n, spec.Shards, int32(epoch))
					myReshards++
				}
				cstar.EndParallel(n)
				for s := 0; s < spec.Shards; s++ {
					was, now := kvOwner(s, epoch-1, p), kvOwner(s, epoch, p)
					if was == now {
						continue
					}
					if was == n.ID {
						for b := 0; b < blocksPerShard; b++ {
							n.DropCopy(store.Addr(s*perShard + b*elemsPerBlock))
						}
					}
					if now == n.ID {
						myMigrated += int64(blocksPerShard)
					}
				}
			}

			// Serve: answer this node's streams.  Gets read the store
			// state committed at the last phase boundary; puts are
			// buffered into the stream's intent slots (single writer).
			for c := n.ID; c < spec.Streams; c += p {
				r := &rngs[c]
				base := c * spec.OpsPerStream
				for o := 0; o < spec.OpsPerStream; o++ {
					op := kvGen(r, cum, spec.Keys, readFrac)
					n.Compute(2) // hash + shard lookup
					myShardOps[op.key/perShard]++
					if op.put {
						intents.Set(n, base+o, kvEncode(op))
						myPuts++
					} else {
						mySums[c] = fnv1a(mySums[c], uint64(store.Get(n, op.key)))
						intents.Set(n, base+o, 0)
						myGets++
					}
				}
			}
			cstar.EndParallel(n)

			// Apply: every node scans the whole intent buffer in
			// canonical slot order and applies the puts that land in
			// shards it owns, so the last writer of a key is the highest
			// slot regardless of machine size or schedule.
			for lo := 0; lo < slots; lo += kvAlign {
				intents.GetSpan(n, lo, span)
				for _, slot := range span {
					key, val, put := kvDecode(slot)
					if !put {
						continue
					}
					if int(shardMap.Get(n, key/perShard)) != n.ID {
						continue
					}
					n.Compute(1)
					store.Set(n, key, val)
				}
			}
			cstar.EndParallel(n)
		}

		// Publish the per-stream get checksums through simulated memory
		// so the answer is itself a protocol-visible result.
		for c := n.ID; c < spec.Streams; c += p {
			getsum.Set(n, c, int64(mySums[c]))
		}
		cstar.EndParallel(n)

		tallyMu.Lock()
		stats.Gets += myGets
		stats.Puts += myPuts
		stats.MigratedBlocks += myMigrated
		stats.Reshards += myReshards
		for s, k := range myShardOps {
			shardOps[s] += k
		}
		tallyMu.Unlock()
	})
	if runErr != nil {
		res.Err = runErr
		return res
	}
	finish(m, &res)

	stats.Ops = stats.Gets + stats.Puts
	for _, k := range shardOps {
		if k > stats.HotShardOps {
			stats.HotShardOps = k
		}
	}
	// Fold the answer from the home images: per-shard store checksums
	// in shard order, then the get checksums in stream order.
	cstar.DrainToHome(m)
	stats.PerShard = make([]uint64, spec.Shards)
	answer := uint64(fnvOffset)
	for s := 0; s < spec.Shards; s++ {
		h := uint64(fnvOffset)
		for k := s * perShard; k < (s+1)*perShard; k++ {
			h = fnv1a(h, uint64(store.Peek(k)))
		}
		stats.PerShard[s] = h
		answer = fnv1a(answer, h)
	}
	gs := uint64(fnvOffset)
	for c := 0; c < spec.Streams; c++ {
		gs = fnv1a(gs, uint64(getsum.Peek(c)))
	}
	stats.GetSum = gs
	stats.Answer = int64(fnv1a(answer, gs))
	res.KV = stats
	res.Extra["kv_hot_shard_ratio"] = float64(stats.HotShardOps) / float64(stats.Ops)

	if cfg.Verify && res.Err == nil {
		res.Err = verifyKV(store, getsum, spec, readFrac)
	}
	return res
}

// kvReference replays the whole campaign sequentially: the same request
// generators, the same buffered-put semantics, the same canonical apply
// order.  It returns the final store and the per-stream get checksums.
func kvReference(spec KVSpec, readFrac float64) (store []int64, sums []uint64) {
	store = make([]int64, spec.Keys)
	sums = make([]uint64, spec.Streams)
	rngs := make([]sm64, spec.Streams)
	for c := range rngs {
		rngs[c] = kvStreamRNG(spec.Seed, c)
		sums[c] = fnvOffset
	}
	cum := zipfTable(spec.Keys, spec.Skew)
	puts := make([]kvOp, spec.Streams*spec.OpsPerStream)
	for phase := 0; phase < spec.Phases; phase++ {
		for i := range puts {
			puts[i] = kvOp{}
		}
		for c := 0; c < spec.Streams; c++ {
			base := c * spec.OpsPerStream
			for o := 0; o < spec.OpsPerStream; o++ {
				op := kvGen(&rngs[c], cum, spec.Keys, readFrac)
				if op.put {
					puts[base+o] = op
				} else {
					sums[c] = fnv1a(sums[c], uint64(store[op.key]))
				}
			}
		}
		for _, op := range puts {
			if op.put {
				store[op.key] = op.val
			}
		}
	}
	return store, sums
}

// verifyKV compares the simulated home images against the sequential
// reference, key by key and stream by stream.
func verifyKV(store *cstar.VectorI64, getsum *cstar.VectorI64, spec KVSpec, readFrac float64) error {
	refStore, refSums := kvReference(spec, readFrac)
	for k := range refStore {
		if got := store.Peek(k); got != refStore[k] {
			return fmt.Errorf("kv: store[%d] = %d, want %d", k, got, refStore[k])
		}
	}
	for c := range refSums {
		if got := uint64(getsum.Peek(c)); got != refSums[c] {
			return fmt.Errorf("kv: getsum[%d] = %#x, want %#x", c, got, refSums[c])
		}
	}
	return nil
}
