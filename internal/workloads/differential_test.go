package workloads

import (
	"reflect"
	"testing"

	"lcm/internal/cstar"
)

// Differential tests for the span fast path: every Table-1 workload runs
// twice per memory system — once through the span/MRU engine and once with
// Config.ScalarAccess forcing the per-element accessors — and the two runs
// must agree on the answers (Verify) and on every observable: simulated
// cycles, all aggregated node counters, and the shared-counter snapshot.
//
// Historically, Cycles was asserted only at P=1 and Copying fault counts
// at P>1 were compared on a "stream-determined subset": under free-running
// goroutines, barrier clock folding and mid-phase invalidation order
// depended on host scheduling.  The deterministic scheduler
// (internal/sched, on by default in Config) makes the interleaving a pure
// function of (workload, P, seed); the span and scalar engines funnel
// through the same fault points with identical charges, so they replay the
// same schedule and every field — cycles included — must now match
// bit-exactly at every P.

type diffRow struct {
	name string
	run  func(sys cstar.System, cfg Config) Result
}

func diffRows() []diffRow {
	return []diffRow{
		{"Stencil-stat", func(sys cstar.System, cfg Config) Result {
			return RunStencil(sys, StencilSpec{N: 64, Iters: 4, Sched: "static"}, cfg)
		}},
		{"Stencil-dyn", func(sys cstar.System, cfg Config) Result {
			return RunStencil(sys, StencilSpec{N: 64, Iters: 4, Sched: "dynamic"}, cfg)
		}},
		{"Adaptive-stat", func(sys cstar.System, cfg Config) Result {
			return RunAdaptive(sys, AdaptiveSpec{N: 16, MaxDepth: 3, Iters: 8, Sched: "static",
				Electrodes: 3, SubdivThreshold: 4}, cfg)
		}},
		{"Adaptive-dyn", func(sys cstar.System, cfg Config) Result {
			return RunAdaptive(sys, AdaptiveSpec{N: 16, MaxDepth: 3, Iters: 8, Sched: "dynamic",
				Electrodes: 3, SubdivThreshold: 4}, cfg)
		}},
		{"Threshold", func(sys cstar.System, cfg Config) Result {
			return RunThreshold(sys, ThresholdSpec{N: 64, Iters: 6, Threshold: 0.05, Sources: 4}, cfg)
		}},
		{"Unstructured", func(sys cstar.System, cfg Config) Result {
			return RunUnstructured(sys, UnstructuredSpec{Nodes: 128, Edges: 512, Iters: 12,
				Seed: 42, Stride: 8}, cfg)
		}},
	}
}

var diffSystems = []cstar.System{cstar.Copying, cstar.LCMscc, cstar.LCMmcc}

// TestSpanScalarDifferential: span and scalar execution of every workload
// must produce identical verified answers, identical protocol counts, and
// identical simulated cycles — at P=8, for every memory system, with no
// carve-outs.
func TestSpanScalarDifferential(t *testing.T) {
	for _, row := range diffRows() {
		for _, sys := range diffSystems {
			cfg := Config{P: 8, Verify: true}
			span := row.run(sys, cfg)
			cfg.ScalarAccess = true
			scal := row.run(sys, cfg)
			name := row.name + "/" + sys.String()
			if span.Err != nil {
				t.Errorf("%s: span run failed: %v", name, span.Err)
				continue
			}
			if scal.Err != nil {
				t.Errorf("%s: scalar run failed: %v", name, scal.Err)
				continue
			}
			if span.Cycles != scal.Cycles {
				t.Errorf("%s: cycles diverge: span %d, scalar %d", name, span.Cycles, scal.Cycles)
			}
			if span.C != scal.C {
				t.Errorf("%s: node counters diverge:\n span   %+v\n scalar %+v", name, span.C, scal.C)
			}
			if span.S != scal.S {
				t.Errorf("%s: shared counters diverge:\n span   %+v\n scalar %+v", name, span.S, scal.S)
			}
			if !reflect.DeepEqual(span.Extra, scal.Extra) {
				t.Errorf("%s: extras diverge: span %v, scalar %v", name, span.Extra, scal.Extra)
			}
		}
	}
}

// TestSpanScalarCyclesSerial: at P=1 the simulation is fully serial, so
// simulated time itself must be bit-identical between span and scalar
// execution.
func TestSpanScalarCyclesSerial(t *testing.T) {
	for _, row := range diffRows() {
		for _, sys := range diffSystems {
			cfg := Config{P: 1, Verify: true}
			span := row.run(sys, cfg)
			cfg.ScalarAccess = true
			scal := row.run(sys, cfg)
			name := row.name + "/" + sys.String()
			if span.Err != nil || scal.Err != nil {
				t.Errorf("%s: run failed: span %v, scalar %v", name, span.Err, scal.Err)
				continue
			}
			if span.Cycles != scal.Cycles {
				t.Errorf("%s: cycles diverge: span %d, scalar %d", name, span.Cycles, scal.Cycles)
			}
			if span.C != scal.C {
				t.Errorf("%s: node counters diverge:\n span   %+v\n scalar %+v", name, span.C, scal.C)
			}
		}
	}
}
