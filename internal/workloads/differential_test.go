package workloads

import (
	"reflect"
	"testing"

	"lcm/internal/cstar"
	"lcm/internal/net"
	"lcm/internal/stats"
)

// Differential tests for the span fast path: every Table-1 workload runs
// twice per memory system — once through the span/MRU engine and once with
// Config.ScalarAccess forcing the per-element accessors — and the two runs
// must agree on the answers (Verify) and on every deterministic observable:
// all aggregated node counters and the shared-counter snapshot.
//
// Result.Cycles is asserted only at P=1.  At P>1 the folding of stolen
// remote-handler cycles at barriers depends on goroutine interleaving, so
// simulated time is not run-to-run reproducible even for a fixed access
// path (the counters are); the tempest-level tests assert exact clock
// equality for the access engine itself.
//
// Fault counts under the eagerly coherent Copying system are likewise
// interleaving-dependent at P>1: a write fault invalidates other nodes'
// copies *during* the phase, so when two nodes false-share a boundary
// block the exclusive copy ping-pongs a timing-dependent number of times
// (each bounce is one extra miss on each side).  LCM never revokes a copy
// mid-phase — reconciliation happens inside the barrier window and the
// workloads' coherent regions are read-only while a phase runs — so LCM
// counters are determined by each node's own access stream and are
// asserted bit-exactly.  For Copying at P>1 the assertion covers the
// stream-determined fields (Hits counts every permitted access, plus
// barriers and copy traffic); the P=1 test below asserts everything.

type diffRow struct {
	name string
	run  func(sys cstar.System, cfg Config) Result
}

func diffRows() []diffRow {
	return []diffRow{
		{"Stencil-stat", func(sys cstar.System, cfg Config) Result {
			return RunStencil(sys, StencilSpec{N: 64, Iters: 4, Sched: "static"}, cfg)
		}},
		{"Stencil-dyn", func(sys cstar.System, cfg Config) Result {
			return RunStencil(sys, StencilSpec{N: 64, Iters: 4, Sched: "dynamic"}, cfg)
		}},
		{"Adaptive-stat", func(sys cstar.System, cfg Config) Result {
			return RunAdaptive(sys, AdaptiveSpec{N: 16, MaxDepth: 3, Iters: 8, Sched: "static",
				Electrodes: 3, SubdivThreshold: 4}, cfg)
		}},
		{"Adaptive-dyn", func(sys cstar.System, cfg Config) Result {
			return RunAdaptive(sys, AdaptiveSpec{N: 16, MaxDepth: 3, Iters: 8, Sched: "dynamic",
				Electrodes: 3, SubdivThreshold: 4}, cfg)
		}},
		{"Threshold", func(sys cstar.System, cfg Config) Result {
			return RunThreshold(sys, ThresholdSpec{N: 64, Iters: 6, Threshold: 0.05, Sources: 4}, cfg)
		}},
		{"Unstructured", func(sys cstar.System, cfg Config) Result {
			return RunUnstructured(sys, UnstructuredSpec{Nodes: 128, Edges: 512, Iters: 12,
				Seed: 42, Stride: 8}, cfg)
		}},
	}
}

var diffSystems = []cstar.System{cstar.Copying, cstar.LCMscc, cstar.LCMmcc}

// streamDetermined zeroes the counter fields whose values depend on how
// concurrent invalidations interleave with sharers' accesses.  Everything
// left is fixed by the nodes' own access streams, so it must match between
// the span and scalar runs under any scheduling.
func streamDetermined(c stats.NodeCounters) stats.NodeCounters {
	c.Misses = 0
	c.RemoteMisses = 0
	c.LocalFills = 0
	c.Upgrades = 0
	c.InvalidationsSent = 0
	c.InvalidationsRecv = 0
	c.Net = net.Counters{} // message accounting tracks the fault events above
	return c
}

// TestSpanScalarDifferential: span and scalar execution of every workload
// must produce identical verified answers and identical protocol counts.
func TestSpanScalarDifferential(t *testing.T) {
	for _, row := range diffRows() {
		for _, sys := range diffSystems {
			cfg := Config{P: 8, Verify: true}
			span := row.run(sys, cfg)
			cfg.ScalarAccess = true
			scal := row.run(sys, cfg)
			name := row.name + "/" + sys.String()
			if span.Err != nil {
				t.Errorf("%s: span run failed: %v", name, span.Err)
				continue
			}
			if scal.Err != nil {
				t.Errorf("%s: scalar run failed: %v", name, scal.Err)
				continue
			}
			spanC, scalC := span.C, scal.C
			if sys == cstar.Copying {
				spanC, scalC = streamDetermined(spanC), streamDetermined(scalC)
			}
			if spanC != scalC {
				t.Errorf("%s: node counters diverge:\n span   %+v\n scalar %+v", name, spanC, scalC)
			}
			if span.S != scal.S {
				t.Errorf("%s: shared counters diverge:\n span   %+v\n scalar %+v", name, span.S, scal.S)
			}
			if !reflect.DeepEqual(span.Extra, scal.Extra) {
				t.Errorf("%s: extras diverge: span %v, scalar %v", name, span.Extra, scal.Extra)
			}
		}
	}
}

// TestSpanScalarCyclesSerial: at P=1 the simulation is fully serial, so
// simulated time itself must be bit-identical between span and scalar
// execution.
func TestSpanScalarCyclesSerial(t *testing.T) {
	for _, row := range diffRows() {
		for _, sys := range diffSystems {
			cfg := Config{P: 1, Verify: true}
			span := row.run(sys, cfg)
			cfg.ScalarAccess = true
			scal := row.run(sys, cfg)
			name := row.name + "/" + sys.String()
			if span.Err != nil || scal.Err != nil {
				t.Errorf("%s: run failed: span %v, scalar %v", name, span.Err, scal.Err)
				continue
			}
			if span.Cycles != scal.Cycles {
				t.Errorf("%s: cycles diverge: span %d, scalar %d", name, span.Cycles, scal.Cycles)
			}
			if span.C != scal.C {
				t.Errorf("%s: node counters diverge:\n span   %+v\n scalar %+v", name, span.C, scal.C)
			}
		}
	}
}
