package workloads

import (
	"fmt"

	"lcm/internal/core"
	"lcm/internal/cstar"
	"lcm/internal/graph"
	"lcm/internal/memsys"
	"lcm/internal/tempest"
)

// UnstructuredSpec parameterizes the Unstructured benchmark of Section
// 6.3: relaxation over an irregular graph.  The graph is built once,
// statically partitioned into contiguous vertex ranges, and — because the
// topology is random — has many cross-processor edges.
//
// Paper configuration: 256 vertices, 1024 edges, 512 iterations.
type UnstructuredSpec struct {
	Nodes int
	Edges int
	Iters int
	Seed  uint64
	// Stride pads each vertex record to Stride float32 words; the
	// paper's graph nodes are records, not bare floats, so the default
	// of 8 gives one 32-byte block per vertex.
	Stride int
}

// PaperUnstructured returns the paper's configuration.
func PaperUnstructured() UnstructuredSpec {
	return UnstructuredSpec{Nodes: 256, Edges: 1024, Iters: 512, Seed: 42, Stride: 8}
}

// unstructuredSummary: every vertex updates itself reading irregular
// neighbours; statically partitioned, all vertices written every
// iteration.
var unstructuredSummary = cstar.AccessSummary{WritesOwnElementOnly: true, ReadsSharedData: true}

// relaxVertex is the per-vertex update shared with the reference.  The
// drive term is a small time-varying source that keeps the field moving
// for all 512 iterations (the paper's graph shows essentially constant
// per-iteration communication, i.e. no convergence within the run).
func relaxVertex(v, navg float32, vid, it int) float32 {
	return (v+navg)*0.5 + float32((vid+it)%5-2)*0.01
}

// RunUnstructured executes the Unstructured benchmark.
func RunUnstructured(sys cstar.System, spec UnstructuredSpec, cfg Config) Result {
	cfg = cfg.norm()
	if spec.Stride == 0 {
		spec.Stride = 8
	}
	res := Result{Workload: "Unstructured", System: sys, Extra: map[string]float64{}}
	m := cfg.machine(sys)

	topo := graph.Build(spec.Nodes, spec.Edges, spec.Seed)
	// Vertex values: one padded record per vertex, block-partitioned so a
	// node's vertices are homed locally (owner-compute layout).
	val := cstar.NewVectorF32(m, "g.val", spec.Nodes*spec.Stride, cstar.DataPolicy(sys), memsys.Blocked)
	var old *cstar.VectorF32
	if sys == cstar.Copying {
		// "To ensure C** semantics without LCM support, the program
		// maintains an extra copy of the nodes.  No additional copying
		// is necessary since all nodes are updated in each iteration."
		old = cstar.NewVectorF32(m, "g.old", spec.Nodes*spec.Stride, core.Coherent(), memsys.Blocked)
	}
	offs := cstar.NewVectorI32(m, "g.off", spec.Nodes+1, core.Coherent(), memsys.Interleaved)
	tgts := cstar.NewVectorI32(m, "g.tgt", len(topo.Targets), core.Coherent(), memsys.Interleaved)
	m.Freeze()

	for i, o := range topo.Offsets {
		offs.Poke(i, o)
	}
	for i, w := range topo.Targets {
		tgts.Poke(i, w)
	}
	initV := func(v int) float32 { return float32((v*7919)%100) / 10 }
	for v := 0; v < spec.Nodes; v++ {
		val.Poke(v*spec.Stride, initV(v))
		if old != nil {
			old.Poke(v*spec.Stride, initV(v))
		}
	}
	res.Extra["cross_edges"] = float64(topo.CrossEdges(cfg.P))

	plan := cstar.Lower(unstructuredSummary, sys)
	sched := cstar.StaticSchedule{}

	// Per-node scratch for the span reads of the gather loop: the offset
	// pair and the vertex's whole edge-target range stream through the
	// span engine (the gather over src stays scalar — it is irregular by
	// construction).  Accounting matches the element-by-element loop.
	maxDeg := 0
	for v := 0; v < spec.Nodes; v++ {
		if d := int(topo.Offsets[v+1] - topo.Offsets[v]); d > maxDeg {
			maxDeg = d
		}
	}
	tgtScratch := make([][]int32, cfg.P)
	for i := range tgtScratch {
		tgtScratch[i] = make([]int32, maxDeg)
	}

	runErr := m.RunErr(func(n *tempest.Node) {
		cur, prev := val, old
		for it := 0; it < spec.Iters; it++ {
			src := cur
			if plan.Mode == cstar.ModeCopying {
				src = prev
			}
			cstar.ForEach(n, sched, plan, it, spec.Nodes, func(v int) {
				var pair [2]int32
				offs.GetSpan(n, v, pair[:])
				lo, hi := pair[0], pair[1]
				tb := tgtScratch[n.ID][:hi-lo]
				tgts.GetSpan(n, int(lo), tb)
				var sum float32
				for _, w := range tb {
					sum += src.Get(n, int(w)*spec.Stride)
				}
				navg := sum / float32(hi-lo)
				cur.Set(n, v*spec.Stride, relaxVertex(src.Get(n, v*spec.Stride), navg, v, it))
				n.Compute(int64(hi-lo) + 2)
			})
			cstar.EndParallel(n)
			if plan.Mode == cstar.ModeCopying {
				cur, prev = prev, cur
			}
		}
	})
	if runErr != nil {
		// The machine is poisoned (a node died or the watchdog fired);
		// report the structured error without reading further state.
		res.Err = runErr
		return res
	}
	finish(m, &res)

	if cfg.Verify {
		final := val
		if sys == cstar.Copying && spec.Iters%2 == 0 {
			final = old
		}
		cstar.DrainToHome(m)
		if res.Err == nil {
			res.Err = verifyUnstructured(final, topo, spec, initV)
		}
	}
	return res
}

// verifyUnstructured recomputes the relaxation sequentially and compares.
func verifyUnstructured(got *cstar.VectorF32, topo *graph.Topology, spec UnstructuredSpec, initV func(int) float32) error {
	cur := make([]float32, spec.Nodes)
	old := make([]float32, spec.Nodes)
	for v := range cur {
		cur[v] = initV(v)
	}
	for it := 0; it < spec.Iters; it++ {
		cur, old = old, cur
		for v := 0; v < spec.Nodes; v++ {
			var sum float32
			lo, hi := topo.Offsets[v], topo.Offsets[v+1]
			for k := lo; k < hi; k++ {
				sum += old[topo.Targets[k]]
			}
			cur[v] = relaxVertex(old[v], sum/float32(hi-lo), v, it)
		}
	}
	for v := 0; v < spec.Nodes; v++ {
		if !approxEq(got.Peek(v*spec.Stride), cur[v]) {
			return fmt.Errorf("unstructured: v%d = %v, want %v", v, got.Peek(v*spec.Stride), cur[v])
		}
	}
	return nil
}
