package net

import (
	"sync"

	"lcm/internal/cost"
)

// FatTree routes messages over a CM-5-style 4-ary fat tree in virtual
// time.  Processing nodes are the leaves; a message from src to dst
// climbs to their least common ancestor and descends, crossing two
// links per tree level.  Each directed channel and each node's network
// interface is a server with a free-at timestamp: a message arriving
// while the server is busy queues, and the wait is charged to the
// sender as QueueCycles.  Channel multiplicity doubles per level up to
// four (the CM-5's thinned upper tree), with the channel within a
// bundle chosen by a deterministic hash of the endpoints.
//
// Virtual timestamps from different node clocks are only loosely
// ordered, so queueing outcomes — and therefore cycle totals — vary
// run to run at P>1.  Message and byte counters remain deterministic.
type FatTree struct {
	lossPort
	cfg    Config
	cost   cost.Model
	p      int
	levels int

	mu  sync.Mutex
	chs []channel
	// levelOff[ℓ-1] is the index of level ℓ's first channel; channels
	// 0..2p-1 are the per-node out/in network interfaces.
	levelOff []int
	// levelMul[ℓ-1] is the channel multiplicity at level ℓ.
	levelMul []int
}

type channel struct {
	freeAt int64
	busy   int64
}

// NewFatTree builds a fat tree over p leaves.  cfg fields at zero take
// the package defaults; the cost model supplies the barrier charge kept
// on the control network.
func NewFatTree(cfg Config, p int, c cost.Model) *FatTree {
	cfg = cfg.withDefaults()
	if p < 1 {
		p = 1
	}
	levels := 0
	for span := 1; span < p; span *= 4 {
		levels++
	}
	ft := &FatTree{cfg: cfg, cost: c, p: p, levels: levels}
	n := 2 * p // out/in NI per node
	for l := 1; l <= levels; l++ {
		ft.levelOff = append(ft.levelOff, n)
		mul := 1 << (l - 1)
		if mul > 4 {
			mul = 4
		}
		ft.levelMul = append(ft.levelMul, mul)
		children := ((p - 1) >> (2 * (l - 1))) + 1
		n += children * mul * 2 // up and down bundles per child subtree
	}
	ft.chs = make([]channel, n)
	return ft
}

// Name implements Network.
func (ft *FatTree) Name() string { return "fattree" }

func (ft *FatTree) niOut(node int) int { return 2 * node }
func (ft *FatTree) niIn(node int) int  { return 2*node + 1 }

// upChan returns the channel index for the up-link out of child subtree
// `child` at level l (1-based), bundle slot h.
func (ft *FatTree) upChan(l, child, h int) int {
	mul := ft.levelMul[l-1]
	return ft.levelOff[l-1] + child*mul*2 + h%mul
}

// downChan is the matching down-link into child subtree `child`.
func (ft *FatTree) downChan(l, child, h int) int {
	mul := ft.levelMul[l-1]
	return ft.levelOff[l-1] + child*mul*2 + mul + h%mul
}

// lca returns the tree level of src and dst's least common ancestor
// (0 if src == dst); a message crosses 2*lca links.
func (ft *FatTree) lca(src, dst int) int {
	l := 0
	for a, b := src, dst; a != b; a, b = a>>2, b>>2 {
		l++
	}
	return l
}

// Hops returns the link count of the src→dst route (NIs excluded).
func (ft *FatTree) Hops(src, dst int) int { return 2 * ft.lca(src, dst) }

// acquire serializes a message of the given service time through ch
// starting at t, returning the departure time and accumulating queueing
// into *queue.  Caller holds ft.mu.
func (ft *FatTree) acquire(ch int, t, service int64, queue *int64) int64 {
	c := &ft.chs[ch]
	start := t
	if c.freeAt > start {
		*queue += c.freeAt - start
		start = c.freeAt
	}
	c.freeAt = start + service
	c.busy += service
	return start + service
}

// route pushes one message of `bytes` total size from src to dst
// starting at now.  It returns the arrival time and queueing total.
// Caller holds ft.mu.
func (ft *FatTree) route(src, dst int, bytes, now int64, queue *int64) int64 {
	h := src*31 + dst
	wire := ft.cfg.HopCycles + bytes*ft.cfg.CyclesPerByte
	t := ft.acquire(ft.niOut(src), now, ft.cfg.NICycles, queue)
	top := ft.lca(src, dst)
	for l := 1; l <= top; l++ {
		t = ft.acquire(ft.upChan(l, src>>(2*(l-1)), h), t, wire, queue)
	}
	for l := top; l >= 1; l-- {
		t = ft.acquire(ft.downChan(l, dst>>(2*(l-1)), h), t, wire, queue)
	}
	return ft.acquire(ft.niIn(dst), t, ft.cfg.NICycles, queue)
}

// RoundTrip routes the request and the data reply and charges the full
// blocking latency.
func (ft *FatTree) RoundTrip(src, dst int, payload int64, now int64, c *Counters) int64 {
	c.Msgs[MsgMissRequest]++
	c.Msgs[MsgDataReply]++
	c.Bytes += 2*ft.cfg.HeaderBytes + payload
	ft.mu.Lock()
	defer ft.mu.Unlock()
	var q int64
	t := ft.route(src, dst, ft.cfg.HeaderBytes, now, &q)
	t = ft.route(dst, src, ft.cfg.HeaderBytes+payload, t, &q)
	c.QueueCycles += q
	return t - now
}

// Timeout routes the request and charges the would-be round trip under
// the flat model (the reply never comes; the requester waits out the
// timeout window, which the fault layer prices).
func (ft *FatTree) Timeout(src, dst int, now int64, c *Counters) int64 {
	c.Msgs[MsgMissRequest]++
	c.Bytes += ft.cfg.HeaderBytes
	ft.mu.Lock()
	defer ft.mu.Unlock()
	var q int64
	t := ft.route(src, dst, ft.cfg.HeaderBytes, now, &q)
	c.QueueCycles += q
	return t - now
}

// Forward routes the home→owner forward leg of a three-hop miss.
func (ft *FatTree) Forward(src, dst int, now int64, c *Counters) int64 {
	c.Msgs[MsgForward]++
	c.Bytes += ft.cfg.HeaderBytes
	ft.mu.Lock()
	defer ft.mu.Unlock()
	var q int64
	t := ft.route(src, dst, ft.cfg.HeaderBytes, now, &q)
	c.QueueCycles += q
	return t - now
}

// Upgrade routes a header-only round trip.
func (ft *FatTree) Upgrade(src, dst int, now int64, c *Counters) int64 {
	c.Msgs[MsgUpgrade] += 2
	c.Bytes += 2 * ft.cfg.HeaderBytes
	ft.mu.Lock()
	defer ft.mu.Unlock()
	var q int64
	t := ft.route(src, dst, ft.cfg.HeaderBytes, now, &q)
	t = ft.route(dst, src, ft.cfg.HeaderBytes, t, &q)
	c.QueueCycles += q
	return t - now
}

// Invalidate routes one blocking invalidation (the writer must know the
// copy is dead before proceeding, so the full one-way latency is
// charged).
func (ft *FatTree) Invalidate(src, dst int, now int64, c *Counters) int64 {
	c.Msgs[MsgInvalidate]++
	c.Bytes += ft.cfg.HeaderBytes
	ft.mu.Lock()
	defer ft.mu.Unlock()
	var q int64
	t := ft.route(src, dst, ft.cfg.HeaderBytes, now, &q)
	c.QueueCycles += q
	return t - now
}

// Flush is fire-and-forget: the sender pays only network-interface
// injection (plus any queueing for it), while the message's traversal
// still occupies channels against later traffic.
func (ft *FatTree) Flush(src, dst int, payload int64, now int64, c *Counters) int64 {
	c.Msgs[MsgFlush]++
	c.Bytes += ft.cfg.HeaderBytes + payload
	ft.mu.Lock()
	defer ft.mu.Unlock()
	var inject, drift int64
	t := ft.acquire(ft.niOut(src), now, ft.cfg.NICycles, &inject)
	charge := t - now
	// The body of the message continues without the sender.
	h := src*31 + dst
	wire := ft.cfg.HopCycles + (ft.cfg.HeaderBytes+payload)*ft.cfg.CyclesPerByte
	top := ft.lca(src, dst)
	for l := 1; l <= top; l++ {
		t = ft.acquire(ft.upChan(l, src>>(2*(l-1)), h), t, wire, &drift)
	}
	for l := top; l >= 1; l-- {
		t = ft.acquire(ft.downChan(l, dst>>(2*(l-1)), h), t, wire, &drift)
	}
	ft.acquire(ft.niIn(dst), t, ft.cfg.NICycles, &drift)
	c.QueueCycles += inject
	return charge
}

// Barrier rides the dedicated control network: accounted, not charged.
func (ft *FatTree) Barrier(node int, c *Counters) {
	c.Msgs[MsgBarrier]++
	c.Bytes += ft.cfg.HeaderBytes
}

// MinLatency implements Network.  The cheapest remote operation is a
// fire-and-forget flush, which charges the sender only network-interface
// injection: NICycles at zero contention.  Every other operation crosses
// at least two NIs plus the up/down links of the LCA route, so it costs
// strictly more; queueing only adds.  NICycles is therefore the min over
// all LCA routes of the sender-visible latency floor.
func (ft *FatTree) MinLatency() int64 {
	if ft.cfg.NICycles < 0 {
		return 0
	}
	return ft.cfg.NICycles
}

// LinkStats implements Network.
func (ft *FatTree) LinkStats() LinkStats {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	ls := LinkStats{Links: len(ft.chs)}
	for i := range ft.chs {
		b := ft.chs[i].busy
		ls.TotalBusy += b
		if b > ls.MaxBusy {
			ls.MaxBusy = b
		}
	}
	return ls
}
