package net

import (
	"testing"

	"lcm/internal/cost"
)

// TestUniformMatchesFlatModel pins the uniform model to the legacy flat
// charges: this is the bit-exactness contract of `-net=uniform`.
func TestUniformMatchesFlatModel(t *testing.T) {
	c := cost.Default()
	u := NewUniform(c, DefaultHeaderBytes)
	var ctr Counters
	cases := []struct {
		name string
		got  int64
		want int64
	}{
		{"roundtrip+64B", u.RoundTrip(0, 1, 64, 0, &ctr), c.RemoteRoundTrip + 64*c.PerByte},
		{"roundtrip+0B", u.RoundTrip(3, 0, 0, 999, &ctr), c.RemoteRoundTrip},
		{"timeout", u.Timeout(0, 1, 0, &ctr), c.RemoteRoundTrip},
		{"forward", u.Forward(1, 2, 0, &ctr), c.ThirdHop},
		{"upgrade", u.Upgrade(0, 1, 0, &ctr), c.Upgrade},
		{"invalidate", u.Invalidate(0, 1, 0, &ctr), c.InvalidatePerCopy},
		{"flush+16B", u.Flush(0, 1, 16, 0, &ctr), c.FlushPerBlock + 16*c.PerByte},
		{"flush+0B", u.Flush(0, 1, 0, 0, &ctr), c.FlushPerBlock},
	}
	for _, tc := range cases {
		if tc.got != tc.want {
			t.Errorf("%s: charged %d, want %d", tc.name, tc.got, tc.want)
		}
	}
	if ctr.QueueCycles != 0 {
		t.Errorf("uniform model queued %d cycles, want 0", ctr.QueueCycles)
	}
	if u.LinkStats() != (LinkStats{}) {
		t.Errorf("uniform model has link stats: %+v", u.LinkStats())
	}
}

// TestUniformAccounting checks message/byte bookkeeping per method.
func TestUniformAccounting(t *testing.T) {
	u := NewUniform(cost.Default(), 8)
	var c Counters
	u.RoundTrip(0, 1, 32, 0, &c)
	u.Forward(1, 2, 0, &c)
	u.Upgrade(0, 1, 0, &c)
	u.Invalidate(0, 1, 0, &c)
	u.Flush(0, 1, 16, 0, &c)
	u.Timeout(0, 1, 0, &c)
	u.Barrier(0, &c)
	want := Counters{Bytes: (16 + 32) + 8 + 16 + 8 + (8 + 16) + 8 + 8}
	want.Msgs[MsgMissRequest] = 2 // round trip + timed-out resend
	want.Msgs[MsgDataReply] = 1
	want.Msgs[MsgForward] = 1
	want.Msgs[MsgUpgrade] = 2
	want.Msgs[MsgInvalidate] = 1
	want.Msgs[MsgFlush] = 1
	want.Msgs[MsgBarrier] = 1
	if c != want {
		t.Errorf("counters:\n got  %+v\n want %+v", c, want)
	}
	if got := c.TotalMsgs(); got != 9 {
		t.Errorf("TotalMsgs = %d, want 9", got)
	}
}

func TestCountersAdd(t *testing.T) {
	var a, b Counters
	a.Msgs[MsgFlush] = 2
	a.Bytes = 10
	a.QueueCycles = 5
	b.Msgs[MsgFlush] = 3
	b.Msgs[MsgBarrier] = 1
	b.Bytes = 7
	a.Add(&b)
	if a.Msgs[MsgFlush] != 5 || a.Msgs[MsgBarrier] != 1 || a.Bytes != 17 || a.QueueCycles != 5 {
		t.Errorf("Add: %+v", a)
	}
}

func TestNewSelectsModel(t *testing.T) {
	c := cost.Default()
	n, err := New(Config{}, 8, c)
	if err != nil || n.Name() != "uniform" {
		t.Fatalf("New(zero) = %v, %v; want uniform", n, err)
	}
	n, err = New(Config{Model: "fattree"}, 8, c)
	if err != nil || n.Name() != "fattree" {
		t.Fatalf("New(fattree) = %v, %v", n, err)
	}
	if _, err = New(Config{Model: "torus"}, 8, c); err == nil {
		t.Fatal("New(torus) succeeded, want error")
	}
}

func TestKindString(t *testing.T) {
	if MsgMissRequest.String() != "miss_request" || MsgBarrier.String() != "barrier" {
		t.Errorf("kind names: %v %v", MsgMissRequest, MsgBarrier)
	}
	if Kind(99).String() != "kind(99)" {
		t.Errorf("out-of-range kind: %v", Kind(99))
	}
}
