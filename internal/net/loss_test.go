package net

import (
	"testing"

	"lcm/internal/cost"
)

// TestLossDeterministic pins the determinism contract: the fate sequence
// drawn by a sender is a pure function of (seed, sender, draw index),
// independent of what other senders draw in between.
func TestLossDeterministic(t *testing.T) {
	cfg := LossConfig{Seed: 42, DropPerMil: 100, DupPerMil: 100, ReorderPerMil: 100}
	a := NewLoss(cfg, 4)
	b := NewLoss(cfg, 4)
	var seqA, seqB []Delivery
	for i := 0; i < 200; i++ {
		seqA = append(seqA, a.Classify(1))
	}
	for i := 0; i < 200; i++ {
		// Interleave other senders' draws; sender 1's stream must not care.
		b.Classify(0)
		seqB = append(seqB, b.Classify(1))
		b.Classify(3)
	}
	for i := range seqA {
		if seqA[i] != seqB[i] {
			t.Fatalf("draw %d: %v vs %v under interleaving", i, seqA[i], seqB[i])
		}
	}
	if a.SenderTally(1) != b.SenderTally(1) {
		t.Fatalf("sender tallies diverged: %v vs %v", a.SenderTally(1), b.SenderTally(1))
	}
}

// TestLossSeedsDiffer checks different seeds inject different patterns.
func TestLossSeedsDiffer(t *testing.T) {
	mk := func(seed uint64) []Delivery {
		l := NewLoss(LossConfig{Seed: seed, DropPerMil: 300}, 1)
		var seq []Delivery
		for i := 0; i < 64; i++ {
			seq = append(seq, l.Classify(0))
		}
		return seq
	}
	a, b := mk(1), mk(2)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 1 and 2 injected identical fault patterns")
	}
}

// TestLossTallyMatchesDraws checks every non-clean classification is
// tallied, and the tally sums across senders.
func TestLossTallyMatchesDraws(t *testing.T) {
	l := NewLoss(LossConfig{Seed: 7, DropPerMil: 150, DupPerMil: 150, ReorderPerMil: 150}, 3)
	var want LossTally
	for i := 0; i < 300; i++ {
		switch l.Classify(i % 3) {
		case Dropped:
			want.Dropped++
		case Duplicated:
			want.Duplicated++
		case Reordered:
			want.Reordered++
		}
	}
	if got := l.Tally(); got != want {
		t.Fatalf("tally %v, want %v (from draws)", got, want)
	}
	if want.Total() == 0 {
		t.Fatal("450‰ fault rate injected nothing in 300 draws; stream is broken")
	}
	sum := l.SenderTally(0)
	sum.Add(l.SenderTally(1))
	sum.Add(l.SenderTally(2))
	if sum != want {
		t.Fatalf("per-sender tallies sum to %v, want %v", sum, want)
	}
}

// TestLossZeroConfigLosesNothing checks the zero config and the no-loss
// fast path never classify or tally anything.
func TestLossZeroConfigLosesNothing(t *testing.T) {
	l := NewLoss(LossConfig{Seed: 9}, 2)
	for i := 0; i < 100; i++ {
		if d := l.Classify(i % 2); d != Delivered {
			t.Fatalf("zero config classified %v", d)
		}
	}
	if got := l.Tally(); got != (LossTally{}) {
		t.Fatalf("zero config tallied %v", got)
	}
}

// TestModelsCarryLoss checks both interconnect models expose the
// SetLoss/Deliver port: without loss everything is delivered; with loss
// attached, Deliver draws from the model, and pricing methods never
// consult it themselves.
func TestModelsCarryLoss(t *testing.T) {
	c := cost.Default()
	models := []Network{
		NewUniform(c, DefaultHeaderBytes),
		NewFatTree(Config{Model: "fattree"}, 8, c),
	}
	for _, m := range models {
		if d := m.Deliver(0, 1); d != Delivered {
			t.Errorf("%s without loss: Deliver = %v", m.Name(), d)
		}
		l := NewLoss(LossConfig{Seed: 3, DropPerMil: 1000}, 8)
		m.SetLoss(l)
		if d := m.Deliver(0, 1); d != Dropped {
			t.Errorf("%s with certain drop: Deliver = %v", m.Name(), d)
		}
		var ctr Counters
		m.RoundTrip(0, 1, 32, 0, &ctr) // pricing must not draw from the loss model
		if got := l.Tally(); got.Total() != 1 {
			t.Errorf("%s: pricing consulted the loss model (tally %v, want 1 draw)", m.Name(), got)
		}
		m.SetLoss(nil)
		if d := m.Deliver(0, 1); d != Delivered {
			t.Errorf("%s after detach: Deliver = %v", m.Name(), d)
		}
	}
}

// TestDeliveryString covers the fate names used in reports.
func TestDeliveryString(t *testing.T) {
	for d, want := range map[Delivery]string{
		Delivered: "delivered", Dropped: "dropped",
		Duplicated: "duplicated", Reordered: "reordered", Delivery(9): "Delivery(9)",
	} {
		if d.String() != want {
			t.Errorf("Delivery(%d).String() = %q, want %q", uint8(d), d.String(), want)
		}
	}
}
