// Package net models the simulated machine's interconnect.
//
// The paper's CM-5 results are shaped by its fat-tree network: LCM wins
// because it moves fewer and cheaper messages than Stache plus explicit
// copying.  This package gives every protocol message an explicit route,
// latency, and link/NI occupancy so that traffic reduction can translate
// into the latency advantage the paper measures.
//
// Two models are provided:
//
//   - Uniform charges each message class exactly the flat price of the
//     cost.Model it is built from.  It reproduces the pre-net simulator
//     bit-for-bit (counters and virtual cycles) and is the default.
//   - FatTree routes messages over a CM-5-style 4-ary fat tree with
//     per-hop latency, per-byte serialization, and per-channel and
//     per-NI queueing in virtual time.  Queueing makes it sensitive to
//     contention and to the interleaving; under the deterministic
//     scheduler (the workloads default) its totals replay
//     bit-identically, but its different pricing selects a different
//     schedule than the uniform model's, so order-dependent observables
//     legitimately differ between the two.  It is an analysis mode, not
//     a goldens mode.
//
// Both models account messages, bytes, and queueing cycles into the
// calling node's net.Counters, which internal/stats embeds per node.
package net

import (
	"fmt"

	"lcm/internal/cost"
)

// Kind classifies protocol messages for accounting.
type Kind int

const (
	// MsgMissRequest is a blocking block-fetch request to a home node.
	MsgMissRequest Kind = iota
	// MsgDataReply is a data-carrying reply to a miss request.
	MsgDataReply
	// MsgForward is a home-to-dirty-owner forward (three-hop miss).
	MsgForward
	// MsgUpgrade is a no-data permission upgrade request or ack.
	MsgUpgrade
	// MsgInvalidate is a copy-invalidation directive.
	MsgInvalidate
	// MsgFlush is a fire-and-forget modified-block writeback.
	MsgFlush
	// MsgBarrier is a barrier packet on the control network.
	MsgBarrier

	// NumKinds is the number of message kinds.
	NumKinds
)

var kindNames = [NumKinds]string{
	"miss_request", "data_reply", "forward", "upgrade",
	"invalidate", "flush", "barrier",
}

// String returns the snake_case kind name used in JSON/CSV output.
func (k Kind) String() string {
	if k < 0 || k >= NumKinds {
		return fmt.Sprintf("kind(%d)", int(k))
	}
	return kindNames[k]
}

// Counters is the per-node network accounting record.  Like the rest of
// stats.NodeCounters it is updated only by the owning node's goroutine.
type Counters struct {
	// Msgs counts messages this node injected, by kind.
	Msgs [NumKinds]int64
	// Bytes counts header plus payload bytes this node injected.
	Bytes int64
	// QueueCycles counts virtual cycles this node's messages spent
	// waiting for busy channels or network interfaces (always zero
	// under the uniform model).
	QueueCycles int64
	// Retransmits counts messages this node re-sent after a delivery
	// fault dropped them (lossy runs only; see Loss and the tempest
	// retransmission layer).
	Retransmits int64
	// RetransCycles counts the virtual cycles lost to those drops: the
	// timeout window plus backoff per retransmission.
	RetransCycles int64
	// DupDelivered counts duplicate copies the receiver's sequence
	// numbers discarded.
	DupDelivered int64
	// ReorderHeld counts messages held for resequencing at the receiver
	// because they overtook an earlier one.
	ReorderHeld int64
}

// Add accumulates o into c.
func (c *Counters) Add(o *Counters) {
	for k := range c.Msgs {
		c.Msgs[k] += o.Msgs[k]
	}
	c.Bytes += o.Bytes
	c.QueueCycles += o.QueueCycles
	c.Retransmits += o.Retransmits
	c.RetransCycles += o.RetransCycles
	c.DupDelivered += o.DupDelivered
	c.ReorderHeld += o.ReorderHeld
}

// TotalMsgs returns the message count summed over kinds.
func (c *Counters) TotalMsgs() int64 {
	var t int64
	for _, v := range c.Msgs {
		t += v
	}
	return t
}

// LinkStats summarizes network-side occupancy after a run.
type LinkStats struct {
	// Links is the number of directed channels (including NIs).
	Links int
	// MaxBusy is the busiest channel's cumulative busy cycles.
	MaxBusy int64
	// TotalBusy is busy cycles summed over channels.
	TotalBusy int64
}

// Network is the interconnect consulted by the protocol layers.  Each
// method returns the virtual cycles to charge the calling node and
// records the message(s) into c.  now is the caller's current virtual
// time, used by contention-aware models to resolve queueing.
//
// Implementations must be safe for concurrent use: protocol handlers on
// different nodes route messages concurrently.
type Network interface {
	// Name identifies the model ("uniform" or "fattree").
	Name() string
	// RoundTrip prices a blocking request/response exchange carrying
	// payload data bytes on the reply.
	RoundTrip(src, dst int, payload int64, now int64, c *Counters) int64
	// Timeout prices a request whose reply never arrived (fault
	// injection): the request is routed, the reply is not.
	Timeout(src, dst int, now int64, c *Counters) int64
	// Forward prices the home-to-owner forward leg of a three-hop miss.
	Forward(src, dst int, now int64, c *Counters) int64
	// Upgrade prices a no-data permission-upgrade round trip.
	Upgrade(src, dst int, now int64, c *Counters) int64
	// Invalidate prices one blocking invalidation of a remote copy.
	Invalidate(src, dst int, now int64, c *Counters) int64
	// Flush prices a fire-and-forget writeback of payload data bytes:
	// the sender is charged injection only, but the message still
	// occupies channels for followers.
	Flush(src, dst int, payload int64, now int64, c *Counters) int64
	// Barrier accounts one barrier packet.  Barriers ride the CM-5
	// control network, so no data-network cycles are charged; the
	// synchronization cost itself stays cost.Model.Barrier.
	Barrier(node int, c *Counters)
	// MinLatency returns a conservative lower bound, in virtual cycles,
	// on the charge of any remote operation (RoundTrip, Forward,
	// Upgrade, Invalidate, Flush) between distinct nodes.  It is the
	// lookahead window of the time-parallel scheduler (internal/sched):
	// no node can affect another sooner than this, so nodes whose next
	// scheduling points are closer together than the bound can run
	// concurrently without reordering any observable.  Contention only
	// adds latency, so the zero-contention minimum is a valid bound.  A
	// model that cannot promise a positive bound (an unreliable network
	// whose retransmissions restructure charges, say) returns 0, which
	// disables parallel execution.
	MinLatency() int64
	// LinkStats reports occupancy after the machine quiesces.
	LinkStats() LinkStats
	// SetLoss attaches a seeded delivery-fault model (nil detaches);
	// with none attached every message is delivered.
	SetLoss(l *Loss)
	// Deliver classifies the fate of src's next injected message under
	// the attached loss model.  Pricing methods never consult it
	// themselves — the retransmission layer in internal/tempest draws
	// the fate first and then prices the consequences through the
	// model.
	Deliver(src, dst int) Delivery
}

// Config selects and parameterizes a network model.  The zero value
// means "uniform with default parameters".
type Config struct {
	// Model is "", "uniform", or "fattree".
	Model string
	// HopCycles is the fixed per-link switch latency (fattree only).
	HopCycles int64
	// NICycles is the network-interface inject/eject occupancy per
	// message end (fattree only).
	NICycles int64
	// CyclesPerByte is the per-link serialization rate; lower is more
	// link bandwidth (fattree only).
	CyclesPerByte int64
	// HeaderBytes is the per-message header size used for byte
	// accounting (both models) and serialization (fattree).
	HeaderBytes int64
}

// Defaults used when Config fields are zero.  Calibrated so that an
// uncontended fattree remote round trip lands in the same few-thousand
// cycle range as cost.Model.RemoteRoundTrip.
const (
	DefaultHopCycles     = 50
	DefaultNICycles      = 400
	DefaultCyclesPerByte = 8
	DefaultHeaderBytes   = 8
)

func (cfg Config) withDefaults() Config {
	if cfg.Model == "" {
		cfg.Model = "uniform"
	}
	if cfg.HopCycles == 0 {
		cfg.HopCycles = DefaultHopCycles
	}
	if cfg.NICycles == 0 {
		cfg.NICycles = DefaultNICycles
	}
	if cfg.CyclesPerByte == 0 {
		cfg.CyclesPerByte = DefaultCyclesPerByte
	}
	if cfg.HeaderBytes == 0 {
		cfg.HeaderBytes = DefaultHeaderBytes
	}
	return cfg
}

// New builds the Network selected by cfg for a p-node machine charged
// under cost model c.
func New(cfg Config, p int, c cost.Model) (Network, error) {
	cfg = cfg.withDefaults()
	switch cfg.Model {
	case "uniform":
		return NewUniform(c, cfg.HeaderBytes), nil
	case "fattree":
		return NewFatTree(cfg, p, c), nil
	default:
		return nil, fmt.Errorf("net: unknown model %q (want uniform or fattree)", cfg.Model)
	}
}
