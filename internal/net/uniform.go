package net

import "lcm/internal/cost"

// Uniform prices every message class exactly as the flat cost.Model did
// before the network existed: fixed latency per class, a per-byte term
// on data transfers, no topology, no queueing.  It exists so that the
// default simulator configuration is bit-identical — in counters and in
// virtual cycles — to the pre-net golden results.
type Uniform struct {
	lossPort
	c      cost.Model
	header int64
}

// NewUniform builds the uniform model over cost model c with the given
// per-message header size (bytes, accounting only).
func NewUniform(c cost.Model, headerBytes int64) *Uniform {
	if headerBytes == 0 {
		headerBytes = DefaultHeaderBytes
	}
	return &Uniform{c: c, header: headerBytes}
}

// Name implements Network.
func (u *Uniform) Name() string { return "uniform" }

// RoundTrip charges the legacy RemoteRoundTrip plus the bandwidth term.
func (u *Uniform) RoundTrip(src, dst int, payload int64, now int64, c *Counters) int64 {
	c.Msgs[MsgMissRequest]++
	c.Msgs[MsgDataReply]++
	c.Bytes += 2*u.header + payload
	return u.c.RemoteRoundTrip + payload*u.c.PerByte
}

// Timeout charges a full round trip for the lost exchange, as the flat
// model's fault path did.
func (u *Uniform) Timeout(src, dst int, now int64, c *Counters) int64 {
	c.Msgs[MsgMissRequest]++
	c.Bytes += u.header
	return u.c.RemoteRoundTrip
}

// Forward charges the legacy third-hop increment.
func (u *Uniform) Forward(src, dst int, now int64, c *Counters) int64 {
	c.Msgs[MsgForward]++
	c.Bytes += u.header
	return u.c.ThirdHop
}

// Upgrade charges the legacy no-data upgrade round trip.
func (u *Uniform) Upgrade(src, dst int, now int64, c *Counters) int64 {
	c.Msgs[MsgUpgrade] += 2
	c.Bytes += 2 * u.header
	return u.c.Upgrade
}

// Invalidate charges the legacy per-copy invalidation price.
func (u *Uniform) Invalidate(src, dst int, now int64, c *Counters) int64 {
	c.Msgs[MsgInvalidate]++
	c.Bytes += u.header
	return u.c.InvalidatePerCopy
}

// Flush charges the legacy per-block flush price plus bandwidth.
func (u *Uniform) Flush(src, dst int, payload int64, now int64, c *Counters) int64 {
	c.Msgs[MsgFlush]++
	c.Bytes += u.header + payload
	return u.c.FlushPerBlock + payload*u.c.PerByte
}

// Barrier accounts the control-network packet; the barrier's cycle cost
// is charged by the barrier itself, exactly as before.
func (u *Uniform) Barrier(node int, c *Counters) {
	c.Msgs[MsgBarrier]++
	c.Bytes += u.header
}

// LinkStats reports nothing: the uniform model has no links.
func (u *Uniform) LinkStats() LinkStats { return LinkStats{} }

// MinLatency implements Network: the cheapest remote operation is the
// cheapest flat class charge (payload terms only add).  Under the default
// cost model that is FlushPerBlock.
func (u *Uniform) MinLatency() int64 {
	m := u.c.RemoteRoundTrip
	for _, v := range []int64{u.c.ThirdHop, u.c.Upgrade, u.c.InvalidatePerCopy, u.c.FlushPerBlock} {
		if v < m {
			m = v
		}
	}
	if m < 0 {
		m = 0
	}
	return m
}
