package net

import (
	"testing"

	"lcm/internal/cost"
)

func newTestTree(p int) *FatTree {
	return NewFatTree(Config{Model: "fattree"}, p, cost.Default())
}

// TestFatTreeHops checks LCA routing: siblings under one level-1 switch
// are 2 hops apart, and distance grows 2 hops per shared-prefix level.
func TestFatTreeHops(t *testing.T) {
	ft := newTestTree(32)
	cases := []struct{ src, dst, hops int }{
		{0, 0, 0},
		{0, 1, 2},   // same level-1 switch
		{4, 7, 2},   // same level-1 switch, second quad
		{0, 5, 4},   // same level-2 subtree
		{0, 15, 4},  // same level-2 subtree
		{0, 16, 6},  // crosses the root
		{0, 31, 6},  // opposite corners
		{17, 18, 2}, // locality is position-independent
	}
	for _, tc := range cases {
		if got := ft.Hops(tc.src, tc.dst); got != tc.hops {
			t.Errorf("Hops(%d,%d) = %d, want %d", tc.src, tc.dst, got, tc.hops)
		}
		// Routes are symmetric in length.
		if got := ft.Hops(tc.dst, tc.src); got != tc.hops {
			t.Errorf("Hops(%d,%d) = %d, want %d (symmetry)", tc.dst, tc.src, got, tc.hops)
		}
	}
}

// TestFatTreeUncontendedLatency pins the closed-form uncontended charge:
// NI inject + per-link wire time on each of 2·lca links + NI eject, per
// direction.
func TestFatTreeUncontendedLatency(t *testing.T) {
	ft := newTestTree(16)
	wire := func(bytes int64) int64 { return DefaultHopCycles + bytes*DefaultCyclesPerByte }
	oneWay := func(hops int, bytes int64) int64 {
		return 2*DefaultNICycles + int64(hops)*wire(bytes)
	}

	var c Counters
	got := ft.RoundTrip(0, 1, 32, 0, &c)
	want := oneWay(2, DefaultHeaderBytes) + oneWay(2, DefaultHeaderBytes+32)
	if got != want {
		t.Errorf("neighbor RoundTrip = %d, want %d", got, want)
	}
	if c.QueueCycles != 0 {
		t.Errorf("uncontended round trip queued %d cycles", c.QueueCycles)
	}

	// A far pair on a fresh tree pays more hops.
	ft2 := newTestTree(16)
	var c2 Counters
	far := ft2.RoundTrip(0, 15, 32, 0, &c2)
	wantFar := oneWay(4, DefaultHeaderBytes) + oneWay(4, DefaultHeaderBytes+32)
	if far != wantFar {
		t.Errorf("far RoundTrip = %d, want %d", far, wantFar)
	}
	if far <= got {
		t.Errorf("far trip (%d) not slower than near trip (%d)", far, got)
	}
}

// TestFatTreeQueueing drives two messages over the same route at the
// same virtual instant and checks the second queues for exactly the
// first's service time, link by link.
func TestFatTreeQueueing(t *testing.T) {
	ft := newTestTree(4)
	var c1, c2 Counters
	first := ft.Invalidate(0, 1, 1000, &c1)
	second := ft.Invalidate(0, 1, 1000, &c2)
	if c1.QueueCycles != 0 {
		t.Fatalf("first message queued %d cycles", c1.QueueCycles)
	}
	if c2.QueueCycles == 0 {
		t.Fatal("second message did not queue behind the first")
	}
	// The pipeline is store-and-forward with equal service times, so the
	// second message finishes exactly one bottleneck-service later.
	if second <= first {
		t.Errorf("second charge %d not above first %d", second, first)
	}
	// After the line drains, a later message sails through.
	var c3 Counters
	third := ft.Invalidate(0, 1, 1_000_000, &c3)
	if third != first || c3.QueueCycles != 0 {
		t.Errorf("drained message charged %d (queue %d), want %d (queue 0)", third, c3.QueueCycles, first)
	}
}

// TestFatTreeFlushFireAndForget checks the sender pays injection only,
// while the flush body still occupies the route against later traffic.
func TestFatTreeFlushFireAndForget(t *testing.T) {
	ft := newTestTree(4)
	var cf Counters
	charge := ft.Flush(0, 1, 32, 0, &cf)
	if charge != DefaultNICycles {
		t.Errorf("flush charged %d, want NI injection %d", charge, DefaultNICycles)
	}
	// A blocking message right behind it queues on the occupied links.
	var ci Counters
	ft.Invalidate(0, 1, 0, &ci)
	if ci.QueueCycles == 0 {
		t.Error("invalidate behind flush did not queue")
	}
}

// TestFatTreeChannelMultiplicity checks the thinned-tree bundle layout:
// level 1 has one channel per direction, level 2 two, level 3+ four.
func TestFatTreeChannelMultiplicity(t *testing.T) {
	ft := newTestTree(64)
	want := []int{1, 2, 4}
	if len(ft.levelMul) != len(want) {
		t.Fatalf("levels = %d, want %d", len(ft.levelMul), len(want))
	}
	for i, m := range want {
		if ft.levelMul[i] != m {
			t.Errorf("level %d multiplicity = %d, want %d", i+1, ft.levelMul[i], m)
		}
	}
	// Disjoint pairs at level 1 use disjoint channels: no cross-queueing.
	var ca, cb Counters
	ft.Invalidate(0, 1, 0, &ca)
	ft.Invalidate(4, 5, 0, &cb)
	if ca.QueueCycles != 0 || cb.QueueCycles != 0 {
		t.Errorf("disjoint routes interfered: %d, %d", ca.QueueCycles, cb.QueueCycles)
	}
}

// TestFatTreeLinkStats checks occupancy aggregation.
func TestFatTreeLinkStats(t *testing.T) {
	ft := newTestTree(8)
	if ls := ft.LinkStats(); ls.MaxBusy != 0 || ls.TotalBusy != 0 || ls.Links == 0 {
		t.Fatalf("fresh tree stats: %+v", ls)
	}
	var c Counters
	ft.RoundTrip(0, 5, 64, 0, &c)
	ls := ft.LinkStats()
	if ls.MaxBusy == 0 || ls.TotalBusy < ls.MaxBusy {
		t.Errorf("post-traffic stats: %+v", ls)
	}
}

// TestFatTreeBandwidthSensitivity checks that lowering link bandwidth
// (more cycles per byte) raises data-carrying charges.
func TestFatTreeBandwidthSensitivity(t *testing.T) {
	fast := NewFatTree(Config{CyclesPerByte: 2}, 16, cost.Default())
	slow := NewFatTree(Config{CyclesPerByte: 32}, 16, cost.Default())
	var cf, cs Counters
	f := fast.RoundTrip(0, 9, 128, 0, &cf)
	s := slow.RoundTrip(0, 9, 128, 0, &cs)
	if s <= f {
		t.Errorf("slow link charge %d not above fast link charge %d", s, f)
	}
}

func TestFatTreeSingleNode(t *testing.T) {
	ft := newTestTree(1)
	var c Counters
	// Degenerate but must not panic: route collapses to the two NIs.
	if got := ft.RoundTrip(0, 0, 8, 0, &c); got <= 0 {
		t.Errorf("self round trip charged %d", got)
	}
}
