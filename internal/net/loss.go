package net

import (
	"fmt"
	"sync"
)

// This file adds seeded delivery faults to the interconnect models: a
// message injected into a lossy network can be dropped, duplicated, or
// reordered.  The fate of each message is drawn from a per-sender
// splitmix64 stream (the same determinism discipline as internal/fault),
// so a given (LossConfig, send sequence) always injects the same faults
// regardless of host scheduling — under the deterministic scheduler the
// send sequence itself is reproducible, making every lossy run replay
// bit-identically.
//
// The models themselves stay fire-and-forget: Deliver only classifies
// the next message and tallies the injection.  Surviving a loss is the
// business of the sequence-numbered retransmission layer in
// internal/tempest, which charges the recovery (timeout window, backoff,
// re-send) through the same model so retransmissions show up in the
// message and queueing accounts.

// Delivery is the fate of one injected message.
type Delivery uint8

const (
	// Delivered: the message arrives intact, in order, exactly once.
	Delivered Delivery = iota
	// Dropped: the message is lost; the sender times out and must
	// retransmit.
	Dropped
	// Duplicated: the message arrives twice; the receiver's sequence
	// numbers discard the second copy.
	Duplicated
	// Reordered: the message arrives ahead of an earlier one; the
	// receiver holds it until the gap fills (virtual-time resequencing,
	// no extra latency charged).
	Reordered
)

func (d Delivery) String() string {
	switch d {
	case Delivered:
		return "delivered"
	case Dropped:
		return "dropped"
	case Duplicated:
		return "duplicated"
	case Reordered:
		return "reordered"
	default:
		return fmt.Sprintf("Delivery(%d)", uint8(d))
	}
}

// LossConfig describes one seeded delivery-fault campaign.  Probabilities
// are per mille (0..1000), drawn disjointly from a single roll per
// message: drop wins over duplicate wins over reorder.  The zero value
// loses nothing.
type LossConfig struct {
	// Seed selects the per-sender random streams.
	Seed uint64
	// DropPerMil is the probability (‰) that a message is lost in flight.
	DropPerMil int
	// DupPerMil is the probability (‰) that a message is delivered twice.
	DupPerMil int
	// ReorderPerMil is the probability (‰) that a message overtakes an
	// earlier one and must be held for resequencing at the receiver.
	ReorderPerMil int
}

// String renders the config for reports.
func (c LossConfig) String() string {
	return fmt.Sprintf("seed=%#x drop=%d‰ dup=%d‰ reorder=%d‰",
		c.Seed, c.DropPerMil, c.DupPerMil, c.ReorderPerMil)
}

// LossTally counts the delivery faults a Loss actually injected.  The
// recovery harness asserts the machine's retransmission counters against
// it, one for one.
type LossTally struct {
	Dropped    int64
	Duplicated int64
	Reordered  int64
}

// Add accumulates o into t.
func (t *LossTally) Add(o LossTally) {
	t.Dropped += o.Dropped
	t.Duplicated += o.Duplicated
	t.Reordered += o.Reordered
}

// Total returns the total number of injected delivery faults.
func (t LossTally) Total() int64 { return t.Dropped + t.Duplicated + t.Reordered }

// String renders the tally for reports.
func (t LossTally) String() string {
	return fmt.Sprintf("dropped=%d duplicated=%d reordered=%d", t.Dropped, t.Duplicated, t.Reordered)
}

// Loss is the seeded delivery-fault state attached to a Network with
// SetLoss.  Classification is guarded by a mutex because protocol
// handlers on different nodes inject messages concurrently; the per-
// sender streams keep the injected pattern a pure function of each
// sender's send sequence, which the deterministic scheduler fixes.
type Loss struct {
	cfg LossConfig

	mu      sync.Mutex
	streams []uint64
	tallies []LossTally
}

// NewLoss creates a loss model for p sending nodes.
func NewLoss(cfg LossConfig, p int) *Loss {
	l := &Loss{cfg: cfg, streams: make([]uint64, p), tallies: make([]LossTally, p)}
	for i := range l.streams {
		// Decorrelate sender streams the same way internal/fault does.
		l.streams[i] = lossMix64(cfg.Seed ^ (uint64(i+1) * 0x9e3779b97f4a7c15))
	}
	return l
}

// Config returns the loss model's configuration.
func (l *Loss) Config() LossConfig { return l.cfg }

// Classify draws the fate of src's next injected message, tallying any
// injected fault.
func (l *Loss) Classify(src int) Delivery {
	c := &l.cfg
	if c.DropPerMil <= 0 && c.DupPerMil <= 0 && c.ReorderPerMil <= 0 {
		return Delivered
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.streams[src] += 0x9e3779b97f4a7c15
	v := lossMix64(l.streams[src]) % 1000
	t := &l.tallies[src]
	switch {
	case v < uint64(c.DropPerMil):
		t.Dropped++
		return Dropped
	case v < uint64(c.DropPerMil+c.DupPerMil):
		t.Duplicated++
		return Duplicated
	case v < uint64(c.DropPerMil+c.DupPerMil+c.ReorderPerMil):
		t.Reordered++
		return Reordered
	default:
		return Delivered
	}
}

// Tally sums the injected-fault tallies across senders.  Call only while
// the machine is quiescent.
func (l *Loss) Tally() LossTally {
	l.mu.Lock()
	defer l.mu.Unlock()
	var t LossTally
	for i := range l.tallies {
		t.Add(l.tallies[i])
	}
	return t
}

// SenderTally returns sender i's injected-fault tally (quiescent only).
func (l *Loss) SenderTally(i int) LossTally {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.tallies[i]
}

// lossMix64 is the splitmix64 output function (kept local so net does not
// depend on internal/fault).
func lossMix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// lossPort is the delivery-fault plumbing shared by the network models:
// it holds the attached Loss and implements the Network interface's
// SetLoss/Deliver pair.
type lossPort struct {
	loss *Loss
}

// SetLoss attaches (or, with nil, detaches) a seeded loss model.
func (lp *lossPort) SetLoss(l *Loss) { lp.loss = l }

// Deliver classifies the sender's next message under the attached loss
// model; a model with no loss attached delivers everything.
func (lp *lossPort) Deliver(src, dst int) Delivery {
	if lp.loss == nil {
		return Delivered
	}
	return lp.loss.Classify(src)
}
