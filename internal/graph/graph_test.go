package graph

import (
	"testing"
	"testing/quick"

	"lcm/internal/cost"
	"lcm/internal/cstar"
	"lcm/internal/tempest"
)

func TestBuildBasics(t *testing.T) {
	tp := Build(256, 1024, 42)
	if tp.N != 256 {
		t.Fatal("N")
	}
	if len(tp.Targets) != 2048 {
		t.Fatalf("targets = %d, want 2048", len(tp.Targets))
	}
	if tp.Offsets[256] != 2048 {
		t.Fatalf("offsets end = %d", tp.Offsets[256])
	}
	// Ring guarantees min degree >= 2.
	for v := 0; v < 256; v++ {
		if tp.Degree(v) < 2 {
			t.Fatalf("vertex %d degree %d", v, tp.Degree(v))
		}
	}
}

func TestBuildDeterministic(t *testing.T) {
	a := Build(64, 200, 7)
	b := Build(64, 200, 7)
	for i := range a.Targets {
		if a.Targets[i] != b.Targets[i] {
			t.Fatal("same seed, different graph")
		}
	}
	c := Build(64, 200, 8)
	same := true
	for i := range a.Targets {
		if a.Targets[i] != c.Targets[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds, identical graph")
	}
}

func TestBuildValidatesEdgeCount(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Build(10, 5, 1)
}

// Property: CSR is symmetric (w appears in v's list as often as v in w's)
// and degrees sum to 2E.
func TestCSRSymmetryProperty(t *testing.T) {
	f := func(seed uint64, n8 uint8, extra uint8) bool {
		n := int(n8)%60 + 4
		e := n + int(extra)%64
		tp := Build(n, e, seed)
		total := 0
		count := make(map[[2]int32]int)
		for v := 0; v < n; v++ {
			total += tp.Degree(v)
			for k := tp.Offsets[v]; k < tp.Offsets[v+1]; k++ {
				count[[2]int32{int32(v), tp.Targets[k]}]++
			}
		}
		if total != 2*e {
			return false
		}
		for key, c := range count {
			if count[[2]int32{key[1], key[0]}] != c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCrossEdgesSubstantial(t *testing.T) {
	// The paper's configuration: a random graph statically partitioned
	// has many cross-processor edges.
	tp := Build(256, 1024, 42)
	cross := tp.CrossEdges(32)
	if cross < 1024/4 {
		t.Fatalf("only %d cross edges; graph too local for the benchmark's premise", cross)
	}
}

func TestMeshNeighborAvg(t *testing.T) {
	// A triangle: every vertex's neighbour average is the mean of the
	// other two.
	tp := &Topology{
		N:       3,
		Offsets: []int32{0, 2, 4, 6},
		Targets: []int32{1, 2, 0, 2, 0, 1},
	}
	m := cstar.NewMachine(1, 32, cost.Zero(), cstar.Copying)
	g := NewMesh(m, "g", tp, cstar.DataPolicy(cstar.Copying))
	m.Freeze()
	g.Load()
	g.Val.Poke(0, 1)
	g.Val.Poke(1, 2)
	g.Val.Poke(2, 3)
	m.Run(func(n *tempest.Node) {
		if got := g.NeighborAvg(n, g.Val, 0); got != 2.5 {
			t.Errorf("avg(0) = %v, want 2.5", got)
		}
		if got := g.NeighborAvg(n, g.Val, 1); got != 2 {
			t.Errorf("avg(1) = %v, want 2", got)
		}
	})
}
