// Package graph implements the unstructured-mesh substrate of the paper's
// Unstructured benchmark: an irregular graph (256 nodes, 1024 edges in the
// paper's configuration) whose vertices are relaxed toward the average of
// their neighbours each iteration.
//
// The topology is built deterministically from a seed with a small
// linear-congruential generator, statically partitioned into contiguous
// vertex ranges.  A random graph partitioned this way has many
// cross-processor edges — the property the paper relies on ("the graph
// data structure has many cross-processor edges that cause communication
// under [Stache] as well as LCM").
package graph

import (
	"fmt"

	"lcm/internal/core"
	"lcm/internal/cstar"
	"lcm/internal/memsys"
	"lcm/internal/tempest"
)

// Topology is a symmetric graph in CSR form, in plain Go memory: it is
// built before the machine runs and then loaded into simulated aggregates
// with Load.
type Topology struct {
	N       int
	Offsets []int32 // len N+1
	Targets []int32 // len 2*E (each undirected edge stored twice)
}

// Build creates a deterministic pseudo-random connected multigraph with n
// vertices and e undirected edges.  A Hamiltonian-style ring guarantees
// connectivity; remaining edges are uniform random pairs.
func Build(n, e int, seed uint64) *Topology {
	if e < n {
		panic(fmt.Sprintf("graph: need at least %d edges to connect %d vertices", n, n))
	}
	type pair struct{ a, b int32 }
	edges := make([]pair, 0, e)
	for i := 0; i < n; i++ {
		edges = append(edges, pair{int32(i), int32((i + 1) % n)})
	}
	x := seed*2862933555777941757 + 3037000493
	next := func(mod int) int32 {
		x = x*2862933555777941757 + 3037000493
		return int32((x >> 33) % uint64(mod))
	}
	for len(edges) < e {
		a, b := next(n), next(n)
		if a == b {
			continue
		}
		edges = append(edges, pair{a, b})
	}
	deg := make([]int32, n)
	for _, p := range edges {
		deg[p.a]++
		deg[p.b]++
	}
	t := &Topology{N: n, Offsets: make([]int32, n+1), Targets: make([]int32, 2*e)}
	for i := 0; i < n; i++ {
		t.Offsets[i+1] = t.Offsets[i] + deg[i]
	}
	fill := make([]int32, n)
	copy(fill, t.Offsets[:n])
	for _, p := range edges {
		t.Targets[fill[p.a]] = p.b
		fill[p.a]++
		t.Targets[fill[p.b]] = p.a
		fill[p.b]++
	}
	return t
}

// Degree returns the degree of vertex v.
func (t *Topology) Degree(v int) int { return int(t.Offsets[v+1] - t.Offsets[v]) }

// CrossEdges counts edges whose endpoints land on different nodes under a
// contiguous static partition into p ranges.
func (t *Topology) CrossEdges(p int) int {
	owner := func(v int32) int {
		per := (t.N + p - 1) / p
		return int(v) / per
	}
	cross := 0
	for v := 0; v < t.N; v++ {
		for k := t.Offsets[v]; k < t.Offsets[v+1]; k++ {
			w := t.Targets[k]
			if int32(v) < w && owner(int32(v)) != owner(w) {
				cross++
			}
		}
	}
	return cross
}

// Mesh is the simulated-memory representation: vertex values plus the CSR
// topology as read-only coherent aggregates.
type Mesh struct {
	T       *Topology
	Val     *cstar.VectorF32
	Offsets *cstar.VectorI32
	Targets *cstar.VectorI32
}

// NewMesh allocates the simulated aggregates for t.  Values get the given
// policy (loose under LCM, coherent under Copying); the topology is always
// coherent since it is read-only during relaxation.
func NewMesh(m *tempest.Machine, name string, t *Topology, valPol core.Policy) *Mesh {
	g := &Mesh{T: t}
	g.Val = cstar.NewVectorF32(m, name+".val", t.N, valPol, memsys.Blocked)
	g.Offsets = cstar.NewVectorI32(m, name+".off", t.N+1, core.Coherent(), memsys.Interleaved)
	g.Targets = cstar.NewVectorI32(m, name+".tgt", len(t.Targets), core.Coherent(), memsys.Interleaved)
	return g
}

// Load writes the topology into the home image (sequential, pre-run).
func (g *Mesh) Load() {
	for i, o := range g.T.Offsets {
		g.Offsets.Poke(i, o)
	}
	for i, w := range g.T.Targets {
		g.Targets.Poke(i, w)
	}
}

// NeighborAvg returns the average value of v's neighbours, read through
// node n from src.
func (g *Mesh) NeighborAvg(n *tempest.Node, src *cstar.VectorF32, v int) float32 {
	lo := g.Offsets.Get(n, v)
	hi := g.Offsets.Get(n, v+1)
	if lo == hi {
		return src.Get(n, v)
	}
	var sum float32
	for k := lo; k < hi; k++ {
		w := g.Targets.Get(n, int(k))
		sum += src.Get(n, int(w))
	}
	return sum / float32(hi-lo)
}
