package main

import (
	"strings"
	"testing"
)

// A block size above 256 bytes exceeds the per-element modified bitmask
// of the LCM directory.  The protocol records it as a config error (not
// a panic), every affected cell fails its run, and lcmbench turns the
// failed cells into exit status 1 with a diagnostic on stderr.
func TestBlockSizeConfigErrorExitsOne(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-fig2", "-scale", "64", "-p", "2", "-blocksize", "512"}, &out, &errOut)
	if code != 1 {
		t.Fatalf("run() = %d, want exit code 1\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(errOut.String(), "block size 512 exceeds 256 bytes") {
		t.Errorf("stderr missing the config-error diagnostic:\n%s", errOut.String())
	}
}

// Unusable flag values are rejected before any cell runs, with exit
// status 2.
func TestBadBlockSizeFlagExitsTwo(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-blocksize", "48"}, &out, &errOut); code != 2 {
		t.Fatalf("run(-blocksize 48) = %d, want exit code 2", code)
	}
	if code := run([]string{"-scale", "0"}, &out, &errOut); code != 2 {
		t.Fatalf("run(-scale 0) = %d, want exit code 2", code)
	}
}

// An unknown cell anywhere in the -cells list — a typo or a stray comma
// leaving an empty segment — is a usage error: exit status 2 before any
// cell runs, with a diagnostic naming the bad cell and the valid names.
func TestUnknownCellExitsTwo(t *testing.T) {
	for _, cells := range []string{"KV-mixed", "Stencil-static,nope", "Threshold,,KV-read"} {
		var out, errOut strings.Builder
		if code := run([]string{"-cells", cells, "-scale", "64", "-p", "2"}, &out, &errOut); code != 2 {
			t.Fatalf("run(-cells %s) = %d, want exit code 2\nstderr:\n%s", cells, code, errOut.String())
		}
		if !strings.Contains(errOut.String(), "unknown grid cell") ||
			!strings.Contains(errOut.String(), "want one of") {
			t.Errorf("run(-cells %s): stderr missing structured diagnostic:\n%s", cells, errOut.String())
		}
	}
}

// A negative Zipf skew is rejected before anything runs.
func TestBadKVSkewExitsTwo(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-kvskew", "-1"}, &out, &errOut); code != 2 {
		t.Fatalf("run(-kvskew -1) = %d, want exit code 2", code)
	}
}

// The serving cells driven in process end to end, verified against the
// sequential KV reference, with the skew and reshard knobs exercised.
func TestKVCellsRunVerified(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-cells", "KV-read,KV-write", "-scale", "16", "-p", "8",
		"-verify", "-kvskew", "1.2", "-kvreshard", "2"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("run() = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "all benchmark results verified") {
		t.Errorf("stdout missing the verification verdict:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "KV-read") || !strings.Contains(out.String(), "KV-write") {
		t.Errorf("stdout missing the KV cells:\n%s", out.String())
	}
}

// A small grid driven in process end to end: a P=96 cell crosses the
// 64-bit word boundary of the directory's node sets and must still
// verify against the sequential references and exit 0.
func TestCrossWordGridRunsVerified(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-fig2", "-scale", "64", "-p", "96", "-verify"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("run() = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "all benchmark results verified") {
		t.Errorf("stdout missing the verification verdict:\n%s", out.String())
	}
}
