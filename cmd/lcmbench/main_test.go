package main

import (
	"strings"
	"testing"
)

// A block size above 256 bytes exceeds the per-element modified bitmask
// of the LCM directory.  The protocol records it as a config error (not
// a panic), every affected cell fails its run, and lcmbench turns the
// failed cells into exit status 1 with a diagnostic on stderr.
func TestBlockSizeConfigErrorExitsOne(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-fig2", "-scale", "64", "-p", "2", "-blocksize", "512"}, &out, &errOut)
	if code != 1 {
		t.Fatalf("run() = %d, want exit code 1\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(errOut.String(), "block size 512 exceeds 256 bytes") {
		t.Errorf("stderr missing the config-error diagnostic:\n%s", errOut.String())
	}
}

// Unusable flag values are rejected before any cell runs, with exit
// status 2.
func TestBadBlockSizeFlagExitsTwo(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-blocksize", "48"}, &out, &errOut); code != 2 {
		t.Fatalf("run(-blocksize 48) = %d, want exit code 2", code)
	}
	if code := run([]string{"-scale", "0"}, &out, &errOut); code != 2 {
		t.Fatalf("run(-scale 0) = %d, want exit code 2", code)
	}
}

// A small grid driven in process end to end: a P=96 cell crosses the
// 64-bit word boundary of the directory's node sets and must still
// verify against the sequential references and exit 0.
func TestCrossWordGridRunsVerified(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-fig2", "-scale", "64", "-p", "96", "-verify"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("run() = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "all benchmark results verified") {
		t.Errorf("stdout missing the verification verdict:\n%s", out.String())
	}
}
