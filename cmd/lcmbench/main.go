// Command lcmbench regenerates the paper's experiments: Table 1 (cache
// misses and clean copies), Figure 2 (Stencil execution time), Figure 3
// (Adaptive / Threshold / Unstructured execution time), and the Section 7
// ablations (reductions, false sharing, stale data).
//
// By default it runs everything at the paper's parameters (32 processors,
// 32-byte blocks, 1024x1024 Stencil, ...).  Use -scale to shrink the
// problems proportionally for a quick run, e.g. -scale 8.
//
// Usage:
//
//	lcmbench [-scale N] [-p N] [-par N] [-verify] [-table1] [-fig2] [-fig3]
//	         [-ablate] [-net=uniform|fattree] [-linkbw N] [-nilat N]
//	         [-netsweep] [-schedseed N] [-freerun]
//
// With no selection flags, all experiments run.  -net selects the
// interconnect model (the default uniform model reproduces the historical
// flat charges bit-exactly; fattree adds topology and queueing), and
// -netsweep runs the contention sensitivity sweep.  Runs are scheduled by
// the deterministic virtual-time scheduler (internal/sched): every
// observable, simulated cycles included, is a pure function of the
// configuration and -schedseed.  -par N executes that same schedule
// time-parallel on up to N worker threads — observables stay bit-identical
// to the serial run (assert with benchdiff -identical); only wall clock
// changes.  -freerun instead restores host-scheduled goroutine
// interleaving for wall-clock parallelism measurements.  -chaos runs the
// fault-injection campaign instead: every workload under every memory
// system with seeded faults, asserting answers bit-identical to the
// fault-free runs and recovery counters matching the injected plans; the
// exit status reports the verdict.  -recovery runs the crash-recovery
// matrix: node kills restarting from barrier checkpoints, sustained
// message loss survived by retransmission, and kill storms past the
// restart budget forcing degraded-mode re-homing, each cell asserting
// answer identity against the fault-free oracle, bit-identical replay,
// and exact recovery accounting.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"lcm/internal/cost"
	"lcm/internal/harness"
	"lcm/internal/net"
	"lcm/internal/workloads"
)

// writeFile opens path, calls fn on it, and exits on any error.
func writeFile(path string, fn func(f *os.File) error) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lcmbench:", err)
		os.Exit(1)
	}
	if err := fn(f); err != nil {
		fmt.Fprintln(os.Stderr, "lcmbench:", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "lcmbench:", err)
		os.Exit(1)
	}
}

func main() {
	scale := flag.Int("scale", 1, "divide problem sizes by this factor (1 = paper scale)")
	p := flag.Int("p", 32, "number of simulated processors (max 64)")
	par := flag.Int("par", 0, "time-parallel worker threads for the deterministic schedule (0/1 = serial; observables stay bit-identical to serial)")
	verify := flag.Bool("verify", false, "check results against sequential references (slower)")
	table1 := flag.Bool("table1", false, "run only Table 1 benchmarks")
	fig2 := flag.Bool("fig2", false, "run only Figure 2 (Stencil)")
	fig3 := flag.Bool("fig3", false, "run only Figure 3 (Adaptive/Threshold/Unstructured)")
	ablate := flag.Bool("ablate", false, "run only the Section 7 ablations")
	chaos := flag.Bool("chaos", false, "run only the fault-injection chaos campaign")
	recovery := flag.Bool("recovery", false, "run only the crash-recovery matrix (checkpointed restarts, retransmission under message loss, degraded-mode re-homing)")
	sweeps := flag.Bool("sweeps", false, "also run the extension sweeps (block size, processors, cache capacity, interconnect); heavy at scale 1")
	netModel := flag.String("net", "uniform", "interconnect model: uniform (flat charges, bit-identical to the historical model) or fattree (CM-5-style 4-ary fat tree with link/NI queueing)")
	linkBW := flag.Int64("linkbw", 0, "fattree link serialization in cycles per byte (0 = default; higher = less bandwidth)")
	niLat := flag.Int64("nilat", 0, "fattree network-interface occupancy in cycles per message end (0 = default)")
	netSweep := flag.Bool("netsweep", false, "run only the interconnect sensitivity sweep (P x link bandwidth x system over the fat tree)")
	schedSeed := flag.Uint64("schedseed", 0, "deterministic schedule seed (0 = canonical cycle/node order; other seeds permute same-cycle ties)")
	freeRun := flag.Bool("freerun", false, "disable the deterministic scheduler and let node goroutines interleave at the host's whim (observables are then not run-to-run reproducible)")
	csvPath := flag.String("csv", "", "also write benchmark results as CSV to this file")
	jsonPath := flag.String("json", "", "also write a BENCH_*.json benchmark trajectory record (wall time + simulation observables per cell) to this file")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the whole run to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
	flag.Parse()

	if *scale < 1 {
		fmt.Fprintln(os.Stderr, "lcmbench: -scale must be >= 1")
		os.Exit(2)
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lcmbench:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "lcmbench:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer writeFile(*memProfile, func(f *os.File) error {
			runtime.GC() // settle allocations so the profile shows live heap
			return pprof.WriteHeapProfile(f)
		})
	}
	s := harness.New(os.Stdout)
	s.Cfg = workloads.Config{P: *p, Verify: *verify, SchedSeed: *schedSeed, FreeRun: *freeRun, Par: *par}
	s.Scale = *scale
	if *netModel != "uniform" || *linkBW != 0 || *niLat != 0 {
		netCfg := net.Config{Model: *netModel, CyclesPerByte: *linkBW, NICycles: *niLat}
		if _, err := net.New(netCfg, *p, cost.Default()); err != nil {
			fmt.Fprintln(os.Stderr, "lcmbench:", err)
			os.Exit(2)
		}
		s.Cfg.Net = &netCfg
	}

	start := time.Now()
	if *netSweep {
		s.DefaultNetSweep()
		fmt.Printf("total wall time: %s\n", time.Since(start).Round(time.Millisecond))
		return
	}
	if *chaos {
		if err := s.RunChaos(harness.DefaultChaosPlans()); err != nil {
			fmt.Fprintf(os.Stderr, "lcmbench: chaos campaign FAILED:\n%v\n", err)
			os.Exit(1)
		}
		fmt.Println("chaos campaign passed: all recoveries bit-identical, counters match injected plans")
		fmt.Printf("total wall time: %s\n", time.Since(start).Round(time.Millisecond))
		return
	}
	if *recovery {
		if err := s.RunRecovery(harness.DefaultRecoveryPlans(), []uint64{1, 2}); err != nil {
			fmt.Fprintf(os.Stderr, "lcmbench: recovery matrix FAILED:\n%v\n", err)
			os.Exit(1)
		}
		fmt.Println("recovery matrix passed: all runs survived, answers and replays bit-identical, recovery counters exact")
		fmt.Printf("total wall time: %s\n", time.Since(start).Round(time.Millisecond))
		return
	}
	all := !*table1 && !*fig2 && !*fig3 && !*ablate

	if all || *table1 || *fig2 || *fig3 {
		rows := s.RunPaperSelect(all || *table1, all || *fig2, all || *fig3)
		if *csvPath != "" {
			writeFile(*csvPath, func(f *os.File) error { return harness.WriteCSV(f, rows) })
			fmt.Printf("wrote %s\n", *csvPath)
		}
		if *jsonPath != "" {
			writeFile(*jsonPath, func(f *os.File) error { return harness.WriteJSON(f, s.Cfg, s.Scale, rows) })
			fmt.Printf("wrote %s\n", *jsonPath)
		}
		if *verify {
			bad := 0
			for _, row := range rows {
				for _, r := range row {
					if r.Err != nil {
						fmt.Fprintf(os.Stderr, "VERIFY FAILED %s/%s: %v\n", r.Label(), r.System, r.Err)
						bad++
					}
				}
			}
			if bad > 0 {
				os.Exit(1)
			}
			fmt.Println("all benchmark results verified against sequential references")
		}
	}
	if all || *ablate {
		s.RunAblations()
	}
	if *sweeps {
		s.RunSweeps()
	}
	fmt.Printf("total wall time: %s\n", time.Since(start).Round(time.Millisecond))
}
