// Command lcmbench regenerates the paper's experiments: Table 1 (cache
// misses and clean copies), Figure 2 (Stencil execution time), Figure 3
// (Adaptive / Threshold / Unstructured execution time), and the Section 7
// ablations (reductions, false sharing, stale data).
//
// By default it runs everything at the paper's parameters (32 processors,
// 32-byte blocks, 1024x1024 Stencil, ...).  Use -scale to shrink the
// problems proportionally for a quick run, e.g. -scale 8.
//
// Usage:
//
//	lcmbench [-scale N] [-p N] [-par N] [-blocksize N] [-verify] [-table1]
//	         [-fig2] [-fig3] [-ablate] [-net=uniform|fattree] [-linkbw N]
//	         [-nilat N] [-netsweep] [-schedseed N] [-freerun]
//	         [-kvskew S] [-kvreshard N]
//
// With no selection flags, all experiments run.  -cells selects
// individual grid cells by name, including the serving-traffic cells
// KV-read and KV-write (the sharded key-value workload); -kvskew and
// -kvreshard tune the KV cells' Zipf skew and reshard cadence, and both
// are part of the deterministic run tuple.  -net selects the
// interconnect model (the default uniform model reproduces the historical
// flat charges bit-exactly; fattree adds topology and queueing), and
// -netsweep runs the contention sensitivity sweep.  Runs are scheduled by
// the deterministic virtual-time scheduler (internal/sched): every
// observable, simulated cycles included, is a pure function of the
// configuration and -schedseed.  -par N executes that same schedule
// time-parallel on up to N worker threads — observables stay bit-identical
// to the serial run (assert with benchdiff -identical); only wall clock
// changes.  -freerun instead restores host-scheduled goroutine
// interleaving for wall-clock parallelism measurements.  -chaos runs the
// fault-injection campaign instead: every workload under every memory
// system with seeded faults, asserting answers bit-identical to the
// fault-free runs and recovery counters matching the injected plans; the
// exit status reports the verdict.  -recovery runs the crash-recovery
// matrix: node kills restarting from barrier checkpoints, sustained
// message loss survived by retransmission, and kill storms past the
// restart budget forcing degraded-mode re-homing, each cell asserting
// answer identity against the fault-free oracle, bit-identical replay,
// and exact recovery accounting.
//
// Benchmark cells that fail to run — an invalid configuration (for
// example -blocksize above the protocol's 256-byte element-tracking
// limit) or a node error — are reported on stderr and make the exit
// status 1, with or without -verify.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"lcm/internal/cost"
	"lcm/internal/cstar"
	"lcm/internal/harness"
	"lcm/internal/net"
	"lcm/internal/workloads"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// writeFile opens path, calls fn on it, and reports any error.
func writeFile(path string, fn func(f *os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// run is the whole program with main's process concerns (args, exit
// status, output streams) made explicit so tests can drive it in
// process.  It returns the exit code: 0 on success, 1 on failed runs or
// verdicts, 2 on unusable flags.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("lcmbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	scale := fs.Int("scale", 1, "divide problem sizes by this factor (1 = paper scale)")
	p := fs.Int("p", 32, "number of simulated processors")
	par := fs.Int("par", 0, "time-parallel worker threads for the deterministic schedule (0/1 = serial; observables stay bit-identical to serial)")
	blockSize := fs.Int("blocksize", 0, "coherence block size in bytes (0 = paper default of 32; power of two, at most 256)")
	verify := fs.Bool("verify", false, "check results against sequential references (slower)")
	table1 := fs.Bool("table1", false, "run only Table 1 benchmarks")
	fig2 := fs.Bool("fig2", false, "run only Figure 2 (Stencil)")
	fig3 := fs.Bool("fig3", false, "run only Figure 3 (Adaptive/Threshold/Unstructured)")
	ablate := fs.Bool("ablate", false, "run only the Section 7 ablations")
	chaos := fs.Bool("chaos", false, "run only the fault-injection chaos campaign")
	recovery := fs.Bool("recovery", false, "run only the crash-recovery matrix (checkpointed restarts, retransmission under message loss, degraded-mode re-homing)")
	sweeps := fs.Bool("sweeps", false, "also run the extension sweeps (block size, processors, cache capacity, interconnect); heavy at scale 1")
	netModel := fs.String("net", "uniform", "interconnect model: uniform (flat charges, bit-identical to the historical model) or fattree (CM-5-style 4-ary fat tree with link/NI queueing)")
	linkBW := fs.Int64("linkbw", 0, "fattree link serialization in cycles per byte (0 = default; higher = less bandwidth)")
	niLat := fs.Int64("nilat", 0, "fattree network-interface occupancy in cycles per message end (0 = default)")
	netSweep := fs.Bool("netsweep", false, "run only the interconnect sensitivity sweep (P x link bandwidth x system over the fat tree)")
	schedSeed := fs.Uint64("schedseed", 0, "deterministic schedule seed (0 = canonical cycle/node order; other seeds permute same-cycle ties)")
	freeRun := fs.Bool("freerun", false, "disable the deterministic scheduler and let node goroutines interleave at the host's whim (observables are then not run-to-run reproducible)")
	cells := fs.String("cells", "", "comma-separated grid cells to run instead of the full grid (e.g. Stencil-static,KV-read); implies -table1")
	kvSkew := fs.Float64("kvskew", 0, "KV cells' Zipf skew exponent (0 = workload default of 0.99)")
	kvReshard := fs.Int("kvreshard", 0, "KV cells' reshard cadence in phases (0 = workload default; negative = resharding off)")
	csvPath := fs.String("csv", "", "also write benchmark results as CSV to this file")
	jsonPath := fs.String("json", "", "also write a BENCH_*.json benchmark trajectory record (wall time + simulation observables per cell) to this file")
	detJSONPath := fs.String("detjson", "", "also write the deterministic BENCH_*.json bytes (timestamp zero, wall times masked) to this file; byte-identical across runs of the same tuple and to lcmd server-mode results")
	cpuProfile := fs.String("cpuprofile", "", "write a pprof CPU profile of the whole run to this file")
	memProfile := fs.String("memprofile", "", "write a pprof heap profile at exit to this file")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *scale < 1 {
		fmt.Fprintln(stderr, "lcmbench: -scale must be >= 1")
		return 2
	}
	if *kvSkew < 0 {
		fmt.Fprintln(stderr, "lcmbench: -kvskew must be >= 0")
		return 2
	}
	if *blockSize != 0 && (*blockSize < 8 || *blockSize&(*blockSize-1) != 0) {
		// Power-of-two >= 8 is the address-space requirement; sizes
		// above the protocol's element-tracking limit pass through here
		// and fail per cell with a config error (exit 1).
		fmt.Fprintln(stderr, "lcmbench: -blocksize must be a power of two >= 8")
		return 2
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(stderr, "lcmbench:", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(stderr, "lcmbench:", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			err := writeFile(*memProfile, func(f *os.File) error {
				runtime.GC() // settle allocations so the profile shows live heap
				return pprof.WriteHeapProfile(f)
			})
			if err != nil {
				fmt.Fprintln(stderr, "lcmbench:", err)
			}
		}()
	}
	s := harness.New(stdout)
	s.Cfg = workloads.Config{P: *p, BlockSize: uint32(*blockSize), Verify: *verify, SchedSeed: *schedSeed, FreeRun: *freeRun, Par: *par}
	s.Scale = *scale
	s.KVSkew = *kvSkew
	s.KVReshard = *kvReshard
	if *netModel != "uniform" || *linkBW != 0 || *niLat != 0 {
		netCfg := net.Config{Model: *netModel, CyclesPerByte: *linkBW, NICycles: *niLat}
		if _, err := net.New(netCfg, *p, cost.Default()); err != nil {
			fmt.Fprintln(stderr, "lcmbench:", err)
			return 2
		}
		s.Cfg.Net = &netCfg
	}

	start := time.Now()
	if *netSweep {
		s.DefaultNetSweep()
		fmt.Fprintf(stdout, "total wall time: %s\n", time.Since(start).Round(time.Millisecond))
		return 0
	}
	if *chaos {
		if err := s.RunChaos(harness.DefaultChaosPlans()); err != nil {
			fmt.Fprintf(stderr, "lcmbench: chaos campaign FAILED:\n%v\n", err)
			return 1
		}
		fmt.Fprintln(stdout, "chaos campaign passed: all recoveries bit-identical, counters match injected plans")
		fmt.Fprintf(stdout, "total wall time: %s\n", time.Since(start).Round(time.Millisecond))
		return 0
	}
	if *recovery {
		if err := s.RunRecovery(harness.DefaultRecoveryPlans(), []uint64{1, 2}); err != nil {
			fmt.Fprintf(stderr, "lcmbench: recovery matrix FAILED:\n%v\n", err)
			return 1
		}
		fmt.Fprintln(stdout, "recovery matrix passed: all runs survived, answers and replays bit-identical, recovery counters exact")
		fmt.Fprintf(stdout, "total wall time: %s\n", time.Since(start).Round(time.Millisecond))
		return 0
	}
	var cellSpecs []harness.CellSpec
	if *cells != "" {
		for _, name := range strings.Split(*cells, ",") {
			c, err := harness.ParseCell(name)
			if err != nil {
				fmt.Fprintln(stderr, "lcmbench:", err)
				return 2
			}
			cellSpecs = append(cellSpecs, c)
		}
	}

	all := *cells == "" && !*table1 && !*fig2 && !*fig3 && !*ablate

	if all || *table1 || *fig2 || *fig3 || len(cellSpecs) > 0 {
		var rows []map[cstar.System]workloads.Result
		if len(cellSpecs) > 0 {
			var err error
			rows, err = s.RunCells(cellSpecs)
			if err != nil {
				fmt.Fprintln(stderr, "lcmbench:", err)
				return 2
			}
			s.Table1(rows)
		} else {
			rows = s.RunPaperSelect(all || *table1, all || *fig2, all || *fig3)
		}
		if *csvPath != "" {
			if err := writeFile(*csvPath, func(f *os.File) error { return harness.WriteCSV(f, rows) }); err != nil {
				fmt.Fprintln(stderr, "lcmbench:", err)
				return 1
			}
			fmt.Fprintf(stdout, "wrote %s\n", *csvPath)
		}
		if *jsonPath != "" {
			if err := writeFile(*jsonPath, func(f *os.File) error { return harness.WriteJSON(f, s.Cfg, s.Scale, rows) }); err != nil {
				fmt.Fprintln(stderr, "lcmbench:", err)
				return 1
			}
			fmt.Fprintf(stdout, "wrote %s\n", *jsonPath)
		}
		if *detJSONPath != "" {
			b, err := harness.MarshalDeterministic(s.Cfg, s.Scale, rows)
			if err == nil {
				err = os.WriteFile(*detJSONPath, b, 0o644)
			}
			if err != nil {
				fmt.Fprintln(stderr, "lcmbench:", err)
				return 1
			}
			fmt.Fprintf(stdout, "wrote %s\n", *detJSONPath)
		}
		bad := 0
		for _, row := range rows {
			for _, r := range row {
				if r.Err != nil {
					fmt.Fprintf(stderr, "FAILED %s/%s: %v\n", r.Label(), r.System, r.Err)
					bad++
				}
			}
		}
		if bad > 0 {
			return 1
		}
		if *verify {
			fmt.Fprintln(stdout, "all benchmark results verified against sequential references")
		}
	}
	if all || *ablate {
		s.RunAblations()
	}
	if *sweeps {
		s.RunSweeps()
	}
	fmt.Fprintf(stdout, "total wall time: %s\n", time.Since(start).Round(time.Millisecond))
	return 0
}
