package main

import (
	"bytes"
	"io"
	"net/http"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestBadFlagsExit2(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-workers", "0"}, &out, &errb, nil); code != 2 {
		t.Fatalf("run(-workers 0) = %d, want 2", code)
	}
	if code := run([]string{"-no-such-flag"}, &out, &errb, nil); code != 2 {
		t.Fatalf("run(-no-such-flag) = %d, want 2", code)
	}
}

func TestListenFailureExit1(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-addr", "256.0.0.1:0"}, &out, &errb, nil); code != 1 {
		t.Fatalf("run(bad addr) = %d, want 1; stderr: %s", code, errb.String())
	}
}

// The whole service lifecycle: serve, execute a job, then exit 0 on a
// clean SIGTERM drain.
func TestServeAndSigtermDrain(t *testing.T) {
	var out, errb bytes.Buffer
	ready := make(chan string, 1)
	done := make(chan int, 1)
	go func() { done <- run([]string{"-addr", "127.0.0.1:0", "-workers", "1"}, &out, &errb, ready) }()

	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", resp.StatusCode)
	}

	spec := `{"kind":"grid","cells":["Stencil-static"],"p":4,"scale":64}`
	resp, err = http.Post(base+"/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202", resp.StatusCode)
	}
	// Stream progress to completion so the drain below has nothing queued.
	resp, err = http.Get(base + "/jobs/j1/progress")
	if err != nil {
		t.Fatalf("progress: %v", err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatalf("kill: %v", err)
	}
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("run exited %d after SIGTERM, want 0; stderr: %s", code, errb.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("run never exited after SIGTERM")
	}
	if !strings.Contains(out.String(), "drained cleanly") {
		t.Errorf("stdout missing drain confirmation: %s", out.String())
	}
}
