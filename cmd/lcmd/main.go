// Command lcmd runs the simulator as a long-running HTTP service: the
// harness campaigns (Table-1 grid cells, the interconnect sweep, the
// chaos and recovery matrices, the protocol model checker) become
// submitted jobs behind a bounded-concurrency queue with streaming
// NDJSON progress, a content-addressed result cache keyed on the full
// deterministic run tuple, and a Prometheus-text /metrics endpoint
// exporting the per-node simulation counters.
//
// Usage:
//
//	lcmd [-addr HOST:PORT] [-workers N] [-queue N] [-cache-entries N]
//
// API:
//
//	POST /jobs                submit a JobSpec; returns {id, state, cache}
//	GET  /jobs                list jobs
//	GET  /jobs/{id}           job status
//	GET  /jobs/{id}/progress  NDJSON event stream until the job ends
//	GET  /jobs/{id}/result    result bytes (X-Lcmd-Cache: hit|miss)
//	GET  /metrics             Prometheus text exposition
//	GET  /cache/stats         result-cache statistics
//	GET  /healthz             liveness (503 while draining)
//
// On SIGTERM or SIGINT the server drains gracefully: new submissions and
// health checks turn 503, jobs still queued are cancelled with a
// structured terminal progress event (so no client hangs on a dead
// stream), running jobs finish, and the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"lcm/internal/serve"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, nil))
}

// run is the whole program with process concerns made explicit so tests
// can drive it: args and streams are injected, and ready (when non-nil)
// receives the bound listen address once the server is serving.  It
// returns the exit code: 0 after a clean drain, 1 on serve errors, 2 on
// unusable flags.
func run(args []string, stdout, stderr io.Writer, ready chan<- string) int {
	fs := flag.NewFlagSet("lcmd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:8347", "listen address")
	workers := fs.Int("workers", 2, "concurrent job executions")
	queue := fs.Int("queue", 64, "bounded queue depth; submissions past it fail fast with 503")
	cacheEntries := fs.Int("cache-entries", 256, "content-addressed result cache capacity")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *workers < 1 || *queue < 1 || *cacheEntries < 1 {
		fmt.Fprintln(stderr, "lcmd: -workers, -queue and -cache-entries must be >= 1")
		return 2
	}

	srv := serve.New(serve.Options{
		Workers: *workers, QueueDepth: *queue, CacheEntries: *cacheEntries,
	})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "lcmd:", err)
		return 1
	}
	hs := &http.Server{Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	fmt.Fprintf(stdout, "lcmd: listening on %s (workers=%d queue=%d cache=%d)\n",
		ln.Addr(), *workers, *queue, *cacheEntries)
	if ready != nil {
		ready <- ln.Addr().String()
	}

	select {
	case err := <-errc:
		fmt.Fprintln(stderr, "lcmd:", err)
		return 1
	case <-ctx.Done():
	}

	// Graceful drain: refuse new work, cancel queued jobs with their
	// structured 503 events, let running jobs finish, then close the
	// listener once the progress streams have ended on their own.
	fmt.Fprintln(stdout, "lcmd: draining (queued jobs cancelled, running jobs finishing)...")
	srv.Drain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(stderr, "lcmd: shutdown:", err)
		return 1
	}
	<-errc // Serve has returned ErrServerClosed
	fmt.Fprintln(stdout, "lcmd: drained cleanly")
	return 0
}
