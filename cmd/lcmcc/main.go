// Command lcmcc is the mini C** compiler driver: it compiles a parallel
// function from a source file (or stdin), reports the access analysis and
// the lowering chosen for each memory system, and optionally runs the
// program on the simulated machine.
//
// Usage:
//
//	lcmcc [-run] [-rows N] [-cols N] [-iters N] [-p N]
//	      [-sys copying|lcm-scc|lcm-mcc] [file.cstar]
//
// Examples:
//
//	echo 'parallel f(A) { A[i][j] = A[i][j-1] * 0.5; }' | lcmcc
//	lcmcc -run -sys lcm-mcc -rows 64 -cols 64 -iters 10 prog.cstar
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"lcm"
	"lcm/internal/lang"
)

func main() {
	run := flag.Bool("run", false, "execute the program on the simulated machine")
	printAST := flag.Bool("print", false, "print the parsed function in canonical form")
	rows := flag.Int("rows", 64, "aggregate rows")
	cols := flag.Int("cols", 64, "aggregate columns")
	iters := flag.Int("iters", 10, "iterations")
	p := flag.Int("p", 16, "simulated processors")
	sysName := flag.String("sys", "lcm-mcc", "memory system for -run: copying, lcm-scc, lcm-mcc")
	flag.Parse()

	src, err := readSource(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "lcmcc:", err)
		os.Exit(1)
	}

	prog, err := lcm.CompileCStar(src)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lcmcc:", err)
		os.Exit(1)
	}

	if *printAST {
		fmt.Print(lang.Format(prog.Fn))
		fmt.Println()
	}
	fmt.Printf("parallel function %q over aggregate %q (rank %d)\n\n",
		prog.Fn.Name, prog.Fn.Agg, prog.Fn.Rank)
	fmt.Println("access analysis:")
	fmt.Printf("  writes own element only: %v\n", prog.Summary.WritesOwnElementOnly)
	fmt.Printf("  reads shared data:       %v\n", prog.Summary.ReadsSharedData)
	fmt.Printf("  dynamic subscripts:      %v\n", prog.Summary.DynamicStructure)
	fmt.Printf("  reductions:              %d", len(prog.Fn.Reductions))
	for _, rd := range prog.Fn.Reductions {
		fmt.Printf("  %s (%v)", rd.Name, rd.Op)
	}
	fmt.Println()

	fmt.Println("\nlowering per memory system:")
	for _, sys := range []lcm.System{lcm.Copying, lcm.LCMscc, lcm.LCMmcc} {
		plan := lcm.Lower(prog.Summary, sys)
		fmt.Printf("  %-8s mode=%-8v flushBetweenInvocations=%v\n",
			sys, plan.Mode, plan.FlushBetweenInvocations)
	}

	if !*run {
		return
	}
	var sys lcm.System
	switch *sysName {
	case "copying":
		sys = lcm.Copying
	case "lcm-scc":
		sys = lcm.LCMscc
	case "lcm-mcc":
		sys = lcm.LCMmcc
	default:
		fmt.Fprintf(os.Stderr, "lcmcc: unknown system %q\n", *sysName)
		os.Exit(2)
	}

	m := lcm.NewMachine(lcm.MachineConfig{Nodes: *p, System: sys})
	inst := prog.Instantiate(m, *rows, *cols, sys)
	m.Freeze()
	inst.Init(func(i, j int) float32 { return float32((i*31+j*17)%97) / 9.7 })
	m.Run(func(n *lcm.Node) {
		_ = inst.RunNode(n, *iters, lcm.StaticSchedule{})
	})
	// RunNode returns the same first-fault error on every node; report it
	// once rather than P times.
	if err := inst.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "lcmcc:", err)
		os.Exit(1)
	}

	c := m.TotalCounters()
	fmt.Printf("\nran %d iterations on %dx%d under %v:\n", *iters, *rows, *cols, sys)
	fmt.Printf("  simulated time: %d cycles\n", m.MaxClock())
	fmt.Printf("  cache misses:   %d (%d remote)\n", c.Misses, c.RemoteMisses)
	fmt.Printf("  marks/flushes:  %d/%d\n", c.Marks, c.Flushes)
	fmt.Printf("  copied words:   %d\n", c.CopiedWords)
	for _, rd := range prog.Fn.Reductions {
		var v float64
		m.Run(func(n *lcm.Node) {
			if n.ID == 0 {
				v = inst.Reduction(rd.Name).Value(n)
			}
			n.Barrier()
		})
		fmt.Printf("  reduction %s = %g\n", rd.Name, v)
	}
}

// readSource loads the program text from a file, or stdin when no path is
// given.
func readSource(path string) (string, error) {
	if path == "" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(path)
	return string(b), err
}
