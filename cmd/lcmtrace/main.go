// Command lcmtrace runs one benchmark under one memory system and prints a
// detailed breakdown: per-event-class counts, virtual-time composition,
// per-node statistics, and optionally the tail of the protocol event
// trace.  It is the debugging companion to cmd/lcmbench.
//
// Usage:
//
//	lcmtrace -w stencil|adaptive|threshold|unstructured
//	         [-sys copying|lcm-scc|lcm-mcc] [-sched static|dynamic]
//	         [-p N] [-scale N] [-verify] [-trace N]
//
// Examples:
//
//	lcmtrace -w stencil -sys lcm-mcc -sched dynamic -scale 8
//	lcmtrace -w threshold -sys lcm-scc -trace 40
package main

import (
	"flag"
	"fmt"
	"os"

	"lcm/internal/cstar"
	"lcm/internal/harness"
	"lcm/internal/stats"
	"lcm/internal/trace"
	"lcm/internal/workloads"
)

func main() {
	w := flag.String("w", "stencil", "workload: stencil, adaptive, threshold, unstructured")
	sysName := flag.String("sys", "lcm-mcc", "memory system: copying, lcm-scc, lcm-mcc")
	sched := flag.String("sched", "static", "partitioning: static or dynamic")
	p := flag.Int("p", 32, "simulated processors")
	scale := flag.Int("scale", 8, "divide problem sizes by this factor")
	verify := flag.Bool("verify", false, "check against the sequential reference")
	traceN := flag.Int("trace", 0, "dump the last N protocol events (0 = no trace)")
	flag.Parse()

	var sys cstar.System
	switch *sysName {
	case "copying":
		sys = cstar.Copying
	case "lcm-scc":
		sys = cstar.LCMscc
	case "lcm-mcc":
		sys = cstar.LCMmcc
	default:
		fmt.Fprintf(os.Stderr, "lcmtrace: unknown system %q\n", *sysName)
		os.Exit(2)
	}

	suite := harness.New(os.Stdout)
	suite.Scale = *scale
	cfg := workloads.Config{P: *p, Verify: *verify}
	if *traceN > 0 {
		cfg.TraceCap = *traceN
	}
	suite.Cfg = cfg

	var r workloads.Result
	switch *w {
	case "stencil":
		r = workloads.RunStencil(sys, suite.StencilSpec(*sched), cfg)
	case "adaptive":
		r = workloads.RunAdaptive(sys, suite.AdaptiveSpec(*sched), cfg)
	case "threshold":
		r = workloads.RunThreshold(sys, suite.ThresholdSpec(), cfg)
	case "unstructured":
		r = workloads.RunUnstructured(sys, suite.UnstructuredSpec(), cfg)
	default:
		fmt.Fprintf(os.Stderr, "lcmtrace: unknown workload %q\n", *w)
		os.Exit(2)
	}

	fmt.Printf("%s under %s (%s partitioning, P=%d, scale 1/%d)\n\n",
		r.Workload, r.System, *sched, *p, *scale)
	fmt.Printf("simulated time:      %16s cycles\n", stats.GroupInt(r.Cycles))
	fmt.Printf("accesses:            %16s\n", stats.GroupInt(r.C.Hits))
	fmt.Printf("cache misses:        %16s (%s remote, %s local fills)\n",
		stats.GroupInt(r.C.Misses), stats.GroupInt(r.C.RemoteMisses), stats.GroupInt(r.C.LocalFills))
	fmt.Printf("upgrades:            %16s\n", stats.GroupInt(r.C.Upgrades))
	fmt.Printf("invalidations sent:  %16s\n", stats.GroupInt(r.C.InvalidationsSent))
	fmt.Printf("marks:               %16s\n", stats.GroupInt(r.C.Marks))
	fmt.Printf("flushes:             %16s (%s words)\n",
		stats.GroupInt(r.C.Flushes), stats.GroupInt(r.C.WordsFlushed))
	fmt.Printf("explicit copies:     %16s words\n", stats.GroupInt(r.C.CopiedWords))
	fmt.Printf("barriers per node:   %16s\n", stats.GroupInt(r.C.Barriers/int64(*p)))
	fmt.Printf("clean copies:        %16s home / %s local\n",
		stats.GroupInt(r.S.CleanCopiesHome), stats.GroupInt(r.S.CleanCopiesLocal))
	fmt.Printf("blocks reconciled:   %16s\n", stats.GroupInt(r.S.Reconciles))
	fmt.Printf("write conflicts:     %16s\n", stats.GroupInt(r.S.WriteConflicts))
	for k, v := range r.Extra {
		fmt.Printf("%-20s %16.4f\n", k+":", v)
	}
	fmt.Printf("\nper-node distribution:\n")
	fmt.Printf("  clock:  %s\n", r.PerNodeClocks)
	fmt.Printf("  misses: %s\n", r.PerNodeMisses)

	if r.Trace != nil {
		fmt.Printf("\nlast protocol events (merged by virtual time):\n")
		kinds := []trace.Kind{trace.ReadMiss, trace.WriteMiss, trace.Upgrade,
			trace.Mark, trace.Flush, trace.Invalidate, trace.Commit, trace.Conflict}
		fmt.Printf("retained event mix: ")
		for _, k := range kinds {
			if c := r.Trace.CountKind(k); c > 0 {
				fmt.Printf("%s=%d ", k, c)
			}
		}
		fmt.Println()
		fmt.Print(r.Trace.Dump(*traceN))
	}

	if *verify {
		if r.Err != nil {
			fmt.Fprintf(os.Stderr, "\nVERIFICATION FAILED: %v\n", r.Err)
			os.Exit(1)
		}
		fmt.Println("\nresult verified against the sequential reference")
	}
}
