// Command lcmcheck model-checks the coherence protocols: it enumerates
// the interleavings of small scripted configurations (2-3 nodes, 2
// blocks) under the deterministic scheduler and asserts the safety
// properties — single writer per epoch, directory/tag agreement, no lost
// updates across reconciliation, LCM flush/commit pairing — at every
// scheduling point and at the end of every run (see internal/check).
//
// Usage:
//
//	lcmcheck [-protocol copying|scc|mcc|all] [-nodes N] [-blocks N]
//	         [-script NAME] [-max-schedules N] [-nosleep] [-kill]
//	         [-replay PATH -protocol SYS -script NAME]
//
// -kill injects a recoverable node crash (checkpoint/restart enabled)
// into every explored run, extending the safety guarantee across crash
// recovery: restarts perturb the virtual clocks, so the search also
// covers the interleavings around the crash point.
//
// With no flags it sweeps every canned script for every protocol at 2
// nodes x 2 blocks to exhaustion.  A violation prints the replayable
// decision path and the protocol event trace of the failing run, and the
// exit status is 1; -replay re-executes one such path (canonical choices
// beyond the prefix) and dumps its trace.
//
// Exit status: 0 when every exploration finishes clean, 1 on a
// violation, 2 on usage errors.  An exploration stopped by
// -max-schedules is reported as such but is not a failure; run without
// the bound for an exhaustiveness guarantee.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"lcm/internal/check"
	"lcm/internal/cstar"
	"lcm/internal/fault"
)

// killPlan is the canned crash plan behind -kill: node 1 dies at every
// second protocol fault, twice, and restarts from its barrier checkpoint.
func killPlan() *fault.Plan {
	return &fault.Plan{
		Seed: 0x6b111, KillNode: 1, KillAfter: 2, KillCount: 2, KillRecover: true,
	}
}

func usage(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "lcmcheck: "+format+"\n", args...)
	os.Exit(2)
}

func systems(name string) []cstar.System {
	switch name {
	case "copying":
		return []cstar.System{cstar.Copying}
	case "scc":
		return []cstar.System{cstar.LCMscc}
	case "mcc":
		return []cstar.System{cstar.LCMmcc}
	case "all":
		return []cstar.System{cstar.Copying, cstar.LCMscc, cstar.LCMmcc}
	}
	usage("unknown -protocol %q (want copying, scc, mcc or all)", name)
	return nil
}

func main() {
	protocol := flag.String("protocol", "all", "protocol to check: copying, scc, mcc or all")
	nodes := flag.Int("nodes", 2, "simulated nodes (2-3)")
	blocks := flag.Int("blocks", 2, "coherence blocks in the shared vector")
	scriptName := flag.String("script", "", "check only this canned script (empty = all; see internal/check Scripts)")
	maxSchedules := flag.Int("max-schedules", 0, "bound the interleavings explored per configuration (0 = exhaust the tree)")
	noSleep := flag.Bool("nosleep", false, "disable the sleep-set reduction (slower, fully exhaustive)")
	kill := flag.Bool("kill", false, "inject a recoverable node kill (node 1, every 2nd protocol fault, twice) with checkpoint/restart enabled, model-checking crash recovery across interleavings")
	replay := flag.String("replay", "", "replay one decision path (comma-separated indices) instead of exploring")
	flag.Parse()
	if flag.NArg() != 0 {
		usage("unexpected arguments %v", flag.Args())
	}
	if *nodes < 2 || *nodes > 3 {
		usage("-nodes must be 2 or 3")
	}
	if *blocks < 2 || *blocks > 4 {
		usage("-blocks must be 2-4")
	}

	var scripts []check.Script
	for _, s := range check.Scripts(*nodes, *blocks) {
		if *scriptName == "" || s.Name == *scriptName {
			scripts = append(scripts, s)
		}
	}
	if len(scripts) == 0 {
		usage("no script named %q", *scriptName)
	}

	if *replay != "" {
		path, err := check.ParsePath(*replay)
		if err != nil {
			usage("%v", err)
		}
		syss := systems(*protocol)
		if len(syss) != 1 || len(scripts) != 1 {
			usage("-replay needs a single -protocol and -script")
		}
		cfg := check.Config{System: syss[0], Nodes: *nodes, Blocks: *blocks, Script: scripts[0]}
		if *kill {
			cfg.Faults, cfg.Recovery = killPlan(), true
		}
		vio, dump, err := check.Replay(cfg, path)
		if err != nil {
			usage("%v", err)
		}
		if vio != nil {
			fmt.Printf("replay %v/%s path %v: VIOLATION\n%v\n%s\n",
				syss[0], scripts[0].Name, path, vio.Err, dump)
			os.Exit(1)
		}
		fmt.Printf("replay %v/%s path %v: clean\n", syss[0], scripts[0].Name, path)
		return
	}

	start := time.Now()
	failed := false
	for _, sys := range systems(*protocol) {
		for _, s := range scripts {
			cfg := check.Config{
				System: sys, Nodes: *nodes, Blocks: *blocks, Script: s,
				MaxSchedules: *maxSchedules, NoSleep: *noSleep,
			}
			if *kill {
				cfg.Faults, cfg.Recovery = killPlan(), true
			}
			res, err := check.Explore(cfg)
			if err != nil {
				usage("%v", err)
			}
			status := "exhausted"
			if !res.Exhausted {
				status = "stopped at bound"
			}
			fmt.Printf("%-8s %-10s %dn x %db: %6d schedules, %6d pruned, %s\n",
				sys, s.Name, *nodes, *blocks, res.Schedules, res.Pruned, status)
			if res.Violation != nil {
				killFlag := ""
				if *kill {
					killFlag = " -kill"
				}
				fmt.Printf("VIOLATION %v/%s: %v\n  replay: lcmcheck -protocol %s -script %s -nodes %d -blocks %d%s -replay %q\n%s\n",
					sys, s.Name, res.Violation.Err, *protocol, s.Name, *nodes, *blocks,
					killFlag, pathString(res.Violation.Path), res.Violation.Trace)
				failed = true
			}
		}
	}
	fmt.Printf("total wall time: %s\n", time.Since(start).Round(time.Millisecond))
	if failed {
		os.Exit(1)
	}
}

func pathString(path []int) string {
	s := ""
	for i, d := range path {
		if i > 0 {
			s += ","
		}
		s += fmt.Sprint(d)
	}
	return s
}
