// Command benchdiff compares two BENCH_*.json benchmark trajectory files
// produced by lcmbench -json.  It has two modes:
//
// Regression gate (default): compare wall-clock times record by record
// and fail when the pooled geometric mean of the current/baseline ratios
// regresses by more than -max-regress percent (10 by default).  This is
// the nightly guardrail: simulation observables must match exactly, wall
// time may drift within the budget.
//
//	benchdiff [-max-regress 10] baseline.json current.json
//
// Identity check (-identical): compare every simulation observable of
// each record — workload, sched, system, simulated cycles, misses, clean
// copies, verification status, network message/byte counts, and the
// serving-workload (KV) counters and answer checksum — and fail on any
// difference.  Only host-time fields (wall clock, the file
// timestamp) are excluded: under the deterministic scheduler
// (internal/sched, the default) every observable, simulated cycles and
// Copying fault counts included, is a pure function of (workload, P,
// schedule seed) at every P, so two runs of the same configuration must
// be bit-identical with no carve-outs.  Comparing files recorded under
// different schedule seeds or with the scheduler disabled is a
// configuration mismatch, reported before any record is compared.
//
//	benchdiff -identical a.json b.json
//
// Speedup gate (-wallgate): print a per-cell wall-clock speedup table
// (baseline over current — above 1.0 means current is faster) next to
// the pooled geomean, and fail when the pooled speedup falls below the
// given floor.  This is the nightly check that the time-parallel
// executor actually buys wall clock: compare a serial BENCH file against
// a -par one (the Par field is informational, never a configuration
// mismatch — parallel runs are observable-identical by construction).
//
//	benchdiff -wallgate 1.0 serial.json par.json
//
// Exit status: 0 on pass, 1 on mismatch/regression, 2 on usage errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"

	"lcm/internal/harness"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchdiff: "+format+"\n", args...)
	os.Exit(1)
}

func usage(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchdiff: "+format+"\n", args...)
	os.Exit(2)
}

func load(path string) harness.BenchFile {
	data, err := os.ReadFile(path)
	if err != nil {
		usage("%v", err)
	}
	var bf harness.BenchFile
	if err := json.Unmarshal(data, &bf); err != nil {
		usage("%s: %v", path, err)
	}
	if len(bf.Records) == 0 {
		usage("%s: no records", path)
	}
	return bf
}

func key(r harness.BenchRecord) string {
	return r.Workload + "/" + r.Sched + "/" + r.System
}

func main() {
	identical := flag.Bool("identical", false, "compare every simulation observable exactly instead of gating wall-clock regression")
	maxRegress := flag.Float64("max-regress", 10, "maximum allowed pooled-geomean wall-clock regression, percent")
	wallGate := flag.Float64("wallgate", 0, "print a per-cell wall-clock speedup table (baseline/current) and fail when the pooled geomean speedup is below this floor (0 = off)")
	flag.Parse()
	if flag.NArg() != 2 {
		usage("usage: benchdiff [-identical | -wallgate MIN | -max-regress PCT] baseline.json current.json")
	}
	a, b := load(flag.Arg(0)), load(flag.Arg(1))

	if a.P != b.P || a.Scale != b.Scale || a.Net != b.Net {
		fail("configuration mismatch: p/scale/net %d/%d/%q vs %d/%d/%q",
			a.P, a.Scale, a.Net, b.P, b.Scale, b.Net)
	}
	if a.Scheduler != b.Scheduler || a.SchedSeed != b.SchedSeed {
		fail("configuration mismatch: scheduler %q seed %d vs %q seed %d (records from different schedules are not comparable)",
			a.Scheduler, a.SchedSeed, b.Scheduler, b.SchedSeed)
	}
	if len(a.Records) != len(b.Records) {
		fail("record count mismatch: %d vs %d", len(a.Records), len(b.Records))
	}

	if *identical {
		bad := 0
		for i := range a.Records {
			ra, rb := a.Records[i], b.Records[i]
			if key(ra) != key(rb) {
				fail("record %d identity mismatch: %s vs %s", i, key(ra), key(rb))
			}
			diff := func(field string, va, vb any) {
				fmt.Fprintf(os.Stderr, "benchdiff: %s: %s drifted: %v vs %v\n", key(ra), field, va, vb)
				bad++
			}
			if ra.SimCycles != rb.SimCycles {
				diff("simcycles", ra.SimCycles, rb.SimCycles)
			}
			if ra.SimMisses != rb.SimMisses {
				diff("simmisses", ra.SimMisses, rb.SimMisses)
			}
			if ra.CleanCopies != rb.CleanCopies {
				diff("cleancopies", ra.CleanCopies, rb.CleanCopies)
			}
			if ra.Verified != rb.Verified {
				diff("verified", ra.Verified, rb.Verified)
			}
			if ra.NetMsgs != rb.NetMsgs {
				diff("net_msgs", ra.NetMsgs, rb.NetMsgs)
			}
			if ra.NetBytes != rb.NetBytes {
				diff("net_bytes", ra.NetBytes, rb.NetBytes)
			}
			if ra.NetQueueCycles != rb.NetQueueCycles {
				diff("net_queue_cycles", ra.NetQueueCycles, rb.NetQueueCycles)
			}
			if ra.MaxLinkBusy != rb.MaxLinkBusy {
				diff("max_link_busy", ra.MaxLinkBusy, rb.MaxLinkBusy)
			}
			if ra.KVOps != rb.KVOps {
				diff("kv_ops", ra.KVOps, rb.KVOps)
			}
			if ra.KVGets != rb.KVGets {
				diff("kv_gets", ra.KVGets, rb.KVGets)
			}
			if ra.KVPuts != rb.KVPuts {
				diff("kv_puts", ra.KVPuts, rb.KVPuts)
			}
			if ra.KVReshards != rb.KVReshards {
				diff("kv_reshards", ra.KVReshards, rb.KVReshards)
			}
			if ra.KVMigratedBlocks != rb.KVMigratedBlocks {
				diff("kv_migrated_blocks", ra.KVMigratedBlocks, rb.KVMigratedBlocks)
			}
			if ra.KVHotShardOps != rb.KVHotShardOps {
				diff("kv_hot_shard_ops", ra.KVHotShardOps, rb.KVHotShardOps)
			}
			if ra.KVAnswer != rb.KVAnswer {
				diff("kv_answer", ra.KVAnswer, rb.KVAnswer)
			}
		}
		if bad > 0 {
			fail("%d deterministic field(s) drifted across %d records", bad, len(a.Records))
		}
		fmt.Printf("benchdiff: identical across %d records\n", len(a.Records))
		return
	}

	if *wallGate > 0 {
		// Speedup table: baseline wall over current wall, per cell.
		var logSum float64
		n := 0
		fmt.Printf("%-40s %12s %12s %8s\n", "cell", "base wall", "cur wall", "speedup")
		for i := range a.Records {
			ra, rb := a.Records[i], b.Records[i]
			if key(ra) != key(rb) {
				fail("record %d identity mismatch: %s vs %s", i, key(ra), key(rb))
			}
			if ra.WallNS <= 0 || rb.WallNS <= 0 {
				continue
			}
			sp := float64(ra.WallNS) / float64(rb.WallNS)
			fmt.Printf("%-40s %11.3fs %11.3fs %7.2fx\n", key(ra),
				float64(ra.WallNS)/1e9, float64(rb.WallNS)/1e9, sp)
			logSum += math.Log(sp)
			n++
		}
		if n == 0 {
			fail("no records carry wall-clock measurements")
		}
		geomean := math.Exp(logSum / float64(n))
		fmt.Printf("pooled geomean speedup %.2fx over %d records (floor %.2fx)\n", geomean, n, *wallGate)
		if geomean < *wallGate {
			fail("pooled speedup %.2fx below floor %.2fx", geomean, *wallGate)
		}
		return
	}

	// Regression gate: pooled geometric mean of per-record wall ratios.
	var logSum float64
	n := 0
	worstKey, worstRatio := "", 0.0
	for i := range a.Records {
		ra, rb := a.Records[i], b.Records[i]
		if key(ra) != key(rb) {
			fail("record %d identity mismatch: %s vs %s", i, key(ra), key(rb))
		}
		if ra.WallNS <= 0 || rb.WallNS <= 0 {
			continue // unmeasured cell; nothing to gate
		}
		ratio := float64(rb.WallNS) / float64(ra.WallNS)
		logSum += math.Log(ratio)
		n++
		if ratio > worstRatio {
			worstKey, worstRatio = key(ra), ratio
		}
	}
	if n == 0 {
		fail("no records carry wall-clock measurements")
	}
	geomean := math.Exp(logSum / float64(n))
	change := (geomean - 1) * 100
	fmt.Printf("benchdiff: pooled geomean wall-clock ratio %.3f (%+.1f%%) over %d records; worst %s at %.3f\n",
		geomean, change, n, worstKey, worstRatio)
	if change > *maxRegress {
		fail("wall-clock regression %.1f%% exceeds budget %.1f%%", change, *maxRegress)
	}
}
