package lcm_test

import (
	"testing"

	"lcm"
)

// The tests in this file exercise the public facade exactly as a library
// user would — they double as compile-time checks that the re-exported API
// is complete enough to write real programs against.

func TestPublicQuickstartFlow(t *testing.T) {
	m := lcm.NewMachine(lcm.MachineConfig{Nodes: 4, System: lcm.LCMmcc})
	a := lcm.NewMatrixF32(m, "A", 16, 16, lcm.LooselyCoherent(), lcm.Interleaved)
	red := lcm.NewReduceF64(m, "sum", lcm.LCMmcc)
	m.Freeze()

	for j := 0; j < 16; j++ {
		a.Poke(0, j, 10)
	}

	plan := lcm.Lower(lcm.AccessSummary{WritesOwnElementOnly: true, ReadsSharedData: true}, lcm.LCMmcc)
	if plan.Mode.String() != "lcm" || !plan.FlushBetweenInvocations {
		t.Fatalf("plan %+v", plan)
	}

	m.Run(func(n *lcm.Node) {
		lcm.ForEach(n, lcm.StaticSchedule{}, plan, 0, 14*14, func(idx int) {
			i, j := 1+idx/14, 1+idx%14
			v := (a.Get(n, i-1, j) + a.Get(n, i+1, j) + a.Get(n, i, j-1) + a.Get(n, i, j+1)) / 4
			a.Set(n, i, j, v)
		})
		lcm.EndParallel(n)
		lcm.ForEach(n, lcm.StaticSchedule{}, plan, 0, 16*16, func(idx int) {
			red.Add(n, float64(a.Get(n, idx/16, idx%16)))
		})
		red.Reduce(n)
	})

	var total float64
	m.Run(func(n *lcm.Node) {
		if n.ID == 0 {
			total = red.Value(n)
		}
		n.Barrier()
	})
	if total <= 0 {
		t.Fatalf("total = %v", total)
	}
	if m.MaxClock() <= 0 || m.TotalCounters().Misses == 0 {
		t.Fatal("no simulated activity recorded")
	}
	if s := m.Shared.Snapshot(); s.WriteConflicts != 0 {
		t.Fatalf("unexpected conflicts: %d", s.WriteConflicts)
	}
}

func TestPublicDefaults(t *testing.T) {
	m := lcm.NewMachine(lcm.MachineConfig{})
	if m.P != 32 || m.AS.BlockSize != 32 {
		t.Fatalf("defaults: P=%d block=%d", m.P, m.AS.BlockSize)
	}
	if m.Protocol().Name() != "stache" {
		t.Fatalf("default protocol %q (zero-value System is the Copying baseline)", m.Protocol().Name())
	}
	c := lcm.DefaultCost()
	if c.RemoteRoundTrip <= c.LocalFill || c.LocalFill <= c.CacheHit {
		t.Fatal("cost ordering")
	}
}

func TestPublicConflictDetection(t *testing.T) {
	m := lcm.NewMachine(lcm.MachineConfig{Nodes: 2, System: lcm.LCMscc})
	v := lcm.NewVectorI32(m, "v", 8, lcm.Detect(false), lcm.Interleaved)
	m.Freeze()
	m.Run(func(n *lcm.Node) {
		v.Set(n, 0, int32(n.ID+1)) // both nodes, same element
		n.ReconcileCopies()
	})
	cs := lcm.Conflicts(m)
	if len(cs) != 1 || cs[0].Kind != lcm.WriteWrite {
		t.Fatalf("conflicts = %v", cs)
	}
	// The Copying baseline has no detector; Conflicts returns nil.
	m2 := lcm.NewMachine(lcm.MachineConfig{Nodes: 2, System: lcm.Copying})
	lcm.NewVectorI32(m2, "v", 8, lcm.Coherent(), lcm.Interleaved)
	m2.Freeze()
	if lcm.Conflicts(m2) != nil {
		t.Fatal("baseline should report no conflict machinery")
	}
}

func TestPublicCustomReconciler(t *testing.T) {
	// A user-defined reconciliation function: bitwise OR of written
	// words, a policy none of the built-ins provide.
	m := lcm.NewMachine(lcm.MachineConfig{Nodes: 4, System: lcm.LCMmcc})
	orMerge := lcm.Func{Elem: 4, F: func(pending, incoming, clean []byte, prior bool) bool {
		for i := range pending {
			pending[i] |= incoming[i]
		}
		return false
	}}
	v := lcm.NewVectorI32(m, "flags", 8, lcm.Reduction(orMerge), lcm.SingleHome)
	m.Freeze()
	m.Run(func(n *lcm.Node) {
		v.Set(n, 0, 1<<uint(n.ID))
		n.ReconcileCopies()
		if got := v.Get(n, 0); got != 0b1111 {
			t.Errorf("node %d: merged flags %#b", n.ID, got)
		}
	})
}

func TestPublicStaleAndDropCopy(t *testing.T) {
	m := lcm.NewMachine(lcm.MachineConfig{Nodes: 2, System: lcm.LCMmcc})
	v := lcm.NewVectorF32(m, "field", 8, lcm.Stale(100), lcm.SingleHome)
	m.Freeze()
	m.Run(func(n *lcm.Node) {
		if n.ID == 1 {
			_ = v.Get(n, 0)
		}
		n.Barrier()
		if n.ID == 0 {
			v.Set(n, 0, 42)
		}
		n.ReconcileCopies()
		if n.ID == 1 {
			// Generous staleness: the old copy survives...
			if got := v.Get(n, 0); got != 0 {
				t.Errorf("expected stale 0, got %v", got)
			}
			// ...until the consumer refreshes it explicitly.
			n.DropCopy(v.Addr(0))
			if got := v.Get(n, 0); got != 42 {
				t.Errorf("expected fresh 42 after DropCopy, got %v", got)
			}
		}
		n.Barrier()
	})
}

func TestPublicSimLock(t *testing.T) {
	m := lcm.NewMachine(lcm.MachineConfig{Nodes: 4, System: lcm.Copying})
	v := lcm.NewVectorI64(m, "counter", 1, lcm.Coherent(), lcm.SingleHome)
	m.Freeze()
	var lk lcm.SimLock
	m.Run(func(n *lcm.Node) {
		for i := 0; i < 10; i++ {
			lk.Acquire(n)
			v.Set(n, 0, v.Get(n, 0)+1)
			lk.Release(n)
		}
	})
	lcm.DrainToHome(m)
	if got := v.Peek(0); got != 40 {
		t.Fatalf("lock-protected counter = %d, want 40", got)
	}
}
