module lcm

go 1.22
